package dnn

import (
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"sort"

	"optima/internal/sched"
	"optima/internal/stats"
)

// Network is a sequential stack of layers with softmax-cross-entropy
// training support.
type Network struct {
	Name   string
	Layers []Layer
	// InC/InH/InW record the expected input shape for MAC counting.
	InC, InH, InW int
	// EvalWorkers bounds the batch fan-out of TopKAccuracy (0 = GOMAXPROCS).
	// Evaluation falls back to one worker when the network contains a
	// user-defined layer without a stateless forward.
	EvalWorkers int
}

// NewNetwork creates an empty network for the given input shape.
func NewNetwork(name string, inC, inH, inW int) *Network {
	return &Network{Name: name, InC: inC, InH: inH, InW: inW}
}

// Add appends layers.
func (n *Network) Add(layers ...Layer) { n.Layers = append(n.Layers, layers...) }

// Params returns all learnable parameters.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total learnable scalar count.
func (n *Network) NumParams() int {
	var total int
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// Forward runs the network and returns the logits. The layers record state
// for Backward, so Forward is not safe for concurrent use — inference-only
// callers should prefer Infer.
func (n *Network) Forward(x *Tensor, train bool) *Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Infer runs a stateless inference pass and returns the logits. For the
// built-in layer types no training state is touched, so concurrent Infer
// calls on one network are race-free — the property batched evaluation
// relies on. User-defined layers without a stateless forward fall back to
// their training Forward (see StatelessOnly).
func (n *Network) Infer(x *Tensor) *Tensor {
	for _, l := range n.Layers {
		if out, ok := InferenceForward(l, x); ok {
			x = out
			continue
		}
		x = l.Forward(x, false)
	}
	return x
}

// StatelessOnly reports whether every layer has a stateless inference
// forward, i.e. whether concurrent Infer calls are race-free.
func (n *Network) StatelessOnly() bool {
	for _, l := range n.Layers {
		if !StatelessCapable(l) {
			return false
		}
	}
	return true
}

// Backward propagates dL/dlogits through all layers.
func (n *Network) Backward(grad *Tensor) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// MACsPerInference counts the multiplications of one forward pass for one
// sample (conv + dense layers), the paper's Table II metric.
func (n *Network) MACsPerInference() int64 {
	c, h, w := n.InC, n.InH, n.InW
	var total int64
	for _, l := range n.Layers {
		switch t := l.(type) {
		case MACCounter:
			m, oc, oh, ow := t.MACs(c, h, w)
			total += m
			c, h, w = oc, oh, ow
		case *MaxPool2:
			h, w = h/2, w/2
		case *GlobalAvgPool:
			h, w = 1, 1
		}
	}
	return total
}

// Softmax returns the row-wise softmax of logits.
func Softmax(logits *Tensor) *Tensor {
	out := logits.Clone()
	classes := logits.FeatureLen()
	for n := 0; n < logits.N; n++ {
		row := out.Data[n*classes : (n+1)*classes]
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(v - max)
			row[i] = e
			sum += e
		}
		for i := range row {
			row[i] /= sum
		}
	}
	return out
}

// CrossEntropyLoss computes the mean cross-entropy of logits against integer
// labels and the gradient dL/dlogits.
func CrossEntropyLoss(logits *Tensor, labels []int) (loss float64, grad *Tensor) {
	probs := Softmax(logits)
	classes := logits.FeatureLen()
	grad = probs.Clone()
	invN := 1.0 / float64(logits.N)
	for n := 0; n < logits.N; n++ {
		p := probs.Data[n*classes+labels[n]]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p) * invN
		grad.Data[n*classes+labels[n]] -= 1
	}
	for i := range grad.Data {
		grad.Data[i] *= invN
	}
	return loss, grad
}

// SGD is stochastic gradient descent with momentum and weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*Param][]float64
}

// NewSGD returns an optimizer with the given hyperparameters.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: map[*Param][]float64{}}
}

// Step applies one update to the parameters and clears gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = make([]float64, len(p.W))
			s.velocity[p] = v
		}
		for i := range p.W {
			g := p.G[i] + s.WeightDecay*p.W[i]
			v[i] = s.Momentum*v[i] - s.LR*g
			p.W[i] += v[i]
		}
		p.ZeroGrad()
	}
}

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	// LRDropEvery halves the learning rate every this many epochs (0 = off).
	LRDropEvery int
	Seed        uint64
	// Verbose prints per-epoch loss/accuracy.
	Verbose bool
	// FreezeAllButLast trains only the final layer's parameters
	// (transfer learning, the paper's CIFAR-10 protocol).
	FreezeAllButLast bool
}

// DefaultTrainConfig returns the training recipe used by the experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs: 8, BatchSize: 32, LR: 0.05, Momentum: 0.9,
		WeightDecay: 1e-4, LRDropEvery: 4, Seed: 1,
	}
}

// Fit trains the network on (x, labels) and returns the final epoch's mean
// training loss.
func (n *Network) Fit(x *Tensor, labels []int, cfg TrainConfig) (float64, error) {
	if x.N != len(labels) {
		return 0, fmt.Errorf("dnn: %d samples but %d labels", x.N, len(labels))
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	params := n.Params()
	if cfg.FreezeAllButLast && len(n.Layers) > 0 {
		params = n.Layers[len(n.Layers)-1].Params()
	}
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	rng := stats.NewRNG(cfg.Seed)
	feat := x.FeatureLen()
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.LRDropEvery > 0 && epoch > 0 && epoch%cfg.LRDropEvery == 0 {
			opt.LR /= 2
		}
		perm := rng.Perm(x.N)
		var epochLoss float64
		batches := 0
		for start := 0; start < x.N; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > x.N {
				end = x.N
			}
			bs := end - start
			batch := NewTensor(bs, x.C, x.H, x.W)
			blabels := make([]int, bs)
			for i := 0; i < bs; i++ {
				src := perm[start+i]
				copy(batch.Data[i*feat:(i+1)*feat], x.Data[src*feat:(src+1)*feat])
				blabels[i] = labels[src]
			}
			logits := n.Forward(batch, true)
			loss, grad := CrossEntropyLoss(logits, blabels)
			n.Backward(grad)
			opt.Step(params)
			if cfg.FreezeAllButLast {
				// Clear the gradients the frozen layers accumulated.
				for _, p := range n.Params() {
					p.ZeroGrad()
				}
			}
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Verbose {
			fmt.Printf("  %s epoch %d/%d loss %.4f\n", n.Name, epoch+1, cfg.Epochs, lastLoss)
		}
	}
	return lastLoss, nil
}

// TopKAccuracy evaluates top-1 and top-k accuracy of the network's float
// inference pass, fanning batches out across the shared scheduler (the
// stateless Infer path makes concurrent batches race-free, mirroring the
// quantized networks in internal/quant). Results are independent of the
// worker count; networks containing a user-defined layer without a
// stateless forward evaluate serially.
func (n *Network) TopKAccuracy(x *Tensor, labels []int, k int) (top1, topk float64) {
	workers := n.EvalWorkers
	if !n.StatelessOnly() {
		workers = 1
	}
	return EvalTopKWorkers(n.Infer, x, labels, k, 32, workers)
}

// EvalTopK scores an arbitrary classifier function batch-by-batch on one
// worker.
func EvalTopK(forward func(*Tensor) *Tensor, x *Tensor, labels []int, k, batch int) (top1, topk float64) {
	return EvalTopKWorkers(forward, x, labels, k, batch, 1)
}

// EvalTopKWorkers scores a classifier with the batches fanned out across
// the shared scheduler (internal/sched). forward must be safe for concurrent calls whenever
// workers != 1 (workers <= 0 uses GOMAXPROCS). The result is independent
// of the worker count.
func EvalTopKWorkers(forward func(*Tensor) *Tensor, x *Tensor, labels []int, k, batch, workers int) (top1, topk float64) {
	if batch <= 0 {
		batch = 32
	}
	feat := x.FeatureLen()
	starts := make([]int, 0, (x.N+batch-1)/batch)
	for start := 0; start < x.N; start += batch {
		starts = append(starts, start)
	}
	type hits struct{ h1, hk int }
	perBatch, _ := sched.Map(workers, starts, func(_ int, start int) (hits, error) {
		end := start + batch
		if end > x.N {
			end = x.N
		}
		bs := end - start
		b := NewTensor(bs, x.C, x.H, x.W)
		copy(b.Data, x.Data[start*feat:end*feat])
		logits := forward(b)
		classes := logits.FeatureLen()
		var h hits
		for i := 0; i < bs; i++ {
			row := logits.Data[i*classes : (i+1)*classes]
			label := labels[start+i]
			// Rank of the true class.
			idx := make([]int, classes)
			for j := range idx {
				idx[j] = j
			}
			sort.Slice(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
			if idx[0] == label {
				h.h1++
			}
			for j := 0; j < k && j < classes; j++ {
				if idx[j] == label {
					h.hk++
					break
				}
			}
		}
		return h, nil
	})
	var hits1, hitsK int
	for _, h := range perBatch {
		hits1 += h.h1
		hitsK += h.hk
	}
	total := float64(x.N)
	return 100 * float64(hits1) / total, 100 * float64(hitsK) / total
}

// FoldAllBatchNorms folds every batch-norm in the network into its
// preceding convolution (sequential stacks and residual blocks), preparing
// the network for post-training quantization.
func (n *Network) FoldAllBatchNorms() error {
	var prevConv *Conv2D
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Conv2D:
			prevConv = t
		case *BatchNorm2D:
			if prevConv == nil {
				return fmt.Errorf("dnn: batch-norm %s has no preceding convolution", t.Name())
			}
			if err := t.FoldInto(prevConv); err != nil {
				return err
			}
			prevConv = nil
		case *Residual:
			convs, bns := t.ConvLayers()
			for i, bn := range bns {
				if bn == nil {
					continue
				}
				if err := bn.FoldInto(convs[i]); err != nil {
					return err
				}
			}
			prevConv = nil
		default:
			prevConv = nil
		}
	}
	return nil
}

// netState is the gob-serializable snapshot of a network's parameters.
type netState struct {
	Name   string
	Params map[string][]float64
	BNMean map[string][]float64
	BNVar  map[string][]float64
}

// Save writes the network's parameters (including batch-norm running
// statistics) to path.
func (n *Network) Save(path string) error {
	st := netState{Name: n.Name, Params: map[string][]float64{}, BNMean: map[string][]float64{}, BNVar: map[string][]float64{}}
	for _, p := range n.Params() {
		st.Params[p.Name] = p.W
	}
	n.visitBN(func(bn *BatchNorm2D) {
		st.BNMean[bn.Name()] = bn.RunMean
		st.BNVar[bn.Name()] = bn.RunVar
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(st)
}

// Load restores parameters saved by Save into an identically-constructed
// network.
func (n *Network) Load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var st netState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return err
	}
	for _, p := range n.Params() {
		saved, ok := st.Params[p.Name]
		if !ok {
			return fmt.Errorf("dnn: snapshot missing parameter %s", p.Name)
		}
		if len(saved) != len(p.W) {
			return fmt.Errorf("dnn: parameter %s has %d values, snapshot has %d", p.Name, len(p.W), len(saved))
		}
		copy(p.W, saved)
	}
	var bnErr error
	n.visitBN(func(bn *BatchNorm2D) {
		if m, ok := st.BNMean[bn.Name()]; ok && len(m) == len(bn.RunMean) {
			copy(bn.RunMean, m)
		} else if bnErr == nil {
			bnErr = fmt.Errorf("dnn: snapshot missing batch-norm stats for %s", bn.Name())
		}
		if v, ok := st.BNVar[bn.Name()]; ok && len(v) == len(bn.RunVar) {
			copy(bn.RunVar, v)
		}
	})
	return bnErr
}

func (n *Network) visitBN(fn func(*BatchNorm2D)) {
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *BatchNorm2D:
			fn(t)
		case *Residual:
			fn(t.BN1)
			fn(t.BN2)
		}
	}
}
