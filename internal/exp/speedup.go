package exp

import (
	"fmt"
	"time"

	"optima/internal/device"
	"optima/internal/mult"
	"optima/internal/refdata"
	"optima/internal/report"
	"optima/internal/spice"
	"optima/internal/sram"
	"optima/internal/stats"
)

// nominalCond returns the nominal operating condition.
func nominalCond() device.PVT { return device.Nominal() }

// SpeedupResult compares OPTIMA's event-based behavioral evaluation against
// golden circuit simulation on the same workload.
type SpeedupResult struct {
	Name           string
	BehavioralTime time.Duration
	GoldenTime     time.Duration
	Operations     int
	// GoldenTransients counts the circuit simulations the golden backend ran.
	GoldenTransients int
}

// Speedup is the measured ratio.
func (s SpeedupResult) Speedup() float64 {
	if s.BehavioralTime <= 0 {
		return 0
	}
	return float64(s.GoldenTime) / float64(s.BehavioralTime)
}

// SpeedupInputSpace measures the paper's headline experiment: iterating the
// full 16×16 input space of one multiplier configuration with the
// behavioral backend versus the golden backend (paper: 101×).
func (c *Context) SpeedupInputSpace(cfg mult.Config) (SpeedupResult, error) {
	out := SpeedupResult{Name: "input-space iteration"}
	cond := nominalCond()

	b, err := mult.NewBehavioral(c.Model, cfg, cond)
	if err != nil {
		return out, err
	}
	//lint:ignore determinism the speed-up experiment measures wall-clock time; the timing is the result, and it never enters a cache key or persisted record
	start := time.Now()
	for a := uint(0); a <= mult.OperandMax; a++ {
		for d := uint(0); d <= mult.OperandMax; d++ {
			if _, err := b.Multiply(a, d, nil); err != nil {
				return out, err
			}
			out.Operations++
		}
	}
	out.BehavioralTime = time.Since(start)

	g, err := mult.NewGolden(c.Tech, cfg, cond, c.Spice)
	if err != nil {
		return out, err
	}
	var scr spice.Scratch
	//lint:ignore determinism the speed-up experiment measures wall-clock time; the timing is the result, and it never enters a cache key or persisted record
	start = time.Now()
	for a := uint(0); a <= mult.OperandMax; a++ {
		for d := uint(0); d <= mult.OperandMax; d++ {
			r, err := g.MultiplyCells(a, d, nil, &scr)
			if err != nil {
				return out, err
			}
			out.GoldenTransients += r.Transients
		}
	}
	out.GoldenTime = time.Since(start)
	return out, nil
}

// SpeedupMonteCarlo measures the mismatch Monte-Carlo experiment: sampling
// the multiplier result distribution at one input pair (paper: 28.1×).
func (c *Context) SpeedupMonteCarlo(cfg mult.Config, samples int) (SpeedupResult, error) {
	out := SpeedupResult{Name: "mismatch Monte Carlo"}
	cond := nominalCond()
	const a, d = 11, 13

	b, err := mult.NewBehavioral(c.Model, cfg, cond)
	if err != nil {
		return out, err
	}
	rng := stats.NewRNG(0x5eed)
	//lint:ignore determinism the speed-up experiment measures wall-clock time; the timing is the result, and it never enters a cache key or persisted record
	start := time.Now()
	for s := 0; s < samples; s++ {
		if _, err := b.Multiply(a, d, rng); err != nil {
			return out, err
		}
		out.Operations++
	}
	out.BehavioralTime = time.Since(start)

	g, err := mult.NewGolden(c.Tech, cfg, cond, c.Spice)
	if err != nil {
		return out, err
	}
	grng := stats.NewRNG(0x5eed)
	var cells sram.Word
	var scr spice.Scratch
	//lint:ignore determinism the speed-up experiment measures wall-clock time; the timing is the result, and it never enters a cache key or persisted record
	start = time.Now()
	for s := 0; s < samples; s++ {
		cells.SampleMismatch(c.Tech, grng)
		r, err := g.MultiplyCells(a, d, &cells, &scr)
		if err != nil {
			return out, err
		}
		out.GoldenTransients += r.Transients
	}
	out.GoldenTime = time.Since(start)
	return out, nil
}

// SpeedupTable renders both speed-up experiments against the paper's
// headline numbers.
func SpeedupTable(inputSpace, monteCarlo SpeedupResult) *report.Table {
	t := report.NewTable("Simulation speed-up: OPTIMA (event-based) vs golden circuit simulation",
		"experiment", "behavioral", "golden", "golden transients", "speed-up", "paper")
	t.AddRow(inputSpace.Name,
		inputSpace.BehavioralTime.String(), inputSpace.GoldenTime.String(),
		inputSpace.GoldenTransients,
		fmt.Sprintf("%.1f×", inputSpace.Speedup()),
		fmt.Sprintf("%.0f×", refdata.SpeedupInputSpace))
	t.AddRow(monteCarlo.Name,
		monteCarlo.BehavioralTime.String(), monteCarlo.GoldenTime.String(),
		monteCarlo.GoldenTransients,
		fmt.Sprintf("%.1f×", monteCarlo.Speedup()),
		fmt.Sprintf("%.1f×", refdata.SpeedupMonteCarlo))
	return t
}
