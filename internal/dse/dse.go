// Package dse implements the paper's design-space exploration (Section V):
// sweeping multiplier configurations over (τ0, V_DAC,0, V_DAC,FS), scoring
// each corner by average multiplication error and energy, selecting the
// fom / power / variation corners (Table I), extracting Pareto-optimal
// sets, and running the PVT robustness analyses of Fig. 8.
//
// The package is the exploration layer: it decides which corners and
// conditions to score and how to rank them. The scoring itself — worker
// pool, result cache, behavioral-vs-golden backend choice — lives in
// internal/engine, which every sweep here routes through.
package dse

import (
	"fmt"
	"math"
	"sort"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/mult"
)

// Grid spans the explored configuration space. The paper's 48-corner space
// is DefaultGrid.
type Grid struct {
	Tau0s   []float64
	VDAC0s  []float64
	VDACFSs []float64
}

// DefaultGrid returns the paper's 48 design corners:
// τ0 ∈ {0.16, 0.20, 0.24, 0.28} ns × V_DAC,0 ∈ {0.3, 0.4, 0.5} V ×
// V_DAC,FS ∈ {0.7, 0.8, 0.9, 1.0} V.
func DefaultGrid() Grid {
	return Grid{
		Tau0s:   []float64{0.16e-9, 0.20e-9, 0.24e-9, 0.28e-9},
		VDAC0s:  []float64{0.3, 0.4, 0.5},
		VDACFSs: []float64{0.7, 0.8, 0.9, 1.0},
	}
}

// Validate rejects grids that cannot produce a corner: an empty axis slice
// (the classic silent-empty-sweep bug) or a grid whose combinations are all
// physically invalid. Sweep and SweepWith call it, so a misbuilt grid is a
// descriptive error instead of an empty result.
func (g Grid) Validate() error {
	for _, axis := range []struct {
		name string
		vals []float64
	}{{"tau0", g.Tau0s}, {"vdac0", g.VDAC0s}, {"vdacfs", g.VDACFSs}} {
		if len(axis.vals) == 0 {
			return fmt.Errorf("dse: grid axis %s is empty", axis.name)
		}
	}
	if len(g.Configs()) == 0 {
		// Every combination failed mult.Config validation; the first
		// combination's error names the actual violation.
		first := mult.Config{Tau0: g.Tau0s[0], VDAC0: g.VDAC0s[0], VDACFS: g.VDACFSs[0]}
		return fmt.Errorf("dse: grid has no valid corner: %w", first.Validate())
	}
	return nil
}

// Configs expands the grid into the corner list (row-major:
// τ0 outermost, V_DAC,FS innermost), skipping invalid combinations.
func (g Grid) Configs() []mult.Config {
	var out []mult.Config
	for _, tau := range g.Tau0s {
		for _, v0 := range g.VDAC0s {
			for _, fs := range g.VDACFSs {
				cfg := mult.Config{Tau0: tau, VDAC0: v0, VDACFS: fs}
				if cfg.Validate() == nil {
					out = append(out, cfg)
				}
			}
		}
	}
	return out
}

// Metrics is the per-corner score produced by the evaluation engine.
type Metrics = engine.Metrics

// Evaluate scores one configuration at the given condition with the
// behavioral backend (no pool, no cache — for one-off scoring; sweeps
// should go through an engine).
func Evaluate(model *core.Model, cfg mult.Config, cond device.PVT) (Metrics, error) {
	return engine.Behavioral{Model: model}.Evaluate(cfg, cond)
}

// Sweep evaluates every corner of the grid at the nominal condition on a
// fresh behavioral engine with the given worker count and returns the
// metrics in grid order. Callers that run several sweeps (figures, tables,
// condition excursions) should build one engine and use SweepWith so
// repeated corners hit the cache.
func Sweep(model *core.Model, grid Grid, workers int) ([]Metrics, error) {
	return SweepWith(engine.New(engine.Behavioral{Model: model}, workers), grid, device.Nominal())
}

// SweepWith evaluates every corner of the grid at cond through the given
// engine's batched submission path: one batch claims the whole grid, so
// per-job scheduling is amortized and — when the engine has a persistent
// store attached — freshly computed corners persist in groups. Results come
// back in grid order regardless of the engine's worker count.
func SweepWith(eng *engine.Engine, grid Grid, cond device.PVT) ([]Metrics, error) {
	cfgs := grid.Configs()
	if len(cfgs) == 0 {
		// Validate expands the grid again, but only on this error path; the
		// sweep itself pays one expansion.
		return nil, grid.Validate()
	}
	mets, err := eng.EvaluateBatch(engine.Jobs(cfgs, cond))
	if err != nil {
		return nil, fmt.Errorf("dse: %w", err)
	}
	return mets, nil
}

// Selection holds the three corners the paper's Table I reports.
type Selection struct {
	FOM       Metrics // maximizes Eq. 9
	Power     Metrics // minimum energy per multiplication
	Variation Metrics // smallest σ at maximum discharge (robustness pick)
}

// SigmaTieTolerance treats σ values within this relative band as tied when
// selecting the variation corner; ties resolve to the corner with the best
// large-operand accuracy ("least impacted by process variation" evaluated
// on large results, the paper's framing).
const SigmaTieTolerance = 0.01

// Select applies the paper's three selection rules to a sweep result.
func Select(metrics []Metrics) (Selection, error) {
	if len(metrics) == 0 {
		return Selection{}, fmt.Errorf("dse: empty sweep")
	}
	sel := Selection{FOM: metrics[0], Power: metrics[0], Variation: metrics[0]}
	for _, m := range metrics[1:] {
		if m.FOM() > sel.FOM.FOM() {
			sel.FOM = m
		}
		if m.EMul < sel.Power.EMul {
			sel.Power = m
		}
	}
	// Variation: min σ at max discharge with tolerance, tie-break by
	// large-operand error, then energy.
	minSigma := math.Inf(1)
	for _, m := range metrics {
		if m.SigmaMaxLSB < minSigma {
			minSigma = m.SigmaMaxLSB
		}
	}
	best := Metrics{EpsLarge: math.Inf(1), EMul: math.Inf(1)}
	for _, m := range metrics {
		if m.SigmaMaxLSB > minSigma*(1+SigmaTieTolerance) {
			continue
		}
		if m.EpsLarge < best.EpsLarge ||
			(m.EpsLarge == best.EpsLarge && m.EMul < best.EMul) {
			best = m
		}
	}
	sel.Variation = best
	return sel, nil
}

// ParetoFront returns the corners not dominated in (EpsMul, EMul): a corner
// dominates another if it is no worse in both metrics and strictly better
// in at least one. The result is sorted by energy.
func ParetoFront(metrics []Metrics) []Metrics {
	var front []Metrics
	for i, m := range metrics {
		dominated := false
		for j, o := range metrics {
			if i == j {
				continue
			}
			if o.EpsMul <= m.EpsMul && o.EMul <= m.EMul &&
				(o.EpsMul < m.EpsMul || o.EMul < m.EMul) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, m)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].EMul < front[j].EMul })
	return front
}
