package exp

import (
	"fmt"

	"optima/internal/core"
	"optima/internal/dse"
	"optima/internal/mult"
	"optima/internal/refdata"
	"optima/internal/report"
	"optima/internal/stats"
)

// scaledVWL forwards to the shared supply-tracking convention.
func scaledVWL(vwl, vdd float64) float64 { return core.SupplyScaledVWL(vwl, vdd) }

// Fig7Data holds the design-space exploration artifacts (paper Fig. 7).
type Fig7Data struct {
	// LeftError/LeftEnergy: versus V_DAC,FS at τ0 = 0.16 ns, one series per
	// V_DAC,0 (the paper's left panel).
	LeftError  *report.Chart
	LeftEnergy *report.Chart
	// RightError/RightEnergy: versus τ0 at V_DAC,0 = 0.4 V, one series per
	// V_DAC,FS (the paper's right panel).
	RightError  *report.Chart
	RightEnergy *report.Chart
	// CornersTable lists all 48 corners with their metrics.
	CornersTable *report.Table
	Metrics      []dse.Metrics
}

// Fig7 runs the 48-corner design-space exploration and assembles the
// paper's Fig. 7 panels.
func (c *Context) Fig7() (*Fig7Data, error) {
	mets, err := c.Sweep()
	if err != nil {
		return nil, err
	}
	out := &Fig7Data{Metrics: mets}
	grid := dse.DefaultGrid()

	find := func(tau, v0, fs float64) (dse.Metrics, bool) {
		for _, m := range mets {
			if m.Config.Tau0 == tau && m.Config.VDAC0 == v0 && m.Config.VDACFS == fs {
				return m, true
			}
		}
		return dse.Metrics{}, false
	}

	out.LeftError = &report.Chart{Title: "Fig. 7 left — Avg error vs V_DAC,FS (τ0 = 0.16 ns)", XLabel: "V_DAC,FS [V]", YLabel: "avg error [LSB]"}
	out.LeftEnergy = &report.Chart{Title: "Fig. 7 left — Avg energy vs V_DAC,FS (τ0 = 0.16 ns)", XLabel: "V_DAC,FS [V]", YLabel: "avg energy/op [fJ]"}
	for _, v0 := range grid.VDAC0s {
		var xs, errs, energies []float64
		for _, fs := range grid.VDACFSs {
			m, ok := find(0.16e-9, v0, fs)
			if !ok {
				continue
			}
			xs = append(xs, fs)
			errs = append(errs, m.EpsMul)
			energies = append(energies, m.EMul*1e15)
		}
		name := fmt.Sprintf("V_DAC,0=%.1f V", v0)
		if err := out.LeftError.AddSeries(name, xs, errs); err != nil {
			return nil, err
		}
		if err := out.LeftEnergy.AddSeries(name, xs, energies); err != nil {
			return nil, err
		}
	}

	out.RightError = &report.Chart{Title: "Fig. 7 right — Avg error vs τ0 (V_DAC,0 = 0.4 V)", XLabel: "τ0 [ns]", YLabel: "avg error [LSB]"}
	out.RightEnergy = &report.Chart{Title: "Fig. 7 right — Avg energy vs τ0 (V_DAC,0 = 0.4 V)", XLabel: "τ0 [ns]", YLabel: "avg energy/op [fJ]"}
	for _, fs := range grid.VDACFSs {
		var xs, errs, energies []float64
		for _, tau := range grid.Tau0s {
			m, ok := find(tau, 0.4, fs)
			if !ok {
				continue
			}
			xs = append(xs, tau*1e9)
			errs = append(errs, m.EpsMul)
			energies = append(energies, m.EMul*1e15)
		}
		name := fmt.Sprintf("V_DAC,FS=%.1f V", fs)
		if err := out.RightError.AddSeries(name, xs, errs); err != nil {
			return nil, err
		}
		if err := out.RightEnergy.AddSeries(name, xs, energies); err != nil {
			return nil, err
		}
	}

	tbl := report.NewTable("Fig. 7 — 48-corner design-space exploration",
		"τ0 [ns]", "V_DAC,0 [V]", "V_DAC,FS [V]", "ϵ_mul [LSB]", "E_mul [fJ]", "σ@max [LSB]", "FOM [1/(LSB·fJ)]")
	for _, m := range mets {
		tbl.AddRow(m.Config.Tau0*1e9, m.Config.VDAC0, m.Config.VDACFS,
			m.EpsMul, m.EMul*1e15, m.SigmaMaxLSB, m.FOM())
	}
	out.CornersTable = tbl
	return out, nil
}

// Table1Data holds the selected-corner artifacts (paper Table I).
type Table1Data struct {
	Selection dse.Selection
	Table     *report.Table
	// EnergyPerOpPJ is the average energy of a full operation (word write
	// plus multiplication) at the fom corner — the paper's 1.05 pJ claim.
	EnergyPerOpPJ float64
	// WorstSigmaMV is the largest analog σ among the selected corners
	// (paper: 5.04 mV).
	WorstSigmaMV float64
}

// Table1 selects the fom/power/variation corners and builds the
// paper-vs-measured table.
func (c *Context) Table1() (*Table1Data, error) {
	sel, err := c.Selection()
	if err != nil {
		return nil, err
	}
	out := &Table1Data{Selection: sel}
	paper := refdata.Table1()
	tbl := report.NewTable("Table I — Selected design corners (paper → measured)",
		"corner", "τ0 [ns]", "V_DAC,0 [V]", "V_DAC,FS [V]", "ϵ_mul [LSB]", "E_mul [fJ]")
	rows := []struct {
		name  string
		m     dse.Metrics
		paper refdata.CornerRow
	}{
		{"fom", sel.FOM, paper[0]},
		{"power", sel.Power, paper[1]},
		{"variation", sel.Variation, paper[2]},
	}
	for _, r := range rows {
		tbl.AddRow(r.name+" (paper)", r.paper.Tau0NS, r.paper.VDAC0, r.paper.VDACFS, r.paper.EpsMulLSB, r.paper.EMulFJ)
		tbl.AddRow(r.name+" (measured)", r.m.Config.Tau0*1e9, r.m.Config.VDAC0, r.m.Config.VDACFS,
			r.m.EpsMul, r.m.EMul*1e15)
		if s := r.m.SigmaMaxVolt * 1e3; s > out.WorstSigmaMV {
			out.WorstSigmaMV = s
		}
	}
	out.Table = tbl
	out.EnergyPerOpPJ = (c.Model.Energy.WriteEnergy(1.0, 27) + sel.FOM.EMul) * 1e12
	return out, nil
}

// Fig8Data holds the corner PVT analysis artifacts (paper Fig. 8).
type Fig8Data struct {
	ErrorByResult *report.Chart
	SigmaByResult *report.Chart
	ErrorVsVDD    *report.Chart
	ErrorVsTemp   *report.Chart
}

// Fig8 profiles the three selected corners by expected result and under
// supply/temperature excursions.
func (c *Context) Fig8() (*Fig8Data, error) {
	sel, err := c.Selection()
	if err != nil {
		return nil, err
	}
	out := &Fig8Data{
		ErrorByResult: &report.Chart{Title: "Fig. 8 left — Avg error vs expected result", XLabel: "expected result", YLabel: "avg error [LSB]"},
		SigmaByResult: &report.Chart{Title: "Fig. 8 left — Analog σ vs expected result", XLabel: "expected result", YLabel: "σ [LSB]"},
		ErrorVsVDD:    &report.Chart{Title: "Fig. 8 right — Avg error vs supply", XLabel: "VDD [V]", YLabel: "avg error [LSB]"},
		ErrorVsTemp:   &report.Chart{Title: "Fig. 8 right — Avg error vs temperature", XLabel: "T [°C]", YLabel: "avg error [LSB]"},
	}
	corners := []struct {
		name string
		cfg  mult.Config
	}{
		{"fom", sel.FOM.Config},
		{"power", sel.Power.Config},
		{"variation", sel.Variation.Config},
	}
	for _, corner := range corners {
		prof, err := dse.ProfileByResult(c.Model, corner.cfg, nominalCond())
		if err != nil {
			return nil, err
		}
		xs := make([]float64, len(prof.Expected))
		for i, e := range prof.Expected {
			xs[i] = float64(e)
		}
		if err := out.ErrorByResult.AddSeries(corner.name, xs, prof.AvgError); err != nil {
			return nil, err
		}
		if err := out.SigmaByResult.AddSeries(corner.name, xs, prof.SigmaLSB); err != nil {
			return nil, err
		}
		vddSweep, err := dse.SweepVDD(c.Engine(), corner.cfg, stats.Linspace(0.90, 1.10, 9))
		if err != nil {
			return nil, err
		}
		if err := out.ErrorVsVDD.AddSeries(corner.name, vddSweep.X, vddSweep.AvgError); err != nil {
			return nil, err
		}
		tempSweep, err := dse.SweepTemp(c.Engine(), corner.cfg, stats.Linspace(0, 60, 7))
		if err != nil {
			return nil, err
		}
		if err := out.ErrorVsTemp.AddSeries(corner.name, tempSweep.X, tempSweep.AvgError); err != nil {
			return nil, err
		}
	}
	return out, nil
}
