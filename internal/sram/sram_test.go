package sram

import (
	"math"
	"testing"
	"testing/quick"

	"optima/internal/device"
	"optima/internal/spice"
	"optima/internal/stats"
)

func TestWordStoreValueRoundTrip(t *testing.T) {
	var w Word
	for v := uint(0); v < 16; v++ {
		if err := w.Store(v); err != nil {
			t.Fatal(err)
		}
		if got := w.Value(); got != v {
			t.Fatalf("Value = %d, want %d", got, v)
		}
	}
	if err := w.Store(16); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestWordBitOrder(t *testing.T) {
	var w Word
	if err := w.Store(0b1010); err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false, true} // little-endian
	for i, b := range want {
		if w[i].Bit != b {
			t.Fatalf("bit %d = %v, want %v", i, w[i].Bit, b)
		}
	}
}

func TestArrayWriteStoresAndCosts(t *testing.T) {
	a := NewArray(device.Generic65(), 4)
	cond := device.Nominal()
	e, err := a.Write(2, 13, cond, spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Words[2].Value(); got != 13 {
		t.Fatalf("stored %d, want 13", got)
	}
	// Dominated by 4 × C_BL·VDD² = 1 pJ; the paper's per-op budget.
	if e < 0.8e-12 || e > 1.4e-12 {
		t.Fatalf("write energy %g J outside the ~1 pJ regime", e)
	}
	if _, err := a.Write(9, 1, cond, spice.DefaultConfig()); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func TestPrechargeEnergyLinearInSwing(t *testing.T) {
	a := NewArray(device.Generic65(), 1)
	cond := device.Nominal()
	e1 := a.PrechargeEnergy(0.1, cond)
	e2 := a.PrechargeEnergy(0.2, cond)
	if math.Abs(e2-2*e1) > 1e-18 {
		t.Fatalf("precharge energy not linear: %g vs %g", e1, e2)
	}
	if a.PrechargeEnergy(-0.5, cond) != 0 {
		t.Fatal("negative swing must cost nothing")
	}
}

func TestWriteEnergyIncreasesWithVDD(t *testing.T) {
	tech := device.Generic65()
	low := device.PVT{Corner: device.CornerTT, VDD: 0.9, TempC: 27}
	high := device.PVT{Corner: device.CornerTT, VDD: 1.1, TempC: 27}
	eLow, err := WriteEnergy(tech, spice.DefaultCBL, low, spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eHigh, err := WriteEnergy(tech, spice.DefaultCBL, high, spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Roughly quadratic: (1.1/0.9)² ≈ 1.49.
	if ratio := eHigh / eLow; ratio < 1.3 || ratio > 1.7 {
		t.Fatalf("write energy VDD ratio = %g, want ≈1.5", ratio)
	}
}

func TestReadRecoversStoredValue(t *testing.T) {
	a := NewArray(device.Generic65(), 2)
	cond := device.Nominal()
	if _, err := a.Write(0, 9, cond, spice.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	res, err := a.Read(0, cond, spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 9 {
		t.Fatalf("read %d, want 9", res.Value)
	}
	if res.Latency <= 0 || res.Latency > 3e-9 {
		t.Fatalf("read latency %g s implausible", res.Latency)
	}
	if res.Energy <= 0 {
		t.Fatal("read energy must be positive")
	}
}

func TestCellMismatchAffectsDischarge(t *testing.T) {
	tech := device.Generic65()
	cond := device.Nominal()
	var cell Cell
	cell.AccessMM = device.Mismatch{DVth: 0.02}
	slow := cell.DischargePath(tech, 0.9, cond)
	var nomCell Cell
	nominal := nomCell.DischargePath(tech, 0.9, cond)
	rSlow, err := slow.Discharge(1e-9, spice.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rNom, err := nominal.Discharge(1e-9, spice.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Waveform.Final()[0] <= rNom.Waveform.Final()[0] {
		t.Fatal("higher access Vth must slow the discharge")
	}
}

func TestHoldSNMPositive(t *testing.T) {
	snm := HoldSNM(device.Generic65(), device.Nominal())
	if snm < 0.05 || snm > 0.6 {
		t.Fatalf("hold SNM %g V outside plausible 6T range", snm)
	}
}

func TestHoldSNMDegradesWithSupply(t *testing.T) {
	tech := device.Generic65()
	low := HoldSNM(tech, device.PVT{Corner: device.CornerTT, VDD: 0.7, TempC: 27})
	nom := HoldSNM(tech, device.Nominal())
	if low >= nom {
		t.Fatalf("SNM should shrink at low VDD: %g vs %g", low, nom)
	}
}

func TestWriteMargin(t *testing.T) {
	wm, err := WriteMargin(device.Generic65(), device.Nominal(), 300e-12, spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if wm <= 0.2 || wm >= 1.0 {
		t.Fatalf("write margin V_WL %g outside (0.2, 1.0)", wm)
	}
}

func TestSampleMismatchPopulatesAllCells(t *testing.T) {
	a := NewArray(device.Generic65(), 3)
	a.SampleMismatch(stats.NewRNG(5))
	var zero int
	for r := range a.Words {
		for b := range a.Words[r] {
			if a.Words[r][b].AccessMM == (device.Mismatch{}) {
				zero++
			}
		}
	}
	if zero != 0 {
		t.Fatalf("%d cells left unmismatched", zero)
	}
}

// Property: store/value round-trips for every 4-bit value.
func TestWordRoundTripProperty(t *testing.T) {
	f := func(v uint8) bool {
		var w Word
		val := uint(v) % 16
		if err := w.Store(val); err != nil {
			return false
		}
		return w.Value() == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeDisturbMarginPositive(t *testing.T) {
	// Worst case of the paper's design space: V_WL = 1.0 V for 8·0.28 ns.
	report, err := ComputeDisturbCheck(device.Generic65(), 1.0, 2.24e-9, device.Nominal(), spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.MaxBounce <= 0 {
		t.Fatal("no internal-node bounce recorded")
	}
	if report.TripPoint < 0.2 || report.TripPoint > 0.8 {
		t.Fatalf("trip point %g V implausible", report.TripPoint)
	}
	if report.Margin <= 0 {
		t.Fatalf("compute operation disturbs the cell: bounce %.3f V vs trip %.3f V",
			report.MaxBounce, report.TripPoint)
	}
}

func TestComputeDisturbWorsensWithDrive(t *testing.T) {
	tech := device.Generic65()
	low, err := ComputeDisturbCheck(tech, 0.6, 2e-9, device.Nominal(), spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	high, err := ComputeDisturbCheck(tech, 1.0, 2e-9, device.Nominal(), spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if high.MaxBounce <= low.MaxBounce {
		t.Fatalf("stronger word line should bounce the cell node harder: %g vs %g",
			high.MaxBounce, low.MaxBounce)
	}
}
