package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"testing"

	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/mult"
)

// randRecord draws a record with adversarial float values (negative zero,
// denormals, extremes) — everything must survive the codec bit-exactly.
func randRecord(rng *rand.Rand) record {
	f := func() float64 {
		switch rng.Intn(6) {
		case 0:
			return 0
		case 1:
			return math.Copysign(0, -1)
		case 2:
			return 5e-324 // smallest denormal
		case 3:
			return -math.MaxFloat64
		case 4:
			return rng.NormFloat64()
		default:
			return rng.Float64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
	}
	backends := []string{"", engine.BackendBehavioral, engine.BackendGolden, "a-rather-long-backend-name"}
	fps := []string{"", "fp", "0123456789abcdef0123456789abcdef"}
	rec := record{
		FP: fps[rng.Intn(len(fps))],
		Key: engine.Key{
			Backend: backends[rng.Intn(len(backends))],
			Job: engine.Job{
				Config: mult.Config{Tau0: f(), VDAC0: f(), VDACFS: f()},
				Cond: device.PVT{
					Corner: device.ProcessCorner(rng.Intn(3)),
					VDD:    f(),
					TempC:  f(),
				},
			},
		},
	}
	rec.Met = engine.Metrics{
		Config: rec.Key.Config, Cond: rec.Key.Cond,
		EpsMul: f(), EpsLarge: f(), EpsSmall: f(), EMul: f(),
		SigmaMaxLSB: f(), SigmaMaxVolt: f(), LSBVolt: f(),
	}
	return rec
}

// TestRecordRoundTrip is the codec's property test: across a large seeded
// population of adversarial records, decode(encode(r)) == r exactly, the
// decoder consumes exactly the encoded bytes, and concatenated records
// decode back in sequence.
func TestRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var stream []byte
	var want []record
	for i := 0; i < 500; i++ {
		rec := randRecord(rng)
		if !validMetrics(rec.Met) {
			continue // NaN/Inf are rejected by design, not round-tripped
		}
		one := appendRecord(nil, rec)
		got, n, ok := decodeRecord(one)
		if !ok {
			t.Fatalf("record %d does not decode: %+v", i, rec)
		}
		if n != len(one) {
			t.Fatalf("record %d: decoded %d of %d bytes", i, n, len(one))
		}
		if got != rec {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, got, rec)
		}
		stream = appendRecord(stream, rec)
		want = append(want, rec)
	}
	for i, rec := range want {
		got, n, ok := decodeRecord(stream)
		if !ok {
			t.Fatalf("stream record %d does not decode", i)
		}
		if got != rec {
			t.Fatalf("stream record %d mismatch", i)
		}
		stream = stream[n:]
	}
	if len(stream) != 0 {
		t.Fatalf("%d trailing bytes after the last record", len(stream))
	}
}

// TestDecodeRecordTruncation: a record truncated at EVERY byte offset must
// return ok == false, never panic, never misdecode.
func TestDecodeRecordTruncation(t *testing.T) {
	rec := record{FP: "fp-a", Key: testKey(3), Met: testMet(3)}
	full := appendRecord(nil, rec)
	for cut := 0; cut < len(full); cut++ {
		if _, _, ok := decodeRecord(full[:cut]); ok {
			t.Fatalf("truncation to %d of %d bytes decoded as a record", cut, len(full))
		}
	}
}

// TestDecodeRecordCorruption: flipping any single byte of a record must be
// caught (the CRC covers the body, the length prefix is validated by
// framing), except for bits the CRC itself occupies — a corrupt CRC also
// fails the check.
func TestDecodeRecordCorruption(t *testing.T) {
	rec := record{FP: "fp-a", Key: testKey(7), Met: testMet(7)}
	full := appendRecord(nil, rec)
	for i := 0; i < len(full); i++ {
		corrupt := append([]byte(nil), full...)
		corrupt[i] ^= 0x40
		got, _, ok := decodeRecord(corrupt)
		if ok && got != rec {
			t.Fatalf("byte %d flip decoded to a DIFFERENT record: %+v", i, got)
		}
		if ok && i != 0 {
			// A flip in the length prefix's low byte could in principle still
			// frame a valid record; anywhere else ok must be false.
			t.Fatalf("byte %d flip went undetected", i)
		}
	}
}

// TestTruncationAtEveryOffset is the whole-store property: a single-
// partition store truncated at every byte offset opens, serves exactly the
// records fully contained in the kept prefix, and accepts new appends.
func TestTruncationAtEveryOffset(t *testing.T) {
	// Encode the reference stream once to learn the record boundaries.
	const n = 4
	var boundaries []int // cumulative end offset of record i
	var stream []byte
	for i := 0; i < n; i++ {
		stream = appendRecord(stream, record{FP: "fp-a", Key: testKey(i), Met: testMet(i)})
		boundaries = append(boundaries, len(stream))
	}

	for cut := 0; cut <= len(stream); cut++ {
		dir := t.TempDir()
		s, err := Open(dir, Options{Fingerprint: "fp-a", Partitions: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := s.Put(testKey(i), testMet(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		seg := segPath(dir, 0)
		if err := os.Truncate(seg, int64(cut)); err != nil {
			t.Fatal(err)
		}
		s, err = Open(dir, Options{Fingerprint: "fp-a", Partitions: 1})
		if err != nil {
			t.Fatalf("cut %d: open failed: %v", cut, err)
		}
		wantLive := 0
		for _, b := range boundaries {
			if b <= cut {
				wantLive++
			}
		}
		if got := s.Len(); got != wantLive {
			t.Fatalf("cut %d: %d records served, want %d", cut, got, wantLive)
		}
		if err := s.Put(testKey(100), testMet(100)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s, err = Open(dir, Options{Fingerprint: "fp-a", Partitions: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Len(); got != wantLive+1 {
			t.Fatalf("cut %d: %d records after repair+append, want %d", cut, got, wantLive+1)
		}
		s.Close()
	}
}

// TestCorruptMidSegmentServesPrefix: CRC damage in the middle of a segment
// keeps the prefix, drops the suffix, and never fails the open.
func TestCorruptMidSegmentServesPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp-a", Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(dir, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the 6th record's body.
	var off int
	for i := 0; i < 5; i++ {
		_, n, ok := decodeRecord(data[off:])
		if !ok {
			t.Fatal("fixture decode failed")
		}
		off += n
	}
	data[off+recordHeaderLen+4] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, Options{Fingerprint: "fp-a", Partitions: 1})
	if err != nil {
		t.Fatalf("mid-segment corruption must not fail the open: %v", err)
	}
	defer s.Close()
	if got := s.Len(); got != 5 {
		t.Fatalf("%d records survive mid-segment corruption, want the 5-record prefix", got)
	}
	for i := 0; i < 5; i++ {
		if met, ok := s.Get(testKey(i)); !ok || met != testMet(i) {
			t.Fatalf("prefix record %d lost or corrupted", i)
		}
	}
	if err := s.Put(testKey(50), testMet(50)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(50)); !ok {
		t.Fatal("store not writable after corruption repair")
	}
}

// TestV2SegmentBytesAtMostHalfOfV1 pins the codec's size win: the same
// record population encodes to less than half the bytes of the v1 JSONL
// form.
func TestV2SegmentBytesAtMostHalfOfV1(t *testing.T) {
	var v2 []byte
	var v1 bytes.Buffer
	for i := 0; i < 1000; i++ {
		rec := record{FP: "0123456789abcdef0123456789abcdef", Key: testKey(i), Met: testMet(i)}
		v2 = appendRecord(v2, rec)
		line, err := json.Marshal(v1Record{FP: rec.FP, Key: rec.Key, Met: rec.Met})
		if err != nil {
			t.Fatal(err)
		}
		v1.Write(line)
		v1.WriteByte('\n')
	}
	if 2*len(v2) >= v1.Len() {
		t.Fatalf("v2 encoding is %d bytes vs %d for v1 JSONL — want at least 2x smaller", len(v2), v1.Len())
	}
	t.Logf("segment bytes: v1 JSONL %d, v2 binary %d (%.1fx smaller)", v1.Len(), len(v2), float64(v1.Len())/float64(len(v2)))
}

// TestMaxRecordLenRejected: an absurd length prefix is framing damage.
func TestMaxRecordLenRejected(t *testing.T) {
	buf := make([]byte, recordHeaderLen+maxRecordLen+1)
	binary.LittleEndian.PutUint32(buf, uint32(maxRecordLen+1))
	if _, _, ok := decodeRecord(buf); ok {
		t.Fatal("oversized length prefix accepted")
	}
}

// FuzzDecodeRecord: arbitrary bytes must never panic the decoder, and
// anything it accepts must re-encode to the identical wire form.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecord(nil, record{FP: "fp", Key: testKey(1), Met: testMet(1)}))
	f.Add(appendRecord(nil, record{}))
	torn := appendRecord(nil, record{FP: "fp", Key: testKey(2), Met: testMet(2)})
	f.Add(torn[:len(torn)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, ok := decodeRecord(data)
		if !ok {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		if got := appendRecord(nil, rec); !bytes.Equal(got, data[:n]) {
			t.Fatalf("accepted record does not re-encode to its wire form")
		}
	})
}
