package report

import (
	"fmt"
	"os"
	"path/filepath"
)

// Output manages an experiment artifact directory, writing tables as both
// .txt and .csv and charts as .svg.
type Output struct {
	Dir string
	// Quiet suppresses the "wrote …" notes on stdout.
	Quiet bool
}

// NewOutput creates (if necessary) and returns an artifact directory.
func NewOutput(dir string) (*Output, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("report: create output dir: %w", err)
	}
	return &Output{Dir: dir}, nil
}

// WriteTable stores the table under name.txt and name.csv.
func (o *Output) WriteTable(name string, t *Table) error {
	txt, err := os.Create(filepath.Join(o.Dir, name+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := t.Render(txt); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(o.Dir, name+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	if err := t.CSV(csv); err != nil {
		return err
	}
	o.note(name + ".txt/.csv")
	return nil
}

// WriteChart stores the chart under name.svg (800×500).
func (o *Output) WriteChart(name string, c *Chart) error {
	f, err := os.Create(filepath.Join(o.Dir, name+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.RenderSVG(f, 800, 500); err != nil {
		return err
	}
	o.note(name + ".svg")
	return nil
}

func (o *Output) note(name string) {
	if !o.Quiet {
		fmt.Printf("wrote %s\n", filepath.Join(o.Dir, name))
	}
}
