package engine

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/mult"
	"optima/internal/spice"
)

// TestGoldenTrimCachedAcrossConditions pins the trim cache: a condition
// sweep over one configuration pays the 16 trim transients exactly once.
func TestGoldenTrimCachedAcrossConditions(t *testing.T) {
	if testing.Short() {
		t.Skip("golden-simulation bound")
	}
	calib := core.QuickCalibration()
	backend := NewGoldenBackend(calib.Tech, calib.Spice)
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}

	first, err := backend.trimFor(cfg, 1, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.LSBVolt <= 0 || first.Transients != mult.OperandMax+1 {
		t.Fatalf("implausible trim %+v", first)
	}
	second, err := backend.trimFor(cfg, 1, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatalf("cached trim differs: %+v vs %+v", second, first)
	}
	if got := backend.TrimCalibrations(); got != 1 {
		t.Fatalf("%d trim calibrations for one config, want 1", got)
	}

	// A different configuration calibrates its own trim.
	other := mult.Config{Tau0: 0.20e-9, VDAC0: 0.3, VDACFS: 1.0}
	if _, err := backend.trimFor(other, 1, nil, 0); err != nil {
		t.Fatal(err)
	}
	if got := backend.TrimCalibrations(); got != 2 {
		t.Fatalf("%d trim calibrations for two configs, want 2", got)
	}

	// The zero value must work too (lazy map init).
	var zero Golden
	zero.Tech, zero.Spice = calib.Tech, calib.Spice
	if _, err := zero.trimFor(cfg, 1, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := zero.trimFor(cfg, 1, nil, 0); err != nil {
		t.Fatal(err)
	}
	if got := zero.TrimCalibrations(); got != 1 {
		t.Fatalf("zero-value backend ran %d calibrations, want 1", got)
	}
}

// TestGoldenTrimSingleflightConcurrent pins the trim cache's claim
// semantics: concurrent first evaluations of one configuration share a
// single 16-transient calibration instead of each running their own (run
// with -race to check the claimed-entry handoff).
func TestGoldenTrimSingleflightConcurrent(t *testing.T) {
	calib := core.QuickCalibration()
	backend := NewGoldenBackend(calib.Tech, calib.Spice)
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}

	const goroutines = 8
	trims := make([]mult.GoldenTrim, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trims[i], errs[i] = backend.trimFor(cfg, 1, nil, 0)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if trims[i] != trims[0] {
			t.Fatalf("goroutine %d got a different trim: %+v vs %+v", i, trims[i], trims[0])
		}
	}
	if got := backend.TrimCalibrations(); got != 1 {
		t.Fatalf("%d trim calibrations under concurrent first use, want 1 (singleflight)", got)
	}
}

// TestGoldenEvaluateWorkerInvariance mirrors the sweep-level worker-
// invariance test one layer down: the golden backend's Metrics must be
// byte-identical at every intra-job worker count, because the engine's
// content-addressed cache (and the persistent store) index them by key
// alone.
func TestGoldenEvaluateWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("golden-simulation bound")
	}
	calib := core.QuickCalibration()
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}
	cond := device.Nominal()

	serialBackend := NewGoldenBackend(calib.Tech, calib.Spice)
	base, err := serialBackend.Evaluate(cfg, cond) // intra = 1 path
	if err != nil {
		t.Fatal(err)
	}
	if base.EpsMul <= 0 || base.SigmaMaxLSB <= 0 {
		t.Fatalf("implausible serial metrics %+v", base)
	}
	for _, intra := range []int{2, runtime.GOMAXPROCS(0), 0} {
		// Fresh backend per count so the trim calibration itself also runs
		// at this worker count.
		backend := NewGoldenBackend(calib.Tech, calib.Spice)
		m, err := backend.EvaluateBudget(cfg, cond, intra)
		if err != nil {
			t.Fatal(err)
		}
		if m != base {
			t.Fatalf("intra=%d metrics differ from serial:\n  got  %+v\n  want %+v", intra, m, base)
		}
	}
}

var (
	trimBenchOnce sync.Once
	trimBenchTech = device.Generic65()
	trimBenchCfg  = spice.Config{}
)

func trimBenchSetup() {
	trimBenchOnce.Do(func() {
		calib := core.QuickCalibration()
		trimBenchTech = calib.Tech
		trimBenchCfg = calib.Spice
	})
}

// BenchmarkGoldenTrim quantifies the satellite win: cold is the 16-transient
// calibration every golden evaluation used to pay per (config, condition);
// cached is the per-condition cost after the backend memoized the config.
func BenchmarkGoldenTrim(b *testing.B) {
	trimBenchSetup()
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mult.CalibrateGoldenTrim(trimBenchTech, cfg, trimBenchCfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		backend := NewGoldenBackend(trimBenchTech, trimBenchCfg)
		if _, err := backend.trimFor(cfg, 1, nil, 0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := backend.trimFor(cfg, 1, nil, 0); err != nil {
				b.Fatal(err)
			}
		}
		if got := backend.TrimCalibrations(); got != 1 {
			b.Fatalf("cached path recalibrated: %d calibrations", got)
		}
	})
}

// BenchmarkGoldenEvaluate quantifies the tentpole: one cold golden corner
// (16 trim + 256 input-space + GoldenSigmaSamples Monte-Carlo transients)
// evaluated serially versus with an 8-worker intra-job budget. A fresh
// backend per iteration keeps every run cold — this is the per-corner cost
// a golden sweep pays, and the serial-vs-parallel gap is the intra-job
// speed-up (recorded in CI's BENCH_engine.json).
func BenchmarkGoldenEvaluate(b *testing.B) {
	trimBenchSetup()
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}
	cond := device.Nominal()
	for _, intra := range []int{1, 8} {
		b.Run(fmt.Sprintf("cold/intra=%d", intra), func(b *testing.B) {
			var base *Metrics
			for i := 0; i < b.N; i++ {
				backend := NewGoldenBackend(trimBenchTech, trimBenchCfg)
				m, err := backend.EvaluateBudget(cfg, cond, intra)
				if err != nil {
					b.Fatal(err)
				}
				if base == nil {
					base = &m
				} else if m != *base {
					b.Fatalf("metrics drifted between runs: %+v vs %+v", m, *base)
				}
			}
		})
	}
}
