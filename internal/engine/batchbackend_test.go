package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"optima/internal/device"
	"optima/internal/mult"
)

// batchMet is the deterministic value the fake batch backend reports for a
// job — a pure function of the inputs, like any real backend.
func batchMet(j Job) Metrics {
	return Metrics{
		Config: j.Config, Cond: j.Cond,
		EpsMul: j.Config.Tau0*1e9 + j.Cond.VDD,
		EMul:   float64(j.Cond.Corner+1) * 1e-15,
	}
}

// fakeBatchBackend drives runBatchBackend through its contract edges. mode
// selects the behavior of the next EvaluateJobs call; tests flip it between
// submissions to check that failed claims were released, not memoized.
type fakeBatchBackend struct {
	mode       atomic.Value // string: "ok", "dup", "skip-first", "panic", "cancel"
	calls      atomic.Int64
	gotWorkers atomic.Int64
}

func newFakeBatchBackend(mode string) *fakeBatchBackend {
	b := &fakeBatchBackend{}
	b.mode.Store(mode)
	return b
}

func (b *fakeBatchBackend) Name() string { return "fake-batch" }

func (b *fakeBatchBackend) Evaluate(cfg mult.Config, cond device.PVT) (Metrics, error) {
	return batchMet(Job{Config: cfg, Cond: cond}), nil
}

func (b *fakeBatchBackend) EvaluateJobs(ctx context.Context, jobs []Job, workers int, onDone func(int, Metrics, error)) {
	b.calls.Add(1)
	b.gotWorkers.Store(int64(workers))
	switch b.mode.Load().(string) {
	case "ok":
		for i, j := range jobs {
			onDone(i, batchMet(j), nil)
		}
	case "dup":
		// Violates exactly-once from the backend side: every index reported
		// twice, plus out-of-range indexes. The engine must drop the extras.
		for i, j := range jobs {
			onDone(i, batchMet(j), nil)
			onDone(i, Metrics{}, errors.New("duplicate report"))
		}
		onDone(-1, Metrics{}, nil)
		onDone(len(jobs), Metrics{}, nil)
	case "skip-first":
		for i, j := range jobs {
			if i == 0 {
				continue
			}
			onDone(i, batchMet(j), nil)
		}
	case "panic":
		panic("batch backend exploded")
	case "cancel":
		for i := range jobs {
			onDone(i, Metrics{}, fmt.Errorf("remote: abandoned: %w", context.Canceled))
		}
	}
}

func batchTestJobs(n int) []Job {
	cfgs := make([]mult.Config, n)
	for i := range cfgs {
		cfgs[i] = mult.Config{Tau0: (0.16 + 0.01*float64(i)) * 1e-9, VDAC0: 0.3, VDACFS: 1.0}
	}
	return Jobs(cfgs, device.Nominal())
}

// TestBatchBackendResolves: a batch-aware backend receives the whole miss
// set in one call with the engine's worker budget as the hint, its results
// land in the cache, and a resubmission never reaches it again.
func TestBatchBackendResolves(t *testing.T) {
	backend := newFakeBatchBackend("ok")
	eng := New(backend, 3)
	jobs := batchTestJobs(5)
	got, err := eng.EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if got[i] != batchMet(j) {
			t.Fatalf("job %d: got %+v, want %+v", i, got[i], batchMet(j))
		}
	}
	if n := backend.calls.Load(); n != 1 {
		t.Fatalf("backend called %d times for one batch, want 1", n)
	}
	if w := backend.gotWorkers.Load(); w != 3 {
		t.Fatalf("worker hint %d, want the engine budget 3", w)
	}
	if st := eng.Stats(); st.Misses != uint64(len(jobs)) {
		t.Fatalf("misses %d, want %d", st.Misses, len(jobs))
	}
	// Memory tier serves the rerun; the backend is not consulted.
	if _, err := eng.EvaluateBatch(jobs); err != nil {
		t.Fatal(err)
	}
	if n := backend.calls.Load(); n != 1 {
		t.Fatalf("cached rerun reached the backend (%d calls)", n)
	}
}

// TestBatchBackendDuplicateReportsDropped: a backend that violates
// exactly-once (duplicate and out-of-range onDone calls) still yields
// correct results and exactly one miss per job.
func TestBatchBackendDuplicateReportsDropped(t *testing.T) {
	backend := newFakeBatchBackend("dup")
	eng := New(backend, 2)
	jobs := batchTestJobs(4)
	got, err := eng.EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if got[i] != batchMet(j) {
			t.Fatalf("job %d: got %+v (a duplicate report won), want %+v", i, got[i], batchMet(j))
		}
	}
	if st := eng.Stats(); st.Misses != uint64(len(jobs)) {
		t.Fatalf("misses %d, want %d — duplicate reports double-counted", st.Misses, len(jobs))
	}
}

// TestBatchBackendNeverResolved: an index the backend never reports is
// abandoned by the deferred sweep with a diagnostic error — and the claim
// is released, so a later submission evaluates it instead of inheriting
// the failure.
func TestBatchBackendNeverResolved(t *testing.T) {
	backend := newFakeBatchBackend("skip-first")
	eng := New(backend, 2)
	jobs := batchTestJobs(3)
	_, err := eng.EvaluateBatch(jobs)
	if err == nil || !strings.Contains(err.Error(), "never resolved") {
		t.Fatalf("got %v, want a never-resolved error", err)
	}
	backend.mode.Store("ok")
	got, err := eng.EvaluateBatch(jobs)
	if err != nil {
		t.Fatalf("resubmission after an unresolved claim: %v", err)
	}
	if got[0] != batchMet(jobs[0]) {
		t.Fatalf("job 0: got %+v, want %+v", got[0], batchMet(jobs[0]))
	}
}

// TestBatchBackendPanic: a panicking backend becomes per-claim errors, not
// an engine panic, and the claims are re-evaluable afterwards.
func TestBatchBackendPanic(t *testing.T) {
	backend := newFakeBatchBackend("panic")
	eng := New(backend, 2)
	jobs := batchTestJobs(3)
	_, err := eng.EvaluateBatch(jobs)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("got %v, want a panic-converted error", err)
	}
	backend.mode.Store("ok")
	if _, err := eng.EvaluateBatch(jobs); err != nil {
		t.Fatalf("resubmission after a backend panic: %v", err)
	}
}

// TestBatchBackendCancellation: a cancellation error from the backend
// abandons the claim without memoizing it — exactly the local fan-out's
// ctx-cancel semantics — and counts no miss.
func TestBatchBackendCancellation(t *testing.T) {
	backend := newFakeBatchBackend("cancel")
	eng := New(backend, 2)
	jobs := batchTestJobs(3)
	_, err := eng.EvaluateBatch(jobs)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want an error wrapping context.Canceled", err)
	}
	if st := eng.Stats(); st.Misses != 0 {
		t.Fatalf("abandoned jobs counted as %d misses, want 0", st.Misses)
	}
	backend.mode.Store("ok")
	got, err := eng.EvaluateBatch(jobs)
	if err != nil {
		t.Fatalf("resubmission after cancellation: %v", err)
	}
	for i, j := range jobs {
		if got[i] != batchMet(j) {
			t.Fatalf("job %d: got %+v, want %+v", i, got[i], batchMet(j))
		}
	}
}

// TestBatchBackendPersists: results resolved through a batch backend reach
// the store tier like locally evaluated ones — a fresh engine sharing the
// store serves the whole batch from it.
func TestBatchBackendPersists(t *testing.T) {
	store := newFakeStore()
	backend := newFakeBatchBackend("ok")
	eng := New(backend, 2).WithStore(store)
	jobs := batchTestJobs(4)
	if _, err := eng.EvaluateBatch(jobs); err != nil {
		t.Fatal(err)
	}
	fresh := New(newFakeBatchBackend("panic"), 2).WithStore(store)
	got, err := fresh.EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if got[i] != batchMet(j) {
			t.Fatalf("job %d from store: got %+v, want %+v", i, got[i], batchMet(j))
		}
	}
	if st := fresh.Stats(); st.DiskHits != uint64(len(jobs)) || st.Misses != 0 {
		t.Fatalf("fresh engine stats %+v, want all store hits", st)
	}
}
