// Package search is the adaptive multi-fidelity design-space explorer: it
// scales the paper's 48-corner exploration (internal/dse) to spaces orders
// of magnitude larger by screening candidates cheaply on the behavioral
// backend, promoting survivors rung by rung (successive halving ranked by
// (ϵ_mul, E_mul) Pareto rank and crowding distance), and re-evaluating only
// the finalists on the golden transient backend — the fidelity ladder that
// makes thousand-corner spaces tractable where exhaustive golden evaluation
// is not.
//
// The package is a pure exploration layer on the PR 1–3 substrate: every
// rung submits its candidates through engine.EvaluateBatch, so the memory →
// disk → backend cache tiers apply unchanged. With a persistent store
// attached (-cache-dir), a refinement sweep that revisits corners across
// sessions pays zero re-evaluation, and the per-rung Trace records exactly
// how much each tier absorbed.
//
// Determinism: candidate sampling is seeded (stats.NewRNG), survivors are
// selected by a deterministic total order (Pareto rank, then descending
// crowding distance, then candidate index), and the engine returns batch
// results in job order at any worker count — a search Result is
// byte-identical at -workers 1 and -workers N.
package search

import (
	"fmt"
	"math"
	"sort"

	"optima/internal/dse"
	"optima/internal/mult"
	"optima/internal/stats"
)

// Axis is one dimension of a design space: either an explicit point list
// (Values) or a materialized range [Min, Max] with Steps points, spaced
// linearly or — for Log axes — geometrically. The zero Axis is invalid;
// construct axes with LinAxis/LogAxis/ValuesAxis or fill the fields and let
// Validate check them.
type Axis struct {
	// Name labels the axis in errors and reports ("tau0", "vdac0", ...).
	Name string
	// Values, when non-empty, enumerates the axis points explicitly (must be
	// finite and strictly increasing). It overrides the range fields — the
	// bridge from dse.Grid's explicit per-axis slices.
	Values []float64
	// Min, Max bound the materialized range when Values is empty.
	Min, Max float64
	// Steps is the number of materialized points (≥ 1; Steps == 1 requires
	// Min == Max).
	Steps int
	// Log spaces the materialized points geometrically (requires Min > 0)
	// and makes refinement midpoints geometric too.
	Log bool
}

// LinAxis returns a linearly spaced axis.
func LinAxis(name string, min, max float64, steps int) Axis {
	return Axis{Name: name, Min: min, Max: max, Steps: steps}
}

// LogAxis returns a geometrically spaced axis.
func LogAxis(name string, min, max float64, steps int) Axis {
	return Axis{Name: name, Min: min, Max: max, Steps: steps, Log: true}
}

// ValuesAxis returns an axis over an explicit, strictly increasing point
// list.
func ValuesAxis(name string, values ...float64) Axis {
	return Axis{Name: name, Values: values}
}

// Validate checks the axis bounds. Every axis of a Space is validated
// before any corner is materialized — an empty or inverted axis is a
// descriptive error, never a silently empty sweep.
func (a Axis) Validate() error {
	if len(a.Values) > 0 {
		prev := math.Inf(-1)
		for _, v := range a.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("search: axis %s: non-finite value %v", a.Name, v)
			}
			if v <= prev {
				return fmt.Errorf("search: axis %s: values must be strictly increasing (%v after %v)", a.Name, v, prev)
			}
			prev = v
		}
		return nil
	}
	if a.Steps < 1 {
		return fmt.Errorf("search: axis %s: empty (no values and %d steps)", a.Name, a.Steps)
	}
	if math.IsNaN(a.Min) || math.IsInf(a.Min, 0) || math.IsNaN(a.Max) || math.IsInf(a.Max, 0) {
		return fmt.Errorf("search: axis %s: non-finite bounds [%v, %v]", a.Name, a.Min, a.Max)
	}
	if a.Min > a.Max {
		return fmt.Errorf("search: axis %s: min %v exceeds max %v", a.Name, a.Min, a.Max)
	}
	if a.Steps > 1 && a.Min == a.Max {
		return fmt.Errorf("search: axis %s: %d steps need min < max (got %v)", a.Name, a.Steps, a.Min)
	}
	if a.Steps == 1 && a.Min != a.Max {
		return fmt.Errorf("search: axis %s: a single step needs min == max (got [%v, %v])", a.Name, a.Min, a.Max)
	}
	if a.Log && a.Min <= 0 {
		return fmt.Errorf("search: axis %s: log spacing needs min > 0 (got %v)", a.Name, a.Min)
	}
	return nil
}

// Points materializes the axis into its point list. Call Validate first;
// Points on an invalid axis may return garbage.
func (a Axis) Points() []float64 {
	if len(a.Values) > 0 {
		out := make([]float64, len(a.Values))
		copy(out, a.Values)
		return out
	}
	out := make([]float64, a.Steps)
	if a.Steps == 1 {
		out[0] = a.Min
		return out
	}
	if a.Log {
		ratio := math.Log(a.Max / a.Min)
		for i := range out {
			out[i] = a.Min * math.Exp(ratio*float64(i)/float64(a.Steps-1))
		}
	} else {
		for i := range out {
			out[i] = a.Min + (a.Max-a.Min)*float64(i)/float64(a.Steps-1)
		}
	}
	// The endpoints are exact by construction for linear axes; pin the log
	// endpoint too so FromGrid-style round trips stay bitwise stable.
	out[0], out[a.Steps-1] = a.Min, a.Max
	return out
}

// midpoint returns the refinement point between two adjacent axis values:
// arithmetic for linear axes, geometric for log axes.
func (a Axis) midpoint(lo, hi float64) float64 {
	if a.Log {
		return math.Sqrt(lo * hi)
	}
	return lo + (hi-lo)/2
}

// Subdivided returns a copy of the axis with perGap midpoints inserted into
// every gap of the materialized point list (recursively bisected, so the
// original points stay bitwise identical — an embedded coarse grid remains
// an exact subset and its corners keep hitting the evaluation caches).
func (a Axis) Subdivided(perGap int) Axis {
	pts := a.Points()
	if perGap <= 0 || len(pts) < 2 {
		return ValuesAxis(a.Name, pts...)
	}
	out := []float64{pts[0]}
	for i := 1; i < len(pts); i++ {
		out = append(out, subdivideGap(a, pts[i-1], pts[i], perGap)...)
		out = append(out, pts[i])
	}
	sub := ValuesAxis(a.Name, out...)
	sub.Log = a.Log
	return sub
}

// subdivideGap bisects (lo, hi) recursively into perGap interior points
// (perGap is rounded up to the nearest 2^k−1 shape by depth; extra depth
// fills left-to-right). The recursive construction means a point inserted
// at depth d is reproduced exactly by d successive midpoint refinements.
func subdivideGap(a Axis, lo, hi float64, perGap int) []float64 {
	if perGap <= 0 {
		return nil
	}
	mid := a.midpoint(lo, hi)
	left := (perGap - 1) / 2
	right := perGap - 1 - left
	out := subdivideGap(a, lo, mid, left)
	out = append(out, mid)
	out = append(out, subdivideGap(a, mid, hi, right)...)
	return out
}

// Space spans a three-axis multiplier design space — the generalization of
// dse.Grid from explicit value slices to validated ranges with linear/log
// spacing and refinement. Tau0 is in seconds, VDAC0/VDACFS in volts (same
// units as mult.Config).
type Space struct {
	Tau0   Axis
	VDAC0  Axis
	VDACFS Axis
}

// FromGrid bridges a dse.Grid into a Space with explicit per-axis values.
// The grid's slices must be strictly increasing (Validate reports
// violations); the materialized corners are bitwise identical to the
// grid's, so results cached under grid sweeps keep serving.
func FromGrid(g dse.Grid) Space {
	return Space{
		Tau0:   ValuesAxis("tau0", g.Tau0s...),
		VDAC0:  ValuesAxis("vdac0", g.VDAC0s...),
		VDACFS: ValuesAxis("vdacfs", g.VDACFSs...),
	}
}

// Grid bridges the space back to a dse.Grid with the materialized axis
// points — the exhaustive-sweep view of the same corners.
func (s Space) Grid() (dse.Grid, error) {
	if err := s.Validate(); err != nil {
		return dse.Grid{}, err
	}
	return dse.Grid{
		Tau0s:   s.Tau0.Points(),
		VDAC0s:  s.VDAC0.Points(),
		VDACFSs: s.VDACFS.Points(),
	}, nil
}

// axes returns the three axes in canonical order.
func (s Space) axes() [3]Axis { return [3]Axis{s.Tau0, s.VDAC0, s.VDACFS} }

// Validate checks every axis and reports the first violation.
func (s Space) Validate() error {
	for _, a := range s.axes() {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Configs materializes the full corner list (row-major: τ0 outermost,
// V_DAC,FS innermost — the dse.Grid order), skipping physically invalid
// combinations (mult.Config.Validate). Unlike dse.Grid.Configs it can fail:
// an empty axis or a space whose combinations are all invalid is an error,
// never a silently empty exploration.
func (s Space) Configs() ([]mult.Config, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	taus, v0s, fss := s.Tau0.Points(), s.VDAC0.Points(), s.VDACFS.Points()
	out := make([]mult.Config, 0, len(taus)*len(v0s)*len(fss))
	var firstErr error
	for _, tau := range taus {
		for _, v0 := range v0s {
			for _, fs := range fss {
				cfg := mult.Config{Tau0: tau, VDAC0: v0, VDACFS: fs}
				if err := cfg.Validate(); err == nil {
					out = append(out, cfg)
				} else if firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("search: space has no valid corner: %w", firstErr)
	}
	return out, nil
}

// Size returns the number of valid corners in the space.
func (s Space) Size() (int, error) {
	cfgs, err := s.Configs()
	if err != nil {
		return 0, err
	}
	return len(cfgs), nil
}

// Sample returns up to budget corners of the space, deterministically: the
// full corner list when budget <= 0 or covers the space, otherwise a
// seeded uniform sample without replacement, returned in space (grid)
// order so downstream processing is independent of the shuffle.
func (s Space) Sample(budget int, seed uint64) ([]mult.Config, error) {
	cfgs, err := s.Configs()
	if err != nil {
		return nil, err
	}
	return sampleSubset(cfgs, budget, seed), nil
}

// sampleSubset picks min(budget, len) items without replacement using a
// seeded permutation, preserving the input order of the picked subset.
// budget <= 0 means all.
func sampleSubset[T any](items []T, budget int, seed uint64) []T {
	if budget <= 0 || budget >= len(items) {
		return items
	}
	perm := stats.NewRNG(seed).Perm(len(items))
	picked := perm[:budget]
	sort.Ints(picked)
	out := make([]T, budget)
	for i, idx := range picked {
		out[i] = items[idx]
	}
	return out
}

// refiner tracks the evolving per-axis point sets during a search run:
// refinement inserts midpoints next to survivors, and later rungs bisect
// further. It exists so refinement depends only on the candidate history —
// not on worker scheduling — keeping runs deterministic.
type refiner struct {
	axes [3]Axis
	pts  [3][]float64 // sorted current point sets
}

func newRefiner(s Space) *refiner {
	r := &refiner{axes: s.axes()}
	for i, a := range r.axes {
		r.pts[i] = a.Points()
	}
	return r
}

// insert adds v to axis i's sorted point set (no-op when present).
func (r *refiner) insert(i int, v float64) {
	pts := r.pts[i]
	at := sort.SearchFloat64s(pts, v)
	if at < len(pts) && pts[at] == v {
		return
	}
	pts = append(pts, 0)
	copy(pts[at+1:], pts[at:])
	pts[at] = v
	r.pts[i] = pts
}

// proposal is one refinement candidate: a survivor with one axis value
// replaced by a midpoint. Proposals are speculative — nothing enters the
// refiner's state until Commit, so a candidate dropped by the per-rung cap
// can be re-proposed in a later rung and never skews future midpoints.
type proposal struct {
	cfg  mult.Config
	axis int
	val  float64
}

// Around proposes refinement candidates near the survivors: for each
// survivor and each axis, the midpoints between the survivor's value and
// its current axis neighbors (one axis varied at a time, the others held).
// Proposals are validated and deduplicated against seen and against each
// other, in deterministic (survivor, axis, side) order. The refiner's
// point sets are not modified — pass the chosen subset to Commit.
func (r *refiner) Around(survivors []mult.Config, seen map[mult.Config]bool) []proposal {
	var out []proposal
	proposed := map[mult.Config]bool{}
	for _, s := range survivors {
		vals := [3]float64{s.Tau0, s.VDAC0, s.VDACFS}
		for ai := range r.axes {
			pts := r.pts[ai]
			at := sort.SearchFloat64s(pts, vals[ai])
			if at >= len(pts) || pts[at] != vals[ai] {
				continue // off-lattice survivor (shouldn't happen): skip
			}
			var mids []float64
			if at > 0 {
				mids = append(mids, r.axes[ai].midpoint(pts[at-1], pts[at]))
			}
			if at < len(pts)-1 {
				mids = append(mids, r.axes[ai].midpoint(pts[at], pts[at+1]))
			}
			for _, mid := range mids {
				cand := s
				switch ai {
				case 0:
					cand.Tau0 = mid
				case 1:
					cand.VDAC0 = mid
				case 2:
					cand.VDACFS = mid
				}
				if cand.Validate() != nil || seen[cand] || proposed[cand] {
					continue
				}
				proposed[cand] = true
				out = append(out, proposal{cfg: cand, axis: ai, val: mid})
			}
		}
	}
	return out
}

// Commit accepts the chosen proposals: their corners are marked seen, the
// midpoints enter the axis point sets (so later rungs bisect further), and
// the corner list is returned in proposal order.
func (r *refiner) Commit(props []proposal, seen map[mult.Config]bool) []mult.Config {
	out := make([]mult.Config, len(props))
	for i, p := range props {
		seen[p.cfg] = true
		r.insert(p.axis, p.val)
		out[i] = p.cfg
	}
	return out
}
