package poly

import (
	"fmt"
	"math"

	"optima/internal/linalg"
)

// SampleN is one observation of an n-variable function z = f(x_1, …, x_n).
type SampleN struct {
	Xs []float64
	Z  float64
}

// Product is the rank-1 n-factor model f(x_1,…,x_n) = Π_k P_k(x_k),
// the generalization of Separable used by the paper's Eq. 8
// (E_dc = p1(VDD)·p3(ΔV_BL)·p1(T)).
type Product struct {
	Factors []Polynomial
}

// Eval evaluates the product model; len(xs) must match the factor count.
func (p Product) Eval(xs ...float64) float64 {
	if len(xs) != len(p.Factors) {
		panic(fmt.Sprintf("poly: product eval with %d args, want %d", len(xs), len(p.Factors)))
	}
	out := 1.0
	for k, f := range p.Factors {
		out *= f.Eval(xs[k])
	}
	return out
}

// FitProduct fits the rank-1 n-factor product of the given degrees by
// cyclic alternating least squares: each factor in turn is refitted with
// the others held fixed (a linear problem). Iteration stops when the RMS
// residual improvement falls below tol, or after maxIter sweeps.
func FitProduct(samples []SampleN, degrees []int, maxIter int, tol float64) (Product, float64, error) {
	n := len(degrees)
	if n == 0 {
		return Product{}, 0, fmt.Errorf("poly: product fit with no factors: %w", ErrFit)
	}
	var params int
	for _, d := range degrees {
		params += d + 1
	}
	if len(samples) < params {
		return Product{}, 0, fmt.Errorf("poly: %d samples for product fit with %d parameters: %w", len(samples), params, ErrFit)
	}
	for _, s := range samples {
		if len(s.Xs) != n {
			return Product{}, 0, fmt.Errorf("poly: sample has %d coordinates, want %d: %w", len(s.Xs), n, ErrFit)
		}
	}
	if maxIter <= 0 {
		maxIter = 60
	}
	if tol <= 0 {
		tol = 1e-12
	}
	// Initialize every factor to the constant 1 except the one with the
	// highest degree, which absorbs the initial magnitude via a marginal fit.
	p := Product{Factors: make([]Polynomial, n)}
	lead := 0
	for k, d := range degrees {
		p.Factors[k] = New(1)
		if d > degrees[lead] {
			lead = k
		}
	}
	xs := make([]float64, len(samples))
	zs := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.Xs[lead]
		zs[i] = s.Z
	}
	f0, _, err := Fit(xs, zs, degrees[lead])
	if err != nil {
		return Product{}, 0, err
	}
	p.Factors[lead] = f0

	prev := math.Inf(1)
	var rms float64
	for iter := 0; iter < maxIter; iter++ {
		for k := 0; k < n; k++ {
			// Weight of sample i contributed by all other factors.
			a := linalg.NewMatrix(len(samples), degrees[k]+1)
			b := make([]float64, len(samples))
			for i, s := range samples {
				w := 1.0
				for j, f := range p.Factors {
					if j != k {
						w *= f.Eval(s.Xs[j])
					}
				}
				v := w
				for d := 0; d <= degrees[k]; d++ {
					a.Set(i, d, v)
					v *= s.Xs[k]
				}
				b[i] = s.Z
			}
			coeffs, _, err := linalg.LeastSquares(a, b)
			if err != nil {
				return Product{}, 0, fmt.Errorf("poly: product factor %d: %v: %w", k, err, ErrFit)
			}
			p.Factors[k] = Polynomial{Coeffs: coeffs}
		}
		rms = productRMS(samples, p)
		if prev-rms < tol*math.Max(1, prev) {
			break
		}
		prev = rms
	}
	// Normalize all but the first factor to unit max-|coeff|.
	scale := 1.0
	for k := 1; k < n; k++ {
		m := maxAbsCoeff(p.Factors[k])
		if m > 0 {
			p.Factors[k] = p.Factors[k].Scale(1 / m)
			scale *= m
		}
	}
	p.Factors[0] = p.Factors[0].Scale(scale)
	return p, rms, nil
}

func productRMS(samples []SampleN, p Product) float64 {
	var ss float64
	for _, s := range samples {
		d := p.Eval(s.Xs...) - s.Z
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(samples)))
}
