package dnn

import (
	"fmt"
	"math"

	"optima/internal/stats"
)

// Layer is one differentiable network stage. Forward must retain whatever
// it needs for the subsequent Backward call (layers are stateful across one
// forward/backward pair, as in classic define-by-run frameworks).
type Layer interface {
	Name() string
	Forward(x *Tensor, train bool) *Tensor
	// Backward consumes dL/dout and returns dL/din, accumulating parameter
	// gradients internally.
	Backward(grad *Tensor) *Tensor
	Params() []*Param
}

// MACCounter is implemented by layers that perform multiplications; it
// returns the multiply count for one sample with the given input shape and
// the resulting output shape. Used for the paper's Table II "Number of
// Multiplications" column.
type MACCounter interface {
	MACs(c, h, w int) (macs int64, oc, oh, ow int)
}

// ---------------------------------------------------------------------------
// Conv2D
// ---------------------------------------------------------------------------

// Conv2D is a stride-1, same-padded 2-D convolution with bias.
type Conv2D struct {
	name      string
	InC, OutC int
	K         int    // kernel size (K×K), odd
	Weight    *Param // [OutC, InC, K, K]
	Bias      *Param // [OutC]
	lastIn    *Tensor
}

// NewConv2D builds a convolution layer with He-normal initialization.
func NewConv2D(name string, inC, outC, k int, rng *stats.RNG) *Conv2D {
	if k%2 == 0 {
		panic("dnn: conv kernel must be odd for same padding")
	}
	c := &Conv2D{name: name, InC: inC, OutC: outC, K: k}
	c.Weight = NewParam(name+".w", outC*inC*k*k)
	c.Bias = NewParam(name+".b", outC)
	std := math.Sqrt(2.0 / float64(inC*k*k))
	for i := range c.Weight.W {
		c.Weight.W[i] = rng.Gaussian(0, std)
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// MACs implements MACCounter.
func (c *Conv2D) MACs(ch, h, w int) (int64, int, int, int) {
	return int64(c.OutC) * int64(c.InC) * int64(c.K*c.K) * int64(h*w), c.OutC, h, w
}

func (c *Conv2D) wIdx(oc, ic, kh, kw int) int {
	return ((oc*c.InC+ic)*c.K+kh)*c.K + kw
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *Tensor, train bool) *Tensor {
	c.lastIn = x
	return c.infer(x)
}

// infer computes the convolution without recording training state, so it is
// safe for concurrent inference (see InferenceForward).
func (c *Conv2D) infer(x *Tensor) *Tensor {
	if x.C != c.InC {
		panic(fmt.Sprintf("dnn: %s expects %d channels, got %s", c.name, c.InC, x.Shape()))
	}
	out := NewTensor(x.N, c.OutC, x.H, x.W)
	pad := c.K / 2
	for n := 0; n < x.N; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.Bias.W[oc]
			for oh := 0; oh < x.H; oh++ {
				for ow := 0; ow < x.W; ow++ {
					sum := bias
					for ic := 0; ic < c.InC; ic++ {
						for kh := 0; kh < c.K; kh++ {
							ih := oh + kh - pad
							if ih < 0 || ih >= x.H {
								continue
							}
							rowBase := x.Idx(n, ic, ih, 0)
							wBase := c.wIdx(oc, ic, kh, 0)
							for kw := 0; kw < c.K; kw++ {
								iw := ow + kw - pad
								if iw < 0 || iw >= x.W {
									continue
								}
								sum += x.Data[rowBase+iw] * c.Weight.W[wBase+kw]
							}
						}
					}
					out.Data[out.Idx(n, oc, oh, ow)] = sum
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Tensor) *Tensor {
	x := c.lastIn
	din := x.ZerosLike()
	pad := c.K / 2
	for n := 0; n < x.N; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oh := 0; oh < x.H; oh++ {
				for ow := 0; ow < x.W; ow++ {
					g := grad.Data[grad.Idx(n, oc, oh, ow)]
					if g == 0 {
						continue
					}
					c.Bias.G[oc] += g
					for ic := 0; ic < c.InC; ic++ {
						for kh := 0; kh < c.K; kh++ {
							ih := oh + kh - pad
							if ih < 0 || ih >= x.H {
								continue
							}
							rowBase := x.Idx(n, ic, ih, 0)
							wBase := c.wIdx(oc, ic, kh, 0)
							for kw := 0; kw < c.K; kw++ {
								iw := ow + kw - pad
								if iw < 0 || iw >= x.W {
									continue
								}
								c.Weight.G[wBase+kw] += g * x.Data[rowBase+iw]
								din.Data[rowBase+iw] += g * c.Weight.W[wBase+kw]
							}
						}
					}
				}
			}
		}
	}
	return din
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

// Dense is a fully connected layer over flattened inputs.
type Dense struct {
	name    string
	In, Out int
	Weight  *Param // [Out, In]
	Bias    *Param // [Out]
	lastIn  *Tensor
}

// NewDense builds a dense layer with He-normal initialization.
func NewDense(name string, in, out int, rng *stats.RNG) *Dense {
	d := &Dense{name: name, In: in, Out: out}
	d.Weight = NewParam(name+".w", in*out)
	d.Bias = NewParam(name+".b", out)
	std := math.Sqrt(2.0 / float64(in))
	for i := range d.Weight.W {
		d.Weight.W[i] = rng.Gaussian(0, std)
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// MACs implements MACCounter.
func (d *Dense) MACs(c, h, w int) (int64, int, int, int) {
	return int64(d.In) * int64(d.Out), d.Out, 1, 1
}

// Forward implements Layer.
func (d *Dense) Forward(x *Tensor, train bool) *Tensor {
	d.lastIn = x
	return d.infer(x)
}

// infer computes the dense transform without recording training state, so
// it is safe for concurrent inference (see InferenceForward).
func (d *Dense) infer(x *Tensor) *Tensor {
	if x.FeatureLen() != d.In {
		panic(fmt.Sprintf("dnn: %s expects %d features, got %s", d.name, d.In, x.Shape()))
	}
	out := NewTensor(x.N, d.Out, 1, 1)
	for n := 0; n < x.N; n++ {
		xoff := n * d.In
		for o := 0; o < d.Out; o++ {
			sum := d.Bias.W[o]
			woff := o * d.In
			for i := 0; i < d.In; i++ {
				sum += x.Data[xoff+i] * d.Weight.W[woff+i]
			}
			out.Data[n*d.Out+o] = sum
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	x := d.lastIn
	din := x.ZerosLike()
	for n := 0; n < x.N; n++ {
		xoff := n * d.In
		for o := 0; o < d.Out; o++ {
			g := grad.Data[n*d.Out+o]
			if g == 0 {
				continue
			}
			d.Bias.G[o] += g
			woff := o * d.In
			for i := 0; i < d.In; i++ {
				d.Weight.G[woff+i] += g * x.Data[xoff+i]
				din.Data[xoff+i] += g * d.Weight.W[woff+i]
			}
		}
	}
	return din
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

// ReLU is the rectified linear activation.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor, train bool) *Tensor {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	din := grad.Clone()
	for i := range din.Data {
		if !r.mask[i] {
			din.Data[i] = 0
		}
	}
	return din
}

// ---------------------------------------------------------------------------
// MaxPool2
// ---------------------------------------------------------------------------

// MaxPool2 is a 2×2 stride-2 max pooling layer. Odd trailing rows/columns
// are dropped (floor semantics).
type MaxPool2 struct {
	name   string
	argmax []int
	inTpl  *Tensor
}

// NewMaxPool2 returns a 2×2 max-pool layer.
func NewMaxPool2(name string) *MaxPool2 { return &MaxPool2{name: name} }

// Name implements Layer.
func (p *MaxPool2) Name() string { return p.name }

// Params implements Layer.
func (p *MaxPool2) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MaxPool2) Forward(x *Tensor, train bool) *Tensor {
	oh, ow := x.H/2, x.W/2
	out := NewTensor(x.N, x.C, oh, ow)
	p.inTpl = x
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					best := math.Inf(-1)
					bestIdx := -1
					for di := 0; di < 2; di++ {
						for dj := 0; dj < 2; dj++ {
							idx := x.Idx(n, c, 2*i+di, 2*j+dj)
							if x.Data[idx] > best {
								best = x.Data[idx]
								bestIdx = idx
							}
						}
					}
					oIdx := out.Idx(n, c, i, j)
					out.Data[oIdx] = best
					p.argmax[oIdx] = bestIdx
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2) Backward(grad *Tensor) *Tensor {
	din := p.inTpl.ZerosLike()
	for oIdx, g := range grad.Data {
		din.Data[p.argmax[oIdx]] += g
	}
	return din
}

// ---------------------------------------------------------------------------
// GlobalAvgPool
// ---------------------------------------------------------------------------

// GlobalAvgPool averages each channel over its spatial extent.
type GlobalAvgPool struct {
	name  string
	inTpl *Tensor
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return p.name }

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *Tensor, train bool) *Tensor {
	p.inTpl = x
	out := NewTensor(x.N, x.C, 1, 1)
	inv := 1.0 / float64(x.H*x.W)
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			var s float64
			base := x.Idx(n, c, 0, 0)
			for i := 0; i < x.H*x.W; i++ {
				s += x.Data[base+i]
			}
			out.Data[out.Idx(n, c, 0, 0)] = s * inv
		}
	}
	return out
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(grad *Tensor) *Tensor {
	x := p.inTpl
	din := x.ZerosLike()
	inv := 1.0 / float64(x.H*x.W)
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			g := grad.Data[grad.Idx(n, c, 0, 0)] * inv
			base := x.Idx(n, c, 0, 0)
			for i := 0; i < x.H*x.W; i++ {
				din.Data[base+i] += g
			}
		}
	}
	return din
}

// ---------------------------------------------------------------------------
// BatchNorm2D
// ---------------------------------------------------------------------------

// BatchNorm2D normalizes per channel over (N, H, W) with learnable scale
// and shift, tracking running statistics for inference.
type BatchNorm2D struct {
	name     string
	C        int
	Gamma    *Param
	Beta     *Param
	RunMean  []float64
	RunVar   []float64
	Momentum float64
	Eps      float64

	lastIn   *Tensor
	xhat     []float64
	batchStd []float64
}

// NewBatchNorm2D returns a batch-norm layer for c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		name: name, C: c,
		Gamma: NewParam(name+".gamma", c), Beta: NewParam(name+".beta", c),
		RunMean: make([]float64, c), RunVar: make([]float64, c),
		Momentum: 0.9, Eps: 1e-5,
	}
	for i := range bn.Gamma.W {
		bn.Gamma.W[i] = 1
		bn.RunVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.name }

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *Tensor, train bool) *Tensor {
	if x.C != bn.C {
		panic(fmt.Sprintf("dnn: %s expects %d channels, got %s", bn.name, bn.C, x.Shape()))
	}
	out := x.ZerosLike()
	spatial := x.H * x.W
	if train {
		bn.lastIn = x
		if cap(bn.xhat) < x.Len() {
			bn.xhat = make([]float64, x.Len())
		}
		bn.xhat = bn.xhat[:x.Len()]
		if bn.batchStd == nil {
			bn.batchStd = make([]float64, bn.C)
		}
	}
	for c := 0; c < bn.C; c++ {
		var mean, variance float64
		if train {
			cnt := float64(x.N * spatial)
			for n := 0; n < x.N; n++ {
				base := x.Idx(n, c, 0, 0)
				for i := 0; i < spatial; i++ {
					mean += x.Data[base+i]
				}
			}
			mean /= cnt
			for n := 0; n < x.N; n++ {
				base := x.Idx(n, c, 0, 0)
				for i := 0; i < spatial; i++ {
					d := x.Data[base+i] - mean
					variance += d * d
				}
			}
			variance /= cnt
			bn.RunMean[c] = bn.Momentum*bn.RunMean[c] + (1-bn.Momentum)*mean
			bn.RunVar[c] = bn.Momentum*bn.RunVar[c] + (1-bn.Momentum)*variance
		} else {
			mean, variance = bn.RunMean[c], bn.RunVar[c]
		}
		std := math.Sqrt(variance + bn.Eps)
		if train {
			bn.batchStd[c] = std
		}
		g, b := bn.Gamma.W[c], bn.Beta.W[c]
		for n := 0; n < x.N; n++ {
			base := x.Idx(n, c, 0, 0)
			for i := 0; i < spatial; i++ {
				xh := (x.Data[base+i] - mean) / std
				if train {
					bn.xhat[base+i] = xh
				}
				out.Data[base+i] = g*xh + b
			}
		}
	}
	return out
}

// Backward implements Layer.
func (bn *BatchNorm2D) Backward(grad *Tensor) *Tensor {
	x := bn.lastIn
	din := x.ZerosLike()
	spatial := x.H * x.W
	cnt := float64(x.N * spatial)
	for c := 0; c < bn.C; c++ {
		var sumG, sumGX float64
		for n := 0; n < x.N; n++ {
			base := x.Idx(n, c, 0, 0)
			for i := 0; i < spatial; i++ {
				g := grad.Data[base+i]
				sumG += g
				sumGX += g * bn.xhat[base+i]
			}
		}
		bn.Beta.G[c] += sumG
		bn.Gamma.G[c] += sumGX
		gamma := bn.Gamma.W[c]
		std := bn.batchStd[c]
		for n := 0; n < x.N; n++ {
			base := x.Idx(n, c, 0, 0)
			for i := 0; i < spatial; i++ {
				g := grad.Data[base+i]
				xh := bn.xhat[base+i]
				din.Data[base+i] += gamma / std * (g - sumG/cnt - xh*sumGX/cnt)
			}
		}
	}
	return din
}

// FoldInto folds the batch-norm's inference transform into the preceding
// convolution's weights and bias, leaving the batch-norm an identity. This
// is the standard preparation step before post-training quantization.
func (bn *BatchNorm2D) FoldInto(conv *Conv2D) error {
	if conv.OutC != bn.C {
		return fmt.Errorf("dnn: cannot fold %s (%d ch) into %s (%d out)", bn.name, bn.C, conv.name, conv.OutC)
	}
	per := conv.InC * conv.K * conv.K
	for oc := 0; oc < bn.C; oc++ {
		std := math.Sqrt(bn.RunVar[oc] + bn.Eps)
		scale := bn.Gamma.W[oc] / std
		for i := 0; i < per; i++ {
			conv.Weight.W[oc*per+i] *= scale
		}
		conv.Bias.W[oc] = (conv.Bias.W[oc]-bn.RunMean[oc])*scale + bn.Beta.W[oc]
		bn.Gamma.W[oc] = 1
		bn.Beta.W[oc] = 0
		bn.RunMean[oc] = 0
		bn.RunVar[oc] = 1 - bn.Eps
	}
	return nil
}
