// Package poly implements the polynomial machinery behind OPTIMA's
// behavioral models: single-variable polynomials p_n(X) (the paper's
// notation for a degree-n polynomial with n+1 coefficients), least-squares
// fitting of such polynomials, and rank-1 separable two-variable products
// p_a(x)·p_b(y) fitted by alternating least squares — the exact functional
// form of the paper's Eq. 3 (VDD + p4(Vod)·p2(t)) and Eq. 6 (p3(t)·p3(V_WL)).
package poly

import (
	"errors"
	"fmt"
	"math"

	"optima/internal/linalg"
)

// Polynomial is a dense univariate polynomial. Coeffs[i] multiplies x^i,
// so the paper's p_n(X) is a Polynomial with n+1 coefficients.
type Polynomial struct {
	Coeffs []float64
}

// ErrFit is returned when a fit cannot be computed.
var ErrFit = errors.New("poly: fit failed")

// New returns a polynomial with the given coefficients (constant first).
func New(coeffs ...float64) Polynomial {
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	return Polynomial{Coeffs: c}
}

// Zero returns the zero polynomial of the given degree.
func Zero(degree int) Polynomial {
	return Polynomial{Coeffs: make([]float64, degree+1)}
}

// Degree returns the nominal degree (len(Coeffs)−1); trailing zero
// coefficients are not trimmed.
func (p Polynomial) Degree() int { return len(p.Coeffs) - 1 }

// Eval evaluates the polynomial at x using Horner's rule.
func (p Polynomial) Eval(x float64) float64 {
	var y float64
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		y = y*x + p.Coeffs[i]
	}
	return y
}

// EvalAll evaluates the polynomial at every point of xs.
func (p Polynomial) EvalAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = p.Eval(x)
	}
	return out
}

// Derivative returns the first derivative polynomial.
func (p Polynomial) Derivative() Polynomial {
	if len(p.Coeffs) <= 1 {
		return Zero(0)
	}
	d := make([]float64, len(p.Coeffs)-1)
	for i := 1; i < len(p.Coeffs); i++ {
		d[i-1] = float64(i) * p.Coeffs[i]
	}
	return Polynomial{Coeffs: d}
}

// Scale returns the polynomial multiplied by s.
func (p Polynomial) Scale(s float64) Polynomial {
	out := make([]float64, len(p.Coeffs))
	for i, c := range p.Coeffs {
		out[i] = c * s
	}
	return Polynomial{Coeffs: out}
}

// String renders the polynomial in human-readable form.
func (p Polynomial) String() string {
	s := ""
	for i, c := range p.Coeffs {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%.6g", c)
		if i == 1 {
			s += "·x"
		} else if i > 1 {
			s += fmt.Sprintf("·x^%d", i)
		}
	}
	return s
}

// Vandermonde builds the (len(xs) × degree+1) design matrix with rows
// [1, x, x², …, x^degree].
func Vandermonde(xs []float64, degree int) *linalg.Matrix {
	m := linalg.NewMatrix(len(xs), degree+1)
	for i, x := range xs {
		v := 1.0
		for j := 0; j <= degree; j++ {
			m.Set(i, j, v)
			v *= x
		}
	}
	return m
}

// Fit fits a degree-n polynomial to the samples (xs, ys) in the
// least-squares sense via Householder QR and returns it together with the
// RMS residual.
func Fit(xs, ys []float64, degree int) (Polynomial, float64, error) {
	if len(xs) != len(ys) {
		return Polynomial{}, 0, fmt.Errorf("poly: %d x-values vs %d y-values: %w", len(xs), len(ys), ErrFit)
	}
	if len(xs) < degree+1 {
		return Polynomial{}, 0, fmt.Errorf("poly: %d samples cannot determine degree-%d polynomial: %w", len(xs), degree, ErrFit)
	}
	a := Vandermonde(xs, degree)
	coeffs, resid, err := linalg.LeastSquares(a, ys)
	if err != nil {
		return Polynomial{}, 0, fmt.Errorf("poly: %v: %w", err, ErrFit)
	}
	rms := resid / math.Sqrt(float64(len(xs)))
	return Polynomial{Coeffs: coeffs}, rms, nil
}

// Sample is one observation of a two-variable function z = f(x, y).
type Sample struct {
	X, Y, Z float64
}

// Separable is the rank-1 product model f(x, y) = PX(x) · PY(y).
// The scale ambiguity (c·PX)·(PY/c) is resolved by normalizing PY to unit
// leading-coefficient magnitude after fitting.
type Separable struct {
	PX Polynomial
	PY Polynomial
}

// Eval evaluates the product model at (x, y).
func (s Separable) Eval(x, y float64) float64 { return s.PX.Eval(x) * s.PY.Eval(y) }

// FitSeparable fits the rank-1 model PX(x)·PY(y) of the given degrees to the
// samples by alternating least squares: holding PY fixed, the model is linear
// in PX's coefficients (weighted Vandermonde) and vice versa. Iteration stops
// when the RMS residual improves by less than tol (relative), or after
// maxIter rounds. Returns the fitted model and the final RMS residual.
func FitSeparable(samples []Sample, degX, degY, maxIter int, tol float64) (Separable, float64, error) {
	if len(samples) < (degX+1)+(degY+1) {
		return Separable{}, 0, fmt.Errorf("poly: %d samples for separable fit of degrees (%d,%d): %w",
			len(samples), degX, degY, ErrFit)
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	if tol <= 0 {
		tol = 1e-12
	}
	// Initialize PY to the best polynomial in y alone (averaging over x),
	// which is a good starting point when the function is close to rank-1.
	ys := make([]float64, len(samples))
	zs := make([]float64, len(samples))
	for i, s := range samples {
		ys[i] = s.Y
		zs[i] = s.Z
	}
	py, _, err := Fit(ys, zs, degY)
	if err != nil {
		return Separable{}, 0, err
	}
	if maxAbsCoeff(py) == 0 {
		py = onesPoly(degY)
	}
	px := Zero(degX)
	prevRMS := math.Inf(1)
	var rms float64
	for iter := 0; iter < maxIter; iter++ {
		// Solve for PX with PY fixed: z_i ≈ Σ_j a_j x_i^j · PY(y_i).
		px, err = fitScaled(samples, degX, func(s Sample) (float64, float64) {
			return s.X, py.Eval(s.Y)
		})
		if err != nil {
			return Separable{}, 0, err
		}
		// Solve for PY with PX fixed.
		py, err = fitScaled(samples, degY, func(s Sample) (float64, float64) {
			return s.Y, px.Eval(s.X)
		})
		if err != nil {
			return Separable{}, 0, err
		}
		rms = separableRMS(samples, px, py)
		if prevRMS-rms < tol*math.Max(1, prevRMS) {
			break
		}
		prevRMS = rms
	}
	// Normalize: move PY's scale into PX so that max |PY coeff| = 1.
	scale := maxAbsCoeff(py)
	if scale > 0 {
		py = py.Scale(1 / scale)
		px = px.Scale(scale)
	}
	return Separable{PX: px, PY: py}, rms, nil
}

// fitScaled solves the weighted Vandermonde system z_i ≈ Σ_j c_j t_i^j · w_i
// where (t_i, w_i) = basis(sample_i).
func fitScaled(samples []Sample, degree int, basis func(Sample) (t, w float64)) (Polynomial, error) {
	a := linalg.NewMatrix(len(samples), degree+1)
	b := make([]float64, len(samples))
	for i, s := range samples {
		t, w := basis(s)
		v := w
		for j := 0; j <= degree; j++ {
			a.Set(i, j, v)
			v *= t
		}
		b[i] = s.Z
	}
	coeffs, _, err := linalg.LeastSquares(a, b)
	if err != nil {
		return Polynomial{}, fmt.Errorf("poly: %v: %w", err, ErrFit)
	}
	return Polynomial{Coeffs: coeffs}, nil
}

func separableRMS(samples []Sample, px, py Polynomial) float64 {
	var ss float64
	for _, s := range samples {
		d := px.Eval(s.X)*py.Eval(s.Y) - s.Z
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(samples)))
}

func maxAbsCoeff(p Polynomial) float64 {
	var m float64
	for _, c := range p.Coeffs {
		if a := math.Abs(c); a > m {
			m = a
		}
	}
	return m
}

func onesPoly(degree int) Polynomial {
	c := make([]float64, degree+1)
	for i := range c {
		c[i] = 1
	}
	return Polynomial{Coeffs: c}
}

// Tensor is the full tensor-product model f(x,y) = Σ_ij c_ij x^i y^j.
// It is strictly more expressive than Separable and serves as the ablation
// baseline for the paper's rank-1 form.
type Tensor struct {
	DegX, DegY int
	// C[i][j] multiplies x^i·y^j.
	C [][]float64
}

// Eval evaluates the tensor model at (x, y) with nested Horner recurrences.
func (t Tensor) Eval(x, y float64) float64 {
	var out float64
	for i := t.DegX; i >= 0; i-- {
		var row float64
		for j := t.DegY; j >= 0; j-- {
			row = row*y + t.C[i][j]
		}
		out = out*x + row
	}
	return out
}

// FitTensor fits the full tensor-product polynomial by least squares and
// returns the model and RMS residual.
func FitTensor(samples []Sample, degX, degY int) (Tensor, float64, error) {
	cols := (degX + 1) * (degY + 1)
	if len(samples) < cols {
		return Tensor{}, 0, fmt.Errorf("poly: %d samples for tensor fit with %d terms: %w", len(samples), cols, ErrFit)
	}
	a := linalg.NewMatrix(len(samples), cols)
	b := make([]float64, len(samples))
	for i, s := range samples {
		xp := 1.0
		col := 0
		for ix := 0; ix <= degX; ix++ {
			yp := 1.0
			for iy := 0; iy <= degY; iy++ {
				a.Set(i, col, xp*yp)
				col++
				yp *= s.Y
			}
			xp *= s.X
		}
		b[i] = s.Z
	}
	coeffs, resid, err := linalg.LeastSquares(a, b)
	if err != nil {
		return Tensor{}, 0, fmt.Errorf("poly: %v: %w", err, ErrFit)
	}
	t := Tensor{DegX: degX, DegY: degY, C: make([][]float64, degX+1)}
	col := 0
	for ix := 0; ix <= degX; ix++ {
		t.C[ix] = make([]float64, degY+1)
		for iy := 0; iy <= degY; iy++ {
			t.C[ix][iy] = coeffs[col]
			col++
		}
	}
	return t, resid / math.Sqrt(float64(len(samples))), nil
}
