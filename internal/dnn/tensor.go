// Package dnn is a pure-Go convolutional neural network substrate: tensors,
// layers (convolution, dense, pooling, batch-norm, residual blocks),
// SGD-with-momentum training via backpropagation, and the scaled VGG/ResNet
// model zoo used for the paper's application analysis (Section VI).
//
// The paper evaluates its in-SRAM multiplier corners inside INT4-quantized
// Keras models (VGG16/19, ResNet50/101) on ImageNet and CIFAR-10. This
// package provides the equivalent substrate: networks with the same
// structural contrasts (plain-deep versus residual, two depths of each)
// that are trained from scratch on the synthetic datasets of package
// dataset, then handed to package quant for INT4 post-training quantization
// and in-memory-multiplier injection.
package dnn

import (
	"fmt"
	"math"
)

// Tensor is a dense 4-D tensor in NCHW layout (batch, channel, height,
// width). Dense layers use C as the feature dimension with H = W = 1.
type Tensor struct {
	N, C, H, W int
	Data       []float64
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(n, c, h, w int) *Tensor {
	if n <= 0 || c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("dnn: invalid tensor shape [%d %d %d %d]", n, c, h, w))
	}
	return &Tensor{N: n, C: c, H: h, W: w, Data: make([]float64, n*c*h*w)}
}

// ShapeEq reports whether two tensors have identical shapes.
func (t *Tensor) ShapeEq(o *Tensor) bool {
	return t.N == o.N && t.C == o.C && t.H == o.H && t.W == o.W
}

// Shape returns the shape as a human-readable string.
func (t *Tensor) Shape() string {
	return fmt.Sprintf("[%d %d %d %d]", t.N, t.C, t.H, t.W)
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// FeatureLen returns the per-sample element count C·H·W.
func (t *Tensor) FeatureLen() int { return t.C * t.H * t.W }

// Idx returns the flat index of (n, c, h, w).
func (t *Tensor) Idx(n, c, h, w int) int {
	return ((n*t.C+c)*t.H+h)*t.W + w
}

// At returns the element at (n, c, h, w).
func (t *Tensor) At(n, c, h, w int) float64 { return t.Data[t.Idx(n, c, h, w)] }

// Set assigns the element at (n, c, h, w).
func (t *Tensor) Set(n, c, h, w int, v float64) { t.Data[t.Idx(n, c, h, w)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.N, t.C, t.H, t.W)
	copy(c.Data, t.Data)
	return c
}

// ZerosLike returns a zero tensor with the same shape.
func (t *Tensor) ZerosLike() *Tensor { return NewTensor(t.N, t.C, t.H, t.W) }

// Sample returns a view-copy of sample n as a 1×C×H×W tensor.
func (t *Tensor) Sample(n int) *Tensor {
	out := NewTensor(1, t.C, t.H, t.W)
	f := t.FeatureLen()
	copy(out.Data, t.Data[n*f:(n+1)*f])
	return out
}

// MaxAbs returns the largest absolute element.
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Param is one learnable parameter array with its gradient.
type Param struct {
	Name string
	W    []float64 // values
	G    []float64 // gradient, same length
}

// NewParam allocates a parameter of length n.
func NewParam(name string, n int) *Param {
	return &Param{Name: name, W: make([]float64, n), G: make([]float64, n)}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}
