package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"optima/internal/engine"
	"optima/internal/report"
	"optima/internal/search"
)

func runSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	outDir := fs.String("out", "out", "artifact directory")
	modelPath := fs.String("model", "", "load a calibrated model instead of recalibrating")
	eo := engineOpts{workers: fs.Int("workers", 0, "total evaluation worker budget (0 = all CPUs)")}
	eo.cacheFlags(fs)
	eo.conditionsFlag(fs)
	eo.profileFlags(fs)
	eo.remoteFlag(fs)
	tau0 := fs.String("tau0", "0.16:0.28:100", "τ0 axis [ns]: min:max:steps[:log] or comma list")
	vdac0 := fs.String("vdac0", "0.3:0.5:3", "V_DAC,0 axis [V]: min:max:steps[:log] or comma list")
	vdacfs := fs.String("vdacfs", "0.7:1.0:4", "V_DAC,FS axis [V]: min:max:steps[:log] or comma list")
	budget := fs.Int("budget", 0, "rung-0 candidate budget; larger spaces are sampled (0 = full space)")
	rungs := fs.Int("rungs", search.DefaultRungs, "screening rungs (successive halving rounds)")
	eta := fs.Float64("eta", search.DefaultEta, "halving ratio between rungs (> 1)")
	finalists := fs.Int("finalists", 0, "cap on corners promoted to the golden fidelity (0 = last rung's survivors)")
	refine := fs.Bool("refine", false, "insert per-axis midpoint candidates around each rung's survivors")
	promote := fs.Bool("promote", true, "re-evaluate finalists on the golden transient backend")
	seed := fs.Uint64("seed", 1, "candidate sampling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	space, err := search.ParseSpaceSpec(*tau0, *vdac0, *vdacfs)
	if err != nil {
		return err
	}

	ctx, err := makeContext(*modelPath, false, eo)
	if err != nil {
		return err
	}
	defer ctx.Close()
	screen, err := ctx.EngineFor(engine.BackendBehavioral)
	if err != nil {
		return err
	}
	opts := search.Options{
		Space:      space,
		Screen:     screen,
		Conditions: ctx.Conditions,
		Budget:     *budget,
		Rungs:      *rungs,
		Eta:        *eta,
		Finalists:  *finalists,
		Refine:     *refine,
		Seed:       *seed,
		Recorder:   ctx.Recorder,
	}
	if *promote {
		if opts.Final, err = ctx.EngineFor(engine.BackendGolden); err != nil {
			return err
		}
	}

	robust := opts.Conditions.Len() > 1
	start := time.Now()
	res, err := search.Run(context.Background(), opts)
	if err != nil {
		return err
	}
	if robust {
		fmt.Printf("searched %d-corner space across %d conditions (%s) in %v\n",
			res.Trace.SpaceSize, opts.Conditions.Len(), res.Trace.Conditions, time.Since(start))
	} else {
		fmt.Printf("searched %d-corner space in %v\n", res.Trace.SpaceSize, time.Since(start))
	}

	rungTbl := report.NewTable("Adaptive search rungs",
		"rung", "fidelity", "candidates", "conds", "evaluated", "cache hits", "store hits", "promoted")
	for _, r := range res.Trace.Rungs {
		fid := r.Fidelity
		if r.Final {
			fid += " (final)"
		}
		rungTbl.AddRow(r.Rung, fid, r.Candidates, r.Conditions, r.Evaluated, r.CacheHits, r.StoreHits, r.Promoted)
	}
	fmt.Print(rungTbl.String())
	exhaustive := res.Trace.SpaceSize * opts.Conditions.Len()
	if exhaustive == 0 {
		exhaustive = res.Trace.SpaceSize
	}
	fmt.Printf("exhaustive golden sweep would evaluate %d corner-conditions; adaptive ran %d golden + %d behavioral evaluations (%.1f%% golden)\n",
		exhaustive, res.Trace.FinalEvaluations(), res.Trace.ScreenEvaluations(),
		100*float64(res.Trace.FinalEvaluations())/float64(exhaustive))

	var frontTbl *report.Table
	if robust {
		frontTbl = report.NewTable("Adaptive-search robust Pareto front (worst case over the condition set; energy ↑, error ↓)",
			"tau0 [ns]", "vdac0 [V]", "vdacfs [V]", "worst eps_mul [LSB]", "worst E_mul [fJ]", "worst cond", "worst FOM")
		for _, m := range res.Front {
			frontTbl.AddRow(m.Config.Tau0*1e9, m.Config.VDAC0, m.Config.VDACFS,
				m.EpsMul, m.EMul*1e15, engine.FormatCondition(m.Cond), m.FOM())
		}
	} else {
		frontTbl = report.NewTable("Adaptive-search Pareto front (energy ↑, error ↓)",
			"tau0 [ns]", "vdac0 [V]", "vdacfs [V]", "eps_mul [LSB]", "E_mul [fJ]", "FOM")
		for _, m := range res.Front {
			frontTbl.AddRow(m.Config.Tau0*1e9, m.Config.VDAC0, m.Config.VDACFS,
				m.EpsMul, m.EMul*1e15, m.FOM())
		}
	}
	fmt.Print(frontTbl.String())

	out, err := report.NewOutput(*outDir)
	if err != nil {
		return err
	}
	if err := out.WriteTable("search_rungs", rungTbl); err != nil {
		return err
	}
	if err := out.WriteTable("search_front", frontTbl); err != nil {
		return err
	}
	if err := writeSearchJSON(filepath.Join(*outDir, "search.json"), res); err != nil {
		return err
	}
	fmt.Printf("wrote %s/search.json\n", *outDir)
	printEngineStats(ctx)
	return nil
}

// writeSearchJSON persists the machine-readable report: the final front,
// the per-rung evaluation trace, and — in robust mode — the finalists'
// cross-condition summaries. The schema (search.JSONReport) is shared with
// the optima-server's search jobs.
func writeSearchJSON(path string, res *search.Result) error {
	data, err := json.MarshalIndent(search.NewJSONReport(res), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
