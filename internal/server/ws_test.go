package server

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestWSAccept pins the handshake derivation to RFC 6455's worked example
// (§1.3).
func TestWSAccept(t *testing.T) {
	const key = "dGhlIHNhbXBsZSBub25jZQ=="
	const want = "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got := wsAccept(key); got != want {
		t.Fatalf("wsAccept(%q) = %q, want %q", key, got, want)
	}
}

// wsPair returns a connected server/client WSConn pair over loopback TCP
// (net.Pipe's unbuffered writes would deadlock the control-frame replies).
func wsPair(t *testing.T) (srv, cli *WSConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			close(accepted)
			return
		}
		accepted <- c
	}()
	cconn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sconn, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { cconn.Close(); sconn.Close() })
	srv = &WSConn{conn: sconn, br: bufio.NewReader(sconn)}
	cli = &WSConn{conn: cconn, br: bufio.NewReader(cconn), client: true}
	return srv, cli
}

// TestWSFrameRoundTrip covers the three length encodings in both
// directions — masked client frames and unmasked server frames.
func TestWSFrameRoundTrip(t *testing.T) {
	leakCheck(t)
	srv, cli := wsPair(t)
	payloads := [][]byte{
		[]byte("x"), // 7-bit length
		bytes.Repeat([]byte("a"), 125),
		bytes.Repeat([]byte("b"), 126),   // 16-bit length
		bytes.Repeat([]byte("c"), 65536), // 64-bit length
	}
	for _, p := range payloads {
		go func() {
			if err := cli.WriteMessage(p); err != nil {
				t.Error(err)
			}
		}()
		got, err := srv.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("client→server payload of %d bytes corrupted", len(p))
		}
		go func() {
			if err := srv.WriteMessage(p); err != nil {
				t.Error(err)
			}
		}()
		if got, err = cli.ReadMessage(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("server→client payload of %d bytes corrupted", len(p))
		}
	}
}

// TestWSPingAndClose: pings are answered transparently mid-stream, and a
// peer close surfaces as ErrWSClosed after the handshake completes.
func TestWSPingAndClose(t *testing.T) {
	leakCheck(t)
	srv, cli := wsPair(t)
	go func() {
		if err := cli.writeFrame(opPing, []byte("p")); err != nil {
			t.Error(err)
		}
		if err := cli.WriteMessage([]byte("data")); err != nil {
			t.Error(err)
		}
	}()
	// The server answers the ping internally and hands back the text.
	got, err := srv.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" {
		t.Fatalf("read %q, want %q", got, "data")
	}
	// The client's next read skips the pong reply; give it a text frame.
	go srv.WriteMessage([]byte("after"))
	if got, err = cli.ReadMessage(); err != nil || string(got) != "after" {
		t.Fatalf("read after pong: %q, %v", got, err)
	}

	go cli.Close()
	if _, err := srv.ReadMessage(); !errors.Is(err, ErrWSClosed) {
		t.Fatalf("read after peer close: %v, want ErrWSClosed", err)
	}
}

// TestDialWSHandshake runs the full client handshake (DialWS) against the
// server-side upgrade (upgradeWS) through a real HTTP server, echoing one
// message back.
func TestDialWSHandshake(t *testing.T) {
	leakCheck(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := upgradeWS(w, r)
		if err != nil {
			return
		}
		defer ws.conn.Close()
		msg, err := ws.ReadMessage()
		if err != nil {
			t.Error(err)
			return
		}
		if err := ws.WriteMessage(append([]byte("echo:"), msg...)); err != nil {
			t.Error(err)
		}
	}))
	defer ts.Close()

	ws, err := DialWS(ts.URL + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if err := ws.WriteMessage([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := ws.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:hello" {
		t.Fatalf("echoed %q", got)
	}
}

// TestUpgradeWSRejectsPlainRequest: a non-upgrade GET gets an HTTP error,
// not a hijacked connection.
func TestUpgradeWSRejectsPlainRequest(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/ws", nil)
	if _, err := upgradeWS(rec, req); err == nil {
		t.Fatal("upgradeWS accepted a plain GET")
	}
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}
