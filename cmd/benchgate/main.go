// Command benchgate is the CI bench-regression gate: it compares a fresh
// benchmark trajectory (BENCH_engine.json, written by the bench job)
// against a smoothed baseline — the per-benchmark MEDIAN of the last N
// runs' artifacts — and fails when any benchmark recorded on both sides
// slowed down by more than the allowed fraction in time (ns/op) or grew
// its allocations (allocs/op) by more than the same fraction.
//
// Usage:
//
//	benchgate -old prev1.json,prev2.json,prev3.json -new BENCH_engine.json [-max-slowdown 0.30]
//
// -old takes a comma-separated list of baseline artifacts, newest first
// (CI passes the last three runs). Gating against a median instead of the
// single previous run keeps one noisy CI run — fast or slow — from
// poisoning the trajectory: a lucky baseline no longer flags the next
// honest run, and an unlucky one no longer hides a real regression.
//
// Baseline files that are missing are skipped; when none exist the gate
// passes (the first run of a branch has nothing to compare against), but
// every fresh benchmark is still reported as NEW so the run's coverage is
// visible. A missing fresh file is an error. Benchmarks present only on
// one side are reported but never gate — renames and additions must not
// break CI. Benchmarks whose baseline median is 0 (clock-resolution
// underflow for ns/op, no allocation tracking for allocs/op) never gate on
// that metric.
//
// Every benchmark always gets a verdict line — PASS, NEW, SKIP, SLOW or
// GONE — followed by a one-line tally, so a green run shows what it
// covered, not just the absence of failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Bench mirrors one entry of BENCH_engine.json. AllocsPerOp is absent from
// artifacts written before allocation gating existed; it decodes as 0,
// which the gate treats as "not tracked".
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func load(path string) ([]Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Bench
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// result is one gate verdict line.
type result struct {
	kind       string // PASS, NEW, SKIP, SLOW or GONE
	line       string
	regression bool
}

// median returns the median of vals (mean of the middle pair for even
// counts). vals must be non-empty.
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// gate compares the fresh benchmarks against the per-benchmark median of
// the baselines. A benchmark regresses when fresh ns/op exceeds
// median·(1+maxSlowdown), or fresh allocs/op does the same against a
// positive allocation median. Zero medians never gate their metric.
func gate(baselines [][]Bench, fresh []Bench, maxSlowdown float64) []result {
	baseNs := map[string][]float64{}
	baseAllocs := map[string][]float64{}
	for _, baseline := range baselines {
		for _, b := range baseline {
			baseNs[b.Name] = append(baseNs[b.Name], b.NsPerOp)
			baseAllocs[b.Name] = append(baseAllocs[b.Name], b.AllocsPerOp)
		}
	}
	var out []result
	seen := map[string]bool{}
	for _, f := range fresh {
		seen[f.Name] = true
		ns, ok := baseNs[f.Name]
		if !ok {
			out = append(out, result{kind: "NEW", line: fmt.Sprintf("NEW   %-60s %14.0f ns/op", f.Name, f.NsPerOp)})
			continue
		}
		medNs := median(ns)
		medAllocs := median(baseAllocs[f.Name])

		var reasons []string
		if medNs > 0 && f.NsPerOp/medNs > 1+maxSlowdown {
			reasons = append(reasons, fmt.Sprintf("time %+.1f%%", 100*(f.NsPerOp/medNs-1)))
		}
		if medAllocs > 0 && f.AllocsPerOp/medAllocs > 1+maxSlowdown {
			reasons = append(reasons, fmt.Sprintf("allocs %.0f -> %.0f/op (%+.1f%%)",
				medAllocs, f.AllocsPerOp, 100*(f.AllocsPerOp/medAllocs-1)))
		}
		switch {
		case medNs <= 0 && medAllocs <= 0:
			out = append(out, result{kind: "SKIP", line: fmt.Sprintf("SKIP  %-60s baseline medians 0", f.Name)})
		case len(reasons) > 0:
			out = append(out, result{
				kind: "SLOW",
				line: fmt.Sprintf("SLOW  %-60s %14.0f -> %14.0f ns/op (median of %d): %s",
					f.Name, medNs, f.NsPerOp, len(ns), strings.Join(reasons, ", ")),
				regression: true,
			})
		default:
			out = append(out, result{kind: "PASS", line: fmt.Sprintf("PASS  %-60s %14.0f -> %14.0f ns/op (median of %d, %+.1f%%)",
				f.Name, medNs, f.NsPerOp, len(ns), pctDelta(f.NsPerOp, medNs))})
		}
	}
	// Report names seen in any baseline but absent from the fresh run, in a
	// deterministic order.
	var gone []string
	for name := range baseNs {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		out = append(out, result{kind: "GONE", line: fmt.Sprintf("GONE  %-60s (was %14.0f ns/op)", name, median(baseNs[name]))})
	}
	return out
}

// tally renders one run's per-kind counts ("5 passed, 1 new, 2 skipped"),
// omitting absent kinds, in a fixed order.
func tally(results []result) string {
	counts := map[string]int{}
	for _, r := range results {
		counts[r.kind]++
	}
	var parts []string
	for _, k := range []struct{ kind, label string }{
		{"PASS", "passed"}, {"NEW", "new"}, {"SKIP", "skipped"},
		{"SLOW", "regressed"}, {"GONE", "gone"},
	} {
		if n := counts[k.kind]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, k.label))
		}
	}
	if len(parts) == 0 {
		return "no benchmarks"
	}
	return strings.Join(parts, ", ")
}

// pctDelta guards the OK line's percentage against a 0 ns/op median.
func pctDelta(fresh, med float64) float64 {
	if med <= 0 {
		return 0
	}
	return 100 * (fresh/med - 1)
}

func main() {
	oldPaths := flag.String("old", "", "comma-separated baseline trajectory JSONs (previous runs' artifacts, newest first)")
	newPath := flag.String("new", "", "fresh trajectory JSON")
	maxSlowdown := flag.Float64("max-slowdown", 0.30, "allowed fractional slowdown per benchmark (time and allocations)")
	flag.Parse()
	if *oldPaths == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	var baselines [][]Bench
	for _, path := range strings.Split(*oldPaths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		baseline, err := load(path)
		if os.IsNotExist(err) {
			fmt.Printf("benchgate: no baseline at %s (skipped)\n", path)
			continue
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		baselines = append(baselines, baseline)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(baselines) == 0 {
		fmt.Println("benchgate: no baselines found; nothing to gate (every benchmark is NEW)")
	} else {
		fmt.Printf("benchgate: gating against the median of %d baseline artifact(s)\n", len(baselines))
	}
	results := gate(baselines, fresh, *maxSlowdown)
	regressions := 0
	for _, r := range results {
		fmt.Println(r.line)
		if r.regression {
			regressions++
		}
	}
	fmt.Printf("benchgate: %s\n", tally(results))
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.0f%%\n",
			regressions, *maxSlowdown*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions")
}
