package core

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"optima/internal/device"
	"optima/internal/spice"
	"optima/internal/stats"
)

var (
	fixtureOnce  sync.Once
	fixtureModel *Model
	fixtureErr   error
)

// testModel calibrates one shared model for the package's tests using the
// reduced grids.
func testModel(t *testing.T) *Model {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureModel, fixtureErr = Calibrate(QuickCalibration())
	})
	if fixtureErr != nil {
		t.Fatalf("calibration fixture: %v", fixtureErr)
	}
	return fixtureModel
}

func TestCalibrationReportInPaperRegime(t *testing.T) {
	m := testModel(t)
	r := m.Report
	// The paper reports sub-millivolt RMS errors (0.59–0.88 mV). The golden
	// substrate differs, so allow a few millivolt but no worse.
	if r.BaseRMSVolts <= 0 || r.BaseRMSVolts > 3e-3 {
		t.Errorf("base RMS %v outside (0, 3 mV]", r.BaseRMSVolts)
	}
	if r.VDDRMSVolts <= 0 || r.VDDRMSVolts > 8e-3 {
		t.Errorf("VDD RMS %v outside (0, 8 mV]", r.VDDRMSVolts)
	}
	if r.TempRMSVolts <= 0 || r.TempRMSVolts > 5e-3 {
		t.Errorf("temp RMS %v outside (0, 5 mV]", r.TempRMSVolts)
	}
	if r.SigmaRMSVolts <= 0 || r.SigmaRMSVolts > 2e-3 {
		t.Errorf("sigma RMS %v outside (0, 2 mV]", r.SigmaRMSVolts)
	}
	if r.WriteRMSJoules <= 0 || r.WriteRMSJoules > 1e-15 {
		t.Errorf("write RMS %v outside (0, 1 fJ]", r.WriteRMSJoules)
	}
	if r.DischRMSJoules < 0 || r.DischRMSJoules > 1e-15 {
		t.Errorf("discharge RMS %v outside [0, 1 fJ]", r.DischRMSJoules)
	}
	if r.GoldenTransients < 100 {
		t.Errorf("only %d golden transients", r.GoldenTransients)
	}
}

func TestModelMatchesGoldenOutOfGrid(t *testing.T) {
	// Evaluate the model at points that were not on the calibration grid.
	m := testModel(t)
	cond := device.Nominal()
	for _, vwl := range []float64{0.52, 0.67, 0.83, 0.97} {
		dp := spice.NewDischargePath(DefaultCalibration().Tech, vwl, cond)
		res, err := dp.Discharge(2e-9, spice.DefaultConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, tt := range []float64{0.37e-9, 0.91e-9, 1.73e-9} {
			golden := res.Waveform.NodeAt(0, tt)
			model := m.Discharge.VBL(tt, vwl, cond.VDD, cond.TempC)
			if math.Abs(golden-model) > 5e-3 {
				t.Errorf("VBL(%g ns, %g V): golden %.4f vs model %.4f", tt*1e9, vwl, golden, model)
			}
		}
	}
}

func TestDischargeMonotoneInTimeAndVWL(t *testing.T) {
	m := testModel(t)
	// ΔV grows with time at fixed VWL.
	prev := -1.0
	for _, tt := range []float64{0.2e-9, 0.6e-9, 1.2e-9, 2.0e-9} {
		dv := m.Discharge.DeltaV(tt, 0.9, 1.0, 27)
		if dv < prev {
			t.Fatalf("ΔV not monotone in t at %g", tt)
		}
		prev = dv
	}
	// ΔV grows with VWL at fixed time (above onset).
	prev = -1.0
	for _, vwl := range []float64{0.45, 0.6, 0.75, 0.9} {
		dv := m.Discharge.DeltaV(1e-9, vwl, 1.0, 27)
		if dv < prev {
			t.Fatalf("ΔV not monotone in VWL at %g", vwl)
		}
		prev = dv
	}
}

func TestDeltaVClampsAtZero(t *testing.T) {
	m := testModel(t)
	if dv := m.Discharge.DeltaV(0.1e-9, 0.30, 1.0, 27); dv < 0 {
		t.Fatalf("ΔV = %g, want ≥ 0", dv)
	}
}

func TestSigmaGrowsWithTimeAndVWL(t *testing.T) {
	m := testModel(t)
	if m.Discharge.SigmaAt(2e-9, 1.0) <= m.Discharge.SigmaAt(0.4e-9, 1.0) {
		t.Fatal("σ must grow with time")
	}
	if m.Discharge.SigmaAt(1.5e-9, 1.0) <= m.Discharge.SigmaAt(1.5e-9, 0.5) {
		t.Fatal("σ must grow with VWL (paper Fig. 5d)")
	}
	if m.Discharge.SigmaAt(1e-9, 0.8) < 0 {
		t.Fatal("σ must be non-negative")
	}
}

func TestSigmaMatchesGoldenMC(t *testing.T) {
	m := testModel(t)
	tech := DefaultCalibration().Tech
	cond := device.Nominal()
	rng := stats.NewRNG(31337)
	var acc stats.Accumulator
	const samples = 80
	for i := 0; i < samples; i++ {
		dp := spice.NewDischargePath(tech, 0.85, cond)
		dp.SampleMismatch(rng)
		res, err := dp.Discharge(1.8e-9, spice.DefaultConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(res.Waveform.Final()[0])
	}
	golden := acc.StdDev()
	model := m.Discharge.SigmaAt(1.8e-9, 0.85)
	if math.Abs(golden-model) > 0.5*golden {
		t.Fatalf("σ golden %.3g vs model %.3g (>50%% apart)", golden, model)
	}
}

func TestSampleVBLDistribution(t *testing.T) {
	m := testModel(t)
	rng := stats.NewRNG(77)
	var acc stats.Accumulator
	for i := 0; i < 5000; i++ {
		acc.Add(m.Discharge.SampleVBL(1.5e-9, 0.9, 1.0, 27, rng))
	}
	wantMean := m.Discharge.VBL(1.5e-9, 0.9, 1.0, 27)
	wantSigma := m.Discharge.SigmaAt(1.5e-9, 0.9)
	if math.Abs(acc.Mean()-wantMean) > 4*wantSigma/math.Sqrt(5000) {
		t.Fatalf("sample mean %g, want %g", acc.Mean(), wantMean)
	}
	if math.Abs(acc.StdDev()-wantSigma) > 0.1*wantSigma {
		t.Fatalf("sample σ %g, want %g", acc.StdDev(), wantSigma)
	}
}

func TestTemperatureShiftsDischarge(t *testing.T) {
	m := testModel(t)
	cold := m.Discharge.VBL(2e-9, 1.0, 1.0, 0)
	hot := m.Discharge.VBL(2e-9, 1.0, 1.0, 80)
	if cold == hot {
		t.Fatal("temperature term has no effect")
	}
	// The effect must be small compared to the discharge itself (Fig. 5b).
	if math.Abs(cold-hot) > 0.1 {
		t.Fatalf("temperature swing %g V too large", math.Abs(cold-hot))
	}
}

func TestVDDShiftsDischarge(t *testing.T) {
	m := testModel(t)
	low := m.Discharge.VBL(1e-9, 0.9, 0.90, 27)
	nom := m.Discharge.VBL(1e-9, 0.9, 1.00, 27)
	high := m.Discharge.VBL(1e-9, 0.9, 1.10, 27)
	if !(low < nom && nom < high) {
		t.Fatalf("VBL should track supply: %g, %g, %g", low, nom, high)
	}
}

func TestWriteEnergyModelAgainstGolden(t *testing.T) {
	m := testModel(t)
	// Compare at an off-grid condition.
	cond := device.PVT{Corner: device.CornerTT, VDD: 0.97, TempC: 33}
	modelE := m.Energy.WriteEnergy(cond.VDD, cond.TempC)
	if modelE < 0.7e-12 || modelE > 1.3e-12 {
		t.Fatalf("modeled write energy %g J outside ~1 pJ regime", modelE)
	}
}

func TestDischargeEnergyProperties(t *testing.T) {
	m := testModel(t)
	if e := m.Energy.DischargeEnergy(false, 1.0, 0.3, 27); e != 0 {
		t.Fatalf("d=0 energy %g, want 0 (no discharge)", e)
	}
	if e := m.Energy.DischargeEnergy(true, 1.0, 0, 27); e != 0 {
		t.Fatalf("zero swing energy %g, want 0", e)
	}
	e1 := m.Energy.DischargeEnergy(true, 1.0, 0.15, 27)
	e2 := m.Energy.DischargeEnergy(true, 1.0, 0.30, 27)
	if !(e2 > e1 && e1 > 0) {
		t.Fatalf("discharge energy not increasing: %g, %g", e1, e2)
	}
	// Physical anchor: E = C_BL·VDD·ΔV = 250 fF × 1 V × 0.3 V = 75 fJ.
	if math.Abs(e2-75e-15) > 8e-15 {
		t.Fatalf("E(0.3 V) = %g J, want ≈75 fJ", e2)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := testModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct{ t, vwl, vdd, tc float64 }{
		{0.5e-9, 0.6, 1.0, 27},
		{1.5e-9, 0.95, 1.05, 60},
	} {
		a := m.Discharge.VBL(probe.t, probe.vwl, probe.vdd, probe.tc)
		b := loaded.Discharge.VBL(probe.t, probe.vwl, probe.vdd, probe.tc)
		if a != b {
			t.Fatalf("round-trip mismatch: %g vs %g", a, b)
		}
	}
	if loaded.Energy.WriteEnergy(1.0, 27) != m.Energy.WriteEnergy(1.0, 27) {
		t.Fatal("energy model round-trip mismatch")
	}
}

func TestLoadModelRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, []byte(`{"version": 99}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bad); err == nil {
		t.Fatal("corrupt model accepted")
	}
	if _, err := LoadModel(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestValidateCatchesBrokenModels(t *testing.T) {
	m := testModel(t)
	broken := *m
	broken.Version = 2
	if err := broken.Validate(); err == nil {
		t.Fatal("wrong version accepted")
	}
	broken = *m
	broken.Discharge.VDDNom = 0
	if err := broken.Validate(); err == nil {
		t.Fatal("zero nominal VDD accepted")
	}
}

func TestSupplyScaledVWL(t *testing.T) {
	if got := SupplyScaledVWL(0.8, device.NominalVDD); got != 0.8 {
		t.Fatalf("nominal scaling changed VWL: %g", got)
	}
	up := SupplyScaledVWL(0.8, 1.1)
	if up <= 0.8 || up >= 0.88 {
		t.Fatalf("partial supply tracking out of range: %g", up)
	}
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}
