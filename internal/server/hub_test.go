package server

import (
	"encoding/json"
	"testing"
)

func decodeEvent(t *testing.T, data []byte) Event {
	t.Helper()
	var ev Event
	if err := json.Unmarshal(data, &ev); err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestHubHistoryReplay: a subscriber attaching after events were published
// — even after the terminal one — replays the full ordered history.
func TestHubHistoryReplay(t *testing.T) {
	leakCheck(t)
	h := NewHub()
	h.Publish("j1", Event{Type: EventState, State: JobRunning})
	h.Publish("j1", Event{Type: EventProgress, Done: 3, Total: 10})
	h.Publish("j1", Event{Type: EventDone})
	h.Publish("j1", Event{Type: EventProgress, Done: 9, Total: 10}) // after terminal: dropped

	history, ch := h.Subscribe("j1")
	if len(history) != 3 {
		t.Fatalf("replayed %d events, want 3 (publishes after the terminal event are dropped)", len(history))
	}
	for i, data := range history {
		ev := decodeEvent(t, data)
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want contiguous from 1", i, ev.Seq)
		}
		if ev.Job != "j1" {
			t.Fatalf("event carries job %q", ev.Job)
		}
	}
	if last := decodeEvent(t, history[2]); last.Type != EventDone {
		t.Fatalf("last event %q, want done", last.Type)
	}
	if _, ok := <-ch; ok {
		t.Fatal("subscriber channel on a finished topic is not closed")
	}
}

// TestHubLiveDelivery: an early subscriber sees history + live events in
// order, and the terminal event closes its channel.
func TestHubLiveDelivery(t *testing.T) {
	leakCheck(t)
	h := NewHub()
	h.Publish("j1", Event{Type: EventState, State: JobQueued})
	history, ch := h.Subscribe("j1")
	if len(history) != 1 {
		t.Fatalf("history %d, want 1", len(history))
	}
	h.Publish("j1", Event{Type: EventProgress, Done: 1, Total: 2})
	h.Publish("j1", Event{Type: EventDone})

	got := []Event{decodeEvent(t, history[0])}
	for data := range ch {
		got = append(got, decodeEvent(t, data))
	}
	if len(got) != 3 {
		t.Fatalf("saw %d events, want 3", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: order broken across the history/live boundary", i, ev.Seq)
		}
	}
	if got[2].Type != EventDone {
		t.Fatalf("final event %q, want done", got[2].Type)
	}
}

// TestHubDropsSlowSubscriber: a subscriber that stops draining is
// disconnected once its buffer fills; the publisher never blocks and other
// subscribers are unaffected.
func TestHubDropsSlowSubscriber(t *testing.T) {
	leakCheck(t)
	h := NewHub()
	_, slow := h.Subscribe("j1")
	for i := 0; i < subBuffer+8; i++ {
		h.Publish("j1", Event{Type: EventProgress, Done: i + 1, Total: subBuffer + 8})
	}
	// The slow channel was closed on overflow: drain to the close marker.
	n := 0
	for range slow {
		n++
	}
	if n != subBuffer {
		t.Fatalf("slow subscriber buffered %d events before the drop, want %d", n, subBuffer)
	}
	// A fresh subscriber still gets the complete history.
	history, _ := h.Subscribe("j1")
	if len(history) != subBuffer+8 {
		t.Fatalf("history %d events, want %d", len(history), subBuffer+8)
	}
}

// TestHubUnsubscribeIdempotent: Unsubscribe is safe to repeat and to race
// with a terminal publish (no double close).
func TestHubUnsubscribeIdempotent(t *testing.T) {
	leakCheck(t)
	h := NewHub()
	_, ch := h.Subscribe("j1")
	h.Unsubscribe("j1", ch)
	h.Unsubscribe("j1", ch)                 // repeat: no panic
	h.Publish("j1", Event{Type: EventDone}) // terminal after detach: no panic
	if _, ok := <-ch; ok {
		t.Fatal("unsubscribed channel not closed")
	}
}

// TestHubDrop disconnects subscribers and forgets the topic entirely.
func TestHubDrop(t *testing.T) {
	leakCheck(t)
	h := NewHub()
	h.Publish("j1", Event{Type: EventDone})
	_, ch := h.Subscribe("j2")
	h.Drop("j1")
	h.Drop("j2")
	if _, ok := <-ch; ok {
		t.Fatal("Drop left the subscriber channel open")
	}
	if history, _ := h.Subscribe("j1"); len(history) != 0 {
		t.Fatalf("dropped topic still replays %d events", len(history))
	}
}
