// Package mult implements the paper's case study (Section V): a 4-bit ×
// 4-bit discharge-based in-SRAM multiplier after IMAC [8].
//
// One operand (d) is stored as a 4-bit word across four columns of the SRAM
// array; the other (a) is applied to the shared word line through a 4-bit
// DAC. The four bit-line-bars discharge for τ0, 2τ0, 4τ0 and 8τ0
// respectively (time-domain bit weighting), are sampled onto equal
// capacitors, charge-shared, and the combined voltage is quantized by an
// ADC whose full scale is calibrated to the (15,15) product.
//
// Two interchangeable backends compute the same operation:
//
//   - Behavioral: OPTIMA's calibrated models evaluated on the discrete-event
//     kernel (fast — this is the paper's contribution).
//   - Golden: transistor-level transient simulation per bit line (slow —
//     the reference the speed-up is measured against).
package mult

import (
	"errors"
	"fmt"
	"math"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/events"
	"optima/internal/obs"
	"optima/internal/sched"
	"optima/internal/spice"
	"optima/internal/sram"
	"optima/internal/stats"
)

// Operand and result ranges of the 4×4-bit multiplier.
const (
	OperandBits = 4
	OperandMax  = 1<<OperandBits - 1      // 15
	ProductMax  = OperandMax * OperandMax // 225
	ADCBits     = 8
	ADCMax      = 1<<ADCBits - 1 // 255
)

// Peripheral parameters of the readout chain. The word-line DAC charges an
// effective load (row gates, wire, DAC switching) to V(a) from the rail each
// cycle; the SAR ADC burns a fixed conversion energy; the sampling network
// and comparator contribute a fixed input-referred noise (kT/C on the
// sampling caps plus comparator noise). These are per-operation constants —
// the reason low-swing corners pay a relatively larger accuracy price and
// the energy gap between full-scale settings narrows (paper Table I).
const (
	DefaultDACCap     = 40e-15 // effective DAC/word-line load [F]
	DefaultADCEnergy  = 7e-15  // per-conversion ADC energy [J]
	DefaultCtrlEnergy = 18e-15 // sequencing: precharge drivers, timing, control [J]
	DefaultADCSigma   = 0.4e-3 // sampling + comparator input noise [V]
)

// Config is one multiplier design point: the three explored circuit
// parameters of the paper's design space.
type Config struct {
	Tau0   float64 // discharge time of the least-significant BLB [s]
	VDAC0  float64 // DAC output voltage for input code 0 [V]
	VDACFS float64 // DAC full-scale output voltage (code 15) [V]
}

// String formats the corner like the paper's Table I rows.
func (c Config) String() string {
	return fmt.Sprintf("τ0=%.2f ns, VDAC0=%.1f V, VDACFS=%.1f V", c.Tau0*1e9, c.VDAC0, c.VDACFS)
}

// Validate checks that the configuration is physically meaningful.
func (c Config) Validate() error {
	if c.Tau0 <= 0 {
		return fmt.Errorf("mult: non-positive tau0 %g", c.Tau0)
	}
	if !(c.VDACFS > c.VDAC0) {
		return fmt.Errorf("mult: VDACFS %g must exceed VDAC0 %g", c.VDACFS, c.VDAC0)
	}
	if c.VDAC0 < 0 {
		return fmt.Errorf("mult: negative VDAC0 %g", c.VDAC0)
	}
	return nil
}

// DACVoltage returns the word-line voltage for input code a at the given
// supply (the DAC output tracks supply excursions with the same partial
// sensitivity as in the calibration sweeps).
func (c Config) DACVoltage(a uint, vdd float64) float64 {
	nominal := c.VDAC0 + float64(a)*(c.VDACFS-c.VDAC0)/float64(OperandMax)
	return core.SupplyScaledVWL(nominal, vdd)
}

// BitTime returns the discharge duration of bit-line i: 2^i · τ0.
func (c Config) BitTime(i int) float64 {
	return float64(uint(1)<<uint(i)) * c.Tau0
}

// MaxTime returns the longest discharge duration (MSB line).
func (c Config) MaxTime() float64 { return c.BitTime(OperandBits - 1) }

// Result is the outcome of one in-SRAM multiplication.
type Result struct {
	A, D     uint                 // operands
	Expected int                  // ideal product a·d
	Code     int                  // ADC output code (product estimate in ADC LSBs)
	VComb    float64              // combined (charge-shared) discharge voltage [V]
	Sigma    float64              // analytic mismatch std of VComb [V] (behavioral only)
	Energy   float64              // multiplication energy (bit-line recharge) [J]
	DeltaV   [OperandBits]float64 // per-bit-line discharge at sampling [V]
	// Transients counts the golden simulations this multiplication ran
	// (0 for the behavioral backend). Returning the count per call keeps
	// the golden multiplier free of shared mutable state, so callers
	// aggregate speed-up accounting themselves.
	Transients int
}

// ErrorLSB returns the signed multiplication error in ADC LSBs.
func (r Result) ErrorLSB() int { return r.Code - r.Expected }

// Behavioral is the fast OPTIMA-model backend. It is calibrated once per
// configuration with a best-fit ADC trim: gain and offset are the least-
// squares line through the nominal-condition transfer over the full input
// space (the standard INL-minimizing calibration of a production ADC),
// so the convex device transfer leaves sign-balanced residuals instead of
// a one-sided mid-code bias.
type Behavioral struct {
	Model *core.Model
	Cfg   Config
	Cond  device.PVT
	// LSBVolt is the calibrated ADC step (best-fit gain) [V].
	LSBVolt float64
	// OffsetVolt is the calibrated ADC zero offset [V].
	OffsetVolt float64
	// UseEvents selects event-kernel evaluation (the paper's flow) versus
	// direct model calls (ablation of the DES abstraction).
	UseEvents bool
	// ADCSigma is the Gaussian sampling/comparator input-referred noise [V]
	// (0 = ideal readout; applied only when an RNG is supplied).
	ADCSigma float64
	// DACCap, ADCEnergy and CtrlEnergy set the peripheral energy accounting
	// (see DefaultDACCap / DefaultADCEnergy / DefaultCtrlEnergy).
	DACCap     float64
	ADCEnergy  float64
	CtrlEnergy float64
	// DAC optionally replaces the linear code-to-voltage mapping with a
	// trimmed nonlinear DAC (see CalibrateNonlinearDAC).
	DAC *NonlinearDAC
	// det caches the deterministic per-(code, bit) model outputs at Cond
	// (see deterministic.go); MultiplyDet falls back to direct model calls
	// when it is absent or stale.
	det *detTable
}

// ErrScale is returned when a configuration produces no usable full-scale
// discharge (the ADC cannot be calibrated).
var ErrScale = errors.New("mult: degenerate full-scale discharge")

// NewBehavioral builds the behavioral multiplier for a configuration at the
// given operating condition and calibrates its ADC full scale at nominal.
func NewBehavioral(model *core.Model, cfg Config, cond device.PVT) (*Behavioral, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &Behavioral{
		Model: model, Cfg: cfg, Cond: cond,
		UseEvents:  true,
		ADCSigma:   DefaultADCSigma,
		DACCap:     DefaultDACCap,
		ADCEnergy:  DefaultADCEnergy,
		CtrlEnergy: DefaultCtrlEnergy,
	}
	// The trim fit and the deterministic fast path consume the same 16×4
	// model outputs; precompute them once (64 VBL calls instead of ~1k).
	nominal := device.Nominal()
	nomTab := b.buildDetTable(nominal)
	gain, offset, err := fitADCTrim(nomTab.combined)
	if err != nil {
		return nil, fmt.Errorf("mult: config %v: %w", cfg, err)
	}
	b.LSBVolt = gain
	b.OffsetVolt = offset
	if cond.VDD == nominal.VDD && cond.TempC == nominal.TempC {
		b.det = nomTab
	} else {
		b.det = b.buildDetTable(cond)
	}
	return b, nil
}

// fitADCTrim fits the zero-anchored least-squares gain ΔV ≈ gain·(a·d)
// over the full 16×16 input space of the deterministic transfer. The zero
// anchor keeps zero products exactly representable (essential for DNN
// workloads, where zero activations dominate); the gain minimizes the
// integral nonlinearity over the remaining codes.
func fitADCTrim(deltaV func(a, d uint) float64) (gain, offset float64, err error) {
	var sumXX, sumXY float64
	for a := uint(0); a <= OperandMax; a++ {
		for d := uint(0); d <= OperandMax; d++ {
			x := float64(a * d)
			y := deltaV(a, d)
			sumXX += x * x
			sumXY += x * y
		}
	}
	if sumXX == 0 {
		return 0, 0, ErrScale
	}
	gain = sumXY / sumXX
	if gain <= 0 {
		return 0, 0, ErrScale
	}
	return gain, 0, nil
}

// peripheralEnergy returns the per-operation DAC + ADC + sequencing energy
// for input a.
func (b *Behavioral) peripheralEnergy(a uint) float64 {
	vwl := b.wordLineVoltage(a, b.Cond.VDD)
	return b.DACCap*b.Cond.VDD*vwl + b.ADCEnergy + b.CtrlEnergy
}

// combinedDeltaV computes the charge-shared discharge for operands (a, d) at
// condition cond; rng enables per-discharge mismatch sampling.
func (b *Behavioral) combinedDeltaV(a, d uint, cond device.PVT, rng *stats.RNG) float64 {
	vwl := b.wordLineVoltage(a, cond.VDD)
	var sum float64
	for i := 0; i < OperandBits; i++ {
		if d&(1<<uint(i)) == 0 {
			continue
		}
		t := b.Cfg.BitTime(i)
		var vbl float64
		if rng != nil {
			vbl = b.Model.Discharge.SampleVBL(t, vwl, cond.VDD, cond.TempC, rng)
		} else {
			vbl = b.Model.Discharge.VBL(t, vwl, cond.VDD, cond.TempC)
		}
		dv := cond.VDD - vbl
		if dv < 0 {
			dv = 0
		}
		sum += dv
	}
	return sum / OperandBits
}

// Multiply performs one multiplication. A nil rng gives the deterministic
// (mismatch-free) result; a non-nil rng samples fresh mismatch per
// discharge, following the paper's Monte-Carlo procedure.
func (b *Behavioral) Multiply(a, d uint, rng *stats.RNG) (Result, error) {
	if a > OperandMax || d > OperandMax {
		return Result{}, fmt.Errorf("mult: operands (%d,%d) exceed %d bits", a, d, OperandBits)
	}
	if b.UseEvents {
		return b.multiplyEvents(a, d, rng)
	}
	return b.multiplyDirect(a, d, rng), nil
}

// multiplyDirect evaluates the models without the event kernel.
func (b *Behavioral) multiplyDirect(a, d uint, rng *stats.RNG) Result {
	res := Result{A: a, D: d, Expected: int(a * d)}
	vwl := b.wordLineVoltage(a, b.Cond.VDD)
	var sum, varSum float64
	for i := 0; i < OperandBits; i++ {
		if d&(1<<uint(i)) == 0 {
			continue
		}
		t := b.Cfg.BitTime(i)
		var vbl float64
		if rng != nil {
			vbl = b.Model.Discharge.SampleVBL(t, vwl, b.Cond.VDD, b.Cond.TempC, rng)
		} else {
			vbl = b.Model.Discharge.VBL(t, vwl, b.Cond.VDD, b.Cond.TempC)
		}
		dv := b.Cond.VDD - vbl
		if dv < 0 {
			dv = 0
		}
		res.DeltaV[i] = dv
		sum += dv
		sig := b.Model.Discharge.SigmaAt(t, vwl)
		varSum += sig * sig
		res.Energy += b.Model.Energy.DischargeEnergy(true, b.Cond.VDD, dv, b.Cond.TempC)
	}
	res.VComb = sum / OperandBits
	res.Sigma = math.Sqrt(varSum) / OperandBits
	res.Code = b.quantize(res.VComb, rng)
	res.Energy += b.peripheralEnergy(a)
	return res
}

// multiplyEvents runs the multiplication sequence on the discrete-event
// kernel: word-line assertion at t=0, per-bit sampling events at 2^i·τ0,
// and a final combine/ADC event — the paper's "event-based fashion, akin to
// digital simulation tools".
func (b *Behavioral) multiplyEvents(a, d uint, rng *stats.RNG) (Result, error) {
	res := Result{A: a, D: d, Expected: int(a * d)}
	sim := events.NewSimulator()
	vwlSig := events.NewSignal(sim, "wl", 0)
	vwl := b.wordLineVoltage(a, b.Cond.VDD)

	// t = 0: precharge released, word line driven to the DAC output.
	if _, err := sim.Schedule(0, func() { vwlSig.Set(vwl) }); err != nil {
		return Result{}, err
	}
	var sum, varSum float64
	for i := 0; i < OperandBits; i++ {
		i := i
		bit := d&(1<<uint(i)) != 0
		t := b.Cfg.BitTime(i)
		// Sampling switch of bit line i opens at 2^i·τ0.
		if _, err := sim.Schedule(events.FromSeconds(t), func() {
			if !bit {
				return
			}
			var vbl float64
			if rng != nil {
				vbl = b.Model.Discharge.SampleVBL(t, vwlSig.Value(), b.Cond.VDD, b.Cond.TempC, rng)
			} else {
				vbl = b.Model.Discharge.VBL(t, vwlSig.Value(), b.Cond.VDD, b.Cond.TempC)
			}
			dv := b.Cond.VDD - vbl
			if dv < 0 {
				dv = 0
			}
			res.DeltaV[i] = dv
			sum += dv
			sig := b.Model.Discharge.SigmaAt(t, vwlSig.Value())
			varSum += sig * sig
			res.Energy += b.Model.Energy.DischargeEnergy(true, b.Cond.VDD, dv, b.Cond.TempC)
		}); err != nil {
			return Result{}, err
		}
	}
	// Combine and quantize after the last sampling event.
	if _, err := sim.Schedule(events.FromSeconds(b.Cfg.MaxTime())+events.Picosecond, func() {
		res.VComb = sum / OperandBits
		res.Sigma = math.Sqrt(varSum) / OperandBits
		res.Code = b.quantize(res.VComb, rng)
		res.Energy += b.peripheralEnergy(a)
	}); err != nil {
		return Result{}, err
	}
	sim.Run()
	return res, nil
}

// quantize maps a combined discharge voltage to an ADC code using the
// calibrated gain and offset, with optional ADC input noise.
func (b *Behavioral) quantize(vcomb float64, rng *stats.RNG) int {
	v := vcomb
	if rng != nil && b.ADCSigma > 0 {
		v = rng.Gaussian(v, b.ADCSigma)
	}
	code := int(math.Round((v - b.OffsetVolt) / b.LSBVolt))
	if code < 0 {
		code = 0
	}
	if code > ADCMax {
		code = ADCMax
	}
	return code
}

// WriteEnergy returns the modeled energy of storing the d operand
// (a full 4-bit word write) at the multiplier's condition, via Eq. 7.
func (b *Behavioral) WriteEnergy() float64 {
	return b.Model.Energy.WriteEnergy(b.Cond.VDD, b.Cond.TempC)
}

// Golden is the transistor-level reference backend: every set bit of d
// becomes a transient simulation of the discharge stack. It quantizes with
// the same full-scale calibration approach as the behavioral backend
// (anchored at its own nominal (15,15) golden discharge).
//
// The receiver is immutable after construction, so a single Golden is safe
// for concurrent Multiply/MultiplyCells calls — the basis of the engine's
// intra-job parallel golden evaluation. All per-call state is explicit:
// column mismatch is passed in as an *sram.Word (nil = matched cells),
// integrator work buffers as a per-worker *spice.Scratch, and the transient
// count of each call comes back in Result.Transients.
type Golden struct {
	Tech       device.Tech
	Cfg        Config
	Cond       device.PVT
	Spice      spice.Config
	LSBVolt    float64
	OffsetVolt float64
}

// The multiplier's per-column mismatch state is one sram.Word: cell i backs
// bit line i. This pins the two widths together at compile time.
var _ = sram.Word([OperandBits]sram.Cell{})

// GoldenTrim is the per-configuration ADC trim of the golden multiplier:
// the best-fit gain/offset of the nominal-condition transfer. The trim
// depends only on (technology, configuration, solver settings) — not on the
// operating condition — so condition sweeps over one configuration can
// calibrate once and share the result (see NewGoldenWithTrim).
type GoldenTrim struct {
	LSBVolt    float64
	OffsetVolt float64
	// Transients counts the golden simulations the calibration spent.
	Transients int
}

// CalibrateGoldenTrim runs the sixteen nominal trim transients of a
// configuration (one per input code; each waveform provides all four bit
// sampling times, since the columns share the word line) and fits the
// best-fit ADC gain/offset.
func CalibrateGoldenTrim(tech device.Tech, cfg Config, scfg spice.Config) (GoldenTrim, error) {
	return CalibrateGoldenTrimParallel(tech, cfg, scfg, 1)
}

// CalibrateGoldenTrimParallel is CalibrateGoldenTrim with the sixteen
// independent transients fanned out across up to workers goroutines
// (workers <= 0 uses GOMAXPROCS). Each worker fills a fixed per-code slot
// and the least-squares fit reduces serially in code order, so the trim is
// identical at any worker count.
func CalibrateGoldenTrimParallel(tech device.Tech, cfg Config, scfg spice.Config, workers int) (GoldenTrim, error) {
	return CalibrateGoldenTrimObserved(tech, cfg, scfg, workers, nil, 0)
}

// CalibrateGoldenTrimObserved is CalibrateGoldenTrimParallel recording one
// trim-transient span per input code under parent — the intra-worker
// fan-out a trace otherwise renders as one opaque calibration block. A nil
// recorder records nothing; timing never feeds into the returned trim.
func CalibrateGoldenTrimObserved(tech device.Tech, cfg Config, scfg spice.Config, workers int, rec *obs.Recorder, parent obs.SpanID) (GoldenTrim, error) {
	if err := cfg.Validate(); err != nil {
		return GoldenTrim{}, err
	}
	nominal := device.Nominal()
	// One transient per input code a; ΔV of bit i sampled at 2^i·τ0.
	// sched.Map returns the rows in code order regardless of scheduling.
	codes := make([]uint, OperandMax+1)
	for a := range codes {
		codes[a] = uint(a)
	}
	dv, err := sched.Map(workers, codes, func(_ int, a uint) ([OperandBits]float64, error) {
		var span obs.Timer
		if rec != nil {
			span = rec.StartSpan(parent, obs.CatTrim, "trim-transient", fmt.Sprintf("code %d", a))
		}
		var row [OperandBits]float64
		vwl := cfg.DACVoltage(a, nominal.VDD)
		dp := spice.NewDischargePath(tech, vwl, nominal)
		res, err := dp.Discharge(cfg.MaxTime(), scfg, 0)
		span.End()
		if err != nil {
			return row, fmt.Errorf("mult: golden trim calibration: %w", err)
		}
		for i := 0; i < OperandBits; i++ {
			d := nominal.VDD - res.Waveform.NodeAt(0, cfg.BitTime(i))
			if d < 0 {
				d = 0
			}
			row[i] = d
		}
		return row, nil
	})
	if err != nil {
		return GoldenTrim{}, err
	}
	trim := GoldenTrim{Transients: len(codes)}
	gain, offset, err := fitADCTrim(func(a, d uint) float64 {
		var sum float64
		for i := 0; i < OperandBits; i++ {
			if d&(1<<uint(i)) != 0 {
				sum += dv[a][i]
			}
		}
		return sum / OperandBits
	})
	if err != nil {
		return GoldenTrim{}, fmt.Errorf("mult: config %v: %w", cfg, err)
	}
	trim.LSBVolt = gain
	trim.OffsetVolt = offset
	return trim, nil
}

// NewGolden builds the golden multiplier, calibrating its ADC trim from
// scratch. The trim's transient cost is reported by the trim itself; the
// per-multiplication cost comes back in each Result.Transients.
func NewGolden(tech device.Tech, cfg Config, cond device.PVT, scfg spice.Config) (*Golden, error) {
	trim, err := CalibrateGoldenTrim(tech, cfg, scfg)
	if err != nil {
		return nil, err
	}
	return NewGoldenWithTrim(tech, cfg, cond, scfg, trim)
}

// NewGoldenWithTrim builds the golden multiplier around a previously
// calibrated ADC trim, skipping the sixteen trim transients.
func NewGoldenWithTrim(tech device.Tech, cfg Config, cond device.PVT, scfg spice.Config, trim GoldenTrim) (*Golden, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Golden{
		Tech: tech, Cfg: cfg, Cond: cond, Spice: scfg,
		LSBVolt: trim.LSBVolt, OffsetVolt: trim.OffsetVolt,
	}, nil
}

// Multiply performs one golden multiplication with matched cells. Safe for
// concurrent use.
func (g *Golden) Multiply(a, d uint) (Result, error) {
	return g.MultiplyCells(a, d, nil, nil)
}

// MultiplyCells performs one golden multiplication with explicit per-call
// state: cells carries the per-column mismatch (cell i backs bit line i;
// nil means matched columns), scr optionally reuses one worker's integrator
// buffers across calls. Columns whose d-bit is set are simulated for their
// bit time. The receiver is never mutated, so concurrent calls with
// distinct cells/scr are safe.
func (g *Golden) MultiplyCells(a, d uint, cells *sram.Word, scr *spice.Scratch) (Result, error) {
	if a > OperandMax || d > OperandMax {
		return Result{}, fmt.Errorf("mult: operands (%d,%d) exceed %d bits", a, d, OperandBits)
	}
	if cells == nil {
		cells = &sram.Word{}
	}
	res := Result{A: a, D: d, Expected: int(a * d)}
	vwl := g.Cfg.DACVoltage(a, g.Cond.VDD)
	var sum float64
	for i := 0; i < OperandBits; i++ {
		if d&(1<<uint(i)) == 0 {
			continue
		}
		dp := cells[i].DischargePath(g.Tech, vwl, g.Cond)
		tr, err := dp.DischargeScratch(g.Cfg.BitTime(i), g.Spice, 0, scr)
		if err != nil {
			return Result{}, fmt.Errorf("mult: golden bit %d: %w", i, err)
		}
		res.Transients++
		dv := g.Cond.VDD - tr.Waveform.Final()[0]
		if dv < 0 {
			dv = 0
		}
		res.DeltaV[i] = dv
		sum += dv
		// Recharge energy of this bit line (same physical definition the
		// energy model was calibrated against).
		res.Energy += spice.DefaultCBL * g.Cond.VDD * dv
	}
	res.VComb = sum / OperandBits
	code := int(math.Round((res.VComb - g.OffsetVolt) / g.LSBVolt))
	if code < 0 {
		code = 0
	}
	if code > ADCMax {
		code = ADCMax
	}
	res.Code = code
	// Same peripheral accounting as the behavioral backend.
	res.Energy += DefaultDACCap*g.Cond.VDD*vwl + DefaultADCEnergy + DefaultCtrlEnergy
	return res, nil
}
