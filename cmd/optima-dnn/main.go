// Command optima-dnn runs the paper's application analysis (Section VI):
// it pretrains the scaled VGG/ResNet zoo on the SynthImageNet substitute,
// quantizes the networks to INT4 with retraining, injects the fom / power /
// variation in-SRAM multiplier corners into every multiplication, transfer-
// learns to the SynthCIFAR substitute, and prints Tables II and III with
// the paper's numbers interleaved.
//
// Usage:
//
//	optima-dnn [-out dir] [-bench] [-noisy] [-model in.json] [-workers N] [-backend B] [-cache-dir dir]
//	           [-cpuprofile f] [-memprofile f]
//
// -bench runs the reduced protocol used by the benchmark harness; -noisy
// samples per-operation mismatch in the multiplier LUT (extension — the
// tables' protocol uses the deterministic calibrated transfer). -workers
// bounds the total evaluation/training worker budget — the engine splits
// it between job-level fan-out and intra-job parallelism (0 = all CPUs);
// -backend
// selects the corner-selection backend (behavioral or golden); -cache-dir
// persists corner-selection results in the shared content-addressed result
// store (internal/store), so a preceding `optima dse -cache-dir <dir>` makes
// corner selection here free. -cpuprofile/-memprofile write pprof profiles
// of the run (CPU sampling over the whole analysis, heap snapshot at exit)
// for `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"optima/internal/core"
	"optima/internal/engine"
	"optima/internal/exp"
	"optima/internal/obs"
	"optima/internal/remote"
	"optima/internal/report"
)

func main() {
	outDir := flag.String("out", "out", "artifact directory")
	bench := flag.Bool("bench", false, "run the reduced protocol")
	noisy := flag.Bool("noisy", false, "sample per-operation mismatch in the multiplier")
	modelPath := flag.String("model", "", "load a calibrated model instead of recalibrating")
	workers := flag.Int("workers", 0, "total worker budget, split between job-level and intra-job parallelism (0 = all CPUs)")
	backend := flag.String("backend", engine.BackendBehavioral, "corner-selection backend: behavioral or golden")
	cacheDir := flag.String("cache-dir", "",
		"persist evaluation results in this directory (shared across runs; keyed by the calibration fingerprint)")
	cacheMax := flag.Int64("cache-max-bytes", 0,
		"evict least-recently-written cache segments beyond this size when the store opens (0 = unlimited)")
	cacheAge := flag.Duration("cache-max-age", 0,
		"evict cache segments older than this when the store opens (e.g. 720h; 0 = unlimited)")
	cpuProfile := flag.String("cpuprofile", "",
		"write a pprof CPU profile of the run to this file (analyze with `go tool pprof`)")
	memProfile := flag.String("memprofile", "",
		"write a pprof heap profile to this file when the run finishes")
	traceOut := flag.String("trace-out", "",
		"write a Chrome trace-format JSON timeline of the run to this file (open in Perfetto or chrome://tracing)")
	logLevel := flag.String("log-level", "info",
		"structured log level: debug, info, warn or error")
	slowEval := flag.Duration("slow-eval", 0,
		"log a warning for any single backend evaluation slower than this (e.g. 2s; 0 = off)")
	remoteAddr := flag.String("remote", "",
		"listen on this address (e.g. :9777) for optima-worker processes and distribute evaluations across them; with no connected workers evaluation stays local")
	flag.Parse()

	opts := runOpts{
		outDir: *outDir, bench: *bench, noisy: *noisy, modelPath: *modelPath,
		workers: *workers, backend: *backend,
		cacheDir: *cacheDir, cacheMax: *cacheMax, cacheAge: *cacheAge,
		cpuProfile: *cpuProfile, memProfile: *memProfile,
		traceOut: *traceOut, logLevel: *logLevel, slowEval: *slowEval,
		remoteAddr: *remoteAddr,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "optima-dnn:", err)
		os.Exit(1)
	}
}

// runOpts carries the parsed flag values into run.
type runOpts struct {
	outDir                 string
	bench, noisy           bool
	modelPath              string
	workers                int
	backend                string
	cacheDir               string
	cacheMax               int64
	cacheAge               time.Duration
	cpuProfile, memProfile string
	traceOut, logLevel     string
	slowEval               time.Duration
	remoteAddr             string
}

func run(o runOpts) error {
	outDir, bench, noisy := o.outDir, o.bench, o.noisy
	modelPath, workers, backend := o.modelPath, o.workers, o.backend
	cacheDir, cacheMax, cacheAge := o.cacheDir, o.cacheMax, o.cacheAge
	if o.logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(o.logLevel)); err != nil {
			return fmt.Errorf("bad -log-level %q: %w", o.logLevel, err)
		}
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	}
	if err := engine.ValidateBackendName(backend); err != nil {
		return err
	}
	calib := core.DefaultCalibration()
	var ctx *exp.Context
	if modelPath != "" {
		m, err := core.LoadModel(modelPath)
		if err != nil {
			return err
		}
		ctx = exp.NewContextWithModel(m, calib.Tech)
	} else {
		start := time.Now()
		var err error
		ctx, err = exp.NewContext(calib)
		if err != nil {
			return err
		}
		fmt.Printf("calibrated in %v\n", time.Since(start))
	}
	ctx.Workers = workers
	ctx.Backend = backend
	ctx.CacheDir = cacheDir
	ctx.CacheMaxBytes = cacheMax
	ctx.CacheMaxAge = cacheAge
	ctx.CPUProfile = o.cpuProfile
	ctx.MemProfile = o.memProfile
	ctx.TraceOut = o.traceOut
	ctx.Recorder = obs.NewRecorder(obs.RecorderOptions{
		SlowEval: o.slowEval,
		Logger:   slog.Default(),
	})
	if o.remoteAddr != "" {
		fleet, err := remote.Listen(o.remoteAddr, remote.Options{
			Fingerprint: ctx.Fingerprint(),
			Recorder:    ctx.Recorder,
			Logger:      slog.Default(),
		})
		if err != nil {
			return fmt.Errorf("-remote: %w", err)
		}
		ctx.Fleet = fleet
		fmt.Printf("remote fleet listening on %s\n", fleet.Addr())
	}
	defer ctx.Close()
	if err := ctx.StartProfiling(); err != nil {
		return err
	}

	sel, err := ctx.Selection()
	if err != nil {
		return err
	}
	fmt.Printf("corners: fom %v | power %v | variation %v\n",
		sel.FOM.Config, sel.Power.Config, sel.Variation.Config)

	scale := exp.FullDNNScale()
	if bench {
		scale = exp.BenchDNNScale()
	}
	scale.NoisyLUT = noisy

	start := time.Now()
	data, err := ctx.RunDNN(scale)
	if err != nil {
		return err
	}
	fmt.Printf("application analysis in %v\n\n", time.Since(start))
	fmt.Print(data.Table2.String())
	fmt.Println()
	fmt.Print(data.Table3.String())

	out, err := report.NewOutput(outDir)
	if err != nil {
		return err
	}
	if err := out.WriteTable("table2_imagenet", data.Table2); err != nil {
		return err
	}
	if err := out.WriteTable("table3_cifar", data.Table3); err != nil {
		return err
	}
	if samples := ctx.Recorder.Metrics().Samples(); len(samples) > 0 {
		fmt.Println("telemetry:")
		for _, s := range samples {
			fmt.Printf("  %-55s %g\n", s.Name, s.Value)
		}
	}
	return nil
}
