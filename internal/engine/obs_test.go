package engine

import (
	"bytes"
	"encoding/json"
	"testing"

	"optima/internal/obs"
)

// TestRecorderInvariantResults is the tentpole's core guarantee at the
// engine layer: attaching a recorder — at any worker count — changes no
// evaluation result, byte for byte. Timing flows into spans and
// histograms only, never into metrics.
func TestRecorderInvariantResults(t *testing.T) {
	jobs := testJobs(24)
	run := func(workers int, rec *obs.Recorder) []byte {
		eng := New(&fakeBackend{}, workers)
		eng.WithRecorder(rec)
		mets, err := eng.EvaluateAll(jobs)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(mets)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	base := run(1, nil)
	cases := []struct {
		name    string
		workers int
		rec     *obs.Recorder
	}{
		{"recorder-workers1", 1, obs.NewRecorder(obs.RecorderOptions{})},
		{"nil-workers8", 8, nil},
		{"recorder-workers8", 8, obs.NewRecorder(obs.RecorderOptions{})},
	}
	for _, tc := range cases {
		if got := run(tc.workers, tc.rec); !bytes.Equal(base, got) {
			t.Errorf("%s: results differ from the nil-recorder single-worker run", tc.name)
		}
	}
}

// TestEngineTelemetry checks the instruments the engine drives: eval and
// cache-hit counters, the duration histograms, and the span forest of a
// batch (one batch root, one eval span per miss, nested correctly).
func TestEngineTelemetry(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderOptions{})
	eng := New(&fakeBackend{}, 4).WithRecorder(rec)
	jobs := testJobs(10)

	if _, err := eng.EvaluateAll(jobs); err != nil {
		t.Fatal(err)
	}
	reg := rec.Metrics()
	if got := reg.Counter("optima_evals_total", "", "backend", "fake").Value(); got != 10 {
		t.Errorf("evals counter = %v, want 10", got)
	}
	if got := reg.Histogram("optima_eval_duration_seconds", "", nil, "backend", "fake").Count(); got != 10 {
		t.Errorf("eval duration observations = %v, want 10", got)
	}
	if got := reg.Histogram("optima_queue_wait_seconds", "", nil).Count(); got != 10 {
		t.Errorf("queue wait observations = %v, want 10", got)
	}

	// Warm pass: every job is a memory-tier hit, no new evals.
	if _, err := eng.EvaluateAll(jobs); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("optima_evals_total", "", "backend", "fake").Value(); got != 10 {
		t.Errorf("evals counter after warm pass = %v, want 10 (hits must not evaluate)", got)
	}
	if got := reg.Counter("optima_cache_hits_total", "", "tier", "memory").Value(); got != 10 {
		t.Errorf("memory hits = %v, want 10", got)
	}

	spans := rec.Snapshot()
	var batches, evals int
	var root obs.SpanID
	for _, s := range spans {
		switch s.Cat {
		case obs.CatBatch:
			batches++
			if batches == 1 {
				root = s.ID
			}
		case obs.CatEval:
			evals++
			if s.Parent == 0 {
				t.Errorf("eval span %d has no parent batch", s.ID)
			}
		}
	}
	if batches != 2 || evals != 10 {
		t.Errorf("spans: %d batches and %d evals, want 2 and 10", batches, evals)
	}
	if got := len(obs.Subtree(spans, root)); got == 0 {
		t.Error("first batch has an empty subtree")
	}
}

// TestBatchRecorderOverride checks BatchOptions.Recorder: a per-batch
// recorder wins over the engine-level one, and its spans parent under the
// given ParentSpan.
func TestBatchRecorderOverride(t *testing.T) {
	engineRec := obs.NewRecorder(obs.RecorderOptions{})
	batchRec := obs.NewRecorder(obs.RecorderOptions{})
	eng := New(&fakeBackend{}, 2).WithRecorder(engineRec)

	parent := batchRec.Start(obs.CatJob, "test-job")
	if _, err := eng.EvaluateBatchOpts(testJobs(4), BatchOptions{
		Recorder:   batchRec,
		ParentSpan: parent.ID(),
	}); err != nil {
		t.Fatal(err)
	}
	parent.End()

	if n := len(engineRec.Snapshot()); n != 0 {
		t.Errorf("engine recorder captured %d spans, want 0 (batch recorder overrides)", n)
	}
	spans := batchRec.Snapshot()
	if got := len(obs.Subtree(spans, parent.ID())); got < 5 { // job + batch + 4 evals
		t.Errorf("job subtree has %d spans, want >= 5", got)
	}
	if got := batchRec.Metrics().Counter("optima_evals_total", "", "backend", "fake").Value(); got != 4 {
		t.Errorf("batch recorder evals = %v, want 4", got)
	}
}
