// Package sched is the repo's shared job scheduler: a generic bounded
// worker pool with deterministic result ordering. It is a dependency-free
// leaf so every layer can use it — the evaluation engine fans corner jobs
// out on it, the experiment harness runs its per-model DNN protocol on it,
// and batched network evaluation parallelizes through it — without
// coupling those layers to each other.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map applies fn to every item on a bounded worker pool and returns the
// results in input order, regardless of the worker count or scheduling.
// workers <= 0 uses GOMAXPROCS. If any call fails, Map returns nil results
// and the lowest-index error observed; in-flight work finishes but no new
// items start.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				r, err := fn(i, items[i])
				if err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx = i
						firstErr = err
					}
					mu.Unlock()
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
