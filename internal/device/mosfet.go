// Package device implements the compact MOSFET model and
// process/voltage/temperature (PVT) machinery that stand in for the TSMC
// 65 nm SPICE models used by the paper's golden circuit simulations.
//
// The transistor model is an EKV-style charge-sheet interpolation: a single
// smooth expression covers subthreshold conduction (the paper's "non-zero
// source-drain current at Vth", Section III-1), square-law saturation, and
// the triode/linear region the pass transistor enters when the bit line
// discharges below V_WL − Vth (Eq. 2). Temperature scales both the threshold
// voltage and the mobility; process corners shift Vth and the transconductance
// factor; transistor mismatch follows the Pelgrom model (σ_Vth ∝ 1/√(W·L)).
package device

import (
	"fmt"
	"math"
	"strings"
)

// Physical constants.
const (
	// BoltzmannOverQ is k/q in V/K: thermal voltage Vt = (k/q)·T.
	BoltzmannOverQ = 8.617333262e-5
	// ZeroCelsius converts °C to K.
	ZeroCelsius = 273.15
)

// ProcessCorner identifies a global process corner.
type ProcessCorner int

// Process corners. TT is typical; FF is fast (low Vth, high mobility);
// SS is slow. The single-letter pairs follow foundry convention
// (NMOS corner, PMOS corner); this model applies them symmetrically.
const (
	CornerTT ProcessCorner = iota
	CornerFF
	CornerSS
)

// String returns the foundry-style corner name.
func (c ProcessCorner) String() string {
	switch c {
	case CornerTT:
		return "TT"
	case CornerFF:
		return "FF"
	case CornerSS:
		return "SS"
	default:
		return fmt.Sprintf("ProcessCorner(%d)", int(c))
	}
}

// Corners lists all modeled process corners, nominal first.
func Corners() []ProcessCorner { return []ProcessCorner{CornerTT, CornerFF, CornerSS} }

// ParseCorner is the inverse of ProcessCorner.String: it resolves a foundry-
// style corner name (case-insensitively) to the modeled corner, erroring on
// anything Corners does not list.
func ParseCorner(name string) (ProcessCorner, error) {
	for _, c := range Corners() {
		if strings.EqualFold(name, c.String()) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("device: unknown process corner %q (want TT, FF or SS)", name)
}

// PVT captures one operating condition: process corner, supply voltage and
// temperature. The zero value is not meaningful; use Nominal.
type PVT struct {
	Corner ProcessCorner
	VDD    float64 // supply voltage [V]
	TempC  float64 // junction temperature [°C]
}

// Nominal operating condition for the generic 65 nm technology:
// typical corner, VDD = 1.0 V, T = 27 °C.
func Nominal() PVT {
	return PVT{Corner: CornerTT, VDD: NominalVDD, TempC: NominalTempC}
}

// Nominal supply and temperature of the generic 65 nm technology.
const (
	NominalVDD   = 1.0  // V
	NominalTempC = 27.0 // °C
)

// TempK returns the junction temperature in kelvin.
func (p PVT) TempK() float64 { return p.TempC + ZeroCelsius }

// Vt returns the thermal voltage kT/q at this condition.
func (p PVT) Vt() float64 { return BoltzmannOverQ * p.TempK() }

// String formats the condition compactly, e.g. "TT/1.00V/27.0C".
func (p PVT) String() string {
	return fmt.Sprintf("%s/%.2fV/%.1fC", p.Corner, p.VDD, p.TempC)
}

// Tech holds the technology parameters of the generic 65 nm process.
// All values are nominal (TT, 27 °C) and are modulated by PVT and mismatch.
type Tech struct {
	Vth0      float64 // nominal NMOS threshold voltage [V]
	KPn       float64 // NMOS transconductance factor µ·Cox [A/V²]
	N         float64 // subthreshold slope factor
	Lambda    float64 // channel-length modulation [1/V]
	VCrit     float64 // velocity-saturation voltage E_crit·L [V]
	TempVth   float64 // dVth/dT [V/K] (negative)
	MobExp    float64 // mobility temperature exponent: µ ∝ (T/Tnom)^−MobExp
	CornerVth float64 // Vth shift magnitude for FF/SS corners [V]
	CornerKP  float64 // relative KP shift for FF/SS corners
	AVth      float64 // Pelgrom Vth-mismatch coefficient [V·µm]
	ABeta     float64 // Pelgrom current-factor mismatch coefficient [µm]
}

// Generic65 returns the generic 65 nm low-power technology card used
// throughout the repository. The values are chosen so the golden simulator's
// discharge behavior lands in the paper's reported ranges (see DESIGN.md §5):
// ≈0.3 V/ns bit-line slope at V_WL = 1 V with C_BL = 250 fF, ≈150 fJ
// single-cell discharge energy at 2 ns, ±20 mV mismatch band over
// 1000 samples.
func Generic65() Tech {
	return Tech{
		// Standard-VT 65 nm flavour: conduction onset sits just below the
		// DSE's V_DAC,0 grid (0.3–0.5 V), so the '0' input code of a
		// V_DAC,0 = 0.3 V design barely conducts (the asymmetry of Section
		// III-1) while higher V_DAC,0 values pay a growing data-dependent
		// offset — the trade the paper's Fig. 7/8 explore.
		Vth0:      0.25,
		KPn:       650e-6,
		N:         1.05,
		Lambda:    0.06,
		VCrit:     0.045,
		TempVth:   -0.9e-3,
		MobExp:    1.3,
		CornerVth: 0.030,
		CornerKP:  0.10,
		// Mismatch coefficients are tuned so a 1000-sample Monte Carlo of the
		// bit-line discharge reproduces the paper's Fig. 5d spread
		// (≈ −10…+20 mV at t = 2 ns, growing with V_WL): σ_Vth ≈ 2 mV and
		// σ_β ≈ 0.5 % for the cell's access device.
		AVth:  1.10e-3, // V·µm
		ABeta: 0.001,   // µm
	}
}

// Mismatch holds the per-instance random deviations of one transistor.
// A zero Mismatch is the nominal (matched) device.
type Mismatch struct {
	DVth  float64 // threshold-voltage shift [V]
	DBeta float64 // relative current-factor shift (e.g. +0.01 = +1%)
}

// MOSFET is one NMOS transistor instance with geometry and its local
// mismatch state. PMOS devices are modeled by symmetry (swapped terminal
// conventions) where needed by the SRAM cell.
type MOSFET struct {
	Tech Tech
	W    float64 // channel width [m]
	L    float64 // channel length [m]
	MM   Mismatch
}

// NewMOSFET returns a matched transistor with the given geometry.
func NewMOSFET(tech Tech, w, l float64) *MOSFET {
	return &MOSFET{Tech: tech, W: w, L: l}
}

// SigmaVth returns the Pelgrom threshold mismatch standard deviation for
// this geometry: A_Vth / sqrt(W·L), with W, L in µm.
func (m *MOSFET) SigmaVth() float64 {
	wUm, lUm := m.W*1e6, m.L*1e6
	return m.Tech.AVth / math.Sqrt(wUm*lUm)
}

// SigmaBeta returns the relative current-factor mismatch standard deviation.
func (m *MOSFET) SigmaBeta() float64 {
	wUm, lUm := m.W*1e6, m.L*1e6
	return m.Tech.ABeta / math.Sqrt(wUm*lUm)
}

// Gaussianer is the minimal sampling interface device needs from an RNG.
type Gaussianer interface {
	Gaussian(mean, sigma float64) float64
}

// SampleMismatch draws a fresh mismatch state for this device geometry.
func (m *MOSFET) SampleMismatch(rng Gaussianer) Mismatch {
	return Mismatch{
		DVth:  rng.Gaussian(0, m.SigmaVth()),
		DBeta: rng.Gaussian(0, m.SigmaBeta()),
	}
}

// Vth returns the effective threshold voltage at the given condition,
// including corner shift, temperature drift and local mismatch.
func (m *MOSFET) Vth(p PVT) float64 {
	vth := m.Tech.Vth0 + m.Tech.TempVth*(p.TempC-NominalTempC) + m.MM.DVth
	switch p.Corner {
	case CornerFF:
		vth -= m.Tech.CornerVth
	case CornerSS:
		vth += m.Tech.CornerVth
	}
	return vth
}

// Beta returns the effective transconductance factor β = KP·W/L at the
// given condition, including mobility temperature scaling, corner shift and
// local mismatch.
func (m *MOSFET) Beta(p PVT) float64 {
	beta := m.Tech.KPn * m.W / m.L
	beta *= math.Pow(p.TempK()/(NominalTempC+ZeroCelsius), -m.Tech.MobExp)
	switch p.Corner {
	case CornerFF:
		beta *= 1 + m.Tech.CornerKP
	case CornerSS:
		beta *= 1 - m.Tech.CornerKP
	}
	return beta * (1 + m.MM.DBeta)
}

// Ids returns the drain-source current [A] for the given terminal voltages
// (all node-to-ground, source-referenced internally) at condition p.
//
// The model is a velocity-saturated unified square-law (BSIM-flavoured) with
// a smooth EKV-style overdrive interpolation:
//
//	Vov   = 2·n·Vt·ln(1 + e^((Vgs−Vth)/(2·n·Vt)))   (→ exponential subthreshold)
//	Vdsat = Vc·(√(1 + 2·Vov/Vc) − 1),  Vc = E_crit·L (velocity saturation)
//	Id    = β·(Vov·Vds − Vds²/2)/(1 + Vds/Vc)             for Vds < Vdsat
//	Id    = β·(Vov·Vdsat − Vdsat²/2)/(1 + Vdsat/Vc)·(1 + λ·(Vds−Vdsat))  else
//
// Velocity saturation keeps Vdsat in the 0.2–0.3 V range typical of 65 nm
// devices, so the pass transistor remains current-source-like over deep
// bit-line discharges — the property that makes the paper's rank-1
// separable discharge model (Eq. 3) accurate — while the triode transition
// of Eq. 2 still produces the compression visible at the largest products.
func (m *MOSFET) Ids(vg, vd, vs float64, p PVT) float64 {
	if vd < vs { // enforce source/drain ordering; NMOS is symmetric
		return -m.Ids(vg, vs, vd, p)
	}
	vt := p.Vt()
	n := m.Tech.N
	beta := m.Beta(p)
	vth := m.Vth(p)
	vc := m.Tech.VCrit
	// Smooth overdrive: exponential below threshold, linear above.
	u := (vg - vs - vth) / (2 * n * vt)
	var vov float64
	if u > 40 {
		vov = 2 * n * vt * u
	} else {
		vov = 2 * n * vt * math.Log1p(math.Exp(u))
	}
	vdsat := vc * (math.Sqrt(1+2*vov/vc) - 1)
	vds := vd - vs
	if vds < vdsat {
		return beta * (vov*vds - 0.5*vds*vds) / (1 + vds/vc)
	}
	isat := beta * (vov*vdsat - 0.5*vdsat*vdsat) / (1 + vdsat/vc)
	return isat * (1 + m.Tech.Lambda*(vds-vdsat))
}

// SatVds returns the velocity-saturation-limited drain saturation voltage
// for the given gate and source voltages. The pass transistor leaves
// saturation when the bit line discharges below Vs + Vdsat (the
// velocity-saturated refinement of the paper's Eq. 2 boundary
// V_BL ≥ V_WL − Vth).
func (m *MOSFET) SatVds(vg, vs float64, p PVT) float64 {
	vt := p.Vt()
	n := m.Tech.N
	vc := m.Tech.VCrit
	u := (vg - vs - m.Vth(p)) / (2 * n * vt)
	var vov float64
	if u > 40 {
		vov = 2 * n * vt * u
	} else {
		vov = 2 * n * vt * math.Log1p(math.Exp(u))
	}
	return vc * (math.Sqrt(1+2*vov/vc) - 1)
}

// Gm returns the numeric transconductance dId/dVg at the operating point,
// used by sensitivity analyses.
func (m *MOSFET) Gm(vg, vd, vs float64, p PVT) float64 {
	const h = 1e-6
	return (m.Ids(vg+h, vd, vs, p) - m.Ids(vg-h, vd, vs, p)) / (2 * h)
}
