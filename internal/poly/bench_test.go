package poly

import (
	"testing"

	"optima/internal/stats"
)

func BenchmarkFitDegree4(b *testing.B) {
	xs := stats.Linspace(0, 1, 200)
	truth := New(1, -2, 3, -1, 0.5)
	ys := truth.EvalAll(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fit(xs, ys, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitSeparableALS(b *testing.B) {
	px, py := New(0, 1, 0.5), New(0.2, 0.9)
	var samples []Sample
	for _, x := range stats.Linspace(0, 1, 20) {
		for _, y := range stats.Linspace(0, 2, 20) {
			samples = append(samples, Sample{X: x, Y: y, Z: px.Eval(x) * py.Eval(y)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FitSeparable(samples, 4, 2, 80, 1e-13); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEval(b *testing.B) {
	p := New(1, 2, 3, 4, 5)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Eval(0.7)
	}
	_ = sink
}
