// Experiment tests: regenerate the paper's evaluation end-to-end and check
// the qualitative claims — who wins, by roughly what factor, where the
// failure modes sit. These are the integration tests of the reproduction;
// EXPERIMENTS.md records the quantitative paper-vs-measured comparison.
package optima_test

import (
	"sync"
	"testing"

	"optima/internal/core"
	"optima/internal/exp"
	"optima/internal/mult"
)

var (
	expOnce sync.Once
	expCtx  *exp.Context
	expErr  error
)

func experimentContext(t *testing.T) *exp.Context {
	t.Helper()
	expOnce.Do(func() {
		expCtx, expErr = exp.NewContext(core.DefaultCalibration())
	})
	if expErr != nil {
		t.Fatalf("calibration: %v", expErr)
	}
	return expCtx
}

func TestExperimentFig6ModelAccuracy(t *testing.T) {
	ctx := experimentContext(t)
	data, err := ctx.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", data.RMSTable.String())
	r := ctx.Model.Report
	// Paper claim: RMS modeling errors below typical ADC LSB voltages.
	// Our fom-corner LSB is ≈0.45 mV; the basic/mismatch models beat it and
	// the PVT extensions stay within a few millivolt.
	if r.BaseRMSVolts > 1e-3 {
		t.Errorf("base discharge RMS %.2f mV exceeds 1 mV", r.BaseRMSVolts*1e3)
	}
	if r.VDDRMSVolts > 6e-3 {
		t.Errorf("supply model RMS %.2f mV exceeds 6 mV", r.VDDRMSVolts*1e3)
	}
	if r.TempRMSVolts > 3e-3 {
		t.Errorf("temperature model RMS %.2f mV exceeds 3 mV", r.TempRMSVolts*1e3)
	}
}

func TestExperimentFig4Asymmetry(t *testing.T) {
	ctx := experimentContext(t)
	data, err := ctx.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// Section III-1: a '0' input still discharges the bit line slightly.
	if data.SubVtDischarge <= 0 {
		t.Fatal("no zero-code discharge — the asymmetry of Fig. 4a is missing")
	}
	if data.SubVtDischarge > 0.1 {
		t.Fatalf("zero-code discharge %.1f mV implausibly large", data.SubVtDischarge*1e3)
	}
}

func TestExperimentFig5MismatchBand(t *testing.T) {
	ctx := experimentContext(t)
	data, err := ctx.Fig5(120)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 5d: the 1000-sample band spans ≈ −10…+20 mV at 2 ns.
	if data.MismatchSpreadMV < 5 || data.MismatchSpreadMV > 40 {
		t.Fatalf("±3σ mismatch band = ±%.1f mV, outside the Fig. 5d regime", data.MismatchSpreadMV)
	}
}

func TestExperimentTable1Corners(t *testing.T) {
	ctx := experimentContext(t)
	data, err := ctx.Table1()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", data.Table.String())
	sel := data.Selection
	// Paper Table I: fom = (0.16 ns, 0.3 V, 1.0 V).
	want := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}
	if sel.FOM.Config != want {
		t.Errorf("fom corner = %v, want %v", sel.FOM.Config, want)
	}
	// Paper Table I: power = (0.16 ns, 0.3 V, 0.7 V).
	want = mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 0.7}
	if sel.Power.Config != want {
		t.Errorf("power corner = %v, want %v", sel.Power.Config, want)
	}
	// The error ordering of Table I: fom < variation, fom < power.
	if !(sel.FOM.EpsMul < sel.Power.EpsMul) {
		t.Errorf("ϵ(fom)=%.2f not below ϵ(power)=%.2f", sel.FOM.EpsMul, sel.Power.EpsMul)
	}
	if !(sel.FOM.EpsMul < sel.Variation.EpsMul) {
		t.Errorf("ϵ(fom)=%.2f not below ϵ(variation)=%.2f", sel.FOM.EpsMul, sel.Variation.EpsMul)
	}
	// Energy ordering: power < fom < variation.
	if !(sel.Power.EMul < sel.FOM.EMul && sel.FOM.EMul < sel.Variation.EMul) {
		t.Errorf("energy ordering violated: %g, %g, %g", sel.Power.EMul, sel.FOM.EMul, sel.Variation.EMul)
	}
	// Headline: ~1 pJ per operation including the write.
	if data.EnergyPerOpPJ < 0.8 || data.EnergyPerOpPJ > 1.4 {
		t.Errorf("energy per op %.2f pJ outside the ~1.05 pJ regime", data.EnergyPerOpPJ)
	}
}

func TestExperimentFig8SmallOperandFailure(t *testing.T) {
	ctx := experimentContext(t)
	sel, err := ctx.Selection()
	if err != nil {
		t.Fatal(err)
	}
	// The variation corner trades small-operand accuracy for large-operand
	// robustness (the paper's explanation for its DNN collapse).
	if !(sel.Variation.EpsSmall > sel.Variation.EpsLarge) {
		t.Errorf("variation corner: small-op ϵ %.2f not worse than large-op ϵ %.2f",
			sel.Variation.EpsSmall, sel.Variation.EpsLarge)
	}
	// The fom corner must not show that failure mode as strongly.
	ratioVar := sel.Variation.EpsSmall / sel.Variation.EpsLarge
	ratioFom := sel.FOM.EpsSmall / sel.FOM.EpsLarge
	if ratioFom >= ratioVar {
		t.Errorf("fom small/large ratio %.2f not below variation's %.2f", ratioFom, ratioVar)
	}
}

func TestExperimentSpeedup(t *testing.T) {
	ctx := experimentContext(t)
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}
	is, err := ctx.SpeedupInputSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ctx.SpeedupMonteCarlo(cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", exp.SpeedupTable(is, mc).String())
	// Paper: ~100× for input-space iteration, 28.1× for Monte Carlo. The
	// claim under test is order-of-magnitude speed-up in both modes.
	if is.Speedup() < 20 {
		t.Errorf("input-space speed-up %.1f×, want ≥ 20×", is.Speedup())
	}
	if mc.Speedup() < 20 {
		t.Errorf("Monte-Carlo speed-up %.1f×, want ≥ 20×", mc.Speedup())
	}
}

func TestExperimentDNNOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("DNN protocol takes ≈ a minute")
	}
	ctx := experimentContext(t)
	data, err := ctx.RunDNN(exp.BenchDNNScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", data.Table2.String())
	t.Logf("\n%s", data.Table3.String())
	for _, row := range data.ImageNet {
		// Paper Table II shape: FLOAT32 ≈ INT4 ≈ fom, power degrades,
		// variation collapses. With the reduced training budget we assert
		// the load-bearing gaps only.
		if row.Fom[0] < row.Variation[0] {
			t.Errorf("%s: fom top-1 %.1f below variation %.1f", row.Model, row.Fom[0], row.Variation[0])
		}
		if row.Int4[0]-row.Fom[0] > 25 {
			t.Errorf("%s: fom drops %.1f%% from INT4 — too large", row.Model, row.Int4[0]-row.Fom[0])
		}
		if row.Variation[0] > row.Int4[0]-10 {
			t.Errorf("%s: variation corner did not collapse (%.1f vs INT4 %.1f)",
				row.Model, row.Variation[0], row.Int4[0])
		}
		if row.MultsMillions <= 0 {
			t.Errorf("%s: missing multiplication count", row.Model)
		}
	}
}
