package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func names(results []result, wantRegression bool) []string {
	var out []string
	for _, r := range results {
		if r.regression == wantRegression {
			out = append(out, r.line)
		}
	}
	return out
}

func single(benches ...Bench) [][]Bench { return [][]Bench{benches} }

func TestGateFlagsOnlyRealRegressions(t *testing.T) {
	baseline := single(
		Bench{Name: "BenchmarkEngineSweep/cold", NsPerOp: 1000},
		Bench{Name: "BenchmarkEngineSweep/cached", NsPerOp: 100},
		Bench{Name: "BenchmarkSearchAdaptive/cold", NsPerOp: 5000},
		Bench{Name: "BenchmarkRemoved", NsPerOp: 10},
		Bench{Name: "BenchmarkZeroBase", NsPerOp: 0},
	)
	fresh := []Bench{
		{Name: "BenchmarkEngineSweep/cold", NsPerOp: 1290},   // +29%: within budget
		{Name: "BenchmarkEngineSweep/cached", NsPerOp: 131},  // +31%: regression
		{Name: "BenchmarkSearchAdaptive/cold", NsPerOp: 900}, // faster
		{Name: "BenchmarkAdded", NsPerOp: 42},                // no baseline
		{Name: "BenchmarkZeroBase", NsPerOp: 77},             // baseline 0: skipped
	}
	results := gate(baseline, fresh, 0.30)
	regs := names(results, true)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkEngineSweep/cached") {
		t.Fatalf("regressions = %v, want exactly the cached sweep", regs)
	}
	var added, gone, skipped, passed bool
	for _, line := range names(results, false) {
		added = added || strings.HasPrefix(line, "NEW") && strings.Contains(line, "BenchmarkAdded")
		gone = gone || strings.HasPrefix(line, "GONE") && strings.Contains(line, "BenchmarkRemoved")
		skipped = skipped || strings.HasPrefix(line, "SKIP") && strings.Contains(line, "BenchmarkZeroBase")
		passed = passed || strings.HasPrefix(line, "PASS") && strings.Contains(line, "BenchmarkSearchAdaptive/cold")
	}
	if !added || !gone || !skipped || !passed {
		t.Fatalf("missing NEW/GONE/SKIP/PASS reporting: added=%v gone=%v skipped=%v passed=%v",
			added, gone, skipped, passed)
	}
	if got := tally(results); got != "2 passed, 1 new, 1 skipped, 1 regressed, 1 gone" {
		t.Fatalf("tally = %q", got)
	}
}

// TestGateNoBaselinesReportsAllNew: the first run of a branch has nothing
// to gate against, but still reports each benchmark (as NEW) so a green
// run shows its coverage.
func TestGateNoBaselinesReportsAllNew(t *testing.T) {
	fresh := []Bench{{Name: "A", NsPerOp: 10}, {Name: "B", NsPerOp: 20}}
	results := gate(nil, fresh, 0.30)
	if len(results) != 2 {
		t.Fatalf("got %d verdict lines, want one per benchmark", len(results))
	}
	for _, r := range results {
		if r.kind != "NEW" || r.regression {
			t.Fatalf("verdict without baselines: %+v, want a non-gating NEW", r)
		}
	}
	if got := tally(results); got != "2 new" {
		t.Fatalf("tally = %q, want \"2 new\"", got)
	}
	if got := tally(nil); got != "no benchmarks" {
		t.Fatalf("empty tally = %q", got)
	}
}

func TestGateExactBoundaryPasses(t *testing.T) {
	baseline := single(Bench{Name: "B", NsPerOp: 1000})
	fresh := []Bench{{Name: "B", NsPerOp: 1300}} // exactly +30%
	if regs := names(gate(baseline, fresh, 0.30), true); len(regs) != 0 {
		t.Fatalf("+30%% exactly should pass, got %v", regs)
	}
}

// TestGateMedianAbsorbsNoisyBaseline is the smoothing the multi-run
// baseline exists for: one outlier artifact — lucky or unlucky — must not
// move the gate, because the median of three runs ignores it.
func TestGateMedianAbsorbsNoisyBaseline(t *testing.T) {
	baselines := [][]Bench{
		{{Name: "B", NsPerOp: 400}}, // lucky outlier run
		{{Name: "B", NsPerOp: 1000}},
		{{Name: "B", NsPerOp: 1010}},
	}
	// +20% against the median (1000): fine, even though it is +150% against
	// the lucky run the single-baseline gate would have compared with.
	fresh := []Bench{{Name: "B", NsPerOp: 1200}}
	if regs := names(gate(baselines, fresh, 0.30), true); len(regs) != 0 {
		t.Fatalf("median gate flagged a +20%% run because of a lucky outlier: %v", regs)
	}
	// The converse: an unlucky slow outlier must not mask a real regression.
	baselines = [][]Bench{
		{{Name: "B", NsPerOp: 5000}}, // unlucky outlier run
		{{Name: "B", NsPerOp: 1000}},
		{{Name: "B", NsPerOp: 990}},
	}
	fresh = []Bench{{Name: "B", NsPerOp: 1400}} // +40% vs median
	if regs := names(gate(baselines, fresh, 0.30), true); len(regs) != 1 {
		t.Fatalf("median gate missed a +40%% regression hidden by a slow outlier: %v",
			names(gate(baselines, fresh, 0.30), false))
	}
}

// TestGateAllocations pins the allocs/op gate: allocation growth beyond the
// budget regresses even at flat ns/op, a 0 allocation baseline (old
// artifacts without the field, or allocation-free benchmarks) never gates,
// and within-budget growth passes.
func TestGateAllocations(t *testing.T) {
	baselines := [][]Bench{
		{{Name: "B", NsPerOp: 1000, AllocsPerOp: 100}, {Name: "NoAllocs", NsPerOp: 500}},
		{{Name: "B", NsPerOp: 1000, AllocsPerOp: 102}, {Name: "NoAllocs", NsPerOp: 500}},
		{{Name: "B", NsPerOp: 1000, AllocsPerOp: 98}, {Name: "NoAllocs", NsPerOp: 500}},
	}
	// Flat time, +40% allocations: regression naming the allocation metric.
	fresh := []Bench{
		{Name: "B", NsPerOp: 1000, AllocsPerOp: 140},
		{Name: "NoAllocs", NsPerOp: 510, AllocsPerOp: 25}, // baseline never tracked allocs: skip that metric
	}
	results := gate(baselines, fresh, 0.30)
	regs := names(results, true)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs") || !strings.Contains(regs[0], "B") {
		t.Fatalf("alloc regression not flagged: %v", regs)
	}
	// Within budget passes.
	fresh[0].AllocsPerOp = 120
	if regs := names(gate(baselines, fresh, 0.30), true); len(regs) != 0 {
		t.Fatalf("+20%% allocations should pass, got %v", regs)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	blob := `[{"name": "BenchmarkX", "iterations": 2, "ns_per_op": 123.5, "allocs_per_op": 7}]`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "BenchmarkX" || got[0].NsPerOp != 123.5 ||
		got[0].Iterations != 2 || got[0].AllocsPerOp != 7 {
		t.Fatalf("loaded %+v", got)
	}
	// Artifacts written before allocation gating decode with 0 allocs/op.
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(legacy, []byte(`[{"name": "BenchmarkY", "iterations": 1, "ns_per_op": 9}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := load(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if old[0].AllocsPerOp != 0 {
		t.Fatalf("legacy artifact allocs = %v, want 0", old[0].AllocsPerOp)
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Fatalf("missing file: %v, want IsNotExist", err)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
	if got := median([]float64{7}); got != 7 {
		t.Fatalf("single median = %v, want 7", got)
	}
}
