// Package determinism is the expected-diagnostic corpus for the
// determinism analyzer: map-order-dependent accumulation, wall-clock
// reads, and unseeded randomness, next to the clean idioms that must not
// be flagged.
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func badMapAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "accumulation into out"
	}
	return out
}

func goodMapAppendSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func goodIndexedWrite(m map[int]string, n int) []string {
	out := make([]string, n)
	for i, v := range m {
		out[i] = v
	}
	return out
}

func badStringConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "accumulation into s"
	}
	return s
}

func badBuilderWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "write to b.WriteString"
	}
	return b.String()
}

func badFprintf(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf sink w"
	}
}

func badNow() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func badGlobalRand() int {
	return rand.Intn(10) // want "math/rand"
}

func goodSeededRand(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}
