package engine

// Comparison pairs one job's metrics from two backends — the
// behavioral-vs-golden comparison mode any sweep can run.
type Comparison struct {
	Job  Job
	A, B Metrics
	// DeltaEps is B.EpsMul − A.EpsMul [LSB].
	DeltaEps float64
	// EnergyRatio is B.EMul / A.EMul (1 = perfect agreement).
	EnergyRatio float64
}

// CompareAll evaluates the jobs on both engines and pairs the results in
// job order. Each engine keeps its own cache, so re-running a comparison
// after a sweep (or vice versa) only pays for the corners not yet seen.
func CompareAll(a, b *Engine, jobs []Job) ([]Comparison, error) {
	ma, err := a.EvaluateAll(jobs)
	if err != nil {
		return nil, err
	}
	mb, err := b.EvaluateAll(jobs)
	if err != nil {
		return nil, err
	}
	out := make([]Comparison, len(jobs))
	for i := range jobs {
		c := Comparison{Job: jobs[i], A: ma[i], B: mb[i], DeltaEps: mb[i].EpsMul - ma[i].EpsMul}
		if ma[i].EMul != 0 {
			c.EnergyRatio = mb[i].EMul / ma[i].EMul
		}
		out[i] = c
	}
	return out, nil
}
