package spice

import (
	"optima/internal/device"
)

// Geometry of the generic 65 nm 6T cell (meters). The access device is
// drawn slightly narrower than the pull-down per standard 6T read-stability
// ratioing; the pull-up is minimal.
const (
	AccessW   = 0.18e-6
	AccessL   = 0.065e-6
	PullDownW = 0.30e-6
	PullDownL = 0.065e-6
	PullUpW   = 0.10e-6
	PullUpL   = 0.065e-6
)

// Default capacitances: the bit line is shared by a 256-row sub-array
// (≈ 250 fF including wire and drain junctions); cell internal nodes and
// the stack's intermediate node are small.
const (
	DefaultCBL  = 250e-15
	DefaultCInt = 1.5e-15
	DefaultCQ   = 1.2e-15
)

// DischargePath is the two-transistor stack that discharges the BLB during
// an in-SRAM multiplication: the access transistor M6 (gate driven by the
// word line at the DAC output voltage) in series with the cell's pull-down
// M4 (gate at the internal '1' node, i.e. at VDD). State vector:
//
//	v[0] = V_BLB (bit-line-bar voltage)
//	v[1] = V_int (node between M6 and M4)
//
// A cell storing '0' never turns M4 on, so the path only exists for d = 1;
// callers model d = 0 as "no discharge" exactly as the paper does.
type DischargePath struct {
	Access *device.MOSFET // M6: gate = WL
	Driver *device.MOSFET // M4: gate = VDD ('1' stored)
	CBL    float64        // bit-line capacitance [F]
	CInt   float64        // intermediate node capacitance [F]
	VWL    float64        // word-line (DAC output) voltage [V]
	Cond   device.PVT
}

// NewDischargePath builds the default-geometry discharge path for the given
// word-line voltage and condition.
func NewDischargePath(tech device.Tech, vwl float64, cond device.PVT) *DischargePath {
	return &DischargePath{
		Access: device.NewMOSFET(tech, AccessW, AccessL),
		Driver: device.NewMOSFET(tech, PullDownW, PullDownL),
		CBL:    DefaultCBL,
		CInt:   DefaultCInt,
		VWL:    vwl,
		Cond:   cond,
	}
}

// Dim implements System.
func (d *DischargePath) Dim() int { return 2 }

// Derivatives implements System.
func (d *DischargePath) Derivatives(_ float64, v, dv []float64) {
	vbl, vint := v[0], v[1]
	iAcc := d.Access.Ids(d.VWL, vbl, vint, d.Cond)    // BLB → internal node
	iDrv := d.Driver.Ids(d.Cond.VDD, vint, 0, d.Cond) // internal node → GND
	dv[0] = -iAcc / d.CBL
	dv[1] = (iAcc - iDrv) / d.CInt
}

// InitialState returns the pre-charged state: BLB at VDD, stack node at 0.
func (d *DischargePath) InitialState() []float64 {
	return []float64{d.Cond.VDD, 0}
}

// Discharge runs the transient for the given duration and returns the
// result. The caller reads V_BLB(t) from the waveform (node 0).
func (d *DischargePath) Discharge(duration float64, cfg Config, sampleEvery float64) (*Result, error) {
	return d.DischargeScratch(duration, cfg, sampleEvery, nil)
}

// DischargeScratch is Discharge with caller-owned integrator work buffers —
// workers that run many discharges back to back pass their own Scratch to
// avoid reallocating the stage vectors per transient. A nil scr allocates
// per call.
func (d *DischargePath) DischargeScratch(duration float64, cfg Config, sampleEvery float64, scr *Scratch) (*Result, error) {
	return TransientScratch(d, d.InitialState(), 0, duration, d.Cond.VDD, cfg, sampleEvery, scr)
}

// SampleMismatch draws fresh mismatch for both stack transistors.
func (d *DischargePath) SampleMismatch(rng device.Gaussianer) {
	d.Access.MM = d.Access.SampleMismatch(rng)
	d.Driver.MM = d.Driver.SampleMismatch(rng)
}

// ClearMismatch restores matched devices.
func (d *DischargePath) ClearMismatch() {
	d.Access.MM = device.Mismatch{}
	d.Driver.MM = device.Mismatch{}
}

// SRAMCellWrite models the write transient of a full 6T cell with the bit
// lines driven to rails by an ideal write driver. State vector:
//
//	v[0] = V_Q, v[1] = V_QB
//
// The supply current through the two pull-ups is reported for energy
// integration, capturing the short-circuit component during the cell flip
// (this is what gives the write energy its mild temperature dependence,
// fitted by the paper's Eq. 7).
type SRAMCellWrite struct {
	PDL, PDR *device.MOSFET // pull-downs (gates cross-coupled)
	PUL, PUR *device.PMOS   // pull-ups (gates cross-coupled)
	AXL, AXR *device.MOSFET // access transistors
	CQ       float64        // internal node capacitance [F]
	VBL      float64        // bit-line voltage forced by the write driver
	VBLB     float64        // bit-line-bar voltage forced by the write driver
	VWL      float64        // word-line voltage
	Cond     device.PVT
}

// NewSRAMCellWrite builds the default-geometry cell with the given forced
// bit-line voltages and full-VDD word line.
func NewSRAMCellWrite(tech device.Tech, vbl, vblb float64, cond device.PVT) *SRAMCellWrite {
	return &SRAMCellWrite{
		PDL:  device.NewMOSFET(tech, PullDownW, PullDownL),
		PDR:  device.NewMOSFET(tech, PullDownW, PullDownL),
		PUL:  device.NewPMOS(tech, PullUpW, PullUpL),
		PUR:  device.NewPMOS(tech, PullUpW, PullUpL),
		AXL:  device.NewMOSFET(tech, AccessW, AccessL),
		AXR:  device.NewMOSFET(tech, AccessW, AccessL),
		CQ:   DefaultCQ,
		VBL:  vbl,
		VBLB: vblb,
		VWL:  cond.VDD,
		Cond: cond,
	}
}

// Dim implements System.
func (c *SRAMCellWrite) Dim() int { return 2 }

// Derivatives implements System.
func (c *SRAMCellWrite) Derivatives(_ float64, v, dv []float64) {
	q, qb := v[0], v[1]
	// Left half drives Q: pull-up and pull-down gated by QB; access to BL.
	iPUL := c.PUL.Isd(qb, q, c.Cond.VDD, c.Cond)
	iPDL := c.PDL.Ids(qb, q, 0, c.Cond)
	iAXL := c.AXL.Ids(c.VWL, c.VBL, q, c.Cond) // BL → Q when VBL > Q
	// Right half drives QB symmetrically.
	iPUR := c.PUR.Isd(q, qb, c.Cond.VDD, c.Cond)
	iPDR := c.PDR.Ids(q, qb, 0, c.Cond)
	iAXR := c.AXR.Ids(c.VWL, c.VBLB, qb, c.Cond)
	dv[0] = (iPUL - iPDL + iAXL) / c.CQ
	dv[1] = (iPUR - iPDR + iAXR) / c.CQ
}

// SupplyCurrent implements PowerMeter: current drawn through both pull-ups.
func (c *SRAMCellWrite) SupplyCurrent(_ float64, v []float64) float64 {
	q, qb := v[0], v[1]
	return c.PUL.Isd(qb, q, c.Cond.VDD, c.Cond) + c.PUR.Isd(q, qb, c.Cond.VDD, c.Cond)
}

// InitialStateHolding returns the stable state holding the given bit
// (bit=true means Q = VDD).
func (c *SRAMCellWrite) InitialStateHolding(bit bool) []float64 {
	if bit {
		return []float64{c.Cond.VDD, 0}
	}
	return []float64{0, c.Cond.VDD}
}

// Write runs the write transient for the given duration starting from the
// cell holding the opposite value of the write data, and reports whether the
// flip completed (Q and QB separated by more than 80% of VDD in the target
// direction).
func (c *SRAMCellWrite) Write(bit bool, duration float64, cfg Config) (flipped bool, res *Result, err error) {
	res, err = Transient(c, c.InitialStateHolding(!bit), 0, duration, c.Cond.VDD, cfg, 0)
	if err != nil {
		return false, res, err
	}
	final := res.Waveform.Final()
	sep := final[0] - final[1]
	if !bit {
		sep = -sep
	}
	return sep > 0.8*c.Cond.VDD, res, nil
}
