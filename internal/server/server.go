// Package server is the exploration-as-a-service layer: a long-lived HTTP
// server (stdlib net/http only) exposing the evaluation stack to multiple
// concurrent users. Clients create sessions, submit sweep / adaptive-search
// / condition-matrix jobs, and follow live progress over WebSocket (a
// hand-rolled RFC 6455 subset — no dependencies).
//
// The concurrency model has two layers. Per session, operations are
// serialized: a session holds at most one active job (submitting into a
// busy session is a 409), and DELETE on the active job cancels it
// promptly — in-flight backend evaluations complete and persist, unstarted
// cells are abandoned, so the store stays consistent and a rerun resumes
// from the warm tiers. Across sessions, everything is shared: all jobs run
// against one exp.Context, so overlapping submissions from different users
// dedupe against the same memory cache and persistent store.
//
// Results use the same JSON shapes the optima CLI writes (search jobs
// return search.JSONReport — byte-identical to `optima search`'s
// search.json payload for identical options, at any worker count).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"

	"optima/internal/engine"
	"optima/internal/exp"
	"optima/internal/obs"
)

// Server is the service state: the shared experiment context, the session
// table, and the progress hub. Create with New, serve Handler, stop with
// Shutdown.
type Server struct {
	exp *exp.Context
	hub *Hub
	mux *http.ServeMux
	rec *obs.Recorder
	sm  serverMetrics

	// engineFor resolves a backend name to an evaluation engine — normally
	// exp.Context.EngineFor; in-package tests substitute controllable
	// backends through it.
	engineFor func(name string) (*engine.Engine, error)

	mu        sync.Mutex
	sessions  map[string]*session
	sessOrder []string

	nextSess atomic.Uint64
	nextJob  atomic.Uint64

	jobWG   sync.WaitGroup
	closing atomic.Bool
}

// serverMetrics holds the server-level instrument handles. The zero value
// (every handle nil) is inert, so a bare Server in tests records nothing.
type serverMetrics struct {
	sessions   *obs.Gauge   // optima_sessions_active
	jobsActive *obs.Gauge   // optima_jobs_active
	jobsDone   *obs.Counter // optima_jobs_total{state="done"}
	jobsFailed *obs.Counter // optima_jobs_total{state="failed"}
	jobsCancel *obs.Counter // optima_jobs_total{state="canceled"}
}

func newServerMetrics(rec *obs.Recorder) serverMetrics {
	reg := rec.Metrics()
	const jobsHelp = "Jobs finished, by terminal state."
	return serverMetrics{
		sessions:   reg.Gauge("optima_sessions_active", "Live sessions."),
		jobsActive: reg.Gauge("optima_jobs_active", "Jobs currently running."),
		jobsDone:   reg.Counter("optima_jobs_total", jobsHelp, "state", JobDone),
		jobsFailed: reg.Counter("optima_jobs_total", jobsHelp, "state", JobFailed),
		jobsCancel: reg.Counter("optima_jobs_total", jobsHelp, "state", JobCanceled),
	}
}

// New wraps an experiment context into a server. The caller keeps
// ownership of nothing: Shutdown closes the context (flushing the
// persistent store).
//
// The server always runs instrumented: it adopts the context's Recorder —
// creating one when the context has none, before the engine is built, so
// the engine and store register against it — serves its registry on GET
// /metrics, and serves per-job span subtrees as Chrome trace JSON.
func New(expCtx *exp.Context) *Server {
	if expCtx.Recorder == nil {
		expCtx.Recorder = obs.NewRecorder(obs.RecorderOptions{Logger: slog.Default()})
	}
	s := &Server{
		exp:      expCtx,
		hub:      NewHub(),
		mux:      http.NewServeMux(),
		rec:      expCtx.Recorder,
		sessions: make(map[string]*session),
	}
	s.sm = newServerMetrics(s.rec)
	s.hub.instrument(s.rec)
	s.engineFor = expCtx.EngineFor
	s.routes()
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/status", s.handleStatus)
	s.mux.HandleFunc("POST /api/sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /api/sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /api/sessions/{sid}", s.handleGetSession)
	s.mux.HandleFunc("DELETE /api/sessions/{sid}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /api/sessions/{sid}/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /api/sessions/{sid}/jobs/{jid}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /api/sessions/{sid}/jobs/{jid}", s.handleCancelJob)
	s.mux.HandleFunc("GET /api/sessions/{sid}/jobs/{jid}/ws", s.handleJobWS)
	s.mux.HandleFunc("GET /api/sessions/{sid}/jobs/{jid}/trace", s.handleJobTrace)
}

// handleMetrics serves the recorder's registry in the Prometheus text
// exposition format — the scrape surface for the whole stack (engine,
// store, hub, search, server), since every layer registers against the
// one adopted recorder.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.rec.Metrics().WritePrometheus(w); err != nil {
		// Headers are gone; the scraper sees a truncated body and retries.
		slog.Debug("metrics write failed", "err", err)
	}
}

// handleJobTrace serves the job's span subtree (the job span plus every
// batch/eval/rung span started under it) as Chrome trace-format JSON —
// open the payload in Perfetto or chrome://tracing. A job that has not
// started yet, or whose spans have been overwritten in the recorder's
// ring, yields an empty (but valid) trace.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	_, j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	spans := obs.Subtree(s.rec.Snapshot(), j.rootSpan())
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteTrace(w, spans); err != nil {
		slog.Debug("trace write failed", "job", j.id, "err", err)
	}
}

// Shutdown drains the server: new sessions and jobs are refused (503),
// running jobs are waited for — or cancelled when ctx expires first — and
// the experiment context is closed, flushing the persistent store. Call
// after the HTTP listener has stopped accepting.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Snapshot in sessOrder (creation order), not map order: the cancel
		// fan-out is then deterministic, so a drain-deadline shutdown logs
		// and unwinds identically across runs.
		s.mu.Lock()
		sessions := make([]*session, 0, len(s.sessOrder))
		for _, id := range s.sessOrder {
			sessions = append(sessions, s.sessions[id])
		}
		s.mu.Unlock()
		for _, sess := range sessions {
			sess.cancelActive()
		}
		<-done // cancelled jobs unwind quickly (cells are abandoned)
	}
	return s.exp.Close()
}

// StoreStatus reports the persistent-store health on GET /api/status.
type StoreStatus struct {
	// Persistent is false when no cache directory was configured OR the
	// store failed to open (Error says why) — either way the server is
	// serving from the memory tier only and results do not survive it.
	Persistent bool   `json:"persistent"`
	Dir        string `json:"dir,omitempty"`
	Error      string `json:"error,omitempty"`
	// Records is the live result count under the session fingerprint.
	Records int `json:"records,omitempty"`
}

// SessionJobCounts is one session's job accounting on GET /api/status.
type SessionJobCounts struct {
	ID string `json:"id"`
	// Active is 0 or 1 — a session serializes its operations.
	Active int `json:"active"`
	Total  int `json:"total"`
}

// HubStatus reports the progress hub's fan-out state on GET /api/status.
type HubStatus struct {
	Topics      int     `json:"topics"`
	Subscribers int     `json:"subscribers"`
	DroppedSlow float64 `json:"dropped_slow"`
}

// StatusResponse is the body of GET /api/status.
type StatusResponse struct {
	Backend    string       `json:"backend"`
	Workers    int          `json:"workers"`
	Conditions string       `json:"conditions"`
	Sessions   int          `json:"sessions"`
	ActiveJobs int          `json:"active_jobs"`
	Engine     engine.Stats `json:"engine"`
	Store      StoreStatus  `json:"store"`
	// SessionJobs breaks the job accounting down per session, in session
	// creation order.
	SessionJobs []SessionJobCounts `json:"session_jobs,omitempty"`
	Hub         HubStatus          `json:"hub"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	eng := s.exp.Engine() // builds on first call; resolves the store
	resp := StatusResponse{
		Backend:    eng.Backend().Name(),
		Workers:    eng.Workers(),
		Conditions: s.exp.ConditionSet().String(),
		Engine:     eng.Stats(),
	}
	if st := s.exp.Store(); st != nil {
		resp.Store = StoreStatus{Persistent: true, Dir: st.Dir(), Records: st.Len()}
	} else if err := s.exp.StoreError(); err != nil {
		// The degradation surface: CacheDir was configured but the store
		// could not open, so the server runs memory-only.
		resp.Store.Error = err.Error()
	}
	resp.Hub.Topics, resp.Hub.Subscribers = s.hub.Counts()
	resp.Hub.DroppedSlow = s.hub.dropped.Value()
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessOrder))
	for _, id := range s.sessOrder {
		sessions = append(sessions, s.sessions[id])
	}
	s.mu.Unlock()
	resp.Sessions = len(sessions)
	// Per-session counts walk creation order so the response is stable
	// across identical states (map order would shuffle it per request).
	for _, sess := range sessions {
		sess.mu.Lock()
		sc := SessionJobCounts{ID: sess.id, Total: len(sess.order)}
		if sess.opJob != "" {
			sc.Active = 1
			resp.ActiveJobs++
		}
		sess.mu.Unlock()
		resp.SessionJobs = append(resp.SessionJobs, sc)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	sess := newSession(fmt.Sprintf("s%d", s.nextSess.Add(1)))
	s.mu.Lock()
	s.sessions[sess.id] = sess
	s.sessOrder = append(s.sessOrder, sess.id)
	s.mu.Unlock()
	s.sm.sessions.Add(1)
	slog.Info("session created", "session", sess.id)
	writeJSON(w, http.StatusCreated, sess.status())
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessOrder))
	for _, id := range s.sessOrder {
		sessions = append(sessions, s.sessions[id])
	}
	s.mu.Unlock()
	out := make([]SessionStatus, len(sessions))
	for i, sess := range sessions {
		out[i] = sess.status()
	}
	writeJSON(w, http.StatusOK, out)
}

// lookupSession resolves {sid}, writing the 404 itself on a miss.
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("sid")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "no session %q", id)
	}
	return sess
}

// lookupJob resolves {sid}/{jid}, writing the 404 itself on a miss.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*session, *job) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return nil, nil
	}
	id := r.PathValue("jid")
	j := sess.getJob(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %q in session %s", id, sess.id)
		return nil, nil
	}
	return sess, j
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookupSession(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.status())
	}
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	sess.cancelActive()
	s.mu.Lock()
	delete(s.sessions, sess.id)
	for i, id := range s.sessOrder {
		if id == sess.id {
			s.sessOrder = append(s.sessOrder[:i], s.sessOrder[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	s.sm.sessions.Add(-1)
	slog.Info("session deleted", "session", sess.id, "jobs", len(sess.jobIDs()))
	// Disconnect watchers and free the event histories. A still-running
	// job keeps running to its terminal state (its runner holds direct
	// references); it just has no audience anymore.
	for _, id := range sess.jobIDs() {
		s.hub.Drop(id)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	jobID := fmt.Sprintf("j%d", s.nextJob.Add(1))
	p, err := s.buildPlan(req, jobID)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := sess.begin(req.Kind, jobID, cancel); err != nil {
		cancel()
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	j := newJob(jobID, sess.id, req.Kind)
	sess.addJob(j)
	s.hub.Publish(jobID, Event{Type: EventState, State: JobQueued})
	s.jobWG.Add(1)
	go s.runJob(sess, j, p, ctx, cancel)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	if _, j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status(true))
	}
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	sess, j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	// Delivering the cancellation is all DELETE does; the job reaches its
	// terminal state asynchronously (watch the WebSocket or poll GET). On
	// an already-finished job this is a no-op returning the final state.
	sess.cancelJob(j.id)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

func (s *Server) handleJobWS(w http.ResponseWriter, r *http.Request) {
	_, j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	ws, err := upgradeWS(w, r)
	if err != nil {
		return // upgradeWS already wrote the HTTP error
	}
	history, ch := s.hub.Subscribe(j.id)
	// Reader: the only frames a client sends are control frames; its job
	// is to detect a hang-up and detach the subscription so the writer
	// loop below unblocks (Unsubscribe closes ch).
	go func() {
		for {
			if _, err := ws.ReadMessage(); err != nil {
				s.hub.Unsubscribe(j.id, ch)
				ws.conn.Close()
				return
			}
		}
	}()
	for _, msg := range history {
		if ws.WriteMessage(msg) != nil {
			s.hub.Unsubscribe(j.id, ch)
			ws.conn.Close()
			return
		}
	}
	for msg := range ch {
		if ws.WriteMessage(msg) != nil {
			s.hub.Unsubscribe(j.id, ch)
			ws.conn.Close()
			return
		}
	}
	// Topic closed (terminal event delivered): complete the close
	// handshake and let the reader goroutine exit on the closed conn.
	ws.Close()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is gone; nothing useful to do but drop the conn.
		_ = err
	}
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
