package dse

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/mult"
	"optima/internal/spice"
)

var (
	fixtureOnce  sync.Once
	fixtureModel *core.Model
	fixtureErr   error
)

func testModel(t *testing.T) *core.Model {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureModel, fixtureErr = core.Calibrate(core.QuickCalibration())
	})
	if fixtureErr != nil {
		t.Fatalf("calibration fixture: %v", fixtureErr)
	}
	return fixtureModel
}

func TestDefaultGridHas48Corners(t *testing.T) {
	cfgs := DefaultGrid().Configs()
	if len(cfgs) != 48 {
		t.Fatalf("grid has %d corners, want 48", len(cfgs))
	}
	seen := map[mult.Config]bool{}
	for _, c := range cfgs {
		if seen[c] {
			t.Fatalf("duplicate corner %v", c)
		}
		seen[c] = true
	}
}

func TestGridSkipsInvalidCombos(t *testing.T) {
	g := Grid{Tau0s: []float64{1e-10}, VDAC0s: []float64{0.8}, VDACFSs: []float64{0.7}}
	if got := len(g.Configs()); got != 0 {
		t.Fatalf("invalid combos kept: %d", got)
	}
}

func TestEvaluateMetricsSanity(t *testing.T) {
	m := testModel(t)
	met, err := Evaluate(m, mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}, device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if met.EpsMul <= 0 || met.EpsMul > 20 {
		t.Fatalf("ϵ = %g outside plausible range", met.EpsMul)
	}
	if met.EMul < 20e-15 || met.EMul > 200e-15 {
		t.Fatalf("E = %g J outside plausible range", met.EMul)
	}
	if met.SigmaMaxLSB <= 0 || met.SigmaMaxVolt <= 0 || met.LSBVolt <= 0 {
		t.Fatal("σ/LSB fields not populated")
	}
	if met.FOM() <= 0 {
		t.Fatal("FOM must be positive")
	}
	// ϵ̄ decomposes into the small/large means (128 pairs in each half is
	// not exact — the split is by product value — but both must contribute).
	if met.EpsSmall <= 0 || met.EpsLarge <= 0 {
		t.Fatal("split errors not populated")
	}
}

func TestSweepDeterministic(t *testing.T) {
	m := testModel(t)
	grid := Grid{
		Tau0s:   []float64{0.16e-9, 0.24e-9},
		VDAC0s:  []float64{0.3, 0.4},
		VDACFSs: []float64{0.7, 1.0},
	}
	a, err := Sweep(m, grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(m, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("sweep lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].EpsMul != b[i].EpsMul || a[i].EMul != b[i].EMul {
			t.Fatalf("sweep not deterministic at corner %d", i)
		}
	}
}

// TestSweepWorkerCountInvariance is the regression test for the grid-order
// guarantee: the full 48-corner sweep must produce bit-identical metrics —
// every field, in grid order — whether it runs on one worker or eight.
func TestSweepWorkerCountInvariance(t *testing.T) {
	m := testModel(t)
	serial, err := Sweep(m, DefaultGrid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(m, DefaultGrid(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 48 || len(parallel) != 48 {
		t.Fatalf("sweep lengths %d, %d, want 48", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("corner %d differs between workers=1 and workers=8:\n%+v\n%+v",
				i, serial[i], parallel[i])
		}
	}
	// Grid order: results must line up with the expanded configuration list.
	for i, cfg := range DefaultGrid().Configs() {
		if serial[i].Config != cfg {
			t.Fatalf("result %d is corner %v, want %v (grid order broken)", i, serial[i].Config, cfg)
		}
	}
}

func TestSelectRules(t *testing.T) {
	m := testModel(t)
	mets, err := Sweep(m, DefaultGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(mets)
	if err != nil {
		t.Fatal(err)
	}
	// The power corner minimizes energy over the whole sweep.
	for _, met := range mets {
		if met.EMul < sel.Power.EMul {
			t.Fatalf("power corner not minimal: %v has %g < %g", met.Config, met.EMul, sel.Power.EMul)
		}
		if met.FOM() > sel.FOM.FOM() {
			t.Fatalf("FOM corner not maximal")
		}
	}
	// The paper's power corner: smallest τ0, lowest V_DAC,0 and full scale.
	want := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 0.7}
	if sel.Power.Config != want {
		t.Errorf("power corner = %v, want %v (paper Table I)", sel.Power.Config, want)
	}
	// The fom corner should sit at V_DAC,0 = 0.3 V with full scale 1.0 V
	// (paper Table I); τ0 may differ by one grid step on our substrate.
	if sel.FOM.Config.VDAC0 != 0.3 || sel.FOM.Config.VDACFS != 1.0 {
		t.Errorf("fom corner = %v, want V_DAC,0=0.3, FS=1.0", sel.FOM.Config)
	}
	// The variation corner must trade small-operand accuracy for robustness
	// at large operands (the paper's Fig. 8 story).
	if sel.Variation.EpsSmall <= sel.Variation.EpsLarge {
		t.Errorf("variation corner lacks the small-operand penalty: small %g, large %g",
			sel.Variation.EpsSmall, sel.Variation.EpsLarge)
	}
	if _, err := Select(nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestParetoFrontProperties(t *testing.T) {
	m := testModel(t)
	mets, err := Sweep(m, DefaultGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(mets)
	if len(front) == 0 || len(front) > len(mets) {
		t.Fatalf("front size %d", len(front))
	}
	// Sorted by energy and mutually non-dominating.
	for i := 1; i < len(front); i++ {
		if front[i].EMul < front[i-1].EMul {
			t.Fatal("front not sorted by energy")
		}
		if front[i].EpsMul >= front[i-1].EpsMul {
			t.Fatal("front member dominated by its neighbor")
		}
	}
	// No swept corner dominates a front member.
	for _, f := range front {
		for _, m := range mets {
			if m.EpsMul < f.EpsMul && m.EMul < f.EMul {
				t.Fatalf("front member %v dominated by %v", f.Config, m.Config)
			}
		}
	}
}

func TestExpectedAbsErrorAnalytic(t *testing.T) {
	// Zero noise: plain quantization error.
	if got := engine.ExpectedAbsError(10.4, 0, 1, 10); got != 0 {
		t.Fatalf("σ=0 rounding: %g, want 0", got)
	}
	if got := engine.ExpectedAbsError(10.6, 0, 1, 10); got != 1 {
		t.Fatalf("σ=0 rounding: %g, want 1", got)
	}
	// Large noise: E|X−k| for X ~ N(k, σ) quantized ≈ σ·√(2/π).
	sigma := 5.0
	got := engine.ExpectedAbsError(100, sigma, 1, 100)
	want := sigma * math.Sqrt(2/math.Pi)
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("Gaussian mean abs = %g, want ≈%g", got, want)
	}
	// Clamping at zero: mean below range floor.
	got = engine.ExpectedAbsError(-3, 0.5, 1, 0)
	if got > 0.05 {
		t.Fatalf("clamped-to-zero error %g, want ≈0", got)
	}
}

func TestMCValidationMatchesAnalytic(t *testing.T) {
	m := testModel(t)
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}
	met, err := Evaluate(m, cfg, device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MCValidation(m, cfg, device.Nominal(), 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-met.EpsMul) > 0.35*met.EpsMul {
		t.Fatalf("MC ϵ̄ %g vs analytic %g disagree by >35%%", mc, met.EpsMul)
	}
}

func TestProfileByResult(t *testing.T) {
	m := testModel(t)
	prof, err := ProfileByResult(m, mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}, device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Expected) == 0 || len(prof.Expected) != len(prof.AvgError) || len(prof.Expected) != len(prof.SigmaLSB) {
		t.Fatal("profile slices inconsistent")
	}
	// Expected values are the distinct products of 4-bit operands.
	if prof.Expected[0] != 0 || prof.Expected[len(prof.Expected)-1] != 225 {
		t.Fatalf("expected range [%d, %d]", prof.Expected[0], prof.Expected[len(prof.Expected)-1])
	}
	// σ must grow with the expected result (deeper discharges).
	first, last := prof.SigmaLSB[1], prof.SigmaLSB[len(prof.SigmaLSB)-1]
	if last <= first {
		t.Fatalf("σ profile not increasing: %g → %g", first, last)
	}
}

func TestConditionSweeps(t *testing.T) {
	m := testModel(t)
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}
	eng := engine.New(engine.Behavioral{Model: m}, 0)
	vdd, err := SweepVDD(eng, cfg, []float64{0.9, 1.0, 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(vdd.X) != 3 {
		t.Fatal("VDD sweep size")
	}
	// Error at nominal must be the smallest (the trim is nominal-calibrated).
	if vdd.AvgError[1] > vdd.AvgError[0] || vdd.AvgError[1] > vdd.AvgError[2] {
		t.Fatalf("VDD sweep errors %v: nominal not minimal", vdd.AvgError)
	}
	tmp, err := SweepTemp(eng, cfg, []float64{0, 27, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(tmp.X) != 3 {
		t.Fatal("temperature sweep size")
	}
	for _, e := range tmp.AvgError {
		if e <= 0 || math.IsNaN(e) {
			t.Fatalf("temperature sweep error %g invalid", e)
		}
	}
	// The nominal-VDD corner is shared between the two sweeps: the engine
	// must have served one of the two from cache.
	if st := eng.Stats(); st.Hits < 1 || st.Misses != 5 {
		t.Fatalf("condition sweeps did not share the cache: %v", st)
	}
}

func TestGoldenCornerCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("golden-simulation bound")
	}
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}
	check, err := GoldenCornerCheck(core.QuickCalibration().Tech, cfg, spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(check.Corners) != 3 || len(check.AvgError) != 3 {
		t.Fatalf("corner check incomplete: %+v", check)
	}
	// TT (index 0) uses the matching trim: it must be the most accurate.
	if check.AvgError[0] > check.AvgError[1] || check.AvgError[0] > check.AvgError[2] {
		t.Errorf("TT error %.2f not the smallest: FF %.2f, SS %.2f",
			check.AvgError[0], check.AvgError[1], check.AvgError[2])
	}
	if check.Transients == 0 {
		t.Fatal("no transients counted")
	}
}

// TestGridValidate pins the empty-axis bugfix: a grid with any empty axis
// slice — or no physically valid combination at all — must be a
// descriptive error from Sweep/SweepWith, never a silently empty result.
func TestGridValidate(t *testing.T) {
	m := testModel(t)
	good := DefaultGrid()
	if err := good.Validate(); err != nil {
		t.Fatalf("default grid invalid: %v", err)
	}
	cases := []struct {
		name string
		grid Grid
	}{
		{"empty-tau0", Grid{VDAC0s: []float64{0.3}, VDACFSs: []float64{0.9}}},
		{"empty-vdac0", Grid{Tau0s: []float64{0.2e-9}, VDACFSs: []float64{0.9}}},
		{"empty-vdacfs", Grid{Tau0s: []float64{0.2e-9}, VDAC0s: []float64{0.3}}},
		{"all-empty", Grid{}},
		{"no-valid-corner", Grid{Tau0s: []float64{0.2e-9}, VDAC0s: []float64{0.9}, VDACFSs: []float64{0.7}}},
	}
	for _, tc := range cases {
		if err := tc.grid.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", tc.name)
		}
		if _, err := Sweep(m, tc.grid, 1); err == nil {
			t.Errorf("%s: Sweep returned no error for an unusable grid", tc.name)
		}
		if _, err := SweepWith(engine.New(engine.Behavioral{Model: m}, 1), tc.grid, device.Nominal()); err == nil {
			t.Errorf("%s: SweepWith returned no error for an unusable grid", tc.name)
		}
	}
}

// synthetic builds a metrics point for Pareto edge-case tests.
func synthetic(tau float64, eps, energy float64) Metrics {
	return Metrics{
		Config: mult.Config{Tau0: tau, VDAC0: 0.3, VDACFS: 1.0},
		EpsMul: eps, EMul: energy,
	}
}

// TestParetoFrontEdgeCases covers the degenerate inputs the sweep-backed
// property test cannot reach: duplicates, a single corner, and
// all-dominated ties.
func TestParetoFrontEdgeCases(t *testing.T) {
	// Single corner: the front is that corner.
	single := []Metrics{synthetic(1e-10, 2, 5)}
	if front := ParetoFront(single); !reflect.DeepEqual(front, single) {
		t.Fatalf("single-corner front = %v", front)
	}

	// Exact duplicates: neither dominates the other (dominance needs a
	// strict improvement), so both duplicates stay on the front.
	dup := []Metrics{
		synthetic(1e-10, 2, 5),
		synthetic(2e-10, 2, 5),
		synthetic(3e-10, 3, 6), // dominated by both duplicates
	}
	front := ParetoFront(dup)
	if len(front) != 2 {
		t.Fatalf("duplicate front has %d points, want both duplicates (2)", len(front))
	}
	for _, f := range front {
		if f.EpsMul != 2 || f.EMul != 5 {
			t.Fatalf("unexpected front member %+v", f)
		}
	}

	// All-dominated ties: corners tied in one metric but strictly worse in
	// the other are all dominated — the front collapses to the one optimum.
	ties := []Metrics{
		synthetic(1e-10, 1, 1),
		synthetic(2e-10, 1, 2), // ties eps, worse energy
		synthetic(3e-10, 2, 1), // ties energy, worse eps
		synthetic(4e-10, 2, 2), // worse in both
	}
	front = ParetoFront(ties)
	if len(front) != 1 || front[0].Config.Tau0 != 1e-10 {
		t.Fatalf("tie front = %+v, want only the (1,1) corner", front)
	}

	// Empty input: empty front, no panic.
	if front := ParetoFront(nil); len(front) != 0 {
		t.Fatalf("nil input produced front %v", front)
	}
}

// condBackend synthesizes condition-dependent metrics: eps grows with the
// configured per-corner excursion penalty, so robust reductions are
// verifiable in closed form. failVDD, when non-zero, errors at that supply.
type condBackend struct {
	failVDD float64
}

func (c *condBackend) Name() string { return "cond-fake" }

func (c *condBackend) Evaluate(cfg mult.Config, cond device.PVT) (engine.Metrics, error) {
	if c.failVDD != 0 && cond.VDD == c.failVDD {
		return engine.Metrics{}, fmt.Errorf("synthetic condition failure")
	}
	// Excursion severity: 0 at nominal, growing with |ΔVDD| and |ΔT|.
	excursion := math.Abs(cond.VDD-device.NominalVDD)*10 + math.Abs(cond.TempC-device.NominalTempC)/30
	return engine.Metrics{
		Config: cfg,
		Cond:   cond,
		EpsMul: cfg.Tau0*1e9 + cfg.VDAC0*excursion,
		EMul:   cfg.VDACFS*1e-15 + excursion*1e-16,
	}, nil
}

func robustTestSet(t *testing.T) engine.ConditionSet {
	t.Helper()
	set, err := engine.ParseConditionSet("TT@1V@27C,SS@0.9V@60C,FF@1.1V@0C")
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestRobustSweepReductions checks the cross-condition summary against the
// closed-form metrics of the synthetic backend: grid order, worst/mean/
// spread values, and the arg-worst conditions.
func TestRobustSweepReductions(t *testing.T) {
	grid := Grid{
		Tau0s:   []float64{0.16e-9, 0.24e-9},
		VDAC0s:  []float64{0.3, 0.5},
		VDACFSs: []float64{0.8, 1.0},
	}
	set := robustTestSet(t)
	eng := engine.New(&condBackend{}, 4)
	rms, err := RobustSweep(eng, grid, set)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := grid.Configs()
	if len(rms) != len(cfgs) {
		t.Fatalf("robust sweep returned %d summaries, want %d", len(rms), len(cfgs))
	}
	back := &condBackend{}
	for i, r := range rms {
		if r.Config != cfgs[i] {
			t.Fatalf("summary %d is %v, want grid order %v", i, r.Config, cfgs[i])
		}
		if len(r.PerCond) != set.Len() {
			t.Fatalf("summary %d has %d per-condition metrics, want %d", i, len(r.PerCond), set.Len())
		}
		var worst, minEps, sum float64
		worstCond := set.At(0)
		for j := 0; j < set.Len(); j++ {
			met, _ := back.Evaluate(r.Config, set.At(j))
			if r.PerCond[j] != met {
				t.Fatalf("summary %d condition %d metrics differ from the backend", i, j)
			}
			if j == 0 || met.EpsMul > worst {
				worst, worstCond = met.EpsMul, set.At(j)
			}
			if j == 0 || met.EpsMul < minEps {
				minEps = met.EpsMul
			}
			sum += met.EpsMul
		}
		if r.WorstEps != worst || r.WorstEpsCond != worstCond {
			t.Fatalf("summary %d worst eps %v at %v, want %v at %v",
				i, r.WorstEps, r.WorstEpsCond, worst, worstCond)
		}
		if math.Abs(r.MeanEps-sum/float64(set.Len())) > 1e-15 {
			t.Fatalf("summary %d mean eps %v, want %v", i, r.MeanEps, sum/float64(set.Len()))
		}
		if math.Abs(r.SpreadEps-(worst-minEps)) > 1e-15 {
			t.Fatalf("summary %d spread %v, want %v", i, r.SpreadEps, worst-minEps)
		}
		// The synthetic backend's worst excursion is SS@0.9V@60C for eps
		// (both VDD and temperature excursions add) — a sanity anchor that
		// the arg-worst is a real condition of the set.
		if set.Index(r.WorstEpsCond) < 0 || set.Index(r.WorstEMulCond) < 0 {
			t.Fatalf("summary %d arg-worst conditions not members of the set", i)
		}
		// Score projects the worst case onto the Pareto plane.
		s := r.Score()
		if s.EpsMul != r.WorstEps || s.EMul != r.WorstEMul || s.Config != r.Config || s.Cond != r.WorstEpsCond {
			t.Fatalf("summary %d Score() = %+v inconsistent", i, s)
		}
	}

	// Worker invariance of the whole robust sweep.
	again, err := RobustSweep(engine.New(&condBackend{}, 1), grid, set)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rms, again) {
		t.Fatal("robust sweep differs between workers=4 and workers=1")
	}
}

// TestConditionSweepErrorNamesFailingPoint pins the error-path fix: a
// failing excursion point must be named — the swept variable, the sweep's
// points, and (via the engine error) the exact failing condition.
func TestConditionSweepErrorNamesFailingPoint(t *testing.T) {
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}
	eng := engine.New(&condBackend{failVDD: 0.95}, 2)
	_, err := SweepVDD(eng, cfg, []float64{0.9, 0.95, 1.0})
	if err == nil {
		t.Fatal("failing supply point did not error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "VDD sweep") {
		t.Fatalf("error does not name the swept variable: %v", err)
	}
	if !strings.Contains(msg, "0.95") {
		t.Fatalf("error does not name the failing supply point: %v", err)
	}

	// Temperature sweeps at nominal supply avoid the failing VDD: no error.
	if _, err := SweepTemp(eng, cfg, []float64{0, 27, 60}); err != nil {
		t.Fatalf("temperature sweep at nominal supply failed: %v", err)
	}
	// An empty point list is an empty curve, not an error; a duplicated
	// point is a named error.
	empty, err := SweepVDD(eng, cfg, nil)
	if err != nil || len(empty.X) != 0 {
		t.Fatalf("empty sweep: %v, %d points", err, len(empty.X))
	}
	if _, err := SweepVDD(eng, cfg, []float64{1.0, 1.0}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicated sweep point: %v, want duplicate error", err)
	}
	// A failing temperature point is named too.
	tEng := engine.New(&condBackend{failVDD: device.NominalVDD}, 2)
	_, err = SweepTemp(tEng, cfg, []float64{0, 27, 60})
	if err == nil {
		t.Fatal("failing temperature sweep did not error")
	}
	if !strings.Contains(err.Error(), "temperature sweep") {
		t.Fatalf("error does not name the swept variable: %v", err)
	}
}

// TestRobustParetoFront: the worst-case front is non-dominated in
// (WorstEps, WorstEMul) and sorted by worst-case energy.
func TestRobustParetoFront(t *testing.T) {
	mk := func(tau, eps, e float64) RobustMetrics {
		return RobustMetrics{
			Config:    mult.Config{Tau0: tau, VDAC0: 0.3, VDACFS: 1.0},
			WorstEps:  eps,
			WorstEMul: e,
		}
	}
	rms := []RobustMetrics{
		mk(1e-10, 1, 3),
		mk(2e-10, 2, 2),
		mk(3e-10, 3, 1),
		mk(4e-10, 3, 3), // dominated
	}
	front := RobustParetoFront(rms)
	if len(front) != 3 {
		t.Fatalf("front has %d members, want 3", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i].WorstEMul < front[i-1].WorstEMul {
			t.Fatal("front not sorted by worst-case energy")
		}
	}
	for _, f := range front {
		if f.Config.Tau0 == 4e-10 {
			t.Fatal("dominated summary kept on the front")
		}
	}
	if got := RobustParetoFront(nil); len(got) != 0 {
		t.Fatalf("nil input produced front %v", got)
	}
}
