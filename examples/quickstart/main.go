// Quickstart: calibrate the OPTIMA behavioral models against the golden
// transistor-level simulator, then run one in-SRAM multiplication and print
// the analog trace — the shortest possible tour of the framework.
package main

import (
	"fmt"
	"log"
	"time"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/mult"
	"optima/internal/stats"
)

func main() {
	// 1. Calibrate: golden sweeps + least-squares fits (Eq. 3–8).
	// QuickCalibration keeps this under a second; DefaultCalibration is the
	// full recipe used for the paper artifacts.
	start := time.Now()
	model, err := core.Calibrate(core.QuickCalibration())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated in %v\n", time.Since(start))
	fmt.Printf("fit report: %v\n\n", model.Report)

	// 2. Build a multiplier at the paper's fom corner:
	// τ0 = 0.16 ns, V_DAC,0 = 0.3 V, V_DAC,FS = 1.0 V.
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}
	m, err := mult.NewBehavioral(model, cfg, device.Nominal())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiplier at %v\n", cfg)
	fmt.Printf("ADC trim: LSB = %.3f mV, offset = %.3f mV\n\n", m.LSBVolt*1e3, m.OffsetVolt*1e3)

	// 3. Multiply 11 × 13 deterministically and with mismatch sampling.
	a, d := uint(11), uint(13)
	det, err := m.Multiply(a, d, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic: %d × %d → code %d (expected %d, error %+d LSB)\n",
		a, d, det.Code, det.Expected, det.ErrorLSB())
	fmt.Printf("  combined discharge %.2f mV, energy %.1f fJ\n",
		det.VComb*1e3, det.Energy*1e15)
	for i, dv := range det.DeltaV {
		fmt.Printf("  bit line %d (t = %v ps): ΔV = %6.2f mV\n",
			i, cfg.BitTime(i)*1e12, dv*1e3)
	}

	rng := stats.NewRNG(42)
	fmt.Println("\nwith per-operation mismatch (paper's Monte-Carlo procedure):")
	for s := 0; s < 5; s++ {
		r, err := m.Multiply(a, d, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sample %d: code %d (error %+d LSB)\n", s, r.Code, r.ErrorLSB())
	}

	// 4. The full-operation energy budget (the paper's 1.05 pJ claim).
	fmt.Printf("\nword write: %.2f pJ, multiplication: %.1f fJ → %.2f pJ per op\n",
		m.WriteEnergy()*1e12, det.Energy*1e15,
		(m.WriteEnergy()+det.Energy)*1e12)
}
