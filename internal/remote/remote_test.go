package remote

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/mult"
	"optima/internal/obs"
)

// fakeBackend is a deterministic stand-in for the behavioral backend: the
// metrics are a pure function of (config, condition), so a distributed run
// must reproduce a local run bit for bit. gate, when non-nil, blocks every
// evaluation until the channel closes — the handle the worker-failure test
// uses to keep cells in flight while it kills their owner.
type fakeBackend struct {
	name  string
	gate  chan struct{}
	evals atomic.Uint64
}

func (b *fakeBackend) Name() string { return b.name }

func (b *fakeBackend) Evaluate(cfg mult.Config, cond device.PVT) (engine.Metrics, error) {
	b.evals.Add(1)
	if b.gate != nil {
		<-b.gate
	}
	return fakeMetrics(cfg, cond), nil
}

// fakeMetrics derives every metric word from the inputs, with enough
// structure that a swapped cell or a lost sign bit changes some field.
func fakeMetrics(cfg mult.Config, cond device.PVT) engine.Metrics {
	return engine.Metrics{
		Config:       cfg,
		Cond:         cond,
		EpsMul:       cfg.Tau0*1e9 + cond.VDD/3,
		EpsLarge:     cfg.VDAC0 * cond.TempC,
		EpsSmall:     cfg.VDACFS - cond.VDD,
		EMul:         (float64(cond.Corner) + 1) * 21e-15,
		SigmaMaxLSB:  cfg.Tau0 * 1e9 * 0.25,
		SigmaMaxVolt: cond.VDD * 5.04e-3,
		LSBVolt:      cfg.VDACFS / 255,
	}
}

// testJobs builds an n-config × 3-condition cell plane.
func testJobs(n int) []engine.Job {
	conds, err := engine.ParseConditionSet("TT@1.0V@27C,SS@0.90V@60C,FF@1.10V@0C")
	if err != nil {
		panic(err)
	}
	cfgs := make([]mult.Config, n)
	for i := range cfgs {
		cfgs[i] = mult.Config{
			Tau0:   (0.16 + 0.01*float64(i)) * 1e-9,
			VDAC0:  0.3 + 0.001*float64(i%7),
			VDACFS: 1.0 - 0.002*float64(i%5),
		}
	}
	return engine.MatrixJobs(cfgs, conds)
}

const testFP = "test-fingerprint-v1"

// startFleet returns a coordinator listening on an ephemeral port, closed
// with the test.
func startFleet(t testing.TB, rec *obs.Recorder) *Fleet {
	t.Helper()
	f, err := Listen("127.0.0.1:0", Options{Fingerprint: testFP, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// startWorker dials an in-process worker evaluating on backend, closed with
// the test.
func startWorker(t testing.TB, f *Fleet, backend engine.Backend, capacity int) *Worker {
	t.Helper()
	w, err := Dial(f.Addr(), WorkerOptions{
		Fingerprint: testFP,
		Backends: func(name string) (engine.Backend, error) {
			if name != backend.Name() {
				return nil, fmt.Errorf("unknown backend %q", name)
			}
			return backend, nil
		},
		Workers: capacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	waitFor(t, time.Second, func() bool { return f.WorkerCount() >= 1 })
	return w
}

func waitFor(t testing.TB, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricsEqual compares two result sets for exact equality (== on the flat
// value structs compares every float bit-for-bit except -0 vs 0 and NaN;
// the wire codec's bit-exactness is covered by the wire tests).
func metricsEqual(t *testing.T, got, want []engine.Metrics) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestByteIdentityAcrossWorkerCounts pins the acceptance criterion: the
// same batch through 0, 2 and 4 workers, at different engine budgets, is
// byte-identical to a purely local run.
func TestByteIdentityAcrossWorkerCounts(t *testing.T) {
	leakCheck(t)
	jobs := testJobs(8)
	ref, err := engine.New(&fakeBackend{name: "behavioral"}, 4).EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 2, 4} {
		for _, budget := range []int{1, 3} {
			t.Run(fmt.Sprintf("workers=%d budget=%d", workers, budget), func(t *testing.T) {
				fleet := startFleet(t, nil)
				for i := 0; i < workers; i++ {
					startWorker(t, fleet, &fakeBackend{name: "behavioral"}, 2)
				}
				waitFor(t, time.Second, func() bool { return fleet.WorkerCount() == workers })
				eng := engine.New(fleet.Backend(&fakeBackend{name: "behavioral"}), budget)
				got, err := eng.EvaluateBatch(jobs)
				if err != nil {
					t.Fatal(err)
				}
				metricsEqual(t, got, ref)
				st := fleet.Stats()
				if workers == 0 {
					if st.CellsShipped != 0 || st.LocalFallbacks != uint64(len(jobs)) {
						t.Fatalf("zero-worker fleet: %v, want %d local fallbacks and 0 shipped", st, len(jobs))
					}
				} else {
					if st.CellsShipped == 0 || st.Results == 0 {
						t.Fatalf("fleet with %d workers shipped nothing: %v", workers, st)
					}
					if st.LocalFallbacks != 0 {
						t.Fatalf("unexpected local fallbacks: %v", st)
					}
				}
				if eng.Stats().Misses != uint64(len(jobs)) {
					t.Fatalf("engine misses %d, want %d (each cell evaluated exactly once)",
						eng.Stats().Misses, len(jobs))
				}
			})
		}
	}
}

// TestZeroWorkersDegradesGracefully: no workers is a logged degradation
// with correct results, not an error — and the obs counter records it.
func TestZeroWorkersDegradesGracefully(t *testing.T) {
	leakCheck(t)
	rec := obs.NewRecorder(obs.RecorderOptions{})
	fleet := startFleet(t, rec)
	jobs := testJobs(2)
	eng := engine.New(fleet.Backend(&fakeBackend{name: "behavioral"}), 2)
	got, err := eng.EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]engine.Metrics, len(jobs))
	for i, j := range jobs {
		want[i] = fakeMetrics(j.Config, j.Cond)
	}
	metricsEqual(t, got, want)
	found := false
	for _, s := range rec.Metrics().Samples() {
		if s.Name == "optima_remote_local_fallbacks_total" && s.Value == float64(len(jobs)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("optima_remote_local_fallbacks_total not %d in %v", len(jobs), rec.Metrics().Samples())
	}
}

// TestFingerprintMismatchRejected: a worker calibrated differently must be
// refused in the handshake with a typed error, and never join the fleet.
func TestFingerprintMismatchRejected(t *testing.T) {
	leakCheck(t)
	fleet := startFleet(t, nil)
	_, err := Dial(fleet.Addr(), WorkerOptions{
		Fingerprint: "some-other-calibration",
		Backends: func(string) (engine.Backend, error) {
			return &fakeBackend{name: "behavioral"}, nil
		},
	})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("mismatched worker got %v, want ErrRejected", err)
	}
	waitFor(t, time.Second, func() bool { return fleet.Stats().Rejected == 1 })
	if n := fleet.WorkerCount(); n != 0 {
		t.Fatalf("rejected worker joined the fleet (%d workers)", n)
	}
}

// memStore is a map-backed engine.Store for the warm-rerun test.
type memStore struct {
	mu sync.Mutex
	m  map[engine.Key]engine.Metrics
}

func newMemStore() *memStore { return &memStore{m: map[engine.Key]engine.Metrics{}} }

func (s *memStore) Get(k engine.Key) (engine.Metrics, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	met, ok := s.m[k]
	return met, ok
}

func (s *memStore) PutBatch(entries []engine.CacheEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		s.m[e.Key] = e.Met
	}
	return nil
}

// TestWarmStoreShipsNothing pins the warm-rerun acceptance criterion: a
// second run over a shared store performs zero remote shipments — the
// store tier resolves every cell before the batch backend is consulted.
func TestWarmStoreShipsNothing(t *testing.T) {
	leakCheck(t)
	fleet := startFleet(t, nil)
	startWorker(t, fleet, &fakeBackend{name: "behavioral"}, 2)
	startWorker(t, fleet, &fakeBackend{name: "behavioral"}, 2)
	waitFor(t, time.Second, func() bool { return fleet.WorkerCount() == 2 })

	jobs := testJobs(6)
	store := newMemStore()

	cold := engine.New(fleet.Backend(&fakeBackend{name: "behavioral"}), 2).WithStore(store)
	coldRes, err := cold.EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	shippedCold := fleet.Stats().CellsShipped
	if shippedCold == 0 {
		t.Fatalf("cold run shipped nothing: %v", fleet.Stats())
	}

	// Fresh engine (empty memory cache), same store: everything must come
	// from the store tier, nothing from the wire.
	warm := engine.New(fleet.Backend(&fakeBackend{name: "behavioral"}), 2).WithStore(store)
	warmRes, err := warm.EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	metricsEqual(t, warmRes, coldRes)
	if shipped := fleet.Stats().CellsShipped; shipped != shippedCold {
		t.Fatalf("warm rerun shipped %d cells, want 0", shipped-shippedCold)
	}
	if st := warm.Stats(); st.DiskHits != uint64(len(jobs)) || st.Misses != 0 {
		t.Fatalf("warm engine stats %+v, want %d store hits and 0 evaluations", st, len(jobs))
	}
}

// TestWorkerFailureMidBatch kills a worker while its cells are in flight:
// the coordinator must reassign them to the survivor exactly once, the
// engine must count each cell as exactly one miss, and the final results
// must be byte-identical to an undisturbed run.
func TestWorkerFailureMidBatch(t *testing.T) {
	leakCheck(t)
	jobs := testJobs(8)
	ref, err := engine.New(&fakeBackend{name: "behavioral"}, 4).EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}

	fleet := startFleet(t, nil)
	// Worker 1 (first to join, so it owns the low hash ranges) blocks every
	// evaluation on the gate; worker 2 evaluates normally.
	gate := make(chan struct{})
	blocked := &fakeBackend{name: "behavioral", gate: gate}
	defer close(gate) // unblock the stranded evaluation goroutines at exit
	w1 := startWorker(t, fleet, blocked, 2)
	startWorker(t, fleet, &fakeBackend{name: "behavioral"}, 2)
	waitFor(t, time.Second, func() bool { return fleet.WorkerCount() == 2 })

	// Worker 1's share of the plane, by the same key-range split the
	// coordinator uses (join order: worker 1 is index 0 of 2).
	w1Cells := 0
	for _, j := range jobs {
		if shardIndex(engine.Key{Backend: "behavioral", Job: j}.Hash(), 2) == 0 {
			w1Cells++
		}
	}
	if w1Cells == 0 {
		t.Fatal("test plane gives worker 1 no cells; grow the job set")
	}

	eng := engine.New(fleet.Backend(&fakeBackend{name: "behavioral"}), 2)
	type batchResult struct {
		mets []engine.Metrics
		err  error
	}
	resc := make(chan batchResult, 1)
	go func() {
		mets, err := eng.EvaluateBatch(jobs)
		resc <- batchResult{mets, err}
	}()

	// Wait until worker 1 has actually started evaluating (its cells are in
	// flight), then kill it mid-batch.
	waitFor(t, 5*time.Second, func() bool { return blocked.evals.Load() > 0 })
	w1.Close()

	res := <-resc
	if res.err != nil {
		t.Fatal(res.err)
	}
	metricsEqual(t, res.mets, ref)

	st := fleet.Stats()
	// Every worker-1 cell was either reassigned at death or stolen by the
	// idle survivor just before it — and each exactly once, never both
	// (a stolen cell keeps a live owner, so reassignment skips it).
	if st.Reassignments+st.Retries != uint64(w1Cells) {
		t.Fatalf("reassigned %d + stolen %d, want exactly %d (worker 1's share): %v",
			st.Reassignments, st.Retries, w1Cells, st)
	}
	if st.Reassignments == 0 && st.Retries == 0 {
		t.Fatalf("worker death went unnoticed: %v", st)
	}
	if eng.Stats().Misses != uint64(len(jobs)) {
		t.Fatalf("engine misses %d, want %d — a reassigned cell double-counted", eng.Stats().Misses, len(jobs))
	}
	waitFor(t, time.Second, func() bool { return fleet.WorkerCount() == 1 })
}

// TestAllWorkersLostMidBatch: losing the whole fleet mid-batch degrades to
// local evaluation, still byte-identical.
func TestAllWorkersLostMidBatch(t *testing.T) {
	leakCheck(t)
	jobs := testJobs(6)
	ref, err := engine.New(&fakeBackend{name: "behavioral"}, 4).EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}

	fleet := startFleet(t, nil)
	gate := make(chan struct{})
	blocked := &fakeBackend{name: "behavioral", gate: gate}
	defer close(gate)
	w1 := startWorker(t, fleet, blocked, 2)

	eng := engine.New(fleet.Backend(&fakeBackend{name: "behavioral"}), 2)
	resc := make(chan []engine.Metrics, 1)
	errc := make(chan error, 1)
	go func() {
		mets, err := eng.EvaluateBatch(jobs)
		if err != nil {
			errc <- err
			return
		}
		resc <- mets
	}()
	waitFor(t, 5*time.Second, func() bool { return blocked.evals.Load() > 0 })
	w1.Close()

	select {
	case err := <-errc:
		t.Fatal(err)
	case mets := <-resc:
		metricsEqual(t, mets, ref)
	case <-time.After(30 * time.Second):
		t.Fatal("batch did not complete after losing the only worker")
	}
	st := fleet.Stats()
	if st.LocalFallbacks != uint64(len(jobs)) {
		t.Fatalf("local fallbacks %d, want %d (the whole batch): %v", st.LocalFallbacks, len(jobs), st)
	}
}

// TestProxySingleEvaluate: the plain Backend surface (Evaluate /
// EvaluateBudget) distributes too — search promotion and one-off PVT
// checks go through it.
func TestProxySingleEvaluate(t *testing.T) {
	leakCheck(t)
	fleet := startFleet(t, nil)
	startWorker(t, fleet, &fakeBackend{name: "behavioral"}, 2)
	cfg := mult.Config{Tau0: 0.2e-9, VDAC0: 0.31, VDACFS: 0.98}
	cond := device.Nominal()
	met, err := fleet.Backend(&fakeBackend{name: "behavioral"}).Evaluate(cfg, cond)
	if err != nil {
		t.Fatal(err)
	}
	if want := fakeMetrics(cfg, cond); met != want {
		t.Fatalf("single evaluate: got %+v, want %+v", met, want)
	}
	if fleet.Stats().CellsShipped != 1 {
		t.Fatalf("single evaluate shipped %d cells, want 1", fleet.Stats().CellsShipped)
	}
}
