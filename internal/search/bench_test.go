package search_test

import (
	"context"
	"runtime"
	"testing"

	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/search"
)

// BenchmarkSearchAdaptive tracks the adaptive explorer end to end on the
// 1200-corner acceptance space: a cold behavioral screen plus halving and
// selection overhead. It rides in CI's BENCH_engine.json next to the sweep
// benchmarks, so the bench-regression gate covers the search hot path too.
func BenchmarkSearchAdaptive(b *testing.B) {
	m := testModel(b)
	sp := search.FromGrid(dse.DefaultGrid())
	sp.Tau0 = sp.Tau0.Subdivided(32)

	b.Run("cold/1200-corners", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := search.Run(context.Background(), search.Options{
				Space:  sp,
				Screen: engine.New(engine.Behavioral{Model: m}, runtime.NumCPU()),
				Rungs:  2,
				Seed:   1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Front) == 0 {
				b.Fatal("empty front")
			}
		}
	})
	b.Run("cached/1200-corners", func(b *testing.B) {
		eng := engine.New(engine.Behavioral{Model: m}, runtime.NumCPU())
		opts := search.Options{Space: sp, Screen: eng, Rungs: 2, Seed: 1}
		if _, err := search.Run(context.Background(), opts); err != nil {
			b.Fatal(err) // warm the cache outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := search.Run(context.Background(), opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
