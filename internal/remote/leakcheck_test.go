package remote

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// goroutineStacks returns the current all-goroutine dump, one block per
// goroutine.
func goroutineStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return strings.Split(strings.TrimSpace(string(buf[:n])), "\n\n")
		}
		buf = make([]byte, 2*len(buf))
	}
}

// goroutineID extracts the "goroutine N" prefix of one dump block. IDs are
// never reused within a process, so a block whose ID was not present before
// the test is a goroutine the test started.
func goroutineID(block string) string {
	if i := strings.Index(block, " ["); i > 0 {
		return block[:i]
	}
	return block
}

// leakCheck fails the test if goroutines it started outlive it: the accept
// loop, per-worker readers on both sides, and in-flight evaluation
// goroutines must all terminate with their owners. Teardown is
// asynchronous (readers notice a close on their next read), so the check
// retries for up to two seconds before dumping the survivors.
func leakCheck(t *testing.T) {
	t.Helper()
	before := map[string]bool{}
	for _, b := range goroutineStacks() {
		before[goroutineID(b)] = true
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			var leaked []string
			for _, b := range goroutineStacks() {
				if !before[goroutineID(b)] {
					leaked = append(leaked, b)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("%d goroutine(s) leaked by this test:\n\n%s",
					len(leaked), strings.Join(leaked, "\n\n"))
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	})
}
