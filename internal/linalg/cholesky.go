package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of the symmetric
// positive-definite matrix a. Only the lower triangle of a is read.
// It returns ErrSingular if a is not positive definite to working precision.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("linalg: Cholesky of %d×%d: %w", a.Rows(), a.Cols(), ErrShape)
	}
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("linalg: non-positive pivot %g at %d: %w", d, j, ErrSingular)
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// Solve solves A·x = b given the factorization A = L·Lᵀ.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Cholesky solve rhs length %d, want %d: %w", len(b), n, ErrShape)
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// SolveSPD solves the symmetric positive-definite system a·x = b.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorCholesky(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// NormalEquations assembles AᵀA and Aᵀb for the least-squares system, which
// is occasionally preferable to QR for very tall, well-conditioned design
// matrices (single pass, small memory).
func NormalEquations(a *Matrix, b []float64) (*Matrix, []float64, error) {
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, nil, fmt.Errorf("linalg: normal equations rhs length %d, want %d: %w", len(b), m, ErrShape)
	}
	ata := NewMatrix(n, n)
	atb := make([]float64, n)
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			row[j] = a.At(i, j)
		}
		for j := 0; j < n; j++ {
			if row[j] == 0 {
				continue
			}
			for k := j; k < n; k++ {
				ata.Add(j, k, row[j]*row[k])
			}
			atb[j] += row[j] * b[i]
		}
	}
	// Mirror the upper triangle into the lower.
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			ata.Set(k, j, ata.At(j, k))
		}
	}
	return ata, atb, nil
}
