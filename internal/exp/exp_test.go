package exp

import (
	"strings"
	"sync"
	"testing"

	"optima/internal/core"
	"optima/internal/dataset"
	"optima/internal/device"
	"optima/internal/dnn"
	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/mult"
	"optima/internal/refdata"
)

var (
	fixtureOnce sync.Once
	fixtureCtx  *Context
	fixtureErr  error
)

func testContext(t *testing.T) *Context {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureCtx, fixtureErr = NewContext(core.QuickCalibration())
	})
	if fixtureErr != nil {
		t.Fatalf("context fixture: %v", fixtureErr)
	}
	return fixtureCtx
}

func TestFig1Artifacts(t *testing.T) {
	tbl, chart := Fig1()
	if tbl.NumRows() != 4 {
		t.Fatalf("Fig. 1 table has %d rows", tbl.NumRows())
	}
	if len(chart.Series) != 4 {
		t.Fatalf("Fig. 1 chart has %d series", len(chart.Series))
	}
	if !strings.Contains(tbl.String(), "IMAC") {
		t.Fatal("Fig. 1 table missing IMAC")
	}
}

func TestFig4Shapes(t *testing.T) {
	ctx := testContext(t)
	data, err := ctx.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(data.TimeChart.Series) != 5 {
		t.Fatalf("Fig. 4a has %d series", len(data.TimeChart.Series))
	}
	if len(data.VWLChart.Series) != 1 || len(data.VWLChart.Series[0].X) != 25 {
		t.Fatal("Fig. 4b series malformed")
	}
	// The V_WL curve must be monotone decreasing (more drive, deeper
	// discharge at the sampling instant).
	ys := data.VWLChart.Series[0].Y
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]+1e-9 {
			t.Fatal("Fig. 4b curve not monotone")
		}
	}
}

func TestFig5SmallPopulation(t *testing.T) {
	ctx := testContext(t)
	data, err := ctx.Fig5(20)
	if err != nil {
		t.Fatal(err)
	}
	for _, chart := range []*struct {
		name string
		c    interface{ seriesCount() int }
	}{} {
		_ = chart
	}
	if len(data.SupplyChart.Series) != 3 || len(data.TempChart.Series) != 3 || len(data.CornerChart.Series) != 3 {
		t.Fatal("Fig. 5a–c series counts wrong")
	}
	if len(data.MismatchChart.Series) == 0 {
		t.Fatal("Fig. 5d has no trajectories")
	}
	if data.MismatchSpreadMV <= 0 {
		t.Fatal("mismatch band not measured")
	}
}

func TestFig6Artifacts(t *testing.T) {
	ctx := testContext(t)
	data, err := ctx.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if data.RMSTable.NumRows() != 6 {
		t.Fatalf("RMS table has %d rows, want 6", data.RMSTable.NumRows())
	}
	if len(data.EnergyChart.Series) != 2 {
		t.Fatal("Fig. 6d must compare model and golden")
	}
}

func TestFig7PanelsAndSelectionCaching(t *testing.T) {
	ctx := testContext(t)
	data, err := ctx.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Metrics) != 48 || data.CornersTable.NumRows() != 48 {
		t.Fatal("sweep incomplete")
	}
	if len(data.LeftError.Series) != 3 || len(data.RightError.Series) != 4 {
		t.Fatal("Fig. 7 series counts wrong")
	}
	// Selection must reuse the cached sweep (same slice).
	selA, err := ctx.Selection()
	if err != nil {
		t.Fatal(err)
	}
	selB, err := ctx.Selection()
	if err != nil {
		t.Fatal(err)
	}
	if selA.FOM.Config != selB.FOM.Config {
		t.Fatal("selection not stable")
	}
}

func TestTable1PaperRows(t *testing.T) {
	ctx := testContext(t)
	data, err := ctx.Table1()
	if err != nil {
		t.Fatal(err)
	}
	s := data.Table.String()
	for _, needle := range []string{"fom (paper)", "fom (measured)", "power (paper)", "variation (measured)"} {
		if !strings.Contains(s, needle) {
			t.Fatalf("Table I missing row %q:\n%s", needle, s)
		}
	}
	if data.EnergyPerOpPJ <= 0 || data.WorstSigmaMV <= 0 {
		t.Fatal("headline metrics not populated")
	}
}

func TestFig8Artifacts(t *testing.T) {
	ctx := testContext(t)
	data, err := ctx.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for name, chart := range map[string]int{
		"error-by-result": len(data.ErrorByResult.Series),
		"sigma-by-result": len(data.SigmaByResult.Series),
		"error-vs-vdd":    len(data.ErrorVsVDD.Series),
		"error-vs-temp":   len(data.ErrorVsTemp.Series),
	} {
		if chart != 3 {
			t.Fatalf("%s has %d series, want 3 corners", name, chart)
		}
	}
}

func TestSpeedupTableRendering(t *testing.T) {
	is := SpeedupResult{Name: "input-space iteration", BehavioralTime: 1e6, GoldenTime: 100e6, Operations: 256}
	mc := SpeedupResult{Name: "mismatch Monte Carlo", BehavioralTime: 1e6, GoldenTime: 30e6}
	tbl := SpeedupTable(is, mc)
	s := tbl.String()
	if !strings.Contains(s, "100.0×") || !strings.Contains(s, "30.0×") {
		t.Fatalf("speed-up table wrong:\n%s", s)
	}
	if (SpeedupResult{}).Speedup() != 0 {
		t.Fatal("zero-duration speed-up must be 0")
	}
}

func TestDNNScaleHelpers(t *testing.T) {
	full := FullDNNScale()
	if len(full.Models) != 4 {
		t.Fatal("full protocol must cover all four networks")
	}
	bench := BenchDNNScale()
	if len(bench.Models) >= len(full.Models) || bench.VGGEpochs >= full.VGGEpochs {
		t.Fatal("bench scale is not reduced")
	}
	for _, m := range []string{"VGG16S", "VGG19S", "ResNet50S", "ResNet101S"} {
		if got := paperModelName(m); strings.HasSuffix(got, "S") {
			t.Fatalf("paper name for %s is %s", m, got)
		}
	}
	if paperModelName("custom") != "custom" {
		t.Fatal("unknown models must pass through")
	}
}

func TestCapDataset(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{Name: "t", Classes: 2, TrainPerCls: 4, TestPerCls: 10, Noise: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	capDataset(ds, 6)
	if ds.Test.N != 6 || len(ds.TestY) != 6 {
		t.Fatalf("cap failed: %d samples, %d labels", ds.Test.N, len(ds.TestY))
	}
	capDataset(ds, 0) // no-op
	if ds.Test.N != 6 {
		t.Fatal("cap 0 must be a no-op")
	}
}

func TestRunDNNMinimal(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a network")
	}
	ctx := testContext(t)
	scale := DNNScale{
		Models:    []string{"VGG16S"},
		VGGEpochs: 1, ResNetEpochs: 1, TransferEpochs: 1, QATEpochs: 1,
		TestCap: 40, Seed: 5,
	}
	data, err := ctx.RunDNN(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.ImageNet) != 1 || len(data.CIFAR) != 1 {
		t.Fatal("row counts wrong")
	}
	row := data.ImageNet[0]
	if row.MultsMillions <= 0 {
		t.Fatal("missing MAC count")
	}
	for _, acc := range [][2]float64{row.Float32, row.Int4, row.Fom, row.Power, row.Variation} {
		if acc[0] < 0 || acc[0] > 100 || acc[1] < acc[0] {
			t.Fatalf("implausible accuracy pair %v", acc)
		}
	}
	if !strings.Contains(data.Table2.String(), "VGG16 (paper)") {
		t.Fatal("Table II missing paper rows")
	}
}

func TestSpeedupExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs golden transients")
	}
	ctx := testContext(t)
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 0.7}
	is, err := ctx.SpeedupInputSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if is.Speedup() <= 1 {
		t.Fatalf("behavioral slower than golden: %.2f×", is.Speedup())
	}
	if is.GoldenTransients == 0 {
		t.Fatal("golden transients not counted")
	}
	mc, err := ctx.SpeedupMonteCarlo(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Speedup() <= 1 {
		t.Fatalf("MC behavioral slower than golden: %.2f×", mc.Speedup())
	}
}

func TestContextWithModel(t *testing.T) {
	ctx := testContext(t)
	wrapped := NewContextWithModel(ctx.Model, ctx.Tech)
	if wrapped.Model != ctx.Model {
		t.Fatal("model not wrapped")
	}
	if _, err := wrapped.Sweep(); err != nil {
		t.Fatal(err)
	}
	_ = refdata.Table1()
	_ = dnn.ZooModels()
}

// TestContextSharesEngineAcrossExperiments checks the session-level cache:
// Fig. 8's per-corner condition sweeps revisit the nominal condition of
// corners the 48-corner sweep already scored, and a re-run of the sweep is
// served entirely from cache.
func TestContextSharesEngineAcrossExperiments(t *testing.T) {
	ctx := NewContextWithModel(testContext(t).Model, testContext(t).Tech)
	if _, err := ctx.Sweep(); err != nil {
		t.Fatal(err)
	}
	st := ctx.Engine().Stats()
	if st.Misses != 48 || st.Entries != 48 {
		t.Fatalf("48-corner sweep stats %v", st)
	}
	if _, err := ctx.Fig8(); err != nil {
		t.Fatal(err)
	}
	st = ctx.Engine().Stats()
	// Each of the three selected corners sweeps 9 VDD + 7 temperature
	// points; the VDD=1.0 V point of each corner is the nominal PVT the
	// 48-corner sweep already scored (the temperature grid skips 27 °C).
	if st.Hits < 3 {
		t.Fatalf("Fig. 8 did not reuse sweep results: %v", st)
	}
	before := st
	if _, err := dse.SweepWith(ctx.Engine(), dse.DefaultGrid(), device.Nominal()); err != nil {
		t.Fatal(err)
	}
	st = ctx.Engine().Stats()
	if st.Misses != before.Misses || st.Hits != before.Hits+48 {
		t.Fatalf("cached re-sweep evaluated corners: before %v, after %v", before, st)
	}
}

// TestEngineFor pins the multi-fidelity engine wiring the adaptive search
// depends on: the session engine is reused for the configured backend,
// other backends get one cached engine each sharing the session store.
func TestEngineFor(t *testing.T) {
	ctx := NewContextWithModel(testContext(t).Model, testContext(t).Tech)
	ctx.CacheDir = t.TempDir()

	behav, err := ctx.EngineFor(engine.BackendBehavioral)
	if err != nil {
		t.Fatal(err)
	}
	if behav != ctx.Engine() {
		t.Fatal("behavioral EngineFor must reuse the session engine")
	}
	if def, err := ctx.EngineFor(""); err != nil || def != behav {
		t.Fatalf("empty name = %v, %v; want the behavioral session engine", def, err)
	}

	golden, err := ctx.EngineFor(engine.BackendGolden)
	if err != nil {
		t.Fatal(err)
	}
	if golden == behav {
		t.Fatal("golden EngineFor returned the behavioral engine")
	}
	if golden.Backend().Name() != engine.BackendGolden {
		t.Fatalf("golden engine runs backend %q", golden.Backend().Name())
	}
	again, err := ctx.EngineFor(engine.BackendGolden)
	if err != nil || again != golden {
		t.Fatalf("EngineFor must cache per backend (got %v, %v)", again, err)
	}
	if _, err := ctx.EngineFor("bogus"); err == nil {
		t.Fatal("unknown backend accepted")
	}

	// Both engines persist into the session store: evaluate one corner on
	// each and check the store holds results under both backend names.
	cfg := mult.Config{Tau0: 0.2e-9, VDAC0: 0.3, VDACFS: 1.0}
	if _, err := behav.Evaluate(cfg, device.Nominal()); err != nil {
		t.Fatal(err)
	}
	if _, err := golden.Evaluate(cfg, device.Nominal()); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}
	st := ctx.Store()
	if st == nil {
		t.Fatal("no store despite CacheDir")
	}
	if got := st.Len(); got != 2 {
		t.Fatalf("store holds %d results, want one per fidelity (2)", got)
	}
}
