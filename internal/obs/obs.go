package obs

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Span categories used by the instrumented layers. The category names the
// layer, the span name the operation; Chrome trace viewers group and color
// by category.
const (
	// CatBatch covers one engine batched submission end to end.
	CatBatch = "batch"
	// CatEval covers one backend evaluation of a (config, condition) job.
	CatEval = "eval"
	// CatPhase covers one internal phase of a golden evaluation (the
	// input-space fan-out, the Monte-Carlo sigma pass).
	CatPhase = "phase"
	// CatTrim covers golden ADC trim calibration (and its per-code
	// transients).
	CatTrim = "trim"
	// CatStore covers persistent-store work: open, migration, compaction,
	// lookups and batched appends.
	CatStore = "store"
	// CatSearch covers one adaptive search run.
	CatSearch = "search"
	// CatRung covers one search rung (screening or promotion).
	CatRung = "rung"
	// CatJob covers one server job from running to terminal state.
	CatJob = "job"
	// CatRemote covers distributed-evaluation work: one coordinator
	// dispatch, the per-worker batch shipments under it, and the
	// worker-reported remote evaluations (internal/remote).
	CatRemote = "remote"
)

// SpanID identifies one span within a Recorder. 0 is "no span" — the
// parent of a root span, and the ID returned by a nil or zero Timer.
type SpanID uint64

// Span is one completed timed operation. Start is measured on the
// recorder's clock (monotonic since the recorder's epoch by default);
// completed spans are held in a fixed-capacity ring, oldest overwritten
// first.
type Span struct {
	ID     SpanID
	Parent SpanID
	// Cat is the span's category (CatEval, CatStore, ...), Name the
	// operation, Arg an optional human-readable argument (the corner, the
	// key count).
	Cat, Name, Arg string
	Start          time.Duration
	Dur            time.Duration
}

// End returns the span's end time on the recorder's clock.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// DefaultCapacity is the span ring's default size. At ~100 bytes per span
// the default ring holds the full trace of a 48-corner sweep many times
// over in ~1.6 MiB; overflow drops the oldest spans and counts them
// (Recorder.Dropped), it never blocks or reallocates.
const DefaultCapacity = 16384

// RecorderOptions configures NewRecorder. The zero value is a working
// default: DefaultCapacity spans, a monotonic clock, no slow-eval warning.
type RecorderOptions struct {
	// Capacity is the span ring's size (<= 0 = DefaultCapacity).
	Capacity int
	// Clock returns the current time on the recorder's timeline. Nil means
	// the monotonic wall clock relative to the recorder's creation —
	// legitimate here because obs is the one layer that owns time; the
	// instrumented deterministic packages only ever see durations through
	// spans and metrics. Tests inject a fake clock for exact timings.
	Clock func() time.Duration
	// SlowEval, when > 0, logs a warning through Logger whenever a CatEval
	// span's duration reaches it — the "one corner is pathologically slow"
	// signal a progress bar hides.
	SlowEval time.Duration
	// Logger receives the slow-eval warnings (nil = slog.Default()). Only
	// consulted when SlowEval > 0.
	Logger *slog.Logger
}

// Recorder collects spans into a fixed ring and owns the run's metrics
// Registry. All methods are safe for concurrent use and are no-ops on a
// nil receiver, so instrumented code never branches on "is telemetry on".
type Recorder struct {
	clock    func() time.Duration
	slowEval time.Duration
	logger   *slog.Logger
	reg      *Registry
	drops    *Counter

	nextID  atomic.Uint64
	dropped atomic.Uint64

	mu   sync.Mutex
	ring []Span
	head int // next write slot
	n    int // valid spans in the ring
}

// NewRecorder returns a recorder with its own metrics Registry.
func NewRecorder(opts RecorderOptions) *Recorder {
	cap := opts.Capacity
	if cap <= 0 {
		cap = DefaultCapacity
	}
	clock := opts.Clock
	if clock == nil {
		epoch := time.Now()
		clock = func() time.Duration { return time.Since(epoch) }
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	r := &Recorder{
		clock:    clock,
		slowEval: opts.SlowEval,
		logger:   logger,
		reg:      NewRegistry(),
		ring:     make([]Span, cap),
	}
	r.drops = r.reg.Counter("optima_obs_spans_dropped_total",
		"spans overwritten because the recorder's ring was full")
	return r
}

// Metrics returns the recorder's metrics registry (nil for a nil
// recorder — and every Registry method is nil-safe in turn).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Now reads the recorder's clock (0 for a nil recorder). Instrumented
// packages use it for queue-wait measurements instead of the wall clock.
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return r.clock()
}

// Dropped reports how many spans the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Start opens a root span. The span is recorded when the Timer ends.
func (r *Recorder) Start(cat, name string) Timer {
	return r.StartSpan(0, cat, name, "")
}

// StartSpan opens a span under parent (0 = root) with an optional
// human-readable argument. The returned Timer is a value — no allocation —
// and its ID is assigned now, so children can parent on a still-open span.
func (r *Recorder) StartSpan(parent SpanID, cat, name, arg string) Timer {
	if r == nil {
		return Timer{}
	}
	return Timer{
		rec:    r,
		id:     SpanID(r.nextID.Add(1)),
		parent: parent,
		cat:    cat,
		name:   name,
		arg:    arg,
		start:  r.clock(),
	}
}

// AddSpan records an already-measured span of the given duration ending
// now on the recorder's clock, returning its ID. It is the ingestion path
// for spans timed elsewhere — the remote coordinator records each
// worker-reported evaluation duration under its dispatch span without
// pretending to have observed the start. Nil-safe: a nil recorder returns
// 0 and records nothing.
func (r *Recorder) AddSpan(parent SpanID, cat, name, arg string, dur time.Duration) SpanID {
	if r == nil {
		return 0
	}
	if dur < 0 {
		dur = 0
	}
	id := SpanID(r.nextID.Add(1))
	start := r.clock() - dur
	if start < 0 {
		start = 0
	}
	r.record(Span{ID: id, Parent: parent, Cat: cat, Name: name, Arg: arg, Start: start, Dur: dur})
	return id
}

// record appends a completed span to the ring, overwriting the oldest
// when full.
func (r *Recorder) record(s Span) {
	r.mu.Lock()
	r.ring[r.head] = s
	r.head = (r.head + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	r.dropped.Add(1)
	r.drops.Add(1)
}

// Snapshot returns the completed spans currently in the ring, oldest
// first (recording order — the order spans ended). Nil-safe.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// Timer is an open span: a plain value holding the span's identity and
// start time. End records the span. The zero Timer (from a nil recorder)
// is inert: End returns 0 and records nothing.
type Timer struct {
	rec    *Recorder
	id     SpanID
	parent SpanID
	cat    string
	name   string
	arg    string
	start  time.Duration
}

// ID returns the span's ID (0 for an inert timer), valid as a parent for
// child spans before the timer ends.
func (t Timer) ID() SpanID { return t.id }

// End records the span and returns its duration. A span whose clock ran
// backwards (a misbehaving injected clock) is clamped to zero duration so
// exported traces stay well-formed.
func (t Timer) End() time.Duration {
	if t.rec == nil {
		return 0
	}
	d := t.rec.clock() - t.start
	if d < 0 {
		d = 0
	}
	t.rec.record(Span{
		ID: t.id, Parent: t.parent,
		Cat: t.cat, Name: t.name, Arg: t.arg,
		Start: t.start, Dur: d,
	})
	if t.cat == CatEval && t.rec.slowEval > 0 && d >= t.rec.slowEval {
		t.rec.logger.Warn("slow evaluation",
			"backend", t.name, "corner", t.arg,
			"duration", d, "threshold", t.rec.slowEval)
	}
	return d
}

// Subtree returns the spans of the tree rooted at root (root included),
// in the input's order — the per-job filter behind the server's
// GET .../trace endpoint. Spans whose ancestors were overwritten by ring
// overflow are not reachable and are omitted.
func Subtree(spans []Span, root SpanID) []Span {
	if root == 0 {
		return nil
	}
	in := map[SpanID]bool{root: true}
	// Parent IDs are assigned before child IDs, and one pass in ID order
	// would suffice if the ring preserved it; recording order does not, so
	// iterate to a fixed point (tree depth passes at most).
	for {
		grew := false
		for _, s := range spans {
			if !in[s.ID] && (in[s.Parent] || s.ID == root) {
				in[s.ID] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	out := make([]Span, 0, len(in))
	for _, s := range spans {
		if in[s.ID] {
			out = append(out, s)
		}
	}
	return out
}

// FormatDuration renders a duration for span arguments and log lines with
// stable precision (µs below a millisecond, ms below a second, seconds
// above), so summary tables align.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
