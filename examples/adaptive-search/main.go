// Adaptive design-space exploration: embed the paper's 48-corner grid in a
// 1200-corner space (the τ0 axis bisected 32× per gap), screen every rung
// on the behavioral backend with successive halving, and promote only the
// finalists to golden transient simulation — the multi-fidelity ladder
// that keeps thousand-corner spaces tractable.
//
// The walkthrough prints the per-rung trace (evaluated vs cache-hit vs
// promoted), the exhaustive-vs-adaptive evaluation counts, and the final
// Pareto front at golden fidelity.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"optima/internal/core"
	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/search"
	"optima/internal/spice"
)

func main() {
	calib := core.QuickCalibration()
	model, err := core.Calibrate(calib)
	if err != nil {
		log.Fatal(err)
	}

	// The space: the paper's DefaultGrid with the τ0 axis refined from 4 to
	// 100 points. Bisection keeps the original 48 corners bitwise intact,
	// so anything already cached for the paper's sweep keeps serving.
	space := search.FromGrid(dse.DefaultGrid())
	space.Tau0 = space.Tau0.Subdivided(32)
	size, err := space.Size()
	if err != nil {
		log.Fatal(err)
	}

	screen := engine.New(engine.Behavioral{Model: model}, 0)
	golden := engine.New(engine.NewGoldenBackend(calib.Tech, spice.DefaultConfig()), 0)

	start := time.Now()
	res, err := search.Run(context.Background(), search.Options{
		Space:     space,
		Screen:    screen,
		Final:     golden,
		Rungs:     3,
		Eta:       2,
		Finalists: 8, // golden budget: 8 corners instead of 1200
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d corners in %v\n\n", size, time.Since(start))

	fmt.Println("rung  fidelity    candidates  evaluated  cache-hits  promoted")
	for _, r := range res.Trace.Rungs {
		fid := r.Fidelity
		if r.Final {
			fid += "*"
		}
		fmt.Printf("%4d  %-10s  %10d  %9d  %10d  %8d\n",
			r.Rung, fid, r.Candidates, r.Evaluated, r.CacheHits, r.Promoted)
	}
	fmt.Printf("\nexhaustive golden evaluation: %d corners; adaptive: %d golden + %d behavioral (%.1f%% golden)\n",
		size, res.Trace.FinalEvaluations(), res.Trace.ScreenEvaluations(),
		100*float64(res.Trace.FinalEvaluations())/float64(size))

	fmt.Println("\ngolden-fidelity Pareto front:")
	for _, p := range search.FrontPoints(res.Front) {
		fmt.Printf("  τ0=%.3f ns  V0=%.2f V  FS=%.2f V   ϵ=%.3f LSB  E=%.1f fJ  FOM=%.4f\n",
			p.Tau0NS, p.VDAC0V, p.VDACFSV, p.EpsMul, p.EMulFJ, p.FOM)
	}
}
