package poly

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"optima/internal/stats"
)

func TestEvalHorner(t *testing.T) {
	p := New(1, -2, 3) // 1 − 2x + 3x²
	cases := []struct{ x, want float64 }{
		{0, 1}, {1, 2}, {2, 9}, {-1, 6},
	}
	for _, c := range cases {
		if got := p.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("p(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestEvalAll(t *testing.T) {
	p := New(0, 1)
	got := p.EvalAll([]float64{1, 2, 3})
	for i, want := range []float64{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("EvalAll = %v", got)
		}
	}
}

func TestDerivative(t *testing.T) {
	p := New(5, 3, 2) // 5 + 3x + 2x²  →  3 + 4x
	d := p.Derivative()
	if d.Eval(0) != 3 || d.Eval(1) != 7 {
		t.Fatalf("derivative = %v", d.Coeffs)
	}
	if got := New(7).Derivative(); got.Eval(123) != 0 {
		t.Fatal("derivative of constant must be zero")
	}
}

func TestFitRecoversExactPolynomial(t *testing.T) {
	want := New(0.5, -1.5, 2, 0.25)
	xs := stats.Linspace(-2, 2, 40)
	ys := want.EvalAll(xs)
	got, rms, err := Fit(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rms > 1e-10 {
		t.Fatalf("rms = %g, want ~0", rms)
	}
	for i := range want.Coeffs {
		if math.Abs(got.Coeffs[i]-want.Coeffs[i]) > 1e-8 {
			t.Fatalf("coeffs = %v, want %v", got.Coeffs, want.Coeffs)
		}
	}
}

func TestFitUnderdetermined(t *testing.T) {
	if _, _, err := Fit([]float64{1, 2}, []float64{1, 2}, 3); !errors.Is(err, ErrFit) {
		t.Fatalf("err = %v, want ErrFit", err)
	}
	if _, _, err := Fit([]float64{1}, []float64{1, 2}, 0); !errors.Is(err, ErrFit) {
		t.Fatalf("length mismatch: err = %v, want ErrFit", err)
	}
}

func TestFitNoisyDataReasonableRMS(t *testing.T) {
	rng := stats.NewRNG(2)
	truth := New(1, 2, -0.5)
	xs := stats.Linspace(0, 4, 200)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = truth.Eval(x) + rng.Gaussian(0, 0.01)
	}
	_, rms, err := Fit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rms < 0.005 || rms > 0.02 {
		t.Fatalf("rms = %g, want ≈0.01", rms)
	}
}

func TestVandermondeShape(t *testing.T) {
	m := Vandermonde([]float64{2, 3}, 2)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %d×%d", m.Rows(), m.Cols())
	}
	if m.At(0, 2) != 4 || m.At(1, 2) != 9 {
		t.Fatalf("x² column wrong: %v %v", m.At(0, 2), m.At(1, 2))
	}
}

func TestFitSeparableRecoversRank1(t *testing.T) {
	px := New(0, -0.8, 0.3) // in x
	py := New(0.1, 1.0)     // in y
	var samples []Sample
	for _, x := range stats.Linspace(0, 1, 15) {
		for _, y := range stats.Linspace(0, 2, 15) {
			samples = append(samples, Sample{X: x, Y: y, Z: px.Eval(x) * py.Eval(y)})
		}
	}
	fit, rms, err := FitSeparable(samples, 2, 1, 60, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if rms > 1e-9 {
		t.Fatalf("rms = %g, want ~0", rms)
	}
	// The product must match even though individual factors may be rescaled.
	for _, s := range samples {
		if math.Abs(fit.Eval(s.X, s.Y)-s.Z) > 1e-8 {
			t.Fatalf("fit(%g,%g) = %g, want %g", s.X, s.Y, fit.Eval(s.X, s.Y), s.Z)
		}
	}
}

func TestFitSeparableNormalization(t *testing.T) {
	var samples []Sample
	for _, x := range stats.Linspace(0.1, 1, 10) {
		for _, y := range stats.Linspace(0.1, 1, 10) {
			samples = append(samples, Sample{X: x, Y: y, Z: 3 * x * y})
		}
	}
	fit, _, err := FitSeparable(samples, 1, 1, 60, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	var maxAbs float64
	for _, c := range fit.PY.Coeffs {
		if a := math.Abs(c); a > maxAbs {
			maxAbs = a
		}
	}
	if math.Abs(maxAbs-1) > 1e-9 {
		t.Fatalf("PY max |coeff| = %g, want 1 (normalized)", maxAbs)
	}
}

func TestFitSeparableTooFewSamples(t *testing.T) {
	samples := []Sample{{1, 1, 1}, {2, 2, 4}}
	if _, _, err := FitSeparable(samples, 2, 2, 10, 0); !errors.Is(err, ErrFit) {
		t.Fatalf("err = %v, want ErrFit", err)
	}
}

func TestFitTensorExact(t *testing.T) {
	// f(x,y) = 1 + x·y + x²·y² is rank-2: tensor fit must nail it,
	// and it must beat the rank-1 separable fit.
	f := func(x, y float64) float64 { return 1 + x*y + x*x*y*y }
	var samples []Sample
	for _, x := range stats.Linspace(-1, 1, 12) {
		for _, y := range stats.Linspace(-1, 1, 12) {
			samples = append(samples, Sample{X: x, Y: y, Z: f(x, y)})
		}
	}
	tensor, tRMS, err := FitTensor(samples, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tRMS > 1e-9 {
		t.Fatalf("tensor rms = %g, want ~0", tRMS)
	}
	if got := tensor.Eval(0.5, -0.5); math.Abs(got-f(0.5, -0.5)) > 1e-8 {
		t.Fatalf("tensor eval = %g, want %g", got, f(0.5, -0.5))
	}
	_, sRMS, err := FitSeparable(samples, 2, 2, 60, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if sRMS < 10*tRMS {
		t.Fatalf("separable rms %g should be far worse than tensor %g on a rank-2 target", sRMS, tRMS)
	}
}

func TestFitProductThreeFactors(t *testing.T) {
	// Paper Eq. 8 shape: p1(x)·p3(y)·p1(z).
	fx := New(2, 1)
	fy := New(0, 0.5, 0, 0.25)
	fz := New(1, -0.2)
	var samples []SampleN
	for _, x := range stats.Linspace(0.8, 1.2, 6) {
		for _, y := range stats.Linspace(0, 0.6, 8) {
			for _, z := range stats.Linspace(0, 80, 6) {
				samples = append(samples, SampleN{
					Xs: []float64{x, y, z},
					Z:  fx.Eval(x) * fy.Eval(y) * fz.Eval(z),
				})
			}
		}
	}
	fit, rms, err := FitProduct(samples, []int{1, 3, 1}, 80, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if rms > 1e-6 {
		t.Fatalf("rms = %g, want ~0", rms)
	}
	for _, s := range samples[:20] {
		if got := fit.Eval(s.Xs...); math.Abs(got-s.Z) > 1e-5*(1+math.Abs(s.Z)) {
			t.Fatalf("fit(%v) = %g, want %g", s.Xs, got, s.Z)
		}
	}
}

func TestFitProductValidation(t *testing.T) {
	if _, _, err := FitProduct(nil, nil, 0, 0); !errors.Is(err, ErrFit) {
		t.Fatalf("no factors: err = %v", err)
	}
	samples := []SampleN{{Xs: []float64{1}, Z: 1}}
	if _, _, err := FitProduct(samples, []int{3}, 0, 0); !errors.Is(err, ErrFit) {
		t.Fatalf("too few samples: err = %v", err)
	}
	bad := []SampleN{{Xs: []float64{1, 2}, Z: 1}, {Xs: []float64{1}, Z: 1}, {Xs: []float64{3, 1}, Z: 2}}
	if _, _, err := FitProduct(bad, []int{1, 1}, 0, 0); !errors.Is(err, ErrFit) {
		t.Fatalf("ragged sample: err = %v", err)
	}
}

func TestProductEvalPanicsOnArity(t *testing.T) {
	p := Product{Factors: []Polynomial{New(1), New(1)}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Eval(1)
}

// Property: fitting samples of a random polynomial of degree ≤ 3 recovers a
// polynomial that interpolates those samples.
func TestFitInterpolationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		truth := New(rng.Uniform(-2, 2), rng.Uniform(-2, 2), rng.Uniform(-2, 2), rng.Uniform(-2, 2))
		xs := stats.Linspace(-1, 1, 25)
		ys := truth.EvalAll(xs)
		fit, _, err := Fit(xs, ys, 3)
		if err != nil {
			return false
		}
		for i, x := range xs {
			if math.Abs(fit.Eval(x)-ys[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAndString(t *testing.T) {
	p := New(1, 2).Scale(3)
	if p.Eval(1) != 9 {
		t.Fatalf("scaled eval = %g, want 9", p.Eval(1))
	}
	if s := New(1, 2, 3).String(); s == "" {
		t.Fatal("empty String()")
	}
}
