// Package optima is a design-space exploration framework for discharge-based
// (current-domain) in-SRAM computing, reproducing "OPTIMA: Design-Space
// Exploration of Discharge-Based In-SRAM Computing: Quantifying
// Energy-Accuracy Trade-Offs" (DAC 2024).
//
// The repository is organized as a set of substrates under internal/ (golden
// transistor-level simulation, polynomial fitting, discrete-event kernel,
// DNN inference and quantization) with the paper's behavioral models in
// internal/core and the 4-bit in-SRAM multiplier case study in internal/mult.
// All corner/condition evaluations route through the concurrent memoizing
// evaluation service in internal/engine, which the exploration layers
// (internal/dse, internal/exp) submit jobs to — singly or via the batched
// submission path. The engine's cache is tiered: in-memory, then the
// persistent content-addressed result store in internal/store (an
// append-only segment log keyed on (backend, config, condition) plus a
// calibration fingerprint; enabled with -cache-dir), then the backend.
// Concurrency is two-level under one total worker budget: jobs fan out
// across the engine's pool, and the golden backend additionally fans each
// corner's ~500 transients out across its granted intra-job share — with
// Metrics byte-identical at any worker split (fixed result slots, serial
// input-order reduction), so caching stays sound.
// Command-line tools under cmd/ and the benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation.
package optima
