// Package quant implements INT4 post-training quantization in the style of
// TensorFlow Lite adapted from INT8 to INT4 (the paper's Section VI
// protocol): asymmetric uint4 activations, symmetric int4 weights,
// per-tensor scales, integer accumulation — with the scalar multiply
// pluggable so the in-SRAM multiplier corners can execute every
// multiplication of the network.
package quant

import (
	"fmt"
	"math"
	"sync/atomic"

	"optima/internal/mult"
	"optima/internal/stats"
)

// Quantization ranges.
const (
	ActBits   = 4
	ActMax    = 1<<ActBits - 1     // activations: uint4 codes 0..15
	WeightMax = 1<<(ActBits-1) - 1 // weights: symmetric int4 −7..7
)

// Multiplier is the scalar multiply used inside quantized conv/dense
// layers: activation code a ∈ [0, 15] times signed weight code
// w ∈ [−7, 7]. Implementations return the (possibly erroneous) product.
type Multiplier interface {
	Mul(a uint8, w int8) int32
}

// Exact computes the true integer product (the paper's "Baseline INT4").
type Exact struct{}

// Mul implements Multiplier.
func (Exact) Mul(a uint8, w int8) int32 { return int32(a) * int32(w) }

// InMemory replaces every multiplication with the in-SRAM multiplier model:
// the unsigned magnitude product is looked up in the corner's calibrated
// transfer table with per-operation Gaussian analog noise (mismatch Eq. 6
// plus readout noise), and the weight's sign is applied digitally, as in
// IMAC-style sign-magnitude designs.
type InMemory struct {
	// Mean[a][d] is the deterministic analog result in ADC LSBs (≈ a·d).
	Mean [mult.OperandMax + 1][WeightMax + 1]float64
	// Sigma[a][d] is the per-operation noise in LSBs.
	Sigma [mult.OperandMax + 1][WeightMax + 1]float64
	rng   *stats.RNG
	ops   atomic.Int64
}

// NewInMemory builds the lookup-table multiplier for one behavioral
// multiplier configuration. The RNG drives per-operation noise; a nil RNG
// yields the deterministic (mean) transfer.
func NewInMemory(b *mult.Behavioral, rng *stats.RNG) (*InMemory, error) {
	im := &InMemory{rng: rng}
	for a := uint(0); a <= mult.OperandMax; a++ {
		for d := uint(0); d <= WeightMax; d++ {
			r, err := b.MultiplyDet(a, d)
			if err != nil {
				return nil, fmt.Errorf("quant: LUT at (%d,%d): %w", a, d, err)
			}
			im.Mean[a][d] = (r.VComb - b.OffsetVolt) / b.LSBVolt
			im.Sigma[a][d] = math.Hypot(r.Sigma, b.ADCSigma) / b.LSBVolt
		}
	}
	return im, nil
}

// Ops returns the multiplications performed (Table II bookkeeping).
func (im *InMemory) Ops() int64 { return im.ops.Load() }

// Deterministic reports whether Mul uses the noise-free mean transfer
// (nil RNG) and is therefore safe for concurrent use.
func (im *InMemory) Deterministic() bool { return im.rng == nil }

// Mul implements Multiplier.
func (im *InMemory) Mul(a uint8, w int8) int32 {
	im.ops.Add(1)
	d := w
	neg := false
	if d < 0 {
		d = -d
		neg = true
	}
	mu := im.Mean[a][d]
	var v float64
	if im.rng != nil {
		v = im.rng.Gaussian(mu, im.Sigma[a][d])
	} else {
		v = mu
	}
	code := int32(math.Round(v))
	if code < 0 {
		code = 0
	}
	if code > mult.ADCMax {
		code = mult.ADCMax
	}
	if neg {
		return -code
	}
	return code
}

// ActQuant holds the affine activation quantization of one tensor:
// code = clamp(round(x/Scale) + Zero, 0, 15).
type ActQuant struct {
	Scale float64
	Zero  int32
}

// Quantize maps a real activation to its uint4 code.
func (q ActQuant) Quantize(x float64) uint8 {
	c := int32(math.Round(x/q.Scale)) + q.Zero
	if c < 0 {
		c = 0
	}
	if c > ActMax {
		c = ActMax
	}
	return uint8(c)
}

// Dequantize maps a code back to the real domain.
func (q ActQuant) Dequantize(c uint8) float64 {
	return float64(int32(c)-q.Zero) * q.Scale
}

// calibrate derives the activation quantization from an observed range.
// Ranges that include zero keep zero exactly representable.
func calibrate(min, max float64) ActQuant {
	if min > 0 {
		min = 0
	}
	if max < min+1e-9 {
		max = min + 1e-9
	}
	scale := (max - min) / float64(ActMax)
	zero := int32(math.Round(-min / scale))
	if zero < 0 {
		zero = 0
	}
	if zero > ActMax {
		zero = ActMax
	}
	return ActQuant{Scale: scale, Zero: zero}
}

// WeightQuant is the symmetric per-tensor weight quantization.
type WeightQuant struct {
	Scale float64
	Codes []int8
}

// QuantizeWeights maps float weights to symmetric int4 codes.
func QuantizeWeights(w []float64) WeightQuant {
	var maxAbs float64
	for _, v := range w {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1e-9
	}
	scale := maxAbs / float64(WeightMax)
	codes := make([]int8, len(w))
	for i, v := range w {
		c := math.Round(v / scale)
		if c > WeightMax {
			c = WeightMax
		}
		if c < -WeightMax {
			c = -WeightMax
		}
		codes[i] = int8(c)
	}
	return WeightQuant{Scale: scale, Codes: codes}
}
