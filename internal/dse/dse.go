// Package dse implements the paper's design-space exploration (Section V):
// sweeping multiplier configurations over (τ0, V_DAC,0, V_DAC,FS), scoring
// each corner by average multiplication error and energy, selecting the
// fom / power / variation corners (Table I), extracting Pareto-optimal
// sets, and running the PVT robustness analyses of Fig. 8.
package dse

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/mult"
	"optima/internal/stats"
)

// Grid spans the explored configuration space. The paper's 48-corner space
// is DefaultGrid.
type Grid struct {
	Tau0s   []float64
	VDAC0s  []float64
	VDACFSs []float64
}

// DefaultGrid returns the paper's 48 design corners:
// τ0 ∈ {0.16, 0.20, 0.24, 0.28} ns × V_DAC,0 ∈ {0.3, 0.4, 0.5} V ×
// V_DAC,FS ∈ {0.7, 0.8, 0.9, 1.0} V.
func DefaultGrid() Grid {
	return Grid{
		Tau0s:   []float64{0.16e-9, 0.20e-9, 0.24e-9, 0.28e-9},
		VDAC0s:  []float64{0.3, 0.4, 0.5},
		VDACFSs: []float64{0.7, 0.8, 0.9, 1.0},
	}
}

// Configs expands the grid into the corner list (row-major:
// τ0 outermost, V_DAC,FS innermost), skipping invalid combinations.
func (g Grid) Configs() []mult.Config {
	var out []mult.Config
	for _, tau := range g.Tau0s {
		for _, v0 := range g.VDAC0s {
			for _, fs := range g.VDACFSs {
				cfg := mult.Config{Tau0: tau, VDAC0: v0, VDACFS: fs}
				if cfg.Validate() == nil {
					out = append(out, cfg)
				}
			}
		}
	}
	return out
}

// Metrics scores one design corner over the full 16×16 input space at one
// operating condition. Errors are expectations over the analog noise
// (mismatch Eq. 6 plus readout noise), computed analytically — no
// Monte-Carlo jitter, so corner selection is deterministic.
type Metrics struct {
	Config mult.Config
	Cond   device.PVT
	// EpsMul is the mean expected |error| in ADC LSBs over all input pairs
	// (the paper's ϵ_mul).
	EpsMul float64
	// EpsLarge / EpsSmall split EpsMul by expected product
	// (≥ / < ProductMax/2) — the paper's Fig. 8 small-operand analysis.
	EpsLarge, EpsSmall float64
	// EMul is the mean multiplication energy [J] (the paper's E_mul).
	EMul float64
	// SigmaMaxLSB is the analog standard deviation at the maximum discharge
	// (15,15) in LSBs — the paper's variation-corner criterion.
	SigmaMaxLSB float64
	// SigmaMaxVolt is the same in volts (the paper quotes 5.04 mV worst case).
	SigmaMaxVolt float64
	// LSBVolt is the corner's calibrated ADC step.
	LSBVolt float64
}

// FOM is the paper's Eq. 9 figure of merit 1/(ϵ_mul·E_mul), in 1/(LSB·fJ).
func (m Metrics) FOM() float64 {
	if m.EpsMul <= 0 || m.EMul <= 0 {
		return 0
	}
	return 1 / (m.EpsMul * m.EMul * 1e15)
}

// Evaluate scores one configuration at the given condition.
func Evaluate(model *core.Model, cfg mult.Config, cond device.PVT) (Metrics, error) {
	b, err := mult.NewBehavioral(model, cfg, cond)
	if err != nil {
		return Metrics{}, err
	}
	return evaluateBehavioral(b)
}

func evaluateBehavioral(b *mult.Behavioral) (Metrics, error) {
	m := Metrics{Config: b.Cfg, Cond: b.Cond, LSBVolt: b.LSBVolt}
	var epsAcc, largeAcc, smallAcc, eAcc stats.Accumulator
	for a := uint(0); a <= mult.OperandMax; a++ {
		for d := uint(0); d <= mult.OperandMax; d++ {
			r, err := b.Multiply(a, d, nil)
			if err != nil {
				return Metrics{}, err
			}
			sigma := math.Hypot(r.Sigma, b.ADCSigma)
			eps := expectedAbsError(r.VComb-b.OffsetVolt, sigma, b.LSBVolt, r.Expected)
			epsAcc.Add(eps)
			if r.Expected >= mult.ProductMax/2 {
				largeAcc.Add(eps)
			} else {
				smallAcc.Add(eps)
			}
			eAcc.Add(r.Energy)
			if a == mult.OperandMax && d == mult.OperandMax {
				m.SigmaMaxVolt = r.Sigma
				m.SigmaMaxLSB = r.Sigma / b.LSBVolt
			}
		}
	}
	m.EpsMul = epsAcc.Mean()
	m.EpsLarge = largeAcc.Mean()
	m.EpsSmall = smallAcc.Mean()
	m.EMul = eAcc.Mean()
	return m, nil
}

// expectedAbsError returns E[|code − expected|] for a Gaussian analog value
// N(mu, sigma) quantized with the given LSB and clamped to the ADC range.
func expectedAbsError(mu, sigma, lsb float64, expected int) float64 {
	if sigma <= 0 {
		code := int(math.Round(mu / lsb))
		if code < 0 {
			code = 0
		}
		if code > mult.ADCMax {
			code = mult.ADCMax
		}
		return math.Abs(float64(code - expected))
	}
	// Sum |k − expected|·P(code = k) over codes within ±6σ of the mean.
	lo := int(math.Floor((mu-6*sigma)/lsb)) - 1
	hi := int(math.Ceil((mu+6*sigma)/lsb)) + 1
	if lo < 0 {
		lo = 0
	}
	if hi > mult.ADCMax {
		hi = mult.ADCMax
	}
	inv := 1 / (sigma * math.Sqrt2)
	cdf := func(v float64) float64 { return 0.5 * (1 + math.Erf((v-mu)*inv)) }
	var sum float64
	for k := lo; k <= hi; k++ {
		lower := (float64(k) - 0.5) * lsb
		upper := (float64(k) + 0.5) * lsb
		var p float64
		switch {
		case k == 0:
			p = cdf(upper) // everything below the first boundary clamps to 0
		case k == mult.ADCMax:
			p = 1 - cdf(lower)
		default:
			p = cdf(upper) - cdf(lower)
		}
		sum += math.Abs(float64(k-expected)) * p
	}
	// Account for truncated tails outside [lo, hi] when they clamp.
	if lo > 0 {
		sum += math.Abs(float64(lo-expected)) * cdf((float64(lo)-0.5)*lsb)
	}
	if hi < mult.ADCMax {
		sum += math.Abs(float64(hi-expected)) * (1 - cdf((float64(hi)+0.5)*lsb))
	}
	return sum
}

// Sweep evaluates every corner of the grid at the nominal condition using a
// worker pool and returns the metrics in grid order.
func Sweep(model *core.Model, grid Grid, workers int) ([]Metrics, error) {
	cfgs := grid.Configs()
	out := make([]Metrics, len(cfgs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		next  int
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if first != nil || next >= len(cfgs) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				met, err := Evaluate(model, cfgs[i], device.Nominal())
				if err != nil {
					mu.Lock()
					if first == nil {
						first = fmt.Errorf("dse: corner %v: %w", cfgs[i], err)
					}
					mu.Unlock()
					return
				}
				out[i] = met
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return out, nil
}

// Selection holds the three corners the paper's Table I reports.
type Selection struct {
	FOM       Metrics // maximizes Eq. 9
	Power     Metrics // minimum energy per multiplication
	Variation Metrics // smallest σ at maximum discharge (robustness pick)
}

// SigmaTieTolerance treats σ values within this relative band as tied when
// selecting the variation corner; ties resolve to the corner with the best
// large-operand accuracy ("least impacted by process variation" evaluated
// on large results, the paper's framing).
const SigmaTieTolerance = 0.01

// Select applies the paper's three selection rules to a sweep result.
func Select(metrics []Metrics) (Selection, error) {
	if len(metrics) == 0 {
		return Selection{}, fmt.Errorf("dse: empty sweep")
	}
	sel := Selection{FOM: metrics[0], Power: metrics[0], Variation: metrics[0]}
	for _, m := range metrics[1:] {
		if m.FOM() > sel.FOM.FOM() {
			sel.FOM = m
		}
		if m.EMul < sel.Power.EMul {
			sel.Power = m
		}
	}
	// Variation: min σ at max discharge with tolerance, tie-break by
	// large-operand error, then energy.
	minSigma := math.Inf(1)
	for _, m := range metrics {
		if m.SigmaMaxLSB < minSigma {
			minSigma = m.SigmaMaxLSB
		}
	}
	best := Metrics{EpsLarge: math.Inf(1), EMul: math.Inf(1)}
	for _, m := range metrics {
		if m.SigmaMaxLSB > minSigma*(1+SigmaTieTolerance) {
			continue
		}
		if m.EpsLarge < best.EpsLarge ||
			(m.EpsLarge == best.EpsLarge && m.EMul < best.EMul) {
			best = m
		}
	}
	sel.Variation = best
	return sel, nil
}

// ParetoFront returns the corners not dominated in (EpsMul, EMul): a corner
// dominates another if it is no worse in both metrics and strictly better
// in at least one. The result is sorted by energy.
func ParetoFront(metrics []Metrics) []Metrics {
	var front []Metrics
	for i, m := range metrics {
		dominated := false
		for j, o := range metrics {
			if i == j {
				continue
			}
			if o.EpsMul <= m.EpsMul && o.EMul <= m.EMul &&
				(o.EpsMul < m.EpsMul || o.EMul < m.EMul) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, m)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].EMul < front[j].EMul })
	return front
}
