// Package server is the exploration-as-a-service layer: a long-lived HTTP
// server (stdlib net/http only) exposing the evaluation stack to multiple
// concurrent users. Clients create sessions, submit sweep / adaptive-search
// / condition-matrix jobs, and follow live progress over WebSocket (a
// hand-rolled RFC 6455 subset — no dependencies).
//
// The concurrency model has two layers. Per session, operations are
// serialized: a session holds at most one active job (submitting into a
// busy session is a 409), and DELETE on the active job cancels it
// promptly — in-flight backend evaluations complete and persist, unstarted
// cells are abandoned, so the store stays consistent and a rerun resumes
// from the warm tiers. Across sessions, everything is shared: all jobs run
// against one exp.Context, so overlapping submissions from different users
// dedupe against the same memory cache and persistent store.
//
// Results use the same JSON shapes the optima CLI writes (search jobs
// return search.JSONReport — byte-identical to `optima search`'s
// search.json payload for identical options, at any worker count).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"optima/internal/engine"
	"optima/internal/exp"
)

// Server is the service state: the shared experiment context, the session
// table, and the progress hub. Create with New, serve Handler, stop with
// Shutdown.
type Server struct {
	exp *exp.Context
	hub *Hub
	mux *http.ServeMux

	// engineFor resolves a backend name to an evaluation engine — normally
	// exp.Context.EngineFor; in-package tests substitute controllable
	// backends through it.
	engineFor func(name string) (*engine.Engine, error)

	mu        sync.Mutex
	sessions  map[string]*session
	sessOrder []string

	nextSess atomic.Uint64
	nextJob  atomic.Uint64

	jobWG   sync.WaitGroup
	closing atomic.Bool
}

// New wraps an experiment context into a server. The caller keeps
// ownership of nothing: Shutdown closes the context (flushing the
// persistent store).
func New(expCtx *exp.Context) *Server {
	s := &Server{
		exp:      expCtx,
		hub:      NewHub(),
		mux:      http.NewServeMux(),
		sessions: make(map[string]*session),
	}
	s.engineFor = expCtx.EngineFor
	s.routes()
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/status", s.handleStatus)
	s.mux.HandleFunc("POST /api/sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /api/sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /api/sessions/{sid}", s.handleGetSession)
	s.mux.HandleFunc("DELETE /api/sessions/{sid}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /api/sessions/{sid}/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /api/sessions/{sid}/jobs/{jid}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /api/sessions/{sid}/jobs/{jid}", s.handleCancelJob)
	s.mux.HandleFunc("GET /api/sessions/{sid}/jobs/{jid}/ws", s.handleJobWS)
}

// Shutdown drains the server: new sessions and jobs are refused (503),
// running jobs are waited for — or cancelled when ctx expires first — and
// the experiment context is closed, flushing the persistent store. Call
// after the HTTP listener has stopped accepting.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Snapshot in sessOrder (creation order), not map order: the cancel
		// fan-out is then deterministic, so a drain-deadline shutdown logs
		// and unwinds identically across runs.
		s.mu.Lock()
		sessions := make([]*session, 0, len(s.sessOrder))
		for _, id := range s.sessOrder {
			sessions = append(sessions, s.sessions[id])
		}
		s.mu.Unlock()
		for _, sess := range sessions {
			sess.cancelActive()
		}
		<-done // cancelled jobs unwind quickly (cells are abandoned)
	}
	return s.exp.Close()
}

// StoreStatus reports the persistent-store health on GET /api/status.
type StoreStatus struct {
	// Persistent is false when no cache directory was configured OR the
	// store failed to open (Error says why) — either way the server is
	// serving from the memory tier only and results do not survive it.
	Persistent bool   `json:"persistent"`
	Dir        string `json:"dir,omitempty"`
	Error      string `json:"error,omitempty"`
	// Records is the live result count under the session fingerprint.
	Records int `json:"records,omitempty"`
}

// StatusResponse is the body of GET /api/status.
type StatusResponse struct {
	Backend    string       `json:"backend"`
	Workers    int          `json:"workers"`
	Conditions string       `json:"conditions"`
	Sessions   int          `json:"sessions"`
	ActiveJobs int          `json:"active_jobs"`
	Engine     engine.Stats `json:"engine"`
	Store      StoreStatus  `json:"store"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	eng := s.exp.Engine() // builds on first call; resolves the store
	resp := StatusResponse{
		Backend:    eng.Backend().Name(),
		Workers:    eng.Workers(),
		Conditions: s.exp.ConditionSet().String(),
		Engine:     eng.Stats(),
	}
	if st := s.exp.Store(); st != nil {
		resp.Store = StoreStatus{Persistent: true, Dir: st.Dir(), Records: st.Len()}
	} else if err := s.exp.StoreError(); err != nil {
		// The degradation surface: CacheDir was configured but the store
		// could not open, so the server runs memory-only.
		resp.Store.Error = err.Error()
	}
	s.mu.Lock()
	resp.Sessions = len(s.sessions)
	for _, sess := range s.sessions {
		sess.mu.Lock()
		if sess.opJob != "" {
			resp.ActiveJobs++
		}
		sess.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	sess := newSession(fmt.Sprintf("s%d", s.nextSess.Add(1)))
	s.mu.Lock()
	s.sessions[sess.id] = sess
	s.sessOrder = append(s.sessOrder, sess.id)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, sess.status())
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessOrder))
	for _, id := range s.sessOrder {
		sessions = append(sessions, s.sessions[id])
	}
	s.mu.Unlock()
	out := make([]SessionStatus, len(sessions))
	for i, sess := range sessions {
		out[i] = sess.status()
	}
	writeJSON(w, http.StatusOK, out)
}

// lookupSession resolves {sid}, writing the 404 itself on a miss.
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("sid")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "no session %q", id)
	}
	return sess
}

// lookupJob resolves {sid}/{jid}, writing the 404 itself on a miss.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*session, *job) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return nil, nil
	}
	id := r.PathValue("jid")
	j := sess.getJob(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %q in session %s", id, sess.id)
		return nil, nil
	}
	return sess, j
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookupSession(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.status())
	}
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	sess.cancelActive()
	s.mu.Lock()
	delete(s.sessions, sess.id)
	for i, id := range s.sessOrder {
		if id == sess.id {
			s.sessOrder = append(s.sessOrder[:i], s.sessOrder[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	// Disconnect watchers and free the event histories. A still-running
	// job keeps running to its terminal state (its runner holds direct
	// references); it just has no audience anymore.
	for _, id := range sess.jobIDs() {
		s.hub.Drop(id)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	jobID := fmt.Sprintf("j%d", s.nextJob.Add(1))
	p, err := s.buildPlan(req, jobID)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := sess.begin(req.Kind, jobID, cancel); err != nil {
		cancel()
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	j := newJob(jobID, sess.id, req.Kind)
	sess.addJob(j)
	s.hub.Publish(jobID, Event{Type: EventState, State: JobQueued})
	s.jobWG.Add(1)
	go s.runJob(sess, j, p, ctx, cancel)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	if _, j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status(true))
	}
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	sess, j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	// Delivering the cancellation is all DELETE does; the job reaches its
	// terminal state asynchronously (watch the WebSocket or poll GET). On
	// an already-finished job this is a no-op returning the final state.
	sess.cancelJob(j.id)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

func (s *Server) handleJobWS(w http.ResponseWriter, r *http.Request) {
	_, j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	ws, err := upgradeWS(w, r)
	if err != nil {
		return // upgradeWS already wrote the HTTP error
	}
	history, ch := s.hub.Subscribe(j.id)
	// Reader: the only frames a client sends are control frames; its job
	// is to detect a hang-up and detach the subscription so the writer
	// loop below unblocks (Unsubscribe closes ch).
	go func() {
		for {
			if _, err := ws.ReadMessage(); err != nil {
				s.hub.Unsubscribe(j.id, ch)
				ws.conn.Close()
				return
			}
		}
	}()
	for _, msg := range history {
		if ws.WriteMessage(msg) != nil {
			s.hub.Unsubscribe(j.id, ch)
			ws.conn.Close()
			return
		}
	}
	for msg := range ch {
		if ws.WriteMessage(msg) != nil {
			s.hub.Unsubscribe(j.id, ch)
			ws.conn.Close()
			return
		}
	}
	// Topic closed (terminal event delivered): complete the close
	// handshake and let the reader goroutine exit on the closed conn.
	ws.Close()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is gone; nothing useful to do but drop the conn.
		_ = err
	}
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
