package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"optima/internal/engine"
)

// writeV1Store fabricates a legacy format-v1 directory: JSONL segments
// partitioned by key hash (the routing v1 used) plus a version-1 manifest.
// entries maps fingerprint -> records stored under it.
func writeV1Store(t *testing.T, dir string, nparts int, entries map[string][]engine.CacheEntry) {
	t.Helper()
	segs := make([][]byte, nparts)
	for fp, ents := range entries {
		for _, ent := range ents {
			line, err := json.Marshal(v1Record{FP: fp, Key: ent.Key, Met: ent.Met})
			if err != nil {
				t.Fatal(err)
			}
			p := ent.Key.Hash() % uint64(nparts)
			segs[p] = append(segs[p], line...)
			segs[p] = append(segs[p], '\n')
		}
	}
	for i, data := range segs {
		path := filepath.Join(dir, segName(i))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, err := json.Marshal(manifest{Version: formatVersionV1, Partitions: nparts, Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), m, 0o644); err != nil {
		t.Fatal(err)
	}
}

// segName is the legacy v1 segment file name for partition i.
func segName(i int) string {
	return "seg-" + string([]byte{byte('0' + i/10), byte('0' + i%10)}) + ".jsonl"
}

func v1Entries(n int) []engine.CacheEntry {
	ents := make([]engine.CacheEntry, n)
	for i := range ents {
		ents[i] = engine.CacheEntry{Key: testKey(i), Met: testMet(i)}
	}
	return ents
}

// TestV1MigrationServesEveryRecord is the read-compat contract: opening a
// v1 directory converts it in place and serves every record — same keys,
// same values — with the JSONL segments gone and the manifest at v2.
func TestV1MigrationServesEveryRecord(t *testing.T) {
	dir := t.TempDir()
	writeV1Store(t, dir, DefaultPartitions, map[string][]engine.CacheEntry{
		"fp-a": v1Entries(40),
	})

	s, err := Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatalf("v1 directory must open through migration: %v", err)
	}
	if got := s.Len(); got != 40 {
		t.Fatalf("migrated store serves %d results, want 40", got)
	}
	for i := 0; i < 40; i++ {
		met, ok := s.Get(testKey(i))
		if !ok {
			t.Fatalf("record %d lost in migration", i)
		}
		if met != testMet(i) {
			t.Fatalf("record %d corrupted in migration:\n got %+v\nwant %+v", i, met, testMet(i))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if hasV1Segments(dir) {
		t.Fatal("JSONL segments remain after migration")
	}
	m, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil || m == nil {
		t.Fatalf("manifest unreadable after migration: %v", err)
	}
	if m.Version != FormatVersion {
		t.Fatalf("manifest version %d after migration, want %d", m.Version, FormatVersion)
	}

	// Reopen: the migrated directory is a plain v2 store now.
	s, err = Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != 40 {
		t.Fatalf("reopened migrated store serves %d results, want 40", got)
	}
}

// TestV1MigrationKeepsForeignFingerprints: unlike compaction, the format
// upgrade itself must not discard other calibrations' results — every
// fingerprint's records land in the converted segments. (What happens to
// them NEXT is the ordinary compaction policy: a session opening under one
// fingerprint may still collapse partitions that are mostly another's.)
func TestV1MigrationKeepsForeignFingerprints(t *testing.T) {
	dir := t.TempDir()
	writeV1Store(t, dir, 2, map[string][]engine.CacheEntry{
		"fp-a": v1Entries(10),
		"fp-b": {{Key: testKey(100), Met: testMet(100)}, {Key: testKey(101), Met: testMet(101)}},
	})
	if _, err := migrateV1(dir); err != nil {
		t.Fatal(err)
	}
	perFP := map[string]int{}
	for i := 0; i < 2; i++ {
		data, err := os.ReadFile(segPath(dir, i))
		if err != nil {
			t.Fatal(err)
		}
		for len(data) > 0 {
			rec, n, ok := decodeRecord(data)
			if !ok {
				t.Fatalf("segment %d holds an undecodable record after migration", i)
			}
			perFP[rec.FP]++
			data = data[n:]
		}
	}
	if perFP["fp-a"] != 10 || perFP["fp-b"] != 2 {
		t.Fatalf("migrated segments hold %v records per fingerprint, want fp-a:10 fp-b:2", perFP)
	}
}

// TestV1MigrationWithoutManifest: a v1 directory whose manifest write was
// torn (or missing) is recognized by its segment files alone.
func TestV1MigrationWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	writeV1Store(t, dir, DefaultPartitions, map[string][]engine.CacheEntry{
		"fp-a": v1Entries(12),
	})
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != 12 {
		t.Fatalf("manifest-less v1 directory serves %d results, want 12", got)
	}
	if hasV1Segments(dir) {
		t.Fatal("JSONL segments remain after migration")
	}
}

// TestV1MigrationTornTail: v1's torn-tail semantics carry through the
// migration — the valid prefix survives, the torn line is dropped, the open
// never fails.
func TestV1MigrationTornTail(t *testing.T) {
	dir := t.TempDir()
	writeV1Store(t, dir, 1, map[string][]engine.CacheEntry{
		"fp-a": v1Entries(8),
	})
	path := filepath.Join(dir, segName(0))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fp":"fp-a","key":{"Backend":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := Open(dir, Options{Fingerprint: "fp-a", Partitions: 1})
	if err != nil {
		t.Fatalf("torn v1 tail must not fail the migration: %v", err)
	}
	defer s.Close()
	if got := s.Len(); got != 8 {
		t.Fatalf("torn-tail migration serves %d results, want 8", got)
	}
}

// TestV1MigrationLastValueWins: a key written twice in a v1 segment (an
// overwrite awaiting compaction) migrates to its latest value only.
func TestV1MigrationLastValueWins(t *testing.T) {
	dir := t.TempDir()
	stale := testMet(1)
	stale.EpsMul = 999
	writeV1Store(t, dir, 1, map[string][]engine.CacheEntry{
		"fp-a": {
			{Key: testKey(1), Met: stale},
			{Key: testKey(2), Met: testMet(2)},
			{Key: testKey(1), Met: testMet(1)}, // supersedes the stale value
		},
	})
	s, err := Open(dir, Options{Fingerprint: "fp-a", Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != 2 {
		t.Fatalf("migrated store serves %d results, want 2", got)
	}
	if met, _ := s.Get(testKey(1)); met != testMet(1) {
		t.Fatalf("migration kept the superseded value: %+v", met)
	}
}

// TestV1MigrationPreservesMtime: the converted segment carries the data's
// age, so age/LRU retention judges migrated data by when it was written,
// not by when the format changed.
func TestV1MigrationPreservesMtime(t *testing.T) {
	dir := t.TempDir()
	writeV1Store(t, dir, 1, map[string][]engine.CacheEntry{
		"fp-a": v1Entries(4),
	})
	path := filepath.Join(dir, segName(0))
	old := time.Now().Add(-72 * time.Hour).Truncate(time.Second)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := migrateV1(dir); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(segPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !fi.ModTime().Equal(old) {
		t.Fatalf("migrated segment mtime %v, want the v1 data's %v", fi.ModTime(), old)
	}
}

// TestV1MigrationIdempotentResume: re-running the migration over a
// partially converted directory (a crash between segments) completes it
// without damaging already-converted segments.
func TestV1MigrationIdempotentResume(t *testing.T) {
	dir := t.TempDir()
	writeV1Store(t, dir, 4, map[string][]engine.CacheEntry{
		"fp-a": v1Entries(24),
	})
	// Convert only the first segment, as a crashed first attempt would.
	if err := migrateV1Segment(filepath.Join(dir, segName(0))); err != nil {
		t.Fatal(err)
	}
	// The resumed open completes the rest.
	s, err := Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != 24 {
		t.Fatalf("resumed migration serves %d results, want 24", got)
	}
}

// TestTieredEngineOverV1Store is the acceptance criterion end to end: an
// engine over a freshly migrated v1 directory performs ZERO backend
// evaluations — the old cache's results all survive the format change.
func TestTieredEngineOverV1Store(t *testing.T) {
	dir := t.TempDir()
	jobs := make([]engine.Job, 24)
	ents := make([]engine.CacheEntry, len(jobs))
	backend := &countingBackend{}
	for i := range jobs {
		jobs[i] = testKey(i).Job
		met, err := backend.Evaluate(jobs[i].Config, jobs[i].Cond)
		if err != nil {
			t.Fatal(err)
		}
		ents[i] = engine.CacheEntry{Key: engine.Key{Backend: backend.Name(), Job: jobs[i]}, Met: met}
	}
	backend.evals.Store(0)
	writeV1Store(t, dir, DefaultPartitions, map[string][]engine.CacheEntry{"fp": ents})

	s, err := Open(dir, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mets, err := engine.New(backend, 4).WithStore(s).EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := backend.evals.Load(); got != 0 {
		t.Fatalf("warm run over a migrated v1 store evaluated %d corners, want 0", got)
	}
	for i, met := range mets {
		if met != ents[i].Met {
			t.Fatalf("migrated corner %d differs from the v1 store's value", i)
		}
	}
}
