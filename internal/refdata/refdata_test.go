package refdata

import "testing"

func TestFigure1Complete(t *testing.T) {
	pts := Figure1()
	if len(pts) != 4 {
		t.Fatalf("Fig. 1 has %d designs, want 4 ([8],[14],[15],[16])", len(pts))
	}
	refs := map[string]bool{}
	for _, p := range pts {
		if p.EnergyPJ <= 0 || p.ClockMHz <= 0 || p.BitWidth <= 0 {
			t.Fatalf("design %s has non-positive metrics", p.Name)
		}
		if refs[p.Ref] {
			t.Fatalf("duplicate reference %s", p.Ref)
		}
		refs[p.Ref] = true
	}
	for _, want := range []string{"[8]", "[14]", "[15]", "[16]"} {
		if !refs[want] {
			t.Fatalf("missing reference %s", want)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("Table I has %d corners", len(rows))
	}
	fom := rows[0]
	if fom.Name != "fom" || fom.Tau0NS != 0.16 || fom.VDAC0 != 0.3 || fom.VDACFS != 1.0 {
		t.Fatalf("fom corner mismatch: %+v", fom)
	}
	if fom.EpsMulLSB != 4.78 || fom.EMulFJ != 44 {
		t.Fatalf("fom metrics mismatch: %+v", fom)
	}
	// The power corner must have the smallest reported energy.
	for _, r := range rows {
		if r.EMulFJ < rows[1].EMulFJ {
			t.Fatalf("power corner is not minimal energy")
		}
	}
}

func TestTable2Ordering(t *testing.T) {
	for _, r := range Table2ImageNet() {
		if !(r.Float32Top1 >= r.Int4Top1 && r.Int4Top1 >= r.FomTop1 &&
			r.FomTop1 > r.PowerTop1 && r.PowerTop1 > r.VariationTop1) {
			t.Fatalf("%s violates the paper's accuracy ordering: %+v", r.Model, r)
		}
		if r.MultsBillions <= 0 {
			t.Fatalf("%s lacks multiplication count", r.Model)
		}
	}
}

func TestTable3Ordering(t *testing.T) {
	for _, r := range Table3CIFAR() {
		if !(r.Float32Top1 >= r.Int4Top1 && r.Int4Top1 >= r.FomTop1 &&
			r.FomTop1 > r.PowerTop1 && r.PowerTop1 > r.VariationTop1) {
			t.Fatalf("%s violates the paper's accuracy ordering: %+v", r.Model, r)
		}
	}
}

func TestHeadlines(t *testing.T) {
	if SpeedupInputSpace != 101.0 || SpeedupMonteCarlo != 28.1 {
		t.Fatal("speed-up headlines wrong")
	}
	if EnergyPerOpPJ != 1.05 || HeadlineRMSmV != 0.88 {
		t.Fatal("energy/RMS headlines wrong")
	}
	if Figure6RMS().VDDMV != HeadlineRMSmV {
		t.Fatal("headline RMS must equal the Fig. 6 supply-model RMS")
	}
}
