// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation, each returning report artifacts (tables and
// charts) plus the measured values needed for paper-vs-measured
// comparisons. The cmd tools, the root-level benchmarks, and the
// experiment tests all call into this package so every reproduction number
// has exactly one source of truth.
package exp

import (
	"fmt"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/dse"
	"optima/internal/spice"
)

// Context carries the calibrated OPTIMA model and the shared settings of
// an experiment session.
type Context struct {
	Model   *core.Model
	Tech    device.Tech
	Spice   spice.Config
	Workers int

	selection    *dse.Selection
	sweepMetrics []dse.Metrics
}

// NewContext calibrates a model with the given recipe and returns a ready
// experiment context.
func NewContext(calib core.CalibrationConfig) (*Context, error) {
	model, err := core.Calibrate(calib)
	if err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	return &Context{
		Model: model,
		Tech:  calib.Tech,
		Spice: calib.Spice,
	}, nil
}

// NewContextWithModel wraps a pre-calibrated model (e.g. loaded from JSON).
func NewContextWithModel(model *core.Model, tech device.Tech) *Context {
	return &Context{Model: model, Tech: tech, Spice: spice.DefaultConfig()}
}

// Sweep returns the cached 48-corner DSE sweep, running it on first use.
func (c *Context) Sweep() ([]dse.Metrics, error) {
	if c.sweepMetrics == nil {
		mets, err := dse.Sweep(c.Model, dse.DefaultGrid(), c.Workers)
		if err != nil {
			return nil, err
		}
		c.sweepMetrics = mets
	}
	return c.sweepMetrics, nil
}

// Selection returns the cached corner selection (fom/power/variation).
func (c *Context) Selection() (dse.Selection, error) {
	if c.selection == nil {
		mets, err := c.Sweep()
		if err != nil {
			return dse.Selection{}, err
		}
		sel, err := dse.Select(mets)
		if err != nil {
			return dse.Selection{}, err
		}
		c.selection = &sel
	}
	return *c.selection, nil
}
