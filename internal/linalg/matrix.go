// Package linalg provides the dense linear-algebra kernels used by the
// model-fitting pipeline: matrices, Householder QR, Cholesky factorization,
// triangular solves, and linear least squares.
//
// The package is intentionally small and allocation-conscious rather than a
// general BLAS replacement; problem sizes in OPTIMA are a few thousand rows
// by a handful of columns (polynomial design matrices).
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// ErrShape is returned when matrix dimensions are incompatible with the
// requested operation.
var ErrShape = errors.New("linalg: incompatible matrix shapes")

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// NewMatrix returns a zero-initialized rows×cols matrix.
// It panics if either dimension is not positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix dimensions %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have the
// same length. The data is copied.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("linalg: empty row data: %w", ErrShape)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("linalg: row %d has %d entries, want %d: %w", i, len(r), m.cols, ErrShape)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of bounds for %d×%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("linalg: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the product m·b as a new matrix.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("linalg: mul %d×%d by %d×%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("linalg: mulvec %d×%d by vector of length %d: %w", m.rows, m.cols, len(x), ErrShape)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMatrix returns m + b as a new matrix.
func (m *Matrix) AddMatrix(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("linalg: add %d×%d and %d×%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// Sub returns m − b as a new matrix.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("linalg: sub %d×%d and %d×%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// MaxAbs returns the largest absolute element value (the max norm).
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm sqrt(Σ m_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%12.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot of vectors with lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow.
func Norm2(v []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		a := math.Abs(x)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}
