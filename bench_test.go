// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the same experiment code as cmd/optima /
// cmd/optima-dnn (package internal/exp) and reports the headline metric of
// its artifact via b.ReportMetric, so `go test -bench=.` reproduces the
// full evaluation and prints paper-comparable numbers.
package optima_test

import (
	"sync"
	"testing"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/dse"
	"optima/internal/exp"
	"optima/internal/mult"
	"optima/internal/spice"
	"optima/internal/stats"
)

var (
	benchOnce sync.Once
	benchCtx  *exp.Context
	benchErr  error
)

// benchContext calibrates the shared experiment context once per process
// (full calibration recipe — the same one the committed artifacts use).
func benchContext(b *testing.B) *exp.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx, benchErr = exp.NewContext(core.DefaultCalibration())
	})
	if benchErr != nil {
		b.Fatalf("calibration: %v", benchErr)
	}
	return benchCtx
}

func fomCfg() mult.Config { return mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0} }

// BenchmarkFig1StateOfTheArt regenerates the published design-space
// comparison (paper Fig. 1).
func BenchmarkFig1StateOfTheArt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, chart := exp.Fig1()
		if tbl.NumRows() != 4 || len(chart.Series) != 4 {
			b.Fatal("Fig. 1 artifacts incomplete")
		}
	}
}

// BenchmarkFig4Nonidealities regenerates the golden discharge non-ideality
// curves (paper Fig. 4) and reports the '0'-code asymmetry.
func BenchmarkFig4Nonidealities(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var sub float64
	for i := 0; i < b.N; i++ {
		data, err := ctx.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		sub = data.SubVtDischarge
	}
	b.ReportMetric(sub*1e3, "zero-code-mV")
}

// BenchmarkFig5PVTVariations regenerates the PVT-variation curves (paper
// Fig. 5) with a reduced Monte-Carlo population and reports the mismatch
// band (paper: ≈ ±15 mV).
func BenchmarkFig5PVTVariations(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var band float64
	for i := 0; i < b.N; i++ {
		data, err := ctx.Fig5(60)
		if err != nil {
			b.Fatal(err)
		}
		band = data.MismatchSpreadMV
	}
	b.ReportMetric(band, "mismatch-3sigma-mV")
}

// BenchmarkFig6ModelEvaluation runs a full calibration (golden sweeps +
// least-squares fits) and reports the supply-model RMS error — the paper's
// headline 0.88 mV.
func BenchmarkFig6ModelEvaluation(b *testing.B) {
	var rms float64
	for i := 0; i < b.N; i++ {
		model, err := core.Calibrate(core.DefaultCalibration())
		if err != nil {
			b.Fatal(err)
		}
		rms = model.Report.VDDRMSVolts
	}
	b.ReportMetric(rms*1e3, "vdd-rms-mV")
}

// BenchmarkFig7DesignSpace runs the 48-corner exploration (paper Fig. 7).
func BenchmarkFig7DesignSpace(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mets, err := dse.Sweep(ctx.Model, dse.DefaultGrid(), 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(mets) != 48 {
			b.Fatalf("%d corners", len(mets))
		}
	}
}

// BenchmarkTable1SelectedCorners applies the corner-selection rules (paper
// Table I) and reports the fom corner's error and energy (paper: 4.78 LSB,
// 44 fJ).
func BenchmarkTable1SelectedCorners(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var sel dse.Selection
	for i := 0; i < b.N; i++ {
		mets, err := dse.Sweep(ctx.Model, dse.DefaultGrid(), 0)
		if err != nil {
			b.Fatal(err)
		}
		sel, err = dse.Select(mets)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sel.FOM.EpsMul, "fom-eps-LSB")
	b.ReportMetric(sel.FOM.EMul*1e15, "fom-E-fJ")
	b.ReportMetric((ctx.Model.Energy.WriteEnergy(1.0, 27)+sel.FOM.EMul)*1e12, "op-energy-pJ")
}

// BenchmarkFig8CornerAnalysis profiles the selected corners by expected
// result and under supply/temperature excursions (paper Fig. 8).
func BenchmarkFig8CornerAnalysis(b *testing.B) {
	ctx := benchContext(b)
	if _, err := ctx.Selection(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2ImageNetDNN runs the reduced application-analysis protocol
// on the ImageNet substitute (paper Table II; full protocol via
// cmd/optima-dnn) and reports the fom-vs-INT4 top-1 gap.
func BenchmarkTable2ImageNetDNN(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var gap float64
	for i := 0; i < b.N; i++ {
		data, err := ctx.RunDNN(exp.BenchDNNScale())
		if err != nil {
			b.Fatal(err)
		}
		gap = data.ImageNet[0].Int4[0] - data.ImageNet[0].Fom[0]
	}
	b.ReportMetric(gap, "fom-top1-drop-pct")
}

// BenchmarkTable3CIFARDNN runs the transfer-learning protocol on the
// CIFAR substitute (paper Table III) with the smallest scale.
func BenchmarkTable3CIFARDNN(b *testing.B) {
	ctx := benchContext(b)
	scale := exp.BenchDNNScale()
	scale.Models = scale.Models[:1]
	b.ResetTimer()
	var gap float64
	for i := 0; i < b.N; i++ {
		data, err := ctx.RunDNN(scale)
		if err != nil {
			b.Fatal(err)
		}
		gap = data.CIFAR[0].Int4[0] - data.CIFAR[0].Fom[0]
	}
	b.ReportMetric(gap, "fom-top1-drop-pct")
}

// BenchmarkSpeedupInputSpace measures the behavioral-vs-golden speed-up for
// full input-space iteration (paper: ~101×).
func BenchmarkSpeedupInputSpace(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := ctx.SpeedupInputSpace(fomCfg())
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.Speedup()
	}
	b.ReportMetric(speedup, "speedup-x")
}

// BenchmarkSpeedupMonteCarlo measures the behavioral-vs-golden speed-up for
// mismatch Monte-Carlo sampling (paper: 28.1×).
func BenchmarkSpeedupMonteCarlo(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := ctx.SpeedupMonteCarlo(fomCfg(), 100)
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.Speedup()
	}
	b.ReportMetric(speedup, "speedup-x")
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---

// BenchmarkAblationEventKernel compares evaluating a multiplication through
// the discrete-event kernel (the paper's SystemVerilog-like flow) against
// direct model calls — the cost of the event abstraction.
func BenchmarkAblationEventKernel(b *testing.B) {
	ctx := benchContext(b)
	m, err := mult.NewBehavioral(ctx.Model, fomCfg(), device.Nominal())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("events", func(b *testing.B) {
		m.UseEvents = true
		for i := 0; i < b.N; i++ {
			if _, err := m.Multiply(uint(i)&15, uint(i>>4)&15, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		m.UseEvents = false
		for i := 0; i < b.N; i++ {
			if _, err := m.Multiply(uint(i)&15, uint(i>>4)&15, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMismatchSampling compares deterministic evaluation with
// the paper's per-operation mismatch sampling.
func BenchmarkAblationMismatchSampling(b *testing.B) {
	ctx := benchContext(b)
	m, err := mult.NewBehavioral(ctx.Model, fomCfg(), device.Nominal())
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	b.Run("deterministic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Multiply(uint(i)&15, 9, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Multiply(uint(i)&15, 9, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGoldenTransient measures one golden bit-line discharge — the
// cost unit the speed-up claims compare against.
func BenchmarkGoldenTransient(b *testing.B) {
	tech := device.Generic65()
	cond := device.Nominal()
	for i := 0; i < b.N; i++ {
		dp := spice.NewDischargePath(tech, 0.9, cond)
		if _, err := dp.Discharge(2e-9, spice.DefaultConfig(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBehavioralModelEval measures one discharge-model evaluation —
// the cost unit of OPTIMA's event-based flow.
func BenchmarkBehavioralModelEval(b *testing.B) {
	ctx := benchContext(b)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ctx.Model.Discharge.VBL(1e-9, 0.8, 1.0, 27)
	}
	_ = sink
}

// BenchmarkAblationNonlinearDAC compares the paper's linear DAC against the
// trimmed nonlinear DAC extension (AID [15], which the paper cites as a
// potential solution to the quantization nonlinearity), reporting the
// deterministic input-space error of each.
func BenchmarkAblationNonlinearDAC(b *testing.B) {
	ctx := benchContext(b)
	linear, err := mult.NewBehavioral(ctx.Model, fomCfg(), device.Nominal())
	if err != nil {
		b.Fatal(err)
	}
	dac, err := mult.CalibrateNonlinearDAC(ctx.Model, fomCfg())
	if err != nil {
		b.Fatal(err)
	}
	trimmed, err := linear.WithNonlinearDAC(dac)
	if err != nil {
		b.Fatal(err)
	}
	sweepErr := func(b *testing.B, m *mult.Behavioral) float64 {
		var sum float64
		var n int
		for i := 0; i < b.N; i++ {
			for a := uint(0); a <= 15; a++ {
				for d := uint(0); d <= 15; d++ {
					r, err := m.Multiply(a, d, nil)
					if err != nil {
						b.Fatal(err)
					}
					e := r.ErrorLSB()
					if e < 0 {
						e = -e
					}
					sum += float64(e)
					n++
				}
			}
		}
		return sum / float64(n)
	}
	b.Run("linear-dac", func(b *testing.B) {
		b.ReportMetric(sweepErr(b, linear), "eps-LSB")
	})
	b.Run("nonlinear-dac", func(b *testing.B) {
		b.ReportMetric(sweepErr(b, trimmed), "eps-LSB")
	})
}

// BenchmarkAblationAnalogAccumulation compares K separate multiply+convert
// operations against the restored IMAC-style analog accumulation (the step
// the paper omitted), reporting energy per product.
func BenchmarkAblationAnalogAccumulation(b *testing.B) {
	ctx := benchContext(b)
	m, err := mult.NewBehavioral(ctx.Model, fomCfg(), device.Nominal())
	if err != nil {
		b.Fatal(err)
	}
	as := []uint{3, 7, 12, 1, 9, 15, 2, 5}
	ds := []uint{5, 2, 11, 14, 9, 15, 8, 6}
	b.Run("separate", func(b *testing.B) {
		var energy float64
		for i := 0; i < b.N; i++ {
			energy = 0
			for k := range as {
				r, err := m.Multiply(as[k], ds[k], nil)
				if err != nil {
					b.Fatal(err)
				}
				energy += r.Energy
			}
		}
		b.ReportMetric(energy/float64(len(as))*1e15, "fJ/product")
	})
	b.Run("accumulated", func(b *testing.B) {
		dp := mult.NewDotProduct(m)
		var energy float64
		for i := 0; i < b.N; i++ {
			r, err := dp.Compute(as, ds, nil)
			if err != nil {
				b.Fatal(err)
			}
			energy = r.Energy
		}
		b.ReportMetric(energy/float64(len(as))*1e15, "fJ/product")
	})
}
