// Package claimsafety is the expected-diagnostic corpus for the
// claim-safety analyzer: the PR 3 stuck-waiter shape (a claim whose done
// channel closes only on the happy path past a call that can panic), next
// to the defer-based resolution that is always safe.
package claimsafety

import "errors"

type metrics struct{ v float64 }

type store interface {
	Get(string) (metrics, bool)
}

type backend struct{}

func (backend) Evaluate(key string) (metrics, error) { return metrics{}, nil }

type entry struct {
	done chan struct{}
	met  metrics
	err  error
}

type cache struct {
	entries map[string]*entry
	store   store
}

// badStoreClaim takes a claim, consults the store (arbitrary code behind an
// interface), and closes only if that call returns.
func (c *cache) badStoreClaim(key string) *entry {
	ent := &entry{done: make(chan struct{})}
	c.entries[key] = ent
	if met, ok := c.store.Get(key); ok {
		ent.met = met
		close(ent.done) // want "strands the claim"
	}
	return ent
}

// badEvalClaim is the original stuck-waiter: a panicking evaluator skips
// the close and every waiter on the claim hangs forever.
func (c *cache) badEvalClaim(key string, b backend) *entry {
	ent := &entry{done: make(chan struct{})}
	c.entries[key] = ent
	ent.met, ent.err = b.Evaluate(key)
	close(ent.done) // want "strands the claim"
	return ent
}

// goodDeferClaim closes via defer: every path, panic included, resolves the
// claim.
func (c *cache) goodDeferClaim(key string, b backend) *entry {
	ent := &entry{done: make(chan struct{})}
	c.entries[key] = ent
	defer close(ent.done)
	ent.met, ent.err = b.Evaluate(key)
	return ent
}

// goodResolveOnly closes a claim taken elsewhere: without a claim in this
// function there is no panic window to flag.
func (c *cache) goodResolveOnly(ent *entry) {
	ent.err = errors.New("abandoned")
	close(ent.done)
}
