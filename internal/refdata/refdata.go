// Package refdata holds published reference data: the state-of-the-art
// design points of the paper's Fig. 1 and every number the paper reports in
// its evaluation (Table I–III, Fig. 6 RMS errors, headline claims). The
// experiment harness prints these next to measured values so that every
// reproduction artifact is a paper-vs-measured comparison.
package refdata

// DesignPoint is one published in-SRAM multiplier design (Fig. 1).
type DesignPoint struct {
	Ref      string  // citation key as in the paper
	Name     string  // design name
	Venue    string  // publication venue and year
	EnergyPJ float64 // energy per MAC/operation [pJ]
	ClockMHz float64 // operating clock [MHz]
	BitWidth int     // operand bit width [bits]
	Flavor   string  // discharge/charge/time domain
}

// Figure1 returns the state-of-the-art design points compared in the
// paper's Fig. 1 (energy, clock and bit-width potential of in-SRAM
// multiplication designs [8], [14], [15], [16]).
func Figure1() []DesignPoint {
	return []DesignPoint{
		{
			Ref: "[8]", Name: "IMAC", Venue: "TCAS-I 2020",
			EnergyPJ: 1.0, ClockMHz: 125, BitWidth: 4,
			Flavor: "discharge (current domain)",
		},
		{
			Ref: "[14]", Name: "Sanni et al.", Venue: "ISCAS 2018",
			EnergyPJ: 9.1, ClockMHz: 20, BitWidth: 6,
			Flavor: "charge based",
		},
		{
			Ref: "[15]", Name: "AID", Venue: "DATE 2022",
			EnergyPJ: 0.76, ClockMHz: 250, BitWidth: 4,
			Flavor: "discharge with nonlinear DAC",
		},
		{
			Ref: "[16]", Name: "Gong et al.", Venue: "TCAS-II 2020",
			EnergyPJ: 0.735, ClockMHz: 100, BitWidth: 8,
			Flavor: "thermometer time/charge",
		},
	}
}

// PaperRMS holds the paper's Fig. 6 RMS modeling errors.
type PaperRMS struct {
	BaseMV, VDDMV, TempMV, SigmaMV float64 // [mV]
	WriteFJ, DischargeFJ           float64 // [fJ]
}

// Figure6RMS returns the paper's reported model fit errors.
func Figure6RMS() PaperRMS {
	return PaperRMS{
		BaseMV: 0.76, VDDMV: 0.88, TempMV: 0.76, SigmaMV: 0.59,
		WriteFJ: 0.15, DischargeFJ: 0.74,
	}
}

// CornerRow is one row of the paper's Table I.
type CornerRow struct {
	Name      string
	Tau0NS    float64 // [ns]
	VDAC0     float64 // [V]
	VDACFS    float64 // [V]
	EpsMulLSB float64 // ϵ_mul [LSB]
	EMulFJ    float64 // E_mul [fJ]
}

// Table1 returns the paper's selected design corners.
func Table1() []CornerRow {
	return []CornerRow{
		{Name: "fom", Tau0NS: 0.16, VDAC0: 0.3, VDACFS: 1.0, EpsMulLSB: 4.78, EMulFJ: 44},
		{Name: "power", Tau0NS: 0.16, VDAC0: 0.3, VDACFS: 0.7, EpsMulLSB: 15, EMulFJ: 37},
		{Name: "variation", Tau0NS: 0.24, VDAC0: 0.4, VDACFS: 1.0, EpsMulLSB: 9.6, EMulFJ: 69.8},
	}
}

// DNNRow is one row of the paper's Table II (ImageNet) or Table III
// (CIFAR-10). Top5 entries are zero where the paper does not report them.
type DNNRow struct {
	Model         string
	MultsBillions float64 // number of multiplications per inference [×10⁹]
	Float32Top1   float64
	Float32Top5   float64
	Int4Top1      float64
	Int4Top5      float64
	FomTop1       float64
	FomTop5       float64
	PowerTop1     float64
	PowerTop5     float64
	VariationTop1 float64
	VariationTop5 float64
}

// Table2ImageNet returns the paper's ImageNet accuracies.
func Table2ImageNet() []DNNRow {
	return []DNNRow{
		{Model: "VGG16", MultsBillions: 15.61,
			Float32Top1: 70.30, Float32Top5: 90.10, Int4Top1: 69.25, Int4Top5: 89.62,
			FomTop1: 68.97, FomTop5: 89.11, PowerTop1: 64.45, PowerTop5: 81.79,
			VariationTop1: 38.22, VariationTop5: 47.81},
		{Model: "VGG19", MultsBillions: 19.77,
			Float32Top1: 71.30, Float32Top5: 90.00, Int4Top1: 70.09, Int4Top5: 89.78,
			FomTop1: 69.91, FomTop5: 89.24, PowerTop1: 63.34, PowerTop5: 79.61,
			VariationTop1: 36.66, VariationTop5: 48.37},
		{Model: "ResNet50", MultsBillions: 4.14,
			Float32Top1: 74.90, Float32Top5: 92.10, Int4Top1: 73.48, Int4Top5: 91.75,
			FomTop1: 73.39, FomTop5: 91.65, PowerTop1: 61.56, PowerTop5: 80.88,
			VariationTop1: 48.07, VariationTop5: 56.71},
		{Model: "ResNet101", MultsBillions: 7.87,
			Float32Top1: 76.40, Float32Top5: 92.80, Int4Top1: 75.12, Int4Top5: 91.91,
			FomTop1: 74.95, FomTop5: 91.63, PowerTop1: 59.77, PowerTop5: 78.49,
			VariationTop1: 48.45, VariationTop5: 53.19},
	}
}

// Table3CIFAR returns the paper's CIFAR-10 top-1 accuracies.
func Table3CIFAR() []DNNRow {
	return []DNNRow{
		{Model: "VGG16", Float32Top1: 92.24, Int4Top1: 92.04, FomTop1: 91.98, PowerTop1: 87.39, VariationTop1: 68.10},
		{Model: "VGG19", Float32Top1: 92.71, Int4Top1: 92.42, FomTop1: 92.29, PowerTop1: 89.79, VariationTop1: 66.85},
		{Model: "ResNet50", Float32Top1: 93.10, Int4Top1: 92.86, FomTop1: 92.83, PowerTop1: 90.81, VariationTop1: 73.83},
		{Model: "ResNet101", Float32Top1: 93.35, Int4Top1: 93.06, FomTop1: 93.04, PowerTop1: 90.42, VariationTop1: 69.77},
	}
}

// Headline numbers from the abstract and conclusion.
const (
	// SpeedupInputSpace is the reported simulation speed-up for iteration
	// over the input space and design corners versus Cadence Virtuoso.
	SpeedupInputSpace = 101.0
	// SpeedupMonteCarlo is the reported speed-up for mismatch Monte-Carlo
	// sampling.
	SpeedupMonteCarlo = 28.1
	// HeadlineRMSmV is the headline RMS modeling error (supply model) [mV].
	HeadlineRMSmV = 0.88
	// EnergyPerOpPJ is the average energy per 4-bit operation including
	// write and multiplication [pJ].
	EnergyPerOpPJ = 1.05
	// WorstCaseSigmaMV is the worst-case analog standard deviation [mV].
	WorstCaseSigmaMV = 5.04
	// AvgErrorFomLSB is the fom corner's average multiplication error [LSB].
	AvgErrorFomLSB = 4.8
	// ClockMHz is the operating frequency of the optimized multiplier.
	ClockMHz = 167.0
)
