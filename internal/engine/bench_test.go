package engine_test

import (
	"os"
	"runtime"
	"sync"
	"testing"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/obs"
	"optima/internal/store"
)

var (
	benchOnce  sync.Once
	benchModel *core.Model
	benchErr   error
)

func benchModelFixture(b *testing.B) *core.Model {
	b.Helper()
	benchOnce.Do(func() {
		benchModel, benchErr = core.Calibrate(core.QuickCalibration())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchModel
}

// benchJobs is the paper's 48-corner grid at the nominal condition.
func benchJobs() []engine.Job {
	return engine.Jobs(dse.DefaultGrid().Configs(), device.Nominal())
}

// BenchmarkBehavioralEvaluate tracks the per-corner cost of the behavioral
// backend's hot loop — one full 16x16 operand sweep per Evaluate call,
// served by the deterministic per-condition tables (allocation-free).
func BenchmarkBehavioralEvaluate(b *testing.B) {
	model := benchModelFixture(b)
	backend := engine.Behavioral{Model: model}
	cfg := dse.DefaultGrid().Configs()[0]
	cond := device.Nominal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.Evaluate(cfg, cond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateMatrix tracks the cross-condition evaluation plane: the
// paper's 48-corner grid at 1 vs 5 operating conditions, cold (every cell
// runs the backend) vs warm (every cell is a memory-tier hit). The 5-
// condition cold case is the Fig. 8 robust-sweep workload; warm is what a
// robust search rung pays when it revisits the plane.
func BenchmarkEvaluateMatrix(b *testing.B) {
	model := benchModelFixture(b)
	cfgs := dse.DefaultGrid().Configs()
	conds5, err := engine.ParseConditionSet("TT@1V@27C,SS@0.9V@60C,FF@1.1V@0C,TT@0.95V@45C,TT@1.05V@10C")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		conds engine.ConditionSet
	}{
		{"conds=1", engine.NominalConditions()},
		{"conds=5", conds5},
	} {
		b.Run(tc.name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := engine.New(engine.Behavioral{Model: model}, runtime.NumCPU())
				if _, err := eng.EvaluateMatrix(cfgs, tc.conds); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/warm", func(b *testing.B) {
			eng := engine.New(engine.Behavioral{Model: model}, runtime.NumCPU())
			if _, err := eng.EvaluateMatrix(cfgs, tc.conds); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.EvaluateMatrix(cfgs, tc.conds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSweep tracks the two wins the engine exists for: worker
// fan-out on a cold sweep (workers=1 vs workers=NumCPU) and the
// content-addressed cache (cold vs cached re-sweep, the ≥5× acceptance
// target).
func BenchmarkEngineSweep(b *testing.B) {
	model := benchModelFixture(b)
	jobs := benchJobs()

	b.Run("cold/workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.New(engine.Behavioral{Model: model}, 1)
			if _, err := eng.EvaluateAll(jobs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold/workers=numcpu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.New(engine.Behavioral{Model: model}, runtime.NumCPU())
			if _, err := eng.EvaluateAll(jobs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		eng := engine.New(engine.Behavioral{Model: model}, runtime.NumCPU())
		if _, err := eng.EvaluateAll(jobs); err != nil {
			b.Fatal(err) // warm the cache outside the timed loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.EvaluateAll(jobs); err != nil {
				b.Fatal(err)
			}
		}
		st := eng.Stats()
		b.ReportMetric(float64(st.Hits), "cache-hits")
	})
	// warm-from-disk: a fresh engine (a new "process") served entirely by
	// the persistent store — the cross-run/CI reuse the store exists for.
	// Set OPTIMA_BENCH_CACHE to a directory to carry the store across bench
	// invocations (CI does, via actions/cache).
	b.Run("warm-from-disk", func(b *testing.B) {
		dir := os.Getenv("OPTIMA_BENCH_CACHE")
		if dir == "" {
			dir = b.TempDir()
		}
		fp, err := store.Fingerprint(engine.MetricsSchema, model)
		if err != nil {
			b.Fatal(err)
		}
		seed, err := store.Open(dir, store.Options{Fingerprint: fp})
		if err != nil {
			b.Fatal(err)
		}
		// Populate (or verify) the store outside the timed loop; with a
		// carried-over cache directory this is itself disk-served.
		if _, err := engine.New(engine.Behavioral{Model: model}, runtime.NumCPU()).WithStore(seed).EvaluateAll(jobs); err != nil {
			b.Fatal(err)
		}
		if err := seed.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := store.Open(dir, store.Options{Fingerprint: fp})
			if err != nil {
				b.Fatal(err)
			}
			eng := engine.New(engine.Behavioral{Model: model}, runtime.NumCPU()).WithStore(st)
			if _, err := eng.EvaluateAll(jobs); err != nil {
				b.Fatal(err)
			}
			es := eng.Stats()
			if es.Misses != 0 {
				b.Fatalf("warm-from-disk run recomputed %d corners", es.Misses)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecorderOverhead pins the tentpole's cost ceiling: the same
// cold 48-corner sweep with no recorder vs a fully attached one (spans +
// counters + histograms on every evaluation). CI gates the instrumented
// case like any other benchmark; the target is < 5% ns/op over nil.
func BenchmarkRecorderOverhead(b *testing.B) {
	model := benchModelFixture(b)
	jobs := benchJobs()
	run := func(rec *obs.Recorder) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := engine.New(engine.Behavioral{Model: model}, runtime.NumCPU()).WithRecorder(rec)
				if _, err := eng.EvaluateAll(jobs); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("nil", run(nil))
	b.Run("instrumented", run(obs.NewRecorder(obs.RecorderOptions{})))
}
