package mult

import (
	"testing"

	"optima/internal/core"
	"optima/internal/device"
)

// detTestConditions exercises the table at nominal and at a non-nominal
// supply/temperature corner (distinct tables).
func detTestConditions() []device.PVT {
	return []device.PVT{
		device.Nominal(),
		{Corner: device.CornerSS, VDD: 0.9, TempC: 60},
	}
}

// TestMultiplyDetMatchesMultiply pins the fast path's contract: over the
// full input space, at every test condition, with linear and trimmed DACs,
// MultiplyDet returns exactly the Result of Multiply(a, d, nil) — down to
// the last float bit, because the engine's persisted metrics are built on
// that equivalence.
func TestMultiplyDetMatchesMultiply(t *testing.T) {
	model := testModel(t)
	for _, cfg := range []Config{fomConfig(), powerConfig()} {
		for _, cond := range detTestConditions() {
			b, err := NewBehavioral(model, cfg, cond)
			if err != nil {
				t.Fatal(err)
			}
			muls := []*Behavioral{b}
			if dac, err := CalibrateNonlinearDAC(model, cfg); err == nil {
				nl, err := b.WithNonlinearDAC(dac)
				if err != nil {
					t.Fatal(err)
				}
				muls = append(muls, nl)
			}
			for mi, m := range muls {
				for a := uint(0); a <= OperandMax; a++ {
					for d := uint(0); d <= OperandMax; d++ {
						want, err := m.Multiply(a, d, nil)
						if err != nil {
							t.Fatal(err)
						}
						got, err := m.MultiplyDet(a, d)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("cfg %v cond %+v mul %d: MultiplyDet(%d,%d) =\n%+v, Multiply gives\n%+v",
								cfg, cond, mi, a, d, got, want)
						}
					}
				}
			}
		}
	}
}

// TestMultiplyDetFallback: a Behavioral assembled without NewBehavioral has
// no table; MultiplyDet must still answer (via direct model evaluation)
// rather than misbehave.
func TestMultiplyDetFallback(t *testing.T) {
	b := &Behavioral{
		Model: testModel(t), Cfg: fomConfig(), Cond: device.Nominal(),
		LSBVolt: 1e-3,
	}
	got, err := b.MultiplyDet(9, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := b.multiplyDirect(9, 7, nil)
	if got != want {
		t.Fatalf("table-less MultiplyDet = %+v, direct path gives %+v", got, want)
	}
}

// TestMultiplyDetStaleTableFallback: mutating Cond after construction must
// not serve the old condition's table.
func TestMultiplyDetStaleTableFallback(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	b.Cond.VDD = 0.9
	got, err := b.MultiplyDet(15, 15)
	if err != nil {
		t.Fatal(err)
	}
	want := b.multiplyDirect(15, 15, nil)
	if got != want {
		t.Fatalf("stale-table MultiplyDet = %+v, direct path gives %+v", got, want)
	}
}

// TestMultiplyDetRangeChecked mirrors TestOperandRangeChecked for the fast
// path.
func TestMultiplyDetRangeChecked(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.MultiplyDet(16, 3); err == nil {
		t.Fatal("a = 16 accepted")
	}
	if _, err := b.MultiplyDet(3, 16); err == nil {
		t.Fatal("d = 16 accepted")
	}
}

var detSink Result

// TestMultiplyDetZeroAlloc is the hot-loop guarantee the engine's
// Behavioral backend relies on: one deterministic multiplication allocates
// nothing (the event-kernel path pays a simulator, signals and closures per
// call).
func TestMultiplyDetZeroAlloc(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	a, d := uint(0), uint(0)
	allocs := testing.AllocsPerRun(1000, func() {
		detSink, _ = b.MultiplyDet(a, d)
		a = (a + 1) & OperandMax
		d = (d + 5) & OperandMax
	})
	if allocs != 0 {
		t.Fatalf("MultiplyDet allocates %.1f objects per call, want 0", allocs)
	}
}

// TestNewBehavioralSharesNominalTable: at the nominal condition the trim
// table and the evaluation table are one allocation, and a non-nominal
// condition gets its own.
func TestNewBehavioralSharesNominalTable(t *testing.T) {
	model := testModel(t)
	b, err := NewBehavioral(model, fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if b.det == nil || b.det.vdd != device.NominalVDD {
		t.Fatalf("nominal multiplier has table %+v", b.det)
	}
	cond := device.PVT{Corner: device.CornerTT, VDD: 0.9, TempC: 85}
	b2, err := NewBehavioral(model, fomConfig(), cond)
	if err != nil {
		t.Fatal(err)
	}
	if b2.det == nil || b2.det.vdd != 0.9 || b2.det.tempC != 85 {
		t.Fatalf("corner multiplier has table for wrong condition: %+v", b2.det)
	}
	// Same trim either way: the fit always runs at nominal.
	if b.LSBVolt != b2.LSBVolt || b.OffsetVolt != b2.OffsetVolt {
		t.Fatalf("trim differs across conditions: (%g,%g) vs (%g,%g)",
			b.LSBVolt, b.OffsetVolt, b2.LSBVolt, b2.OffsetVolt)
	}
}

// TestDetTableAgainstModel spot-checks the table contents against direct
// model calls — the table is a cache, never an approximation.
func TestDetTableAgainstModel(t *testing.T) {
	model := testModel(t)
	cond := device.PVT{Corner: device.CornerFF, VDD: 1.1, TempC: 0}
	b, err := NewBehavioral(model, fomConfig(), cond)
	if err != nil {
		t.Fatal(err)
	}
	tab := b.det
	for a := uint(0); a <= OperandMax; a++ {
		vwl := b.wordLineVoltage(a, cond.VDD)
		if tab.vwl[a] != vwl {
			t.Fatalf("vwl[%d] = %g, model gives %g", a, tab.vwl[a], vwl)
		}
		for i := 0; i < OperandBits; i++ {
			bt := b.Cfg.BitTime(i)
			dv := cond.VDD - model.Discharge.VBL(bt, vwl, cond.VDD, cond.TempC)
			if dv < 0 {
				dv = 0
			}
			if tab.dv[a][i] != dv {
				t.Fatalf("dv[%d][%d] = %g, model gives %g", a, i, tab.dv[a][i], dv)
			}
			if sig := model.Discharge.SigmaAt(bt, vwl); tab.sigma[a][i] != sig {
				t.Fatalf("sigma[%d][%d] = %g, model gives %g", a, i, tab.sigma[a][i], sig)
			}
			if e := model.Energy.DischargeEnergy(true, cond.VDD, dv, cond.TempC); tab.energy[a][i] != e {
				t.Fatalf("energy[%d][%d] = %g, model gives %g", a, i, tab.energy[a][i], e)
			}
		}
	}
}

// BenchmarkMultiplyDet measures the deterministic fast path against the
// event-kernel and direct paths it replaces on the engine's hot loop.
func BenchmarkMultiplyDet(b *testing.B) {
	model, err := core.Calibrate(core.QuickCalibration())
	if err != nil {
		b.Fatal(err)
	}
	bm, err := NewBehavioral(model, fomConfig(), device.Nominal())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("det", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			detSink, _ = bm.MultiplyDet(uint(i)&OperandMax, uint(i>>4)&OperandMax)
		}
	})
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			detSink = bm.multiplyDirect(uint(i)&OperandMax, uint(i>>4)&OperandMax, nil)
		}
	})
	b.Run("events", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			detSink, _ = bm.multiplyEvents(uint(i)&OperandMax, uint(i>>4)&OperandMax, nil)
		}
	})
}
