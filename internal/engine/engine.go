// Package engine is the unified concurrent evaluation service of the
// reproduction: every corner/condition evaluation — the paper's 48-corner
// design-space sweep, the PVT robustness sweeps, and the figure/table
// regenerations that revisit the same configurations — is submitted here
// instead of rolling its own concurrency.
//
// The engine separates *evaluation* from *exploration* (the compiler-style
// split of OpenACM): exploration layers (internal/dse, internal/exp) decide
// which (config, condition) jobs to run; the engine decides how — a bounded
// worker pool with deterministic result ordering, a content-addressed
// in-memory result cache keyed on (backend, config, condition), and a
// pluggable Backend so the same sweep can run against the fast behavioral
// models or the golden transient solver (or both, for comparison mode).
package engine

import (
	"fmt"
	"runtime"
	"sync"

	"optima/internal/device"
	"optima/internal/mult"
	"optima/internal/sched"
)

// Job is one unit of evaluation work: score a multiplier configuration at
// an operating condition over the full input space.
type Job struct {
	Config mult.Config
	Cond   device.PVT
}

// Key content-addresses one evaluation result: the backend identity plus
// the job. Config and PVT are flat value structs, so Key is comparable and
// two jobs collide exactly when they would produce the same result.
type Key struct {
	Backend string
	Job
}

// Stats reports the engine's cache accounting.
type Stats struct {
	// Hits counts evaluations served from the cache (including waits on an
	// in-flight computation of the same key).
	Hits uint64
	// Misses counts evaluations that ran the backend.
	Misses uint64
	// Entries is the number of distinct results held.
	Entries int
}

// String renders the accounting for log lines.
func (s Stats) String() string {
	return fmt.Sprintf("%d evaluated, %d cache hits, %d entries", s.Misses, s.Hits, s.Entries)
}

// entry is one cache slot. done is closed when met/err are valid, so
// concurrent submitters of the same key wait instead of recomputing.
type entry struct {
	done chan struct{}
	met  Metrics
	err  error
}

// Engine is a memoizing concurrent evaluation service over one backend.
// All methods are safe for concurrent use.
type Engine struct {
	backend Backend
	workers int

	mu     sync.Mutex
	cache  map[Key]*entry
	hits   uint64
	misses uint64
}

// New returns an engine over the given backend. workers bounds the worker
// pool of EvaluateAll; workers <= 0 uses GOMAXPROCS.
func New(backend Backend, workers int) *Engine {
	return &Engine{backend: backend, workers: workers, cache: map[Key]*entry{}}
}

// Backend returns the engine's backend.
func (e *Engine) Backend() Backend { return e.backend }

// Workers returns the effective worker-pool bound.
func (e *Engine) Workers() int {
	if e.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.workers
}

// Stats returns a snapshot of the cache accounting.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Hits: e.hits, Misses: e.misses, Entries: len(e.cache)}
}

// Evaluate scores one job, serving repeats from the cache. Concurrent
// submissions of the same key share a single backend evaluation. Errors are
// cached too: backends are deterministic, so a failing corner fails the
// same way every time.
func (e *Engine) Evaluate(cfg mult.Config, cond device.PVT) (Metrics, error) {
	key := Key{Backend: e.backend.Name(), Job: Job{Config: cfg, Cond: cond}}
	e.mu.Lock()
	if ent, ok := e.cache[key]; ok {
		e.hits++
		e.mu.Unlock()
		<-ent.done
		return ent.met, ent.err
	}
	e.misses++
	ent := &entry{done: make(chan struct{})}
	e.cache[key] = ent
	e.mu.Unlock()

	ent.met, ent.err = e.backend.Evaluate(cfg, cond)
	close(ent.done)
	return ent.met, ent.err
}

// EvaluateAll scores every job on the shared scheduler (internal/sched)
// and returns the metrics in job order — the result is independent of the
// worker count. The first error (by job index) aborts the sweep.
func (e *Engine) EvaluateAll(jobs []Job) ([]Metrics, error) {
	return sched.Map(e.Workers(), jobs, func(_ int, j Job) (Metrics, error) {
		m, err := e.Evaluate(j.Config, j.Cond)
		if err != nil {
			return Metrics{}, fmt.Errorf("engine: %s corner %v: %w", e.backend.Name(), j.Config, err)
		}
		return m, nil
	})
}

// Jobs expands a configuration list at one condition.
func Jobs(cfgs []mult.Config, cond device.PVT) []Job {
	jobs := make([]Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = Job{Config: cfg, Cond: cond}
	}
	return jobs
}
