// Package core implements the paper's primary contribution: OPTIMA's
// parameterized behavioral models for 6T-SRAM bit-line discharge and energy
// (Eq. 3–8), their least-squares calibration against golden circuit
// simulation data, and the fast PVT/mismatch-aware evaluation used by the
// event-based simulation flow.
//
// Model structure (paper Section IV):
//
//	Eq. 3  V_BL(t, V_WL)            = VDD + p4(Vod)·p2(t),  Vod = V_WL − Vth
//	Eq. 4  V_BL(t, V_WL, VDD)       = V_BL(t, V_WL) · p2(ΔVDD)
//	Eq. 5  V_BL(t, V_WL, VDD, T)    = … + t·(T − Tnom)·p3(V_WL)
//	Eq. 6  σ(t, V_WL)               = p3(t)·p3(V_WL)          (mismatch)
//	Eq. 7  E_wr(VDD, T)             = p2(VDD)·p1(T)
//	Eq. 8  E_dc(d, VDD, V_WL, T)    = p1(VDD)·p3(ΔV_BL)·p1(T)
//
// All polynomial coefficients are obtained by least-squares fits to golden
// simulation sweeps (package spice). Time enters the models in nanoseconds
// and voltages in volts so that the fitted coefficients are well scaled.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"

	"optima/internal/device"
	"optima/internal/poly"
)

// ErrModel is returned for structurally invalid models.
var ErrModel = errors.New("core: invalid model")

// timeScale converts seconds to the nanosecond units used inside the fits.
const timeScale = 1e9

// WLSupplySensitivity is the fraction of a relative supply excursion that
// appears on the word-line DAC output. The DACs share the array's rail but
// are referenced to a bandgap-derived mid-scale, so their outputs track the
// supply only partially (the paper: "supply voltage changes do not only
// affect the SRAM circuit, but also the thresholds of ADCs and DACs").
const WLSupplySensitivity = 0.22

// SupplyScaledVWL returns the effective word-line voltage for a nominal DAC
// code voltage under a supply excursion. Both the golden supply sweeps and
// the behavioral evaluation use this convention.
func SupplyScaledVWL(vwlNominal, vdd float64) float64 {
	return vwlNominal * (1 + WLSupplySensitivity*(vdd-device.NominalVDD)/device.NominalVDD)
}

// DischargeModel is the calibrated OPTIMA bit-line discharge model
// (Eq. 3–6). The zero value is unusable; obtain instances from Calibrate or
// LoadModel.
type DischargeModel struct {
	// VthRef is the overdrive reference: Vod = V_WL − VthRef.
	VthRef float64 `json:"vth_ref"`
	// VDDNom and TnomC anchor the variation terms.
	VDDNom float64 `json:"vdd_nom"`
	TnomC  float64 `json:"tnom_c"`
	// Base is Eq. 3: ΔV-part of V_BL as PX(Vod)·PY(t_ns).
	Base poly.Separable `json:"base"`
	// VDDFactor is Eq. 4's p2(ΔVDD).
	VDDFactor poly.Polynomial `json:"vdd_factor"`
	// TempSlope is Eq. 5's p3(V_WL); the additive term is
	// t_ns·(T−Tnom)·TempSlope(V_WL).
	TempSlope poly.Polynomial `json:"temp_slope"`
	// Sigma is Eq. 6: σ(t,V_WL) = PX(t_ns)·PY(V_WL).
	Sigma poly.Separable `json:"sigma"`
}

// VBLBase evaluates Eq. 3 at nominal supply and temperature.
func (m *DischargeModel) VBLBase(t, vwl float64) float64 {
	return m.VBLEq3(t, vwl, m.VDDNom)
}

// VBLEq3 evaluates Eq. 3 with the given supply as the additive rail term
// (the paper's Eq. 3 literally reads V_BL = VDD + p4(Vod)·p2(t), with VDD
// the actual supply: the bit line is pre-charged to the rail).
func (m *DischargeModel) VBLEq3(t, vwl, vdd float64) float64 {
	vod := vwl - m.VthRef
	return vdd + m.Base.PX.Eval(vod)*m.Base.PY.Eval(t*timeScale)
}

// VBL evaluates the full deterministic discharge model (Eq. 3–5) at time t
// [s], word-line voltage vwl [V], supply vdd [V] and temperature tempC [°C].
// Following the paper's iterative construction, the base model is anchored
// at the nominal supply and the multiplicative p2(ΔVDD) factor carries the
// entire supply dependence.
func (m *DischargeModel) VBL(t, vwl, vdd, tempC float64) float64 {
	v := m.VBLBase(t, vwl)
	v *= m.VDDFactor.Eval(vdd - m.VDDNom)
	v += t * timeScale * (tempC - m.TnomC) * m.TempSlope.Eval(vwl)
	return v
}

// DeltaV returns the modeled discharge VDD_effective − V_BL, clamped to be
// non-negative (the bit line cannot charge above the rail).
func (m *DischargeModel) DeltaV(t, vwl, vdd, tempC float64) float64 {
	d := vdd - m.VBL(t, vwl, vdd, tempC)
	if d < 0 {
		return 0
	}
	return d
}

// SigmaAt evaluates Eq. 6, the mismatch-induced standard deviation of the
// bit-line voltage at time t [s] and word-line voltage vwl [V]. The value is
// clamped to be non-negative (polynomial fits can dip below zero at the
// domain edges).
func (m *DischargeModel) SigmaAt(t, vwl float64) float64 {
	s := m.Sigma.PX.Eval(t*timeScale) * m.Sigma.PY.Eval(vwl)
	if s < 0 {
		return 0
	}
	return s
}

// SampleVBL draws one mismatch-perturbed bit-line voltage, following the
// paper's Monte-Carlo procedure: the Gaussian with σ from Eq. 6 is sampled
// for each discharge.
func (m *DischargeModel) SampleVBL(t, vwl, vdd, tempC float64, rng device.Gaussianer) float64 {
	return rng.Gaussian(m.VBL(t, vwl, vdd, tempC), m.SigmaAt(t, vwl))
}

// EnergyModel is the calibrated OPTIMA energy model (Eq. 7–8).
type EnergyModel struct {
	// Write is Eq. 7: E_wr(VDD, T) = PX(VDD)·PY(T) [J] for a full word.
	Write poly.Separable `json:"write"`
	// Discharge is Eq. 8: E_dc = P0(VDD)·P1(ΔV_BL)·P2(T) [J] per bit line.
	Discharge poly.Product `json:"discharge"`
}

// WriteEnergy evaluates Eq. 7 [J].
func (m *EnergyModel) WriteEnergy(vdd, tempC float64) float64 {
	return m.Write.PX.Eval(vdd) * m.Write.PY.Eval(tempC)
}

// DischargeEnergy evaluates Eq. 8 [J] for a single bit line recharge after a
// discharge of deltaV. A stored '0' (d = false) causes no discharge and no
// energy, as in the paper.
func (m *EnergyModel) DischargeEnergy(d bool, vdd, deltaV, tempC float64) float64 {
	if !d || deltaV <= 0 {
		return 0
	}
	return m.Discharge.Eval(vdd, deltaV, tempC)
}

// Model bundles the calibrated discharge and energy models together with
// fit diagnostics. This is the artifact OPTIMA produces and consumes.
type Model struct {
	// Version identifies the serialization schema.
	Version int `json:"version"`
	// Technology note for provenance (e.g. "generic-65nm").
	Technology string         `json:"technology"`
	Discharge  DischargeModel `json:"discharge"`
	Energy     EnergyModel    `json:"energy"`
	// Report carries the RMS fit errors (the paper's Fig. 6 numbers).
	Report FitReport `json:"report"`
}

// ModelVersion is the current serialization schema version.
const ModelVersion = 1

// FitReport holds the RMS modeling errors against golden simulation, in the
// same categories the paper reports: basic discharge, supply-voltage model,
// temperature model, mismatch σ, write energy and discharge energy.
// Paper values: 0.76 mV, 0.88 mV, 0.76 mV, 0.59 mV, 0.15 fJ, 0.74 fJ.
type FitReport struct {
	BaseRMSVolts   float64 `json:"base_rms_v"`
	VDDRMSVolts    float64 `json:"vdd_rms_v"`
	TempRMSVolts   float64 `json:"temp_rms_v"`
	SigmaRMSVolts  float64 `json:"sigma_rms_v"`
	WriteRMSJoules float64 `json:"write_rms_j"`
	DischRMSJoules float64 `json:"disch_rms_j"`
	// GoldenTransients counts the circuit simulations used for calibration.
	GoldenTransients int `json:"golden_transients"`
}

// String summarizes the report in the paper's units.
func (r FitReport) String() string {
	return fmt.Sprintf(
		"base %.2f mV, VDD %.2f mV, temp %.2f mV, sigma %.2f mV, write %.3f fJ, discharge %.3f fJ (%d golden transients)",
		r.BaseRMSVolts*1e3, r.VDDRMSVolts*1e3, r.TempRMSVolts*1e3, r.SigmaRMSVolts*1e3,
		r.WriteRMSJoules*1e15, r.DischRMSJoules*1e15, r.GoldenTransients)
}

// Validate checks structural invariants of a deserialized model.
func (m *Model) Validate() error {
	if m.Version != ModelVersion {
		return fmt.Errorf("core: model version %d, want %d: %w", m.Version, ModelVersion, ErrModel)
	}
	if len(m.Discharge.Base.PX.Coeffs) == 0 || len(m.Discharge.Base.PY.Coeffs) == 0 {
		return fmt.Errorf("core: missing base discharge polynomials: %w", ErrModel)
	}
	if len(m.Discharge.Sigma.PX.Coeffs) == 0 || len(m.Discharge.Sigma.PY.Coeffs) == 0 {
		return fmt.Errorf("core: missing mismatch polynomials: %w", ErrModel)
	}
	if len(m.Energy.Write.PX.Coeffs) == 0 || len(m.Energy.Discharge.Factors) == 0 {
		return fmt.Errorf("core: missing energy polynomials: %w", ErrModel)
	}
	if m.Discharge.VDDNom <= 0 {
		return fmt.Errorf("core: non-positive nominal VDD: %w", ErrModel)
	}
	for _, c := range m.Discharge.Base.PX.Coeffs {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("core: non-finite coefficient: %w", ErrModel)
		}
	}
	return nil
}

// Save writes the model as JSON to path.
func (m *Model) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("core: marshal model: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModel reads and validates a model from a JSON file.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read model: %w", err)
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: parse model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
