// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation, each returning report artifacts (tables and
// charts) plus the measured values needed for paper-vs-measured
// comparisons. The cmd tools, the root-level benchmarks, and the
// experiment tests all call into this package so every reproduction number
// has exactly one source of truth.
package exp

import (
	"fmt"
	"os"
	"sync"
	"time"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/obs"
	"optima/internal/remote"
	"optima/internal/spice"
	"optima/internal/store"
)

// Context carries the calibrated OPTIMA model and the shared settings of
// an experiment session. All corner/condition evaluations of a session run
// through one evaluation engine, so figures, tables and the DSE never
// re-compute a corner another experiment already scored; with CacheDir set,
// the engine's results additionally persist across sessions.
type Context struct {
	Model *core.Model
	Tech  device.Tech
	Spice spice.Config
	// Workers bounds the engine's total worker budget — job-level fan-out ×
	// intra-job parallelism (0 = GOMAXPROCS). Set it before the first
	// evaluation.
	Workers int
	// Backend selects the evaluation backend by name —
	// engine.BackendBehavioral (default) or engine.BackendGolden. Set it
	// before the first evaluation.
	Backend string
	// CacheDir, when non-empty, backs the engine with the persistent
	// content-addressed result store (internal/store) rooted there, keyed
	// by the session's calibration fingerprint: separate runs — and CI
	// jobs — sharing the directory never re-evaluate a corner. Set it
	// before the first evaluation. A store that cannot be opened degrades
	// to the memory-only cache with a warning, never a failed run.
	CacheDir string
	// CacheMaxBytes bounds the persistent store's on-disk size: segments
	// over the budget are evicted least-recently-written first when the
	// store opens (store.Options.MaxBytes). <= 0 means unlimited.
	CacheMaxBytes int64
	// CacheMaxAge bounds the persistent store's staleness: segments older
	// than the bound are evicted when the store opens
	// (store.Options.MaxAge). <= 0 means unlimited.
	CacheMaxAge time.Duration
	// Conditions is the session's operating condition set — the cross-
	// condition evaluation plane the robust analyses (dse.RobustSweep, the
	// search's robust mode) span. The zero value means nominal only; use
	// ConditionSet to read it with that default applied. Parsed from the
	// CLIs' -conditions flag by engine.ParseConditionSet.
	Conditions engine.ConditionSet
	// CPUProfile and MemProfile, when non-empty, are file paths the session
	// writes pprof profiles to: CPU sampling runs from StartProfiling until
	// Close, the heap snapshot is taken at Close. Wired to the CLIs'
	// -cpuprofile/-memprofile flags (see profile.go).
	CPUProfile string
	MemProfile string
	// Recorder, when non-nil, is the session's telemetry sink: the engine
	// (and any EngineFor engines) records spans and metrics into it, the
	// persistent store wires its counters and gauges through it, and the
	// CLIs render its registry as an end-of-run summary. Set it before the
	// first evaluation. When TraceOut is set and Recorder is nil, Engine
	// creates one.
	Recorder *obs.Recorder
	// TraceOut, when non-empty, is a file path Close writes the session's
	// spans to as Chrome trace-format JSON (opens in Perfetto or
	// chrome://tracing). Wired to the CLIs' -trace-out flag.
	TraceOut string
	// Fleet, when non-nil, distributes evaluations across connected remote
	// workers: every engine the session builds wraps its backend in
	// Fleet.Backend, so only cache/store misses are shipped and a fleet
	// with no workers degrades to local evaluation. Set it before the
	// first evaluation (wired to the CLIs' -remote flag); Close closes it.
	Fleet *remote.Fleet

	engOnce      sync.Once
	eng          *engine.Engine
	resultStore  *store.Store
	storeErr     error
	cpuFile      *os.File
	selection    *dse.Selection
	sweepMetrics []dse.Metrics

	extraMu      sync.Mutex
	extraEngines map[string]*engine.Engine
}

// NewContext calibrates a model with the given recipe and returns a ready
// experiment context.
func NewContext(calib core.CalibrationConfig) (*Context, error) {
	model, err := core.Calibrate(calib)
	if err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	return &Context{
		Model: model,
		Tech:  calib.Tech,
		Spice: calib.Spice,
	}, nil
}

// NewContextWithModel wraps a pre-calibrated model (e.g. loaded from JSON).
func NewContextWithModel(model *core.Model, tech device.Tech) *Context {
	return &Context{Model: model, Tech: tech, Spice: spice.DefaultConfig()}
}

// Fingerprint digests everything that determines an evaluation result
// beyond its (backend, config, condition) key: the calibrated model, the
// technology card, the solver settings, and the engine's metrics schema.
// The persistent result store is keyed on it, so results computed under a
// different calibration are never served to this session.
func (c *Context) Fingerprint() string {
	fp, err := store.Fingerprint(engine.MetricsSchema, c.Model, c.Tech, c.Spice)
	if err != nil {
		// Marshaling plain value structs cannot fail; a fingerprint bug must
		// not silently alias two calibrations.
		panic(fmt.Sprintf("exp: %v", err))
	}
	return fp
}

// Engine returns the session's shared evaluation engine, building it from
// the Backend/Workers/CacheDir settings on first use (concurrency-safe).
// Backend names taken from user input must be checked with
// engine.ValidateBackendName before they reach a Context; an invalid name
// here is a programming error and panics.
func (c *Context) Engine() *engine.Engine {
	c.engOnce.Do(func() {
		backend, err := engine.ByName(c.Backend, c.Model, c.Tech, c.Spice)
		if err != nil {
			panic(fmt.Sprintf("exp: %v", err))
		}
		if c.Recorder == nil && c.TraceOut != "" {
			c.Recorder = obs.NewRecorder(obs.RecorderOptions{})
		}
		if c.Fleet != nil {
			backend = c.Fleet.Backend(backend)
		}
		c.eng = engine.New(backend, c.Workers)
		c.eng.WithRecorder(c.Recorder)
		if c.CacheDir != "" {
			st, err := store.Open(c.CacheDir, store.Options{
				Fingerprint: c.Fingerprint(),
				MaxBytes:    c.CacheMaxBytes,
				MaxAge:      c.CacheMaxAge,
				Recorder:    c.Recorder,
			})
			if err != nil {
				// Degrade to the memory-only cache but keep the cause: a
				// long-lived server must be able to report that it is
				// running without persistence (StoreError), not just log
				// once at startup.
				c.storeErr = fmt.Errorf("persistent result store disabled: %w", err)
				fmt.Fprintf(os.Stderr, "exp: %v\n", c.storeErr)
				return
			}
			c.resultStore = st
			c.eng.WithStore(st)
		}
	})
	return c.eng
}

// EngineFor returns a session engine evaluating on the named backend: the
// session engine itself when the name matches the Backend setting,
// otherwise a per-backend engine cached on the context, built with the
// session's Workers bound and sharing its persistent store (results are
// keyed by backend name, so one store serves every fidelity). The adaptive
// search uses it to pair a behavioral screen engine with a golden
// promotion engine over one cache directory. The engines share the session
// store but not a worker-budget negotiation — run them sequentially, not
// concurrently, or the combined fan-out can oversubscribe Workers.
func (c *Context) EngineFor(name string) (*engine.Engine, error) {
	if err := engine.ValidateBackendName(name); err != nil {
		return nil, err
	}
	main := c.Engine() // resolves Backend/Workers/CacheDir on first use
	if name == "" {
		name = engine.BackendBehavioral
	}
	if name == main.Backend().Name() {
		return main, nil
	}
	c.extraMu.Lock()
	defer c.extraMu.Unlock()
	if eng, ok := c.extraEngines[name]; ok {
		return eng, nil
	}
	backend, err := engine.ByName(name, c.Model, c.Tech, c.Spice)
	if err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	var wrapped engine.Backend = backend
	if c.Fleet != nil {
		wrapped = c.Fleet.Backend(backend)
	}
	eng := engine.New(wrapped, c.Workers)
	eng.WithRecorder(c.Recorder)
	if c.resultStore != nil {
		eng.WithStore(c.resultStore)
	}
	if c.extraEngines == nil {
		c.extraEngines = map[string]*engine.Engine{}
	}
	c.extraEngines[name] = eng
	return eng, nil
}

// ConditionSet returns the session's operating condition set, defaulting to
// the single nominal condition when none was configured.
func (c *Context) ConditionSet() engine.ConditionSet {
	if c.Conditions.Len() == 0 {
		return engine.NominalConditions()
	}
	return c.Conditions
}

// Store returns the session's persistent result store, or nil when CacheDir
// is unset (or the store failed to open). Valid after the first Engine call.
func (c *Context) Store() *store.Store { return c.resultStore }

// StoreError reports why the session has no persistent store: non-nil when
// CacheDir was set but the store failed to open, in which case the session
// degraded to the memory-only cache. Valid after the first Engine call.
// Operators of a long-lived session see it on the server's GET /api/status.
func (c *Context) StoreError() error { return c.storeErr }

// Close finishes the session: any running CPU profile is stopped and the
// heap profile written (profile.go), the trace file is written when
// TraceOut is set, the remote fleet (if any) disconnects its workers,
// then the persistent result store, if any, is flushed and closed. Safe
// to call on a context that never evaluated anything.
func (c *Context) Close() error {
	err := c.stopProfiling()
	if terr := c.writeTrace(); err == nil {
		err = terr
	}
	if c.Fleet != nil {
		if ferr := c.Fleet.Close(); err == nil {
			err = ferr
		}
	}
	if c.resultStore != nil {
		if serr := c.resultStore.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// writeTrace exports the session's spans to TraceOut as Chrome trace-format
// JSON. Written once: a second Close is a no-op.
func (c *Context) writeTrace() error {
	if c.TraceOut == "" || c.Recorder == nil {
		return nil
	}
	path := c.TraceOut
	c.TraceOut = ""
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("exp: trace: %w", err)
	}
	werr := c.Recorder.WriteTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("exp: trace: %w", werr)
	}
	return nil
}

// Sweep returns the cached 48-corner DSE sweep, running it on first use.
func (c *Context) Sweep() ([]dse.Metrics, error) {
	if c.sweepMetrics == nil {
		mets, err := dse.SweepWith(c.Engine(), dse.DefaultGrid(), device.Nominal())
		if err != nil {
			return nil, err
		}
		c.sweepMetrics = mets
	}
	return c.sweepMetrics, nil
}

// Selection returns the cached corner selection (fom/power/variation).
func (c *Context) Selection() (dse.Selection, error) {
	if c.selection == nil {
		mets, err := c.Sweep()
		if err != nil {
			return dse.Selection{}, err
		}
		sel, err := dse.Select(mets)
		if err != nil {
			return dse.Selection{}, err
		}
		c.selection = &sel
	}
	return *c.selection, nil
}
