package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic manual clock for exact span timings.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) read() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func newFakeRecorder(cap int) (*Recorder, *fakeClock) {
	clk := &fakeClock{}
	return NewRecorder(RecorderOptions{Capacity: cap, Clock: clk.read}), clk
}

func TestSpanTiming(t *testing.T) {
	rec, clk := newFakeRecorder(8)
	clk.advance(5 * time.Millisecond)
	outer := rec.StartSpan(0, CatBatch, "sweep", "48 jobs")
	clk.advance(time.Millisecond)
	inner := rec.StartSpan(outer.ID(), CatEval, "behavioral", "")
	clk.advance(2 * time.Millisecond)
	if d := inner.End(); d != 2*time.Millisecond {
		t.Fatalf("inner duration = %v, want 2ms", d)
	}
	clk.advance(time.Millisecond)
	if d := outer.End(); d != 4*time.Millisecond {
		t.Fatalf("outer duration = %v, want 4ms", d)
	}

	spans := rec.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(spans))
	}
	// Recording order: inner ended first.
	if spans[0].Name != "behavioral" || spans[0].Parent != outer.ID() {
		t.Fatalf("inner span = %+v", spans[0])
	}
	if spans[1].Start != 5*time.Millisecond || spans[1].Arg != "48 jobs" {
		t.Fatalf("outer span = %+v", spans[1])
	}
	// Parent contains child on the shared timeline.
	if spans[0].Start < spans[1].Start || spans[0].End() > spans[1].End() {
		t.Fatalf("child [%v,%v] escapes parent [%v,%v]",
			spans[0].Start, spans[0].End(), spans[1].Start, spans[1].End())
	}
}

func TestRingOverflow(t *testing.T) {
	rec, clk := newFakeRecorder(4)
	for i := 0; i < 10; i++ {
		tm := rec.Start(CatEval, "e")
		clk.advance(time.Microsecond)
		tm.End()
	}
	spans := rec.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot has %d spans, want 4", len(spans))
	}
	if rec.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", rec.Dropped())
	}
	// The survivors are the newest four, oldest first.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("snapshot out of order: %v after %v", spans[i].Start, spans[i-1].Start)
		}
	}
	if got := rec.Metrics().Counter("optima_obs_spans_dropped_total", "").Value(); got != 6 {
		t.Fatalf("dropped counter = %v, want 6", got)
	}
}

func TestRecorderConcurrency(t *testing.T) {
	rec := NewRecorder(RecorderOptions{Capacity: 64})
	reg := rec.Metrics()
	ctr := reg.Counter("c_total", "c")
	g := reg.Gauge("g", "g")
	h := reg.Histogram("h_seconds", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tm := rec.Start(CatEval, "e")
				ctr.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i) * 1e-6)
				tm.End()
			}
		}()
	}
	wg.Wait()
	if got := ctr.Value(); got != 4000 {
		t.Fatalf("counter = %v, want 4000", got)
	}
	if got := h.Count(); got != 4000 {
		t.Fatalf("histogram count = %d, want 4000", got)
	}
	if n := len(rec.Snapshot()); n != 64 {
		t.Fatalf("snapshot has %d spans, want full ring of 64", n)
	}
	if rec.Dropped() != 4000-64 {
		t.Fatalf("dropped = %d, want %d", rec.Dropped(), 4000-64)
	}
}

func TestSlowEvalWarning(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	clk := &fakeClock{}
	rec := NewRecorder(RecorderOptions{
		Clock:    clk.read,
		SlowEval: 10 * time.Millisecond,
		Logger:   logger,
	})

	fast := rec.StartSpan(0, CatEval, "behavioral", "cfg@nominal")
	clk.advance(time.Millisecond)
	fast.End()
	if buf.Len() != 0 {
		t.Fatalf("fast eval logged: %q", buf.String())
	}

	slow := rec.StartSpan(0, CatEval, "golden", "cfg@hot")
	clk.advance(50 * time.Millisecond)
	slow.End()
	out := buf.String()
	if !strings.Contains(out, "slow evaluation") || !strings.Contains(out, "golden") {
		t.Fatalf("slow eval warning missing from log: %q", out)
	}

	// Non-eval categories never warn, however long.
	buf.Reset()
	batch := rec.Start(CatBatch, "sweep")
	clk.advance(time.Minute)
	batch.End()
	if buf.Len() != 0 {
		t.Fatalf("batch span logged a slow-eval warning: %q", buf.String())
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	if rec.Now() != 0 || rec.Dropped() != 0 || rec.Snapshot() != nil {
		t.Fatal("nil recorder reads are not zero")
	}
	tm := rec.StartSpan(0, CatEval, "e", "")
	if tm.ID() != 0 || tm.End() != 0 {
		t.Fatal("nil recorder timer is not inert")
	}
	reg := rec.Metrics()
	if reg != nil {
		t.Fatal("nil recorder returned a registry")
	}
	reg.Counter("c_total", "c").Inc()
	reg.Gauge("g", "g").Set(3)
	reg.Histogram("h", "h", nil).Observe(1)
	reg.GaugeFunc("gf", "gf", func() float64 { return 1 })
	if reg.Samples() != nil {
		t.Fatal("nil registry produced samples")
	}
	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil || out.Len() != 0 {
		t.Fatalf("nil registry wrote exposition: %v %q", err, out.String())
	}
	if err := rec.WriteTrace(&out); err != nil {
		t.Fatalf("nil recorder trace export: %v", err)
	}
}

var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+0-9.eE]+|\+Inf)$`)
)

// ValidateExposition checks every line of a Prometheus text exposition
// body; shared with the server endpoint test and the smoke client's logic.
func validateExposition(t *testing.T, body string) {
	t.Helper()
	if body == "" {
		t.Fatal("empty exposition body")
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if helpRe.MatchString(line) || typeRe.MatchString(line) || sampleRe.MatchString(line) {
			continue
		}
		t.Fatalf("malformed exposition line: %q", line)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("optima_evals_total", "evals", "backend", "behavioral").Add(42)
	reg.Counter("optima_evals_total", "evals", "backend", "golden").Add(7)
	reg.Gauge("optima_workers_busy", "busy").Set(3)
	reg.GaugeFunc("optima_hub_topics", "topics", func() float64 { return 2 })
	h := reg.Histogram("optima_eval_duration_seconds", "dur", nil, "backend", "behavioral")
	h.Observe(0.5e-3)
	h.Observe(2.0)

	var b1 bytes.Buffer
	if err := reg.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	out := b1.String()
	validateExposition(t, out)

	for _, want := range []string{
		`optima_evals_total{backend="behavioral"} 42`,
		`optima_evals_total{backend="golden"} 7`,
		`optima_workers_busy 3`,
		`optima_hub_topics 2`,
		"# TYPE optima_eval_duration_seconds histogram",
		`optima_eval_duration_seconds_bucket{backend="behavioral",le="0.001"} 1`,
		`optima_eval_duration_seconds_bucket{backend="behavioral",le="+Inf"} 2`,
		`optima_eval_duration_seconds_count{backend="behavioral"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Deterministic: a second render is byte-identical.
	var b2 bytes.Buffer
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two renders of the same registry differ")
	}

	// Registration is idempotent: same (name, labels) is the same series.
	reg.Counter("optima_evals_total", "evals", "backend", "behavioral").Add(1)
	var b3 bytes.Buffer
	if err := reg.WritePrometheus(&b3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b3.String(), `optima_evals_total{backend="behavioral"} 43`) {
		t.Fatalf("re-registered counter did not accumulate:\n%s", b3.String())
	}
}

func TestSamples(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "b").Add(2)
	reg.Counter("a_total", "a") // zero — omitted
	reg.Gauge("c", "c").Set(1.5)
	h := reg.Histogram("d_seconds", "d", nil)
	h.Observe(0.25)
	h.Observe(0.75)

	got := reg.Samples()
	want := []Sample{
		{"b_total", 2},
		{"c", 1.5},
		{"d_seconds_count", 2},
		{"d_seconds_sum", 1.0},
	}
	if len(got) != len(want) {
		t.Fatalf("samples = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i].Name != want[i].Name || math.Abs(got[i].Value-want[i].Value) > 1e-12 {
			t.Fatalf("samples[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWriteTrace(t *testing.T) {
	rec, clk := newFakeRecorder(32)
	batch := rec.StartSpan(0, CatBatch, "sweep", "2 jobs")
	clk.advance(time.Millisecond)
	e1 := rec.StartSpan(batch.ID(), CatEval, "behavioral", "cfg1")
	clk.advance(3 * time.Millisecond)
	e1.End()
	e2 := rec.StartSpan(batch.ID(), CatEval, "behavioral", "cfg2")
	clk.advance(2 * time.Millisecond)
	e2.End()
	clk.advance(time.Millisecond)
	batch.End()

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 3 {
		t.Fatalf("trace has %d events, want 3", len(tf.TraceEvents))
	}
	byName := map[string][]int{}
	for i, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d phase = %q, want X", i, ev.Ph)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Fatalf("event %d has negative time: ts=%v dur=%v", i, ev.Ts, ev.Dur)
		}
		byName[ev.Name] = append(byName[ev.Name], i)
	}
	sweep := tf.TraceEvents[byName["sweep"][0]]
	if sweep.Dur != 7000 { // 7ms in µs
		t.Fatalf("sweep dur = %v µs, want 7000", sweep.Dur)
	}
	// Children nest inside the parent's lane and time range.
	for _, i := range byName["behavioral"] {
		ev := tf.TraceEvents[i]
		if ev.Tid != sweep.Tid {
			t.Fatalf("child event in lane %d, parent in %d", ev.Tid, sweep.Tid)
		}
		if ev.Ts < sweep.Ts || ev.Ts+ev.Dur > sweep.Ts+sweep.Dur {
			t.Fatalf("child [%v,%v] escapes parent [%v,%v]",
				ev.Ts, ev.Ts+ev.Dur, sweep.Ts, sweep.Ts+sweep.Dur)
		}
		if ev.Args["parent"].(float64) != float64(batch.ID()) {
			t.Fatalf("child parent arg = %v, want %d", ev.Args["parent"], batch.ID())
		}
	}
}

func TestTraceLanesOverlap(t *testing.T) {
	// Two root spans overlapping in time must land in different lanes.
	rec, clk := newFakeRecorder(8)
	a := rec.Start(CatEval, "a")
	clk.advance(time.Millisecond)
	b := rec.Start(CatEval, "b")
	clk.advance(time.Millisecond)
	a.End()
	clk.advance(time.Millisecond)
	b.End()

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	tids := map[string]int{}
	for _, ev := range tf.TraceEvents {
		tids[ev.Name] = ev.Tid
	}
	if tids["a"] == tids["b"] {
		t.Fatalf("overlapping roots share lane %d", tids["a"])
	}
}

func TestSubtree(t *testing.T) {
	rec, clk := newFakeRecorder(32)
	job1 := rec.StartSpan(0, CatJob, "job-1", "")
	j1batch := rec.StartSpan(job1.ID(), CatBatch, "sweep", "")
	j1eval := rec.StartSpan(j1batch.ID(), CatEval, "behavioral", "")
	job2 := rec.StartSpan(0, CatJob, "job-2", "")
	j2eval := rec.StartSpan(job2.ID(), CatEval, "behavioral", "")
	clk.advance(time.Millisecond)
	// End out of order so recording order != ID order.
	j2eval.End()
	j1eval.End()
	j1batch.End()
	job2.End()
	job1.End()

	spans := rec.Snapshot()
	sub := Subtree(spans, job1.ID())
	if len(sub) != 3 {
		t.Fatalf("subtree has %d spans, want 3", len(sub))
	}
	for _, s := range sub {
		if s.ID == job2.ID() || s.Parent == job2.ID() {
			t.Fatalf("job-2 span %+v leaked into job-1's subtree", s)
		}
	}
	if got := Subtree(spans, 0); got != nil {
		t.Fatalf("subtree of root 0 = %+v, want nil", got)
	}
}

func TestFormatDuration(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "0.5µs"},
		{250 * time.Microsecond, "250.0µs"},
		{15 * time.Millisecond, "15.00ms"},
		{3 * time.Second, "3.00s"},
	} {
		if got := FormatDuration(tc.d); got != tc.want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
