package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/mult"
	"optima/internal/obs"
	"optima/internal/sched"
	"optima/internal/spice"
	"optima/internal/sram"
	"optima/internal/stats"
)

// Backend names used by the built-in backends and the CLI flags.
const (
	BackendBehavioral = "behavioral"
	BackendGolden     = "golden"
)

// ValidateBackendName rejects names ByName would not accept. Callers that
// take a backend name from user input should validate it here before
// wiring it into a Context or Engine.
func ValidateBackendName(name string) error {
	switch name {
	case "", BackendBehavioral, BackendGolden:
		return nil
	}
	return fmt.Errorf("engine: unknown backend %q (want %s or %s)",
		name, BackendBehavioral, BackendGolden)
}

// ByName constructs a built-in backend from its CLI name. An empty name
// means behavioral.
func ByName(name string, model *core.Model, tech device.Tech, scfg spice.Config) (Backend, error) {
	if err := ValidateBackendName(name); err != nil {
		return nil, err
	}
	if name == BackendGolden {
		return NewGoldenBackend(tech, scfg), nil
	}
	return Behavioral{Model: model}, nil
}

// Metrics scores one design corner over the full 16×16 input space at one
// operating condition — the unit result of the evaluation service.
type Metrics struct {
	Config mult.Config
	Cond   device.PVT
	// EpsMul is the mean |error| in ADC LSBs over all input pairs (the
	// paper's ϵ_mul). The behavioral backend computes the expectation over
	// the analog noise analytically; the golden backend measures the
	// deterministic transfer.
	EpsMul float64
	// EpsLarge / EpsSmall split EpsMul by expected product
	// (≥ / < ProductMax/2) — the paper's Fig. 8 small-operand analysis.
	EpsLarge, EpsSmall float64
	// EMul is the mean multiplication energy [J] (the paper's E_mul).
	EMul float64
	// SigmaMaxLSB is the analog standard deviation at the maximum discharge
	// (15,15) in LSBs — the paper's variation-corner criterion. The
	// behavioral backend computes it analytically from Eq. 6; the golden
	// backend estimates it by Monte-Carlo mismatch sampling
	// (GoldenSigmaSamples).
	SigmaMaxLSB float64
	// SigmaMaxVolt is the same in volts (the paper quotes 5.04 mV worst case).
	SigmaMaxVolt float64
	// LSBVolt is the corner's calibrated ADC step.
	LSBVolt float64
}

// FOM is the paper's Eq. 9 figure of merit 1/(ϵ_mul·E_mul), in 1/(LSB·fJ).
func (m Metrics) FOM() float64 {
	if m.EpsMul <= 0 || m.EMul <= 0 {
		return 0
	}
	return 1 / (m.EpsMul * m.EMul * 1e15)
}

// Backend evaluates one design corner at one operating condition. An
// implementation must be deterministic (same job, same result) and safe for
// concurrent use — the engine caches results by (backend name, job) and
// fans jobs out across workers.
type Backend interface {
	Name() string
	Evaluate(cfg mult.Config, cond device.PVT) (Metrics, error)
}

// IntraBackend is optionally implemented by backends that can spend an
// intra-job worker budget inside a single evaluation. The engine negotiates
// the split of its total worker bound: each job of a fan-out is granted
// total/jobWorkers intra workers, so job-level × intra-job concurrency
// never oversubscribes the budget. Implementations must return identical
// Metrics at every budget (the engine's cache stores them by key alone).
type IntraBackend interface {
	Backend
	// EvaluateBudget is Evaluate with up to intra workers of internal
	// parallelism; intra <= 0 means GOMAXPROCS, 1 means serial.
	EvaluateBudget(cfg mult.Config, cond device.PVT, intra int) (Metrics, error)
}

// BatchBackend is optionally implemented by backends that evaluate a
// whole batch at once — the remote coordinator (internal/remote) ships a
// batch's cells to its worker fleet instead of having the engine fan them
// out across local goroutines. The engine hands EvaluateJobs every cell
// of a batched submission that missed all cache tiers, with the total
// worker budget as a hint for any local fallback evaluation.
//
// The contract: onDone is called exactly once per job index, from any
// goroutine, with either the job's Metrics or its error; a job abandoned
// because ctx was canceled reports an error wrapping ctx.Err().
// EvaluateJobs returns only after every onDone call has completed, and
// Metrics must be byte-identical to what Evaluate would return — the
// content-addressed cache stores them by key alone.
type BatchBackend interface {
	Backend
	EvaluateJobs(ctx context.Context, jobs []Job, workers int, onDone func(i int, met Metrics, err error))
}

// Behavioral is the fast backend: OPTIMA's calibrated models, with the
// error expectation over mismatch (Eq. 6) and readout noise computed
// analytically — no Monte-Carlo jitter, so corner selection is
// deterministic.
type Behavioral struct {
	Model *core.Model
}

// Name implements Backend.
func (Behavioral) Name() string { return BackendBehavioral }

// Evaluate implements Backend.
func (b Behavioral) Evaluate(cfg mult.Config, cond device.PVT) (Metrics, error) {
	bm, err := mult.NewBehavioral(b.Model, cfg, cond)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{Config: cfg, Cond: cond, LSBVolt: bm.LSBVolt}
	err = m.accumulate(func(a, d uint) (eps, energy float64, err error) {
		// The deterministic table path returns exactly Multiply(a, d, nil)
		// without the per-call model evaluations or event-kernel
		// allocations — the metrics (and therefore every persisted cache
		// entry) are unchanged.
		r, err := bm.MultiplyDet(a, d)
		if err != nil {
			return 0, 0, err
		}
		sigma := math.Hypot(r.Sigma, bm.ADCSigma)
		eps = ExpectedAbsError(r.VComb-bm.OffsetVolt, sigma, bm.LSBVolt, r.Expected)
		if a == mult.OperandMax && d == mult.OperandMax {
			m.SigmaMaxVolt = r.Sigma
			m.SigmaMaxLSB = r.Sigma / bm.LSBVolt
		}
		return eps, r.Energy, nil
	})
	if err != nil {
		return Metrics{}, err
	}
	return m, nil
}

// Golden is the reference backend: every evaluation runs the full input
// space through transistor-level transient simulation (hundreds of
// transients per corner — orders of magnitude slower; that gap is the
// paper's headline speed-up). The backend memoizes the 16 per-configuration
// ADC trim transients across operating conditions: the trim depends only on
// the configuration, so a PVT sweep over one corner pays it once instead of
// once per condition. Use NewGoldenBackend; the zero value also works (the
// trim cache initializes lazily).
//
// Golden implements IntraBackend: EvaluateBudget fans the 256 input-space
// transients and the Monte-Carlo sigma samples of one corner out across an
// intra-job worker budget, with Metrics guaranteed identical at any budget.
type Golden struct {
	Tech  device.Tech
	Spice spice.Config

	mu    sync.Mutex
	trims map[mult.Config]*trimEntry
	// trimCtr mirrors trimCals into an attached recorder's registry
	// (Engine.WithRecorder → setRecorder); nil when none is attached.
	trimCtr *obs.Counter
	// trimCals counts trim calibrations actually run (observability for
	// tests and the trim-cache benchmark).
	trimCals atomic.Int64
}

// trimEntry is one trim-cache slot with singleflight semantics: the first
// claimant computes, concurrent claimants wait on done instead of running
// a duplicate 16-transient calibration.
type trimEntry struct {
	done chan struct{}
	trim mult.GoldenTrim
	err  error
}

// NewGoldenBackend returns a golden backend with an empty trim cache.
func NewGoldenBackend(tech device.Tech, scfg spice.Config) *Golden {
	return &Golden{Tech: tech, Spice: scfg, trims: map[mult.Config]*trimEntry{}}
}

// Name implements Backend.
func (*Golden) Name() string { return BackendGolden }

// TrimCalibrations returns how many trim calibrations (16 golden transients
// each) the backend has run — evaluations beyond the first per configuration
// hit the cache and add nothing, including concurrent first evaluations
// (singleflight).
func (g *Golden) TrimCalibrations() int64 { return g.trimCals.Load() }

// setRecorder wires the backend's trim-calibration counter into a
// recorder's registry; a nil recorder detaches it (nil handles no-op).
func (g *Golden) setRecorder(rec *obs.Recorder) {
	ctr := rec.Metrics().Counter("optima_trim_calibrations_total",
		"golden ADC trim calibrations run (16 transients each)")
	g.mu.Lock()
	g.trimCtr = ctr
	g.mu.Unlock()
}

// trimFor returns the configuration's ADC trim, calibrating on first use
// with up to intra workers. Concurrent first calls of the same
// configuration share one calibration: the first claims a cache entry and
// computes, the rest wait on its done channel (the same claimed-entry
// pattern as the engine's result cache). Errors are cached — the
// calibration is deterministic, so a failing configuration fails the same
// way every time.
func (g *Golden) trimFor(cfg mult.Config, intra int, rec *obs.Recorder, parent obs.SpanID) (mult.GoldenTrim, error) {
	g.mu.Lock()
	if g.trims == nil {
		g.trims = map[mult.Config]*trimEntry{}
	}
	if ent, ok := g.trims[cfg]; ok {
		g.mu.Unlock()
		<-ent.done
		return ent.trim, ent.err
	}
	ent := &trimEntry{done: make(chan struct{})}
	g.trims[cfg] = ent
	ctr := g.trimCtr
	g.mu.Unlock()

	g.trimCals.Add(1)
	ctr.Inc()
	var arg string
	if rec != nil {
		arg = fmt.Sprintf("%v", cfg)
	}
	span := rec.StartSpan(parent, obs.CatTrim, "trim-calibrate", arg)
	func() {
		// done closes on every path: a panicking calibration is recovered
		// into the entry's error so waiters never block on a dead claim.
		defer func() {
			if r := recover(); r != nil {
				ent.err = fmt.Errorf("engine: golden trim calibration panicked for %v: %v", cfg, r)
			}
			close(ent.done)
		}()
		ent.trim, ent.err = mult.CalibrateGoldenTrimObserved(g.Tech, cfg, g.Spice, intra, rec, span.ID())
	}()
	span.End()
	return ent.trim, ent.err
}

// GoldenSigmaSamples is the Monte-Carlo mismatch population the golden
// backend uses to estimate σ at the maximum discharge — the variation-
// corner criterion the behavioral backend computes analytically from
// Eq. 6. Each sample simulates the four bit lines of the (15,15) input.
const GoldenSigmaSamples = 24

// goldenSigmaSeed is the base seed of the Monte-Carlo sigma estimate.
// Sample s draws from its own generator seeded goldenSigmaSeed+s
// (splitmix-decorrelated by stats.NewRNG), so the sample set — and with it
// the Metrics — is independent of how samples are scheduled across intra-
// job workers.
const goldenSigmaSeed = 0x600dc0de

// inputSpan is the per-operand code count of the multiplier input space.
const inputSpan = mult.OperandMax + 1

// Evaluate implements Backend: the serial (intra = 1) evaluation path.
func (g *Golden) Evaluate(cfg mult.Config, cond device.PVT) (Metrics, error) {
	return g.EvaluateBudget(cfg, cond, 1)
}

// EvaluateBudget implements IntraBackend. The per-corner transients — the
// 16 trim transients of a cold configuration, the 256 input pairs, and the
// GoldenSigmaSamples mismatch samples of the (15,15) input — fan out
// across up to intra workers, each with its own integrator
// scratch and — for the Monte-Carlo phase — its own per-sample seeded RNG
// and cell state. Workers fill fixed slices indexed by (a, d) and by
// sample, and the Metrics reduction walks those slices serially in input
// order, so the result is byte-identical to the serial path at any worker
// count — the engine's content-addressed cache contract.
func (g *Golden) EvaluateBudget(cfg mult.Config, cond device.PVT, intra int) (Metrics, error) {
	return g.evaluateObserved(cfg, cond, intra, nil, 0)
}

// evaluateObserved is the golden evaluation with telemetry: a trim span
// (with per-transient children) on a cold configuration, and one phase
// span each for the input-space fan-out and the Monte-Carlo sigma pass,
// all under parent. A nil recorder records nothing — this IS the plain
// EvaluateBudget path — and timing never feeds into the returned Metrics.
func (g *Golden) evaluateObserved(cfg mult.Config, cond device.PVT, intra int, rec *obs.Recorder, parent obs.SpanID) (Metrics, error) {
	trim, err := g.trimFor(cfg, intra, rec, parent)
	if err != nil {
		return Metrics{}, err
	}
	gm, err := mult.NewGoldenWithTrim(g.Tech, cfg, cond, g.Spice, trim)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{Config: cfg, Cond: cond, LSBVolt: gm.LSBVolt}

	// Workers reuse integrator buffers between transients; the pool hands
	// each in-flight call a private Scratch.
	var scratch sync.Pool

	// Input space: pair i = (a, d) = (i / 16, i mod 16). sched.Map returns
	// the per-pair results in index order regardless of scheduling.
	type pairRes struct{ eps, energy float64 }
	pairIdx := make([]int, inputSpan*inputSpan)
	for i := range pairIdx {
		pairIdx[i] = i
	}
	var pairArg string
	if rec != nil {
		pairArg = fmt.Sprintf("%d pairs", len(pairIdx))
	}
	pairSpan := rec.StartSpan(parent, obs.CatPhase, "input-space", pairArg)
	pairs, err := sched.Map(intra, pairIdx, func(_ int, i int) (pairRes, error) {
		scr, _ := scratch.Get().(*spice.Scratch)
		if scr == nil {
			scr = &spice.Scratch{}
		}
		defer scratch.Put(scr)
		r, err := gm.MultiplyCells(uint(i/inputSpan), uint(i%inputSpan), nil, scr)
		if err != nil {
			return pairRes{}, err
		}
		return pairRes{eps: math.Abs(float64(r.ErrorLSB())), energy: r.Energy}, nil
	})
	pairSpan.End()
	if err != nil {
		return Metrics{}, err
	}
	// Serial reduction in (a, d) order through the shared scaffold.
	if err := m.accumulate(func(a, d uint) (eps, energy float64, err error) {
		p := pairs[int(a)*inputSpan+int(d)]
		return p.eps, p.energy, nil
	}); err != nil {
		return Metrics{}, err
	}

	// σ at the maximum discharge via Monte-Carlo mismatch sampling, one
	// deterministic RNG stream per sample (seed fixed — same job, same
	// result), reduced serially in sample order.
	sampleIdx := make([]int, GoldenSigmaSamples)
	for s := range sampleIdx {
		sampleIdx[s] = s
	}
	var mcArg string
	if rec != nil {
		mcArg = fmt.Sprintf("%d samples", GoldenSigmaSamples)
	}
	mcSpan := rec.StartSpan(parent, obs.CatPhase, "monte-carlo", mcArg)
	vcombs, err := sched.Map(intra, sampleIdx, func(_ int, s int) (float64, error) {
		scr, _ := scratch.Get().(*spice.Scratch)
		if scr == nil {
			scr = &spice.Scratch{}
		}
		defer scratch.Put(scr)
		var cells sram.Word
		cells.SampleMismatch(g.Tech, stats.NewRNG(goldenSigmaSeed+uint64(s)))
		r, err := gm.MultiplyCells(mult.OperandMax, mult.OperandMax, &cells, scr)
		if err != nil {
			return 0, err
		}
		return r.VComb, nil
	})
	mcSpan.End()
	if err != nil {
		return Metrics{}, err
	}
	var vAcc stats.Accumulator
	for _, v := range vcombs {
		vAcc.Add(v)
	}
	m.SigmaMaxVolt = vAcc.StdDev()
	m.SigmaMaxLSB = m.SigmaMaxVolt / gm.LSBVolt
	return m, nil
}

// accumulate scores the full 16×16 input space with the supplied per-pair
// evaluator, filling the mean error/energy fields. Both backends share
// this scaffold so the metric definitions (large/small split, averaging)
// cannot drift apart.
func (m *Metrics) accumulate(eval func(a, d uint) (eps, energy float64, err error)) error {
	var epsAcc, largeAcc, smallAcc, eAcc stats.Accumulator
	for a := uint(0); a <= mult.OperandMax; a++ {
		for d := uint(0); d <= mult.OperandMax; d++ {
			eps, energy, err := eval(a, d)
			if err != nil {
				return err
			}
			epsAcc.Add(eps)
			if int(a*d) >= mult.ProductMax/2 {
				largeAcc.Add(eps)
			} else {
				smallAcc.Add(eps)
			}
			eAcc.Add(energy)
		}
	}
	m.EpsMul = epsAcc.Mean()
	m.EpsLarge = largeAcc.Mean()
	m.EpsSmall = smallAcc.Mean()
	m.EMul = eAcc.Mean()
	return nil
}

// ExpectedAbsError returns E[|code − expected|] for a Gaussian analog value
// N(mu, sigma) quantized with the given LSB and clamped to the ADC range.
// Exported for the per-result profile analyses in internal/dse.
func ExpectedAbsError(mu, sigma, lsb float64, expected int) float64 {
	if sigma <= 0 {
		code := int(math.Round(mu / lsb))
		if code < 0 {
			code = 0
		}
		if code > mult.ADCMax {
			code = mult.ADCMax
		}
		return math.Abs(float64(code - expected))
	}
	// Sum |k − expected|·P(code = k) over codes within ±6σ of the mean.
	lo := int(math.Floor((mu-6*sigma)/lsb)) - 1
	hi := int(math.Ceil((mu+6*sigma)/lsb)) + 1
	if lo < 0 {
		lo = 0
	}
	if hi > mult.ADCMax {
		hi = mult.ADCMax
	}
	inv := 1 / (sigma * math.Sqrt2)
	cdf := func(v float64) float64 { return 0.5 * (1 + math.Erf((v-mu)*inv)) }
	var sum float64
	for k := lo; k <= hi; k++ {
		lower := (float64(k) - 0.5) * lsb
		upper := (float64(k) + 0.5) * lsb
		var p float64
		switch {
		case k == 0:
			p = cdf(upper) // everything below the first boundary clamps to 0
		case k == mult.ADCMax:
			p = 1 - cdf(lower)
		default:
			p = cdf(upper) - cdf(lower)
		}
		sum += math.Abs(float64(k-expected)) * p
	}
	// Account for truncated tails outside [lo, hi] when they clamp.
	if lo > 0 {
		sum += math.Abs(float64(lo-expected)) * cdf((float64(lo)-0.5)*lsb)
	}
	if hi < mult.ADCMax {
		sum += math.Abs(float64(hi-expected)) * (1 - cdf((float64(hi)+0.5)*lsb))
	}
	return sum
}
