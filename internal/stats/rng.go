// Package stats provides the deterministic random-number generation and
// statistical summaries used throughout the OPTIMA experiments.
//
// Reproducibility matters for a design-space exploration tool: every
// experiment in the repository is seeded, and the generator implementation
// is frozen here (xoshiro256**) rather than delegated to math/rand so that
// published numbers remain bit-stable across Go releases.
package stats

import "math"

// RNG is a deterministic xoshiro256** pseudo-random generator with helpers
// for the distributions used in OPTIMA (uniform, Gaussian). It is not safe
// for concurrent use; derive per-goroutine generators with Split.
type RNG struct {
	s [4]uint64
	// cached second Box–Muller variate
	haveGauss bool
	gauss     float64
}

// NewRNG returns a generator seeded from the given seed value using
// splitmix64, which guarantees a well-mixed non-zero state for any seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated by mixing a fresh draw through splitmix64.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("stats: IntN with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	c = t >> 32
	m := t & mask
	t = aLo*bHi + m
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Norm returns a standard Gaussian variate via the Box–Muller transform.
func (r *RNG) Norm() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// Gaussian returns a Gaussian variate with the given mean and standard
// deviation.
func (r *RNG) Gaussian(mean, sigma float64) float64 {
	return mean + sigma*r.Norm()
}

// Perm fills a permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place via the swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}
