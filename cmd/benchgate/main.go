// Command benchgate is the CI bench-regression gate: it compares a fresh
// benchmark trajectory (BENCH_engine.json, written by the bench job) against
// the previous run's artifact and fails when any benchmark recorded in both
// slowed down by more than the allowed fraction.
//
// Usage:
//
//	benchgate -old prev/BENCH_engine.json -new BENCH_engine.json [-max-slowdown 0.30]
//
// A missing baseline file is not a failure (the first run of a branch has
// nothing to compare against); a missing fresh file is. Benchmarks present
// only on one side are reported but never gate — renames and additions must
// not break CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Bench mirrors one entry of BENCH_engine.json.
type Bench struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

func load(path string) ([]Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Bench
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// result is one gate verdict line.
type result struct {
	line       string
	regression bool
}

// gate compares the fresh benchmarks against the baseline. A benchmark
// regresses when fresh > baseline·(1+maxSlowdown). Baselines at 0 ns/op
// (clock-resolution underflow) never gate.
func gate(baseline, fresh []Bench, maxSlowdown float64) []result {
	base := make(map[string]Bench, len(baseline))
	for _, b := range baseline {
		base[b.Name] = b
	}
	var out []result
	seen := map[string]bool{}
	for _, f := range fresh {
		seen[f.Name] = true
		b, ok := base[f.Name]
		if !ok {
			out = append(out, result{line: fmt.Sprintf("NEW   %-60s %14.0f ns/op", f.Name, f.NsPerOp)})
			continue
		}
		if b.NsPerOp <= 0 {
			out = append(out, result{line: fmt.Sprintf("SKIP  %-60s baseline 0 ns/op", f.Name)})
			continue
		}
		ratio := f.NsPerOp / b.NsPerOp
		verdict := "OK   "
		reg := ratio > 1+maxSlowdown
		if reg {
			verdict = "SLOW "
		}
		out = append(out, result{
			line: fmt.Sprintf("%s %-60s %14.0f -> %14.0f ns/op (%+.1f%%)",
				verdict, f.Name, b.NsPerOp, f.NsPerOp, 100*(ratio-1)),
			regression: reg,
		})
	}
	for _, b := range baseline {
		if !seen[b.Name] {
			out = append(out, result{line: fmt.Sprintf("GONE  %-60s (was %14.0f ns/op)", b.Name, b.NsPerOp)})
		}
	}
	return out
}

func main() {
	oldPath := flag.String("old", "", "baseline trajectory JSON (previous run's artifact)")
	newPath := flag.String("new", "", "fresh trajectory JSON")
	maxSlowdown := flag.Float64("max-slowdown", 0.30, "allowed fractional slowdown per benchmark")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	baseline, err := load(*oldPath)
	if os.IsNotExist(err) {
		fmt.Printf("benchgate: no baseline at %s; nothing to gate\n", *oldPath)
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	regressions := 0
	for _, r := range gate(baseline, fresh, *maxSlowdown) {
		fmt.Println(r.line)
		if r.regression {
			regressions++
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.0f%%\n",
			regressions, *maxSlowdown*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions")
}
