package remote

import (
	"bufio"
	"context"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/mult"
	"optima/internal/obs"
	"optima/internal/sched"
)

// Options configures a coordinator Fleet.
type Options struct {
	// Fingerprint is the session's calibration fingerprint
	// (exp.Context.Fingerprint). Workers whose fingerprint differs are
	// rejected in the handshake: a mismatched calibration would compute
	// different metrics for the same key, silently poisoning the
	// content-addressed cache.
	Fingerprint string
	// Recorder receives the coordinator's telemetry: a span per dispatch,
	// shipment spans per worker batch, worker-reported evaluation spans,
	// and the cells-shipped / retry / reassignment / byte counters.
	// Nil records nothing.
	Recorder *obs.Recorder
	// Logger receives worker lifecycle and degradation events
	// (nil = slog.Default()).
	Logger *slog.Logger
}

// FleetStats is a snapshot of the coordinator's accounting.
type FleetStats struct {
	// Workers is the number of currently connected workers.
	Workers int `json:"workers"`
	// CellsShipped counts cells sent to workers, including re-ships.
	CellsShipped uint64 `json:"cells_shipped"`
	// Results counts cell results accepted from workers.
	Results uint64 `json:"results"`
	// Duplicates counts late or duplicate results dropped (a cell that was
	// re-shipped resolves first-wins; the loser lands here).
	Duplicates uint64 `json:"duplicates"`
	// Retries counts cells re-shipped to an idle worker because their
	// original owner was slow (work stealing).
	Retries uint64 `json:"retries"`
	// Reassignments counts cells reassigned off a dead worker.
	Reassignments uint64 `json:"reassignments"`
	// LocalFallbacks counts cells evaluated on the coordinator's local
	// backend because no workers were connected (or all were lost).
	LocalFallbacks uint64 `json:"local_fallbacks"`
	// Rejected counts workers refused in the handshake (protocol or
	// fingerprint mismatch).
	Rejected uint64 `json:"rejected"`
	// BytesSent / BytesReceived count frame bytes on the wire.
	BytesSent     uint64 `json:"bytes_sent"`
	BytesReceived uint64 `json:"bytes_received"`
}

// String renders the snapshot in the one-line style of engine.Stats.
func (s FleetStats) String() string {
	return fmt.Sprintf("workers=%d shipped=%d results=%d dup=%d retries=%d reassigned=%d local=%d rejected=%d sent=%dB recv=%dB",
		s.Workers, s.CellsShipped, s.Results, s.Duplicates, s.Retries,
		s.Reassignments, s.LocalFallbacks, s.Rejected, s.BytesSent, s.BytesReceived)
}

// Fleet is the coordinator: it owns the listener workers dial, tracks the
// connected worker set, and distributes evaluation batches across it.
// One Fleet serves any number of backends — Backend wraps a local backend
// into a distributing engine.Backend — and any number of concurrent
// dispatches. All methods are safe for concurrent use.
type Fleet struct {
	fingerprint string
	ln          net.Listener
	log         *slog.Logger
	rec         *obs.Recorder

	mu         sync.Mutex
	closed     bool
	nextWorker uint64
	nextDisp   uint64
	workers    []*workerConn // join order; the shard routing domain
	dispatches map[uint64]*dispatch

	wg sync.WaitGroup

	cellsShipped, results, duplicates     atomic.Uint64
	retries, reassignments, fallbacks     atomic.Uint64
	rejected, bytesSent, bytesReceived    atomic.Uint64
	ctrShipped, ctrRetries, ctrReassigned *obs.Counter
	ctrFallbacks, ctrBytesOut, ctrBytesIn *obs.Counter
}

// workerConn is one connected worker. Frame writes are serialized by wmu;
// the read loop owns the receive side.
type workerConn struct {
	id       uint64
	conn     net.Conn
	capacity int

	wmu  sync.Mutex
	dead atomic.Bool
}

// Listen starts a coordinator on addr (host:port; ":0" for an ephemeral
// port). The fleet accepts workers immediately; evaluation methods
// degrade to local execution until workers join.
func Listen(addr string, opts Options) (*Fleet, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: listen %s: %w", addr, err)
	}
	log := opts.Logger
	if log == nil {
		log = slog.Default()
	}
	f := &Fleet{
		fingerprint: opts.Fingerprint,
		ln:          ln,
		log:         log,
		rec:         opts.Recorder,
		dispatches:  map[uint64]*dispatch{},
	}
	reg := f.rec.Metrics()
	f.ctrShipped = reg.Counter("optima_remote_cells_shipped_total", "evaluation cells shipped to workers (including re-ships)")
	f.ctrRetries = reg.Counter("optima_remote_retries_total", "cells re-shipped to idle workers (work stealing)")
	f.ctrReassigned = reg.Counter("optima_remote_reassignments_total", "cells reassigned off dead workers")
	f.ctrFallbacks = reg.Counter("optima_remote_local_fallbacks_total", "cells evaluated locally because no workers were connected")
	f.ctrBytesOut = reg.Counter("optima_remote_bytes_sent_total", "frame bytes sent to workers")
	f.ctrBytesIn = reg.Counter("optima_remote_bytes_received_total", "frame bytes received from workers")
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the coordinator's listen address — the value workers pass
// to -connect.
func (f *Fleet) Addr() string { return f.ln.Addr().String() }

// WorkerCount returns the number of currently connected workers.
func (f *Fleet) WorkerCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.workers)
}

// Stats returns a snapshot of the coordinator's accounting.
func (f *Fleet) Stats() FleetStats {
	return FleetStats{
		Workers:        f.WorkerCount(),
		CellsShipped:   f.cellsShipped.Load(),
		Results:        f.results.Load(),
		Duplicates:     f.duplicates.Load(),
		Retries:        f.retries.Load(),
		Reassignments:  f.reassignments.Load(),
		LocalFallbacks: f.fallbacks.Load(),
		Rejected:       f.rejected.Load(),
		BytesSent:      f.bytesSent.Load(),
		BytesReceived:  f.bytesReceived.Load(),
	}
}

// Close shuts the coordinator down: the listener closes, every worker
// connection is dropped (their in-flight cells resolve through the local
// fallback), and Close blocks until the accept loop and every reader have
// exited. Safe to call more than once.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	ws := append([]*workerConn(nil), f.workers...)
	f.mu.Unlock()
	err := f.ln.Close()
	for _, w := range ws {
		w.conn.Close()
	}
	f.wg.Wait()
	return err
}

// Backend wraps a local backend into its distributing proxy: an
// engine.Backend (and IntraBackend and BatchBackend) that ships cells to
// the fleet and evaluates on local when no workers are connected. The
// proxy reports the wrapped backend's Name, so cache and store keys are
// identical to a purely local run.
func (f *Fleet) Backend(local engine.Backend) *Proxy {
	return &Proxy{fleet: f, local: local}
}

// Proxy is a distributing view of one local backend; see Fleet.Backend.
type Proxy struct {
	fleet *Fleet
	local engine.Backend
}

// Name implements engine.Backend: the wrapped backend's identity, so a
// distributed result is cached and persisted under the same key as a
// local one.
func (p *Proxy) Name() string { return p.local.Name() }

// Evaluate implements engine.Backend: a single-cell dispatch.
func (p *Proxy) Evaluate(cfg mult.Config, cond device.PVT) (engine.Metrics, error) {
	return p.EvaluateBudget(cfg, cond, 0)
}

// EvaluateBudget implements engine.IntraBackend. The budget applies to
// the local fallback path (and is forwarded as the worker hint); a
// connected worker spends its own -workers capacity instead.
func (p *Proxy) EvaluateBudget(cfg mult.Config, cond device.PVT, intra int) (engine.Metrics, error) {
	var met engine.Metrics
	var err error
	p.EvaluateJobs(context.Background(), []engine.Job{{Config: cfg, Cond: cond}}, intra,
		func(_ int, m engine.Metrics, e error) { met, err = m, e })
	return met, err
}

// EvaluateJobs implements engine.BatchBackend: the whole miss set of one
// engine batch, shipped across the fleet by key-range and resolved
// through onDone exactly once per cell.
func (p *Proxy) EvaluateJobs(ctx context.Context, jobs []engine.Job, workers int, onDone func(i int, met engine.Metrics, err error)) {
	p.fleet.evaluateJobs(ctx, p.local, jobs, workers, onDone)
}

// dispatch is one in-flight batch: the jobs, their per-cell shipment
// state, and the resolution callback. Cells resolve exactly once,
// first result wins; done closes when the last cell resolves.
type dispatch struct {
	id      uint64
	fleet   *Fleet
	backend string
	local   engine.Backend
	jobs    []engine.Job
	hashes  []uint64
	workers int // local-fallback worker budget (engine hint)
	span    obs.SpanID
	onDone  func(i int, met engine.Metrics, err error)

	mu         sync.Mutex
	cells      []dispCell
	unresolved int
	done       chan struct{}
}

// dispCell tracks one cell's shipment state.
type dispCell struct {
	resolved bool
	ships    int
	owners   []uint64 // worker IDs the cell is outstanding on
}

// shardIndex maps a key hash onto [0, n) by range: the upper 32 bits of
// the hash scaled into n equal segments. Contiguous hash ranges land on
// the same worker, so a worker repeatedly sees the same key region —
// store/trim affinity — and the mapping is a pure function of (hash, n):
// identical across processes and runs.
func shardIndex(hash uint64, n int) int {
	return int((hash >> 32) * uint64(n) >> 32)
}

// evaluateJobs distributes one batch. Zero connected workers is not an
// error: the batch evaluates on the local backend, surfaced via the log
// and the local-fallback counter (graceful degradation).
func (f *Fleet) evaluateJobs(ctx context.Context, local engine.Backend, jobs []engine.Job, workers int, onDone func(int, engine.Metrics, error)) {
	if len(jobs) == 0 {
		return
	}
	bname := local.Name()
	d := &dispatch{
		fleet:   f,
		backend: bname,
		local:   local,
		jobs:    jobs,
		hashes:  make([]uint64, len(jobs)),
		workers: workers,
		cells:   make([]dispCell, len(jobs)),
		done:    make(chan struct{}),
		onDone:  onDone,
	}
	for i, j := range jobs {
		d.hashes[i] = engine.Key{Backend: bname, Job: j}.Hash()
	}
	d.unresolved = len(jobs)

	f.mu.Lock()
	f.nextDisp++
	d.id = f.nextDisp
	f.dispatches[d.id] = d
	ws := append([]*workerConn(nil), f.workers...)
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.dispatches, d.id)
		f.mu.Unlock()
	}()

	var arg string
	if f.rec != nil {
		arg = fmt.Sprintf("%s: %d cells, %d workers", bname, len(jobs), len(ws))
	}
	span := f.rec.StartSpan(0, obs.CatRemote, "dispatch", arg)
	d.span = span.ID()
	defer span.End()

	if len(ws) == 0 {
		all := make([]int, len(jobs))
		for i := range all {
			all[i] = i
		}
		f.localFallback(d, all, "no connected workers")
	} else {
		// Key-range assignment over the join-order worker list: cell i goes
		// to the worker owning its hash segment. Indexes accumulate in
		// ascending order, so each worker's batch frame is deterministic.
		perWorker := make([][]int, len(ws))
		for i := range jobs {
			w := shardIndex(d.hashes[i], len(ws))
			perWorker[w] = append(perWorker[w], i)
		}
		for wi, idxs := range perWorker {
			if len(idxs) > 0 {
				f.ship(d, ws[wi], idxs, false)
			}
		}
	}

	select {
	case <-d.done:
	case <-ctx.Done():
		// Unstarted cells are abandoned with the cancellation cause — the
		// engine releases their claims, nothing is memoized. Results that
		// arrive later are dropped as duplicates.
		cause := ctx.Err()
		for i := range jobs {
			d.resolve(uint32(i), engine.Metrics{}, fmt.Errorf("remote: dispatch canceled: %w", cause), 0, nil)
		}
		<-d.done
	}
}

// ship marks idxs outstanding on w and writes one batch frame. The cells
// are marked BEFORE the write, so any failure path — the worker died
// between snapshot and ship, or the write itself broke — finds them owned
// by a dead worker and reassigns them through the uniform reassignFrom
// path; no interleaving can strand a cell. steal re-ships cells that are
// already outstanding elsewhere.
func (f *Fleet) ship(d *dispatch, w *workerConn, idxs []int, steal bool) {
	cells := make([]batchCell, 0, len(idxs))
	d.mu.Lock()
	for _, i := range idxs {
		c := &d.cells[i]
		if c.resolved {
			continue
		}
		c.ships++
		c.owners = append(c.owners, w.id)
		cells = append(cells, batchCell{Index: uint32(i), Job: d.jobs[i]})
	}
	d.mu.Unlock()
	if len(cells) == 0 {
		return
	}
	if w.dead.Load() {
		f.reassignAfterFailedShip(d, w)
		return
	}
	frame := appendBatch(nil, batchFrame{Dispatch: d.id, Backend: d.backend, Cells: cells})

	var arg string
	if f.rec != nil {
		arg = fmt.Sprintf("worker %d: %d cells", w.id, len(cells))
	}
	name := "ship"
	if steal {
		name = "re-ship"
	}
	sspan := f.rec.StartSpan(d.span, obs.CatRemote, name, arg)
	w.wmu.Lock()
	_, err := w.conn.Write(frame)
	w.wmu.Unlock()
	sspan.End()
	if err != nil {
		// dropWorker reassigns everything w owned — unless another path
		// already dropped it before our cells were marked, in which case
		// the explicit reassign below picks them up (it no-ops on cells a
		// concurrent reassignment already moved).
		f.dropWorker(w, fmt.Errorf("write: %w", err))
		f.reassignAfterFailedShip(d, w)
		return
	}
	f.cellsShipped.Add(uint64(len(cells)))
	f.ctrShipped.Add(float64(len(cells)))
	f.bytesSent.Add(uint64(len(frame)))
	f.ctrBytesOut.Add(float64(len(frame)))
	if steal {
		f.retries.Add(uint64(len(cells)))
		f.ctrRetries.Add(float64(len(cells)))
	}
}

// reassignAfterFailedShip reroutes d's cells owned by the dead worker w
// against a fresh snapshot of the live worker set.
func (f *Fleet) reassignAfterFailedShip(d *dispatch, w *workerConn) {
	f.mu.Lock()
	remaining := append([]*workerConn(nil), f.workers...)
	f.mu.Unlock()
	f.reassignFrom(d, w, remaining)
}

// resolve settles one cell, first result wins. from is the worker that
// produced the result (nil for local fallback and cancellation); a
// worker going idle triggers the slow-owner steal check.
func (d *dispatch) resolve(idx uint32, met engine.Metrics, err error, durNS uint64, from *workerConn) {
	d.mu.Lock()
	if int(idx) >= len(d.cells) || d.cells[idx].resolved {
		d.mu.Unlock()
		if from != nil {
			d.fleet.duplicates.Add(1)
		}
		return
	}
	d.cells[idx].resolved = true
	d.unresolved--
	last := d.unresolved == 0
	d.mu.Unlock()

	if err == nil {
		// The wire carries only the seven metric words; Config and Cond
		// duplicate the job by construction, exactly like the store codec.
		met.Config = d.jobs[idx].Config
		met.Cond = d.jobs[idx].Cond
	}
	if from != nil {
		d.fleet.results.Add(1)
		var arg string
		if d.fleet.rec != nil {
			arg = fmt.Sprintf("worker %d: %v @ %v", from.id, d.jobs[idx].Config, d.jobs[idx].Cond)
		}
		d.fleet.rec.AddSpan(d.span, obs.CatEval, d.backend+"@remote", arg, time.Duration(durNS))
	}
	d.onDone(int(idx), met, err)
	if last {
		close(d.done)
		return
	}
	if from != nil {
		d.maybeSteal(from)
	}
}

// maybeSteal re-ships work to w when it has drained its own share of this
// dispatch while another worker still owns two or more unresolved cells:
// the slow-worker half of "dead or slow workers get their in-flight
// cells reassigned". The steal takes the later half of the busiest
// owner's single-shipped cells; first result wins and the loser is
// dropped as a duplicate (sound because backends are deterministic —
// both copies compute identical metrics). Each cell is re-shipped at
// most once (ships capped at 2), so a pathological fleet cannot amplify
// work unboundedly.
func (d *dispatch) maybeSteal(w *workerConn) {
	d.mu.Lock()
	perOwner := map[uint64][]int{}
	for i := range d.cells {
		c := &d.cells[i]
		if c.resolved {
			continue
		}
		for _, owner := range c.owners {
			perOwner[owner] = append(perOwner[owner], i)
		}
	}
	if len(perOwner[w.id]) > 0 {
		d.mu.Unlock()
		return // w still has outstanding cells; nothing to steal yet
	}
	busiest, busiestN := uint64(0), 0
	for owner, idxs := range perOwner {
		// Deterministic victim choice: strictly more cells wins, ties go to
		// the lower worker ID (map order must not pick the victim).
		if len(idxs) > busiestN || (len(idxs) == busiestN && busiestN > 0 && owner < busiest) {
			busiest, busiestN = owner, len(idxs)
		}
	}
	if busiestN < 2 {
		d.mu.Unlock()
		return
	}
	victim := perOwner[busiest]
	sort.Ints(victim)
	var take []int
	for _, i := range victim[len(victim)/2:] {
		if d.cells[i].ships < 2 {
			take = append(take, i)
		}
	}
	d.mu.Unlock()
	if len(take) > 0 {
		d.fleet.ship(d, w, take, true)
	}
}

// dropWorker removes w from the fleet and reassigns every unresolved cell
// it owned: to the remaining workers by key-range when any are left,
// otherwise to the local fallback — losing the whole fleet mid-batch
// degrades, it does not fail.
func (f *Fleet) dropWorker(w *workerConn, cause error) {
	if !w.dead.CompareAndSwap(false, true) {
		return
	}
	w.conn.Close()
	f.mu.Lock()
	for i, lw := range f.workers {
		if lw == w {
			f.workers = append(f.workers[:i], f.workers[i+1:]...)
			break
		}
	}
	remaining := append([]*workerConn(nil), f.workers...)
	ids := make([]uint64, 0, len(f.dispatches))
	for id := range f.dispatches {
		ids = append(ids, id)
	}
	active := make([]*dispatch, 0, len(ids))
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		active = append(active, f.dispatches[id])
	}
	closed := f.closed
	f.mu.Unlock()
	if !closed {
		f.log.Warn("remote: worker lost", "worker", w.id, "cause", cause, "remaining", len(remaining))
	}

	for _, d := range active {
		f.reassignFrom(d, w, remaining)
	}
}

// reassignFrom moves d's unresolved cells off the dead worker w. A cell
// still outstanding on another live worker needs nothing — its surviving
// copy will resolve it.
func (f *Fleet) reassignFrom(d *dispatch, w *workerConn, remaining []*workerConn) {
	// Filter racing deaths out of the snapshot: a target that is already
	// dead would bounce the cells straight back here.
	surviving := remaining[:0:0]
	for _, lw := range remaining {
		if !lw.dead.Load() {
			surviving = append(surviving, lw)
		}
	}
	remaining = surviving
	live := map[uint64]bool{}
	for _, lw := range remaining {
		live[lw.id] = true
	}
	d.mu.Lock()
	orphaned := make([]int, 0)
	for i := range d.cells {
		c := &d.cells[i]
		if c.resolved {
			continue
		}
		owned := false
		alive := false
		kept := c.owners[:0]
		for _, owner := range c.owners {
			if owner == w.id {
				owned = true
				continue
			}
			kept = append(kept, owner)
			if live[owner] {
				alive = true
			}
		}
		c.owners = kept
		if owned && !alive {
			orphaned = append(orphaned, i)
		}
	}
	d.mu.Unlock()
	if len(orphaned) == 0 {
		return
	}
	f.reassignments.Add(uint64(len(orphaned)))
	f.ctrReassigned.Add(float64(len(orphaned)))

	if len(remaining) == 0 {
		f.localFallback(d, orphaned, "all workers lost mid-batch")
		return
	}
	perWorker := make([][]int, len(remaining))
	for _, i := range orphaned {
		wi := shardIndex(d.hashes[i], len(remaining))
		perWorker[wi] = append(perWorker[wi], i)
	}
	for wi, idxs := range perWorker {
		if len(idxs) > 0 {
			f.ship(d, remaining[wi], idxs, false)
		}
	}
}

// localFallback evaluates idxs on the coordinator's local backend — the
// graceful-degradation path for a fleet with no (or no surviving)
// workers. The engine's worker-budget hint splits between cell fan-out
// and intra-cell parallelism like the engine's own splitBudget, and a
// panicking backend is recovered into the cell's error so the dispatch
// always completes.
func (f *Fleet) localFallback(d *dispatch, idxs []int, why string) {
	f.fallbacks.Add(uint64(len(idxs)))
	f.ctrFallbacks.Add(float64(len(idxs)))
	f.log.Warn("remote: degrading to local evaluation", "cause", why,
		"backend", d.backend, "cells", len(idxs))
	budget := d.workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	jobWorkers := budget
	if jobWorkers > len(idxs) {
		jobWorkers = len(idxs)
	}
	intra := budget / jobWorkers
	if intra < 1 {
		intra = 1
	}
	var arg string
	if f.rec != nil {
		arg = fmt.Sprintf("%s: %d cells", d.backend, len(idxs))
	}
	span := f.rec.StartSpan(d.span, obs.CatRemote, "local-fallback", arg)
	_, _ = sched.Map(jobWorkers, idxs, func(_ int, i int) (struct{}, error) {
		met, err := f.evalLocal(d.local, d.jobs[i], intra)
		d.resolve(uint32(i), met, err, 0, nil)
		return struct{}{}, nil
	})
	span.End()
}

// evalLocal runs one job on the local backend with the granted intra
// budget, recovering a panic into an error.
func (f *Fleet) evalLocal(local engine.Backend, job engine.Job, intra int) (met engine.Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("remote: local fallback panicked on %v at %v: %v", job.Config, job.Cond, r)
		}
	}()
	if ib, ok := local.(engine.IntraBackend); ok && intra != 1 {
		return ib.EvaluateBudget(job.Config, job.Cond, intra)
	}
	return local.Evaluate(job.Config, job.Cond)
}

// acceptLoop admits workers until the listener closes.
func (f *Fleet) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.wg.Add(1)
		go f.handshake(conn)
	}
}

// handshake validates a dialing worker's hello (protocol version and
// calibration fingerprint), replies with a welcome, and on acceptance
// registers the worker and runs its read loop. A rejected worker gets
// the reason in its welcome frame — its operator sees why, instead of a
// silent drop.
func (f *Fleet) handshake(conn net.Conn) {
	defer f.wg.Done()
	r := bufio.NewReader(conn)
	typ, payload, n, err := readFrame(r)
	if err != nil || typ != frameHello {
		conn.Close()
		return
	}
	f.bytesReceived.Add(uint64(n))
	f.ctrBytesIn.Add(float64(n))
	hello, err := decodeHello(payload)
	reject := ""
	switch {
	case err != nil:
		reject = fmt.Sprintf("bad hello: %v", err)
	case hello.Proto != protoVersion:
		reject = fmt.Sprintf("protocol version %d, coordinator speaks %d", hello.Proto, protoVersion)
	case hello.Fingerprint != f.fingerprint:
		reject = "calibration fingerprint mismatch: recalibrate the worker with the coordinator's model"
	}
	frame := appendWelcome(nil, welcomeFrame{Reject: reject})
	if _, werr := conn.Write(frame); werr != nil || reject != "" {
		if reject != "" {
			f.rejected.Add(1)
			f.log.Warn("remote: worker rejected", "addr", conn.RemoteAddr().String(), "reason", reject)
		}
		conn.Close()
		return
	}
	f.bytesSent.Add(uint64(len(frame)))
	f.ctrBytesOut.Add(float64(len(frame)))

	w := &workerConn{conn: conn, capacity: int(hello.Capacity)}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		conn.Close()
		return
	}
	f.nextWorker++
	w.id = f.nextWorker
	f.workers = append(f.workers, w)
	n2 := len(f.workers)
	f.mu.Unlock()
	f.log.Info("remote: worker joined", "worker", w.id,
		"addr", conn.RemoteAddr().String(), "capacity", w.capacity, "workers", n2)
	f.readLoop(w, r)
}

// readLoop consumes one worker's result stream until the connection
// breaks, then drops the worker (reassigning its in-flight cells).
func (f *Fleet) readLoop(w *workerConn, r *bufio.Reader) {
	for {
		typ, payload, n, err := readFrame(r)
		if err != nil {
			f.dropWorker(w, err)
			return
		}
		f.bytesReceived.Add(uint64(n))
		f.ctrBytesIn.Add(float64(n))
		if typ != frameResult {
			f.dropWorker(w, fmt.Errorf("unexpected frame type %d", typ))
			return
		}
		res, err := decodeResult(payload)
		if err != nil {
			f.dropWorker(w, err)
			return
		}
		f.mu.Lock()
		d := f.dispatches[res.Dispatch]
		f.mu.Unlock()
		if d == nil {
			f.duplicates.Add(1) // dispatch finished or canceled; late result
			continue
		}
		var rerr error
		if res.Status == resultErr {
			rerr = fmt.Errorf("remote: worker %d: %s", w.id, res.Err)
		}
		d.resolve(res.Index, res.Met, rerr, res.DurNS, w)
	}
}
