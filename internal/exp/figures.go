package exp

import (
	"fmt"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/refdata"
	"optima/internal/report"
	"optima/internal/spice"
	"optima/internal/stats"
)

// Fig1 reproduces the state-of-the-art design-space comparison (paper
// Fig. 1) from the published design points.
func Fig1() (*report.Table, *report.Chart) {
	t := report.NewTable("Fig. 1 — State-of-the-art in-SRAM multiplication design space",
		"ref", "design", "venue", "energy [pJ]", "clock [MHz]", "bit width", "flavor")
	var c report.Chart
	c.Title = "Fig. 1 — Energy vs bit width of published in-SRAM multipliers"
	c.XLabel = "bit width [bits]"
	c.YLabel = "energy per op [pJ]"
	for _, p := range refdata.Figure1() {
		t.AddRow(p.Ref, p.Name, p.Venue, p.EnergyPJ, p.ClockMHz, p.BitWidth, p.Flavor)
		// One point per design (rendered as single-point series for a legend).
		if err := c.AddSeries(fmt.Sprintf("%s %s", p.Ref, p.Name),
			[]float64{float64(p.BitWidth)}, []float64{p.EnergyPJ}); err != nil {
			// Unreachable: equal-length slices by construction.
			panic(err)
		}
	}
	return t, &c
}

// Fig4Data holds the golden discharge non-ideality curves (paper Fig. 4).
type Fig4Data struct {
	// TimeCurves: V_BLB(t) per word-line voltage, with the velocity-
	// saturation boundary marked per curve.
	TimeChart *report.Chart
	// VWLCurve: V_BLB(τ0) as a function of V_WL (the nonlinearity the DAC
	// inherits).
	VWLChart *report.Chart
	// SubVtDischarge is the discharge at V_WL at the '0'-code voltage after
	// 2 ns — the asymmetry of Section III-1 [V].
	SubVtDischarge float64
}

// Fig4 runs the golden transients behind the paper's Fig. 4.
func (c *Context) Fig4() (*Fig4Data, error) {
	out := &Fig4Data{}
	cond := device.Nominal()
	timeChart := &report.Chart{
		Title:  "Fig. 4a — BLB discharge over time (golden simulation)",
		XLabel: "t [ns]", YLabel: "V_BL [V]",
	}
	const tMax = 2e-9
	for _, vwl := range []float64{0.4, 0.55, 0.7, 0.85, 1.0} {
		dp := spice.NewDischargePath(c.Tech, vwl, cond)
		res, err := dp.Discharge(tMax, c.Spice, 0.05e-9)
		if err != nil {
			return nil, fmt.Errorf("exp: fig4 vwl=%.2f: %w", vwl, err)
		}
		wf := res.Waveform
		xs := make([]float64, wf.Len())
		ys := make([]float64, wf.Len())
		for i := range wf.T {
			xs[i] = wf.T[i] * 1e9
			ys[i] = wf.V[i][0]
		}
		if err := timeChart.AddSeries(fmt.Sprintf("V_WL=%.2f V", vwl), xs, ys); err != nil {
			return nil, err
		}
	}
	out.TimeChart = timeChart

	vwlChart := &report.Chart{
		Title:  "Fig. 4b — V_BL at t = τ0 versus word-line voltage (golden)",
		XLabel: "V_WL [V]", YLabel: "V_BL [V]",
	}
	const tau0 = 1.6e-9 // the paper's Fig. 4b sampling instant
	var xs, ys []float64
	for _, vwl := range stats.Linspace(0.4, 1.0, 25) {
		dp := spice.NewDischargePath(c.Tech, vwl, cond)
		res, err := dp.Discharge(tau0, c.Spice, 0)
		if err != nil {
			return nil, err
		}
		xs = append(xs, vwl)
		ys = append(ys, res.Waveform.Final()[0])
	}
	if err := vwlChart.AddSeries("V_BL(τ0)", xs, ys); err != nil {
		return nil, err
	}
	out.VWLChart = vwlChart

	// The '0'-code asymmetry: discharge with V_WL = 0.3 V (a DAC zero).
	dp := spice.NewDischargePath(c.Tech, 0.3, cond)
	res, err := dp.Discharge(2e-9, c.Spice, 0)
	if err != nil {
		return nil, err
	}
	out.SubVtDischarge = cond.VDD - res.Waveform.Final()[0]
	return out, nil
}

// Fig5Data holds the PVT-variation discharge curves (paper Fig. 5).
type Fig5Data struct {
	SupplyChart   *report.Chart
	TempChart     *report.Chart
	CornerChart   *report.Chart
	MismatchChart *report.Chart
	// MismatchSpreadMV is the ±3σ band of ΔV_BL at t = 2 ns over the
	// Monte-Carlo population [mV] (paper Fig. 5d shows ≈ −10…+20 mV).
	MismatchSpreadMV float64
}

// Fig5 runs the golden PVT sweeps behind the paper's Fig. 5. mcSamples
// controls the mismatch population (the paper uses 1000).
func (c *Context) Fig5(mcSamples int) (*Fig5Data, error) {
	out := &Fig5Data{}
	const tMax = 2e-9
	const vwl = 1.0
	curve := func(cond device.PVT, vwlEff float64) ([]float64, []float64, error) {
		dp := spice.NewDischargePath(c.Tech, vwlEff, cond)
		res, err := dp.Discharge(tMax, c.Spice, 0.05e-9)
		if err != nil {
			return nil, nil, err
		}
		wf := res.Waveform
		xs := make([]float64, wf.Len())
		ys := make([]float64, wf.Len())
		for i := range wf.T {
			xs[i] = wf.T[i] * 1e9
			ys[i] = wf.V[i][0]
		}
		return xs, ys, nil
	}

	out.SupplyChart = &report.Chart{Title: "Fig. 5a — Supply voltage", XLabel: "t [ns]", YLabel: "V_BL [V]"}
	for _, vdd := range []float64{0.9, 1.0, 1.1} {
		cond := device.PVT{Corner: device.CornerTT, VDD: vdd, TempC: device.NominalTempC}
		xs, ys, err := curve(cond, core.SupplyScaledVWL(vwl, vdd))
		if err != nil {
			return nil, err
		}
		if err := out.SupplyChart.AddSeries(fmt.Sprintf("VDD=%.1f V", vdd), xs, ys); err != nil {
			return nil, err
		}
	}

	out.TempChart = &report.Chart{Title: "Fig. 5b — Temperature", XLabel: "t [ns]", YLabel: "V_BL [V]"}
	for _, tc := range []float64{0, 27, 60} {
		cond := device.PVT{Corner: device.CornerTT, VDD: device.NominalVDD, TempC: tc}
		xs, ys, err := curve(cond, vwl)
		if err != nil {
			return nil, err
		}
		if err := out.TempChart.AddSeries(fmt.Sprintf("T=%.0f °C", tc), xs, ys); err != nil {
			return nil, err
		}
	}

	out.CornerChart = &report.Chart{Title: "Fig. 5c — Process corners", XLabel: "t [ns]", YLabel: "V_BL [V]"}
	for _, corner := range device.Corners() {
		cond := device.PVT{Corner: corner, VDD: device.NominalVDD, TempC: device.NominalTempC}
		xs, ys, err := curve(cond, vwl)
		if err != nil {
			return nil, err
		}
		if err := out.CornerChart.AddSeries(corner.String(), xs, ys); err != nil {
			return nil, err
		}
	}

	// Fig. 5d: mismatch deviations ΔV_BL(t) for a Monte-Carlo population.
	if mcSamples <= 0 {
		mcSamples = 1000
	}
	out.MismatchChart = &report.Chart{Title: fmt.Sprintf("Fig. 5d — Mismatch (%d samples)", mcSamples), XLabel: "t [ns]", YLabel: "ΔV_BL [mV]"}
	cond := device.Nominal()
	nominal := spice.NewDischargePath(c.Tech, vwl, cond)
	nomRes, err := nominal.Discharge(tMax, c.Spice, 0.1e-9)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(0xf165d)
	var finalAcc stats.Accumulator
	plotted := 0
	for s := 0; s < mcSamples; s++ {
		dp := spice.NewDischargePath(c.Tech, vwl, cond)
		dp.SampleMismatch(rng)
		res, err := dp.Discharge(tMax, c.Spice, 0.1e-9)
		if err != nil {
			return nil, err
		}
		final := res.Waveform.Final()[0] - nomRes.Waveform.Final()[0]
		finalAcc.Add(final)
		// Plot a subsample of trajectories; statistics use all of them.
		if plotted < 40 {
			wf := res.Waveform
			xs := make([]float64, wf.Len())
			ys := make([]float64, wf.Len())
			for i := range wf.T {
				xs[i] = wf.T[i] * 1e9
				ys[i] = (wf.V[i][0] - nomRes.Waveform.NodeAt(0, wf.T[i])) * 1e3
			}
			if err := out.MismatchChart.AddSeries("", xs, ys); err != nil {
				return nil, err
			}
			plotted++
		}
	}
	out.MismatchSpreadMV = 3 * finalAcc.StdDev() * 1e3
	return out, nil
}
