package dataset

import (
	"math"
	"testing"

	"optima/internal/stats"
)

func TestGenerateShapes(t *testing.T) {
	cfg := Config{Name: "t", Classes: 5, TrainPerCls: 8, TestPerCls: 3, Noise: 0.05, Seed: 1}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Train.N != 40 || ds.Test.N != 15 {
		t.Fatalf("sizes %d/%d, want 40/15", ds.Train.N, ds.Test.N)
	}
	if ds.Train.C != Channels || ds.Train.H != Height || ds.Train.W != Width {
		t.Fatalf("train shape %s", ds.Train.Shape())
	}
	if len(ds.TrainY) != 40 || len(ds.TestY) != 15 {
		t.Fatal("label lengths wrong")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Classes: 1, TrainPerCls: 1, TestPerCls: 1}); err == nil {
		t.Fatal("degenerate config accepted")
	}
}

func TestPixelsInRange(t *testing.T) {
	ds, err := Generate(Config{Name: "t", Classes: 4, TrainPerCls: 10, TestPerCls: 5, Noise: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ds.Train.Data {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("pixel %g out of [0,1]", v)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := SynthCIFARConfig()
	cfg.TrainPerCls, cfg.TestPerCls = 5, 2
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train.Data {
		if a.Train.Data[i] != b.Train.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	cfg.Seed++
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Train.Data {
		if a.Train.Data[i] == c.Train.Data[i] {
			same++
		}
	}
	if same == len(a.Train.Data) {
		t.Fatal("different seed produced identical data")
	}
}

func TestLabelsBalancedAndInterleaved(t *testing.T) {
	ds, err := Generate(Config{Name: "t", Classes: 3, TrainPerCls: 4, TestPerCls: 2, Noise: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, y := range ds.TrainY {
		counts[y]++
	}
	for cls := 0; cls < 3; cls++ {
		if counts[cls] != 4 {
			t.Fatalf("class %d has %d samples, want 4", cls, counts[cls])
		}
	}
	// Interleaving: the first three labels cover all classes.
	if ds.TrainY[0] == ds.TrainY[1] && ds.TrainY[1] == ds.TrainY[2] {
		t.Fatal("labels not interleaved")
	}
}

func TestClassesAreDistinguishable(t *testing.T) {
	// Per-class pixel means must differ between classes and stay stable
	// within a class: nearest-centroid classification beats chance easily.
	ds, err := Generate(Config{Name: "t", Classes: 4, TrainPerCls: 30, TestPerCls: 15, Noise: 0.08, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	feat := ds.Train.FeatureLen()
	centroids := make([][]float64, 4)
	for cls := range centroids {
		centroids[cls] = make([]float64, feat)
	}
	counts := make([]int, 4)
	for n := 0; n < ds.Train.N; n++ {
		cls := ds.TrainY[n]
		counts[cls]++
		for i := 0; i < feat; i++ {
			centroids[cls][i] += ds.Train.Data[n*feat+i]
		}
	}
	for cls := range centroids {
		for i := range centroids[cls] {
			centroids[cls][i] /= float64(counts[cls])
		}
	}
	correct := 0
	for n := 0; n < ds.Test.N; n++ {
		best, bestDist := -1, math.Inf(1)
		for cls := range centroids {
			var d float64
			for i := 0; i < feat; i++ {
				diff := ds.Test.Data[n*feat+i] - centroids[cls][i]
				d += diff * diff
			}
			if d < bestDist {
				best, bestDist = cls, d
			}
		}
		if best == ds.TestY[n] {
			correct++
		}
	}
	acc := float64(correct) / float64(ds.Test.N)
	if acc < 0.5 {
		t.Fatalf("nearest-centroid accuracy %.2f, want ≥ 0.5 (chance = 0.25)", acc)
	}
}

func TestDefaultConfigs(t *testing.T) {
	img := SynthImageNetConfig()
	cif := SynthCIFARConfig()
	if img.Classes <= cif.Classes {
		t.Fatal("the ImageNet substitute must have more classes")
	}
	if img.Seed == cif.Seed {
		t.Fatal("datasets must draw independent prototype families")
	}
}

func TestPrototypeJitterVariesSamples(t *testing.T) {
	rng := stats.NewRNG(1)
	p := drawPrototype(rng)
	a := make([]float64, Channels*Height*Width)
	b := make([]float64, Channels*Height*Width)
	p.render(a, rng, 0.0)
	p.render(b, rng, 0.0)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("two samples of the same class are identical (no jitter)")
	}
}
