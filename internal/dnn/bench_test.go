package dnn

import (
	"testing"

	"optima/internal/stats"
)

func BenchmarkVGG16SForward(b *testing.B) {
	rng := stats.NewRNG(1)
	net, err := NewZooModel("VGG16S", 3, 12, 12, 20, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := randomTensor(rng, 1, 3, 12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkConvBackward(b *testing.B) {
	rng := stats.NewRNG(2)
	conv := NewConv2D("c", 8, 16, 3, rng)
	x := randomTensor(rng, 4, 8, 12, 12)
	out := conv.Forward(x, true)
	grad := out.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Backward(grad)
	}
}
