// Package remote distributes engine evaluations across a fleet of worker
// processes, sharding the (config × condition) plane behind the engine's
// memoizing cache.
//
// Topology: a coordinator (Fleet) listens on TCP; workers (Worker,
// typically cmd/optima-worker processes) dial in, handshake, and then pull
// batches of evaluation cells. The coordinator side plugs in beneath the
// engine as a Backend wrapper — Fleet.Backend(local) returns a Proxy that
// implements engine.Backend, engine.IntraBackend, and engine.BatchBackend —
// so EvaluateBatch, EvaluateMatrix, search runs, and the server all gain
// distribution with zero changes: the engine's store and cache layers run
// first, and only true misses are ever shipped.
//
// Sharding is key-range over engine.Key.Hash, the same host-stable hash the
// store uses, so a given cell lands on the same worker across batches and
// runs (store/trim affinity). Work stealing rebalances slow workers, dead
// workers have their in-flight cells reassigned exactly once per loss, and
// a fleet with zero live workers degrades to local evaluation rather than
// failing. Backends are deterministic, so first-result-wins deduplication
// is sound and results are byte-identical to a local run at any worker
// count.
//
// The wire protocol is length-prefixed binary frames with the same framing
// discipline as internal/store's codec: a u32 body length, a u32 CRC32 of
// the body, u16-length-prefixed strings, and metrics as little-endian
// math.Float64bits words — exact round-trip, no JSON in the hot path.
// The handshake carries a calibration fingerprint; a worker whose model
// calibration differs from the coordinator's is rejected at connect time,
// never silently mixed into results.
package remote
