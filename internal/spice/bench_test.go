package spice

import (
	"testing"

	"optima/internal/device"
)

func BenchmarkDischargeTransient(b *testing.B) {
	tech := device.Generic65()
	cond := device.Nominal()
	for i := 0; i < b.N; i++ {
		dp := NewDischargePath(tech, 0.9, cond)
		if _, err := dp.Discharge(2e-9, DefaultConfig(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCellWriteTransient(b *testing.B) {
	tech := device.Generic65()
	cond := device.Nominal()
	for i := 0; i < b.N; i++ {
		cw := NewSRAMCellWrite(tech, 0, cond.VDD, cond)
		if _, _, err := cw.Write(false, 300e-12, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
