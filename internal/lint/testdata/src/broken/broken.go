// Package broken fails to compile on purpose: the driver must degrade to a
// per-package "load" diagnostic — not crash — and keep analyzing the rest
// of the corpus. (The corpus test asserts this package's diagnostic by
// content, not by a // want comment: go list reports the failure without a
// stable in-file position.)
package broken

func typeError() int {
	return undefinedIdentifier
}
