package search_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"optima/internal/engine"
	"optima/internal/search"
)

func testSpaceSmall(t *testing.T) search.Space {
	t.Helper()
	sp, err := search.ParseSpaceSpec("0.16:0.28:4", "0.3,0.4", "0.8,1.0")
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestOptionsValidate(t *testing.T) {
	m := testModel(t)
	screen := engine.New(engine.Behavioral{Model: m}, 2)
	base := search.Options{Screen: screen}

	cases := []struct {
		name string
		mut  func(*search.Options)
		want string // substring of the error; empty means valid
	}{
		{"defaults", func(o *search.Options) {}, ""},
		{"missing screen", func(o *search.Options) { o.Screen = nil }, "Screen engine is required"},
		{"negative budget", func(o *search.Options) { o.Budget = -5 }, "budget -5 must be >= 0"},
		{"negative rungs", func(o *search.Options) { o.Rungs = -1 }, "rungs -1 must be >= 0"},
		{"negative finalists", func(o *search.Options) { o.Finalists = -2 }, "finalists -2 must be >= 0"},
		{"eta below one", func(o *search.Options) { o.Eta = 0.5 }, "must exceed 1"},
		{"eta exactly one", func(o *search.Options) { o.Eta = 1 }, "must exceed 1"},
		{"eta NaN", func(o *search.Options) { o.Eta = math.NaN() }, "non-finite"},
		{"eta Inf", func(o *search.Options) { o.Eta = math.Inf(1) }, "non-finite"},
		{"explicit valid", func(o *search.Options) { o.Budget, o.Rungs, o.Eta, o.Finalists = 10, 2, 3, 4 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := base
			tc.mut(&opts)
			err := opts.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want an error containing %q", err, tc.want)
			}
		})
	}
}

// TestRunObservers checks the live-progress contract the optima-server
// streams over WebSocket: OnRung fires once per rung, in order, with
// exactly the stats recorded in the trace; OnProgress is monotone within
// each rung and completes every rung's batch.
func TestRunObservers(t *testing.T) {
	m := testModel(t)
	sp := testSpaceSmall(t)

	var rungs []search.RungStats
	type prog struct{ rung, done, total int }
	var progress []prog
	res, err := search.Run(context.Background(), search.Options{
		Space:  sp,
		Screen: engine.New(engine.Behavioral{Model: m}, 4),
		Rungs:  2,
		Seed:   1,
		OnRung: func(rs search.RungStats) { rungs = append(rungs, rs) },
		OnProgress: func(rung, done, total int) {
			progress = append(progress, prog{rung, done, total})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rungs, res.Trace.Rungs) {
		t.Fatalf("OnRung saw %+v, want the trace's %+v", rungs, res.Trace.Rungs)
	}
	for i, rs := range rungs {
		if rs.Rung != i {
			t.Fatalf("rung %d reported index %d", i, rs.Rung)
		}
	}
	if len(progress) == 0 {
		t.Fatal("no OnProgress calls")
	}
	lastPerRung := map[int]prog{}
	prevDone := map[int]int{}
	for _, p := range progress {
		if p.done <= prevDone[p.rung] {
			t.Fatalf("rung %d progress not monotone: %v", p.rung, progress)
		}
		prevDone[p.rung] = p.done
		lastPerRung[p.rung] = p
	}
	for rung, p := range lastPerRung {
		if p.done != p.total {
			t.Fatalf("rung %d progress ended at %d/%d, want complete", rung, p.done, p.total)
		}
	}
}

func TestRunCanceled(t *testing.T) {
	m := testModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := search.Run(ctx, search.Options{
		Space:  testSpaceSmall(t),
		Screen: engine.New(engine.Behavioral{Model: m}, 2),
		Rungs:  2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on a canceled context returned %v, want context.Canceled", err)
	}
}
