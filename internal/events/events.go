// Package events is a discrete-event simulation kernel in the style of the
// SystemVerilog flow the paper embeds its behavioral models in: integer
// femtosecond time, a deterministic event scheduler, and value-change
// signals with monitors.
//
// OPTIMA's key idea is that analog bit-line behavior can be simulated "in an
// event-based fashion, akin to digital simulation tools" (Section IV): the
// calibrated models are evaluated only at scheduled instants (sampling
// switches closing, ADC strobes) instead of integrating differential
// equations. This kernel provides those instants.
package events

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is simulation time in integer femtoseconds. Integer time makes event
// ordering exact and runs reproducible.
type Time int64

// Time unit constants.
const (
	Femtosecond Time = 1
	Picosecond  Time = 1000 * Femtosecond
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
)

// Seconds converts a Time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) * 1e-15 }

// FromSeconds converts floating-point seconds to the nearest Time.
func FromSeconds(s float64) Time { return Time(s*1e15 + 0.5) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Nanosecond:
		return fmt.Sprintf("%.3f ns", float64(t)/float64(Nanosecond))
	case t >= Picosecond:
		return fmt.Sprintf("%.3f ps", float64(t)/float64(Picosecond))
	default:
		return fmt.Sprintf("%d fs", int64(t))
	}
}

// Event is a scheduled callback. Events are ordered by time, then by
// scheduling sequence (FIFO among simultaneous events), which makes runs
// deterministic.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Cancel prevents a pending event from firing. Canceling an already-fired
// or already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Time returns the scheduled activation time.
func (e *Event) Time() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// ErrPast is returned when scheduling before the current simulation time.
var ErrPast = errors.New("events: cannot schedule in the past")

// Simulator owns the event queue and the simulation clock. The zero value
// is ready to use. Simulators are not safe for concurrent use; run one
// simulation per goroutine.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	fired   uint64
}

// NewSimulator returns a simulator at time zero.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// EventsFired returns the number of events executed so far.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Pending returns the number of events still queued (including canceled
// ones not yet reaped).
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule queues fn to run after the given delay and returns a handle that
// can cancel it. It returns ErrPast for negative delays.
func (s *Simulator) Schedule(delay Time, fn func()) (*Event, error) {
	return s.At(s.now+delay, fn)
}

// At queues fn to run at the absolute time t.
func (s *Simulator) At(t Time, fn func()) (*Event, error) {
	if t < s.now {
		return nil, fmt.Errorf("events: at %v (now %v): %w", t, s.now, ErrPast)
	}
	if fn == nil {
		return nil, errors.New("events: nil event function")
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e, nil
}

// Stop makes Run return after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in order until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.RunUntil(1<<62 - 1)
}

// RunUntil executes events with activation time ≤ limit. The clock is left
// at the last executed event (or limit if nothing ran beyond it).
func (s *Simulator) RunUntil(limit Time) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.at > limit {
			break
		}
		heap.Pop(&s.queue)
		if next.canceled {
			continue
		}
		s.now = next.at
		s.fired++
		next.fn()
	}
	if s.now < limit && len(s.queue) == 0 {
		// Leave the clock where the last event ran; an empty queue does not
		// advance time further.
		return
	}
}

// Reset clears the queue and rewinds the clock to zero.
func (s *Simulator) Reset() {
	s.queue = nil
	s.now = 0
	s.seq = 0
	s.stopped = false
	s.fired = 0
}
