package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func names(results []result, wantRegression bool) []string {
	var out []string
	for _, r := range results {
		if r.regression == wantRegression {
			out = append(out, r.line)
		}
	}
	return out
}

func TestGateFlagsOnlyRealRegressions(t *testing.T) {
	baseline := []Bench{
		{Name: "BenchmarkEngineSweep/cold", NsPerOp: 1000},
		{Name: "BenchmarkEngineSweep/cached", NsPerOp: 100},
		{Name: "BenchmarkSearchAdaptive/cold", NsPerOp: 5000},
		{Name: "BenchmarkRemoved", NsPerOp: 10},
		{Name: "BenchmarkZeroBase", NsPerOp: 0},
	}
	fresh := []Bench{
		{Name: "BenchmarkEngineSweep/cold", NsPerOp: 1290},   // +29%: within budget
		{Name: "BenchmarkEngineSweep/cached", NsPerOp: 131},  // +31%: regression
		{Name: "BenchmarkSearchAdaptive/cold", NsPerOp: 900}, // faster
		{Name: "BenchmarkAdded", NsPerOp: 42},                // no baseline
		{Name: "BenchmarkZeroBase", NsPerOp: 77},             // baseline 0: skipped
	}
	results := gate(baseline, fresh, 0.30)
	regs := names(results, true)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkEngineSweep/cached") {
		t.Fatalf("regressions = %v, want exactly the cached sweep", regs)
	}
	var added, gone, skipped bool
	for _, line := range names(results, false) {
		added = added || strings.HasPrefix(line, "NEW") && strings.Contains(line, "BenchmarkAdded")
		gone = gone || strings.HasPrefix(line, "GONE") && strings.Contains(line, "BenchmarkRemoved")
		skipped = skipped || strings.HasPrefix(line, "SKIP") && strings.Contains(line, "BenchmarkZeroBase")
	}
	if !added || !gone || !skipped {
		t.Fatalf("missing NEW/GONE/SKIP reporting: added=%v gone=%v skipped=%v", added, gone, skipped)
	}
}

func TestGateExactBoundaryPasses(t *testing.T) {
	baseline := []Bench{{Name: "B", NsPerOp: 1000}}
	fresh := []Bench{{Name: "B", NsPerOp: 1300}} // exactly +30%
	if regs := names(gate(baseline, fresh, 0.30), true); len(regs) != 0 {
		t.Fatalf("+30%% exactly should pass, got %v", regs)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	blob := `[{"name": "BenchmarkX", "iterations": 2, "ns_per_op": 123.5}]`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "BenchmarkX" || got[0].NsPerOp != 123.5 || got[0].Iterations != 2 {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Fatalf("missing file: %v, want IsNotExist", err)
	}
}
