// PVT robustness: analyze one multiplier configuration across supply,
// temperature and mismatch — the paper's Fig. 8 methodology applied to a
// user-chosen design point.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/mult"
	"optima/internal/report"
	"optima/internal/stats"
)

func main() {
	tau0 := flag.Float64("tau0", 0.16, "discharge time of the LSB bit line [ns]")
	vdac0 := flag.Float64("vdac0", 0.3, "DAC output for code 0 [V]")
	vdacfs := flag.Float64("vdacfs", 1.0, "DAC full-scale output [V]")
	flag.Parse()

	model, err := core.Calibrate(core.QuickCalibration())
	if err != nil {
		log.Fatal(err)
	}
	cfg := mult.Config{Tau0: *tau0 * 1e-9, VDAC0: *vdac0, VDACFS: *vdacfs}
	fmt.Printf("configuration: %v\n\n", cfg)

	// Nominal metrics.
	met, err := dse.Evaluate(model, cfg, device.Nominal())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nominal: ϵ=%.2f LSB, E=%.1f fJ, σ@(15,15)=%.2f LSB (%.2f mV)\n\n",
		met.EpsMul, met.EMul*1e15, met.SigmaMaxLSB, met.SigmaMaxVolt*1e3)

	// Both condition sweeps share one evaluation engine.
	eng := engine.New(engine.Behavioral{Model: model}, 0)

	// Supply sweep (paper Fig. 8 right, top).
	vddSweep, err := dse.SweepVDD(eng, cfg, stats.Linspace(0.90, 1.10, 9))
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.NewTable("Error vs supply", "VDD [V]", "ϵ_mul [LSB]", "E_mul [fJ]")
	for i := range vddSweep.X {
		tbl.AddRow(vddSweep.X[i], vddSweep.AvgError[i], vddSweep.AvgEnergy[i]*1e15)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Temperature sweep (paper Fig. 8 right, bottom).
	tempSweep, err := dse.SweepTemp(eng, cfg, stats.Linspace(0, 60, 7))
	if err != nil {
		log.Fatal(err)
	}
	tbl = report.NewTable("Error vs temperature", "T [°C]", "ϵ_mul [LSB]", "E_mul [fJ]")
	for i := range tempSweep.X {
		tbl.AddRow(tempSweep.X[i], tempSweep.AvgError[i], tempSweep.AvgEnergy[i]*1e15)
	}
	fmt.Println()
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Per-result profile (paper Fig. 8 left) as an ASCII chart.
	prof, err := dse.ProfileByResult(model, cfg, device.Nominal())
	if err != nil {
		log.Fatal(err)
	}
	xs := make([]float64, len(prof.Expected))
	for i, e := range prof.Expected {
		xs[i] = float64(e)
	}
	var chart report.Chart
	chart.Title = "Average error (o) and analog sigma (*) vs expected result"
	chart.XLabel = "expected result [LSB]"
	chart.YLabel = "LSB"
	if err := chart.AddSeries("sigma", xs, prof.SigmaLSB); err != nil {
		log.Fatal(err)
	}
	if err := chart.AddSeries("avg error", xs, prof.AvgError); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := chart.RenderASCII(os.Stdout, 70, 16); err != nil {
		log.Fatal(err)
	}

	// Monte-Carlo cross-check of the analytic expectation.
	mc, err := dse.MCValidation(model, cfg, device.Nominal(), 10, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMonte-Carlo ϵ̄ over 10 input-space passes: %.2f LSB (analytic: %.2f)\n", mc, met.EpsMul)
}
