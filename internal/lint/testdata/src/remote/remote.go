// Package remote is the expected-diagnostic corpus pinning the
// distributed-evaluation invariants: a wire frame must never be assembled
// in map iteration order (two coordinators would ship byte-different
// batches for the same cell set), and a shipped result must never derive
// from the wall clock (a re-run would decode different bytes). The clean
// twins show the required idioms — sort the keys before encoding, take
// durations as inputs.
package remote

import (
	"sort"
	"time"
)

// badFrameFromMapOrder assembles a batch body by ranging over the cell
// map directly: the frame bytes inherit the randomized iteration order.
func badFrameFromMapOrder(cells map[uint32][]byte) []byte {
	var frame []byte
	for _, body := range cells {
		frame = append(frame, body...) // want "accumulation into frame"
	}
	return frame
}

// goodFrameSortedKeys is the required idiom: a canonical key order before
// any byte reaches the frame.
func goodFrameSortedKeys(cells map[uint32][]byte) []byte {
	keys := make([]uint32, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var frame []byte
	for _, k := range keys {
		frame = append(frame, cells[k]...)
	}
	return frame
}

// badWallClockResult stamps a result frame with the wall clock: the same
// cell evaluated twice would ship different bytes.
func badWallClockResult(payload []byte) []byte {
	ns := time.Now().UnixNano() // want "time.Now"
	return append(payload, byte(ns))
}

// goodDurationAsInput takes the measured duration as an argument — the
// recorder owns time; the codec only ever sees a value.
func goodDurationAsInput(payload []byte, dur time.Duration) []byte {
	return append(payload, byte(dur/time.Millisecond))
}
