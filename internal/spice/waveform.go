package spice

import (
	"fmt"
	"sort"
)

// Waveform stores sampled node voltages over time.
type Waveform struct {
	T []float64   // sample times [s], strictly increasing
	V [][]float64 // V[i] is the state vector at T[i]
	n int         // nodes per sample
}

// NewWaveform returns an empty waveform for n nodes.
func NewWaveform(n int) *Waveform {
	return &Waveform{n: n}
}

// Nodes returns the number of nodes per sample.
func (w *Waveform) Nodes() int { return w.n }

// Len returns the number of samples.
func (w *Waveform) Len() int { return len(w.T) }

// Append records a sample; the state is copied.
func (w *Waveform) Append(t float64, v []float64) {
	if len(v) != w.n {
		panic(fmt.Sprintf("spice: waveform append with %d nodes, want %d", len(v), w.n))
	}
	if len(w.T) > 0 && t <= w.T[len(w.T)-1] {
		// Replace a duplicate endpoint rather than violating monotonicity.
		if t == w.T[len(w.T)-1] {
			copy(w.V[len(w.V)-1], v)
			return
		}
		panic(fmt.Sprintf("spice: waveform time %g not increasing (last %g)", t, w.T[len(w.T)-1]))
	}
	w.T = append(w.T, t)
	cp := make([]float64, w.n)
	copy(cp, v)
	w.V = append(w.V, cp)
}

// Node returns the time series of node i as a fresh slice.
func (w *Waveform) Node(i int) []float64 {
	out := make([]float64, len(w.V))
	for k, v := range w.V {
		out[k] = v[i]
	}
	return out
}

// At returns the linearly interpolated state at time t. Times outside the
// recorded range clamp to the endpoints.
func (w *Waveform) At(t float64) []float64 {
	out := make([]float64, w.n)
	if len(w.T) == 0 {
		return out
	}
	if t <= w.T[0] {
		copy(out, w.V[0])
		return out
	}
	last := len(w.T) - 1
	if t >= w.T[last] {
		copy(out, w.V[last])
		return out
	}
	hi := sort.SearchFloat64s(w.T, t)
	lo := hi - 1
	f := (t - w.T[lo]) / (w.T[hi] - w.T[lo])
	for i := 0; i < w.n; i++ {
		out[i] = w.V[lo][i]*(1-f) + w.V[hi][i]*f
	}
	return out
}

// NodeAt returns the interpolated voltage of node i at time t.
func (w *Waveform) NodeAt(i int, t float64) float64 {
	return w.At(t)[i]
}

// Final returns the last recorded state.
func (w *Waveform) Final() []float64 {
	if len(w.V) == 0 {
		return make([]float64, w.n)
	}
	out := make([]float64, w.n)
	copy(out, w.V[len(w.V)-1])
	return out
}

// CrossingTime returns the first time node i crosses the given level (in
// either direction), or -1 if it never does within the record.
func (w *Waveform) CrossingTime(i int, level float64) float64 {
	for k := 1; k < len(w.T); k++ {
		a, b := w.V[k-1][i], w.V[k][i]
		if (a-level)*(b-level) <= 0 && a != b {
			f := (level - a) / (b - a)
			return w.T[k-1] + f*(w.T[k]-w.T[k-1])
		}
	}
	return -1
}
