package engine

import (
	"errors"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/mult"
)

// fakeBackend synthesizes metrics from the configuration and counts real
// evaluations, so cache accounting is observable.
type fakeBackend struct {
	evals atomic.Int64
	fail  mult.Config // evaluating this config errors (zero value = never)
}

func (f *fakeBackend) Name() string { return "fake" }

func (f *fakeBackend) Evaluate(cfg mult.Config, cond device.PVT) (Metrics, error) {
	f.evals.Add(1)
	if cfg == f.fail {
		return Metrics{}, errors.New("synthetic corner failure")
	}
	return Metrics{
		Config: cfg,
		Cond:   cond,
		EpsMul: cfg.Tau0 * 1e9,
		EMul:   cfg.VDACFS * 1e-15,
	}, nil
}

func testJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Config: mult.Config{Tau0: float64(i+1) * 0.1e-9, VDAC0: 0.3, VDACFS: 1.0},
			Cond:   device.Nominal(),
		}
	}
	return jobs
}

func TestCacheHitMissAccounting(t *testing.T) {
	fake := &fakeBackend{}
	eng := New(fake, 4)
	jobs := testJobs(12)

	cold, err := eng.EvaluateAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := fake.evals.Load(); got != 12 {
		t.Fatalf("cold sweep ran %d backend evaluations, want 12", got)
	}
	st := eng.Stats()
	if st.Misses != 12 || st.Hits != 0 || st.Entries != 12 {
		t.Fatalf("cold stats %+v, want 12 misses / 0 hits / 12 entries", st)
	}

	warm, err := eng.EvaluateAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := fake.evals.Load(); got != 12 {
		t.Fatalf("warm sweep re-ran the backend: %d evaluations", got)
	}
	st = eng.Stats()
	if st.Misses != 12 || st.Hits != 12 {
		t.Fatalf("warm stats %+v, want 12 misses / 12 hits", st)
	}
	for i := range jobs {
		if cold[i] != warm[i] {
			t.Fatalf("cached result %d differs from cold result", i)
		}
	}
}

func TestConcurrentSubmissionSingleflight(t *testing.T) {
	fake := &fakeBackend{}
	eng := New(fake, 0)
	jobs := testJobs(4)

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, j := range jobs {
				m, err := eng.Evaluate(j.Config, j.Cond)
				if err != nil {
					t.Error(err)
					return
				}
				if m.Config != j.Config {
					t.Errorf("result for wrong config: %v", m.Config)
					return
				}
			}
		}()
	}
	wg.Wait()
	// 16 goroutines × 4 jobs, but only 4 distinct keys: every duplicate must
	// have shared the in-flight or cached evaluation.
	if got := fake.evals.Load(); got != 4 {
		t.Fatalf("%d backend evaluations, want 4", got)
	}
	st := eng.Stats()
	if st.Misses != 4 || st.Hits != 60 {
		t.Fatalf("stats %+v, want 4 misses / 60 hits", st)
	}
}

func TestErrorsAreCachedAndAbortSweeps(t *testing.T) {
	bad := mult.Config{Tau0: 0.2e-9, VDAC0: 0.3, VDACFS: 1.0}
	fake := &fakeBackend{fail: bad}
	eng := New(fake, 2)

	if _, err := eng.Evaluate(bad, device.Nominal()); err == nil {
		t.Fatal("failing corner did not error")
	}
	if _, err := eng.Evaluate(bad, device.Nominal()); err == nil {
		t.Fatal("cached failure did not error")
	}
	if got := fake.evals.Load(); got != 1 {
		t.Fatalf("failure evaluated %d times, want 1 (errors are cached)", got)
	}

	jobs := append(testJobs(6), Job{Config: bad, Cond: device.Nominal()})
	if _, err := eng.EvaluateAll(jobs); err == nil {
		t.Fatal("sweep with failing corner did not abort")
	}
}

// panicBackend panics on every evaluation — the regression fixture for the
// claim-safety fix: before it, a backend panic left the claimed cache entry
// unresolved and every later submitter of the key blocked forever on its
// done channel.
type panicBackend struct{}

func (panicBackend) Name() string { return "panic" }
func (panicBackend) Evaluate(mult.Config, device.PVT) (Metrics, error) {
	panic("synthetic backend panic")
}

// TestBackendPanicResolvesClaimedEntry submits the same key from several
// goroutines against a panicking backend. Pre-fix this test dies on the
// uncaught panic (and the waiters would hang forever); post-fix every
// submitter — the one that ran the backend and the ones waiting on its
// claim — gets an error, within the deadline.
func TestBackendPanicResolvesClaimedEntry(t *testing.T) {
	eng := New(panicBackend{}, 2)
	job := testJobs(1)[0]

	const submitters = 4
	done := make(chan error, submitters)
	for i := 0; i < submitters; i++ {
		go func() {
			_, err := eng.Evaluate(job.Config, job.Cond)
			done <- err
		}()
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < submitters; i++ {
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("submitter got %v, want a backend-panicked error", err)
			}
		case <-deadline:
			t.Fatal("submitter blocked on the panicked backend's claimed entry")
		}
	}
	// The panic is cached like any deterministic failure.
	if _, err := eng.Evaluate(job.Config, job.Cond); err == nil {
		t.Fatal("cached panic did not error")
	}

	// The batched path resolves every claimed entry too: the batch errors
	// but returns instead of hanging, and re-submitting doesn't hang either.
	batchDone := make(chan error, 1)
	go func() {
		_, err := eng.EvaluateBatch(testJobs(3))
		batchDone <- err
	}()
	select {
	case err := <-batchDone:
		if err == nil {
			t.Fatal("batch over a panicking backend did not error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("batch blocked on panicked backend entries")
	}
}

func TestStatsString(t *testing.T) {
	cases := []struct {
		st   Stats
		want string
	}{
		{Stats{Misses: 3, Hits: 1, Entries: 3}, "3 evaluated, 1 cache hits, 3 entries"},
		{Stats{Misses: 2, DiskHits: 5, Entries: 7}, "2 evaluated, 0 cache hits, 7 entries, 5 store hits"},
		// Store errors without disk hits must not print "0 store hits".
		{Stats{Misses: 4, StoreErrors: 2, Entries: 4}, "4 evaluated, 0 cache hits, 4 entries, 2 store errors"},
		{Stats{Misses: 1, DiskHits: 3, StoreErrors: 1, Entries: 4}, "1 evaluated, 0 cache hits, 4 entries, 3 store hits, 1 store errors"},
	}
	for _, c := range cases {
		if got := c.st.String(); got != c.want {
			t.Errorf("Stats%+v.String() = %q, want %q", c.st, got, c.want)
		}
	}
}

func TestSplitBudget(t *testing.T) {
	eng := New(&fakeBackend{}, 8)
	cases := []struct {
		jobs                              int
		wantWorkers, wantIntra, wantExtra int
	}{
		{1, 1, 8, 0},  // one job gets the whole budget
		{3, 3, 2, 2},  // 3×2 + 2 remainder grants = exactly 8
		{8, 8, 1, 0},  // exact fit
		{48, 8, 1, 0}, // more jobs than budget: job-level fan-out only
	}
	for _, c := range cases {
		gotW, gotI, gotE := eng.splitBudget(c.jobs)
		if gotW != c.wantWorkers || gotI != c.wantIntra || gotE != c.wantExtra {
			t.Errorf("splitBudget(%d) = (%d, %d, %d), want (%d, %d, %d)",
				c.jobs, gotW, gotI, gotE, c.wantWorkers, c.wantIntra, c.wantExtra)
		}
		// The grants of all potentially concurrent jobs must cover — and
		// never exceed — the budget.
		inFlight := c.jobs
		if inFlight > gotW {
			inFlight = gotW
		}
		sum := inFlight*gotI + gotE
		if sum > eng.Workers() {
			t.Errorf("splitBudget(%d) oversubscribes: %d×%d + %d extra > %d", c.jobs, inFlight, gotI, gotE, eng.Workers())
		}
		if c.jobs <= eng.Workers() && sum != eng.Workers() {
			t.Errorf("splitBudget(%d) strands budget: %d×%d + %d extra < %d", c.jobs, inFlight, gotI, gotE, eng.Workers())
		}
	}
}

// intraFake records the intra-job budgets the engine grants, so the
// job-level/intra-job negotiation is observable.
type intraFake struct {
	fakeBackend
	mu     sync.Mutex
	intras []int
}

func (f *intraFake) EvaluateBudget(cfg mult.Config, cond device.PVT, intra int) (Metrics, error) {
	f.mu.Lock()
	f.intras = append(f.intras, intra)
	f.mu.Unlock()
	return f.Evaluate(cfg, cond)
}

func TestEngineGrantsIntraBudget(t *testing.T) {
	fake := &intraFake{}
	eng := New(fake, 8)

	// A single submission gets the whole budget.
	job := testJobs(1)[0]
	if _, err := eng.Evaluate(job.Config, job.Cond); err != nil {
		t.Fatal(err)
	}
	if len(fake.intras) != 1 || fake.intras[0] != 8 {
		t.Fatalf("single Evaluate granted %v, want [8]", fake.intras)
	}

	// A 2-job batch splits 8 = 2 jobs × 4 intra.
	fake.intras = nil
	if _, err := eng.EvaluateBatch(testJobs(3)[1:]); err != nil {
		t.Fatal(err)
	}
	if len(fake.intras) != 2 || fake.intras[0] != 4 || fake.intras[1] != 4 {
		t.Fatalf("2-job batch granted %v, want [4 4]", fake.intras)
	}

	// A 3-job batch splits 8 = 3 jobs × 2 intra + 2 remainder grants — the
	// budget is never stranded by integer division.
	fake.intras = nil
	if _, err := eng.EvaluateBatch(testJobs(15)[12:]); err != nil {
		t.Fatal(err)
	}
	sort.Ints(fake.intras)
	if len(fake.intras) != 3 || fake.intras[0] != 2 || fake.intras[1] != 3 || fake.intras[2] != 3 {
		t.Fatalf("3-job batch granted %v, want [2 3 3]", fake.intras)
	}

	// A batch at least as wide as the budget grants intra = 1, which the
	// engine serves through plain Evaluate (no budget call at all).
	fake.intras = nil
	if _, err := eng.EvaluateBatch(testJobs(12)[3:]); err != nil {
		t.Fatal(err)
	}
	if len(fake.intras) != 0 {
		t.Fatalf("wide batch granted %v, want Evaluate (intra=1) for every job", fake.intras)
	}
}

var (
	equivOnce  sync.Once
	equivModel *core.Model
	equivErr   error
)

// TestBackendEquivalenceSmoke cross-checks the two production backends on a
// handful of corners: the behavioral models are calibrated against the
// golden simulator, so both must agree on the accuracy and energy of a
// corner within the calibration residuals (the behavioral ϵ additionally
// carries the analytic noise expectation, so the tolerance is in LSBs, not
// bits).
func TestBackendEquivalenceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("golden-simulation bound")
	}
	equivOnce.Do(func() {
		equivModel, equivErr = core.Calibrate(core.QuickCalibration())
	})
	if equivErr != nil {
		t.Fatal(equivErr)
	}
	calib := core.QuickCalibration()
	behavioral := New(Behavioral{Model: equivModel}, 0)
	golden := New(NewGoldenBackend(calib.Tech, calib.Spice), 0)

	jobs := Jobs([]mult.Config{
		{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0},
		{Tau0: 0.28e-9, VDAC0: 0.4, VDACFS: 0.8},
	}, device.Nominal())
	cmps, err := CompareAll(behavioral, golden, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cmps {
		if c.A.EpsMul <= 0 || c.B.EpsMul < 0 {
			t.Fatalf("corner %v: degenerate errors %+v", c.Job.Config, c)
		}
		// Both backends must produce a usable variation criterion (the
		// golden one comes from Monte-Carlo mismatch sampling).
		if c.A.SigmaMaxLSB <= 0 || c.B.SigmaMaxLSB <= 0 {
			t.Errorf("corner %v: σ@max missing (behavioral %.3f, golden %.3f LSB)",
				c.Job.Config, c.A.SigmaMaxLSB, c.B.SigmaMaxLSB)
		}
		if math.Abs(c.DeltaEps) > 2.0 {
			t.Errorf("corner %v: ϵ disagreement %.2f LSB (behavioral %.2f, golden %.2f)",
				c.Job.Config, c.DeltaEps, c.A.EpsMul, c.B.EpsMul)
		}
		if c.EnergyRatio < 0.7 || c.EnergyRatio > 1.3 {
			t.Errorf("corner %v: energy ratio %.2f outside [0.7, 1.3] (behavioral %.1f fJ, golden %.1f fJ)",
				c.Job.Config, c.EnergyRatio, c.A.EMul*1e15, c.B.EMul*1e15)
		}
	}
}

// fakeStore is an in-memory engine.Store with call accounting, so the
// tiered lookup path is observable without touching disk (internal/store
// tests the real implementation against a live engine).
type fakeStore struct {
	mu      sync.Mutex
	data    map[Key]Metrics
	gets    int
	puts    int // PutBatch calls, not entries
	putKeys int
	failPut bool
}

func newFakeStore() *fakeStore { return &fakeStore{data: map[Key]Metrics{}} }

func (s *fakeStore) Get(key Key) (Metrics, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	met, ok := s.data[key]
	return met, ok
}

func (s *fakeStore) PutBatch(entries []CacheEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.putKeys += len(entries)
	if s.failPut {
		return errors.New("synthetic store failure")
	}
	for _, ent := range entries {
		s.data[ent.Key] = ent.Met
	}
	return nil
}

func TestTieredLookupAndGroupPersist(t *testing.T) {
	fake := &fakeBackend{}
	disk := newFakeStore()
	eng := New(fake, 4).WithStore(disk)
	jobs := testJobs(12)

	// Cold batch: every corner runs the backend and persists in ONE group.
	if _, err := eng.EvaluateBatch(jobs); err != nil {
		t.Fatal(err)
	}
	if got := fake.evals.Load(); got != 12 {
		t.Fatalf("cold batch ran %d backend evaluations, want 12", got)
	}
	if disk.puts != 1 || disk.putKeys != 12 {
		t.Fatalf("cold batch persisted %d keys in %d writes, want 12 in 1", disk.putKeys, disk.puts)
	}
	st := eng.Stats()
	if st.Misses != 12 || st.DiskHits != 0 {
		t.Fatalf("cold stats %+v", st)
	}

	// A second engine over the same store: zero backend work, all disk.
	eng2 := New(&fakeBackend{}, 4).WithStore(disk)
	warm, err := eng2.EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st = eng2.Stats()
	if st.Misses != 0 || st.DiskHits != 12 || st.Hits != 0 {
		t.Fatalf("warm stats %+v, want 0 misses / 12 disk hits", st)
	}
	for i, j := range jobs {
		if warm[i].Config != j.Config {
			t.Fatalf("disk tier returned wrong corner at %d", i)
		}
	}
	// Third sweep on the same engine: memory tier, no store traffic.
	getsBefore := disk.gets
	if _, err := eng2.EvaluateBatch(jobs); err != nil {
		t.Fatal(err)
	}
	if disk.gets != getsBefore {
		t.Fatal("memory-tier hits must not consult the store")
	}
	if st := eng2.Stats(); st.Hits != 12 {
		t.Fatalf("memory-tier stats %+v", st)
	}
}

func TestEvaluateSingleUsesTiers(t *testing.T) {
	fake := &fakeBackend{}
	disk := newFakeStore()
	eng := New(fake, 0).WithStore(disk)
	job := testJobs(1)[0]

	if _, err := eng.Evaluate(job.Config, job.Cond); err != nil {
		t.Fatal(err)
	}
	if disk.putKeys != 1 {
		t.Fatalf("single evaluation persisted %d keys, want 1", disk.putKeys)
	}
	eng2 := New(fake, 0).WithStore(disk)
	if _, err := eng2.Evaluate(job.Config, job.Cond); err != nil {
		t.Fatal(err)
	}
	if got := fake.evals.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want 1 (second hit from disk)", got)
	}
	if st := eng2.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStoreFailureIsBestEffort(t *testing.T) {
	fake := &fakeBackend{}
	disk := newFakeStore()
	disk.failPut = true
	eng := New(fake, 2).WithStore(disk)
	jobs := testJobs(6)
	mets, err := eng.EvaluateBatch(jobs)
	if err != nil {
		t.Fatalf("store failure must not fail the sweep: %v", err)
	}
	if len(mets) != 6 {
		t.Fatalf("sweep returned %d results", len(mets))
	}
	st := eng.Stats()
	if st.StoreErrors == 0 {
		t.Fatal("failed persistence not accounted")
	}
	if st.Misses != 6 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEvaluateBatchDedupesAndOrders(t *testing.T) {
	fake := &fakeBackend{}
	eng := New(fake, 3)
	base := testJobs(4)
	jobs := append(append([]Job{}, base...), base[1], base[3], base[1])

	mets, err := eng.EvaluateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := fake.evals.Load(); got != 4 {
		t.Fatalf("batch with duplicates ran %d backend evaluations, want 4", got)
	}
	for i, j := range jobs {
		if mets[i].Config != j.Config || mets[i].Cond != j.Cond {
			t.Fatalf("result %d out of order: got %v, want %v", i, mets[i].Config, j.Config)
		}
	}
	if st := eng.Stats(); st.Misses != 4 || st.Hits != 3 {
		t.Fatalf("stats %+v, want 4 misses / 3 hits", st)
	}
}

func TestEvaluateBatchErrorByJobIndex(t *testing.T) {
	bad := mult.Config{Tau0: 0.2e-9, VDAC0: 0.3, VDACFS: 1.0}
	fake := &fakeBackend{fail: bad}
	eng := New(fake, 2)
	// testJobs(5) spans τ0 = 0.1…0.5 ns, so jobs[2] (0.2 ns) duplicates the
	// failing corner and the batch holds 5 distinct keys.
	jobs := append([]Job{{Config: bad, Cond: device.Nominal()}}, testJobs(5)...)
	if _, err := eng.EvaluateBatch(jobs); err == nil {
		t.Fatal("batch with failing corner did not error")
	}
	if got := fake.evals.Load(); got != 5 {
		t.Fatalf("failed batch ran %d backend evaluations, want 5 (dedupe + run to completion)", got)
	}
	// The healthy corners of the batch are resolved and cached: re-scoring
	// one runs no backend work.
	if _, err := eng.Evaluate(jobs[3].Config, jobs[3].Cond); err != nil {
		t.Fatal(err)
	}
	if got := fake.evals.Load(); got != 5 {
		t.Fatalf("healthy corner of failed batch not cached: %d evaluations", got)
	}
}
