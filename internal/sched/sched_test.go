package sched

import (
	"errors"
	"testing"
)

func TestMapOrderingAndErrors(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(8, items, func(i, v int) (int, error) { return v * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d, want %d (ordering broken)", i, v, 2*i)
		}
	}

	wantErr := errors.New("boom")
	if _, err := Map(8, items, func(i, v int) (int, error) {
		if v >= 37 {
			return 0, wantErr
		}
		return v, nil
	}); !errors.Is(err, wantErr) {
		t.Fatalf("Map error = %v, want %v", err, wantErr)
	}

	if out, err := Map(4, nil, func(i, v int) (int, error) { return v, nil }); err != nil || out != nil {
		t.Fatalf("empty Map = (%v, %v), want (nil, nil)", out, err)
	}
}

func TestMapWorkerClamping(t *testing.T) {
	// More workers than items, and the GOMAXPROCS default, must both work.
	for _, workers := range []int{0, -1, 1, 64} {
		out, err := Map(workers, []int{1, 2, 3}, func(i, v int) (int, error) { return v, nil })
		if err != nil || len(out) != 3 {
			t.Fatalf("workers=%d: (%v, %v)", workers, out, err)
		}
	}
}
