package mult

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/spice"
	"optima/internal/sram"
	"optima/internal/stats"
)

var (
	fixtureOnce  sync.Once
	fixtureModel *core.Model
	fixtureErr   error
)

func testModel(t *testing.T) *core.Model {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureModel, fixtureErr = core.Calibrate(core.QuickCalibration())
	})
	if fixtureErr != nil {
		t.Fatalf("calibration fixture: %v", fixtureErr)
	}
	return fixtureModel
}

func fomConfig() Config   { return Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0} }
func powerConfig() Config { return Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 0.7} }

func TestConfigValidate(t *testing.T) {
	if err := fomConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Tau0: 0, VDAC0: 0.3, VDACFS: 1},
		{Tau0: 1e-10, VDAC0: 1.0, VDACFS: 0.7},
		{Tau0: 1e-10, VDAC0: -0.1, VDACFS: 0.7},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %+v accepted", c)
		}
	}
}

func TestDACVoltageEndpoints(t *testing.T) {
	c := fomConfig()
	if got := c.DACVoltage(0, device.NominalVDD); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("DAC(0) = %g, want 0.3", got)
	}
	if got := c.DACVoltage(15, device.NominalVDD); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("DAC(15) = %g, want 1.0", got)
	}
	// Supply tracking is partial.
	up := c.DACVoltage(15, 1.1)
	if up <= 1.0 || up >= 1.1 {
		t.Fatalf("DAC(15) at 1.1 V = %g, want in (1.0, 1.1)", up)
	}
}

func TestBitTimes(t *testing.T) {
	c := fomConfig()
	for i, want := range []float64{0.16e-9, 0.32e-9, 0.64e-9, 1.28e-9} {
		if got := c.BitTime(i); math.Abs(got-want) > 1e-21 {
			t.Fatalf("BitTime(%d) = %g, want %g", i, got, want)
		}
	}
	if c.MaxTime() != c.BitTime(3) {
		t.Fatal("MaxTime must be the MSB time")
	}
}

func TestBehavioralZeroOperands(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]uint{{0, 0}, {7, 0}, {15, 0}} {
		r, err := b.Multiply(pair[0], pair[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Code != 0 {
			t.Fatalf("(%d,%d) → code %d, want 0 (no discharge for d=0)", pair[0], pair[1], r.Code)
		}
		if r.Energy <= 0 {
			t.Fatal("peripheral energy must still be paid")
		}
	}
	// a=0 at VDAC0=0.3 is near the conduction onset: small code.
	r, err := b.Multiply(0, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Code > 16 {
		t.Fatalf("(0,15) → code %d, want small", r.Code)
	}
}

func TestBehavioralFullScaleAccuracy(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.Multiply(15, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := r.ErrorLSB(); e < -12 || e > 12 {
		t.Fatalf("(15,15) error %d LSB too large", e)
	}
}

func TestBehavioralAverageErrorRegime(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	var acc stats.Accumulator
	for a := uint(0); a <= 15; a++ {
		for d := uint(0); d <= 15; d++ {
			r, err := b.Multiply(a, d, nil)
			if err != nil {
				t.Fatal(err)
			}
			e := float64(r.ErrorLSB())
			acc.Add(math.Abs(e))
		}
	}
	// The paper's Table I corners sit at ϵ ∈ [4.78, 15]; our substrate is a
	// little more accurate. Fail if wildly off in either direction.
	if acc.Mean() > 8 || acc.Mean() < 0.1 {
		t.Fatalf("deterministic ϵ̄ = %.2f LSB outside plausible regime", acc.Mean())
	}
}

func TestEventAndDirectPathsAgree(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	for a := uint(0); a <= 15; a += 3 {
		for d := uint(0); d <= 15; d += 3 {
			b.UseEvents = true
			ev, err := b.Multiply(a, d, nil)
			if err != nil {
				t.Fatal(err)
			}
			b.UseEvents = false
			dir, err := b.Multiply(a, d, nil)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Code != dir.Code || math.Abs(ev.VComb-dir.VComb) > 1e-15 ||
				math.Abs(ev.Energy-dir.Energy) > 1e-21 {
				t.Fatalf("(%d,%d): event %+v vs direct %+v", a, d, ev, dir)
			}
		}
	}
}

func TestOperandRangeChecked(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Multiply(16, 3, nil); err == nil {
		t.Fatal("oversized operand accepted")
	}
}

func TestMismatchSamplingChangesResults(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	det, err := b.Multiply(9, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	var acc stats.Accumulator
	for i := 0; i < 400; i++ {
		r, err := b.Multiply(9, 11, rng)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(r.VComb)
	}
	if acc.StdDev() <= 0 {
		t.Fatal("sampling produced no spread")
	}
	if math.Abs(acc.Mean()-det.VComb) > 5*acc.StdDev()/math.Sqrt(400) {
		t.Fatalf("MC mean %g far from deterministic %g", acc.Mean(), det.VComb)
	}
}

func TestSigmaScalesWithBitWeight(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	// d=8 (MSB only, longest discharge) must be noisier than d=1.
	r1, err := b.Multiply(15, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := b.Multiply(15, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Sigma <= r1.Sigma {
		t.Fatalf("σ(msb) %g should exceed σ(lsb) %g", r8.Sigma, r1.Sigma)
	}
}

func TestEnergyTrends(t *testing.T) {
	m := testModel(t)
	bFull, err := NewBehavioral(m, fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	bLow, err := NewBehavioral(m, powerConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	eFull := avgEnergy(t, bFull)
	eLow := avgEnergy(t, bLow)
	if eLow >= eFull {
		t.Fatalf("lower full-scale should cost less: %g vs %g", eLow, eFull)
	}
	// Larger τ0 costs more.
	bSlow, err := NewBehavioral(m, Config{Tau0: 0.28e-9, VDAC0: 0.3, VDACFS: 1.0}, device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if avgEnergy(t, bSlow) <= eFull {
		t.Fatal("larger τ0 should cost more energy")
	}
}

func avgEnergy(t *testing.T, b *Behavioral) float64 {
	t.Helper()
	var acc stats.Accumulator
	for a := uint(0); a <= 15; a++ {
		for d := uint(0); d <= 15; d++ {
			r, err := b.Multiply(a, d, nil)
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(r.Energy)
		}
	}
	return acc.Mean()
}

func TestWriteEnergyAroundOnePicojoule(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	e := b.WriteEnergy()
	if e < 0.7e-12 || e > 1.4e-12 {
		t.Fatalf("write energy %g J, want ≈1 pJ", e)
	}
}

func TestGoldenAgreesWithBehavioral(t *testing.T) {
	if testing.Short() {
		t.Skip("golden backend is slow")
	}
	m := testModel(t)
	cfg := fomConfig()
	cond := device.Nominal()
	b, err := NewBehavioral(m, cfg, cond)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGolden(core.QuickCalibration().Tech, cfg, cond, spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	transients := 0
	for _, pair := range [][2]uint{{3, 5}, {8, 8}, {15, 15}, {1, 14}, {12, 2}} {
		rb, err := b.Multiply(pair[0], pair[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := g.Multiply(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if diff := rb.Code - rg.Code; diff < -6 || diff > 6 {
			t.Errorf("(%d,%d): behavioral %d vs golden %d", pair[0], pair[1], rb.Code, rg.Code)
		}
		if want := popcount(pair[1]); rg.Transients != want {
			t.Errorf("(%d,%d): %d transients, want %d (one per set d-bit)", pair[0], pair[1], rg.Transients, want)
		}
		transients += rg.Transients
	}
	if transients == 0 {
		t.Fatal("golden backend did not count transients")
	}
}

func popcount(d uint) int {
	n := 0
	for ; d != 0; d >>= 1 {
		n += int(d & 1)
	}
	return n
}

func TestGoldenMismatchShiftsResult(t *testing.T) {
	if testing.Short() {
		t.Skip("golden backend is slow")
	}
	g, err := NewGolden(core.QuickCalibration().Tech, fomConfig(), device.Nominal(), spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := g.Multiply(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	var cells sram.Word
	cells.SampleMismatch(core.QuickCalibration().Tech, stats.NewRNG(3))
	shifted, err := g.MultiplyCells(9, 9, &cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.VComb == ref.VComb {
		t.Fatal("mismatch had no effect on the golden result")
	}
	cells.ClearMismatch()
	restored, err := g.MultiplyCells(9, 9, &cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(restored.VComb-ref.VComb) > 1e-12 {
		t.Fatal("ClearMismatch did not restore the nominal result")
	}
}

// TestGoldenConcurrentMultiplyDeterministic pins the tentpole contract at
// the mult layer: one shared Golden receiver, concurrent MultiplyCells
// calls with per-worker scratch, results identical to the serial path.
func TestGoldenConcurrentMultiplyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("golden backend is slow")
	}
	g, err := NewGolden(core.QuickCalibration().Tech, fomConfig(), device.Nominal(), spice.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]uint{{1, 1}, {3, 7}, {9, 9}, {15, 15}, {2, 13}, {11, 4}, {7, 7}, {5, 10}}
	serial := make([]Result, len(pairs))
	for i, p := range pairs {
		r, err := g.Multiply(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}
	parallel := make([]Result, len(pairs))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var scr spice.Scratch
			for i := w; i < len(pairs); i += 4 {
				r, err := g.MultiplyCells(pairs[i][0], pairs[i][1], nil, &scr)
				if err != nil {
					t.Error(err)
					return
				}
				parallel[i] = r
			}
		}(w)
	}
	wg.Wait()
	for i := range pairs {
		if serial[i] != parallel[i] {
			t.Fatalf("pair %v: concurrent result %+v differs from serial %+v", pairs[i], parallel[i], serial[i])
		}
	}
}

// Property: deterministic codes are within the ADC range and weakly
// monotone in d for fixed a (more stored ones → more discharge).
func TestCodeMonotoneInD(t *testing.T) {
	b, err := NewBehavioral(testModel(t), fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw uint8) bool {
		a := uint(aRaw) % 16
		prev := -1
		for d := uint(0); d <= 15; d++ {
			r, err := b.Multiply(a, d, nil)
			if err != nil {
				return false
			}
			if r.Code < 0 || r.Code > ADCMax {
				return false
			}
			if r.Code < prev {
				return false
			}
			prev = r.Code
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}
