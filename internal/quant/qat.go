package quant

import (
	"optima/internal/dnn"
	"optima/internal/stats"
)

// QATConfig controls the quantization-aware fine-tuning pass — the paper's
// "retraining procedures ... to mitigate the impact of quantization".
type QATConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	Seed      uint64
}

// DefaultQATConfig returns a short fine-tune (2 epochs at a reduced rate).
func DefaultQATConfig() QATConfig {
	return QATConfig{Epochs: 2, BatchSize: 32, LR: 0.005, Momentum: 0.9, Seed: 7}
}

// QATFineTune fine-tunes the float network with weight fake-quantization
// and a straight-through estimator: each step the conv/dense weights are
// snapshotted, replaced by their quantize-dequantize images, gradients are
// computed through the quantized forward pass, and the update is applied to
// the retained full-precision weights. This nudges the float weights toward
// INT4-friendly values before post-training quantization.
func QATFineTune(net *dnn.Network, x *dnn.Tensor, labels []int, cfg QATConfig) error {
	weightParams := fakeQuantTargets(net)
	opt := dnn.NewSGD(cfg.LR, cfg.Momentum, 0)
	rng := stats.NewRNG(cfg.Seed)
	feat := x.FeatureLen()
	params := net.Params()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(x.N)
		for start := 0; start < x.N; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > x.N {
				end = x.N
			}
			bs := end - start
			batch := dnn.NewTensor(bs, x.C, x.H, x.W)
			blabels := make([]int, bs)
			for i := 0; i < bs; i++ {
				src := perm[start+i]
				copy(batch.Data[i*feat:(i+1)*feat], x.Data[src*feat:(src+1)*feat])
				blabels[i] = labels[src]
			}
			// Snapshot and fake-quantize the weights.
			snapshots := make([][]float64, len(weightParams))
			for i, p := range weightParams {
				snapshots[i] = append([]float64(nil), p.W...)
				wq := QuantizeWeights(p.W)
				for j := range p.W {
					p.W[j] = float64(wq.Codes[j]) * wq.Scale
				}
			}
			logits := net.Forward(batch, true)
			_, grad := dnn.CrossEntropyLoss(logits, blabels)
			net.Backward(grad)
			// Straight-through: restore float weights, apply the gradients
			// computed at the quantized point.
			for i, p := range weightParams {
				copy(p.W, snapshots[i])
			}
			opt.Step(params)
		}
	}
	return nil
}

// fakeQuantTargets returns the weight parameters of conv and dense layers
// (biases and batch-norm parameters stay in float).
func fakeQuantTargets(net *dnn.Network) []*dnn.Param {
	var out []*dnn.Param
	var walk func(l dnn.Layer)
	walk = func(l dnn.Layer) {
		switch t := l.(type) {
		case *dnn.Conv2D:
			out = append(out, t.Weight)
		case *dnn.Dense:
			out = append(out, t.Weight)
		case *dnn.Residual:
			walk(t.Conv1)
			walk(t.Conv2)
			if t.Proj != nil {
				walk(t.Proj)
			}
		}
	}
	for _, l := range net.Layers {
		walk(l)
	}
	return out
}
