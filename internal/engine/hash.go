package engine

import "math"

// FNV-1a 64-bit constants (FNV-0 offset basis and prime). The hash is
// computed inline instead of through hash/fnv so a Key can be hashed on a
// hot path without allocating a hasher.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash content-addresses the key as a stable 64-bit value: FNV-1a over the
// backend name followed by the little-endian bit patterns of every numeric
// key field. Two properties matter:
//
//   - Stability. The byte stream is defined by the key's content alone, so
//     the value is identical across processes, hosts and architectures —
//     the property the persistent store's partition routing relies on
//     today and a key-range-sharded remote store relies on tomorrow.
//   - Zero allocation. The whole computation stays in registers/stack
//     (verified by TestKeyHashZeroAlloc), so per-lookup routing never
//     contributes allocator pressure.
//
// The stream layout (backend bytes, then Tau0, VDAC0, VDACFS, Corner, VDD,
// TempC as 8 little-endian bytes each) is frozen: changing it remaps every
// record of existing stores across partitions.
func (k Key) Hash() uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(k.Backend); i++ {
		h = (h ^ uint64(k.Backend[i])) * fnvPrime64
	}
	h = fnvMix64(h, math.Float64bits(k.Config.Tau0))
	h = fnvMix64(h, math.Float64bits(k.Config.VDAC0))
	h = fnvMix64(h, math.Float64bits(k.Config.VDACFS))
	h = fnvMix64(h, uint64(k.Cond.Corner))
	h = fnvMix64(h, math.Float64bits(k.Cond.VDD))
	h = fnvMix64(h, math.Float64bits(k.Cond.TempC))
	return h
}

// fnvMix64 folds one 64-bit value into the FNV-1a state byte by byte,
// little-endian — the same stream an 8-byte LE buffer write would produce.
func fnvMix64(h, v uint64) uint64 {
	for b := 0; b < 8; b++ {
		h = (h ^ (v >> (8 * b) & 0xff)) * fnvPrime64
	}
	return h
}
