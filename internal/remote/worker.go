package remote

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"

	"optima/internal/engine"
	"optima/internal/obs"
)

// WorkerOptions configures Dial.
type WorkerOptions struct {
	// Fingerprint is the worker's calibration fingerprint, validated by
	// the coordinator's handshake — a worker calibrated differently from
	// the coordinator is rejected, never silently mixed in.
	Fingerprint string
	// Backends resolves a batch frame's backend name to a local backend.
	// Called at most once per distinct name per worker; the result is
	// cached. A resolution error fails every cell of batches naming it.
	Backends func(name string) (engine.Backend, error)
	// Workers bounds concurrent cell evaluations (<= 0 = 1). It is also
	// the capacity advertised in the handshake, and the intra budget of a
	// single-cell batch on an IntraBackend.
	Workers int
	// Logger receives lifecycle events (nil = slog.Default()).
	Logger *slog.Logger
	// Recorder, when non-nil, collects worker-side evaluation spans and
	// provides the clock for the per-cell durations round-tripped in
	// result frames. Nil records nothing and reports zero durations.
	Recorder *obs.Recorder
}

// ErrRejected wraps a handshake rejection: the coordinator named a reason
// (fingerprint or protocol mismatch) and the worker must not retry
// without fixing it.
var ErrRejected = errors.New("remote: worker rejected by coordinator")

// Worker is one connected evaluation worker: it pulls batch frames off
// the coordinator connection, evaluates each cell on the named local
// backend, and streams result frames back as cells finish.
type Worker struct {
	conn     net.Conn
	opts     WorkerOptions
	log      *slog.Logger
	rec      *obs.Recorder
	capacity int
	sem      chan struct{}

	wmu sync.Mutex // serializes result-frame writes

	bmu      sync.Mutex
	backends map[string]engine.Backend
	berrs    map[string]error

	wg     sync.WaitGroup
	donec  chan struct{}
	closed sync.Once
}

// Dial connects to a coordinator, performs the hello/welcome handshake,
// and starts the evaluation loop. A rejection surfaces as an error
// wrapping ErrRejected with the coordinator's reason.
func Dial(addr string, opts WorkerOptions) (*Worker, error) {
	if opts.Backends == nil {
		return nil, fmt.Errorf("remote: WorkerOptions.Backends is required")
	}
	capacity := opts.Workers
	if capacity <= 0 {
		capacity = 1
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	hello := appendHello(nil, helloFrame{
		Proto:       protoVersion,
		Fingerprint: opts.Fingerprint,
		Capacity:    uint32(capacity),
	})
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake write: %w", err)
	}
	r := bufio.NewReader(conn)
	typ, payload, _, err := readFrame(r)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake read: %w", err)
	}
	if typ != frameWelcome {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake: unexpected frame type %d", typ)
	}
	welcome, err := decodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake: %w", err)
	}
	if welcome.Reject != "" {
		conn.Close()
		return nil, fmt.Errorf("%w: %s", ErrRejected, welcome.Reject)
	}
	log := opts.Logger
	if log == nil {
		log = slog.Default()
	}
	w := &Worker{
		conn:     conn,
		opts:     opts,
		log:      log,
		rec:      opts.Recorder,
		capacity: capacity,
		sem:      make(chan struct{}, capacity),
		backends: map[string]engine.Backend{},
		berrs:    map[string]error{},
		donec:    make(chan struct{}),
	}
	w.wg.Add(1)
	go w.readLoop(r)
	return w, nil
}

// Close drops the connection. In-flight evaluations finish but their
// results are discarded (the coordinator reassigns them); Close does not
// wait for them.
func (w *Worker) Close() error {
	var err error
	w.closed.Do(func() { err = w.conn.Close() })
	return err
}

// Wait blocks until the connection is gone — coordinator shutdown, a
// network failure, or Close — and returns the cause (nil after a clean
// Close). cmd/optima-worker's reconnect loop sits on it.
func (w *Worker) Wait() error {
	<-w.donec
	return nil
}

// readLoop consumes batch frames until the connection breaks. Each batch
// evaluates on its own goroutine so a long batch never blocks the intake
// of the next frame.
func (w *Worker) readLoop(r *bufio.Reader) {
	defer w.wg.Done()
	defer close(w.donec)
	for {
		typ, payload, _, err := readFrame(r)
		if err != nil {
			w.Close()
			return
		}
		if typ != frameBatch {
			w.log.Warn("remote: unexpected frame from coordinator", "type", typ)
			w.Close()
			return
		}
		batch, err := decodeBatch(payload)
		if err != nil {
			w.log.Warn("remote: bad batch frame", "err", err)
			w.Close()
			return
		}
		w.wg.Add(1)
		go w.runBatch(batch)
	}
}

// backendFor resolves (and caches) the batch's backend. Errors cache too:
// resolution is deterministic, so a bad name fails the same way per
// batch without re-running the resolver.
func (w *Worker) backendFor(name string) (engine.Backend, error) {
	w.bmu.Lock()
	defer w.bmu.Unlock()
	if b, ok := w.backends[name]; ok {
		return b, nil
	}
	if err, ok := w.berrs[name]; ok {
		return nil, err
	}
	b, err := w.opts.Backends(name)
	if err != nil {
		w.berrs[name] = err
		return nil, err
	}
	w.backends[name] = b
	return b, nil
}

// runBatch evaluates one batch's cells under the worker's capacity
// semaphore, streaming each result back as it completes. A single-cell
// batch on an IntraBackend spends the whole capacity inside the cell —
// the same budget logic as the engine's splitBudget for n = 1.
func (w *Worker) runBatch(batch batchFrame) {
	defer w.wg.Done()
	backend, berr := w.backendFor(batch.Backend)
	intra := 1
	if berr == nil && len(batch.Cells) == 1 {
		if _, ok := backend.(engine.IntraBackend); ok {
			intra = w.capacity
		}
	}
	for _, cell := range batch.Cells {
		if berr != nil {
			w.writeResult(resultFrame{
				Dispatch: batch.Dispatch, Index: cell.Index,
				Status: resultErr, Err: berr.Error(),
			})
			continue
		}
		w.sem <- struct{}{}
		w.wg.Add(1)
		go func(cell batchCell) {
			defer w.wg.Done()
			defer func() { <-w.sem }()
			w.runCell(batch.Dispatch, backend, batch.Backend, cell, intra)
		}(cell)
	}
}

// runCell evaluates one cell and writes its result frame. The duration is
// measured on the recorder's clock (zero without one) — telemetry only,
// round-tripped for the coordinator's trace; a panicking backend is
// recovered into an error result.
func (w *Worker) runCell(dispatchID uint64, backend engine.Backend, bname string, cell batchCell, intra int) {
	var arg string
	if w.rec != nil {
		arg = fmt.Sprintf("%v @ %v", cell.Job.Config, cell.Job.Cond)
	}
	span := w.rec.StartSpan(0, obs.CatEval, bname, arg)
	met, err := w.evalCell(backend, cell, intra)
	dur := span.End()

	res := resultFrame{Dispatch: dispatchID, Index: cell.Index, DurNS: uint64(dur)}
	if err != nil {
		res.Status = resultErr
		res.Err = err.Error()
	} else {
		res.Status = resultOK
		res.Met = met
	}
	w.writeResult(res)
}

// evalCell runs the backend with panic recovery.
func (w *Worker) evalCell(backend engine.Backend, cell batchCell, intra int) (met engine.Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("backend panicked on %v at %v: %v", cell.Job.Config, cell.Job.Cond, r)
		}
	}()
	if ib, ok := backend.(engine.IntraBackend); ok && intra > 1 {
		return ib.EvaluateBudget(cell.Job.Config, cell.Job.Cond, intra)
	}
	return backend.Evaluate(cell.Job.Config, cell.Job.Cond)
}

// writeResult streams one result frame. Write errors are dropped: a dead
// connection means the coordinator has already reassigned our cells, and
// the read loop is tearing the worker down.
func (w *Worker) writeResult(res resultFrame) {
	frame := appendResult(nil, res)
	w.wmu.Lock()
	_, _ = w.conn.Write(frame)
	w.wmu.Unlock()
}
