package search

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseAxisSpec parses the user-facing axis spec shared by the `optima
// search` CLI flags and the optima-server's JSON job requests. Two forms:
//
//	min:max:steps[:log]   a materialized range, e.g. "0.16:0.28:100"
//	v1,v2,...             explicit values, e.g. "0.3,0.4,0.5" (a single
//	                      value like "0.3" is a one-point list)
//
// scale converts the user unit into SI (1e-9 for a τ0 axis in ns, 1 for
// volts). The returned axis is validated.
func ParseAxisSpec(name, spec string, scale float64) (Axis, error) {
	if !strings.Contains(spec, ":") {
		var vals []float64
		for _, f := range strings.Split(spec, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return Axis{}, fmt.Errorf("axis %s: bad value %q", name, f)
			}
			vals = append(vals, v*scale)
		}
		a := ValuesAxis(name, vals...)
		return a, a.Validate()
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 && !(len(parts) == 4 && parts[3] == "log") {
		return Axis{}, fmt.Errorf("axis %s: want min:max:steps[:log] or a comma list, got %q", name, spec)
	}
	min, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return Axis{}, fmt.Errorf("axis %s: bad min %q", name, parts[0])
	}
	max, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return Axis{}, fmt.Errorf("axis %s: bad max %q", name, parts[1])
	}
	steps, err := strconv.Atoi(parts[2])
	if err != nil {
		return Axis{}, fmt.Errorf("axis %s: bad steps %q", name, parts[2])
	}
	a := LinAxis(name, min*scale, max*scale, steps)
	a.Log = len(parts) == 4
	return a, a.Validate()
}

// ParseSpaceSpec parses the three axis specs of a multiplier design space
// in the reporting units (τ0 in ns, voltages in V) into a validated Space.
func ParseSpaceSpec(tau0, vdac0, vdacfs string) (Space, error) {
	var sp Space
	var err error
	if sp.Tau0, err = ParseAxisSpec("tau0", tau0, 1e-9); err != nil {
		return Space{}, err
	}
	if sp.VDAC0, err = ParseAxisSpec("vdac0", vdac0, 1); err != nil {
		return Space{}, err
	}
	if sp.VDACFS, err = ParseAxisSpec("vdacfs", vdacfs, 1); err != nil {
		return Space{}, err
	}
	return sp, nil
}
