package exp

import (
	"fmt"
	"runtime"

	"optima/internal/dataset"
	"optima/internal/dnn"
	"optima/internal/dse"
	"optima/internal/mult"
	"optima/internal/quant"
	"optima/internal/refdata"
	"optima/internal/report"
	"optima/internal/sched"
	"optima/internal/stats"
)

// DNNScale controls the size of the application-analysis protocol
// (Section VI / Tables II and III).
type DNNScale struct {
	// Models to evaluate, in Table II order.
	Models []string
	// VGGEpochs / ResNetEpochs set the pretraining budgets.
	VGGEpochs, ResNetEpochs int
	// TransferEpochs sets the CIFAR last-layer budget.
	TransferEpochs int
	// QATEpochs sets the post-quantization retraining budget.
	QATEpochs int
	// TestCap limits the evaluated test samples (0 = all).
	TestCap int
	// NoisyLUT samples per-operation mismatch in the in-memory multiplier
	// instead of using the deterministic transfer (extension/ablation; the
	// tables' protocol uses the deterministic transfer).
	NoisyLUT bool
	Seed     uint64
}

// FullDNNScale is the full Table II/III protocol.
func FullDNNScale() DNNScale {
	return DNNScale{
		Models:    dnn.ZooModels(),
		VGGEpochs: 8, ResNetEpochs: 12,
		TransferEpochs: 6, QATEpochs: 2,
		Seed: 11,
	}
}

// BenchDNNScale is a reduced protocol for the benchmark harness: two
// models, short budgets, capped test sets. Same schema, smaller numbers.
func BenchDNNScale() DNNScale {
	return DNNScale{
		Models:    []string{"VGG16S", "ResNet50S"},
		VGGEpochs: 2, ResNetEpochs: 3,
		TransferEpochs: 2, QATEpochs: 1,
		TestCap: 120,
		Seed:    11,
	}
}

// DNNRow is one measured row of Table II or III.
type DNNRow struct {
	Model         string
	MultsMillions float64
	Float32       [2]float64 // top-1, top-5
	Int4          [2]float64
	Fom           [2]float64
	Power         [2]float64
	Variation     [2]float64
}

// DNNData holds the measured application analysis.
type DNNData struct {
	ImageNet []DNNRow
	CIFAR    []DNNRow
	Table2   *report.Table
	Table3   *report.Table
}

// RunDNN executes the paper's application analysis: pretrain on the
// ImageNet substitute, quantize to INT4 with retraining, inject the three
// multiplier corners, then transfer-learn to the CIFAR substitute and
// repeat the evaluation.
func (c *Context) RunDNN(scale DNNScale) (*DNNData, error) {
	sel, err := c.Selection()
	if err != nil {
		return nil, err
	}
	imagenet, err := dataset.Generate(dataset.SynthImageNetConfig())
	if err != nil {
		return nil, err
	}
	cifar, err := dataset.Generate(dataset.SynthCIFARConfig())
	if err != nil {
		return nil, err
	}
	capDataset(imagenet, scale.TestCap)
	capDataset(cifar, scale.TestCap)

	// Per-model fan-out on the shared scheduler: each model trains and
	// evaluates independently; results come back in Models order. The
	// session's worker budget is split between the two nesting levels —
	// models outside, evaluation batches inside — so total concurrency
	// stays ≈ Workers rather than Workers².
	inner := splitWorkers(c.Workers, len(scale.Models))
	type modelResult struct {
		imagenet, cifar DNNRow
	}
	results, err := sched.Map(c.Workers, scale.Models, func(_ int, name string) (modelResult, error) {
		img, cif, err := c.runOneModel(name, scale, sel, imagenet, cifar, inner)
		return modelResult{imagenet: img, cifar: cif}, err
	})
	if err != nil {
		return nil, err
	}

	out := &DNNData{}
	for _, r := range results {
		out.ImageNet = append(out.ImageNet, r.imagenet)
		out.CIFAR = append(out.CIFAR, r.cifar)
	}
	out.Table2 = dnnTable("Table II — SynthImageNet classification accuracies (paper rows: real ImageNet)",
		out.ImageNet, refdata.Table2ImageNet(), true)
	out.Table3 = dnnTable("Table III — SynthCIFAR classification accuracies (paper rows: real CIFAR-10)",
		out.CIFAR, refdata.Table3CIFAR(), false)
	return out, nil
}

func capDataset(ds *dataset.Dataset, testCap int) {
	if testCap <= 0 || ds.Test.N <= testCap {
		return
	}
	feat := ds.Test.FeatureLen()
	trimmed := dnn.NewTensor(testCap, ds.Test.C, ds.Test.H, ds.Test.W)
	copy(trimmed.Data, ds.Test.Data[:testCap*feat])
	ds.Test = trimmed
	ds.TestY = ds.TestY[:testCap]
}

// splitWorkers divides a worker budget (0 = GOMAXPROCS) across n
// concurrent outer tasks, returning the per-task inner fan-out.
func splitWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	if n > workers {
		n = workers
	}
	return workers / n
}

// runOneModel executes the full protocol for one network. evalWorkers
// bounds the quantized-evaluation fan-out within this model.
func (c *Context) runOneModel(name string, scale DNNScale, sel dse.Selection, imagenet, cifar *dataset.Dataset, evalWorkers int) (DNNRow, DNNRow, error) {
	rng := stats.NewRNG(scale.Seed)
	net, err := dnn.NewZooModel(name, dataset.Channels, dataset.Height, dataset.Width, imagenet.Classes, rng)
	if err != nil {
		return DNNRow{}, DNNRow{}, err
	}
	cfg := dnn.DefaultTrainConfig()
	cfg.Seed = scale.Seed
	cfg.Epochs = scale.VGGEpochs
	if name == "ResNet50S" || name == "ResNet101S" {
		cfg.Epochs = scale.ResNetEpochs
		cfg.LRDropEvery = 5
	}
	if _, err := net.Fit(imagenet.Train, imagenet.TrainY, cfg); err != nil {
		return DNNRow{}, DNNRow{}, err
	}

	imgRow, err := c.evaluateAllModes(name, net, scale, sel, evalWorkers, imagenet.Train, imagenet.TrainY, imagenet.Test, imagenet.TestY)
	if err != nil {
		return DNNRow{}, DNNRow{}, err
	}

	// Transfer learning: reload the pretrained backbone, swap the head to
	// 10 classes and train only the head (the paper's CIFAR protocol).
	if err := net.ReplaceHead(cifar.Classes, rng); err != nil {
		return DNNRow{}, DNNRow{}, err
	}
	tCfg := cfg
	tCfg.Epochs = scale.TransferEpochs
	tCfg.FreezeAllButLast = false // fine-tune whole net briefly after head swap
	if _, err := net.Fit(cifar.Train, cifar.TrainY, tCfg); err != nil {
		return DNNRow{}, DNNRow{}, err
	}
	cifRow, err := c.evaluateAllModes(name, net, scale, sel, evalWorkers, cifar.Train, cifar.TrainY, cifar.Test, cifar.TestY)
	if err != nil {
		return DNNRow{}, DNNRow{}, err
	}
	return imgRow, cifRow, nil
}

// evaluateAllModes measures FLOAT32, INT4, and the three corner modes for
// a trained network. The network is QAT-fine-tuned and batch-norm-folded in
// place (evaluation order matters: float first).
func (c *Context) evaluateAllModes(name string, net *dnn.Network, scale DNNScale, sel dse.Selection,
	evalWorkers int, trainX *dnn.Tensor, trainY []int, testX *dnn.Tensor, testY []int) (DNNRow, error) {
	row := DNNRow{Model: name, MultsMillions: float64(net.MACsPerInference()) / 1e6}
	// Float evaluation fans out on the stateless Infer path, under the same
	// per-model worker split as the quantized modes below.
	net.EvalWorkers = evalWorkers
	row.Float32[0], row.Float32[1] = net.TopKAccuracy(testX, testY, 5)

	// The paper's "retraining procedures ... to mitigate the impact of
	// quantization".
	qatCfg := quant.DefaultQATConfig()
	qatCfg.Epochs = scale.QATEpochs
	qatCfg.Seed = scale.Seed
	if err := quant.QATFineTune(net, trainX, trainY, qatCfg); err != nil {
		return row, err
	}
	calibN := 64
	if calibN > trainX.N {
		calibN = trainX.N
	}
	calib := dnn.NewTensor(calibN, trainX.C, trainX.H, trainX.W)
	copy(calib.Data, trainX.Data[:calibN*trainX.FeatureLen()])
	qnet, err := quant.Quantize(net, calib)
	if err != nil {
		return row, err
	}
	qnet.Workers = evalWorkers
	row.Int4[0], row.Int4[1] = qnet.TopKAccuracy(testX, testY, 5)

	corners := []struct {
		cfg  mult.Config
		dest *[2]float64
	}{
		{sel.FOM.Config, &row.Fom},
		{sel.Power.Config, &row.Power},
		{sel.Variation.Config, &row.Variation},
	}
	for _, corner := range corners {
		b, err := mult.NewBehavioral(c.Model, corner.cfg, nominalCond())
		if err != nil {
			return row, err
		}
		var rng *stats.RNG
		if scale.NoisyLUT {
			rng = stats.NewRNG(scale.Seed ^ 0xabcdef)
		}
		im, err := quant.NewInMemory(b, rng)
		if err != nil {
			return row, err
		}
		qnet.Mult = im
		corner.dest[0], corner.dest[1] = qnet.TopKAccuracy(testX, testY, 5)
	}
	return row, nil
}

// dnnTable renders measured rows interleaved with the paper's, mirroring
// the Table II/III schema.
func dnnTable(title string, rows []DNNRow, paper []refdata.DNNRow, withTop5 bool) *report.Table {
	var t *report.Table
	if withTop5 {
		t = report.NewTable(title,
			"model", "mults", "FLOAT32 t1", "t5", "INT4 t1", "t5", "fom t1", "t5", "power t1", "t5", "variation t1", "t5")
	} else {
		t = report.NewTable(title,
			"model", "FLOAT32 t1", "INT4 t1", "fom t1", "power t1", "variation t1")
	}
	paperByModel := map[string]refdata.DNNRow{}
	for _, p := range paper {
		paperByModel[p.Model] = p
	}
	for _, r := range rows {
		base := paperModelName(r.Model)
		if p, ok := paperByModel[base]; ok {
			if withTop5 {
				t.AddRow(base+" (paper)", fmt.Sprintf("%.2f G", p.MultsBillions),
					p.Float32Top1, p.Float32Top5, p.Int4Top1, p.Int4Top5,
					p.FomTop1, p.FomTop5, p.PowerTop1, p.PowerTop5,
					p.VariationTop1, p.VariationTop5)
			} else {
				t.AddRow(base+" (paper)", p.Float32Top1, p.Int4Top1, p.FomTop1, p.PowerTop1, p.VariationTop1)
			}
		}
		if withTop5 {
			t.AddRow(r.Model+" (measured)", fmt.Sprintf("%.2f M", r.MultsMillions),
				r.Float32[0], r.Float32[1], r.Int4[0], r.Int4[1],
				r.Fom[0], r.Fom[1], r.Power[0], r.Power[1],
				r.Variation[0], r.Variation[1])
		} else {
			t.AddRow(r.Model+" (measured)", r.Float32[0], r.Int4[0], r.Fom[0], r.Power[0], r.Variation[0])
		}
	}
	return t
}

// paperModelName maps a scaled zoo model to its paper counterpart.
func paperModelName(scaled string) string {
	switch scaled {
	case "VGG16S":
		return "VGG16"
	case "VGG19S":
		return "VGG19"
	case "ResNet50S":
		return "ResNet50"
	case "ResNet101S":
		return "ResNet101"
	default:
		return scaled
	}
}
