package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a multi-series line chart rendered either as ASCII (terminal)
// or SVG (file artifact).
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddSeries appends a named series; x and y must have equal length.
func (c *Chart) AddSeries(name string, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("report: series %q has %d x-values and %d y-values", name, len(x), len(y))
	}
	c.Series = append(c.Series, Series{Name: name, X: append([]float64(nil), x...), Y: append([]float64(nil), y...)})
	return nil
}

func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if s.Y[i] < ymin {
				ymin = s.Y[i]
			}
			if s.Y[i] > ymax {
				ymax = s.Y[i]
			}
		}
	}
	if xmin == xmax {
		xmin, xmax = xmin-1, xmax+1
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	return
}

const asciiMarkers = "*o+x#@%&"

// RenderASCII draws the chart on a character grid of the given size.
func (c *Chart) RenderASCII(w io.Writer, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	if len(c.Series) == 0 {
		_, err := io.WriteString(w, "(empty chart)\n")
		return err
	}
	xmin, xmax, ymin, ymax := c.bounds()
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		marker := asciiMarkers[si%len(asciiMarkers)]
		for i := range s.X {
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = marker
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	fmt.Fprintf(&b, "%10.4g ┤\n", ymax)
	for _, row := range grid {
		fmt.Fprintf(&b, "           │%s\n", string(row))
	}
	fmt.Fprintf(&b, "%10.4g └%s\n", ymin, strings.Repeat("─", width))
	fmt.Fprintf(&b, "            %-10.4g%s%10.4g\n", xmin, strings.Repeat(" ", max(0, width-20)), xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "            x: %s   y: %s\n", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "            %c %s\n", asciiMarkers[si%len(asciiMarkers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// svgPalette holds the line colors for SVG rendering.
var svgPalette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
	"#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
}

// RenderSVG writes a standalone SVG chart of the given pixel size.
func (c *Chart) RenderSVG(w io.Writer, width, height int) error {
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	const margin = 55
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	xmin, xmax, ymin, ymax := c.bounds()
	px := func(x float64) float64 { return margin + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(height) - margin - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", margin, margin, margin, height-margin)
	// Ticks and grid (5 divisions each way).
	for i := 0; i <= 5; i++ {
		xv := xmin + (xmax-xmin)*float64(i)/5
		yv := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n", px(xv), margin, px(xv), height-margin)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", margin, py(yv), width-margin, py(yv))
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%.3g</text>`+"\n", px(xv), height-margin+14, xv)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%.3g</text>`+"\n", margin-5, py(yv)+3, yv)
	}
	// Series.
	for si, s := range c.Series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s"/>`+"\n", px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend entry.
		ly := margin + 14*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", width-margin-110, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%s</text>`+"\n", width-margin-96, ly+9, xmlEscape(s.Name))
	}
	// Labels.
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" text-anchor="middle" font-weight="bold">%s</text>`+"\n", width/2, 20, xmlEscape(c.Title))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n", width/2, height-10, xmlEscape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="15" y="%d" font-size="11" text-anchor="middle" transform="rotate(-90 15 %d)">%s</text>`+"\n", height/2, height/2, xmlEscape(c.YLabel))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
