// errwrap.go checks that error chains survive wrapping. The engine's
// cancellation contract — errors.Is(err, context.Canceled) works from the
// HTTP layer all the way down to an abandoned batch cell — only holds if
// every fmt.Errorf on the path uses %w. PR 7 fixed one silent break of this
// (a %v wrap of the batch cancellation error); this analyzer makes the next
// one a diagnostic instead of a debugging session.
package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrapAnalyzer flags fmt.Errorf calls that format an error-typed
// argument without any %w verb in the format string: the wrap loses the
// chain, so errors.Is/errors.As stop seeing context.Canceled (or any
// sentinel) behind it. Applies everywhere — these errors cross package
// boundaries by construction.
func ErrWrapAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "errwrap",
		Doc:     "fmt.Errorf over an error value must use %w so errors.Is/As keep working across packages",
		InScope: everywhere,
		Run:     runErrWrap,
	}
}

func runErrWrap(pass *Pass) {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" {
				return true
			}
			if pkgPath, ok := packageOf(pass.Info, sel); !ok || pkgPath != "fmt" {
				return true
			}
			format, ok := constString(pass, call.Args[0])
			if !ok || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				t := pass.Info.TypeOf(arg)
				if t == nil || !types.Implements(t, errType) {
					continue
				}
				pass.Reportf(call.Pos(), "fmt.Errorf formats %s (an error) without %%w: the chain is broken and errors.Is/As cannot see through it; use %%w, or suppress with the reason the chain should end here", exprText(arg))
				return true
			}
			return true
		})
	}
}

// constString evaluates a constant string expression.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// exprText renders a short name for the offending argument.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base, ok := e.X.(*ast.Ident); ok {
			return base.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	}
	return "the error argument"
}
