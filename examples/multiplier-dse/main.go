// Multiplier design-space exploration: sweep the paper's 48 corners, print
// the Pareto front of the energy-accuracy trade-off, and apply the three
// selection rules of Table I (maximum figure of merit, minimum energy,
// minimum σ at maximum discharge).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"optima/internal/core"
	"optima/internal/dse"
	"optima/internal/report"
)

func main() {
	model, err := core.Calibrate(core.QuickCalibration())
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	metrics, err := dse.Sweep(model, dse.DefaultGrid(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swept %d corners in %v (the golden-simulation equivalent takes minutes)\n\n",
		len(metrics), time.Since(start))

	front := dse.ParetoFront(metrics)
	tbl := report.NewTable("Pareto-optimal corners (energy ↑, error ↓)",
		"τ0 [ns]", "V_DAC,0 [V]", "V_DAC,FS [V]", "ϵ_mul [LSB]", "E_mul [fJ]", "FOM")
	for _, m := range front {
		tbl.AddRow(m.Config.Tau0*1e9, m.Config.VDAC0, m.Config.VDACFS,
			m.EpsMul, m.EMul*1e15, m.FOM())
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	sel, err := dse.Select(metrics)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected corners (paper Table I rules):")
	fmt.Printf("  fom:       %v  ϵ=%.2f LSB  E=%.1f fJ\n", sel.FOM.Config, sel.FOM.EpsMul, sel.FOM.EMul*1e15)
	fmt.Printf("  power:     %v  ϵ=%.2f LSB  E=%.1f fJ\n", sel.Power.Config, sel.Power.EpsMul, sel.Power.EMul*1e15)
	fmt.Printf("  variation: %v  ϵ=%.2f LSB  E=%.1f fJ  (small ops %.2f vs large ops %.2f)\n",
		sel.Variation.Config, sel.Variation.EpsMul, sel.Variation.EMul*1e15,
		sel.Variation.EpsSmall, sel.Variation.EpsLarge)

	// An ASCII rendering of the energy-error plane for the terminal.
	var chart report.Chart
	chart.Title = "Energy vs error, all 48 corners (o) and Pareto front (*)"
	chart.XLabel = "E_mul [fJ]"
	chart.YLabel = "eps_mul [LSB]"
	var xs, ys []float64
	for _, m := range metrics {
		xs = append(xs, m.EMul*1e15)
		ys = append(ys, m.EpsMul)
	}
	var fx, fy []float64
	for _, m := range front {
		fx = append(fx, m.EMul*1e15)
		fy = append(fy, m.EpsMul)
	}
	// Front first so its marker wins where points overlap.
	if err := chart.AddSeries("pareto", fx, fy); err != nil {
		log.Fatal(err)
	}
	if err := chart.AddSeries("all corners", xs, ys); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := chart.RenderASCII(os.Stdout, 70, 18); err != nil {
		log.Fatal(err)
	}
}
