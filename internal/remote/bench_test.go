package remote

import (
	"fmt"
	"io"
	"log/slog"
	"testing"
	"time"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/mult"
)

// benchJobs is the golden matrix the distribution benchmark evaluates: 2
// configurations × 2 corners = 4 cells, each a full transistor-level golden
// evaluation (trim + input space + Monte-Carlo) — the unit of work the
// fleet exists to spread out.
func benchJobs() []engine.Job {
	conds, err := engine.ParseConditionSet("TT@1.0V@27C,SS@0.90V@60C")
	if err != nil {
		panic(err)
	}
	return engine.MatrixJobs([]mult.Config{
		{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0},
		{Tau0: 0.20e-9, VDAC0: 0.3, VDACFS: 1.0},
	}, conds)
}

// benchFleet starts a coordinator and n in-process workers, each with its
// own fresh golden backend (cold trim caches) and an intra budget of 2.
func benchFleet(b *testing.B, calib core.CalibrationConfig, n int) (*Fleet, []*Worker) {
	b.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	f, err := Listen("127.0.0.1:0", Options{Fingerprint: "bench", Logger: quiet})
	if err != nil {
		b.Fatal(err)
	}
	ws := make([]*Worker, n)
	for i := range ws {
		ws[i], err = Dial(f.Addr(), WorkerOptions{
			Fingerprint: "bench",
			Backends: func(string) (engine.Backend, error) {
				return engine.NewGoldenBackend(calib.Tech, calib.Spice), nil
			},
			Workers: 2,
			Logger:  quiet,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	waitFor(b, 5*time.Second, func() bool { return f.WorkerCount() == n })
	return f, ws
}

// sleepBackend models a worker with its own compute: each evaluation is a
// fixed service time (a remote SPICE job bound by the worker machine, not
// by this host's cores). Sleeping instead of burning CPU lets the scale/*
// series demonstrate fleet scaling even on a single-core CI host, where
// CPU-bound in-process workers cannot physically run in parallel.
type sleepBackend struct{ d time.Duration }

func (sleepBackend) Name() string { return "behavioral" }

func (b sleepBackend) Evaluate(cfg mult.Config, cond device.PVT) (engine.Metrics, error) {
	time.Sleep(b.d)
	return fakeMetrics(cfg, cond), nil
}

// BenchmarkRemoteMatrix quantifies the tentpole in three regimes. cold/* is
// the real end-to-end cost of a golden matrix on this host, serial versus
// fleet (on a single-core host the fleet's duplicated per-worker trims make
// this an overhead measurement; on multi-core it is the speed-up). scale/*
// pins the distribution win itself with service-time-bound workers: 4
// workers must beat local serial by well over 2×. warm/* is the rerun over
// a shared store, which must ship nothing. CI records all series in
// BENCH_remote.json and gates them against the previous run.
func BenchmarkRemoteMatrix(b *testing.B) {
	calib := core.QuickCalibration()
	jobs := benchJobs()

	b.Run("cold/local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.New(engine.NewGoldenBackend(calib.Tech, calib.Spice), 1)
			if _, err := eng.EvaluateBatch(jobs); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("cold/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Fleet setup (listen, dial, handshake) is part of the
				// measured cost: it is what a distributed run actually pays,
				// and it is microseconds against the golden transients.
				f, ws := benchFleet(b, calib, workers)
				eng := engine.New(f.Backend(engine.NewGoldenBackend(calib.Tech, calib.Spice)), workers)
				if _, err := eng.EvaluateBatch(jobs); err != nil {
					b.Fatal(err)
				}
				for _, w := range ws {
					w.Close()
				}
				f.Close()
			}
		})
	}

	scaleJobs := testJobs(6) // 18 cells at a fixed 10ms service time each
	b.Run("scale/local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.New(sleepBackend{d: 10 * time.Millisecond}, 1)
			if _, err := eng.EvaluateBatch(scaleJobs); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("scale/workers=%d", workers), func(b *testing.B) {
			quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
			f, err := Listen("127.0.0.1:0", Options{Fingerprint: "bench", Logger: quiet})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			for i := 0; i < workers; i++ {
				w, err := Dial(f.Addr(), WorkerOptions{
					Fingerprint: "bench",
					Backends: func(string) (engine.Backend, error) {
						return sleepBackend{d: 10 * time.Millisecond}, nil
					},
					Workers: 2,
					Logger:  quiet,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
			}
			waitFor(b, 5*time.Second, func() bool { return f.WorkerCount() == workers })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := engine.New(f.Backend(sleepBackend{d: 10 * time.Millisecond}), workers)
				if _, err := eng.EvaluateBatch(scaleJobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	b.Run("warm/workers=2", func(b *testing.B) {
		f, ws := benchFleet(b, calib, 2)
		defer func() {
			for _, w := range ws {
				w.Close()
			}
			f.Close()
		}()
		store := newMemStore()
		seed := engine.New(f.Backend(engine.NewGoldenBackend(calib.Tech, calib.Spice)), 2).WithStore(store)
		if _, err := seed.EvaluateBatch(jobs); err != nil {
			b.Fatal(err)
		}
		shipped := f.Stats().CellsShipped
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := engine.New(f.Backend(engine.NewGoldenBackend(calib.Tech, calib.Spice)), 2).WithStore(store)
			if _, err := eng.EvaluateBatch(jobs); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := f.Stats().CellsShipped; got != shipped {
			b.Fatalf("warm reruns shipped %d cells, want 0", got-shipped)
		}
	})
}
