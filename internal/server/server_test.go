package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/exp"
	"optima/internal/mult"
	"optima/internal/search"
)

var (
	modelOnce sync.Once
	model     *core.Model
	modelErr  error
)

func testModel(t testing.TB) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		model, modelErr = core.Calibrate(core.QuickCalibration())
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

func testExp(t testing.TB) *exp.Context {
	t.Helper()
	return exp.NewContextWithModel(testModel(t), core.QuickCalibration().Tech)
}

// --- HTTP helpers ------------------------------------------------------

func postJSON(t testing.TB, url string, body any, out any) (int, string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	if body == nil {
		data = nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s response %q: %v", url, buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func doDelete(t testing.TB, url string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func createSession(t testing.TB, base string) string {
	t.Helper()
	var sess SessionStatus
	if code, body := postJSON(t, base+"/api/sessions", nil, &sess); code != http.StatusCreated {
		t.Fatalf("create session: %d %s", code, body)
	}
	return sess.ID
}

func submitJob(t testing.TB, base, sid string, req map[string]any) string {
	t.Helper()
	var st JobStatus
	if code, body := postJSON(t, base+"/api/sessions/"+sid+"/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit job: %d %s", code, body)
	}
	return st.ID
}

// watchToTerminal follows a job's WebSocket stream to its terminal event
// and returns every event seen.
func watchToTerminal(t testing.TB, base, sid, jid string) []Event {
	t.Helper()
	ws, err := DialWS(base + "/api/sessions/" + sid + "/jobs/" + jid + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	var events []Event
	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s: no terminal event within deadline (saw %d events)", jid, len(events))
		}
		msg, err := ws.ReadMessage()
		if err != nil {
			t.Fatalf("job %s: ws read after %d events: %v", jid, len(events), err)
		}
		var ev Event
		if err := json.Unmarshal(msg, &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
		if ev.Terminal() {
			return events
		}
	}
}

func jobStatus(t testing.TB, base, sid, jid string) JobStatus {
	t.Helper()
	var st JobStatus
	if code := getJSON(t, base+"/api/sessions/"+sid+"/jobs/"+jid, &st); code != http.StatusOK {
		t.Fatalf("get job: %d", code)
	}
	return st
}

// --- end-to-end acceptance --------------------------------------------

// TestServerCrossSessionDedupe is the acceptance scenario: two sessions
// submit overlapping sweep jobs concurrently; because every session shares
// one engine, each distinct (config, condition) cell is evaluated exactly
// once — the second claimant is served as a cache hit — and both jobs
// return identical results.
func TestServerCrossSessionDedupe(t *testing.T) {
	srv := New(testExp(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sidA := createSession(t, ts.URL)
	sidB := createSession(t, ts.URL)
	req := map[string]any{
		"kind":   "sweep",
		"tau0":   "0.16:0.28:6",
		"vdac0":  "0.3,0.4,0.5",
		"vdacfs": "0.8,1.0",
	} // 36 cells at the nominal condition

	var jidA, jidB string
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); jidA = submitJob(t, ts.URL, sidA, req) }()
	go func() { defer wg.Done(); jidB = submitJob(t, ts.URL, sidB, req) }()
	wg.Wait()
	evA := watchToTerminal(t, ts.URL, sidA, jidA)
	evB := watchToTerminal(t, ts.URL, sidB, jidB)
	if last := evA[len(evA)-1]; last.Type != EventDone {
		t.Fatalf("job A ended %q (%s)", last.Type, last.Error)
	}
	if last := evB[len(evB)-1]; last.Type != EventDone {
		t.Fatalf("job B ended %q (%s)", last.Type, last.Error)
	}

	// Exactly-once evaluation across sessions: 72 submitted cells, 36
	// distinct — the engine must report 36 evaluated, 36 deduped.
	var status StatusResponse
	if code := getJSON(t, ts.URL+"/api/status", &status); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if status.Engine.Misses != 36 {
		t.Fatalf("engine evaluated %d cells, want 36 (cross-session dedupe)", status.Engine.Misses)
	}
	if status.Engine.Hits != 36 {
		t.Fatalf("engine deduped %d cells, want 36", status.Engine.Hits)
	}

	// Both sessions got byte-identical payloads.
	stA := jobStatus(t, ts.URL, sidA, jidA)
	stB := jobStatus(t, ts.URL, sidB, jidB)
	if !bytes.Equal(stA.Result, stB.Result) {
		t.Fatal("overlapping sweeps returned different results")
	}
	var res SweepResult
	if err := json.Unmarshal(stA.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 36 {
		t.Fatalf("sweep returned %d points, want 36", len(res.Points))
	}
}

// TestServerSearchMatchesDirectRun: a search job's result is byte-identical
// to search.Run through the library at a different worker count (the
// CLI-parity and worker-invariance acceptance criterion), and its rung
// events arrive over WebSocket in rung order, matching the result's trace.
func TestServerSearchMatchesDirectRun(t *testing.T) {
	srv := New(testExp(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const tau0, vdac0, vdacfs = "0.16:0.28:8", "0.3,0.4,0.5", "0.8,1.0"
	sid := createSession(t, ts.URL)
	jid := submitJob(t, ts.URL, sid, map[string]any{
		"kind": "search", "tau0": tau0, "vdac0": vdac0, "vdacfs": vdacfs,
		"rungs": 2, "seed": 7,
	})
	events := watchToTerminal(t, ts.URL, sid, jid)
	if last := events[len(events)-1]; last.Type != EventDone {
		t.Fatalf("search job ended %q (%s)", last.Type, last.Error)
	}

	st := jobStatus(t, ts.URL, sid, jid)
	var report search.JSONReport
	if err := json.Unmarshal(st.Result, &report); err != nil {
		t.Fatal(err)
	}

	// Rung events: one per trace rung, in order, with matching stats.
	var rungs []search.RungStats
	for _, ev := range events {
		if ev.Type == EventRung {
			rungs = append(rungs, *ev.Rung)
		}
	}
	if len(rungs) != len(report.Trace.Rungs) {
		t.Fatalf("streamed %d rung events, trace has %d rungs", len(rungs), len(report.Trace.Rungs))
	}
	for i, rs := range rungs {
		if rs != report.Trace.Rungs[i] {
			t.Fatalf("rung event %d = %+v, trace says %+v", i, rs, report.Trace.Rungs[i])
		}
	}
	// Progress events are monotone within each rung.
	prev := map[int]int{}
	for _, ev := range events {
		if ev.Type != EventProgress {
			continue
		}
		if ev.Done <= prev[ev.RungIndex] {
			t.Fatalf("rung %d progress went %d after %d", ev.RungIndex, ev.Done, prev[ev.RungIndex])
		}
		prev[ev.RungIndex] = ev.Done
	}

	// Library parity: same options, different engine, ONE worker — the
	// result must be byte-identical to the server's (which ran at the
	// default worker count).
	space, err := search.ParseSpaceSpec(tau0, vdac0, vdacfs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.Run(context.Background(), search.Options{
		Space:      space,
		Screen:     engine.New(engine.Behavioral{Model: testModel(t)}, 1),
		Conditions: engine.NominalConditions(),
		Rungs:      2,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(search.NewJSONReport(res))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Result, want) {
		t.Fatalf("server search result differs from direct run:\nserver: %s\ndirect: %s", st.Result, want)
	}
}

// --- session semantics and cancellation --------------------------------

// gateBackend blocks evaluations on a release gate so tests can observe a
// job verifiably mid-flight.
type gateBackend struct {
	started chan struct{}
	release chan struct{}
	evals   atomic.Int64
}

func newGateBackend() *gateBackend {
	return &gateBackend{started: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *gateBackend) Name() string { return "gate" }

func (g *gateBackend) Evaluate(cfg mult.Config, cond device.PVT) (engine.Metrics, error) {
	select {
	case g.started <- struct{}{}:
	default:
	}
	<-g.release
	g.evals.Add(1)
	return engine.Metrics{Config: cfg, Cond: cond, EpsMul: cfg.Tau0 * 1e9, EMul: cfg.VDACFS * 1e-15}, nil
}

// TestServerSessionBusyAndCancel covers the one-operation-per-session
// contract and the cancellation satellite: a DELETE mid-sweep stops the
// job promptly (in-flight evaluations complete, the rest are abandoned),
// and a rerun in the same session completes from the warm cache with
// strictly fewer backend evaluations.
func TestServerSessionBusyAndCancel(t *testing.T) {
	leakCheck(t)
	gate := newGateBackend()
	gateEng := engine.New(gate, 2)
	srv := New(testExp(t))
	srv.engineFor = func(string) (*engine.Engine, error) { return gateEng, nil }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sid := createSession(t, ts.URL)
	req := map[string]any{
		"kind":   "sweep",
		"tau0":   "0.16:0.28:4",
		"vdac0":  "0.3,0.4",
		"vdacfs": "0.8,1.0",
	} // 16 cells
	jid := submitJob(t, ts.URL, sid, req)
	<-gate.started // the job is verifiably mid-rung

	// One active operation per session: a concurrent submission conflicts.
	if code, body := postJSON(t, ts.URL+"/api/sessions/"+sid+"/jobs", req, nil); code != http.StatusConflict {
		t.Fatalf("submit into a busy session: %d %s, want 409", code, body)
	}

	// DELETE cancels; in-flight evaluations are released and complete.
	if code := doDelete(t, ts.URL+"/api/sessions/"+sid+"/jobs/"+jid); code != http.StatusAccepted {
		t.Fatalf("cancel: %d, want 202", code)
	}
	close(gate.release)
	events := watchToTerminal(t, ts.URL, sid, jid)
	if last := events[len(events)-1]; last.Type != EventCanceled {
		t.Fatalf("canceled job ended %q (%s)", last.Type, last.Error)
	}
	st := jobStatus(t, ts.URL, sid, jid)
	if st.State != JobCanceled || !strings.Contains(st.Error, "canceled") {
		t.Fatalf("job state %q error %q, want canceled", st.State, st.Error)
	}
	completed := gate.evals.Load()
	if completed < 1 || completed >= 16 {
		t.Fatalf("canceled sweep completed %d evaluations, want some but not all of 16", completed)
	}

	// The session is free again; the rerun resumes from the warm cache —
	// the finished work is served, only the abandoned cells re-evaluate.
	jid2 := submitJob(t, ts.URL, sid, req)
	events = watchToTerminal(t, ts.URL, sid, jid2)
	if last := events[len(events)-1]; last.Type != EventDone {
		t.Fatalf("rerun ended %q (%s)", last.Type, last.Error)
	}
	st2 := jobStatus(t, ts.URL, sid, jid2)
	if st2.Stats == nil {
		t.Fatal("finished job carries no stats")
	}
	if st2.Stats.Misses != uint64(16-completed) {
		t.Fatalf("rerun evaluated %d cells, want %d (16 minus the %d completed before cancellation)",
			st2.Stats.Misses, 16-completed, completed)
	}
	if st2.Stats.Hits != uint64(completed) {
		t.Fatalf("rerun served %d cells from cache, want %d", st2.Stats.Hits, completed)
	}
	if total := gate.evals.Load(); total != 16 {
		t.Fatalf("%d backend evaluations across cancel + rerun, want exactly 16", total)
	}
	var res SweepResult
	if err := json.Unmarshal(st2.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 16 {
		t.Fatalf("rerun returned %d points, want 16", len(res.Points))
	}
}

// --- validation and status ---------------------------------------------

func TestServerRequestValidation(t *testing.T) {
	srv := New(testExp(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sid := createSession(t, ts.URL)
	jobsURL := ts.URL + "/api/sessions/" + sid + "/jobs"

	cases := []struct {
		name string
		req  map[string]any
		want string
	}{
		{"unknown kind", map[string]any{"kind": "frobnicate"}, "unknown job kind"},
		{"bad axis", map[string]any{"kind": "sweep", "tau0": "a:b:c"}, "axis tau0"},
		{"bad backend", map[string]any{"kind": "sweep", "backend": "spicy"}, "unknown backend"},
		{"sweep multi-condition", map[string]any{"kind": "sweep", "conditions": "TT@1.0V@27C,SS@0.90V@60C"}, "use kind=matrix"},
		{"bad conditions", map[string]any{"kind": "matrix", "conditions": "banana"}, "condition"},
		{"negative budget", map[string]any{"kind": "search", "budget": -3}, "budget -3"},
		{"sub-unity eta", map[string]any{"kind": "search", "eta": 0.5}, "must exceed 1"},
		{"unknown field", map[string]any{"kind": "sweep", "bogus": true}, "bogus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postJSON(t, jobsURL, tc.req, nil)
			if code != http.StatusBadRequest {
				t.Fatalf("%d %s, want 400", code, body)
			}
			if !strings.Contains(body, tc.want) {
				t.Fatalf("error %q does not mention %q", body, tc.want)
			}
		})
	}

	if code, _ := postJSON(t, ts.URL+"/api/sessions/nope/jobs", map[string]any{"kind": "sweep"}, nil); code != http.StatusNotFound {
		t.Fatalf("submit to unknown session: %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/api/sessions/"+sid+"/jobs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("get unknown job: %d, want 404", code)
	}
}

// TestServerStatusStoreDegradation: a cache directory that cannot open
// degrades the server to memory-only, and GET /api/status says so — the
// exp.Context.StoreError surface.
func TestServerStatusStoreDegradation(t *testing.T) {
	ctx := testExp(t)
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx.CacheDir = filepath.Join(blocker, "cache") // MkdirAll through a file fails
	srv := New(ctx)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var status StatusResponse
	if code := getJSON(t, ts.URL+"/api/status", &status); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if status.Store.Persistent {
		t.Fatal("status claims a persistent store despite the open failure")
	}
	if !strings.Contains(status.Store.Error, "persistent result store disabled") {
		t.Fatalf("store error %q does not surface the degradation", status.Store.Error)
	}
}

// TestServerShutdownCancelsJobs: a shutdown deadline cancels running jobs
// and still drains cleanly.
func TestServerShutdownCancelsJobs(t *testing.T) {
	leakCheck(t)
	gate := newGateBackend()
	gateEng := engine.New(gate, 2)
	srv := New(testExp(t))
	srv.engineFor = func(string) (*engine.Engine, error) { return gateEng, nil }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sid := createSession(t, ts.URL)
	jid := submitJob(t, ts.URL, sid, map[string]any{
		"kind": "sweep", "tau0": "0.16:0.28:4", "vdac0": "0.3,0.4", "vdacfs": "0.8,1.0",
	})
	<-gate.started

	shutCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// The gate stays closed until the deadline forces cancellation; then
	// release the in-flight evaluations so the drain can finish.
	time.AfterFunc(100*time.Millisecond, func() { close(gate.release) })
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := jobStatus(t, ts.URL, sid, jid); st.State != JobCanceled {
		t.Fatalf("job state after deadline shutdown: %q, want canceled", st.State)
	}
	if code, _ := postJSON(t, ts.URL+"/api/sessions", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create session on a closing server: %d, want 503", code)
	}
}

// TestServerMatrixJob: the cross-condition plane end to end — a matrix job
// returns one robust summary per corner spanning the condition set.
func TestServerMatrixJob(t *testing.T) {
	srv := New(testExp(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sid := createSession(t, ts.URL)
	jid := submitJob(t, ts.URL, sid, map[string]any{
		"kind":       "matrix",
		"tau0":       "0.16:0.28:4",
		"vdac0":      "0.3,0.4",
		"vdacfs":     "0.8,1.0",
		"conditions": "TT@1.0V@27C,SS@0.90V@60C,FF@1.10V@0C",
	})
	events := watchToTerminal(t, ts.URL, sid, jid)
	if last := events[len(events)-1]; last.Type != EventDone {
		t.Fatalf("matrix job ended %q (%s)", last.Type, last.Error)
	}
	var res MatrixResult
	if err := json.Unmarshal(jobStatus(t, ts.URL, sid, jid).Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Robust) != 16 {
		t.Fatalf("matrix returned %d robust summaries, want 16", len(res.Robust))
	}
	if !strings.Contains(res.Conditions, "SS@0.9V@60C") {
		t.Fatalf("result conditions %q missing the set", res.Conditions)
	}
	for i, r := range res.Robust {
		if r.WorstEpsCond == "" {
			t.Fatalf("robust summary %d has no arg-worst condition", i)
		}
	}
}
