package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"optima/internal/engine"
)

// benchRecords is the population size of the open benchmarks — large enough
// that decode throughput, not syscall noise, dominates.
const benchRecords = 10_000

func benchEntries(n int) []engine.CacheEntry {
	ents := make([]engine.CacheEntry, n)
	for i := range ents {
		ents[i] = engine.CacheEntry{Key: testKey(i), Met: testMet(i)}
	}
	return ents
}

// buildV2Fixture creates a clean v2 store directory with n records.
func buildV2Fixture(b *testing.B, dir string, n int) {
	b.Helper()
	s, err := Open(dir, Options{Fingerprint: "fp"})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.PutBatch(benchEntries(n)); err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// buildV1Fixture writes the same n records in the legacy JSONL format.
func buildV1Fixture(b *testing.B, dir string, n int) {
	b.Helper()
	segs := make([][]byte, DefaultPartitions)
	for _, ent := range benchEntries(n) {
		line, err := json.Marshal(v1Record{FP: "fp", Key: ent.Key, Met: ent.Met})
		if err != nil {
			b.Fatal(err)
		}
		p := ent.Key.Hash() % uint64(len(segs))
		segs[p] = append(segs[p], line...)
		segs[p] = append(segs[p], '\n')
	}
	for i, data := range segs {
		if err := os.WriteFile(filepath.Join(dir, segName(i)), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	m, err := json.Marshal(manifest{Version: formatVersionV1, Partitions: len(segs), Fingerprint: "fp"})
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), m, 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreOpen measures what a session pays before its first lookup.
//
//   - warm-v2: reopening a clean v2 store (the every-session cost).
//   - v1-jsonl-decode: the decode work the v1 JSONL loader did for the same
//     population — the baseline the codec's open speedup is measured
//     against.
//   - migrate-v1: the one-time cost of converting a v1 directory at open
//     (decode + re-encode + rename), paid once per directory ever.
func BenchmarkStoreOpen(b *testing.B) {
	b.Run("warm-v2/10k", func(b *testing.B) {
		dir := b.TempDir()
		buildV2Fixture(b, dir, benchRecords)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := Open(dir, Options{Fingerprint: "fp"})
			if err != nil {
				b.Fatal(err)
			}
			if s.Len() != benchRecords {
				b.Fatalf("store serves %d records", s.Len())
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v1-jsonl-decode/10k", func(b *testing.B) {
		dir := b.TempDir()
		buildV1Fixture(b, dir, benchRecords)
		paths, err := filepath.Glob(filepath.Join(dir, v1SegmentGlob))
		if err != nil || len(paths) == 0 {
			b.Fatalf("fixture glob: %v (%d segments)", err, len(paths))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The v1 loadPartition loop: read, split lines, JSON-decode into
			// the in-memory index.
			total := 0
			for _, path := range paths {
				data, err := os.ReadFile(path)
				if err != nil {
					b.Fatal(err)
				}
				index := map[engine.Key]engine.Metrics{}
				for len(data) > 0 {
					nl := -1
					for j, c := range data {
						if c == '\n' {
							nl = j
							break
						}
					}
					if nl < 0 {
						break
					}
					var rec v1Record
					if err := json.Unmarshal(data[:nl], &rec); err != nil {
						b.Fatal(err)
					}
					data = data[nl+1:]
					index[rec.Key] = rec.Met
				}
				total += len(index)
			}
			if total != benchRecords {
				b.Fatalf("decoded %d records", total)
			}
		}
	})
	b.Run("migrate-v1/10k", func(b *testing.B) {
		fixture := b.TempDir()
		buildV1Fixture(b, fixture, benchRecords)
		names, err := filepath.Glob(filepath.Join(fixture, "*"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			for _, src := range names {
				data, err := os.ReadFile(src)
				if err != nil {
					b.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, filepath.Base(src)), data, 0o644); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			s, err := Open(dir, Options{Fingerprint: "fp"})
			if err != nil {
				b.Fatal(err)
			}
			if s.Len() != benchRecords {
				b.Fatalf("migrated store serves %d records", s.Len())
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStorePutBatch pits batched persistence against per-record Puts:
// the batch path encodes each partition's group into one buffer and pays
// one lock/write per touched segment instead of per record.
func BenchmarkStorePutBatch(b *testing.B) {
	const batch = 256
	b.Run("batch/256", func(b *testing.B) {
		dir := b.TempDir()
		s, err := Open(dir, Options{Fingerprint: "fp"})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		ents := benchEntries(batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.PutBatch(ents); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("looped-put/256", func(b *testing.B) {
		dir := b.TempDir()
		s, err := Open(dir, Options{Fingerprint: "fp"})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		ents := benchEntries(batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, ent := range ents {
				if err := s.Put(ent.Key, ent.Met); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
