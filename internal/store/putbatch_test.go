package store

import (
	"os"
	"sync"
	"testing"

	"optima/internal/engine"
)

// TestPutBatchEquivalentToLoopedPut: one PutBatch and a loop of Puts over
// the same entries must leave identical stores — same live set, same
// values, same partition routing — including across a reopen, and from
// concurrent writers (run under -race).
func TestPutBatchEquivalentToLoopedPut(t *testing.T) {
	const n = 64
	dirBatch, dirLoop := t.TempDir(), t.TempDir()

	sb, err := Open(dirBatch, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, sb, n)

	sl, err := Open(dirLoop, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				if err := sl.Put(testKey(i), testMet(i)); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()

	for _, s := range []*Store{sb, sl} {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	sb, err = Open(dirBatch, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	sl, err = Open(dirLoop, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()

	if sb.Len() != n || sl.Len() != n {
		t.Fatalf("stores hold %d / %d results, want %d each", sb.Len(), sl.Len(), n)
	}
	for i := 0; i < n; i++ {
		mb, okb := sb.Get(testKey(i))
		ml, okl := sl.Get(testKey(i))
		if !okb || !okl || mb != ml || mb != testMet(i) {
			t.Fatalf("key %d: batch (%v,%v) vs loop (%v,%v)", i, mb, okb, ml, okl)
		}
	}
	// Same partition routing: record counts per segment file match.
	for i := 0; i < DefaultPartitions; i++ {
		fib, err := os.Stat(segPath(dirBatch, i))
		if err != nil {
			t.Fatal(err)
		}
		fil, err := os.Stat(segPath(dirLoop, i))
		if err != nil {
			t.Fatal(err)
		}
		if fib.Size() != fil.Size() {
			t.Fatalf("partition %d: batch segment %d bytes, looped %d", i, fib.Size(), fil.Size())
		}
	}
}

// TestOpenDoesNotRewriteCleanSegments pins the 25%-garbage compaction
// threshold: a warm open of a clean store leaves every segment file's bytes
// untouched, while a mostly-stale partition is rewritten.
func TestOpenDoesNotRewriteCleanSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp", Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 40)
	// Overwrite 8 of 40 keys: 8 garbage / 48 total ≈ 17% < 25%.
	for i := 0; i < 8; i++ {
		if err := s.Put(testKey(i), testMet(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(segPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir, Options{Fingerprint: "fp", Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(segPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("clean open rewrote the segment: %d -> %d bytes", len(before), len(after))
	}

	// Push the garbage over the threshold: overwrite 20 more keys
	// (28 garbage / 68 total ≈ 41% > 25%) — the next open compacts.
	s, err = Open(dir, Options{Fingerprint: "fp", Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 28; i++ {
		if err := s.Put(testKey(i), testMet(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, Options{Fingerprint: "fp", Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Stats()
	if st.Garbage != 0 {
		t.Fatalf("open left %d garbage records in a %d%%-stale partition", st.Garbage, 41)
	}
	if st.Live != 40 {
		t.Fatalf("compaction kept %d live records, want 40", st.Live)
	}
}

var getSink engine.Metrics

// TestGetZeroAlloc is the satellite's routing assertion at the store level:
// a Get — hash, partition pick, index lookup — performs zero allocations
// (the v1 router allocated a fresh FNV hasher and scratch per call).
func TestGetZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s, 16)
	keys := [4]engine.Key{testKey(0), testKey(5), testKey(10), testKey(15)}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		getSink, _ = s.Get(keys[i&3])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Store.Get allocates %.1f objects per call, want 0", allocs)
	}
}
