package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestQRSolvesSquareSystem(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{4, 1, 2},
		{1, 5, 1},
		{2, 1, 6},
	})
	want := []float64{1, -2, 3}
	b, _ := a.MulVec(want)
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-10) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 exactly from redundant observations.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2*x + 1
	}
	coef, resid, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(coef[0], 1, 1e-10) || !almostEq(coef[1], 2, 1e-10) {
		t.Fatalf("coef = %v, want [1 2]", coef)
	}
	if resid > 1e-10 {
		t.Fatalf("residual = %g, want ~0", resid)
	}
}

func TestQRResidualIsMinimal(t *testing.T) {
	// For an inconsistent system, perturbing the LS solution must not
	// decrease the residual.
	a, _ := NewMatrixFromRows([][]float64{{1, 0}, {1, 0}, {0, 1}})
	b := []float64{0, 2, 1}
	x, resid, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	residAt := func(v []float64) float64 {
		av, _ := a.MulVec(v)
		var ss float64
		for i := range av {
			d := av[i] - b[i]
			ss += d * d
		}
		return math.Sqrt(ss)
	}
	if !almostEq(resid, residAt(x), 1e-12) {
		t.Fatalf("reported residual %g != recomputed %g", resid, residAt(x))
	}
	for _, delta := range [][]float64{{0.01, 0}, {-0.01, 0}, {0, 0.01}, {0, -0.01}} {
		perturbed := []float64{x[0] + delta[0], x[1] + delta[1]}
		if residAt(perturbed) < resid-1e-12 {
			t.Fatalf("perturbation %v decreased the residual", delta)
		}
	}
}

func TestQRUnderdeterminedRejected(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := FactorQR(a); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestQRSingularDetected(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestQRWrongRHSLength(t *testing.T) {
	a := NewMatrix(3, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	a.Set(2, 0, 1)
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestQRReconstruction(t *testing.T) {
	// R from the factorization must satisfy ‖A‖_F = ‖R‖_F (orthogonal Q).
	r := pseudoRand(7)
	a := randomMatrix(r, 6, 3)
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a.FrobeniusNorm(), f.R().FrobeniusNorm(), 1e-10) {
		t.Fatalf("‖A‖=%g but ‖R‖=%g", a.FrobeniusNorm(), f.R().FrobeniusNorm())
	}
}

func TestConditionEstimate(t *testing.T) {
	f, err := FactorQR(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ConditionEstimate(); !almostEq(got, 1, 1e-12) {
		t.Fatalf("cond(I) = %g, want 1", got)
	}
}

// Property: QR solve recovers random solutions of well-conditioned systems.
func TestQRRandomRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := pseudoRand(uint64(seed))
		a := randomMatrix(r, 5, 3)
		// Diagonal boost for conditioning.
		for i := 0; i < 3; i++ {
			a.Set(i, i, a.At(i, i)+3)
		}
		want := []float64{r.next(), r.next(), r.next()}
		b, _ := a.MulVec(want)
		x, _, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if !almostEq(x[i], want[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySPDSolve(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{4, 2, 1},
		{2, 5, 2},
		{1, 2, 6},
	})
	want := []float64{1, 2, 3}
	b, _ := a.MulVec(want)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-10) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestCholeskyLReconstructs(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{4, 2},
		{2, 5},
	})
	f, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := f.L()
	llt, _ := l.Mul(l.T())
	if !almostEq(llt.At(0, 0), 4, 1e-12) || !almostEq(llt.At(0, 1), 2, 1e-12) || !almostEq(llt.At(1, 1), 5, 1e-12) {
		t.Fatalf("L·Lᵀ = %v", llt)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{1, 2},
		{2, 1},
	})
	if _, err := FactorCholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := FactorCholesky(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestNormalEquationsMatchQR(t *testing.T) {
	r := pseudoRand(13)
	a := randomMatrix(r, 8, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, a.At(i, i)+2)
	}
	b := make([]float64, 8)
	for i := range b {
		b[i] = r.next()
	}
	xQR, _, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ata, atb, err := NormalEquations(a, b)
	if err != nil {
		t.Fatal(err)
	}
	xNE, err := SolveSPD(ata, atb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xQR {
		if !almostEq(xQR[i], xNE[i], 1e-8) {
			t.Fatalf("QR %v vs normal equations %v", xQR, xNE)
		}
	}
}
