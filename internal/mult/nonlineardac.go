package mult

import (
	"fmt"

	"optima/internal/core"
	"optima/internal/device"
)

// The paper identifies the quadratic word-line-to-discharge transfer as a
// core error source and cites the nonlinear DAC of AID [15] as a potential
// solution, "even though its practical circuit implementation poses
// significant challenges". This file implements that extension on top of
// the behavioral models: each of the 16 DAC levels is trimmed so that the
// modeled discharge becomes proportional to the input code.

// NonlinearDAC holds per-code trimmed word-line voltages for one multiplier
// configuration.
type NonlinearDAC struct {
	// Levels[a] is the trimmed output voltage for input code a [V].
	Levels [OperandMax + 1]float64
}

// CalibrateNonlinearDAC solves for DAC levels that linearize the discharge
// transfer of the given configuration at the nominal condition:
//
//	ΔV(τ0, V_a) = (a/15) · ΔV(τ0, V_DAC,FS)
//
// by bisection on the calibrated discharge model. The endpoints remain
// V_DAC,0 (code 0) and V_DAC,FS (code 15) — only the interior codes move.
func CalibrateNonlinearDAC(model *core.Model, cfg Config) (*NonlinearDAC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cond := device.Nominal()
	const tRef = 1e-9 // reference discharge window for the trim
	full := model.Discharge.DeltaV(tRef, cfg.VDACFS, cond.VDD, cond.TempC)
	if full <= 0 {
		return nil, fmt.Errorf("mult: nonlinear DAC: %w", ErrScale)
	}
	dac := &NonlinearDAC{}
	dac.Levels[0] = cfg.VDAC0
	dac.Levels[OperandMax] = cfg.VDACFS
	for a := 1; a < OperandMax; a++ {
		// Linearize through zero: the discharge of code a must be a/15 of
		// full scale, so products become exactly proportional to a·d (the
		// residual zero-code offset of V_DAC,0 stays, as in the real DAC).
		target := full * float64(a) / float64(OperandMax)
		lo, hi := cfg.VDAC0, cfg.VDACFS
		for i := 0; i < 50; i++ {
			mid := (lo + hi) / 2
			if model.Discharge.DeltaV(tRef, mid, cond.VDD, cond.TempC) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		dac.Levels[a] = (lo + hi) / 2
	}
	return dac, nil
}

// Voltage returns the trimmed word-line voltage for code a at the given
// supply (same partial supply tracking as the linear DAC).
func (d *NonlinearDAC) Voltage(a uint, vdd float64) float64 {
	return core.SupplyScaledVWL(d.Levels[a], vdd)
}

// WithNonlinearDAC returns a copy of the behavioral multiplier that drives
// the word line through the trimmed DAC and re-calibrates the ADC trim for
// the linearized transfer.
func (b *Behavioral) WithNonlinearDAC(dac *NonlinearDAC) (*Behavioral, error) {
	nl := *b
	nl.DAC = dac
	// The copied det table was built for the linear DAC's word-line
	// voltages; rebuild it (and the trim, from the same outputs) for the
	// trimmed levels.
	nominal := device.Nominal()
	nomTab := nl.buildDetTable(nominal)
	gain, offset, err := fitADCTrim(nomTab.combined)
	if err != nil {
		return nil, fmt.Errorf("mult: nonlinear DAC trim: %w", err)
	}
	nl.LSBVolt = gain
	nl.OffsetVolt = offset
	if nl.Cond.VDD == nominal.VDD && nl.Cond.TempC == nominal.TempC {
		nl.det = nomTab
	} else {
		nl.det = nl.buildDetTable(nl.Cond)
	}
	return &nl, nil
}

// wordLineVoltage resolves the word-line voltage for input code a through
// either the linear configuration mapping or the trimmed DAC.
func (b *Behavioral) wordLineVoltage(a uint, vdd float64) float64 {
	if b.DAC != nil {
		return b.DAC.Voltage(a, vdd)
	}
	return b.Cfg.DACVoltage(a, vdd)
}
