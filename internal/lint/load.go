// load.go loads, parses and type-checks the target packages with nothing
// beyond the standard library: `go list -e -export -json -deps` enumerates
// the packages and the compiled export data of their dependencies (built on
// demand from the module cache of the active toolchain), go/parser parses
// the target sources with comments, and go/types checks them against an
// importer that reads that export data. No golang.org/x/tools, matching the
// repo's zero-dependency ethos.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage mirrors the `go list -json` fields the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *listError
	DepsErrors []*listError
}

type listError struct {
	Pos string
	Err string
}

// Load resolves patterns (as the go tool understands them) in dir and
// returns the matched packages, parsed and type-checked. Failures degrade:
// a pattern or package that `go list` cannot load becomes a "load"
// diagnostic, a package that does not type-check carries "typecheck"
// diagnostics and is skipped by the analyzers — only an unrunnable go
// command is a hard error.
func Load(dir string, patterns []string) ([]*Package, []Diagnostic, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var roots []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}

	var diags []Diagnostic
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})

	var pkgs []*Package
	for _, r := range roots {
		if r.Error != nil {
			diags = append(diags, Diagnostic{
				Pos:      token.Position{Filename: nonEmpty(r.Error.Pos, r.ImportPath)},
				Analyzer: "load",
				Message:  fmt.Sprintf("package %s failed to load: %s", r.ImportPath, r.Error.Err),
			})
			continue
		}
		if len(r.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, name := range r.GoFiles {
			paths = append(paths, filepath.Join(r.Dir, name))
		}
		pkgs = append(pkgs, checkPackage(fset, r.ImportPath, r.Dir, paths, imp))
	}
	return pkgs, diags, nil
}

// checkPackage parses and type-checks one package. Both failure modes
// degrade into the package's TypeErrors — the analyzers skip such a
// package, the run continues.
func checkPackage(fset *token.FileSet, importPath, dir string, filePaths []string, imp types.Importer) *Package {
	pkg := &Package{Path: importPath, Dir: dir, Fset: fset}
	parseOK := true
	for _, path := range filePaths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.TypeErrors = append(pkg.TypeErrors, Diagnostic{
				Pos:      token.Position{Filename: path},
				Analyzer: "typecheck",
				Message:  fmt.Sprintf("package %s does not parse: %v", importPath, err),
			})
			parseOK = false
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	if parseOK {
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				d := Diagnostic{Analyzer: "typecheck", Message: err.Error()}
				if te, ok := err.(types.Error); ok {
					d.Pos = te.Fset.Position(te.Pos)
					d.Message = te.Msg
				}
				pkg.TypeErrors = append(pkg.TypeErrors, d)
			},
		}
		pkg.Pkg, _ = conf.Check(importPath, fset, pkg.Files, pkg.Info)
	}
	return pkg
}

func nonEmpty(s, fallback string) string {
	if s != "" {
		return s
	}
	return fallback
}
