package events

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestScheduleRunsInTimeOrder(t *testing.T) {
	sim := NewSimulator()
	var order []int
	mustSchedule(t, sim, 30*Picosecond, func() { order = append(order, 3) })
	mustSchedule(t, sim, 10*Picosecond, func() { order = append(order, 1) })
	mustSchedule(t, sim, 20*Picosecond, func() { order = append(order, 2) })
	sim.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if sim.Now() != 30*Picosecond {
		t.Fatalf("clock = %v, want 30 ps", sim.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	sim := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, sim, Nanosecond, func() { order = append(order, i) })
	}
	sim.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	sim := NewSimulator()
	fired := false
	ev := mustSchedule(t, sim, Picosecond, func() { fired = true })
	ev.Cancel()
	sim.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if sim.EventsFired() != 0 {
		t.Fatalf("EventsFired = %d, want 0", sim.EventsFired())
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	sim := NewSimulator()
	var times []Time
	mustSchedule(t, sim, 10*Picosecond, func() {
		times = append(times, sim.Now())
		if _, err := sim.Schedule(5*Picosecond, func() {
			times = append(times, sim.Now())
		}); err != nil {
			t.Error(err)
		}
	})
	sim.Run()
	if len(times) != 2 || times[0] != 10*Picosecond || times[1] != 15*Picosecond {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	sim := NewSimulator()
	mustSchedule(t, sim, 10*Picosecond, func() {
		if _, err := sim.At(5*Picosecond, func() {}); !errors.Is(err, ErrPast) {
			t.Errorf("err = %v, want ErrPast", err)
		}
	})
	sim.Run()
	if _, err := sim.Schedule(-1, func() {}); !errors.Is(err, ErrPast) {
		t.Fatalf("negative delay: err = %v, want ErrPast", err)
	}
	if _, err := sim.Schedule(1, nil); err == nil {
		t.Fatal("nil function accepted")
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	sim := NewSimulator()
	var fired []Time
	for _, at := range []Time{Picosecond, 2 * Picosecond, 5 * Picosecond} {
		at := at
		if _, err := sim.At(at, func() { fired = append(fired, at) }); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunUntil(3 * Picosecond)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want first two", fired)
	}
	if sim.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", sim.Pending())
	}
	sim.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event did not fire: %v", fired)
	}
}

func TestStop(t *testing.T) {
	sim := NewSimulator()
	count := 0
	mustSchedule(t, sim, Picosecond, func() {
		count++
		sim.Stop()
	})
	mustSchedule(t, sim, 2*Picosecond, func() { count++ })
	sim.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (stopped)", count)
	}
}

func TestReset(t *testing.T) {
	sim := NewSimulator()
	mustSchedule(t, sim, Picosecond, func() {})
	sim.Run()
	sim.Reset()
	if sim.Now() != 0 || sim.Pending() != 0 || sim.EventsFired() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1e-9) != Nanosecond {
		t.Fatalf("FromSeconds(1ns) = %v", FromSeconds(1e-9))
	}
	if Nanosecond.Seconds() != 1e-9 {
		t.Fatalf("Seconds = %g", Nanosecond.Seconds())
	}
	for _, tt := range []Time{500 * Femtosecond, 3 * Picosecond, 2 * Nanosecond} {
		if tt.String() == "" {
			t.Fatal("empty time string")
		}
	}
}

func TestSignalWatchAndTrace(t *testing.T) {
	sim := NewSimulator()
	sig := NewSignal(sim, "bl", 1.0)
	var changes int
	sig.Watch(func(old, new float64) {
		changes++
		if old == new {
			t.Error("watcher called without a change")
		}
	})
	trace := sig.EnableTrace()
	mustSchedule(t, sim, Picosecond, func() { sig.Set(0.8) })
	mustSchedule(t, sim, 2*Picosecond, func() { sig.Set(0.8) }) // no-op
	mustSchedule(t, sim, 3*Picosecond, func() { sig.Set(0.5) })
	sim.Run()
	if changes != 2 {
		t.Fatalf("changes = %d, want 2", changes)
	}
	if trace.Len() != 3 { // initial + 2 changes
		t.Fatalf("trace length = %d, want 3", trace.Len())
	}
	if got := trace.ValueAt(2 * Picosecond); got != 0.8 {
		t.Fatalf("ValueAt(2ps) = %g, want 0.8", got)
	}
	if got := trace.ValueAt(10 * Picosecond); got != 0.5 {
		t.Fatalf("ValueAt(10ps) = %g, want 0.5", got)
	}
	if sig.LastEdge() != 3*Picosecond {
		t.Fatalf("LastEdge = %v", sig.LastEdge())
	}
	if sig.Name() != "bl" {
		t.Fatal("name lost")
	}
}

// Property: N events with arbitrary delays always fire in non-decreasing
// time order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		sim := NewSimulator()
		var fired []Time
		for _, d := range delays {
			if _, err := sim.Schedule(Time(d)*Femtosecond, func() {
				fired = append(fired, sim.Now())
			}); err != nil {
				return false
			}
		}
		sim.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mustSchedule(t *testing.T, sim *Simulator, delay Time, fn func()) *Event {
	t.Helper()
	ev, err := sim.Schedule(delay, fn)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestVCDExport(t *testing.T) {
	sim := NewSimulator()
	sig := NewSignal(sim, "bl voltage", 1.0)
	trace := sig.EnableTrace()
	mustSchedule(t, sim, Picosecond, func() { sig.Set(0.8) })
	mustSchedule(t, sim, 3*Picosecond, func() { sig.Set(0.5) })
	sim.Run()

	var w VCDWriter
	if err := w.AddSignal(sig.Name(), trace); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := w.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, needle := range []string{"$timescale 1fs $end", "bl_voltage", "#1000", "#3000", "r0.8", "r0.5"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("VCD missing %q:\n%s", needle, out)
		}
	}
	if err := w.AddSignal("broken", nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
	}
}
