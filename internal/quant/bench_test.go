package quant

import (
	"testing"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/mult"
	"optima/internal/stats"
)

func benchLUT(b *testing.B, rng *stats.RNG) *InMemory {
	b.Helper()
	model, err := core.Calibrate(core.QuickCalibration())
	if err != nil {
		b.Fatal(err)
	}
	bm, err := mult.NewBehavioral(model, mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}, device.Nominal())
	if err != nil {
		b.Fatal(err)
	}
	im, err := NewInMemory(bm, rng)
	if err != nil {
		b.Fatal(err)
	}
	return im
}

func BenchmarkInMemoryMulDeterministic(b *testing.B) {
	im := benchLUT(b, nil)
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += im.Mul(uint8(i&15), int8(i%8))
	}
	_ = sink
}

func BenchmarkInMemoryMulSampled(b *testing.B) {
	im := benchLUT(b, stats.NewRNG(1))
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += im.Mul(uint8(i&15), int8(i%8))
	}
	_ = sink
}
