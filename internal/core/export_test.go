package core

import "os"

// osWriteFile lets tests write fixtures without importing os in the main
// test file twice.
func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
