package dse

import (
	"fmt"
	"math"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/mult"
	"optima/internal/spice"
	"optima/internal/stats"
)

// ResultProfile is the Fig. 8 (left) analysis: average error and analog
// standard deviation as functions of the expected result, for one corner.
type ResultProfile struct {
	Config mult.Config
	// Expected lists the distinct products a·d in ascending order.
	Expected []int
	// AvgError[i] is the mean expected |error| in LSBs over the input pairs
	// whose product is Expected[i].
	AvgError []float64
	// SigmaLSB[i] is the RMS analog standard deviation in LSBs over the
	// same pairs.
	SigmaLSB []float64
}

// ProfileByResult computes the per-expected-result error and σ profile of a
// corner at the given condition (paper Fig. 8, left).
func ProfileByResult(model *core.Model, cfg mult.Config, cond device.PVT) (ResultProfile, error) {
	b, err := mult.NewBehavioral(model, cfg, cond)
	if err != nil {
		return ResultProfile{}, err
	}
	type acc struct {
		err   stats.Accumulator
		sigSq stats.Accumulator
	}
	groups := make(map[int]*acc)
	for a := uint(0); a <= mult.OperandMax; a++ {
		for d := uint(0); d <= mult.OperandMax; d++ {
			r, err := b.Multiply(a, d, nil)
			if err != nil {
				return ResultProfile{}, err
			}
			g := groups[r.Expected]
			if g == nil {
				g = &acc{}
				groups[r.Expected] = g
			}
			sigma := math.Hypot(r.Sigma, b.ADCSigma)
			g.err.Add(engine.ExpectedAbsError(r.VComb-b.OffsetVolt, sigma, b.LSBVolt, r.Expected))
			g.sigSq.Add(r.Sigma * r.Sigma)
		}
	}
	prof := ResultProfile{Config: cfg}
	for k := 0; k <= mult.ProductMax; k++ {
		g, ok := groups[k]
		if !ok {
			continue
		}
		prof.Expected = append(prof.Expected, k)
		prof.AvgError = append(prof.AvgError, g.err.Mean())
		prof.SigmaLSB = append(prof.SigmaLSB, math.Sqrt(g.sigSq.Mean())/b.LSBVolt)
	}
	return prof, nil
}

// ConditionSweep is the Fig. 8 (right) analysis: average error of a corner
// as a function of supply voltage or temperature.
type ConditionSweep struct {
	Config mult.Config
	// X holds the swept variable values (VDD [V] or temperature [°C]).
	X []float64
	// AvgError[i] is ϵ_mul at X[i].
	AvgError []float64
	// AvgEnergy[i] is E_mul [J] at X[i].
	AvgEnergy []float64
}

// SweepVDD evaluates ϵ_mul over a supply range at nominal temperature
// through the given engine (paper Fig. 8 right, top). It is a thin view
// over the cross-condition matrix path: one batch spans the whole sweep.
func SweepVDD(eng *engine.Engine, cfg mult.Config, vdds []float64) (ConditionSweep, error) {
	conds := make([]device.PVT, len(vdds))
	for i, vdd := range vdds {
		conds[i] = device.PVT{Corner: device.CornerTT, VDD: vdd, TempC: device.NominalTempC}
	}
	return conditionSweep(eng, cfg, "VDD", vdds, conds)
}

// SweepTemp evaluates ϵ_mul over a temperature range at nominal supply
// through the given engine (paper Fig. 8 right, bottom), as a matrix view
// like SweepVDD.
func SweepTemp(eng *engine.Engine, cfg mult.Config, temps []float64) (ConditionSweep, error) {
	conds := make([]device.PVT, len(temps))
	for i, tc := range temps {
		conds[i] = device.PVT{Corner: device.CornerTT, VDD: device.NominalVDD, TempC: tc}
	}
	return conditionSweep(eng, cfg, "temperature", temps, conds)
}

// conditionSweep evaluates cfg across the conditions via the engine's
// matrix path and collects the error/energy curves in sweep order. A
// failing point is named: the error identifies the swept variable and the
// exact value (the engine error additionally carries the full condition),
// so a 9-point supply sweep never fails with a bare corner error. An
// empty point list returns an empty sweep; a duplicated point is an error
// (NewConditionSet rejects duplicates — a repeated excursion point is a
// caller bug, not a curve).
func conditionSweep(eng *engine.Engine, cfg mult.Config, what string, xs []float64, conds []device.PVT) (ConditionSweep, error) {
	if len(conds) == 0 {
		return ConditionSweep{Config: cfg}, nil
	}
	set, err := engine.NewConditionSet(conds...)
	if err != nil {
		return ConditionSweep{}, fmt.Errorf("dse: %s sweep of %v: %w", what, cfg, err)
	}
	mat, err := eng.EvaluateMatrix([]mult.Config{cfg}, set)
	if err != nil {
		return ConditionSweep{}, fmt.Errorf("dse: %s sweep of %v failed (%s points %v): %w", what, cfg, what, xs, err)
	}
	out := ConditionSweep{Config: cfg}
	for i, met := range mat.Row(0) {
		out.X = append(out.X, xs[i])
		out.AvgError = append(out.AvgError, met.EpsMul)
		out.AvgEnergy = append(out.AvgEnergy, met.EMul)
	}
	return out, nil
}

// MCValidation cross-checks the analytic expected-error metric with
// Monte-Carlo sampling (per-operation mismatch and readout noise), returning
// the sampled ϵ_mul. Used by tests and the MC speed-up benchmark.
func MCValidation(model *core.Model, cfg mult.Config, cond device.PVT, samples int, seed uint64) (float64, error) {
	b, err := mult.NewBehavioral(model, cfg, cond)
	if err != nil {
		return 0, err
	}
	rng := stats.NewRNG(seed)
	var acc stats.Accumulator
	for s := 0; s < samples; s++ {
		for a := uint(0); a <= mult.OperandMax; a++ {
			for d := uint(0); d <= mult.OperandMax; d++ {
				r, err := b.Multiply(a, d, rng)
				if err != nil {
					return 0, err
				}
				e := r.ErrorLSB()
				if e < 0 {
					e = -e
				}
				acc.Add(float64(e))
			}
		}
	}
	return acc.Mean(), nil
}

// CornerCheck quantifies the global-process-corner sensitivity of one
// configuration using the golden backend (the behavioral model, like the
// paper's, carries process variation only statistically via Eq. 6 — global
// FF/SS shifts are outside its domain, which is exactly what this check
// measures). For each corner it runs the full golden input space and
// reports the mean |error| in LSBs of the TT-trimmed readout.
type CornerCheck struct {
	Config  mult.Config
	Corners []device.ProcessCorner
	// AvgError[i] is the golden mean |error| at Corners[i] [LSB].
	AvgError []float64
	// Transients counts golden simulations run.
	Transients int
}

// GoldenCornerCheck runs the corner sensitivity analysis. It is golden-
// simulation bound (≈1500 transients for three corners).
func GoldenCornerCheck(tech device.Tech, cfg mult.Config, scfg spice.Config) (CornerCheck, error) {
	out := CornerCheck{Config: cfg, Corners: device.Corners()}
	trim, err := mult.CalibrateGoldenTrim(tech, cfg, scfg)
	if err != nil {
		return CornerCheck{}, err
	}
	out.Transients += trim.Transients
	for _, corner := range out.Corners {
		cond := device.PVT{Corner: corner, VDD: device.NominalVDD, TempC: device.NominalTempC}
		g, err := mult.NewGoldenWithTrim(tech, cfg, cond, scfg, trim)
		if err != nil {
			return CornerCheck{}, err
		}
		var acc stats.Accumulator
		var scr spice.Scratch
		for a := uint(0); a <= mult.OperandMax; a++ {
			for d := uint(0); d <= mult.OperandMax; d++ {
				r, err := g.MultiplyCells(a, d, nil, &scr)
				if err != nil {
					return CornerCheck{}, err
				}
				e := r.ErrorLSB()
				if e < 0 {
					e = -e
				}
				acc.Add(float64(e))
				out.Transients += r.Transients
			}
		}
		out.AvgError = append(out.AvgError, acc.Mean())
	}
	return out, nil
}
