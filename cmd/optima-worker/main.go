// Command optima-worker is one process of a distributed evaluation fleet:
// it calibrates (or loads) the OPTIMA model, dials a coordinator started
// with -remote on optima, optima-dnn or optima-server, and evaluates the
// (config × condition) cells the coordinator ships to it.
//
// Usage:
//
//	optima-worker -connect host:port [-workers N] [-model in.json] [-quick] [-log-level L]
//
// The worker must be calibrated identically to the coordinator — same
// -model file, or the same (default vs -quick) calibration recipe — or the
// coordinator rejects it in the handshake: the calibration fingerprint is
// part of every result's cache identity, and a mismatched worker would
// silently poison the coordinator's content-addressed store.
//
// -workers bounds concurrent evaluations in this process (0 = all CPUs).
// A lost coordinator is retried with backoff until interrupted, so workers
// can be started before the coordinator and survive coordinator restarts;
// a handshake rejection is fatal (retrying cannot fix a calibration
// mismatch).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"time"

	"optima/internal/core"
	"optima/internal/engine"
	"optima/internal/obs"
	"optima/internal/remote"
	"optima/internal/store"
)

func main() {
	connect := flag.String("connect", "", "coordinator address to dial (required), e.g. coordinator-host:9777")
	workers := flag.Int("workers", 0, "concurrent evaluations in this worker process (0 = all CPUs)")
	modelPath := flag.String("model", "", "load a calibrated model instead of recalibrating (must match the coordinator's)")
	quick := flag.Bool("quick", false, "use the reduced calibration grids (must match the coordinator's calibration)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	flag.Parse()
	if err := run(*connect, *workers, *modelPath, *quick, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "optima-worker:", err)
		os.Exit(1)
	}
}

func run(connect string, workers int, modelPath string, quick bool, logLevel string) error {
	if connect == "" {
		return fmt.Errorf("-connect is required")
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", logLevel, err)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	calib := core.DefaultCalibration()
	if quick {
		calib = core.QuickCalibration()
	}
	var model *core.Model
	if modelPath != "" {
		m, err := core.LoadModel(modelPath)
		if err != nil {
			return err
		}
		slog.Info("loaded model", "path", modelPath)
		model = m
	} else {
		start := time.Now()
		m, err := core.Calibrate(calib)
		if err != nil {
			return err
		}
		slog.Info("calibrated", "in", time.Since(start).Round(time.Millisecond))
		model = m
	}
	fp, err := store.Fingerprint(engine.MetricsSchema, model, calib.Tech, calib.Spice)
	if err != nil {
		return fmt.Errorf("fingerprint: %w", err)
	}

	opts := remote.WorkerOptions{
		Fingerprint: fp,
		Backends: func(name string) (engine.Backend, error) {
			return engine.ByName(name, model, calib.Tech, calib.Spice)
		},
		Workers:  workers,
		Logger:   slog.Default(),
		Recorder: obs.NewRecorder(obs.RecorderOptions{}),
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)

	// Reconnect loop: a refused or dropped coordinator is retried with
	// backoff (workers may start before the coordinator, and survive its
	// restarts). A handshake rejection is fatal — the coordinator named a
	// calibration or protocol mismatch that retrying cannot fix.
	backoff := time.Second
	for {
		w, err := remote.Dial(connect, opts)
		if err != nil {
			if errors.Is(err, remote.ErrRejected) {
				return err
			}
			slog.Warn("coordinator unreachable; retrying", "addr", connect, "err", err, "backoff", backoff)
			select {
			case <-interrupt:
				return nil
			case <-time.After(backoff):
			}
			if backoff < 30*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = time.Second
		slog.Info("connected to coordinator", "addr", connect, "workers", workers)
		done := make(chan struct{})
		go func() { w.Wait(); close(done) }()
		select {
		case <-interrupt:
			w.Close()
			<-done
			return nil
		case <-done:
			slog.Warn("coordinator connection lost; reconnecting", "addr", connect)
		}
	}
}
