// Package obs is the stdlib-only telemetry layer of the evaluation stack:
// a lock-cheap ring-buffer span recorder (Chrome trace-format export, see
// trace.go) plus a Prometheus-style metrics registry (metrics.go). Every
// layer — engine, store, search, mult's golden trim, the server's job
// lifecycle — records into one Recorder handed down through
// engine.BatchOptions / exp.Context, so a run can be opened in Perfetto or
// scraped at GET /metrics without any layer owning the other.
//
// Two properties shape the design:
//
//   - Nil-safety: every method of Recorder, Timer, Counter, Gauge,
//     Histogram and Registry is a no-op on a nil receiver. Instrumented
//     code calls unconditionally; a run without a recorder pays a nil
//     check, not a branch-forest.
//
//   - Clock injection: the deterministic packages (engine, store, search,
//     mult, exp — see internal/lint's determinism analyzer) never read the
//     wall clock. They call Recorder.Now / Timer.End, and the clock lives
//     here, injectable for tests (RecorderOptions.Clock) and monotonic by
//     default. Timing flows only into spans and metrics, never into
//     returned or persisted results — artifacts are byte-identical with
//     tracing on or off, at any worker count.
//
// # Spans
//
// A Timer opens a span (Recorder.Start / StartSpan); Timer.End records it
// into a fixed-capacity ring (overflow overwrites oldest and is counted,
// never blocks). Spans carry a parent ID so the trace is a forest: a
// server job span parents a search span, which parents rung spans, which
// parent batch spans, which parent per-cell eval spans, down to golden
// trim transients. Recorder.WriteTrace renders Chrome trace-format JSON
// that loads directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing; Subtree filters one job's spans for the server's
// per-job trace endpoint.
//
// # Metrics
//
// The Registry holds counters, gauges (incl. scrape-time GaugeFuncs), and
// fixed-bucket histograms, all atomics under the hood, rendered
// deterministically (families and series sorted) in Prometheus text
// exposition format 0.0.4 by WritePrometheus — the body behind
// optima-server's GET /metrics. Samples flattens the same data into the
// CLIs' end-of-run telemetry table.
package obs
