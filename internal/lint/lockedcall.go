// lockedcall.go checks lock hygiene on the hot paths: a method of a
// mutex-carrying type must not run an evaluation, perform network I/O, or
// block on a channel send while holding its receiver's lock. The engine's
// whole concurrency story depends on locks guarding only map/counter
// updates — an Evaluate call or a blocking send under e.mu would serialize
// the worker pool (or deadlock it against a waiter holding the same lock).
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockedCallAnalyzer flags, in any method whose receiver type carries a
// sync.Mutex/RWMutex field, while the receiver's lock is held:
//
//   - blocking channel sends (a send inside a select with a default branch
//     is non-blocking and allowed — the hub's drop-slow-subscriber fan-out);
//   - calls to evaluation work (*Evaluate*, Multiply*) or net/http and net
//     functions.
//
// The tracking is source-order within the method body: Lock() starts the
// window, a plain Unlock() ends it, `defer Unlock()` extends it to the end
// of the body. Function literals are skipped — code in a spawned goroutine
// does not run under the caller's lock.
func LockedCallAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "lockedcall",
		Doc:     "no evaluation, network call, or blocking channel send while holding a receiver's mutex",
		InScope: everywhere,
		Run:     runLockedCall,
	}
}

func runLockedCall(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			if !receiverHasMutex(pass, fn) {
				continue
			}
			checkLockedWindow(pass, fn.Body)
		}
	}
}

// receiverHasMutex reports whether the method's receiver struct carries a
// sync.Mutex or sync.RWMutex field (named or embedded).
func receiverHasMutex(pass *Pass, fn *ast.FuncDecl) bool {
	t := pass.Info.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkLockedWindow walks the method body in source order, tracking whether
// a mutex Lock is outstanding, and flags risky operations inside the
// window.
func checkLockedWindow(pass *Pass, body *ast.BlockStmt) {
	locked := false
	deferred := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later, not under this lock
		case *ast.DeferStmt:
			if isLockCall(n.Call, "Unlock", "RUnlock") {
				deferred = true
			}
			return false // deferred code runs after the window
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if isLockCall(call, "Lock", "RLock") {
					locked = true
					return false
				}
				if isLockCall(call, "Unlock", "RUnlock") {
					if !deferred {
						locked = false
					}
					return false
				}
			}
		case *ast.SendStmt:
			if locked && !inSelectWithDefault(body, n) {
				pass.Reportf(n.Pos(), "blocking channel send while the receiver's mutex is held: a slow or absent receiver stalls every other method of this type (send outside the lock, or use a buffered non-blocking select)")
			}
		case *ast.CallExpr:
			if locked {
				if what, ok := heavyCall(pass, n); ok {
					pass.Reportf(n.Pos(), "%s while the receiver's mutex is held serializes all users of the lock; move the call outside the critical section", what)
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// isLockCall matches <expr>.mu.<name>() style calls where the final
// selector is one of names and the base mentions a mutex-ish field. The
// field check is lexical (Lock/Unlock methods promoted from sync types
// resolve to sync.Mutex methods, which is what matters).
func isLockCall(call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

// inSelectWithDefault reports whether the send statement is a comm clause
// of a select that has a default branch — the non-blocking send idiom.
func inSelectWithDefault(body *ast.BlockStmt, send *ast.SendStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || found {
			return !found
		}
		hasDefault := false
		owns := false
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				hasDefault = true
			} else if cc.Comm == ast.Stmt(send) {
				owns = true
			}
		}
		if owns && hasDefault {
			found = true
		}
		return !found
	})
	return found
}

// heavyCall matches evaluation and network calls.
func heavyCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if pkgPath, ok := packageOf(pass.Info, sel); ok {
		if pkgPath == "net/http" || pkgPath == "net" {
			return "calling " + pkgPath + "." + name, true
		}
		return "", false
	}
	if strings.Contains(name, "Evaluate") || strings.HasPrefix(name, "Multiply") {
		return "calling " + name, true
	}
	return "", false
}
