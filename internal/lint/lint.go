// lint.go is the analysis driver core: the Package/Pass/Analyzer types,
// diagnostic collection, and the //lint:ignore suppression machinery.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a human-readable message. The driver's own complaints (load failures,
// type-check errors, malformed suppressions) use the reserved analyzer
// names "load", "typecheck" and "lint".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, parsed and type-checked target package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// TypeErrors holds the type-check failures. A package with type errors
	// is reported as such and skipped by the analyzers: their type-driven
	// queries would answer nonsense over a partial Info.
	TypeErrors []Diagnostic
}

// Pass is the per-(analyzer, package) unit of work handed to Analyzer.Run.
// Report appends a raw diagnostic; the driver applies suppressions
// afterwards.
type Pass struct {
	*Package
	diags    *[]Diagnostic
	analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker. InScope gates it per package: the
// determinism rules, for example, apply only to the packages whose outputs
// must be byte-reproducible, not to the whole tree.
type Analyzer struct {
	Name string
	// Doc is the one-line invariant statement shown by optimalint -list.
	Doc string
	// InScope reports whether the analyzer applies to the package at the
	// given import path. Corpus packages (under a testdata directory) are
	// always in scope, so the expected-diagnostic fixtures exercise every
	// analyzer regardless of the repo scoping; see inScope.
	InScope func(pkgPath string) bool
	Run     func(*Pass)
}

// inScope wraps an import-path-suffix scope rule with the corpus override.
func inScope(suffixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		if strings.Contains(pkgPath, "/testdata/") {
			return true
		}
		for _, s := range suffixes {
			if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
				return true
			}
		}
		return false
	}
}

// everywhere is the scope of analyzers that apply to every target package.
func everywhere(string) bool { return true }

// Analyzers returns the OPTIMA suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		ClaimSafetyAnalyzer(),
		ErrWrapAnalyzer(),
		LockedCallAnalyzer(),
	}
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool
	reason    string
	malformed string // non-empty: the driver diagnostic to emit
}

const ignorePrefix = "lint:ignore"

// parseIgnores extracts the //lint:ignore directives of a file, keyed by
// the line they suppress: the directive's own line, so both end-of-line
// placement and whole-line placement above the flagged statement work (the
// latter via the line+1 lookup in suppressed).
func parseIgnores(fset *token.FileSet, f *ast.File, known map[string]bool) map[int]*ignoreDirective {
	out := map[int]*ignoreDirective{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			pos := fset.Position(c.Pos())
			d := &ignoreDirective{pos: pos, analyzers: map[string]bool{}}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				d.malformed = "lint:ignore directive names no analyzer and gives no reason"
			case len(fields) == 1:
				d.malformed = fmt.Sprintf("lint:ignore %s has no reason; a suppression must say why the invariant does not apply", fields[0])
			default:
				for _, name := range strings.Split(fields[0], ",") {
					if !known[name] {
						d.malformed = fmt.Sprintf("lint:ignore names unknown analyzer %q", name)
					}
					d.analyzers[name] = true
				}
				d.reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
			}
			out[pos.Line] = d
		}
	}
	return out
}

// Run executes every in-scope analyzer over every package, applies the
// //lint:ignore suppressions, and returns the surviving diagnostics sorted
// by position. Packages that failed to type-check contribute their
// type-check diagnostics instead of analyzer findings.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			diags = append(diags, pkg.TypeErrors...)
			continue
		}
		ignores := map[string]map[int]*ignoreDirective{} // filename -> line -> directive
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			ignores[name] = parseIgnores(pkg.Fset, f, known)
		}

		var raw []Diagnostic
		for _, a := range analyzers {
			if !a.InScope(pkg.Path) {
				continue
			}
			a.Run(&Pass{Package: pkg, diags: &raw, analyzer: a.Name})
		}
		for _, d := range raw {
			if !suppressed(ignores[d.Pos.Filename], d) {
				diags = append(diags, d)
			}
		}
		// Malformed directives are findings themselves — a reasonless
		// suppression is exactly the reviewer folklore this tool replaces.
		for _, byLine := range ignores {
			for _, dir := range byLine {
				if dir.malformed != "" {
					diags = append(diags, Diagnostic{Pos: dir.pos, Analyzer: "lint", Message: dir.malformed})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppressed reports whether a well-formed directive on the diagnostic's
// line, or on the line above it, names the diagnostic's analyzer.
func suppressed(byLine map[int]*ignoreDirective, d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if dir := byLine[line]; dir != nil && dir.malformed == "" && dir.analyzers[d.Analyzer] {
			return true
		}
	}
	return false
}
