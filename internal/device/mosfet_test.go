package device

import (
	"math"
	"testing"
	"testing/quick"

	"optima/internal/stats"
)

func testDevice() *MOSFET {
	return NewMOSFET(Generic65(), 0.18e-6, 0.065e-6)
}

func TestIdsOffBelowThreshold(t *testing.T) {
	m := testDevice()
	cond := Nominal()
	iOff := m.Ids(0, 1.0, 0, cond)
	iOn := m.Ids(1.0, 1.0, 0, cond)
	if iOff <= 0 {
		t.Fatalf("off current %g must be positive (subthreshold leakage)", iOff)
	}
	if iOn/iOff < 1e4 {
		t.Fatalf("on/off ratio %g too small", iOn/iOff)
	}
}

func TestIdsMonotonicInGate(t *testing.T) {
	m := testDevice()
	cond := Nominal()
	prev := -1.0
	for vg := 0.0; vg <= 1.2; vg += 0.02 {
		i := m.Ids(vg, 1.0, 0, cond)
		if i < prev {
			t.Fatalf("Ids not monotonic in Vg at %g", vg)
		}
		prev = i
	}
}

func TestIdsMonotonicInDrain(t *testing.T) {
	m := testDevice()
	cond := Nominal()
	prev := 0.0
	for vd := 0.0; vd <= 1.0; vd += 0.02 {
		i := m.Ids(0.8, vd, 0, cond)
		if i < prev-1e-15 {
			t.Fatalf("Ids not monotonic in Vd at %g: %g < %g", vd, i, prev)
		}
		prev = i
	}
}

func TestIdsZeroAtZeroVds(t *testing.T) {
	m := testDevice()
	if i := m.Ids(0.8, 0, 0, Nominal()); i != 0 {
		t.Fatalf("Ids at Vds=0 is %g, want 0", i)
	}
}

func TestIdsAntisymmetric(t *testing.T) {
	// Swapping source and drain must flip the current sign (symmetric device).
	m := testDevice()
	cond := Nominal()
	fwd := m.Ids(0.9, 0.7, 0.2, cond)
	rev := m.Ids(0.9, 0.2, 0.7, cond)
	if math.Abs(fwd+rev) > 1e-18 {
		t.Fatalf("fwd %g, rev %g: not antisymmetric", fwd, rev)
	}
}

func TestSubthresholdSlope(t *testing.T) {
	// In weak inversion the current decade per gate volt is set by n·Vt·ln10.
	m := testDevice()
	cond := Nominal()
	vth := m.Vth(cond)
	i1 := m.Ids(vth-0.15, 1.0, 0, cond)
	i2 := m.Ids(vth-0.25, 1.0, 0, cond)
	decades := math.Log10(i1 / i2)
	slope := 100.0 / decades // mV/decade
	want := m.Tech.N * cond.Vt() * math.Ln10 * 1e3
	if math.Abs(slope-want) > 0.25*want {
		t.Fatalf("subthreshold slope %.1f mV/dec, want ≈%.1f", slope, want)
	}
}

func TestVelocitySaturationLimitsVdsat(t *testing.T) {
	m := testDevice()
	cond := Nominal()
	vdsat := m.SatVds(1.0, 0, cond)
	vov := 1.0 - m.Vth(cond)
	if vdsat >= vov {
		t.Fatalf("Vdsat %g not reduced below Vov %g by velocity saturation", vdsat, vov)
	}
	if vdsat < 0.05 {
		t.Fatalf("Vdsat %g implausibly small", vdsat)
	}
}

func TestNearLinearCurrentAtHighOverdrive(t *testing.T) {
	// Deep velocity saturation: I(Vov) closer to linear than quadratic.
	m := testDevice()
	cond := Nominal()
	vth := m.Tech.Vth0
	i1 := m.Ids(vth+0.3, 1.0, 0, cond)
	i2 := m.Ids(vth+0.6, 1.0, 0, cond)
	ratio := i2 / i1
	if ratio > 2.8 { // quadratic would give 4
		t.Fatalf("I(2·Vov)/I(Vov) = %g: too quadratic for a velocity-saturated device", ratio)
	}
	if ratio < 1.5 {
		t.Fatalf("I(2·Vov)/I(Vov) = %g: sublinear", ratio)
	}
}

func TestTemperatureReducesStrongInversionCurrent(t *testing.T) {
	m := testDevice()
	hot := PVT{Corner: CornerTT, VDD: 1.0, TempC: 85}
	cold := PVT{Corner: CornerTT, VDD: 1.0, TempC: 0}
	iHot := m.Ids(1.0, 1.0, 0, hot)
	iCold := m.Ids(1.0, 1.0, 0, cold)
	// At high overdrive, mobility degradation wins over Vth reduction.
	if iHot >= iCold {
		t.Fatalf("strong-inversion current should drop with temperature: hot %g, cold %g", iHot, iCold)
	}
}

func TestTemperatureIncreasesSubthresholdCurrent(t *testing.T) {
	m := testDevice()
	hot := PVT{Corner: CornerTT, VDD: 1.0, TempC: 85}
	cold := PVT{Corner: CornerTT, VDD: 1.0, TempC: 0}
	vg := m.Tech.Vth0 - 0.1
	if m.Ids(vg, 1.0, 0, hot) <= m.Ids(vg, 1.0, 0, cold) {
		t.Fatal("subthreshold current should rise with temperature (Vth drop)")
	}
}

func TestCornersOrdering(t *testing.T) {
	m := testDevice()
	iFF := m.Ids(0.8, 1.0, 0, PVT{Corner: CornerFF, VDD: 1.0, TempC: 27})
	iTT := m.Ids(0.8, 1.0, 0, Nominal())
	iSS := m.Ids(0.8, 1.0, 0, PVT{Corner: CornerSS, VDD: 1.0, TempC: 27})
	if !(iFF > iTT && iTT > iSS) {
		t.Fatalf("corner ordering violated: FF %g, TT %g, SS %g", iFF, iTT, iSS)
	}
}

func TestCornerStrings(t *testing.T) {
	if CornerTT.String() != "TT" || CornerFF.String() != "FF" || CornerSS.String() != "SS" {
		t.Fatal("corner names wrong")
	}
	if ProcessCorner(99).String() == "" {
		t.Fatal("unknown corner must still format")
	}
	if len(Corners()) != 3 {
		t.Fatal("want 3 corners")
	}
}

func TestPelgromScaling(t *testing.T) {
	tech := Generic65()
	small := NewMOSFET(tech, 0.1e-6, 0.065e-6)
	big := NewMOSFET(tech, 0.4e-6, 0.065e-6)
	if small.SigmaVth() <= big.SigmaVth() {
		t.Fatal("smaller device must have larger Vth mismatch")
	}
	ratio := small.SigmaVth() / big.SigmaVth()
	if math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("σ ratio = %g, want 2 for 4× area ratio", ratio)
	}
}

func TestSampleMismatchStatistics(t *testing.T) {
	m := testDevice()
	rng := stats.NewRNG(99)
	var vthAcc, betaAcc stats.Accumulator
	for i := 0; i < 20000; i++ {
		mm := m.SampleMismatch(rng)
		vthAcc.Add(mm.DVth)
		betaAcc.Add(mm.DBeta)
	}
	if math.Abs(vthAcc.Mean()) > 3e-4 {
		t.Fatalf("mismatch Vth mean %g not ≈0", vthAcc.Mean())
	}
	if math.Abs(vthAcc.StdDev()-m.SigmaVth()) > 0.05*m.SigmaVth() {
		t.Fatalf("mismatch Vth std %g, want %g", vthAcc.StdDev(), m.SigmaVth())
	}
	if math.Abs(betaAcc.StdDev()-m.SigmaBeta()) > 0.05*m.SigmaBeta() {
		t.Fatalf("mismatch beta std %g, want %g", betaAcc.StdDev(), m.SigmaBeta())
	}
}

func TestMismatchShiftsCurrent(t *testing.T) {
	m := testDevice()
	cond := Nominal()
	nominal := m.Ids(0.8, 1.0, 0, cond)
	m.MM = Mismatch{DVth: 0.01}
	if m.Ids(0.8, 1.0, 0, cond) >= nominal {
		t.Fatal("higher Vth must reduce current")
	}
	m.MM = Mismatch{DBeta: 0.05}
	if got := m.Ids(0.8, 1.0, 0, cond); math.Abs(got/nominal-1.05) > 1e-3 {
		t.Fatalf("+5%% beta gave ratio %g", got/nominal)
	}
}

func TestGmPositive(t *testing.T) {
	m := testDevice()
	if gm := m.Gm(0.8, 1.0, 0, Nominal()); gm <= 0 {
		t.Fatalf("gm = %g, want positive", gm)
	}
}

func TestPVTHelpers(t *testing.T) {
	p := Nominal()
	if math.Abs(p.TempK()-300.15) > 1e-9 {
		t.Fatalf("TempK = %g", p.TempK())
	}
	if math.Abs(p.Vt()-0.02586) > 1e-4 {
		t.Fatalf("Vt = %g", p.Vt())
	}
	if p.String() == "" {
		t.Fatal("empty PVT string")
	}
}

func TestPMOSConductsWhenGateLow(t *testing.T) {
	p := NewPMOS(Generic65(), 0.1e-6, 0.065e-6)
	cond := Nominal()
	iOn := p.Isd(0, 0.5, 1.0, cond)    // gate low → conducting
	iOff := p.Isd(1.0, 0.5, 1.0, cond) // gate high → off
	if iOn <= 0 {
		t.Fatalf("PMOS on current %g, want positive", iOn)
	}
	if iOn/iOff < 1e3 {
		t.Fatalf("PMOS on/off ratio %g too small", iOn/iOff)
	}
}

func TestPMOSWeakerThanNMOS(t *testing.T) {
	tech := Generic65()
	n := NewMOSFET(tech, 0.1e-6, 0.065e-6)
	p := NewPMOS(tech, 0.1e-6, 0.065e-6)
	cond := Nominal()
	iN := n.Ids(1.0, 0.5, 0, cond)
	iP := p.Isd(0, 0.5, 1.0, cond)
	if iP >= iN {
		t.Fatalf("PMOS %g should be weaker than same-size NMOS %g", iP, iN)
	}
}

// Property: current is always finite and non-negative for vd ≥ vs over the
// operating box.
func TestIdsFiniteProperty(t *testing.T) {
	m := testDevice()
	f := func(g, d, s uint8) bool {
		vg := float64(g) / 255 * 1.2
		vs := float64(s) / 255 * 1.2
		vd := vs + float64(d)/255*(1.2-vs)
		for _, corner := range Corners() {
			cond := PVT{Corner: corner, VDD: 1.0, TempC: 27}
			i := m.Ids(vg, vd, vs, cond)
			if math.IsNaN(i) || math.IsInf(i, 0) || i < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
