package remote

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/mult"
)

// Wire format v1: both directions of the coordinator/worker connection are
// sequences of length-prefixed binary frames, each integrity-checked by its
// own CRC32 — the same framing discipline as the store codec's records
// (internal/store), applied to a stream instead of a segment file.
//
// Frame layout (all integers little-endian):
//
//	u32  body length (bytes after the 8-byte header)
//	u32  CRC32 (IEEE) of the body
//	body:
//	  u8   frame type (frameHello, frameWelcome, frameBatch, frameResult)
//	  type-specific payload (see the payload codecs below)
//
// Floats travel as math.Float64bits, so every value — including -0 and
// denormals — round-trips exactly: a remote evaluation is byte-identical
// to a local one. Metrics.Config and Metrics.Cond are not serialized; the
// coordinator reconstructs them from the shipped job, exactly as the store
// codec reconstructs them from the record key.
//
// Payload decoding is strict: a frame with trailing bytes, an out-of-range
// length prefix, or an unknown status byte is an error, never a partial
// decode. The CRC catches corruption inside a fully framed body; the
// length prefix catches truncation. Either failure poisons the connection
// — unlike a store segment there is no readable-prefix recovery, the peer
// is simply dropped and its cells reassigned.

// protoVersion is the wire protocol version, checked in the hello/welcome
// handshake. Bump it on any frame-layout change.
const protoVersion = 1

// Frame types.
const (
	// frameHello is the worker's opening frame: protocol version,
	// calibration fingerprint, and evaluation capacity.
	frameHello = 1
	// frameWelcome is the coordinator's handshake reply: an empty reason
	// accepts the worker, a non-empty reason rejects it.
	frameWelcome = 2
	// frameBatch ships a group of (backend, config, condition) cells from
	// the coordinator to one worker.
	frameBatch = 3
	// frameResult streams one evaluated cell (metrics or error) back from
	// a worker.
	frameResult = 4
)

// frameHeaderLen is the fixed per-frame header: body length + CRC32.
const frameHeaderLen = 8

// maxFrameLen bounds a single frame's body. A batch of a few thousand
// cells is under a megabyte; a length prefix beyond this bound is framing
// damage or a hostile peer, not a large frame.
const maxFrameLen = 1 << 24

// maxStringLen bounds the variable-length strings inside payloads
// (fingerprints, backend names, error messages).
const maxStringLen = 1 << 12

var frameCRCTable = crc32.IEEETable

// errFrame is the sentinel wrapped by every frame-decode failure.
var errFrame = errors.New("remote: bad frame")

// appendFrame appends one framed body (type byte + payload) to buf and
// returns the extended slice (append-style, like the store codec, so a
// writer encodes a frame with at most one grow).
func appendFrame(buf []byte, typ byte, payload []byte) []byte {
	bodyLen := 1 + len(payload)
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderLen+bodyLen)...)
	binary.LittleEndian.PutUint32(buf[start:], uint32(bodyLen))
	body := buf[start+frameHeaderLen:]
	body[0] = typ
	copy(body[1:], payload)
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(body, frameCRCTable))
	return buf
}

// decodeFrame decodes the frame at the head of data, returning the frame
// type, its payload (aliasing data), and the bytes consumed. A truncated,
// oversized or corrupt head is an error; the caller drops the connection.
func decodeFrame(data []byte) (typ byte, payload []byte, n int, err error) {
	if len(data) < frameHeaderLen {
		return 0, nil, 0, fmt.Errorf("%w: truncated header (%d bytes)", errFrame, len(data))
	}
	bodyLen := int(binary.LittleEndian.Uint32(data))
	if bodyLen < 1 || bodyLen > maxFrameLen {
		return 0, nil, 0, fmt.Errorf("%w: body length %d out of range", errFrame, bodyLen)
	}
	if frameHeaderLen+bodyLen > len(data) {
		return 0, nil, 0, fmt.Errorf("%w: truncated body (%d of %d bytes)", errFrame, len(data)-frameHeaderLen, bodyLen)
	}
	body := data[frameHeaderLen : frameHeaderLen+bodyLen]
	if crc32.Checksum(body, frameCRCTable) != binary.LittleEndian.Uint32(data[4:]) {
		return 0, nil, 0, fmt.Errorf("%w: CRC mismatch", errFrame)
	}
	return body[0], body[1:], frameHeaderLen + bodyLen, nil
}

// readFrame reads exactly one frame from r, validating the CRC. It blocks
// until a full frame arrives; a closed or broken connection surfaces as
// the underlying read error.
func readFrame(r *bufio.Reader) (typ byte, payload []byte, n int, err error) {
	var head [frameHeaderLen]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, 0, err
	}
	bodyLen := int(binary.LittleEndian.Uint32(head[:]))
	if bodyLen < 1 || bodyLen > maxFrameLen {
		return 0, nil, 0, fmt.Errorf("%w: body length %d out of range", errFrame, bodyLen)
	}
	buf := make([]byte, frameHeaderLen+bodyLen)
	copy(buf, head[:])
	if _, err := io.ReadFull(r, buf[frameHeaderLen:]); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: short body: %w", errFrame, err)
	}
	return decodeFrame(buf)
}

// cursor is a strict little-endian payload reader: every read checks
// bounds, and finish rejects trailing bytes, so a malformed payload is an
// error instead of a silent mis-decode.
type cursor struct {
	data []byte
	off  int
	err  error
}

func (c *cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: %s", errFrame, fmt.Sprintf(format, args...))
	}
}

func (c *cursor) u8() byte {
	if c.err != nil {
		return 0
	}
	if c.off+1 > len(c.data) {
		c.fail("truncated u8 at offset %d", c.off)
		return 0
	}
	v := c.data[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if c.err != nil {
		return 0
	}
	if c.off+2 > len(c.data) {
		c.fail("truncated u16 at offset %d", c.off)
		return 0
	}
	v := binary.LittleEndian.Uint16(c.data[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if c.off+4 > len(c.data) {
		c.fail("truncated u32 at offset %d", c.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(c.data[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.data) {
		c.fail("truncated u64 at offset %d", c.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.data[c.off:])
	c.off += 8
	return v
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) str() string {
	n := int(c.u16())
	if c.err != nil {
		return ""
	}
	if n > maxStringLen {
		c.fail("string length %d over bound %d", n, maxStringLen)
		return ""
	}
	if c.off+n > len(c.data) {
		c.fail("truncated string (%d of %d bytes)", len(c.data)-c.off, n)
		return ""
	}
	v := string(c.data[c.off : c.off+n])
	c.off += n
	return v
}

// finish returns the accumulated decode error, rejecting trailing bytes.
func (c *cursor) finish() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.data) {
		return fmt.Errorf("%w: %d trailing bytes", errFrame, len(c.data)-c.off)
	}
	return nil
}

func appendU16Str(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// helloFrame is the worker's handshake payload.
type helloFrame struct {
	Proto       uint32
	Fingerprint string
	Capacity    uint32
}

func appendHello(buf []byte, h helloFrame) []byte {
	p := make([]byte, 0, 4+2+len(h.Fingerprint)+4)
	p = binary.LittleEndian.AppendUint32(p, h.Proto)
	p = appendU16Str(p, h.Fingerprint)
	p = binary.LittleEndian.AppendUint32(p, h.Capacity)
	return appendFrame(buf, frameHello, p)
}

func decodeHello(payload []byte) (helloFrame, error) {
	c := cursor{data: payload}
	h := helloFrame{Proto: c.u32()}
	h.Fingerprint = c.str()
	h.Capacity = c.u32()
	return h, c.finish()
}

// welcomeFrame is the coordinator's handshake reply. An empty Reject
// accepts the worker.
type welcomeFrame struct {
	Reject string
}

func appendWelcome(buf []byte, w welcomeFrame) []byte {
	return appendFrame(buf, frameWelcome, appendU16Str(nil, w.Reject))
}

func decodeWelcome(payload []byte) (welcomeFrame, error) {
	c := cursor{data: payload}
	w := welcomeFrame{Reject: c.str()}
	return w, c.finish()
}

// batchCell is one shipped (config, condition) cell, addressed by its
// index within the dispatch so results route back without re-keying.
type batchCell struct {
	Index uint32
	Job   engine.Job
}

// batchFrame ships a group of cells of one dispatch to one worker. Cells
// are always encoded in ascending Index order — the coordinator sorts
// before shipping, so the bytes of a batch are a pure function of its
// cell set.
type batchFrame struct {
	Dispatch uint64
	Backend  string
	Cells    []batchCell
}

// maxBatchCells bounds the cell count of one batch frame; with the fixed
// 52-byte cell encoding this keeps a maximal batch under maxFrameLen.
const maxBatchCells = 1 << 17

func appendBatch(buf []byte, b batchFrame) []byte {
	p := make([]byte, 0, 8+2+len(b.Backend)+4+len(b.Cells)*(4+6*8))
	p = binary.LittleEndian.AppendUint64(p, b.Dispatch)
	p = appendU16Str(p, b.Backend)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(b.Cells)))
	for _, cell := range b.Cells {
		p = binary.LittleEndian.AppendUint32(p, cell.Index)
		for _, v := range [...]uint64{
			math.Float64bits(cell.Job.Config.Tau0),
			math.Float64bits(cell.Job.Config.VDAC0),
			math.Float64bits(cell.Job.Config.VDACFS),
			uint64(cell.Job.Cond.Corner),
			math.Float64bits(cell.Job.Cond.VDD),
			math.Float64bits(cell.Job.Cond.TempC),
		} {
			p = binary.LittleEndian.AppendUint64(p, v)
		}
	}
	return appendFrame(buf, frameBatch, p)
}

func decodeBatch(payload []byte) (batchFrame, error) {
	c := cursor{data: payload}
	b := batchFrame{Dispatch: c.u64()}
	b.Backend = c.str()
	n := int(c.u32())
	if c.err == nil && n > maxBatchCells {
		c.fail("batch cell count %d over bound %d", n, maxBatchCells)
	}
	if c.err == nil && len(c.data)-c.off != n*(4+6*8) {
		c.fail("batch body %d bytes, want %d for %d cells", len(c.data)-c.off, n*(4+6*8), n)
	}
	if c.err == nil {
		b.Cells = make([]batchCell, n)
		for i := range b.Cells {
			cell := &b.Cells[i]
			cell.Index = c.u32()
			cell.Job.Config = mult.Config{Tau0: c.f64(), VDAC0: c.f64(), VDACFS: c.f64()}
			cell.Job.Cond = device.PVT{Corner: device.ProcessCorner(c.u64()), VDD: c.f64(), TempC: c.f64()}
		}
	}
	return b, c.finish()
}

// Result statuses.
const (
	resultOK  = 1
	resultErr = 2
)

// resultFrame streams one evaluated cell back. DurNS is the worker-side
// evaluation duration on the worker recorder's clock — telemetry only, it
// never feeds the metrics. Status selects the tail: metrics on resultOK,
// an error string on resultErr.
type resultFrame struct {
	Dispatch uint64
	Index    uint32
	DurNS    uint64
	Status   byte
	Met      engine.Metrics // Config/Cond omitted; reconstructed from the job
	Err      string
}

func appendResult(buf []byte, r resultFrame) []byte {
	p := make([]byte, 0, 8+4+8+1+7*8)
	p = binary.LittleEndian.AppendUint64(p, r.Dispatch)
	p = binary.LittleEndian.AppendUint32(p, r.Index)
	p = binary.LittleEndian.AppendUint64(p, r.DurNS)
	p = append(p, r.Status)
	switch r.Status {
	case resultOK:
		for _, v := range [...]uint64{
			math.Float64bits(r.Met.EpsMul),
			math.Float64bits(r.Met.EpsLarge),
			math.Float64bits(r.Met.EpsSmall),
			math.Float64bits(r.Met.EMul),
			math.Float64bits(r.Met.SigmaMaxLSB),
			math.Float64bits(r.Met.SigmaMaxVolt),
			math.Float64bits(r.Met.LSBVolt),
		} {
			p = binary.LittleEndian.AppendUint64(p, v)
		}
	case resultErr:
		msg := r.Err
		if len(msg) > maxStringLen {
			msg = msg[:maxStringLen]
		}
		p = appendU16Str(p, msg)
	}
	return appendFrame(buf, frameResult, p)
}

func decodeResult(payload []byte) (resultFrame, error) {
	c := cursor{data: payload}
	r := resultFrame{Dispatch: c.u64(), Index: c.u32(), DurNS: c.u64(), Status: c.u8()}
	switch r.Status {
	case resultOK:
		r.Met.EpsMul = c.f64()
		r.Met.EpsLarge = c.f64()
		r.Met.EpsSmall = c.f64()
		r.Met.EMul = c.f64()
		r.Met.SigmaMaxLSB = c.f64()
		r.Met.SigmaMaxVolt = c.f64()
		r.Met.LSBVolt = c.f64()
	case resultErr:
		r.Err = c.str()
	default:
		c.fail("unknown result status %d", r.Status)
	}
	return r, c.finish()
}
