// Package lockedcall is the expected-diagnostic corpus for the locked-call
// analyzer: evaluation work, network calls and blocking channel sends under
// a receiver's mutex, next to the allowed idioms (non-blocking select
// sends, work hoisted out of the critical section, goroutine bodies).
package lockedcall

import (
	"net/http"
	"sync"
)

type evaluator struct{}

func (evaluator) Evaluate(x int) int { return x * x }

type service struct {
	mu      sync.Mutex
	backend evaluator
	ch      chan int
	results []int
}

func (s *service) badEvalUnderLock(x int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results = append(s.results, s.backend.Evaluate(x)) // want "calling Evaluate"
}

func (s *service) goodEvalOutsideLock(x int) {
	v := s.backend.Evaluate(x)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results = append(s.results, v)
}

func (s *service) badBlockingSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want "blocking channel send"
}

func (s *service) goodNonBlockingSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
	default:
	}
}

func (s *service) badHTTPUnderLock(url string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := http.Get(url) // want "net/http"
	return err
}

func (s *service) goodSendAfterUnlock(v int) {
	s.mu.Lock()
	s.results = append(s.results, v)
	s.mu.Unlock()
	s.ch <- v
}

func (s *service) goodGoroutineNotUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- v
	}()
}
