package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	r := NewRNG(3)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(r.Uniform(2, 6))
	}
	if math.Abs(acc.Mean()-4) > 0.02 {
		t.Fatalf("uniform mean = %g, want ≈4", acc.Mean())
	}
	wantVar := 16.0 / 12.0
	if math.Abs(acc.Variance()-wantVar) > 0.03 {
		t.Fatalf("uniform variance = %g, want ≈%g", acc.Variance(), wantVar)
	}
}

func TestIntNUniformity(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 5)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.IntN(5)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/5) > 4*math.Sqrt(n/5) {
			t.Fatalf("bucket %d count %d deviates from %d", i, c, n/5)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).IntN(0)
}

func TestGaussianMoments(t *testing.T) {
	r := NewRNG(5)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(r.Gaussian(3, 2))
	}
	if math.Abs(acc.Mean()-3) > 0.03 {
		t.Fatalf("gaussian mean = %g, want ≈3", acc.Mean())
	}
	if math.Abs(acc.StdDev()-2) > 0.03 {
		t.Fatalf("gaussian std = %g, want ≈2", acc.StdDev())
	}
}

func TestGaussianTailFractions(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	within1, within2 := 0, 0
	for i := 0; i < n; i++ {
		v := r.Norm()
		if math.Abs(v) < 1 {
			within1++
		}
		if math.Abs(v) < 2 {
			within2++
		}
	}
	if f := float64(within1) / n; math.Abs(f-0.6827) > 0.01 {
		t.Fatalf("P(|z|<1) = %g, want ≈0.683", f)
	}
	if f := float64(within2) / n; math.Abs(f-0.9545) > 0.01 {
		t.Fatalf("P(|z|<2) = %g, want ≈0.954", f)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitDecorrelated(t *testing.T) {
	r := NewRNG(23)
	s := r.Split()
	matches := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("%d matches between parent and split stream", matches)
	}
}

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %g, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %g, want %g", got, 32.0/7.0)
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(RMS(nil)) || !math.IsNaN(StdDev([]float64{1})) {
		t.Fatal("expected NaN for degenerate inputs")
	}
}

func TestRMSKnown(t *testing.T) {
	if got := RMS([]float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("rms = %g", got)
	}
}

func TestMeanAbs(t *testing.T) {
	if got := MeanAbs([]float64{-2, 2}); got != 2 {
		t.Fatalf("meanAbs = %g, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 4, 1, 5})
	if min != -1 || max != 5 {
		t.Fatalf("minmax = (%g,%g), want (-1,5)", min, max)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %g, want 3", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %g, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %g, want 5", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q0.25 = %g, want 2", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("expected NaN for empty input")
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	r := NewRNG(31)
	xs := make([]float64, 1000)
	var acc Accumulator
	for i := range xs {
		xs[i] = r.Gaussian(1, 3)
		acc.Add(xs[i])
	}
	if !almost(acc.Mean(), Mean(xs), 1e-10) {
		t.Fatalf("acc mean %g vs batch %g", acc.Mean(), Mean(xs))
	}
	if !almost(acc.Variance(), Variance(xs), 1e-8) {
		t.Fatalf("acc var %g vs batch %g", acc.Variance(), Variance(xs))
	}
	if !almost(acc.RMS(), RMS(xs), 1e-10) {
		t.Fatalf("acc rms %g vs batch %g", acc.RMS(), RMS(xs))
	}
	min, max := MinMax(xs)
	if acc.Min() != min || acc.Max() != max {
		t.Fatal("accumulator min/max mismatch")
	}
}

func TestAccumulatorMergeProperty(t *testing.T) {
	f := func(seed uint64, split uint8) bool {
		r := NewRNG(seed)
		n := 200
		k := int(split)%(n-2) + 1
		var whole, left, right Accumulator
		for i := 0; i < n; i++ {
			v := r.Gaussian(0, 1)
			whole.Add(v)
			if i < k {
				left.Add(v)
			} else {
				right.Add(v)
			}
		}
		left.Merge(&right)
		return almost(left.Mean(), whole.Mean(), 1e-9) &&
			almost(left.Variance(), whole.Variance(), 1e-9) &&
			left.N() == whole.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 15} {
		h.Add(v)
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Fatalf("outliers = (%d,%d), want (1,2)", under, over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d, want 8", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("bin center = %g, want 1", got)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("linspace = %v", got)
		}
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }
