package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"optima/internal/device"
	"optima/internal/mult"
)

// ConditionSet is an ordered, duplicate-free set of operating conditions —
// the cross-condition axis of the evaluation plane. Its canonical string
// form ("TT@1V@27C,SS@0.9V@60C") names the set in artifacts and flags, and
// its order is the column order of every Matrix built from it, so results
// are deterministic for a given spec. The set never changes how results are
// keyed: each (config, condition) pair remains an independent cache/store
// key, which is why every cache tier works unchanged under EvaluateMatrix.
//
// The zero value is the empty set; most callers should treat it as "nominal
// only" (NominalConditions).
type ConditionSet struct {
	conds []device.PVT
}

// NewConditionSet builds a set from the given conditions, preserving order.
// Every condition is validated (known corner, positive finite supply,
// physical finite temperature) and duplicates are rejected — a duplicate in
// a robust ranking would silently double-weight one excursion.
func NewConditionSet(conds ...device.PVT) (ConditionSet, error) {
	if len(conds) == 0 {
		return ConditionSet{}, fmt.Errorf("engine: empty condition set")
	}
	seen := make(map[device.PVT]bool, len(conds))
	out := make([]device.PVT, 0, len(conds))
	for _, c := range conds {
		if err := ValidateCondition(c); err != nil {
			return ConditionSet{}, err
		}
		if seen[c] {
			return ConditionSet{}, fmt.Errorf("engine: duplicate condition %s in set", FormatCondition(c))
		}
		seen[c] = true
		out = append(out, c)
	}
	return ConditionSet{conds: out}, nil
}

// NominalConditions is the single-condition set at device.Nominal() — the
// set every pre-condition-plane call site implicitly evaluated at.
func NominalConditions() ConditionSet {
	return ConditionSet{conds: []device.PVT{device.Nominal()}}
}

// ValidateCondition rejects conditions that cannot be evaluated or
// round-tripped through the canonical spec form.
func ValidateCondition(c device.PVT) error {
	if _, err := device.ParseCorner(c.Corner.String()); err != nil {
		return fmt.Errorf("engine: condition has unmodeled corner %v", c.Corner)
	}
	if math.IsNaN(c.VDD) || math.IsInf(c.VDD, 0) || c.VDD <= 0 {
		return fmt.Errorf("engine: condition %s: supply %v V must be a positive finite voltage", c.Corner, c.VDD)
	}
	if math.IsNaN(c.TempC) || math.IsInf(c.TempC, 0) || c.TempC <= -device.ZeroCelsius {
		return fmt.Errorf("engine: condition %s: temperature %v C must be finite and above absolute zero", c.Corner, c.TempC)
	}
	return nil
}

// FormatCondition renders one condition in the canonical spec form
// CORNER@<vdd>V@<temp>C (e.g. "SS@0.9V@60C"). ParseCondition inverts it
// exactly: %g formatting keeps the float64 values round-trippable.
func FormatCondition(c device.PVT) string {
	return fmt.Sprintf("%s@%gV@%gC", c.Corner, c.VDD, c.TempC)
}

// ParseCondition parses one canonical condition spec. The supply and
// temperature units are mandatory suffixes — a bare "SS@0.9@60" is
// ambiguous about which field is which and is rejected.
func ParseCondition(spec string) (device.PVT, error) {
	parts := strings.Split(strings.TrimSpace(spec), "@")
	if len(parts) != 3 {
		return device.PVT{}, fmt.Errorf("engine: condition %q: want CORNER@<vdd>V@<temp>C (e.g. TT@1.0V@27C)", spec)
	}
	corner, err := device.ParseCorner(parts[0])
	if err != nil {
		return device.PVT{}, fmt.Errorf("engine: condition %q: %w", spec, err)
	}
	vdd, err := parseUnit(parts[1], "V")
	if err != nil {
		return device.PVT{}, fmt.Errorf("engine: condition %q: supply %w", spec, err)
	}
	temp, err := parseUnit(parts[2], "C")
	if err != nil {
		return device.PVT{}, fmt.Errorf("engine: condition %q: temperature %w", spec, err)
	}
	cond := device.PVT{Corner: corner, VDD: vdd, TempC: temp}
	if err := ValidateCondition(cond); err != nil {
		return device.PVT{}, err
	}
	return cond, nil
}

// parseUnit parses a float with a mandatory unit suffix ("1.0V", "-40C").
func parseUnit(s, unit string) (float64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasSuffix(s, unit) {
		return 0, fmt.Errorf("%q: missing %s unit suffix", s, unit)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, unit), 64)
	if err != nil {
		return 0, fmt.Errorf("%q: not a number", s)
	}
	return v, nil
}

// ParseConditionSet parses a comma-separated condition-set spec, e.g.
// "TT@1.0V@27C,SS@0.90V@60C,FF@1.10V@0C" — the one place the -conditions
// flag of every CLI is parsed and validated. Order is preserved;
// duplicates (after parsing, so "1.0V" and "1V" collide) are rejected.
func ParseConditionSet(spec string) (ConditionSet, error) {
	fields := strings.Split(spec, ",")
	conds := make([]device.PVT, 0, len(fields))
	for _, f := range fields {
		if strings.TrimSpace(f) == "" {
			return ConditionSet{}, fmt.Errorf("engine: condition set %q has an empty entry", spec)
		}
		c, err := ParseCondition(f)
		if err != nil {
			return ConditionSet{}, err
		}
		conds = append(conds, c)
	}
	return NewConditionSet(conds...)
}

// Len returns the number of conditions in the set.
func (s ConditionSet) Len() int { return len(s.conds) }

// At returns the j-th condition in set order.
func (s ConditionSet) At(j int) device.PVT { return s.conds[j] }

// Conditions returns a copy of the conditions in set order.
func (s ConditionSet) Conditions() []device.PVT {
	return append([]device.PVT(nil), s.conds...)
}

// Index returns the position of cond in the set, or -1.
func (s ConditionSet) Index(cond device.PVT) int {
	for j, c := range s.conds {
		if c == cond {
			return j
		}
	}
	return -1
}

// String returns the canonical spec form of the set —
// ParseConditionSet(s.String()) reproduces s exactly.
func (s ConditionSet) String() string {
	names := make([]string, len(s.conds))
	for j, c := range s.conds {
		names[j] = FormatCondition(c)
	}
	return strings.Join(names, ",")
}

// Matrix is the result of a cross-condition batch: one Metrics per
// (config, condition) pair, indexed [config][condition] with configs in
// submission order and conditions in set order. Like every engine result it
// is deterministic — independent of the worker count and of which cache
// tier served each cell.
type Matrix struct {
	Configs []mult.Config
	Conds   ConditionSet
	mets    []Metrics // row-major: config i, condition j at i*Conds.Len()+j
}

// At returns the metrics of config i at condition j.
func (m *Matrix) At(i, j int) Metrics { return m.mets[i*m.Conds.Len()+j] }

// Row returns config i's metrics across the condition set, in set order.
// The slice aliases the matrix; callers must not modify it.
func (m *Matrix) Row(i int) []Metrics {
	k := m.Conds.Len()
	return m.mets[i*k : (i+1)*k : (i+1)*k]
}

// Col returns condition j's metrics across the configs, in config order.
func (m *Matrix) Col(j int) []Metrics {
	out := make([]Metrics, len(m.Configs))
	for i := range out {
		out[i] = m.At(i, j)
	}
	return out
}

// MatrixJobs expands configs × conditions into the engine's job order:
// config-major, conditions innermost — the flat layout Matrix indexes.
func MatrixJobs(cfgs []mult.Config, conds ConditionSet) []Job {
	jobs := make([]Job, 0, len(cfgs)*conds.Len())
	for _, cfg := range cfgs {
		for _, cond := range conds.conds {
			jobs = append(jobs, Job{Config: cfg, Cond: cond})
		}
	}
	return jobs
}

// EvaluateMatrix scores every config at every condition of the set through
// the batched submission path: the whole plane is claimed as one batch, so
// the worker pool, in-batch dedupe, store lookups and grouped persists all
// amortize across configs AND conditions — a Fig. 8 excursion analysis hits
// the same scheduler as a 48-corner sweep instead of looping conditions
// serially. Each (config, condition) cell keeps its independent cache key,
// so partial overlap with earlier work (any tier) is served, not recomputed.
func (e *Engine) EvaluateMatrix(cfgs []mult.Config, conds ConditionSet) (*Matrix, error) {
	return e.EvaluateMatrixOpts(cfgs, conds, BatchOptions{})
}

// EvaluateMatrixOpts is EvaluateMatrix with a cancellation context and a
// per-cell progress callback (BatchOptions): done/total count resolved
// (config, condition) cells of the plane.
func (e *Engine) EvaluateMatrixOpts(cfgs []mult.Config, conds ConditionSet, opts BatchOptions) (*Matrix, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("engine: matrix with no configurations")
	}
	if conds.Len() == 0 {
		return nil, fmt.Errorf("engine: matrix with an empty condition set")
	}
	mets, err := e.EvaluateBatchOpts(MatrixJobs(cfgs, conds), opts)
	if err != nil {
		return nil, err
	}
	return &Matrix{Configs: append([]mult.Config(nil), cfgs...), Conds: conds, mets: mets}, nil
}
