// Command optima is the design-space exploration tool: it calibrates the
// behavioral models against the golden simulator and regenerates the
// paper's circuit-level figures and tables.
//
// Usage:
//
//	optima calibrate [-quick] [-model out.json]
//	optima figures   [-out dir] [-model in.json] [-mc N] [-workers N] [-backend B] [-cache-dir dir]
//	optima dse       [-out dir] [-model in.json] [-workers N] [-backend B] [-conditions set] [-cache-dir dir]
//	optima search    [-out dir] [-model in.json] [-workers N] [-conditions set] [-cache-dir dir]
//	                 [-tau0 spec] [-vdac0 spec] [-vdacfs spec] [-budget N]
//	                 [-rungs R] [-eta F] [-finalists N] [-refine] [-promote] [-seed S]
//	optima pvt       [-out dir] [-tau0 ns] [-vdac0 V] [-vdacfs V] [-corners] [-workers N] [-backend B] [-cache-dir dir]
//	optima speedup   [-model in.json] [-mc N]
//	optima all       [-out dir] [-model in.json] [-mc N] [-workers N] [-backend B] [-conditions set] [-cache-dir dir]
//
// search explores design spaces far larger than the paper's 48 corners with
// the adaptive multi-fidelity driver (internal/search): every rung screens
// candidates on the behavioral backend, successive halving keeps the
// (ϵ_mul, E_mul) Pareto-rank + crowding survivors, and -promote (default
// on) re-evaluates only the finalists on the golden transient backend. An
// axis spec is either "min:max:steps" / "min:max:steps:log" (τ0 in ns,
// voltages in V) or an explicit comma list like "0.16,0.20,0.24". With
// -cache-dir, refinement sweeps across sessions re-evaluate nothing.
//
// -conditions moves dse and search onto the cross-condition evaluation
// plane. The spec is a comma-separated list of CORNER@<vdd>V@<temp>C
// entries, e.g. TT@1.0V@27C,SS@0.90V@60C,FF@1.10V@0C. With two or more
// conditions, dse appends a robust ranking (worst-case ϵ_mul/E_mul per
// corner with the arg-worst condition, plus a nominal-vs-robust winner
// comparison), and search runs in robust mode: every rung screens its
// candidates at every condition as one engine matrix batch, survivors are
// kept by Pareto rank on the worst case over the set, and finalists are
// promoted to golden at every condition. Results stay byte-identical at
// any -workers, and each (config, condition) cell keeps its own cache key,
// so a second run against the same -cache-dir evaluates nothing.
//
// -workers bounds the evaluation engine's TOTAL worker budget (0 = all
// CPUs): the engine splits it between job-level fan-out and intra-job
// parallelism (the golden backend fans each corner's ~500 transients out
// across its share), so job × intra-job workers never exceed the budget.
// -backend selects behavioral (calibrated models, fast) or golden
// (transistor-level transients — the reference, orders of magnitude
// slower). Sweep output is identical for any worker count.
//
// -cache-dir roots the persistent content-addressed result store
// (internal/store): evaluation results are keyed on (backend, config,
// condition) plus the calibration fingerprint and shared across runs, so
// `optima all -cache-dir out/cache` after `optima dse -cache-dir out/cache`
// re-evaluates nothing. Use the same -model (or recalibrate identically)
// across runs — a different calibration changes the fingerprint and starts
// a fresh result set. -cache-max-bytes bounds the store's size: segments
// over the budget are evicted least-recently-written first at open.
// -cache-max-age bounds its staleness the same way: segments older than
// the bound (e.g. 720h) are evicted at open.
//
// -cpuprofile and -memprofile (every sweep-running subcommand) write pprof
// profiles of the run: CPU sampling covers the experiment work, the heap
// snapshot is taken as the run finishes. Analyze with `go tool pprof`.
//
// Every artifact is written as .txt/.csv (tables) and .svg (charts) into
// the output directory (default ./out).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"optima/internal/core"
	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/exp"
	"optima/internal/mult"
	"optima/internal/obs"
	"optima/internal/refdata"
	"optima/internal/remote"
	"optima/internal/report"
	"optima/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "calibrate":
		err = runCalibrate(args)
	case "figures":
		err = runFigures(args)
	case "dse":
		err = runDSE(args)
	case "search":
		err = runSearch(args)
	case "pvt":
		err = runPVT(args)
	case "speedup":
		err = runSpeedup(args)
	case "all":
		err = runAll(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "optima:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: optima <command> [flags]

commands:
  calibrate   fit the behavioral models against golden simulation
  figures     regenerate Fig. 1, 4, 5 and 6 artifacts
  dse         run the 48-corner exploration (Fig. 7, Table I, Fig. 8)
  search      adaptive multi-fidelity exploration of large design spaces
              (successive halving; behavioral screen, golden finalists)
  pvt         PVT robustness of one configuration (incl. golden corner check)
  speedup     measure the behavioral-vs-golden speed-up headlines
  all         everything above into one output directory`)
}

// engineOpts carries the evaluation-engine flags shared by the
// sweep-running subcommands. The zero value means defaults everywhere
// (behavioral backend, all CPUs, no persistent store, nominal condition).
type engineOpts struct {
	workers    *int
	backend    *string
	cacheDir   *string
	cacheMax   *int64
	cacheAge   *time.Duration
	conditions *string
	cpuProfile *string
	memProfile *string
	traceOut   *string
	logLevel   *string
	slowEval   *time.Duration
	remoteAddr *string
}

// engineFlags registers the shared evaluation-engine flags. -conditions is
// NOT registered here: only the subcommands that consume the condition set
// (dse, all, search) add it via conditionsFlag, so the flag can never be a
// silent no-op on figures/pvt.
func engineFlags(fs *flag.FlagSet) engineOpts {
	eo := engineOpts{
		workers: fs.Int("workers", 0, "total evaluation worker budget, split between job-level and intra-job parallelism (0 = all CPUs)"),
		backend: fs.String("backend", engine.BackendBehavioral,
			"evaluation backend: behavioral (fast models) or golden (transient simulation; orders of magnitude slower)"),
	}
	eo.cacheFlags(fs)
	eo.profileFlags(fs)
	eo.remoteFlag(fs)
	return eo
}

// remoteFlag registers the distributed-evaluation coordinator flag (for
// subcommands that register their engine flags piecemeal, like search).
func (eo *engineOpts) remoteFlag(fs *flag.FlagSet) {
	eo.remoteAddr = fs.String("remote", "",
		"listen on this address (e.g. :9777) for optima-worker processes and distribute evaluations across them; with no connected workers evaluation stays local")
}

// cacheFlags registers only the persistent-store flags (for subcommands
// that fix the backend themselves, like search).
func (eo *engineOpts) cacheFlags(fs *flag.FlagSet) {
	eo.cacheDir = fs.String("cache-dir", "",
		"persist evaluation results in this directory (shared across runs; keyed by the calibration fingerprint)")
	eo.cacheMax = fs.Int64("cache-max-bytes", 0,
		"evict least-recently-written cache segments beyond this size when the store opens (0 = unlimited)")
	eo.cacheAge = fs.Duration("cache-max-age", 0,
		"evict cache segments older than this when the store opens (e.g. 720h; 0 = unlimited)")
}

// profileFlags registers the pprof and observability flags (for
// subcommands that register their engine flags piecemeal, like search and
// speedup).
func (eo *engineOpts) profileFlags(fs *flag.FlagSet) {
	eo.cpuProfile = fs.String("cpuprofile", "",
		"write a pprof CPU profile of the run to this file (analyze with `go tool pprof`)")
	eo.memProfile = fs.String("memprofile", "",
		"write a pprof heap profile to this file when the run finishes")
	eo.traceOut = fs.String("trace-out", "",
		"write a Chrome trace-format JSON timeline of the run to this file (open in Perfetto or chrome://tracing)")
	eo.logLevel = fs.String("log-level", "info",
		"structured log level: debug, info, warn or error")
	eo.slowEval = fs.Duration("slow-eval", 0,
		"log a warning for any single backend evaluation slower than this (e.g. 2s; 0 = off)")
}

// setupLogging installs the process-wide structured logger at the
// -log-level threshold.
func setupLogging(level string) error {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	return nil
}

// conditionsFlag registers the operating-condition-set flag.
func (eo *engineOpts) conditionsFlag(fs *flag.FlagSet) {
	eo.conditions = fs.String("conditions", "",
		"operating condition set for cross-condition (robust) analyses: comma-separated CORNER@<vdd>V@<temp>C entries, e.g. TT@1.0V@27C,SS@0.90V@60C,FF@1.10V@0C (empty = nominal only)")
}

func (eo engineOpts) backendName() string {
	if eo.backend == nil {
		return engine.BackendBehavioral
	}
	return *eo.backend
}

// conditionSet parses the -conditions spec; empty means the empty set
// (nominal only, via exp.Context.ConditionSet).
func (eo engineOpts) conditionSet() (engine.ConditionSet, error) {
	if eo.conditions == nil || *eo.conditions == "" {
		return engine.ConditionSet{}, nil
	}
	return engine.ParseConditionSet(*eo.conditions)
}

// makeContext builds an experiment context, loading a model when given.
// The flag values configure the context's evaluation engine, persistent
// store and condition set; flag errors surface before the expensive
// calibration. Callers should defer ctx.Close() so the persistent store
// flushes.
func makeContext(modelPath string, quick bool, eo engineOpts) (*exp.Context, error) {
	if eo.logLevel != nil {
		if err := setupLogging(*eo.logLevel); err != nil {
			return nil, err
		}
	}
	if err := engine.ValidateBackendName(eo.backendName()); err != nil {
		return nil, err
	}
	conds, err := eo.conditionSet()
	if err != nil {
		return nil, err
	}
	calib := core.DefaultCalibration()
	if quick {
		calib = core.QuickCalibration()
	}
	var ctx *exp.Context
	if modelPath != "" {
		if m, err := core.LoadModel(modelPath); err == nil {
			fmt.Printf("loaded model from %s\n", modelPath)
			ctx = exp.NewContextWithModel(m, calib.Tech)
		} else {
			fmt.Printf("model %s not found; calibrating\n", modelPath)
		}
	}
	if ctx == nil {
		start := time.Now()
		var err error
		ctx, err = exp.NewContext(calib)
		if err != nil {
			return nil, err
		}
		fmt.Printf("calibrated in %v: %v\n", time.Since(start), ctx.Model.Report)
	}
	ctx.Backend = eo.backendName()
	ctx.Conditions = conds
	if eo.workers != nil {
		ctx.Workers = *eo.workers
	}
	if eo.cacheDir != nil {
		ctx.CacheDir = *eo.cacheDir
	}
	if eo.cacheMax != nil {
		ctx.CacheMaxBytes = *eo.cacheMax
	}
	if eo.cacheAge != nil {
		ctx.CacheMaxAge = *eo.cacheAge
	}
	if eo.cpuProfile != nil {
		ctx.CPUProfile = *eo.cpuProfile
	}
	if eo.memProfile != nil {
		ctx.MemProfile = *eo.memProfile
	}
	if eo.traceOut != nil {
		ctx.TraceOut = *eo.traceOut
	}
	// Every run records telemetry: the engine and store register their
	// counters and spans against the recorder, printEngineStats renders
	// the end-of-run summary, and -trace-out exports the span timeline.
	// Timing never feeds results, so artifacts stay byte-identical.
	var slowEval time.Duration
	if eo.slowEval != nil {
		slowEval = *eo.slowEval
	}
	ctx.Recorder = obs.NewRecorder(obs.RecorderOptions{
		SlowEval: slowEval,
		Logger:   slog.Default(),
	})
	if eo.remoteAddr != nil && *eo.remoteAddr != "" {
		fleet, err := remote.Listen(*eo.remoteAddr, remote.Options{
			Fingerprint: ctx.Fingerprint(),
			Recorder:    ctx.Recorder,
			Logger:      slog.Default(),
		})
		if err != nil {
			return nil, fmt.Errorf("-remote: %w", err)
		}
		ctx.Fleet = fleet
		fmt.Printf("remote fleet listening on %s (connect workers: optima-worker -connect <host>%s)\n",
			fleet.Addr(), *eo.remoteAddr)
	}
	// The CPU profile runs until ctx.Close (which also snapshots the heap),
	// so it covers exactly the experiment work between here and the caller's
	// deferred Close.
	if err := ctx.StartProfiling(); err != nil {
		return nil, err
	}
	return ctx, nil
}

func runCalibrate(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	quick := fs.Bool("quick", false, "use the reduced calibration grids")
	out := fs.String("model", "out/model.json", "output model path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	calib := core.DefaultCalibration()
	if *quick {
		calib = core.QuickCalibration()
	}
	start := time.Now()
	model, err := core.Calibrate(calib)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated in %v\n", time.Since(start))
	fmt.Println("fit report:", model.Report)
	if err := os.MkdirAll(dirOf(*out), 0o755); err != nil {
		return err
	}
	if err := model.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

func runFigures(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	outDir := fs.String("out", "out", "artifact directory")
	modelPath := fs.String("model", "", "load a calibrated model instead of recalibrating")
	mc := fs.Int("mc", 1000, "Fig. 5d Monte-Carlo samples")
	eo := engineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, err := makeContext(*modelPath, false, eo)
	if err != nil {
		return err
	}
	defer ctx.Close()
	out, err := report.NewOutput(*outDir)
	if err != nil {
		return err
	}
	return writeFigures(ctx, out, *mc)
}

func writeFigures(ctx *exp.Context, out *report.Output, mc int) error {
	t1, c1 := exp.Fig1()
	fmt.Print(t1.String())
	if err := out.WriteTable("fig1_design_space", t1); err != nil {
		return err
	}
	if err := out.WriteChart("fig1_design_space", c1); err != nil {
		return err
	}

	f4, err := ctx.Fig4()
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 4: '0'-code discharge after 2 ns = %.2f mV (Section III-1 asymmetry)\n", f4.SubVtDischarge*1e3)
	if err := out.WriteChart("fig4a_discharge_time", f4.TimeChart); err != nil {
		return err
	}
	if err := out.WriteChart("fig4b_discharge_vwl", f4.VWLChart); err != nil {
		return err
	}

	f5, err := ctx.Fig5(mc)
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 5d: mismatch ±3σ band at 2 ns = ±%.1f mV (paper: ≈ −10…+20 mV)\n", f5.MismatchSpreadMV)
	for name, chart := range map[string]*report.Chart{
		"fig5a_supply":   f5.SupplyChart,
		"fig5b_temp":     f5.TempChart,
		"fig5c_corners":  f5.CornerChart,
		"fig5d_mismatch": f5.MismatchChart,
	} {
		if err := out.WriteChart(name, chart); err != nil {
			return err
		}
	}

	f6, err := ctx.Fig6()
	if err != nil {
		return err
	}
	fmt.Print(f6.RMSTable.String())
	if err := out.WriteTable("fig6_rms", f6.RMSTable); err != nil {
		return err
	}
	for name, chart := range map[string]*report.Chart{
		"fig6a_supply_model": f6.SupplyChart,
		"fig6b_temp_model":   f6.TempChart,
		"fig6c_sigma_model":  f6.MismatchChart,
		"fig6d_energy_model": f6.EnergyChart,
	} {
		if err := out.WriteChart(name, chart); err != nil {
			return err
		}
	}
	return nil
}

func runDSE(args []string) error {
	fs := flag.NewFlagSet("dse", flag.ExitOnError)
	outDir := fs.String("out", "out", "artifact directory")
	modelPath := fs.String("model", "", "load a calibrated model instead of recalibrating")
	eo := engineFlags(fs)
	eo.conditionsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, err := makeContext(*modelPath, false, eo)
	if err != nil {
		return err
	}
	defer ctx.Close()
	out, err := report.NewOutput(*outDir)
	if err != nil {
		return err
	}
	if err := writeDSE(ctx, out); err != nil {
		return err
	}
	printEngineStats(ctx)
	return nil
}

func writeDSE(ctx *exp.Context, out *report.Output) error {
	start := time.Now()
	f7, err := ctx.Fig7()
	if err != nil {
		return err
	}
	fmt.Printf("48-corner sweep in %v\n", time.Since(start))
	if err := out.WriteTable("fig7_corners", f7.CornersTable); err != nil {
		return err
	}
	for name, chart := range map[string]*report.Chart{
		"fig7_left_error":   f7.LeftError,
		"fig7_left_energy":  f7.LeftEnergy,
		"fig7_right_error":  f7.RightError,
		"fig7_right_energy": f7.RightEnergy,
	} {
		if err := out.WriteChart(name, chart); err != nil {
			return err
		}
	}

	t1, err := ctx.Table1()
	if err != nil {
		return err
	}
	fmt.Print(t1.Table.String())
	fmt.Printf("energy per op incl. write at fom corner: %.2f pJ (paper: %.2f pJ)\n",
		t1.EnergyPerOpPJ, refdata.EnergyPerOpPJ)
	fmt.Printf("worst-case analog σ among corners: %.2f mV (paper: %.2f mV)\n",
		t1.WorstSigmaMV, refdata.WorstCaseSigmaMV)
	if err := out.WriteTable("table1_corners", t1.Table); err != nil {
		return err
	}

	f8, err := ctx.Fig8()
	if err != nil {
		return err
	}
	for name, chart := range map[string]*report.Chart{
		"fig8_error_by_result": f8.ErrorByResult,
		"fig8_sigma_by_result": f8.SigmaByResult,
		"fig8_error_vs_vdd":    f8.ErrorVsVDD,
		"fig8_error_vs_temp":   f8.ErrorVsTemp,
	} {
		if err := out.WriteChart(name, chart); err != nil {
			return err
		}
	}
	return writeRobustDSE(ctx, out)
}

// writeRobustDSE reruns the grid across the session's condition set and
// ranks corners by worst-case excursion — the cross-condition extension of
// Table I (Fig. 8's point made quantitative: the nominal winner is not
// always the robust winner). Skipped when no -conditions set was given; a
// single-condition set is announced as skipped rather than silently
// ignored (a worst case needs at least two conditions to differ from the
// nominal ranking).
func writeRobustDSE(ctx *exp.Context, out *report.Output) error {
	conds := ctx.Conditions
	if conds.Len() == 0 {
		return nil
	}
	if conds.Len() == 1 {
		fmt.Printf("robust ranking skipped: -conditions names a single condition (%s); give two or more to rank by worst-case excursion\n", conds)
		return nil
	}
	start := time.Now()
	rms, err := dse.RobustSweep(ctx.Engine(), dse.DefaultGrid(), conds)
	if err != nil {
		return err
	}
	fmt.Printf("robust sweep over %d conditions (%s) in %v\n", conds.Len(), conds, time.Since(start))

	tbl := report.NewTable("Robust DSE — worst case over "+conds.String(),
		"τ0 [ns]", "V_DAC,0 [V]", "V_DAC,FS [V]",
		"worst ϵ_mul [LSB]", "worst cond", "worst E_mul [fJ]",
		"mean ϵ [LSB]", "spread ϵ [LSB]", "worst FOM")
	for _, r := range rms {
		tbl.AddRow(r.Config.Tau0*1e9, r.Config.VDAC0, r.Config.VDACFS,
			r.WorstEps, engine.FormatCondition(r.WorstEpsCond), r.WorstEMul*1e15,
			r.MeanEps, r.SpreadEps, r.WorstFOM())
	}
	if err := out.WriteTable("dse_robust", tbl); err != nil {
		return err
	}

	// Nominal-vs-robust winner comparison: the corner Eq. 9 picks at the
	// nominal condition versus the one it picks on worst-case metrics.
	sel, err := ctx.Selection()
	if err != nil {
		return err
	}
	robustBest := rms[0]
	for _, r := range rms[1:] {
		if r.WorstFOM() > robustBest.WorstFOM() {
			robustBest = r
		}
	}
	fmt.Printf("nominal fom winner:  %v (FOM %.3f)\n", sel.FOM.Config, sel.FOM.FOM())
	fmt.Printf("robust fom winner:   %v (worst-case FOM %.3f, worst ϵ at %s)\n",
		robustBest.Config, robustBest.WorstFOM(), engine.FormatCondition(robustBest.WorstEpsCond))
	if robustBest.Config == sel.FOM.Config {
		fmt.Println("the nominal winner is also the robust winner under this condition set")
	} else {
		fmt.Println("the nominal winner is NOT the robust winner — rank by worst-case PVT excursion before committing a corner")
	}
	return nil
}

func runPVT(args []string) error {
	fs := flag.NewFlagSet("pvt", flag.ExitOnError)
	outDir := fs.String("out", "out", "artifact directory")
	modelPath := fs.String("model", "", "load a calibrated model instead of recalibrating")
	tau0 := fs.Float64("tau0", 0.16, "discharge time of the LSB bit line [ns]")
	vdac0 := fs.Float64("vdac0", 0.3, "DAC output for code 0 [V]")
	vdacfs := fs.Float64("vdacfs", 1.0, "DAC full-scale output [V]")
	corners := fs.Bool("corners", true, "run the golden process-corner check (slow)")
	eo := engineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, err := makeContext(*modelPath, false, eo)
	if err != nil {
		return err
	}
	defer ctx.Close()
	out, err := report.NewOutput(*outDir)
	if err != nil {
		return err
	}
	cfg := mult.Config{Tau0: *tau0 * 1e-9, VDAC0: *vdac0, VDACFS: *vdacfs}
	fmt.Printf("configuration: %v\n", cfg)

	vddSweep, err := dse.SweepVDD(ctx.Engine(), cfg, stats.Linspace(0.90, 1.10, 9))
	if err != nil {
		return err
	}
	tempSweep, err := dse.SweepTemp(ctx.Engine(), cfg, stats.Linspace(0, 60, 7))
	if err != nil {
		return err
	}
	tbl := report.NewTable("PVT robustness of "+cfg.String(), "variable", "value", "eps_mul [LSB]", "E_mul [fJ]")
	for i := range vddSweep.X {
		tbl.AddRow("VDD [V]", vddSweep.X[i], vddSweep.AvgError[i], vddSweep.AvgEnergy[i]*1e15)
	}
	for i := range tempSweep.X {
		tbl.AddRow("T [degC]", tempSweep.X[i], tempSweep.AvgError[i], tempSweep.AvgEnergy[i]*1e15)
	}
	if *corners {
		check, err := dse.GoldenCornerCheck(ctx.Tech, cfg, ctx.Spice)
		if err != nil {
			return err
		}
		for i, corner := range check.Corners {
			tbl.AddRow("corner (golden)", corner.String(), check.AvgError[i], "-")
		}
		fmt.Printf("golden corner check: %d transients\n", check.Transients)
	}
	fmt.Print(tbl.String())
	return out.WriteTable("pvt_robustness", tbl)
}

func runSpeedup(args []string) error {
	fs := flag.NewFlagSet("speedup", flag.ExitOnError)
	modelPath := fs.String("model", "", "load a calibrated model instead of recalibrating")
	mc := fs.Int("mc", 200, "Monte-Carlo samples for the MC speed-up")
	outDir := fs.String("out", "out", "artifact directory")
	var eo engineOpts
	eo.profileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, err := makeContext(*modelPath, false, eo)
	if err != nil {
		return err
	}
	defer ctx.Close()
	out, err := report.NewOutput(*outDir)
	if err != nil {
		return err
	}
	return writeSpeedup(ctx, out, *mc)
}

func writeSpeedup(ctx *exp.Context, out *report.Output, mc int) error {
	cfg := mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}
	is, err := ctx.SpeedupInputSpace(cfg)
	if err != nil {
		return err
	}
	mcRes, err := ctx.SpeedupMonteCarlo(cfg, mc)
	if err != nil {
		return err
	}
	tbl := exp.SpeedupTable(is, mcRes)
	fmt.Print(tbl.String())
	return out.WriteTable("speedup", tbl)
}

func runAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	outDir := fs.String("out", "out", "artifact directory")
	mc := fs.Int("mc", 1000, "Fig. 5d Monte-Carlo samples")
	modelPath := fs.String("model", "", "load a calibrated model instead of recalibrating")
	eo := engineFlags(fs)
	eo.conditionsFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, err := makeContext(*modelPath, false, eo)
	if err != nil {
		return err
	}
	defer ctx.Close()
	out, err := report.NewOutput(*outDir)
	if err != nil {
		return err
	}
	if err := ctx.Model.Save(*outDir + "/model.json"); err != nil {
		return err
	}
	fmt.Printf("wrote %s/model.json\n", *outDir)
	if err := writeFigures(ctx, out, *mc); err != nil {
		return err
	}
	if err := writeDSE(ctx, out); err != nil {
		return err
	}
	if err := writeSpeedup(ctx, out, 200); err != nil {
		return err
	}
	printEngineStats(ctx)
	return nil
}

// printEngineStats logs the evaluation-cache accounting, including the
// persistent store's contents when one is attached, and the run's
// telemetry summary (every non-zero metric the recorder accumulated).
func printEngineStats(ctx *exp.Context) {
	fmt.Printf("engine [%s]: %v\n", ctx.Engine().Backend().Name(), ctx.Engine().Stats())
	if st := ctx.Store(); st != nil {
		fmt.Printf("result store [%s]: %v\n", st.Dir(), st.Stats())
	}
	if ctx.Fleet != nil {
		fmt.Printf("remote fleet: %v\n", ctx.Fleet.Stats())
	}
	printTelemetry(ctx.Recorder)
}

// printTelemetry renders the recorder's non-zero metrics as the
// end-of-run summary table.
func printTelemetry(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	samples := rec.Metrics().Samples()
	if len(samples) == 0 {
		return
	}
	fmt.Println("telemetry:")
	for _, s := range samples {
		fmt.Printf("  %-55s %g\n", s.Name, s.Value)
	}
	if d := rec.Dropped(); d > 0 {
		fmt.Printf("  (span ring overflowed: %d oldest spans overwritten)\n", d)
	}
}
