package engine

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"optima/internal/device"
	"optima/internal/mult"
)

func TestParseConditionValid(t *testing.T) {
	cases := []struct {
		spec string
		want device.PVT
	}{
		{"TT@1.0V@27C", device.PVT{Corner: device.CornerTT, VDD: 1.0, TempC: 27}},
		{"SS@0.90V@60C", device.PVT{Corner: device.CornerSS, VDD: 0.90, TempC: 60}},
		{"FF@1.10V@0C", device.PVT{Corner: device.CornerFF, VDD: 1.10, TempC: 0}},
		{"FF@1.1V@-40C", device.PVT{Corner: device.CornerFF, VDD: 1.1, TempC: -40}},
		{"tt@1V@27C", device.PVT{Corner: device.CornerTT, VDD: 1, TempC: 27}}, // corner case-insensitive
		{" TT@1V@27C ", device.PVT{Corner: device.CornerTT, VDD: 1, TempC: 27}},
	}
	for _, tc := range cases {
		got, err := ParseCondition(tc.spec)
		if err != nil {
			t.Errorf("ParseCondition(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseCondition(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestParseConditionInvalid(t *testing.T) {
	cases := []struct {
		name, spec string
	}{
		{"unknown-corner", "XX@1.0V@27C"},
		{"missing-volt-unit", "TT@1.0@27C"},
		{"missing-temp-unit", "TT@1.0V@27"},
		{"swapped-units", "TT@27C@1.0V"},
		{"two-fields", "TT@1.0V"},
		{"four-fields", "TT@1.0V@27C@extra"},
		{"empty", ""},
		{"non-numeric-vdd", "TT@fastV@27C"},
		{"zero-vdd", "TT@0V@27C"},
		{"negative-vdd", "TT@-1V@27C"},
		{"below-absolute-zero", "TT@1V@-300C"},
	}
	for _, tc := range cases {
		if _, err := ParseCondition(tc.spec); err == nil {
			t.Errorf("%s: ParseCondition(%q) accepted, want error", tc.name, tc.spec)
		}
	}
}

func TestParseConditionSet(t *testing.T) {
	set, err := ParseConditionSet("TT@1.0V@27C,SS@0.90V@60C,FF@1.10V@0C")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("set has %d conditions, want 3", set.Len())
	}
	// Order is the spec order.
	want := []device.PVT{
		{Corner: device.CornerTT, VDD: 1.0, TempC: 27},
		{Corner: device.CornerSS, VDD: 0.90, TempC: 60},
		{Corner: device.CornerFF, VDD: 1.10, TempC: 0},
	}
	if !reflect.DeepEqual(set.Conditions(), want) {
		t.Fatalf("conditions %v, want %v", set.Conditions(), want)
	}
	for j, c := range want {
		if set.At(j) != c {
			t.Fatalf("At(%d) = %v, want %v", j, set.At(j), c)
		}
		if set.Index(c) != j {
			t.Fatalf("Index(%v) = %d, want %d", c, set.Index(c), j)
		}
	}
	if set.Index(device.PVT{Corner: device.CornerTT, VDD: 0.5, TempC: 27}) != -1 {
		t.Fatal("Index found a condition not in the set")
	}

	// Canonical round trip: String re-parses to the identical set.
	back, err := ParseConditionSet(set.String())
	if err != nil {
		t.Fatalf("round trip of %q: %v", set.String(), err)
	}
	if !reflect.DeepEqual(back, set) {
		t.Fatalf("round trip changed the set: %q -> %q", set.String(), back.String())
	}
}

func TestParseConditionSetRejectsDuplicatesAndEmpties(t *testing.T) {
	// "1.0V" and "1V" are the same float: a duplicate would double-weight
	// the excursion in a robust ranking.
	if _, err := ParseConditionSet("TT@1.0V@27C,TT@1V@27C"); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate conditions accepted (err=%v)", err)
	}
	for _, spec := range []string{"", "TT@1V@27C,", ",TT@1V@27C", "TT@1V@27C,,SS@0.9V@60C"} {
		if _, err := ParseConditionSet(spec); err == nil {
			t.Errorf("ParseConditionSet(%q) accepted, want error", spec)
		}
	}
	if _, err := NewConditionSet(); err == nil {
		t.Fatal("empty NewConditionSet accepted")
	}
	if _, err := NewConditionSet(device.PVT{Corner: device.CornerTT, VDD: math.NaN(), TempC: 27}); err == nil {
		t.Fatal("NaN supply accepted")
	}
}

func TestNominalConditions(t *testing.T) {
	set := NominalConditions()
	if set.Len() != 1 || set.At(0) != device.Nominal() {
		t.Fatalf("NominalConditions = %v", set.Conditions())
	}
	if set.String() != FormatCondition(device.Nominal()) {
		t.Fatalf("canonical form %q", set.String())
	}
}

func matrixFixture(t *testing.T) ([]mult.Config, ConditionSet) {
	t.Helper()
	cfgs := make([]mult.Config, 6)
	for i := range cfgs {
		cfgs[i] = mult.Config{Tau0: float64(i+1) * 0.1e-9, VDAC0: 0.3, VDACFS: 1.0}
	}
	conds, err := ParseConditionSet("TT@1V@27C,SS@0.9V@60C,FF@1.1V@0C")
	if err != nil {
		t.Fatal(err)
	}
	return cfgs, conds
}

// TestEvaluateMatrixLayoutAndAccounting pins the matrix contract: cells are
// indexed [config][condition] with configs in submission order and
// conditions in set order, every (config, condition) pair is one
// independent cache key (misses = cells on a cold engine, hits = cells on
// re-submission), and a partially overlapping matrix only computes the new
// cells.
func TestEvaluateMatrixLayoutAndAccounting(t *testing.T) {
	cfgs, conds := matrixFixture(t)
	fake := &fakeBackend{}
	eng := New(fake, 4)

	mat, err := eng.EvaluateMatrix(cfgs, conds)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(cfgs) * conds.Len()
	if got := fake.evals.Load(); got != int64(cells) {
		t.Fatalf("cold matrix ran %d backend evaluations, want %d", got, cells)
	}
	st := eng.Stats()
	if st.Misses != uint64(cells) || st.Hits != 0 || st.Entries != cells {
		t.Fatalf("cold stats %+v, want %d misses / 0 hits / %d entries", st, cells, cells)
	}
	for i, cfg := range cfgs {
		for j := 0; j < conds.Len(); j++ {
			met := mat.At(i, j)
			if met.Config != cfg || met.Cond != conds.At(j) {
				t.Fatalf("cell (%d,%d) holds (%v, %v), want (%v, %v)",
					i, j, met.Config, met.Cond, cfg, conds.At(j))
			}
		}
		if len(mat.Row(i)) != conds.Len() {
			t.Fatalf("row %d has %d cells, want %d", i, len(mat.Row(i)), conds.Len())
		}
	}
	for j := 0; j < conds.Len(); j++ {
		col := mat.Col(j)
		if len(col) != len(cfgs) {
			t.Fatalf("column %d has %d cells", j, len(col))
		}
		for i := range col {
			if col[i] != mat.At(i, j) {
				t.Fatalf("column view disagrees with At at (%d,%d)", i, j)
			}
		}
	}

	// Re-submission: all hits, no new backend work.
	if _, err := eng.EvaluateMatrix(cfgs, conds); err != nil {
		t.Fatal(err)
	}
	if got := fake.evals.Load(); got != int64(cells) {
		t.Fatalf("warm matrix re-ran the backend: %d evaluations", got)
	}
	st = eng.Stats()
	if st.Hits != uint64(cells) {
		t.Fatalf("warm stats %+v, want %d hits", st, cells)
	}

	// Partial overlap: a wider condition set only computes the new column.
	wider, err := ParseConditionSet("TT@1V@27C,SS@0.9V@60C,FF@1.1V@0C,TT@0.95V@45C")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.EvaluateMatrix(cfgs, wider); err != nil {
		t.Fatal(err)
	}
	wantEvals := int64(cells + len(cfgs))
	if got := fake.evals.Load(); got != wantEvals {
		t.Fatalf("overlapping matrix ran %d total evaluations, want %d (only the new column)", got, wantEvals)
	}
}

// TestEvaluateMatrixWorkerInvariance: the matrix is byte-identical at any
// worker budget — the cross-condition extension of the sweep guarantee.
func TestEvaluateMatrixWorkerInvariance(t *testing.T) {
	cfgs, conds := matrixFixture(t)
	run := func(workers int) *Matrix {
		mat, err := New(&fakeBackend{}, workers).EvaluateMatrix(cfgs, conds)
		if err != nil {
			t.Fatal(err)
		}
		return mat
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Fatal("matrix differs between workers=1 and workers=8")
	}
}

func TestEvaluateMatrixValidation(t *testing.T) {
	cfgs, conds := matrixFixture(t)
	eng := New(&fakeBackend{}, 1)
	if _, err := eng.EvaluateMatrix(nil, conds); err == nil {
		t.Fatal("empty config list accepted")
	}
	if _, err := eng.EvaluateMatrix(cfgs, ConditionSet{}); err == nil {
		t.Fatal("empty condition set accepted")
	}
}

// TestEvaluateMatrixErrorNamesCondition: a failing cell's error names both
// the configuration and the operating condition — a PVT sweep must say
// which excursion point failed.
func TestEvaluateMatrixErrorNamesCondition(t *testing.T) {
	cfgs, conds := matrixFixture(t)
	fake := &fakeBackend{fail: cfgs[2]}
	_, err := New(fake, 4).EvaluateMatrix(cfgs, conds)
	if err == nil {
		t.Fatal("failing corner did not error")
	}
	if !strings.Contains(err.Error(), conds.At(0).String()) {
		t.Fatalf("error does not name the failing condition: %v", err)
	}
}
