package dnn

import (
	"fmt"

	"optima/internal/stats"
)

// The model zoo provides scaled counterparts of the paper's four networks.
// The suffix "S" marks the scaled variants: same structural families
// (VGG-style plain stacks vs. ResNet-style residual stacks, a shallower and
// a deeper member of each), sized for the synthetic datasets so the full
// FLOAT32 → INT4 → in-memory-multiplier protocol runs in CPU-only Go.
//
// Architecture summary for inputs C×12×12:
//
//	VGG16S:    2×[conv8]  – pool – 2×[conv16] – pool – 2×[conv24] – dense
//	VGG19S:    VGG16S with a third convolution per block
//	ResNet50S: stem conv8 – res8 – res16 – res32 – GAP – dense
//	ResNet101S: stem conv8 – 2×res8 – 2×res16 – 2×res32 – GAP – dense
//
// Every convolution is followed by batch-norm + ReLU (folded before
// quantization), mirroring the production networks' conv-BN-ReLU idiom.

// ZooModels lists the available model names in the paper's Table II order.
func ZooModels() []string {
	return []string{"VGG16S", "VGG19S", "ResNet50S", "ResNet101S"}
}

// NewZooModel constructs a zoo network by name for the given input shape
// and class count. The RNG drives weight initialization.
func NewZooModel(name string, inC, inH, inW, classes int, rng *stats.RNG) (*Network, error) {
	switch name {
	case "VGG16S":
		return newVGGS(name, inC, inH, inW, classes, 2, rng), nil
	case "VGG19S":
		return newVGGS(name, inC, inH, inW, classes, 3, rng), nil
	case "ResNet50S":
		return newResNetS(name, inC, inH, inW, classes, 1, rng), nil
	case "ResNet101S":
		return newResNetS(name, inC, inH, inW, classes, 2, rng), nil
	default:
		return nil, fmt.Errorf("dnn: unknown zoo model %q", name)
	}
}

func newVGGS(name string, inC, inH, inW, classes, convsPerBlock int, rng *stats.RNG) *Network {
	n := NewNetwork(name, inC, inH, inW)
	widths := []int{8, 16, 24}
	c := inC
	h, w := inH, inW
	for bi, width := range widths {
		for ci := 0; ci < convsPerBlock; ci++ {
			tag := fmt.Sprintf("%s.b%dc%d", name, bi, ci)
			n.Add(NewConv2D(tag, c, width, 3, rng))
			n.Add(NewBatchNorm2D(tag+".bn", width))
			n.Add(NewReLU(tag + ".relu"))
			c = width
		}
		if bi < len(widths)-1 {
			n.Add(NewMaxPool2(fmt.Sprintf("%s.pool%d", name, bi)))
			h, w = h/2, w/2
		}
	}
	n.Add(NewGlobalAvgPool(name + ".gap"))
	n.Add(NewDense(name+".fc", c, classes, rng))
	_ = h
	_ = w
	return n
}

func newResNetS(name string, inC, inH, inW, classes, blocksPerStage int, rng *stats.RNG) *Network {
	n := NewNetwork(name, inC, inH, inW)
	stem := 8
	n.Add(NewConv2D(name+".stem", inC, stem, 3, rng))
	n.Add(NewBatchNorm2D(name+".stem.bn", stem))
	n.Add(NewReLU(name + ".stem.relu"))
	c := stem
	widths := []int{8, 16, 32}
	for si, width := range widths {
		for b := 0; b < blocksPerStage; b++ {
			in := c
			n.Add(NewResidual(fmt.Sprintf("%s.s%db%d", name, si, b), in, width, rng))
			c = width
		}
		if si < len(widths)-1 {
			n.Add(NewMaxPool2(fmt.Sprintf("%s.pool%d", name, si)))
		}
	}
	n.Add(NewGlobalAvgPool(name + ".gap"))
	n.Add(NewDense(name+".fc", c, classes, rng))
	return n
}

// ReplaceHead swaps the final dense layer for a fresh one with the given
// class count — the paper's CIFAR-10 transfer-learning step ("the last
// layer is replaced with a fully-connected layer containing 10 neurons").
func (n *Network) ReplaceHead(classes int, rng *stats.RNG) error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("dnn: empty network")
	}
	last, ok := n.Layers[len(n.Layers)-1].(*Dense)
	if !ok {
		return fmt.Errorf("dnn: final layer %s is not dense", n.Layers[len(n.Layers)-1].Name())
	}
	n.Layers[len(n.Layers)-1] = NewDense(last.Name()+".transfer", last.In, classes, rng)
	return nil
}
