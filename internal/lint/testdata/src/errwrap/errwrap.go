// Package errwrap is the expected-diagnostic corpus for the error-wrapping
// analyzer: fmt.Errorf calls that flatten an error with %v (breaking
// errors.Is/As through the wrap), next to proper %w wrapping.
package errwrap

import (
	"context"
	"fmt"
)

func badWrap(err error) error {
	return fmt.Errorf("operation failed: %v", err) // want "without %w"
}

func badWrapContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("canceled mid-run: %v", err) // want "without %w"
	}
	return nil
}

func goodWrap(err error) error {
	return fmt.Errorf("operation failed: %w", err)
}

func goodNoError(n int) error {
	return fmt.Errorf("bad value %d", n)
}

func goodRecoveredValue(r any) error {
	return fmt.Errorf("panicked: %v", r)
}
