package dnn

import "math"

// StatelessCapable reports whether InferenceForward covers the layer type.
// Every built-in layer is covered; only user-defined layer types fall back
// to the (stateful) training Forward.
func StatelessCapable(l Layer) bool {
	switch l.(type) {
	case *Conv2D, *Dense, *ReLU, *MaxPool2, *GlobalAvgPool, *BatchNorm2D, *Residual:
		return true
	}
	return false
}

// InferenceForward computes the inference-mode forward of a layer without
// mutating it. The training Forward methods record state for Backward
// (ReLU masks, pool argmax, conv inputs), which makes them unsafe for
// concurrent evaluation; this path covers every built-in layer type so both
// float and quantized networks can fan batches out across workers. Returns
// ok = false for user-defined layer types with no stateless forward —
// callers must fall back to the serial path.
func InferenceForward(l Layer, x *Tensor) (*Tensor, bool) {
	switch t := l.(type) {
	case *Conv2D:
		return t.infer(x), true
	case *Dense:
		return t.infer(x), true
	case *ReLU:
		return reluInfer(x), true
	case *MaxPool2:
		oh, ow := x.H/2, x.W/2
		out := NewTensor(x.N, x.C, oh, ow)
		for n := 0; n < x.N; n++ {
			for c := 0; c < x.C; c++ {
				for i := 0; i < oh; i++ {
					for j := 0; j < ow; j++ {
						best := math.Inf(-1)
						for di := 0; di < 2; di++ {
							for dj := 0; dj < 2; dj++ {
								if v := x.Data[x.Idx(n, c, 2*i+di, 2*j+dj)]; v > best {
									best = v
								}
							}
						}
						out.Data[out.Idx(n, c, i, j)] = best
					}
				}
			}
		}
		return out, true
	case *GlobalAvgPool:
		out := NewTensor(x.N, x.C, 1, 1)
		inv := 1.0 / float64(x.H*x.W)
		for n := 0; n < x.N; n++ {
			for c := 0; c < x.C; c++ {
				var s float64
				base := x.Idx(n, c, 0, 0)
				for i := 0; i < x.H*x.W; i++ {
					s += x.Data[base+i]
				}
				out.Data[out.Idx(n, c, 0, 0)] = s * inv
			}
		}
		return out, true
	case *BatchNorm2D:
		// The eval-mode forward reads only running statistics — already
		// stateless.
		return t.Forward(x, false), true
	case *Residual:
		return t.infer(x), true
	default:
		return nil, false
	}
}

// reluInfer is the stateless rectifier (no backward mask).
func reluInfer(x *Tensor) *Tensor {
	out := x.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// infer composes the block's stateless stages (see Residual.Forward for the
// training-path structure this mirrors).
func (r *Residual) infer(x *Tensor) *Tensor {
	main := r.Conv1.infer(x)
	main = r.BN1.Forward(main, false)
	main = reluInfer(main)
	main = r.Conv2.infer(main)
	main = r.BN2.Forward(main, false)
	skip := x
	if r.Proj != nil {
		skip = r.Proj.infer(x)
	}
	sum := main.Clone()
	for i := range sum.Data {
		sum.Data[i] += skip.Data[i]
	}
	return reluInfer(sum)
}
