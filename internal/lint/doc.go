// Package lint implements optimalint, the repo-invariant static-analysis
// suite. It loads, parses and type-checks packages using only the standard
// library (go/parser, go/types, and `go list -e -export -json -deps` for
// package enumeration and export data — no golang.org/x/tools), and runs
// four analyzers. Each encodes an invariant this codebase has been bitten
// by, or depends on for correctness, that the Go compiler and vet do not
// check:
//
// # determinism
//
// The evaluation stack (internal/engine, search, dse, store, mult, exp) is
// content-addressed: cache keys, cached metrics, persisted store segments
// and search decisions must be byte-identical across runs, worker counts
// and processes. The analyzer flags the two classic ways that property is
// lost — iteration over a map whose body accumulates into output (a slice,
// string, or writer declared outside the loop) with no sort afterwards in
// the same function, and wall-clock or global math/rand reads. The store's
// compaction path is the motivating case: encoding records straight out of
// the index map produced segment bytes that differed between identical
// runs. Explicitly seeded generators (rand.New(rand.NewSource(seed))) and
// indexed writes (out[i] = v) are allowed.
//
// # claimsafety
//
// The engine's singleflight cache publishes entries carrying a done
// channel; every waiter blocks on it. A claim whose close(done) sits on
// the happy path only — not in a defer, with a fallible call between claim
// and close — strands all waiters forever if that call panics. This is the
// exact shape of a former engine bug where a store lookup between claim
// and close could leave a corner permanently "in flight". The analyzer
// flags plain closes (in internal/engine and internal/store) that are
// separated from their claim by a risky call.
//
// # errwrap
//
// fmt.Errorf with an error argument formatted as %v (or %s) severs the
// error chain: errors.Is(err, context.Canceled) stops seeing through it,
// and cancellation-aware callers misclassify shutdowns as failures. The
// analyzer requires %w whenever an argument implements error. Chains that
// should deliberately end carry a reasoned suppression instead.
//
// # lockedcall
//
// Methods of mutex-carrying types must not do expensive or blocking work
// while locked: backend Evaluate calls, net/http or net traffic, and
// blocking channel sends are flagged. The hub's drop-slow-subscriber idiom
// — a send inside select with a default case — is recognized and allowed.
//
// # Suppression
//
// A finding is silenced by a directive on its line or the line above:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory — a directive without one, or naming an unknown
// analyzer, is itself a diagnostic (analyzer name "lint") and suppresses
// nothing. The reserved names "load" and "typecheck" report driver
// degradation: packages that fail to load or type-check become per-package
// diagnostics rather than aborting the run.
//
// The expected-diagnostic corpus lives under testdata/src; each fixture
// line carries a `// want "regexp"` annotation (or `// wantabove` for
// diagnostics on the preceding line) that the tests match one-to-one
// against the driver's output. The cmd/optimalint command wires all of
// this into a CI gate.
package lint
