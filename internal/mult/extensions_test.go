package mult

import (
	"math"
	"testing"

	"optima/internal/device"
	"optima/internal/stats"
)

func TestNonlinearDACMonotoneLevels(t *testing.T) {
	m := testModel(t)
	dac, err := CalibrateNonlinearDAC(m, fomConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dac.Levels[0] != 0.3 || dac.Levels[15] != 1.0 {
		t.Fatalf("endpoints moved: %g, %g", dac.Levels[0], dac.Levels[15])
	}
	for a := 1; a <= 15; a++ {
		if dac.Levels[a] < dac.Levels[a-1] {
			t.Fatalf("levels not monotone at %d: %v", a, dac.Levels)
		}
	}
	// The trim must bend the mid-codes upward (the device transfer is
	// convex, so linearizing requires boosting the low/mid codes).
	linearMid := 0.3 + 7.5*(1.0-0.3)/15
	if dac.Levels[7] <= linearMid && dac.Levels[8] <= linearMid {
		t.Fatalf("mid levels %g/%g not predistorted vs linear %g", dac.Levels[7], dac.Levels[8], linearMid)
	}
}

func TestNonlinearDACImprovesLinearity(t *testing.T) {
	m := testModel(t)
	cfg := fomConfig()
	linear, err := NewBehavioral(m, cfg, device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	dac, err := CalibrateNonlinearDAC(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := linear.WithNonlinearDAC(dac)
	if err != nil {
		t.Fatal(err)
	}
	avgAbs := func(b *Behavioral) float64 {
		var acc stats.Accumulator
		for a := uint(0); a <= 15; a++ {
			for d := uint(0); d <= 15; d++ {
				r, err := b.Multiply(a, d, nil)
				if err != nil {
					t.Fatal(err)
				}
				acc.Add(math.Abs(float64(r.ErrorLSB())))
			}
		}
		return acc.Mean()
	}
	lin, nl := avgAbs(linear), avgAbs(trimmed)
	if nl >= lin {
		t.Fatalf("nonlinear DAC did not improve the deterministic error: %.3f vs %.3f LSB", nl, lin)
	}
}

func TestNonlinearDACDoesNotMutateOriginal(t *testing.T) {
	m := testModel(t)
	b, err := NewBehavioral(m, fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	lsb := b.LSBVolt
	dac, err := CalibrateNonlinearDAC(m, fomConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WithNonlinearDAC(dac); err != nil {
		t.Fatal(err)
	}
	if b.DAC != nil || b.LSBVolt != lsb {
		t.Fatal("WithNonlinearDAC mutated the receiver")
	}
}

func TestDotProductMatchesSumOfProducts(t *testing.T) {
	m := testModel(t)
	b, err := NewBehavioral(m, fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	dp := NewDotProduct(b)
	as := []uint{3, 7, 12, 1, 9, 15, 0, 5}
	ds := []uint{5, 2, 11, 14, 9, 15, 8, 0}
	res, err := dp.Compute(as, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range as {
		want += int(as[i] * ds[i])
	}
	if res.Expected != want {
		t.Fatalf("expected field %d, want %d", res.Expected, want)
	}
	if e := res.ErrorUnits(); e < -30 || e > 30 {
		t.Fatalf("dot-product error %d units too large for K=8", e)
	}
	if res.K != 8 {
		t.Fatalf("K = %d", res.K)
	}
}

func TestDotProductAmortizesEnergy(t *testing.T) {
	m := testModel(t)
	b, err := NewBehavioral(m, fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	dp := NewDotProduct(b)
	as := []uint{9, 9, 9, 9, 9, 9, 9, 9}
	ds := []uint{7, 7, 7, 7, 7, 7, 7, 7}
	acc, err := dp.Compute(as, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	var separate float64
	for i := range as {
		r, err := b.Multiply(as[i], ds[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		separate += r.Energy
	}
	if acc.Energy >= separate {
		t.Fatalf("accumulation (%.1f fJ) should be cheaper than %d separate ops (%.1f fJ)",
			acc.Energy*1e15, len(as), separate*1e15)
	}
}

func TestDotProductMismatchAveraging(t *testing.T) {
	m := testModel(t)
	b, err := NewBehavioral(m, fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	dp := NewDotProduct(b)
	// The accumulated σ per product must be smaller than a single
	// multiplication's σ (uncorrelated mismatch averages on the shared caps).
	single, err := b.Multiply(9, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	as := make([]uint, 8)
	ds := make([]uint, 8)
	for i := range as {
		as[i], ds[i] = 9, 7
	}
	acc, err := dp.Compute(as, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	perProductSigma := acc.Sigma * float64(acc.K) / float64(acc.K) // V_acc is the mean
	if perProductSigma >= single.Sigma {
		t.Fatalf("accumulated σ %.3g V not below single-op σ %.3g V", perProductSigma, single.Sigma)
	}
}

func TestDotProductValidation(t *testing.T) {
	m := testModel(t)
	b, err := NewBehavioral(m, fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	dp := NewDotProduct(b)
	if _, err := dp.Compute(nil, nil, nil); err == nil {
		t.Fatal("empty vectors accepted")
	}
	if _, err := dp.Compute([]uint{1}, []uint{1, 2}, nil); err == nil {
		t.Fatal("mismatched vectors accepted")
	}
	if _, err := dp.Compute([]uint{16}, []uint{1}, nil); err == nil {
		t.Fatal("oversized operand accepted")
	}
	huge := make([]uint, 100)
	if _, err := dp.Compute(huge, huge, nil); err == nil {
		t.Fatal("range overflow accepted")
	}
}

func TestDotProductNoiseSampling(t *testing.T) {
	m := testModel(t)
	b, err := NewBehavioral(m, fomConfig(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	dp := NewDotProduct(b)
	rng := stats.NewRNG(5)
	as := []uint{4, 8, 12}
	ds := []uint{3, 6, 9}
	var acc stats.Accumulator
	for i := 0; i < 200; i++ {
		r, err := dp.Compute(as, ds, rng)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(float64(r.Code))
	}
	if acc.StdDev() == 0 {
		t.Fatal("sampled dot product produced no spread")
	}
	det, err := dp.Compute(as, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc.Mean()-float64(det.Code)) > 6*acc.StdDev()/math.Sqrt(200)+1 {
		t.Fatalf("MC mean %.1f far from deterministic %d", acc.Mean(), det.Code)
	}
}
