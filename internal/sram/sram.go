// Package sram provides the 6T-SRAM substrate for in-memory computing:
// cells with per-transistor mismatch state, words and arrays, the standard
// read/write/precharge operations with energy accounting, and the
// cell-level analyses (hold static noise margin, write margin) that a
// credible SRAM IMC study rests on.
//
// Discharge-based computing operates the array off-spec: one operand is
// stored in the cells and the other is applied as an analog word-line
// voltage, producing a data-dependent bit-line discharge (paper Section
// II-B). This package owns the cell/array bookkeeping; the transient
// physics lives in package spice and the fast behavioral models in
// package core.
package sram

import (
	"fmt"
	"math"

	"optima/internal/device"
	"optima/internal/spice"
)

// WordBits is the word width of the multiplier case-study array.
const WordBits = 4

// Cell is one 6T SRAM cell: a stored bit plus the local mismatch of the two
// transistors in its BLB discharge stack (access and pull-down). Mismatch of
// the remaining four transistors affects writes and hold stability but not
// the compute discharge, so it is kept separately at analysis level.
type Cell struct {
	Bit      bool
	AccessMM device.Mismatch
	DriverMM device.Mismatch
}

// SampleMismatch draws fresh static mismatch for the cell's discharge stack
// with the given technology and geometry.
func (c *Cell) SampleMismatch(tech device.Tech, rng device.Gaussianer) {
	acc := device.NewMOSFET(tech, spice.AccessW, spice.AccessL)
	drv := device.NewMOSFET(tech, spice.PullDownW, spice.PullDownL)
	c.AccessMM = acc.SampleMismatch(rng)
	c.DriverMM = drv.SampleMismatch(rng)
}

// DischargePath builds the golden-simulation discharge stack for this cell
// at the given word-line voltage and condition, applying the cell's
// mismatch state.
func (c *Cell) DischargePath(tech device.Tech, vwl float64, cond device.PVT) *spice.DischargePath {
	dp := spice.NewDischargePath(tech, vwl, cond)
	dp.Access.MM = c.AccessMM
	dp.Driver.MM = c.DriverMM
	return dp
}

// Word is a little-endian group of WordBits cells storing an unsigned
// integer: cell i holds bit i.
type Word [WordBits]Cell

// Store writes the value into the word's cells. It returns an error if the
// value does not fit in WordBits bits.
func (w *Word) Store(value uint) error {
	if value >= 1<<WordBits {
		return fmt.Errorf("sram: value %d does not fit in %d bits", value, WordBits)
	}
	for i := range w {
		w[i].Bit = value&(1<<i) != 0
	}
	return nil
}

// SampleMismatch draws fresh static mismatch for every cell of the word
// (cell order is fixed, so a seeded rng reproduces the same word state).
func (w *Word) SampleMismatch(tech device.Tech, rng device.Gaussianer) {
	for i := range w {
		w[i].SampleMismatch(tech, rng)
	}
}

// ClearMismatch restores matched cells, keeping the stored bits.
func (w *Word) ClearMismatch() {
	for i := range w {
		w[i] = Cell{Bit: w[i].Bit}
	}
}

// Value returns the stored unsigned integer.
func (w *Word) Value() uint {
	var v uint
	for i := range w {
		if w[i].Bit {
			v |= 1 << i
		}
	}
	return v
}

// Array is a bank of words sharing bit lines: word r sits on row r and its
// bit-i cell connects to bit-line pair i. CBL is the per-bit-line
// capacitance.
type Array struct {
	Tech  device.Tech
	Words []Word
	CBL   float64
}

// NewArray returns an array with the given number of rows, default bit-line
// capacitance, and matched cells.
func NewArray(tech device.Tech, rows int) *Array {
	return &Array{Tech: tech, Words: make([]Word, rows), CBL: spice.DefaultCBL}
}

// SampleMismatch draws fresh mismatch for every cell in the array.
func (a *Array) SampleMismatch(rng device.Gaussianer) {
	for r := range a.Words {
		for b := range a.Words[r] {
			a.Words[r][b].SampleMismatch(a.Tech, rng)
		}
	}
}

// Write stores value into row r and returns the write energy at the given
// condition. The energy is the full bit-line swing of every written pair
// (the dominant term, C_BL·VDD²·bits, paper Section IV-B) plus the
// cell-internal flip energy from the golden write transient.
func (a *Array) Write(r int, value uint, cond device.PVT, cfg spice.Config) (float64, error) {
	if r < 0 || r >= len(a.Words) {
		return 0, fmt.Errorf("sram: row %d out of range [0,%d)", r, len(a.Words))
	}
	if err := a.Words[r].Store(value); err != nil {
		return 0, err
	}
	energy := float64(WordBits) * a.CBL * cond.VDD * cond.VDD
	flip, err := CellFlipEnergy(a.Tech, cond, cfg)
	if err != nil {
		return 0, err
	}
	return energy + float64(WordBits)*flip, nil
}

// PrechargeEnergy returns the energy to restore one bit line that was
// discharged by deltaV back to VDD: E = C_BL·VDD·ΔV.
func (a *Array) PrechargeEnergy(deltaV float64, cond device.PVT) float64 {
	if deltaV < 0 {
		deltaV = 0
	}
	return a.CBL * cond.VDD * deltaV
}

// CellFlipEnergy runs the golden write transient of a single cell and
// returns the supply energy of the flip (short-circuit plus restoring
// charge). This is the temperature-sensitive component of the write energy
// that the paper's Eq. 7 models with its p1(T) factor.
func CellFlipEnergy(tech device.Tech, cond device.PVT, cfg spice.Config) (float64, error) {
	cw := spice.NewSRAMCellWrite(tech, 0, cond.VDD, cond)
	ok, res, err := cw.Write(false, 300e-12, cfg)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("sram: cell write did not complete at %v", cond)
	}
	// Both internal nodes also swing by VDD, drawing C_Q·VDD from supply.
	return res.SupplyEnergy + 2*spice.DefaultCQ*cond.VDD*cond.VDD, nil
}

// WriteEnergy returns the total modeled write energy for one word at the
// given condition (bit-line swings plus cell flips).
func WriteEnergy(tech device.Tech, cbl float64, cond device.PVT, cfg spice.Config) (float64, error) {
	flip, err := CellFlipEnergy(tech, cond, cfg)
	if err != nil {
		return 0, err
	}
	return float64(WordBits) * (cbl*cond.VDD*cond.VDD + flip), nil
}

// ReadResult reports a differential read of one row.
type ReadResult struct {
	Value   uint
	Latency float64 // time for the faster bit line to develop SenseMargin [s]
	Energy  float64 // precharge restore energy for the developed swings [J]
}

// SenseMargin is the differential voltage the sense amplifiers need.
const SenseMargin = 0.1

// Read performs a standard differential read of row r using the golden
// discharge physics: the word line is driven to VDD and each cell
// discharges one of its bit lines until the sense margin develops.
func (a *Array) Read(r int, cond device.PVT, cfg spice.Config) (ReadResult, error) {
	if r < 0 || r >= len(a.Words) {
		return ReadResult{}, fmt.Errorf("sram: row %d out of range [0,%d)", r, len(a.Words))
	}
	var out ReadResult
	out.Value = a.Words[r].Value()
	var worst float64
	for b := range a.Words[r] {
		cell := &a.Words[r][b]
		dp := cell.DischargePath(a.Tech, cond.VDD, cond)
		dp.CBL = a.CBL
		res, err := dp.Discharge(3e-9, cfg, 0)
		if err != nil {
			return ReadResult{}, err
		}
		tCross := res.Waveform.CrossingTime(0, cond.VDD-SenseMargin)
		if tCross < 0 {
			return ReadResult{}, fmt.Errorf("sram: read of row %d bit %d did not develop %0.2f V margin", r, b, SenseMargin)
		}
		if tCross > worst {
			worst = tCross
		}
		out.Energy += a.PrechargeEnergy(SenseMargin, cond)
	}
	out.Latency = worst
	return out, nil
}

// HoldSNM computes the hold static noise margin of the cell at the given
// condition: the side of the largest square that fits between the two
// cross-coupled inverter transfer curves (Seevinck's construction,
// evaluated on the 45°-rotated curves).
func HoldSNM(tech device.Tech, cond device.PVT) float64 {
	const n = 200
	// VTC of one inverter (input sweep → output by bisection on current balance).
	vtc := func(vin float64) float64 {
		pd := device.NewMOSFET(tech, spice.PullDownW, spice.PullDownL)
		pu := device.NewPMOS(tech, spice.PullUpW, spice.PullUpL)
		lo, hi := 0.0, cond.VDD
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			iDown := pd.Ids(vin, mid, 0, cond)
			iUp := pu.Isd(vin, mid, cond.VDD, cond)
			if iUp > iDown {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}
	// Sample both lobes of the butterfly and find the maximal embedded square
	// via the diagonal-offset method: SNM = max over vin of the smaller of
	// the two diagonal gaps, scaled by 1/√2 … approximated on a dense grid.
	best := 0.0
	for i := 0; i <= n; i++ {
		vin := cond.VDD * float64(i) / n
		v1 := vtc(vin) // inverter A: Q̄ = f(Q)
		v2 := vtc(v1)  // inverter B applied to A's output
		gap := math.Abs(v2 - vin)
		// A square of side s fits when following the loop twice returns
		// within s; use the contraction gap as the proxy metric.
		side := gap / math.Sqrt2
		if side > best {
			best = side
		}
	}
	return best
}

// WriteMargin returns the minimum word-line voltage at which a write flips
// the cell within the given duration, found by bisection over golden write
// transients. A higher margin (lower required V_WL) means easier writes.
func WriteMargin(tech device.Tech, cond device.PVT, duration float64, cfg spice.Config) (float64, error) {
	lo, hi := 0.0, cond.VDD
	// Verify the full-VDD write works at all.
	cw := spice.NewSRAMCellWrite(tech, 0, cond.VDD, cond)
	cw.VWL = hi
	ok, _, err := cw.Write(false, duration, cfg)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("sram: write fails even at V_WL = VDD at %v", cond)
	}
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		cw := spice.NewSRAMCellWrite(tech, 0, cond.VDD, cond)
		cw.VWL = mid
		ok, _, err := cw.Write(false, duration, cfg)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// ComputeDisturbCheck analyzes whether a discharge-based compute operation
// can corrupt the stored data — the core robustness risk of operating SRAM
// cells off-spec (paper Section II-B). During the discharge, the cell's
// internal node between the access and pull-down transistors bounces up;
// if it approached the cross-coupled inverter trip point, the cell would
// flip. The check runs the golden discharge at the worst case (maximum
// word-line voltage, longest discharge) and reports the observed bounce
// against the inverter trip point.
type ComputeDisturbReport struct {
	// MaxBounce is the largest internal-node excursion during the
	// discharge [V].
	MaxBounce float64
	// TripPoint is the static trip point of the cell's inverter [V].
	TripPoint float64
	// Margin = TripPoint − MaxBounce [V]; positive means the stored bit
	// survives the compute operation.
	Margin float64
}

// ComputeDisturbCheck runs the worst-case disturb analysis for the given
// word-line voltage and discharge duration.
func ComputeDisturbCheck(tech device.Tech, vwl, duration float64, cond device.PVT, cfg spice.Config) (ComputeDisturbReport, error) {
	dp := spice.NewDischargePath(tech, vwl, cond)
	res, err := dp.Discharge(duration, cfg, 0)
	if err != nil {
		return ComputeDisturbReport{}, err
	}
	var report ComputeDisturbReport
	for _, v := range res.Waveform.V {
		if v[1] > report.MaxBounce {
			report.MaxBounce = v[1]
		}
	}
	report.TripPoint = inverterTripPoint(tech, cond)
	report.Margin = report.TripPoint - report.MaxBounce
	return report, nil
}

// inverterTripPoint finds Vin = Vout of the cell inverter by bisection.
func inverterTripPoint(tech device.Tech, cond device.PVT) float64 {
	pd := device.NewMOSFET(tech, spice.PullDownW, spice.PullDownL)
	pu := device.NewPMOS(tech, spice.PullUpW, spice.PullUpL)
	vout := func(vin float64) float64 {
		lo, hi := 0.0, cond.VDD
		for i := 0; i < 50; i++ {
			mid := (lo + hi) / 2
			if pu.Isd(vin, mid, cond.VDD, cond) > pd.Ids(vin, mid, 0, cond) {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}
	lo, hi := 0.0, cond.VDD
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if vout(mid) > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
