package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewMatrixZeroInitialized(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %d×%d, want 3×4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0×3 matrix")
		}
	}()
	NewMatrix(0, 3)
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 42.5)
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 43 {
		t.Fatalf("At(1,2) = %g, want 43", got)
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds access")
		}
	}()
	m.At(2, 0)
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g, want 3", m.At(1, 0))
	}
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("ragged rows: err = %v, want ErrShape", err)
	}
	if _, err := NewMatrixFromRows(nil); !errors.Is(err, ErrShape) {
		t.Fatalf("empty rows: err = %v, want ErrShape", err)
	}
}

func TestIdentityMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	i := Identity(2)
	got, err := a.Mul(i)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if got.At(r, c) != a.At(r, c) {
				t.Errorf("A·I differs at (%d,%d)", r, c)
			}
		}
	}
}

func TestMulKnownProduct(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := NewMatrixFromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for r := range want {
		for c := range want[r] {
			if got.At(r, c) != want[r][c] {
				t.Errorf("(%d,%d) = %g, want %g", r, c, got.At(r, c), want[r][c])
			}
		}
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	got, err := a.MulVec([]float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("A·x = %v, want [17 39]", got)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := a.T().T()
	if !matricesEqual(a, tt) {
		t.Fatal("transpose twice is not identity")
	}
}

func matricesEqual(a, b *Matrix) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

func TestAddSubRoundTrip(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	sum, err := a.AddMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(a, back) {
		t.Fatal("a + b − b != a")
	}
}

func TestScale(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, -2}})
	a.Scale(-3)
	if a.At(0, 0) != -3 || a.At(0, 1) != 6 {
		t.Fatalf("scale: got %v", a.Row(0))
	}
}

func TestRowColCopies(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) == 99 {
		t.Fatal("Row returned a live reference, want copy")
	}
	c := a.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v, want [2 4]", c)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Norm2 must not overflow for large entries.
	big := 1e200
	got := Norm2([]float64{big, big})
	want := big * math.Sqrt2
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("Norm2 = %g, want %g", got, want)
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) != 0")
	}
}

func TestDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestFrobeniusAndMaxAbs(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{3, -4}})
	if got := a.FrobeniusNorm(); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Frobenius = %g, want 5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %g, want 4", got)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestTransposeProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := pseudoRand(uint64(seed))
		a := randomMatrix(r, 3, 4)
		b := randomMatrix(r, 4, 2)
		ab, _ := a.Mul(b)
		left := ab.T()
		right, _ := b.T().Mul(a.T())
		for i := 0; i < left.Rows(); i++ {
			for j := 0; j < left.Cols(); j++ {
				if !almostEq(left.At(i, j), right.At(i, j), 1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// pseudoRand is a tiny deterministic generator for property tests.
type lcg struct{ state uint64 }

func pseudoRand(seed uint64) *lcg { return &lcg{state: seed*2862933555777941757 + 3037000493} }

func (l *lcg) next() float64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return float64(l.state>>11)/float64(1<<53)*2 - 1
}

func randomMatrix(r *lcg, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, r.next())
		}
	}
	return m
}
