package device

// PMOS models a p-channel transistor by symmetry with the NMOS EKV model:
// a PMOS with source tied near VDD behaves like an NMOS with all terminal
// voltages reflected about the supply. The SRAM cell's pull-up devices are
// the only PMOS instances in the discharge-computing circuits.
type PMOS struct {
	// N is the underlying NMOS-parameterized device; its KP should already
	// include the hole-mobility derating (see NewPMOS).
	N MOSFET
}

// PMOSMobilityRatio derates the transconductance factor for holes relative
// to electrons in the generic 65 nm technology.
const PMOSMobilityRatio = 0.4

// NewPMOS returns a PMOS with the given geometry. The technology card's
// NMOS transconductance is derated by PMOSMobilityRatio.
func NewPMOS(tech Tech, w, l float64) *PMOS {
	t := tech
	t.KPn *= PMOSMobilityRatio
	return &PMOS{N: MOSFET{Tech: t, W: w, L: l}}
}

// SampleMismatch draws a fresh mismatch state for the PMOS geometry.
func (p *PMOS) SampleMismatch(rng Gaussianer) Mismatch {
	return p.N.SampleMismatch(rng)
}

// Isd returns the source-to-drain current [A] flowing from the higher
// potential terminal into vd, for gate voltage vg and source voltage vs
// (conventionally near VDD). Positive current charges the drain node.
func (p *PMOS) Isd(vg, vd, vs float64, cond PVT) float64 {
	// Reflect about the supply: the PMOS conducts when vg is low.
	return p.N.Ids(cond.VDD-vg, cond.VDD-vd, cond.VDD-vs, cond)
}

// Vth returns the magnitude of the effective PMOS threshold voltage.
func (p *PMOS) Vth(cond PVT) float64 { return p.N.Vth(cond) }
