//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// lockSupported reports whether single-writer exclusion is enforced on this
// platform.
const lockSupported = true

// acquireLock takes a non-blocking exclusive flock on the store's lock
// file. The store is a single-writer design: open-time compaction renames
// segment files, which would silently strand another process's O_APPEND
// handles on unlinked inodes. Exclusion turns that data-loss scenario into
// a clean Open error, which the callers (exp.Context) degrade to a
// memory-only cache. The lock dies with the process, so a crash never
// leaves the store unopenable.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is in use by another process (flock: %w)", path, err)
	}
	return f, nil
}

// releaseLock drops the flock (closing the descriptor releases it).
func releaseLock(f *os.File) {
	if f != nil {
		f.Close()
	}
}
