//go:build !unix

package store

import "os"

// lockSupported reports whether single-writer exclusion is enforced on this
// platform.
const lockSupported = false

// acquireLock is a no-op on platforms without flock: concurrent processes
// sharing one cache directory are then the operator's responsibility (the
// worst case is lost cache warmth, since every reader re-validates records
// and a reopened store repairs unreadable tails).
func acquireLock(string) (*os.File, error) { return nil, nil }

func releaseLock(*os.File) {}
