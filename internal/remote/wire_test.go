package remote

import (
	"bufio"
	"bytes"
	"math"
	"strings"
	"testing"

	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/mult"
)

// testBatch exercises every encoded field, including the float values that
// only exact bit round-trips preserve (-0, denormals, huge magnitudes).
func testBatch() batchFrame {
	return batchFrame{
		Dispatch: 7,
		Backend:  "behavioral",
		Cells: []batchCell{
			{Index: 0, Job: engine.Job{
				Config: mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0},
				Cond:   device.PVT{Corner: device.CornerTT, VDD: 1.0, TempC: 27},
			}},
			{Index: 3, Job: engine.Job{
				Config: mult.Config{Tau0: math.Copysign(0, -1), VDAC0: 5e-324, VDACFS: 1e300},
				Cond:   device.PVT{Corner: device.CornerSS, VDD: 0.9, TempC: -40},
			}},
		},
	}
}

func TestHelloRoundTrip(t *testing.T) {
	in := helloFrame{Proto: protoVersion, Fingerprint: "fp-abc123", Capacity: 8}
	frame := appendHello(nil, in)
	typ, payload, n, err := decodeFrame(frame)
	if err != nil || typ != frameHello || n != len(frame) {
		t.Fatalf("decodeFrame: typ=%d n=%d err=%v", typ, n, err)
	}
	out, err := decodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("hello round-trip: got %+v, want %+v", out, in)
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	for _, reject := range []string{"", "calibration fingerprint mismatch"} {
		frame := appendWelcome(nil, welcomeFrame{Reject: reject})
		typ, payload, _, err := decodeFrame(frame)
		if err != nil || typ != frameWelcome {
			t.Fatalf("decodeFrame: typ=%d err=%v", typ, err)
		}
		out, err := decodeWelcome(payload)
		if err != nil {
			t.Fatal(err)
		}
		if out.Reject != reject {
			t.Fatalf("welcome round-trip: got %q, want %q", out.Reject, reject)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := testBatch()
	frame := appendBatch(nil, in)
	typ, payload, _, err := decodeFrame(frame)
	if err != nil || typ != frameBatch {
		t.Fatalf("decodeFrame: typ=%d err=%v", typ, err)
	}
	out, err := decodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dispatch != in.Dispatch || out.Backend != in.Backend || len(out.Cells) != len(in.Cells) {
		t.Fatalf("batch header round-trip: got %+v, want %+v", out, in)
	}
	for i := range in.Cells {
		want, got := in.Cells[i], out.Cells[i]
		if got.Index != want.Index || got.Job != want.Job {
			// Compare the bit patterns too: -0 == 0 under ==, but the wire
			// must preserve the sign bit for byte-identity.
			t.Fatalf("cell %d round-trip: got %+v, want %+v", i, got, want)
		}
	}
	if got, want := math.Float64bits(out.Cells[1].Job.Config.Tau0), math.Float64bits(in.Cells[1].Job.Config.Tau0); got != want {
		t.Fatalf("negative zero lost: bits %x, want %x", got, want)
	}
}

func TestResultRoundTrip(t *testing.T) {
	ok := resultFrame{
		Dispatch: 9, Index: 4, DurNS: 12345, Status: resultOK,
		Met: engine.Metrics{
			EpsMul: 0.25, EpsLarge: 0.5, EpsSmall: math.Copysign(0, -1),
			EMul: 21e-15, SigmaMaxLSB: 0.04, SigmaMaxVolt: 5.04e-3, LSBVolt: 1e300,
		},
	}
	frame := appendResult(nil, ok)
	typ, payload, _, err := decodeFrame(frame)
	if err != nil || typ != frameResult {
		t.Fatalf("decodeFrame: typ=%d err=%v", typ, err)
	}
	out, err := decodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dispatch != ok.Dispatch || out.Index != ok.Index || out.DurNS != ok.DurNS || out.Status != byte(resultOK) {
		t.Fatalf("result header: got %+v", out)
	}
	if math.Float64bits(out.Met.EpsSmall) != math.Float64bits(ok.Met.EpsSmall) || out.Met != ok.Met {
		t.Fatalf("metrics round-trip: got %+v, want %+v", out.Met, ok.Met)
	}

	fail := resultFrame{Dispatch: 9, Index: 5, Status: resultErr, Err: "backend exploded"}
	typ, payload, _, err = decodeFrame(appendResult(nil, fail))
	if err != nil || typ != frameResult {
		t.Fatalf("decodeFrame: typ=%d err=%v", typ, err)
	}
	out, err = decodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != fail.Err {
		t.Fatalf("error round-trip: got %q, want %q", out.Err, fail.Err)
	}

	// Oversized error strings truncate rather than overflow the length
	// prefix.
	long := resultFrame{Status: resultErr, Err: strings.Repeat("x", maxStringLen+100)}
	_, payload, _, err = decodeFrame(appendResult(nil, long))
	if err != nil {
		t.Fatal(err)
	}
	out, err = decodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Err) != maxStringLen {
		t.Fatalf("oversized error string: %d bytes after round-trip, want %d", len(out.Err), maxStringLen)
	}
}

func TestReadFrameMatchesDecodeFrame(t *testing.T) {
	frame := appendBatch(nil, testBatch())
	typ, payload, n, err := readFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	dtyp, dpayload, dn, derr := decodeFrame(frame)
	if derr != nil || typ != dtyp || n != dn || !bytes.Equal(payload, dpayload) {
		t.Fatalf("readFrame disagrees with decodeFrame: typ %d vs %d, n %d vs %d", typ, dtyp, n, dn)
	}
}

// TestDecodeFrameTruncation: every proper prefix of a valid frame must
// decode to an error — the length prefix or the CRC catches the cut, never
// a partial decode.
func TestDecodeFrameTruncation(t *testing.T) {
	frame := appendBatch(nil, testBatch())
	for n := 0; n < len(frame); n++ {
		if _, _, _, err := decodeFrame(frame[:n]); err == nil {
			t.Fatalf("frame truncated to %d of %d bytes decoded without error", n, len(frame))
		}
	}
}

// TestDecodeFrameCorruption: flipping any single byte of a valid frame must
// either error or decode to exactly the original frame — never a silent
// mis-decode (the CRC covers the whole body including the type byte).
func TestDecodeFrameCorruption(t *testing.T) {
	frame := appendResult(nil, resultFrame{
		Dispatch: 3, Index: 1, DurNS: 99, Status: resultOK,
		Met: engine.Metrics{EpsMul: 0.25, EMul: 21e-15},
	})
	origTyp, origPayload, _, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0xFF
		typ, payload, _, err := decodeFrame(bad)
		if err != nil {
			continue
		}
		if typ != origTyp || !bytes.Equal(payload, origPayload) {
			t.Fatalf("byte %d corrupted: decoded to typ=%d payload=%x without error", i, typ, payload)
		}
	}
}

// TestDecodeStrictness: payload decoders reject trailing bytes and unknown
// statuses instead of ignoring them.
func TestDecodeStrictness(t *testing.T) {
	// Trailing byte after a well-formed hello payload.
	frame := appendHello(nil, helloFrame{Proto: 1, Fingerprint: "fp", Capacity: 2})
	_, payload, _, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeHello(append(append([]byte(nil), payload...), 0x00)); err == nil {
		t.Fatal("hello payload with a trailing byte decoded without error")
	}

	// Unknown result status.
	bad := appendFrame(nil, frameResult, func() []byte {
		p := make([]byte, 0, 21)
		p = append(p, make([]byte, 8+4+8)...) // dispatch, index, durns
		return append(p, 99)                  // bogus status
	}())
	_, payload, _, err = decodeFrame(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeResult(payload); err == nil {
		t.Fatal("result with unknown status decoded without error")
	}

	// Batch whose cell count disagrees with its body length.
	b := testBatch()
	frame = appendBatch(nil, b)
	_, payload, _, err = decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	short := append([]byte(nil), payload...)
	short = short[:len(short)-8]
	if _, err := decodeBatch(short); err == nil {
		t.Fatal("batch with a short cell array decoded without error")
	}
}

// FuzzDecodeFrame drives the frame and payload decoders with arbitrary
// bytes: they must never panic, and whatever decodes must re-encode to the
// same bytes it was decoded from (no mis-decode can survive a round trip).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(appendHello(nil, helloFrame{Proto: protoVersion, Fingerprint: "fp", Capacity: 4}))
	f.Add(appendWelcome(nil, welcomeFrame{}))
	f.Add(appendWelcome(nil, welcomeFrame{Reject: "nope"}))
	f.Add(appendBatch(nil, testBatch()))
	f.Add(appendResult(nil, resultFrame{Dispatch: 1, Index: 2, Status: resultOK}))
	f.Add(appendResult(nil, resultFrame{Dispatch: 1, Index: 2, Status: resultErr, Err: "x"}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, n, err := decodeFrame(data)
		if err != nil {
			return
		}
		if n < frameHeaderLen+1 || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		switch typ {
		case frameHello:
			if h, err := decodeHello(payload); err == nil {
				if got := appendHello(nil, h); !bytes.Equal(got, data[:n]) {
					t.Fatalf("hello re-encode mismatch: %x vs %x", got, data[:n])
				}
			}
		case frameWelcome:
			if w, err := decodeWelcome(payload); err == nil {
				if got := appendWelcome(nil, w); !bytes.Equal(got, data[:n]) {
					t.Fatalf("welcome re-encode mismatch: %x vs %x", got, data[:n])
				}
			}
		case frameBatch:
			if b, err := decodeBatch(payload); err == nil {
				if got := appendBatch(nil, b); !bytes.Equal(got, data[:n]) {
					t.Fatalf("batch re-encode mismatch: %x vs %x", got, data[:n])
				}
			}
		case frameResult:
			if r, err := decodeResult(payload); err == nil {
				if got := appendResult(nil, r); !bytes.Equal(got, data[:n]) {
					t.Fatalf("result re-encode mismatch: %x vs %x", got, data[:n])
				}
			}
		}
	})
}
