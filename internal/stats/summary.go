package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n−1 denominator).
// It returns NaN for fewer than two samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// RMS returns the root-mean-square of xs: sqrt(mean(x²)). This is the metric
// the paper reports for model residuals (e.g. "RMS modeling error 0.88 mV").
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var ss float64
	for _, x := range xs {
		ss += x * x
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MeanAbs returns the mean absolute value of xs.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s / float64(len(xs))
}

// MinMax returns the smallest and largest values in xs.
// It returns (NaN, NaN) for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Accumulator is an online (Welford) accumulator for mean and variance,
// usable without retaining samples. The zero value is ready to use.
type Accumulator struct {
	n     int
	mean  float64
	m2    float64
	sumSq float64
	min   float64
	max   float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	a.sumSq += x * x
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (NaN if empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the unbiased running variance (NaN if n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the unbiased running standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// RMS returns the running root-mean-square.
func (a *Accumulator) RMS() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return math.Sqrt(a.sumSq / float64(a.n))
}

// Min returns the smallest observation (NaN if empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation (NaN if empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Merge combines another accumulator into a (parallel reduction).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	a.sumSq += b.sumSq
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	total  int
}

// NewHistogram creates a histogram with the given number of bins over
// [lo, hi). It panics for invalid arguments.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(hi > lo) {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation; out-of-range values are tallied separately.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard float rounding at the upper edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// Outliers returns the counts below Lo and at/above Hi.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
