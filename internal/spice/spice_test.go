package spice

import (
	"errors"
	"math"
	"testing"

	"optima/internal/device"
	"optima/internal/stats"
)

// rcSystem is an analytically-solvable RC discharge: dv/dt = −v/(RC).
type rcSystem struct{ tau float64 }

func (r rcSystem) Dim() int { return 1 }
func (r rcSystem) Derivatives(_ float64, v, dv []float64) {
	dv[0] = -v[0] / r.tau
}

func TestTransientMatchesAnalyticRC(t *testing.T) {
	sys := rcSystem{tau: 1e-9}
	res, err := Transient(sys, []float64{1}, 0, 3e-9, 1.0, DefaultConfig(), 0.1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []float64{0.5e-9, 1e-9, 2e-9, 3e-9} {
		got := res.Waveform.NodeAt(0, at)
		want := math.Exp(-at / sys.tau)
		if math.Abs(got-want) > 5e-4 {
			t.Fatalf("v(%g) = %g, want %g", at, got, want)
		}
	}
}

func TestTransientValidation(t *testing.T) {
	sys := rcSystem{tau: 1e-9}
	if _, err := Transient(sys, []float64{1, 2}, 0, 1e-9, 1, DefaultConfig(), 0); err == nil {
		t.Fatal("wrong state size accepted")
	}
	if _, err := Transient(sys, []float64{1}, 1e-9, 1e-9, 1, DefaultConfig(), 0); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestDischargePathMonotone(t *testing.T) {
	dp := NewDischargePath(device.Generic65(), 0.9, device.Nominal())
	res, err := dp.Discharge(2e-9, DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wf := res.Waveform
	if wf.Len() < 10 {
		t.Fatalf("only %d samples", wf.Len())
	}
	prev := math.Inf(1)
	for i := 0; i < wf.Len(); i++ {
		v := wf.V[i][0]
		if v > prev+1e-9 {
			t.Fatalf("BLB voltage increased at sample %d", i)
		}
		prev = v
	}
	if final := wf.Final()[0]; final >= 1.0 || final <= 0 {
		t.Fatalf("final BLB %g out of range", final)
	}
}

func TestDischargeFasterAtHigherVWL(t *testing.T) {
	tech := device.Generic65()
	cond := device.Nominal()
	var prev float64 = 1.1
	for _, vwl := range []float64{0.4, 0.6, 0.8, 1.0} {
		dp := NewDischargePath(tech, vwl, cond)
		res, err := dp.Discharge(1e-9, DefaultConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		final := res.Waveform.Final()[0]
		if final >= prev {
			t.Fatalf("VWL %g did not discharge deeper than previous (%g vs %g)", vwl, final, prev)
		}
		prev = final
	}
}

func TestDischargeSupplyLevels(t *testing.T) {
	tech := device.Generic65()
	for _, vdd := range []float64{0.9, 1.1} {
		cond := device.PVT{Corner: device.CornerTT, VDD: vdd, TempC: 27}
		dp := NewDischargePath(tech, 0.8, cond)
		res, err := dp.Discharge(0.2e-9, DefaultConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if start := res.Waveform.V[0][0]; math.Abs(start-vdd) > 1e-9 {
			t.Fatalf("precharge level %g, want %g", start, vdd)
		}
	}
}

func TestDischargeMismatchSpread(t *testing.T) {
	tech := device.Generic65()
	cond := device.Nominal()
	rng := stats.NewRNG(42)
	var acc stats.Accumulator
	for i := 0; i < 40; i++ {
		dp := NewDischargePath(tech, 1.0, cond)
		dp.SampleMismatch(rng)
		res, err := dp.Discharge(2e-9, DefaultConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(res.Waveform.Final()[0])
	}
	// Fig. 5d regime: a few mV of spread at 2 ns.
	if acc.StdDev() < 1e-3 || acc.StdDev() > 30e-3 {
		t.Fatalf("mismatch spread %g V outside plausible band", acc.StdDev())
	}
}

func TestClearMismatchRestoresNominal(t *testing.T) {
	tech := device.Generic65()
	dp := NewDischargePath(tech, 0.9, device.Nominal())
	ref, err := dp.Discharge(1e-9, DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	dp.SampleMismatch(stats.NewRNG(1))
	dp.ClearMismatch()
	res, err := dp.Discharge(1e-9, DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Waveform.Final()[0]-ref.Waveform.Final()[0]) > 1e-12 {
		t.Fatal("ClearMismatch did not restore the nominal device")
	}
}

func TestSRAMWriteFlipsBothWays(t *testing.T) {
	tech := device.Generic65()
	cond := device.Nominal()
	for _, bit := range []bool{false, true} {
		var cw *SRAMCellWrite
		if bit {
			cw = NewSRAMCellWrite(tech, cond.VDD, 0, cond)
		} else {
			cw = NewSRAMCellWrite(tech, 0, cond.VDD, cond)
		}
		ok, res, err := cw.Write(bit, 300e-12, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("write %v did not flip: final %v", bit, res.Waveform.Final())
		}
		if res.SupplyEnergy <= 0 {
			t.Fatalf("write supply energy %g, want positive", res.SupplyEnergy)
		}
	}
}

func TestSRAMHoldIsStable(t *testing.T) {
	// With both bit lines at VDD and the word line low, the cell must hold.
	tech := device.Generic65()
	cond := device.Nominal()
	cw := NewSRAMCellWrite(tech, cond.VDD, cond.VDD, cond)
	cw.VWL = 0 // access transistors off
	res, err := Transient(cw, cw.InitialStateHolding(true), 0, 1e-9, cond.VDD, DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Waveform.Final()
	if final[0] < 0.9*cond.VDD || final[1] > 0.1*cond.VDD {
		t.Fatalf("cell lost its state during hold: %v", final)
	}
}

func TestWaveformInterpolation(t *testing.T) {
	wf := NewWaveform(1)
	wf.Append(0, []float64{0})
	wf.Append(1, []float64{10})
	if got := wf.NodeAt(0, 0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("interp = %g, want 2.5", got)
	}
	if got := wf.NodeAt(0, -5); got != 0 {
		t.Fatalf("clamp low = %g", got)
	}
	if got := wf.NodeAt(0, 5); got != 10 {
		t.Fatalf("clamp high = %g", got)
	}
}

func TestWaveformCrossingTime(t *testing.T) {
	wf := NewWaveform(1)
	wf.Append(0, []float64{1})
	wf.Append(1, []float64{0})
	if got := wf.CrossingTime(0, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("crossing = %g, want 0.5", got)
	}
	if got := wf.CrossingTime(0, 2); got != -1 {
		t.Fatalf("impossible crossing = %g, want -1", got)
	}
}

func TestWaveformMonotonicTimeEnforced(t *testing.T) {
	wf := NewWaveform(1)
	wf.Append(1, []float64{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for decreasing time")
		}
	}()
	wf.Append(0.5, []float64{0})
}

func TestStepBudgetExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSteps = 3
	sys := rcSystem{tau: 1e-9}
	_, err := Transient(sys, []float64{1}, 0, 1e-6, 1, cfg, 0)
	if !errors.Is(err, ErrSteps) {
		t.Fatalf("err = %v, want ErrSteps", err)
	}
}

func TestDeviceEvalsCounted(t *testing.T) {
	dp := NewDischargePath(device.Generic65(), 0.8, device.Nominal())
	res, err := dp.Discharge(0.5e-9, DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceEvals < res.Steps*6 {
		t.Fatalf("device evals %d < steps %d × 6", res.DeviceEvals, res.Steps)
	}
}
