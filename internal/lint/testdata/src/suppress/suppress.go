// Package suppress is the expected-diagnostic corpus for the suppression
// machinery: a reasoned //lint:ignore silences its finding, a reasonless or
// misspelled one is itself a finding and silences nothing.
package suppress

import "time"

// goodSuppression documents why the invariant does not apply; the finding
// on the next line is silenced.
func goodSuppression() int64 {
	//lint:ignore determinism this fixture exercises a reasoned suppression; the timestamp goes nowhere
	return time.Now().UnixNano()
}

// missingReason forgets the mandatory reason: the directive itself becomes
// a finding, and it suppresses nothing.
func missingReason() int64 {
	//lint:ignore determinism
	// wantabove "has no reason"
	return time.Now().UnixNano() // want "time.Now"
}

// unknownAnalyzer misspells the analyzer name: same deal.
func unknownAnalyzer() int64 {
	//lint:ignore determinsm typo in the analyzer name
	// wantabove "unknown analyzer"
	return time.Now().UnixNano() // want "time.Now"
}
