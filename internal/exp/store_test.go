package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optima/internal/device"
	"optima/internal/dse"
)

// newCachedContext builds a fresh session over the shared quick-calibrated
// model with the persistent result store rooted at dir — the test analogue
// of one `optima <cmd> -cache-dir dir` invocation.
func newCachedContext(t *testing.T, dir string) *Context {
	t.Helper()
	base := testContext(t)
	ctx := NewContextWithModel(base.Model, base.Tech)
	ctx.CacheDir = dir
	return ctx
}

// TestStorePersistsAcrossSessions is the PR's acceptance scenario: a second
// session over the same cache directory (`optima all -cache-dir` after
// `optima dse -cache-dir`) performs zero backend evaluations for shared
// corners, and corrupting the store's tail degrades to recomputation —
// never to a wrong or failed run.
func TestStorePersistsAcrossSessions(t *testing.T) {
	dir := t.TempDir()

	// Session 1 — the `optima dse` role: sweep the 48-corner grid cold.
	ctx1 := newCachedContext(t, dir)
	mets1, err := ctx1.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if ctx1.Store() == nil {
		t.Fatal("CacheDir set but no store attached")
	}
	st := ctx1.Engine().Stats()
	if st.Misses != 48 || st.DiskHits != 0 {
		t.Fatalf("cold session stats %+v, want 48 misses", st)
	}
	if got := ctx1.Store().Len(); got != 48 {
		t.Fatalf("store holds %d results after the sweep, want 48", got)
	}
	if err := ctx1.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2 — the `optima all` role: the shared corners cost zero
	// backend evaluations (0 engine misses), and a condition sweep that
	// revisits the nominal point is disk-served too.
	ctx2 := newCachedContext(t, dir)
	mets2, err := ctx2.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	st = ctx2.Engine().Stats()
	if st.Misses != 0 {
		t.Fatalf("warm session re-evaluated %d corners, want 0 (stats %+v)", st.Misses, st)
	}
	if st.DiskHits != 48 {
		t.Fatalf("warm session stats %+v, want 48 disk hits", st)
	}
	for i := range mets1 {
		if mets1[i] != mets2[i] {
			t.Fatalf("disk-served corner %d differs from computed corner", i)
		}
	}
	sel, err := ctx2.Selection()
	if err != nil {
		t.Fatal(err)
	}
	vdds := []float64{device.NominalVDD} // nominal: already persisted
	if _, err := dse.SweepVDD(ctx2.Engine(), sel.FOM.Config, vdds); err != nil {
		t.Fatal(err)
	}
	if st = ctx2.Engine().Stats(); st.Misses != 0 {
		t.Fatalf("nominal revisit missed the store: %+v", st)
	}
	if err := ctx2.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the store's tails (torn final records). Session 3 must still
	// return byte-identical metrics, recomputing only the damage.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, seg := range segs {
		fi, err := os.Stat(seg)
		if err != nil || fi.Size() < 20 {
			continue
		}
		if err := os.Truncate(seg, fi.Size()-9); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no segment was corrupted; test is vacuous")
	}
	ctx3 := newCachedContext(t, dir)
	mets3, err := ctx3.Sweep()
	if err != nil {
		t.Fatalf("corrupt store tail must not fail the run: %v", err)
	}
	st = ctx3.Engine().Stats()
	if st.Misses == 0 {
		t.Fatal("torn tail records should force some recomputation")
	}
	if st.Misses+st.DiskHits != 48 {
		t.Fatalf("healed session stats %+v do not cover the grid", st)
	}
	for i := range mets1 {
		if mets1[i] != mets3[i] {
			t.Fatalf("post-corruption corner %d differs — wrong results are never acceptable", i)
		}
	}
	if err := ctx3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreFingerprintSeparatesCalibrations: a context over a *different*
// model (here: a perturbed copy) must not consume the first session's
// results.
func TestStoreFingerprintSeparatesCalibrations(t *testing.T) {
	dir := t.TempDir()
	ctx1 := newCachedContext(t, dir)
	if _, err := ctx1.Sweep(); err != nil {
		t.Fatal(err)
	}
	fp1 := ctx1.Fingerprint()
	if err := ctx1.Close(); err != nil {
		t.Fatal(err)
	}

	base := testContext(t)
	perturbed := *base.Model
	perturbed.Discharge.VthRef += 1e-3 // a recalibration that shifts results
	ctx2 := NewContextWithModel(&perturbed, base.Tech)
	ctx2.CacheDir = dir
	if ctx2.Fingerprint() == fp1 {
		t.Fatal("fingerprint blind to the model content")
	}
	if _, err := ctx2.Sweep(); err != nil {
		t.Fatal(err)
	}
	st := ctx2.Engine().Stats()
	if st.DiskHits != 0 {
		t.Fatalf("stale calibration served %d results", st.DiskHits)
	}
	if st.Misses != 48 {
		t.Fatalf("stats %+v, want a full recomputation", st)
	}
	if err := ctx2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreOpenFailureDegrades: an unusable cache directory produces a
// working (memory-only) session, not a failed run.
func TestStoreOpenFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	// A file where the store directory should be makes Open fail.
	blocked := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := newCachedContext(t, blocked)
	if _, err := ctx.Sweep(); err != nil {
		t.Fatalf("store open failure must degrade, not fail: %v", err)
	}
	if ctx.Store() != nil {
		t.Fatal("store unexpectedly attached")
	}
	// The cause stays queryable for long-lived callers (optima-server
	// reports it on /api/status), not just logged once at startup.
	if err := ctx.StoreError(); err == nil || !strings.Contains(err.Error(), "persistent result store disabled") {
		t.Fatalf("StoreError() = %v, want the disabled-store cause", err)
	}
	if st := ctx.Engine().Stats(); st.Misses != 48 {
		t.Fatalf("memory-only session stats %+v", st)
	}
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}
}
