package search

import (
	"context"
	"fmt"
	"math"
	"sort"

	"optima/internal/device"
	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/mult"
	"optima/internal/obs"
)

// Options configures a search run. Screen is required; everything else has
// a sensible default.
type Options struct {
	// Space is the explored design space.
	Space Space
	// Cond is the operating condition every corner is scored at; the zero
	// value means device.Nominal(). Ignored when Conditions is non-empty.
	Cond device.PVT
	// Conditions switches the search to the cross-condition evaluation
	// plane: every rung screens its candidates at EVERY condition of the set
	// (one engine matrix batch per rung) and, when the set has more than one
	// condition, survivors are selected by Pareto rank on the worst-case
	// (ϵ_mul, E_mul) over the set — the robust mode, ranking designs by
	// their worst PVT excursion instead of their nominal showing. Finalists
	// are promoted to the Final engine at every condition. Empty means the
	// single condition Cond.
	Conditions engine.ConditionSet
	// Screen is the cheap-fidelity engine every rung's candidates are
	// submitted to (behavioral in the CLI wiring).
	Screen *engine.Engine
	// Final is the optional high-fidelity engine (golden in the CLI wiring):
	// when set, the finalists surviving the last rung are re-evaluated on it
	// and the returned front is at its fidelity. When nil, the front is at
	// screen fidelity.
	Final *engine.Engine
	// Budget caps the rung-0 candidate count; a space larger than the
	// budget is sampled deterministically (Seed). <= 0 means the full space.
	Budget int
	// Rungs is the number of screening rounds (default DefaultRungs). Each
	// rung evaluates its pool through the screen engine and keeps
	// ceil(n0/Eta^(rung+1)) survivors.
	Rungs int
	// Eta is the halving ratio between rungs (default DefaultEta; must
	// exceed 1).
	Eta float64
	// Finalists caps how many survivors of the last rung are promoted to
	// the final fidelity. <= 0 keeps the last rung's natural survivor count.
	Finalists int
	// Refine, when true, inserts per-axis midpoint candidates around each
	// rung's survivors (linear or geometric per the axis), letting the
	// search sharpen resolution beyond the initial lattice. New candidates
	// per rung are capped at the survivor count (seeded sampling).
	Refine bool
	// Seed drives candidate sampling and refinement capping (any value is
	// fine, including 0).
	Seed uint64
	// OnRung, when non-nil, is called after each rung completes — screening
	// rungs in order, then the fidelity-promotion pass — with that rung's
	// stats. It is the live-progress hook the optima-server streams over
	// WebSocket. Called synchronously from Run; keep it fast.
	OnRung func(RungStats)
	// OnProgress, when non-nil, receives per-cell progress within a rung:
	// rung is the rung index (the promotion pass reuses the next index, like
	// RungStats.Rung), and done/total count resolved (config × condition)
	// cells of the rung's batch. Calls are serialized per rung but arrive
	// from engine worker goroutines; keep the callback fast.
	OnProgress func(rung, done, total int)
	// Recorder, when non-nil, records the run's telemetry: a search span
	// with one child span per rung (and the promotion pass), each parenting
	// its engine batch. Timing never feeds into the Result — it is
	// byte-identical with or without a recorder, at any worker count.
	Recorder *obs.Recorder
	// Span parents the search span (0 = root) — the server's job span.
	Span obs.SpanID
}

// Validate checks the options for values a caller — the CLI flag layer or
// the server's JSON decoding — may produce from untrusted input. Zero
// values mean defaults (full space, DefaultRungs, DefaultEta, the last
// rung's natural survivor count); negative values and sub-unity halving
// ratios are rejected with descriptive errors rather than silently clamped
// into a run the caller did not ask for. Run validates implicitly.
func (o Options) Validate() error {
	if o.Screen == nil {
		return fmt.Errorf("search: Options.Screen engine is required")
	}
	if o.Budget < 0 {
		return fmt.Errorf("search: budget %d must be >= 0 (0 means the full space)", o.Budget)
	}
	if o.Rungs < 0 {
		return fmt.Errorf("search: rungs %d must be >= 0 (0 means the default %d)", o.Rungs, DefaultRungs)
	}
	if o.Finalists < 0 {
		return fmt.Errorf("search: finalists %d must be >= 0 (0 means the last rung's survivor count)", o.Finalists)
	}
	if o.Eta != 0 {
		if math.IsNaN(o.Eta) || math.IsInf(o.Eta, 0) {
			return fmt.Errorf("search: non-finite halving ratio %v", o.Eta)
		}
		if o.Eta <= 1 {
			return fmt.Errorf("search: halving ratio eta %v must exceed 1 (0 means the default %v)", o.Eta, DefaultEta)
		}
	}
	return nil
}

// Defaults for Options.
const (
	DefaultRungs = 3
	DefaultEta   = 2.0
)

// RungStats records one rung's evaluation accounting — the
// exhaustive-vs-adaptive evidence the Trace exists for.
type RungStats struct {
	// Rung indexes screening rungs from 0; the fidelity-promotion pass (if
	// any) is the last entry and reuses the next index.
	Rung int
	// Fidelity is the backend name the rung's engine evaluated on.
	Fidelity string
	// Candidates is the number of corners submitted this rung. In robust
	// mode each candidate is evaluated at every condition of the set, so the
	// rung's job count is Candidates × Conditions.
	Candidates int
	// Conditions is the size of the condition set the rung evaluated across
	// (1 for a nominal search).
	Conditions int
	// Evaluated counts candidates that ran the backend (engine cache
	// misses attributed to this rung).
	Evaluated uint64
	// CacheHits counts candidates served by the engine's in-memory tier.
	CacheHits uint64
	// StoreHits counts candidates served by the persistent store tier.
	StoreHits uint64
	// Promoted is how many survivors this rung passed on.
	Promoted int
	// Final marks the fidelity-promotion pass (the Final engine), so the
	// trace distinguishes it even when screen and final backends share a
	// name (as test doubles do).
	Final bool
}

// Trace is the per-rung evaluation record of a search run.
type Trace struct {
	// SpaceSize is the valid-corner count of the full space — what an
	// exhaustive sweep would evaluate (per condition).
	SpaceSize int
	// Conditions is the canonical spec of the condition set the search
	// evaluated across (engine.ConditionSet.String).
	Conditions string
	// Sampled is the rung-0 candidate count after the budget cap.
	Sampled int
	// Rungs holds the per-rung stats, screening rungs first, the
	// fidelity-promotion pass (when a Final engine is set) last.
	Rungs []RungStats
}

// ScreenEvaluations sums backend evaluations across screening rungs.
func (t Trace) ScreenEvaluations() uint64 {
	var n uint64
	for _, r := range t.Rungs {
		if !r.Final {
			n += r.Evaluated
		}
	}
	return n
}

// FinalEvaluations returns the backend evaluations of the promotion pass.
func (t Trace) FinalEvaluations() uint64 {
	var n uint64
	for _, r := range t.Rungs {
		if r.Final {
			n += r.Evaluated
		}
	}
	return n
}

// Result is a search outcome.
type Result struct {
	// Front is the Pareto front over the finalists in (EpsMul, EMul), at
	// the highest fidelity evaluated, sorted by energy (dse.ParetoFront).
	// In robust mode the entries are worst-case composites
	// (dse.RobustMetrics.Score): EpsMul and EMul carry the worst-case
	// values over the condition set and Cond the arg-worst-ϵ condition.
	Front []dse.Metrics
	// Finalists holds every promoted corner's metrics at the final
	// fidelity, in deterministic candidate order (Front is a subset). In
	// robust mode these are the worst-case composites.
	Finalists []dse.Metrics
	// Robust holds the finalists' full cross-condition summaries (per-
	// condition metrics, arg-worst conditions, spreads) when the search ran
	// in robust mode — same order as Finalists. Nil for a nominal search.
	Robust []dse.RobustMetrics
	// Trace is the per-rung accounting.
	Trace Trace
}

// Run explores the space. See the package comment for the algorithm; the
// result is deterministic for fixed Options regardless of the engines'
// worker counts or an attached store's prior contents. Cancelling ctx
// aborts the run between cells: evaluations already on a backend complete
// (and persist, keeping the store consistent), unstarted ones are
// abandoned, and Run returns the context's error — a rerun of the same
// options resumes from the warm cache tiers.
func Run(ctx context.Context, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	rungs := opts.Rungs
	if rungs == 0 {
		rungs = DefaultRungs
	}
	eta := opts.Eta
	if eta == 0 {
		eta = DefaultEta
	}
	conds := opts.Conditions
	if conds.Len() == 0 {
		cond := opts.Cond
		if cond == (device.PVT{}) {
			cond = device.Nominal()
		}
		var err error
		if conds, err = engine.NewConditionSet(cond); err != nil {
			return nil, fmt.Errorf("search: %w", err)
		}
	}
	// Robust mode: more than one condition — rank by worst-case excursion.
	robust := conds.Len() > 1

	all, err := opts.Space.Configs()
	if err != nil {
		return nil, err
	}
	pool := sampleSubset(all, opts.Budget, opts.Seed)
	n0 := len(pool)
	trace := Trace{SpaceSize: len(all), Conditions: conds.String(), Sampled: n0}

	rec := opts.Recorder
	var searchArg string
	if rec != nil {
		searchArg = fmt.Sprintf("%d candidates, %d conditions", n0, conds.Len())
	}
	searchSpan := rec.StartSpan(opts.Span, obs.CatSearch, "adaptive-search", searchArg)
	defer searchSpan.End()

	// seen tracks every corner that has entered any rung's pool, so
	// refinement never proposes a duplicate.
	seen := make(map[mult.Config]bool, 2*n0)
	for _, c := range pool {
		seen[c] = true
	}
	var ref *refiner
	if opts.Refine {
		ref = newRefiner(opts.Space)
	}

	var survivors []mult.Config
	var survivorMets []dse.Metrics
	var survivorRobust []dse.RobustMetrics
	for r := 0; r < rungs; r++ {
		// The engine surfaces a cancellation that lands mid-batch; this
		// check catches one landing between rungs, where a fully cached
		// batch would otherwise let the run continue.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("search: %w", err)
		}
		var rungArg string
		if rec != nil {
			rungArg = fmt.Sprintf("%d candidates", len(pool))
		}
		rungSpan := rec.StartSpan(searchSpan.ID(), obs.CatRung, fmt.Sprintf("rung-%d", r), rungArg)
		mets, rms, stats, err := evaluateRung(ctx, opts.Screen, pool, conds, robust, r, opts.OnProgress, rec, rungSpan.ID())
		rungSpan.End()
		if err != nil {
			return nil, err
		}
		// Successive-halving schedule: survivors shrink by eta per rung
		// relative to the initial pool, independent of refinement growth.
		keep := int(math.Ceil(float64(n0) / math.Pow(eta, float64(r+1))))
		if keep < 1 {
			keep = 1
		}
		if keep > len(pool) {
			keep = len(pool)
		}
		if r == rungs-1 && opts.Finalists > 0 && keep > opts.Finalists {
			keep = opts.Finalists
		}
		order := paretoOrder(mets)
		pick := append([]int(nil), order[:keep]...)
		sort.Ints(pick) // survivors stay in pool (grid) order
		survivors = make([]mult.Config, keep)
		survivorMets = make([]dse.Metrics, keep)
		if robust {
			survivorRobust = make([]dse.RobustMetrics, keep)
		}
		for i, idx := range pick {
			survivors[i] = pool[idx]
			survivorMets[i] = mets[idx]
			if robust {
				survivorRobust[i] = rms[idx]
			}
		}

		stats.Rung = r
		stats.Promoted = keep
		trace.Rungs = append(trace.Rungs, stats)
		if opts.OnRung != nil {
			opts.OnRung(stats)
		}

		if r == rungs-1 {
			break
		}
		pool = survivors
		if ref != nil {
			// Cap refinement growth at the survivor count so pools shrink
			// geometrically; the cap samples deterministically per rung, and
			// only the kept proposals commit into the refiner — a dropped
			// proposal stays eligible for later rungs.
			props := sampleSubset(ref.Around(survivors, seen), keep, opts.Seed+uint64(r)+1)
			pool = append(append([]mult.Config(nil), survivors...), ref.Commit(props, seen)...)
		}
	}

	res := &Result{Trace: trace}
	if opts.Final != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("search: %w", err)
		}
		// Promote the finalists to the final fidelity at EVERY condition of
		// the set, so the robust ranking at the high fidelity sees the same
		// excursions the screen ranked on.
		var promoteArg string
		if rec != nil {
			promoteArg = fmt.Sprintf("%d finalists", len(survivors))
		}
		promoteSpan := rec.StartSpan(searchSpan.ID(), obs.CatRung, "promote", promoteArg)
		fmets, frobust, stats, err := evaluateRung(ctx, opts.Final, survivors, conds, robust, rungs, opts.OnProgress, rec, promoteSpan.ID())
		promoteSpan.End()
		if err != nil {
			return nil, err
		}
		stats.Rung = rungs
		stats.Final = true
		stats.Promoted = len(fmets)
		res.Trace.Rungs = append(res.Trace.Rungs, stats)
		if opts.OnRung != nil {
			opts.OnRung(stats)
		}
		res.Finalists = fmets
		res.Robust = frobust
	} else {
		res.Finalists = survivorMets
		res.Robust = survivorRobust
	}
	res.Front = dse.ParetoFront(res.Finalists)
	return res, nil
}

// evaluateRung submits one rung's pool × conditions as a single engine
// matrix batch and attributes the engine's accounting delta to the rung.
// The returned metrics are the rung's selection scores, in pool order: the
// per-config metrics at the single condition of a nominal search, or the
// worst-case composites (dse.RobustMetrics.Score) in robust mode — in which
// case the full cross-condition summaries are returned alongside.
func evaluateRung(ctx context.Context, eng *engine.Engine, pool []mult.Config, conds engine.ConditionSet, robust bool, rung int, onProgress func(rung, done, total int), rec *obs.Recorder, parent obs.SpanID) ([]dse.Metrics, []dse.RobustMetrics, RungStats, error) {
	bo := engine.BatchOptions{Ctx: ctx, Recorder: rec, ParentSpan: parent}
	if onProgress != nil {
		bo.OnProgress = func(done, total int) { onProgress(rung, done, total) }
	}
	pre := eng.Stats()
	mat, err := eng.EvaluateMatrixOpts(pool, conds, bo)
	if err != nil {
		return nil, nil, RungStats{}, fmt.Errorf("search: %w", err)
	}
	d := eng.Stats().Sub(pre)
	stats := RungStats{
		Fidelity:   eng.Backend().Name(),
		Candidates: len(pool),
		Conditions: conds.Len(),
		Evaluated:  d.Misses,
		CacheHits:  d.Hits,
		StoreHits:  d.DiskHits,
	}
	if !robust {
		return mat.Col(0), nil, stats, nil
	}
	rms := dse.RobustFromMatrix(mat)
	scores := make([]dse.Metrics, len(rms))
	for i, r := range rms {
		scores[i] = r.Score()
	}
	return scores, rms, stats, nil
}

// paretoOrder returns the candidate indices ordered best-first: ascending
// non-dominated rank in (EpsMul, EMul), then descending crowding distance
// within a rank, then ascending index. The order is a deterministic
// function of the metrics alone — the selection half of the search's
// worker-invariance contract.
func paretoOrder(mets []dse.Metrics) []int {
	n := len(mets)
	rank := paretoRanks(mets)
	crowd := crowdingDistances(mets, rank)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if rank[ia] != rank[ib] {
			return rank[ia] < rank[ib]
		}
		if crowd[ia] != crowd[ib] {
			return crowd[ia] > crowd[ib]
		}
		return ia < ib
	})
	return order
}

// dominates reports Pareto dominance of a over b in (EpsMul, EMul).
func dominates(a, b dse.Metrics) bool {
	return a.EpsMul <= b.EpsMul && a.EMul <= b.EMul &&
		(a.EpsMul < b.EpsMul || a.EMul < b.EMul)
}

// paretoRanks peels non-dominated fronts: rank 0 is the Pareto front, rank
// 1 the front of the rest, and so on (the NSGA-II layering).
func paretoRanks(mets []dse.Metrics) []int {
	n := len(mets)
	rank := make([]int, n)
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	for level := 0; len(remaining) > 0; level++ {
		var front, rest []int
		for _, i := range remaining {
			dominated := false
			for _, j := range remaining {
				if i != j && dominates(mets[j], mets[i]) {
					dominated = true
					break
				}
			}
			if dominated {
				rest = append(rest, i)
			} else {
				front = append(front, i)
			}
		}
		if len(front) == 0 {
			// Cannot happen with a strict dominance relation (every finite
			// poset has minimal elements); guard against infinite loops if
			// metrics contain NaN, which breaks the order axioms.
			for _, i := range rest {
				rank[i] = level
			}
			break
		}
		for _, i := range front {
			rank[i] = level
		}
		remaining = rest
	}
	return rank
}

// crowdingDistances computes the per-candidate crowding distance within its
// rank: boundary candidates (per objective) get +Inf, interior ones the sum
// of normalized neighbor gaps — NSGA-II's diversity pressure, which keeps
// the survivor set spread along the front instead of clustered.
func crowdingDistances(mets []dse.Metrics, rank []int) []float64 {
	n := len(mets)
	crowd := make([]float64, n)
	byRank := map[int][]int{}
	for i, r := range rank {
		byRank[r] = append(byRank[r], i)
	}
	for _, members := range byRank {
		if len(members) <= 2 {
			for _, i := range members {
				crowd[i] = math.Inf(1)
			}
			continue
		}
		for _, obj := range []func(dse.Metrics) float64{
			func(m dse.Metrics) float64 { return m.EpsMul },
			func(m dse.Metrics) float64 { return m.EMul },
		} {
			idx := append([]int(nil), members...)
			sort.SliceStable(idx, func(a, b int) bool {
				va, vb := obj(mets[idx[a]]), obj(mets[idx[b]])
				if va != vb {
					return va < vb
				}
				return idx[a] < idx[b]
			})
			lo, hi := obj(mets[idx[0]]), obj(mets[idx[len(idx)-1]])
			crowd[idx[0]] = math.Inf(1)
			crowd[idx[len(idx)-1]] = math.Inf(1)
			if span := hi - lo; span > 0 {
				for k := 1; k < len(idx)-1; k++ {
					gap := (obj(mets[idx[k+1]]) - obj(mets[idx[k-1]])) / span
					crowd[idx[k]] += gap
				}
			}
		}
	}
	return crowd
}
