package store

import (
	"encoding/binary"
	"strings"
	"testing"

	"optima/internal/engine"
	"optima/internal/obs"
)

// TestOpenSurfacesMigrationCount is the PR's small-fix contract: work the
// store does silently at open — v1 migration, torn-tail repair — is
// reported through Stats (and the recorder's counters) instead of being
// swallowed.
func TestOpenSurfacesMigrationCount(t *testing.T) {
	dir := t.TempDir()
	writeV1Store(t, dir, 3, map[string][]engine.CacheEntry{"fp-a": v1Entries(20)})

	rec := obs.NewRecorder(obs.RecorderOptions{})
	s, err := Open(dir, Options{Fingerprint: "fp-a", Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st := s.Stats()
	if st.Migrated != 3 {
		t.Errorf("Stats.Migrated = %d, want 3 (every v1 segment)", st.Migrated)
	}
	if !strings.Contains(st.String(), "migrated") {
		t.Errorf("Stats.String() %q does not mention the migration", st.String())
	}
	ctr := rec.Metrics().Counter("optima_store_migrated_segments_total", "")
	if got := ctr.Value(); got != 3 {
		t.Errorf("migrated counter = %v, want 3", got)
	}

	// Reopening the migrated directory does no further work.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Migrated; got != 0 {
		t.Errorf("second open migrated %d segments, want 0", got)
	}
}

func TestOpenSurfacesTornTailCount(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp-a"})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, 30)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segments(t, dir)
	torn := make([]byte, recordHeaderLen+10)
	binary.LittleEndian.PutUint32(torn, uint32(recordBodyFixedLen+20))
	appendBytes(t, segs[0], torn)

	rec := obs.NewRecorder(obs.RecorderOptions{})
	s, err = Open(dir, Options{Fingerprint: "fp-a", Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Stats().TornTails; got != 1 {
		t.Errorf("Stats.TornTails = %d, want 1", got)
	}
	if !strings.Contains(s.Stats().String(), "torn") {
		t.Errorf("Stats.String() %q does not mention the repair", s.Stats().String())
	}
	if got := rec.Metrics().Counter("optima_store_torn_tails_total", "").Value(); got != 1 {
		t.Errorf("torn-tail counter = %v, want 1", got)
	}
}

// TestStoreAccessCounters checks the hot-path instruments: per-Get
// hit/miss counters and the put-record counter, plus the span categories
// the store records at open and on writes.
func TestStoreAccessCounters(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderOptions{})
	s, err := Open(t.TempDir(), Options{Fingerprint: "fp-a", Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	fillStore(t, s, 10)
	for i := 0; i < 10; i++ {
		if _, ok := s.Get(testKey(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
	s.Get(testKey(999)) // miss

	reg := rec.Metrics()
	if got := reg.Counter("optima_store_gets_total", "", "result", "hit").Value(); got != 10 {
		t.Errorf("get hits = %v, want 10", got)
	}
	if got := reg.Counter("optima_store_gets_total", "", "result", "miss").Value(); got != 1 {
		t.Errorf("get misses = %v, want 1", got)
	}
	if got := reg.Counter("optima_store_put_records_total", "").Value(); got != 10 {
		t.Errorf("put records = %v, want 10", got)
	}

	var sawOpen bool
	for _, sp := range rec.Snapshot() {
		if sp.Cat == obs.CatStore && sp.Name == "open" {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Error("no store open span recorded")
	}
}
