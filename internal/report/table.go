// Package report renders experiment artifacts: aligned text tables, CSV
// files, ASCII line charts for terminal inspection, and standalone SVG
// charts — everything the cmd tools and benchmarks use to regenerate the
// paper's figures and tables.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table with an optional title.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the formatted table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		line(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes the table as comma-separated values (RFC-4180 quoting for
// cells containing commas or quotes).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}
