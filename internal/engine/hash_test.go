package engine

import (
	"hash/fnv"
	"math"
	"testing"

	"optima/internal/device"
	"optima/internal/mult"
)

// refHash is the reference implementation Key.Hash must match: hash/fnv
// over the backend name and a little-endian scratch of the numeric fields —
// the exact stream the store's partition router historically hashed, so
// existing store directories keep their partition residency.
func refHash(k Key) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k.Backend))
	var scratch [8 * 6]byte
	vals := [...]uint64{
		math.Float64bits(k.Config.Tau0),
		math.Float64bits(k.Config.VDAC0),
		math.Float64bits(k.Config.VDACFS),
		uint64(k.Cond.Corner),
		math.Float64bits(k.Cond.VDD),
		math.Float64bits(k.Cond.TempC),
	}
	for i, v := range vals {
		for b := 0; b < 8; b++ {
			scratch[i*8+b] = byte(v >> (8 * b))
		}
	}
	h.Write(scratch[:])
	return h.Sum64()
}

func hashTestKeys() []Key {
	conds := []device.PVT{
		device.Nominal(),
		{Corner: device.CornerSS, VDD: 0.9, TempC: 60},
		{Corner: device.CornerFF, VDD: 1.1, TempC: 0},
	}
	var keys []Key
	for i := 0; i < 64; i++ {
		keys = append(keys, Key{
			Backend: []string{BackendBehavioral, BackendGolden, "fake"}[i%3],
			Job: Job{
				Config: mult.Config{
					Tau0:   float64(i+1) * 0.04e-9,
					VDAC0:  0.25 + float64(i%5)*0.05,
					VDACFS: 0.7 + float64(i%4)*0.1,
				},
				Cond: conds[i%len(conds)],
			},
		})
	}
	// Edge patterns: zero value, negative zero, denormals, huge values.
	keys = append(keys,
		Key{},
		Key{Backend: "", Job: Job{Config: mult.Config{Tau0: math.Copysign(0, -1)}}},
		Key{Backend: "x", Job: Job{Config: mult.Config{Tau0: 5e-324, VDACFS: math.MaxFloat64}}},
	)
	return keys
}

// TestKeyHashMatchesReference pins the frozen byte stream: the inlined
// FNV-1a must agree with hash/fnv on every field pattern, or existing
// stores silently remap their records across partitions.
func TestKeyHashMatchesReference(t *testing.T) {
	for _, k := range hashTestKeys() {
		if got, want := k.Hash(), refHash(k); got != want {
			t.Fatalf("Hash(%+v) = %#x, reference fnv gives %#x", k, got, want)
		}
	}
}

// TestKeyHashDistinguishesKeys guards against degenerate mixing: distinct
// keys in a realistic population must not collide.
func TestKeyHashDistinguishesKeys(t *testing.T) {
	seen := map[uint64]Key{}
	for _, k := range hashTestKeys() {
		if prev, ok := seen[k.Hash()]; ok && prev != k {
			t.Fatalf("hash collision between %+v and %+v", prev, k)
		}
		seen[k.Hash()] = k
	}
	if len(seen) < 60 {
		t.Fatalf("only %d distinct hashes over the test population", len(seen))
	}
}

var hashSink uint64

// TestKeyHashZeroAlloc is the satellite's allocs/op assertion: routing a
// key to its partition must never allocate (the v1 router paid a fresh
// fnv.New64a hasher per lookup).
func TestKeyHashZeroAlloc(t *testing.T) {
	key := Key{
		Backend: BackendBehavioral,
		Job: Job{
			Config: mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0},
			Cond:   device.Nominal(),
		},
	}
	allocs := testing.AllocsPerRun(1000, func() {
		hashSink = key.Hash()
	})
	if allocs != 0 {
		t.Fatalf("Key.Hash allocates %.1f objects per call, want 0", allocs)
	}
}
