package dse

import (
	"fmt"

	"optima/internal/device"
	"optima/internal/engine"
	"optima/internal/mult"
	"optima/internal/stats"
)

// RobustMetrics summarizes one configuration across an operating condition
// set — the cross-condition view the paper's Fig. 8 motivates: the best
// nominal corner is not the best corner under PVT excursion, so robust
// ranking scores each config by its worst condition, not its nominal one.
type RobustMetrics struct {
	Config mult.Config
	// Conds is the condition set the summary spans.
	Conds engine.ConditionSet
	// PerCond holds the per-condition metrics in set order.
	PerCond []Metrics
	// WorstEps is the largest ϵ_mul over the set; WorstEpsCond is the first
	// condition (in set order) attaining it — the arg-worst excursion.
	WorstEps     float64
	WorstEpsCond device.PVT
	// WorstEMul / WorstEMulCond are the same for E_mul.
	WorstEMul     float64
	WorstEMulCond device.PVT
	// MeanEps / MeanEMul average the metric over the set.
	MeanEps, MeanEMul float64
	// SpreadEps / SpreadEMul are max − min over the set — how asymmetrically
	// the config degrades across the excursions.
	SpreadEps, SpreadEMul float64
}

// WorstFOM is Eq. 9 evaluated at the worst-case corner of each metric:
// 1/(worst ϵ_mul · worst E_mul), the robust analogue of Metrics.FOM.
func (r RobustMetrics) WorstFOM() float64 {
	if r.WorstEps <= 0 || r.WorstEMul <= 0 {
		return 0
	}
	return 1 / (r.WorstEps * r.WorstEMul * 1e15)
}

// Score projects the summary onto the (EpsMul, EMul) plane the selection and
// Pareto machinery rank on: EpsMul and EMul carry the worst-case values and
// Cond the arg-worst-ϵ condition. Only those fields (and Config) are
// populated — the composite is a ranking view, not an evaluation result.
func (r RobustMetrics) Score() Metrics {
	return Metrics{
		Config: r.Config,
		Cond:   r.WorstEpsCond,
		EpsMul: r.WorstEps,
		EMul:   r.WorstEMul,
	}
}

// RobustFromMatrix reduces an evaluated (config × condition) matrix to the
// per-config cross-condition summaries, in matrix config order.
func RobustFromMatrix(m *engine.Matrix) []RobustMetrics {
	out := make([]RobustMetrics, len(m.Configs))
	for i, cfg := range m.Configs {
		row := m.Row(i)
		r := RobustMetrics{
			Config:  cfg,
			Conds:   m.Conds,
			PerCond: append([]Metrics(nil), row...),
		}
		var epsAcc, eAcc stats.Accumulator
		minEps, minE := row[0].EpsMul, row[0].EMul
		r.WorstEps, r.WorstEpsCond = row[0].EpsMul, m.Conds.At(0)
		r.WorstEMul, r.WorstEMulCond = row[0].EMul, m.Conds.At(0)
		for j, met := range row {
			epsAcc.Add(met.EpsMul)
			eAcc.Add(met.EMul)
			if met.EpsMul > r.WorstEps {
				r.WorstEps, r.WorstEpsCond = met.EpsMul, m.Conds.At(j)
			}
			if met.EMul > r.WorstEMul {
				r.WorstEMul, r.WorstEMulCond = met.EMul, m.Conds.At(j)
			}
			if met.EpsMul < minEps {
				minEps = met.EpsMul
			}
			if met.EMul < minE {
				minE = met.EMul
			}
		}
		r.MeanEps, r.MeanEMul = epsAcc.Mean(), eAcc.Mean()
		r.SpreadEps, r.SpreadEMul = r.WorstEps-minEps, r.WorstEMul-minE
		out[i] = r
	}
	return out
}

// RobustSweep evaluates every corner of the grid at every condition of the
// set through the engine's matrix path — one batch spanning the whole
// (config × condition) plane — and returns the per-config summaries in grid
// order. It is the cross-condition generalization of SweepWith: the same
// grid, the same cache keys, one extra axis.
func RobustSweep(eng *engine.Engine, grid Grid, conds engine.ConditionSet) ([]RobustMetrics, error) {
	cfgs := grid.Configs()
	if len(cfgs) == 0 {
		return nil, grid.Validate()
	}
	mat, err := eng.EvaluateMatrix(cfgs, conds)
	if err != nil {
		return nil, fmt.Errorf("dse: robust sweep: %w", err)
	}
	return RobustFromMatrix(mat), nil
}

// RobustParetoFront returns the summaries not dominated in
// (WorstEps, WorstEMul), sorted by worst-case energy — ParetoFront applied
// to the worst-case projections (Score), so there is exactly one dominance
// implementation to maintain. Configs are assumed distinct (grid corners
// are); duplicated configs would collapse onto one summary.
func RobustParetoFront(rms []RobustMetrics) []RobustMetrics {
	scores := make([]Metrics, len(rms))
	byConfig := make(map[mult.Config]RobustMetrics, len(rms))
	for i, r := range rms {
		scores[i] = r.Score()
		byConfig[r.Config] = r
	}
	front := ParetoFront(scores)
	out := make([]RobustMetrics, len(front))
	for i, m := range front {
		out[i] = byConfig[m.Config]
	}
	return out
}
