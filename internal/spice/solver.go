// Package spice is the golden reference simulator of the repository: a
// small transient nodal simulator that integrates the analog differential
// equations of the SRAM discharge and write circuits. It stands in for the
// Cadence Virtuoso + TSMC 65 nm flow the paper uses to generate calibration
// data and to benchmark OPTIMA's speed-up against.
//
// The solver is an adaptive Cash–Karp Runge–Kutta (RK45) integrator over
// explicit capacitor-node ODE systems. It is deliberately a "slow but
// trustworthy" reference: every device evaluation goes through the full
// EKV expressions in package device, and the step controller resolves the
// fast internal-node dynamics of the two-transistor discharge stack.
package spice

import (
	"errors"
	"fmt"
	"math"
)

// System is an explicit ODE system dv/dt = f(t, v) over circuit node
// voltages.
type System interface {
	// Dim returns the number of state variables (circuit nodes).
	Dim() int
	// Derivatives writes f(t, v) into dv. len(v) == len(dv) == Dim().
	Derivatives(t float64, v, dv []float64)
}

// PowerMeter is optionally implemented by systems that can report the
// instantaneous current drawn from the supply, enabling energy integration.
type PowerMeter interface {
	// SupplyCurrent returns the current drawn from VDD at state (t, v) [A].
	SupplyCurrent(t float64, v []float64) float64
}

// Config controls the adaptive integrator.
type Config struct {
	AbsTol   float64 // absolute error tolerance per step [V]
	RelTol   float64 // relative error tolerance per step
	InitStep float64 // initial step size [s]
	MinStep  float64 // smallest allowed step [s]
	MaxStep  float64 // largest allowed step [s]
	MaxSteps int     // safety limit on accepted+rejected steps
}

// DefaultConfig returns tolerances suited to bit-line transients
// (nanosecond windows, sub-millivolt accuracy targets).
func DefaultConfig() Config {
	return Config{
		AbsTol:   20e-6,
		RelTol:   1e-6,
		InitStep: 1e-12,
		MinStep:  1e-18,
		MaxStep:  20e-12,
		MaxSteps: 4_000_000,
	}
}

// ErrStep is returned when the step controller cannot meet the tolerances.
var ErrStep = errors.New("spice: step size underflow")

// ErrSteps is returned when MaxSteps is exceeded.
var ErrSteps = errors.New("spice: step budget exhausted")

// Result holds the outcome of a transient analysis.
type Result struct {
	Waveform *Waveform
	// SupplyEnergy is ∫ VDD·I_VDD dt over the run if the system implements
	// PowerMeter (0 otherwise) [J].
	SupplyEnergy float64
	// Steps is the number of accepted integration steps.
	Steps int
	// DeviceEvals counts right-hand-side evaluations (6 per attempted step),
	// the cost unit for the speed-up comparison against behavioral models.
	DeviceEvals int
}

// Cash–Karp tableau.
var (
	ckA = [6]float64{0, 1.0 / 5, 3.0 / 10, 3.0 / 5, 1, 7.0 / 8}
	ckB = [6][5]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{3.0 / 10, -9.0 / 10, 6.0 / 5},
		{-11.0 / 54, 5.0 / 2, -70.0 / 27, 35.0 / 27},
		{1631.0 / 55296, 175.0 / 512, 575.0 / 13824, 44275.0 / 110592, 253.0 / 4096},
	}
	ckC  = [6]float64{37.0 / 378, 0, 250.0 / 621, 125.0 / 594, 0, 512.0 / 1771}
	ckCs = [6]float64{2825.0 / 27648, 0, 18575.0 / 48384, 13525.0 / 55296, 277.0 / 14336, 1.0 / 4}
)

// Scratch holds the integrator's per-run work buffers (six stage vectors
// plus the trial states). A transient that is handed a Scratch reuses its
// buffers instead of allocating fresh ones, which matters when one worker
// runs hundreds of short transients back to back (the golden multiplier's
// input-space sweep). A Scratch serves one goroutine at a time; give each
// worker its own. The zero value is ready to use.
type Scratch struct {
	k            [6][]float64
	vtmp, v5, v4 []float64
}

// buffers returns the work vectors sized for dim state variables, growing
// the backing arrays on first use (or when a larger system comes along).
func (s *Scratch) buffers(dim int) (k [6][]float64, vtmp, v5, v4 []float64) {
	if len(s.vtmp) < dim {
		for i := range s.k {
			s.k[i] = make([]float64, dim)
		}
		s.vtmp = make([]float64, dim)
		s.v5 = make([]float64, dim)
		s.v4 = make([]float64, dim)
	}
	for i := range s.k {
		k[i] = s.k[i][:dim]
	}
	return k, s.vtmp[:dim], s.v5[:dim], s.v4[:dim]
}

// Transient integrates sys from t0 to t1 starting at state v0 and returns
// the sampled waveform. vdd is used for supply-energy integration when the
// system implements PowerMeter. sampleEvery > 0 records the state at that
// interval (plus both endpoints); sampleEvery == 0 records every accepted
// step.
func Transient(sys System, v0 []float64, t0, t1 float64, vdd float64, cfg Config, sampleEvery float64) (*Result, error) {
	return TransientScratch(sys, v0, t0, t1, vdd, cfg, sampleEvery, nil)
}

// TransientScratch is Transient with caller-owned work buffers; a nil scr
// allocates per call (identical to Transient).
func TransientScratch(sys System, v0 []float64, t0, t1 float64, vdd float64, cfg Config, sampleEvery float64, scr *Scratch) (*Result, error) {
	dim := sys.Dim()
	if len(v0) != dim {
		return nil, fmt.Errorf("spice: initial state has %d entries, want %d", len(v0), dim)
	}
	if !(t1 > t0) {
		return nil, fmt.Errorf("spice: empty time window [%g, %g]", t0, t1)
	}
	if cfg.MaxSteps <= 0 {
		cfg = DefaultConfig()
	}

	v := append([]float64(nil), v0...)
	t := t0
	h := cfg.InitStep
	if h <= 0 {
		h = (t1 - t0) / 1000
	}

	wf := NewWaveform(dim)
	wf.Append(t, v)
	nextSample := t0 + sampleEvery

	pm, hasPM := sys.(PowerMeter)
	var energy float64
	lastI := 0.0
	if hasPM {
		lastI = pm.SupplyCurrent(t, v)
	}
	lastT := t

	if scr == nil {
		scr = &Scratch{}
	}
	k, vtmp, v5, v4 := scr.buffers(dim)

	res := &Result{Waveform: wf}
	for t < t1 {
		if res.Steps+1 > cfg.MaxSteps {
			return res, fmt.Errorf("spice: %d steps at t=%.3g s: %w", res.Steps, t, ErrSteps)
		}
		if t+h > t1 {
			h = t1 - t
		}
		// Stage evaluations.
		sys.Derivatives(t, v, k[0])
		for s := 1; s < 6; s++ {
			for i := 0; i < dim; i++ {
				acc := v[i]
				for j := 0; j < s; j++ {
					acc += h * ckB[s][j] * k[j][i]
				}
				vtmp[i] = acc
			}
			sys.Derivatives(t+ckA[s]*h, vtmp, k[s])
		}
		res.DeviceEvals += 6
		// 5th and embedded 4th order solutions.
		var errMax float64
		for i := 0; i < dim; i++ {
			var s5, s4 float64
			for s := 0; s < 6; s++ {
				s5 += ckC[s] * k[s][i]
				s4 += ckCs[s] * k[s][i]
			}
			v5[i] = v[i] + h*s5
			v4[i] = v[i] + h*s4
			scale := cfg.AbsTol + cfg.RelTol*math.Max(math.Abs(v[i]), math.Abs(v5[i]))
			e := math.Abs(v5[i]-v4[i]) / scale
			if e > errMax {
				errMax = e
			}
		}
		if errMax <= 1 {
			// Accept.
			t += h
			copy(v, v5)
			res.Steps++
			if hasPM {
				i1 := pm.SupplyCurrent(t, v)
				energy += vdd * 0.5 * (lastI + i1) * (t - lastT)
				lastI = i1
				lastT = t
			}
			if sampleEvery <= 0 {
				wf.Append(t, v)
			} else if t+1e-21 >= nextSample || t >= t1 {
				wf.Append(t, v)
				for nextSample <= t {
					nextSample += sampleEvery
				}
			}
		}
		// Step-size update (standard PI-free controller with safety factor).
		if errMax == 0 {
			h *= 5
		} else {
			factor := 0.9 * math.Pow(errMax, -0.2)
			if factor > 5 {
				factor = 5
			}
			if factor < 0.1 {
				factor = 0.1
			}
			h *= factor
		}
		if h > cfg.MaxStep {
			h = cfg.MaxStep
		}
		if h < cfg.MinStep {
			return res, fmt.Errorf("spice: step %g s below minimum at t=%g s: %w", h, t, ErrStep)
		}
	}
	if wf.Len() == 0 || wf.T[wf.Len()-1] < t1 {
		wf.Append(t, v)
	}
	res.SupplyEnergy = energy
	return res, nil
}
