package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one Chrome trace-format "complete" event (ph "X").
// Timestamps and durations are microseconds; Perfetto and chrome://tracing
// load the {"traceEvents": [...]} envelope directly.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	DisplayUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports the recorder's spans as Chrome trace-format JSON.
// Nil-safe (writes an empty trace).
func (r *Recorder) WriteTrace(w io.Writer) error {
	return WriteTrace(w, r.Snapshot())
}

// WriteTrace exports spans as Chrome trace-format JSON. Spans have no
// real thread identity — workers are anonymous goroutines — so lanes
// (tids) are assigned greedily: a span prefers its parent's lane and
// otherwise takes the first lane whose open spans either enclose it or
// have already ended, which renders the natural nesting (batch > eval >
// phase) as stacked slices in Perfetto.
func WriteTrace(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur // parent before child at equal start
		}
		return a.ID < b.ID
	})

	type laneState struct{ stack []Span }
	var lanes []*laneState
	laneOf := make(map[SpanID]int, len(sorted))

	place := func(l *laneState, s Span) bool {
		for len(l.stack) > 0 && l.stack[len(l.stack)-1].End() <= s.Start {
			l.stack = l.stack[:len(l.stack)-1]
		}
		if len(l.stack) == 0 || l.stack[len(l.stack)-1].End() >= s.End() {
			l.stack = append(l.stack, s)
			return true
		}
		return false
	}

	events := make([]traceEvent, 0, len(sorted))
	for _, s := range sorted {
		lane := -1
		if pl, ok := laneOf[s.Parent]; ok && place(lanes[pl], s) {
			lane = pl
		}
		if lane < 0 {
			for i, l := range lanes {
				if place(l, s) {
					lane = i
					break
				}
			}
		}
		if lane < 0 {
			lanes = append(lanes, &laneState{stack: []Span{s}})
			lane = len(lanes) - 1
		}
		laneOf[s.ID] = lane

		args := map[string]any{}
		if s.Parent != 0 {
			args["parent"] = uint64(s.Parent)
		}
		if s.Arg != "" {
			args["arg"] = s.Arg
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, traceEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  lane + 1,
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(traceFile{TraceEvents: events, DisplayUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: encode trace: %w", err)
	}
	return nil
}
