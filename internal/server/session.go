package server

// session.go is the multi-user surface of the evaluation service. A
// session is a lightweight claim ticket: it serializes ITS OWN operations
// (one active job per session, guarded by a mutex holding the op kind and
// cancel func) while all sessions share the server's single exp.Context —
// so two users sweeping overlapping spaces dedupe against the same memory
// cache and persistent store instead of re-evaluating each other's work.

import (
	"context"
	"fmt"
	"sync"
	"time"
)

type session struct {
	id      string
	created time.Time

	mu     sync.Mutex
	opKind string
	opJob  string
	cancel context.CancelFunc
	jobs   map[string]*job
	order  []string // job IDs in submission order
}

func newSession(id string) *session {
	return &session{id: id, created: time.Now(), jobs: make(map[string]*job)}
}

// begin claims the session's single operation slot for a job. The error
// names the active job so a 409 response tells the client what to wait
// for (or DELETE).
func (s *session) begin(kind, jobID string, cancel context.CancelFunc) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opJob != "" {
		return fmt.Errorf("session %s is busy: %s job %s is active", s.id, s.opKind, s.opJob)
	}
	s.opKind, s.opJob, s.cancel = kind, jobID, cancel
	return nil
}

// end releases the operation slot if the job still holds it.
func (s *session) end(jobID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opJob == jobID {
		s.opKind, s.opJob, s.cancel = "", "", nil
	}
}

// cancelJob cancels the job's context if it is the session's active
// operation; reports whether a cancellation was delivered.
func (s *session) cancelJob(jobID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opJob == jobID && s.cancel != nil {
		s.cancel()
		return true
	}
	return false
}

// cancelActive cancels whatever operation is running (session teardown,
// server shutdown deadline).
func (s *session) cancelActive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		s.cancel()
	}
}

// addJob registers a job record under the session.
func (s *session) addJob(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
}

// getJob returns a job record by ID.
func (s *session) getJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// jobIDs returns the session's job IDs in submission order.
func (s *session) jobIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// SessionStatus is the JSON view of a session. Jobs are summarized
// without their results; GET the job itself for the full payload.
type SessionStatus struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`
	// ActiveJob/ActiveKind name the operation holding the session's slot,
	// empty when the session is idle.
	ActiveJob  string      `json:"active_job,omitempty"`
	ActiveKind string      `json:"active_kind,omitempty"`
	Jobs       []JobStatus `json:"jobs"`
}

func (s *session) status() SessionStatus {
	s.mu.Lock()
	st := SessionStatus{
		ID:         s.id,
		Created:    s.created,
		ActiveJob:  s.opJob,
		ActiveKind: s.opKind,
		Jobs:       make([]JobStatus, 0, len(s.order)),
	}
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	// Job statuses are taken outside the session lock: job.mu is held by
	// the runner goroutine while it publishes, and lock nesting here would
	// order session.mu before job.mu for no benefit.
	for _, j := range jobs {
		st.Jobs = append(st.Jobs, j.status(false))
	}
	return st
}
