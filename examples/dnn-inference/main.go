// DNN inference with the in-SRAM multiplier: train a small CNN on the
// synthetic dataset, quantize it to INT4, and compare exact integer
// execution against the in-memory multiplier corners — a miniature of the
// paper's Table II protocol.
package main

import (
	"fmt"
	"log"
	"time"

	"optima/internal/core"
	"optima/internal/dataset"
	"optima/internal/device"
	"optima/internal/dnn"
	"optima/internal/mult"
	"optima/internal/quant"
	"optima/internal/stats"
)

func main() {
	// Behavioral models for the multiplier corners.
	model, err := core.Calibrate(core.QuickCalibration())
	if err != nil {
		log.Fatal(err)
	}

	// A small task: 10-class synthetic images.
	ds, err := dataset.Generate(dataset.SynthCIFARConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d train / %d test, %d classes\n",
		ds.Name, ds.Train.N, ds.Test.N, ds.Classes)

	rng := stats.NewRNG(11)
	net, err := dnn.NewZooModel("VGG16S", dataset.Channels, dataset.Height, dataset.Width, ds.Classes, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d parameters, %d multiplications per inference\n",
		net.Name, net.NumParams(), net.MACsPerInference())

	start := time.Now()
	cfg := dnn.DefaultTrainConfig()
	cfg.Verbose = true
	if _, err := net.Fit(ds.Train, ds.TrainY, cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v\n\n", time.Since(start))

	top1, top5 := net.TopKAccuracy(ds.Test, ds.TestY, 5)
	fmt.Printf("%-22s top-1 %5.1f%%  top-5 %5.1f%%\n", "FLOAT32", top1, top5)

	// INT4 post-training quantization with a short QAT retune.
	if err := quant.QATFineTune(net, ds.Train, ds.TrainY, quant.DefaultQATConfig()); err != nil {
		log.Fatal(err)
	}
	calib := dnn.NewTensor(64, ds.Train.C, ds.Train.H, ds.Train.W)
	copy(calib.Data, ds.Train.Data[:calib.Len()])
	qnet, err := quant.Quantize(net, calib)
	if err != nil {
		log.Fatal(err)
	}
	top1, top5 = qnet.TopKAccuracy(ds.Test, ds.TestY, 5)
	fmt.Printf("%-22s top-1 %5.1f%%  top-5 %5.1f%%\n", "INT4 (exact)", top1, top5)

	// Inject the three paper corners.
	corners := []struct {
		name string
		cfg  mult.Config
	}{
		{"in-memory fom", mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 1.0}},
		{"in-memory power", mult.Config{Tau0: 0.16e-9, VDAC0: 0.3, VDACFS: 0.7}},
		{"in-memory variation", mult.Config{Tau0: 0.28e-9, VDAC0: 0.5, VDACFS: 1.0}},
	}
	for _, corner := range corners {
		b, err := mult.NewBehavioral(model, corner.cfg, device.Nominal())
		if err != nil {
			log.Fatal(err)
		}
		im, err := quant.NewInMemory(b, nil)
		if err != nil {
			log.Fatal(err)
		}
		qnet.Mult = im
		top1, top5 = qnet.TopKAccuracy(ds.Test, ds.TestY, 5)
		fmt.Printf("%-22s top-1 %5.1f%%  top-5 %5.1f%%  (%d multiplications)\n",
			corner.name, top1, top5, im.Ops())
	}
}
