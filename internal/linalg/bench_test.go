package linalg

import "testing"

func BenchmarkQRFactorSolve(b *testing.B) {
	r := pseudoRand(1)
	a := randomMatrix(r, 200, 8)
	rhs := make([]float64, 200)
	for i := range rhs {
		rhs[i] = r.next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskySolve(b *testing.B) {
	n := 16
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				a.Set(i, j, float64(n))
			} else {
				a.Set(i, j, 0.5)
			}
		}
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSPD(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
