package mult

import (
	"fmt"
	"math"

	"optima/internal/stats"
)

// The original IMAC design [8] accumulates several multiplications in the
// analog domain before a single ADC conversion; the paper "omits the analog
// accumulation step ... and concentrates on the multiplication process".
// This file restores that step as an extension: a dot-product unit that
// charge-shares the sampled discharges of K words before one conversion,
// amortizing the ADC and averaging uncorrelated mismatch.

// DotProduct computes y = Σ_k a_k · d_k over K operand pairs in a single
// analog accumulation window on the behavioral multiplier.
type DotProduct struct {
	B *Behavioral
	// ADCBitsAcc is the accumulation ADC resolution (the result range grows
	// to K·225, so the unit uses a wider converter than the multiplier's).
	ADCBitsAcc int
}

// NewDotProduct wraps a behavioral multiplier into an accumulation unit.
func NewDotProduct(b *Behavioral) *DotProduct {
	return &DotProduct{B: b, ADCBitsAcc: 12}
}

// DotResult is the outcome of one analog dot product.
type DotResult struct {
	Expected int
	Code     int
	// VAcc is the accumulated (averaged) analog voltage [V].
	VAcc float64
	// Sigma is the mismatch std of VAcc [V].
	Sigma float64
	// Energy covers all bit-line recharges plus one conversion [J].
	Energy float64
	// K is the number of accumulated products.
	K int
}

// ErrorUnits returns the signed error in product units.
func (r DotResult) ErrorUnits() int { return r.Code - r.Expected }

// Compute runs the dot product of equal-length code vectors. A nil rng
// gives the deterministic result. The accumulation is a charge share of
// the K per-word combined voltages: V_acc = (1/K)·Σ V_comb,k, quantized
// with the multiplier's LSB scaled by 1/K so codes remain in product units.
func (dp *DotProduct) Compute(as, ds []uint, rng *stats.RNG) (DotResult, error) {
	if len(as) != len(ds) || len(as) == 0 {
		return DotResult{}, fmt.Errorf("mult: dot product needs equal non-empty vectors, got %d and %d", len(as), len(ds))
	}
	k := len(as)
	maxCode := (1 << uint(dp.ADCBitsAcc)) - 1
	if k*ProductMax > maxCode*2 { // keep quantization meaningful
		return DotResult{}, fmt.Errorf("mult: %d products exceed the %d-bit accumulation range", k, dp.ADCBitsAcc)
	}
	res := DotResult{K: k}
	var sumV, varV float64
	for i := range as {
		a, d := as[i], ds[i]
		if a > OperandMax || d > OperandMax {
			return DotResult{}, fmt.Errorf("mult: operands (%d,%d) exceed %d bits", a, d, OperandBits)
		}
		res.Expected += int(a * d)
		cond := dp.B.Cond
		vwl := dp.B.wordLineVoltage(a, cond.VDD)
		for bit := 0; bit < OperandBits; bit++ {
			if d&(1<<uint(bit)) == 0 {
				continue
			}
			t := dp.B.Cfg.BitTime(bit)
			var vbl float64
			if rng != nil {
				vbl = dp.B.Model.Discharge.SampleVBL(t, vwl, cond.VDD, cond.TempC, rng)
			} else {
				vbl = dp.B.Model.Discharge.VBL(t, vwl, cond.VDD, cond.TempC)
			}
			dv := cond.VDD - vbl
			if dv < 0 {
				dv = 0
			}
			sumV += dv
			sig := dp.B.Model.Discharge.SigmaAt(t, vwl)
			varV += sig * sig
			res.Energy += dp.B.Model.Energy.DischargeEnergy(true, cond.VDD, dv, cond.TempC)
		}
		// Per-word DAC drive; the conversion is shared.
		res.Energy += dp.B.DACCap * cond.VDD * vwl
	}
	res.Energy += dp.B.ADCEnergy + dp.B.CtrlEnergy
	// Charge share across K·4 sampling caps.
	res.VAcc = sumV / float64(k*OperandBits)
	res.Sigma = math.Sqrt(varV) / float64(k*OperandBits)
	// Quantize in product units: V_acc·K/LSB recovers the summed code (the
	// per-product step shrinks by 1/K on the shared caps, which is why the
	// accumulation ADC needs the wider range). The per-word trim offsets
	// accumulate like the signal.
	v := res.VAcc
	if rng != nil && dp.B.ADCSigma > 0 {
		v = rng.Gaussian(v, dp.B.ADCSigma)
	}
	code := int(math.Round((v*float64(k) - float64(k)*dp.B.OffsetVolt) / dp.B.LSBVolt))
	if code < 0 {
		code = 0
	}
	if code > maxCode {
		code = maxCode
	}
	res.Code = code
	return res, nil
}
