// determinism.go checks the invariant that makes the content-addressed
// cache and the persistent store sound: everything the deterministic
// packages compute or persist must be byte-identical across runs, worker
// counts and processes. Go map iteration order and wall-clock reads are the
// two ways that property has historically been lost.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPkgs are the packages whose outputs are cache keys, cached
// values, persisted bytes, or search decisions — the byte-reproducibility
// surface of the evaluation stack.
var deterministicPkgs = []string{
	"internal/engine",
	"internal/search",
	"internal/dse",
	"internal/store",
	"internal/mult",
	"internal/exp",
	// The distributed coordinator/worker layer feeds the same cache and
	// store: a wire frame assembled in map order, or a result derived from
	// the wall clock, would break the byte-identity contract between a
	// local and a distributed run.
	"internal/remote",
}

// seededRandCtors are the math/rand functions that merely construct
// explicitly seeded generators; everything else on the package reads the
// shared global source.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// DeterminismAnalyzer flags, inside the deterministic packages:
//
//   - iteration over a map whose body accumulates into a slice, string or
//     writer declared outside the loop, with no sort call after the loop in
//     the same function — the accumulated output inherits Go's randomized
//     map order (the class of bug that would make a compacted store segment
//     differ byte-wise between two runs over identical data);
//   - calls to time.Now — wall-clock reads cannot participate in anything
//     reproducible;
//   - calls to the global math/rand generator — unseeded randomness; seeded
//     generators via rand.New(rand.NewSource(...)) are fine.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "determinism",
		Doc:     "deterministic packages must not derive output from map order, wall clock, or unseeded randomness",
		InScope: inScope(deterministicPkgs...),
		Run:     runDeterminism,
	}
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkClockAndRand(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapOrder(pass, n.Body)
				}
			}
			return true
		})
	}
}

// checkClockAndRand flags time.Now and global math/rand calls.
func checkClockAndRand(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgPath, ok := packageOf(pass.Info, sel)
	if !ok {
		return
	}
	name := sel.Sel.Name
	switch {
	case pkgPath == "time" && name == "Now":
		pass.Reportf(call.Pos(), "time.Now in a deterministic package: wall-clock reads cannot feed reproducible results")
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !seededRandCtors[name]:
		pass.Reportf(call.Pos(), "global math/rand.%s in a deterministic package: use an explicitly seeded generator (rand.New(rand.NewSource(seed)))", name)
	}
}

// packageOf resolves sel's base to an imported package, returning its path.
func packageOf(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pkgName.Imported().Path(), true
}

// checkMapOrder walks one function body looking for map-range loops whose
// bodies accumulate output, then checks for a sort call later in the same
// body.
func checkMapOrder(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		acc, what := findAccumulation(pass, rs)
		if acc == token.NoPos {
			return true
		}
		if sortedAfter(pass, body, rs.End()) {
			return true
		}
		pass.Reportf(acc, "%s inside a map-range loop inherits the map's randomized iteration order; sort the keys first, or sort the result before it is returned or persisted", what)
		return true
	})
}

// findAccumulation reports the first order-sensitive accumulation in the
// loop body: an assignment that folds the loop variable's visit order into
// a variable declared outside the loop (x = f(x, ...), x += ...), or a
// write through an outside-declared writer (buf.WriteString, fmt.Fprintf).
// Indexed element writes (out[i] = v) are order-independent and not
// flagged.
func findAccumulation(pass *Pass, rs *ast.RangeStmt) (token.Pos, string) {
	var pos token.Pos
	var what string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.ObjectOf(id)
			if obj == nil || !declaredOutside(obj, rs) {
				return true
			}
			accumulates := n.Tok == token.ADD_ASSIGN ||
				(n.Tok == token.ASSIGN && refersTo(pass, n.Rhs[0], obj))
			if accumulates {
				pos, what = n.Pos(), "accumulation into "+id.Name
			}
		case *ast.CallExpr:
			if p, target := writerCall(pass, n, rs); p != token.NoPos {
				pos, what = p, "write to "+target
			}
		}
		return true
	})
	return pos, what
}

// writerCall matches buf.Write*/fmt.Fprint* calls whose sink is declared
// outside the loop.
func writerCall(pass *Pass, call *ast.CallExpr, rs *ast.RangeStmt) (token.Pos, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return token.NoPos, ""
	}
	name := sel.Sel.Name
	if pkgPath, ok := packageOf(pass.Info, sel); ok {
		if pkgPath == "fmt" && (name == "Fprintf" || name == "Fprintln" || name == "Fprint") && len(call.Args) > 0 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil && declaredOutside(obj, rs) {
					return call.Pos(), "fmt." + name + " sink " + id.Name
				}
			}
		}
		return token.NoPos, ""
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil && declaredOutside(obj, rs) {
				return call.Pos(), id.Name + "." + name
			}
		}
	}
	return token.NoPos, ""
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement (loop variables and loop-local temporaries are inside).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// refersTo reports whether expr mentions obj — the x in x = append(x, ...).
func refersTo(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether any sort/slices call appears after pos in the
// function body — the "collect then sort" idiom that restores a canonical
// order before the result escapes.
func sortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if pkgPath, ok := packageOf(pass.Info, sel); ok && (pkgPath == "sort" || pkgPath == "slices") {
				found = true
			}
		}
		return !found
	})
	return found
}
