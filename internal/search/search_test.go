package search_test

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/mult"
	"optima/internal/search"
	"optima/internal/store"
)

var (
	modelOnce sync.Once
	model     *core.Model
	modelErr  error
)

func testModel(t testing.TB) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		model, modelErr = core.Calibrate(core.QuickCalibration())
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

// countingBackend is a fidelity stand-in: behavioral metrics under a
// different backend name, with an evaluation counter. The acceptance test
// uses it as the "golden" fidelity so evaluation-count assertions run in
// behavioral time.
type countingBackend struct {
	inner engine.Behavioral
	name  string
	calls atomic.Int64
}

func (c *countingBackend) Name() string { return c.name }

func (c *countingBackend) Evaluate(cfg mult.Config, cond device.PVT) (engine.Metrics, error) {
	c.calls.Add(1)
	return c.inner.Evaluate(cfg, cond)
}

func TestAxisValidation(t *testing.T) {
	cases := []struct {
		name string
		axis search.Axis
		ok   bool
	}{
		{"empty", search.Axis{Name: "tau0"}, false},
		{"lin", search.LinAxis("tau0", 1, 2, 5), true},
		{"single", search.LinAxis("tau0", 1, 1, 1), true},
		{"single-span", search.LinAxis("tau0", 1, 2, 1), false},
		{"inverted", search.LinAxis("tau0", 2, 1, 5), false},
		{"degenerate-span", search.LinAxis("tau0", 1, 1, 5), false},
		{"log", search.LogAxis("tau0", 0.1, 10, 5), true},
		{"log-nonpositive", search.LogAxis("tau0", 0, 10, 5), false},
		{"values", search.ValuesAxis("tau0", 1, 2, 3), true},
		{"values-unsorted", search.ValuesAxis("tau0", 1, 3, 2), false},
		{"values-duplicate", search.ValuesAxis("tau0", 1, 1, 2), false},
	}
	for _, tc := range cases {
		err := tc.axis.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestAxisPoints(t *testing.T) {
	lin := search.LinAxis("x", 0, 1, 5).Points()
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if !reflect.DeepEqual(lin, want) {
		t.Fatalf("linear points %v, want %v", lin, want)
	}
	log := search.LogAxis("x", 1, 16, 5).Points()
	wantLog := []float64{1, 2, 4, 8, 16}
	for i := range wantLog {
		if diff := log[i] - wantLog[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("log points %v, want %v", log, wantLog)
		}
	}
	if log[0] != 1 || log[4] != 16 {
		t.Fatalf("log endpoints must be exact, got %v", log)
	}
}

func TestAxisSubdividedKeepsOriginals(t *testing.T) {
	orig := []float64{0.16e-9, 0.20e-9, 0.24e-9, 0.28e-9}
	sub := search.ValuesAxis("tau0", orig...).Subdivided(32)
	pts := sub.Points()
	if len(pts) != 4+3*32 {
		t.Fatalf("subdivided into %d points, want %d", len(pts), 4+3*32)
	}
	set := map[float64]bool{}
	prev := pts[0]
	set[prev] = true
	for _, p := range pts[1:] {
		if p <= prev {
			t.Fatalf("subdivided points not strictly increasing at %v", p)
		}
		prev = p
		set[p] = true
	}
	for _, v := range orig {
		if !set[v] {
			t.Fatalf("original point %v lost by subdivision (must stay bitwise identical)", v)
		}
	}
}

func TestFromGridBridge(t *testing.T) {
	g := dse.DefaultGrid()
	sp := search.FromGrid(g)
	cfgs, err := sp.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfgs, g.Configs()) {
		t.Fatal("FromGrid corners differ from dse.Grid corners")
	}
	back, err := sp.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Configs(), g.Configs()) {
		t.Fatal("Space → Grid round trip changed the corners")
	}
}

func TestSpaceValidationErrors(t *testing.T) {
	// Empty axis: descriptive error, not a silently empty corner list.
	sp := search.FromGrid(dse.Grid{VDAC0s: []float64{0.3}, VDACFSs: []float64{0.9}})
	if _, err := sp.Configs(); err == nil {
		t.Fatal("empty tau0 axis: want error")
	}
	// All combinations physically invalid (VDACFS must exceed VDAC0).
	bad := search.Space{
		Tau0:   search.ValuesAxis("tau0", 0.2e-9),
		VDAC0:  search.ValuesAxis("vdac0", 0.9),
		VDACFS: search.ValuesAxis("vdacfs", 0.5),
	}
	if _, err := bad.Configs(); err == nil {
		t.Fatal("all-invalid space: want error")
	}
}

func TestSampleDeterministicSubset(t *testing.T) {
	sp := search.FromGrid(dse.DefaultGrid())
	all, err := sp.Configs()
	if err != nil {
		t.Fatal(err)
	}
	a, err := sp.Sample(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Sample(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must sample the same corners")
	}
	if len(a) != 10 {
		t.Fatalf("sampled %d corners, want 10", len(a))
	}
	// The sample preserves grid order.
	pos := map[mult.Config]int{}
	for i, c := range all {
		pos[c] = i
	}
	for i := 1; i < len(a); i++ {
		if pos[a[i]] <= pos[a[i-1]] {
			t.Fatal("sample must preserve space order")
		}
	}
	c, err := sp.Sample(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should sample different corners")
	}
	full, err := sp.Sample(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, all) {
		t.Fatal("budget <= 0 must return the full space")
	}
}

func TestRunOptionValidation(t *testing.T) {
	m := testModel(t)
	eng := engine.New(engine.Behavioral{Model: m}, 1)
	sp := search.FromGrid(dse.DefaultGrid())
	if _, err := search.Run(context.Background(), search.Options{Space: sp}); err == nil {
		t.Fatal("missing Screen engine: want error")
	}
	if _, err := search.Run(context.Background(), search.Options{Space: sp, Screen: eng, Eta: 1}); err == nil {
		t.Fatal("eta <= 1: want error")
	}
	empty := search.Space{}
	if _, err := search.Run(context.Background(), search.Options{Space: empty, Screen: eng}); err == nil {
		t.Fatal("invalid space: want error")
	}
}

// acceptanceSpace embeds the paper's DefaultGrid exactly (bitwise) inside a
// 1200-corner space by bisecting only the τ0 axis — the densification that
// keeps the grid's Pareto points non-dominated.
func acceptanceSpace(t testing.TB) search.Space {
	sp := search.FromGrid(dse.DefaultGrid())
	sp.Tau0 = sp.Tau0.Subdivided(32)
	n, err := sp.Size()
	if err != nil {
		t.Fatal(err)
	}
	if n < 1000 {
		t.Fatalf("acceptance space has %d corners, want >= 1000", n)
	}
	return sp
}

// TestSearchAcceptance is the issue's acceptance criterion: on a
// ≥1000-corner space embedding DefaultGrid, the search runs at most 25% of
// the exhaustive final-fidelity evaluations, its front contains every
// Pareto point of the embedded 48-corner grid, and a repeat run against the
// same persistent store performs zero backend evaluations.
func TestSearchAcceptance(t *testing.T) {
	m := testModel(t)
	sp := acceptanceSpace(t)
	spaceSize, err := sp.Size()
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "cache")
	run := func() (*search.Result, int64) {
		st, err := store.Open(dir, store.Options{Fingerprint: "search-acceptance"})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		screen := engine.New(engine.Behavioral{Model: m}, 8).WithStore(st)
		golden := &countingBackend{inner: engine.Behavioral{Model: m}, name: "golden"}
		final := engine.New(golden, 8).WithStore(st)
		res, err := search.Run(context.Background(), search.Options{
			Space:  sp,
			Screen: screen,
			Final:  final,
			Rungs:  2,
			Eta:    2,
			Seed:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, golden.calls.Load()
	}

	res, goldenCalls := run()

	// ≤ 25% of the exhaustive final-fidelity evaluations.
	if limit := uint64(spaceSize) / 4; res.Trace.FinalEvaluations() > limit {
		t.Fatalf("final-fidelity evaluations %d exceed 25%% of the %d-corner space (%d)",
			res.Trace.FinalEvaluations(), spaceSize, limit)
	}
	if uint64(goldenCalls) != res.Trace.FinalEvaluations() {
		t.Fatalf("trace reports %d final evaluations, backend counted %d",
			res.Trace.FinalEvaluations(), goldenCalls)
	}

	// The final front contains every Pareto point of the embedded grid.
	gridEng := engine.New(engine.Behavioral{Model: m}, 8)
	gridMets, err := dse.SweepWith(gridEng, dse.DefaultGrid(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	inFront := map[mult.Config]bool{}
	for _, f := range res.Front {
		inFront[f.Config] = true
	}
	for _, p := range dse.ParetoFront(gridMets) {
		if !inFront[p.Config] {
			t.Errorf("grid Pareto point %v missing from the adaptive front", p.Config)
		}
	}

	// A repeat run against the persisted store evaluates nothing.
	res2, goldenCalls2 := run()
	if goldenCalls2 != 0 {
		t.Fatalf("repeat run ran %d final-fidelity backend evaluations, want 0", goldenCalls2)
	}
	if n := res2.Trace.ScreenEvaluations(); n != 0 {
		t.Fatalf("repeat run ran %d screen backend evaluations, want 0", n)
	}
	if res2.Trace.FinalEvaluations() != 0 {
		t.Fatalf("repeat run trace reports %d final evaluations, want 0", res2.Trace.FinalEvaluations())
	}
	if !reflect.DeepEqual(res.Front, res2.Front) || !reflect.DeepEqual(res.Finalists, res2.Finalists) {
		t.Fatal("store-served repeat run changed the result")
	}
}

// TestSearchWorkerInvariance pins the determinism contract: identical
// Result — fronts, finalists, and per-rung trace — at any worker count.
func TestSearchWorkerInvariance(t *testing.T) {
	m := testModel(t)
	sp := search.FromGrid(dse.DefaultGrid())
	sp.Tau0 = sp.Tau0.Subdivided(4) // 192 corners

	run := func(workers int) *search.Result {
		screen := engine.New(engine.Behavioral{Model: m}, workers)
		final := engine.New(&countingBackend{inner: engine.Behavioral{Model: m}, name: "golden"}, workers)
		res, err := search.Run(context.Background(), search.Options{
			Space:  sp,
			Screen: screen,
			Final:  final,
			Rungs:  3,
			Eta:    2,
			Refine: true,
			Seed:   42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	r1 := run(1)
	r8 := run(8)
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("search result differs between -workers 1 and -workers 8")
	}
}

func TestSearchBudgetSamplesSpace(t *testing.T) {
	m := testModel(t)
	sp := search.FromGrid(dse.DefaultGrid())
	screen := engine.New(engine.Behavioral{Model: m}, 4)
	res, err := search.Run(context.Background(), search.Options{
		Space:  sp,
		Screen: screen,
		Budget: 24,
		Rungs:  2,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Sampled != 24 {
		t.Fatalf("sampled %d corners, want budget 24", res.Trace.Sampled)
	}
	if res.Trace.SpaceSize != 48 {
		t.Fatalf("space size %d, want 48", res.Trace.SpaceSize)
	}
	if n := res.Trace.ScreenEvaluations(); n != 24 {
		t.Fatalf("screen evaluated %d corners, want 24 (later rungs are cache hits)", n)
	}
	if len(res.Finalists) != 6 { // ceil(24/2^2)
		t.Fatalf("finalists %d, want 6", len(res.Finalists))
	}
	if len(res.Front) == 0 || len(res.Front) > len(res.Finalists) {
		t.Fatalf("front size %d out of range (finalists %d)", len(res.Front), len(res.Finalists))
	}
}

func TestSearchRefineAddsCandidates(t *testing.T) {
	m := testModel(t)
	sp := search.FromGrid(dse.DefaultGrid())
	screen := engine.New(engine.Behavioral{Model: m}, 4)
	res, err := search.Run(context.Background(), search.Options{
		Space:  sp,
		Screen: screen,
		Rungs:  3,
		Refine: true,
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rung 1's pool is the 24 survivors plus refined midpoint corners.
	if len(res.Trace.Rungs) != 3 {
		t.Fatalf("trace has %d rungs, want 3", len(res.Trace.Rungs))
	}
	r1 := res.Trace.Rungs[1]
	if r1.Candidates <= r1.Promoted {
		t.Fatalf("refinement added no candidates: rung 1 has %d candidates", r1.Candidates)
	}
	if r1.Evaluated == 0 {
		t.Fatal("refined corners should be fresh evaluations")
	}
	if r1.CacheHits == 0 {
		t.Fatal("survivors resubmitted in rung 1 should be cache hits")
	}
}

// TestSearchFrontMatchesExhaustiveOnSmallSpace cross-checks the search
// against ground truth where exhaustive evaluation is cheap: on the plain
// 48-corner grid with survivors ≥ the true front, the final front must
// equal dse.ParetoFront of the exhaustive sweep.
func TestSearchFrontMatchesExhaustiveOnSmallSpace(t *testing.T) {
	m := testModel(t)
	eng := engine.New(engine.Behavioral{Model: m}, 4)
	mets, err := dse.SweepWith(eng, dse.DefaultGrid(), device.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	want := dse.ParetoFront(mets)

	res, err := search.Run(context.Background(), search.Options{
		Space:  search.FromGrid(dse.DefaultGrid()),
		Screen: engine.New(engine.Behavioral{Model: m}, 4),
		Rungs:  2,
		Eta:    1.5,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Front, want) {
		t.Fatalf("adaptive front (%d points) differs from exhaustive front (%d points)",
			len(res.Front), len(want))
	}
}

// pvtBackend synthesizes condition-dependent metrics engineered so the
// nominal winner is NOT the robust winner: at the nominal condition ϵ_mul
// shrinks with τ0 (the smallest τ0 wins), but the excursion penalty grows
// as 1/τ0, so under a PVT excursion the small-τ0 corners collapse and a
// larger τ0 wins the worst-case ranking. Energy is flat, which collapses
// the Pareto front to the single minimum-ϵ corner — making "the winner"
// well defined in both modes.
type pvtBackend struct {
	name  string
	calls atomic.Int64
}

func (b *pvtBackend) Name() string { return b.name }

func (b *pvtBackend) Evaluate(cfg mult.Config, cond device.PVT) (engine.Metrics, error) {
	b.calls.Add(1)
	tau := cfg.Tau0 * 1e9
	severity := math.Abs(cond.VDD-device.NominalVDD)*10 + math.Abs(cond.TempC-device.NominalTempC)/33
	return engine.Metrics{
		Config: cfg,
		Cond:   cond,
		EpsMul: tau + severity/tau,
		EMul:   50e-15,
	}, nil
}

// robustSpace is a seeded one-axis space over τ0 (0.1–0.9 ns).
func robustSpace() search.Space {
	return search.Space{
		Tau0:   search.LinAxis("tau0", 0.1e-9, 0.9e-9, 9),
		VDAC0:  search.ValuesAxis("vdac0", 0.3),
		VDACFS: search.ValuesAxis("vdacfs", 1.0),
	}
}

func robustConditions(t testing.TB) engine.ConditionSet {
	t.Helper()
	conds, err := engine.ParseConditionSet("TT@1V@27C,SS@0.9V@60C,FF@1.1V@0C")
	if err != nil {
		t.Fatal(err)
	}
	return conds
}

// TestRobustSearchAcceptance is the issue's robust-mode acceptance test: on
// a seeded space, the nominal search and the robust search crown different
// winners; the robust result is byte-identical at any worker count; and a
// repeat robust run against a shared store performs zero backend
// evaluations.
func TestRobustSearchAcceptance(t *testing.T) {
	sp := robustSpace()
	conds := robustConditions(t)
	dir := filepath.Join(t.TempDir(), "cache")

	run := func(workers int, robust bool) (*search.Result, int64, int64) {
		st, err := store.Open(dir, store.Options{Fingerprint: "robust-acceptance"})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		screenBack := &pvtBackend{name: "screen"}
		finalBack := &pvtBackend{name: "golden"}
		opts := search.Options{
			Space:  sp,
			Screen: engine.New(screenBack, workers).WithStore(st),
			Final:  engine.New(finalBack, workers).WithStore(st),
			Rungs:  2,
			Eta:    2,
			Seed:   1,
		}
		if robust {
			opts.Conditions = conds
		}
		res, err := search.Run(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, screenBack.calls.Load(), finalBack.calls.Load()
	}

	nominal, _, _ := run(8, false)
	robust, _, _ := run(8, true)

	if len(nominal.Front) != 1 || len(robust.Front) != 1 {
		t.Fatalf("fronts not singular: nominal %d, robust %d (flat energy must collapse the front)",
			len(nominal.Front), len(robust.Front))
	}
	nomWin, robWin := nominal.Front[0].Config, robust.Front[0].Config
	if nomWin == robWin {
		t.Fatalf("nominal winner %v equals robust winner — the seeded space must separate them", nomWin)
	}
	if nomWin.Tau0 >= robWin.Tau0 {
		t.Fatalf("nominal winner τ0 %g should be smaller than robust winner τ0 %g", nomWin.Tau0, robWin.Tau0)
	}

	// The robust front entry is a worst-case composite: its condition is the
	// arg-worst excursion (not nominal) and its ϵ is the worst case.
	if robust.Front[0].Cond == device.Nominal() {
		t.Fatal("robust front entry carries the nominal condition, want the arg-worst excursion")
	}
	if robust.Robust == nil || len(robust.Robust) != len(robust.Finalists) {
		t.Fatalf("robust summaries missing: %d for %d finalists", len(robust.Robust), len(robust.Finalists))
	}
	for i, r := range robust.Robust {
		if len(r.PerCond) != conds.Len() {
			t.Fatalf("finalist %d has %d per-condition metrics, want %d", i, len(r.PerCond), conds.Len())
		}
		if r.Config != robust.Finalists[i].Config {
			t.Fatalf("finalist %d summary out of order", i)
		}
		if robust.Finalists[i].EpsMul != r.WorstEps {
			t.Fatalf("finalist %d composite ϵ %g != worst case %g", i, robust.Finalists[i].EpsMul, r.WorstEps)
		}
	}
	if nominal.Robust != nil {
		t.Fatal("nominal search populated robust summaries")
	}
	if robust.Trace.Conditions != conds.String() {
		t.Fatalf("trace conditions %q, want %q", robust.Trace.Conditions, conds.String())
	}

	// Worker invariance in robust mode: the outputs — front, finalists,
	// summaries — are byte-identical at any worker count. (The trace's
	// cache accounting legitimately shifts with store warmth between runs,
	// so it is not part of the comparison.)
	sameOutputs := func(a, b *search.Result, what string) {
		t.Helper()
		if !reflect.DeepEqual(a.Front, b.Front) ||
			!reflect.DeepEqual(a.Finalists, b.Finalists) ||
			!reflect.DeepEqual(a.Robust, b.Robust) {
			t.Fatalf("%s changed the robust result", what)
		}
	}
	again, _, _ := run(1, true)
	sameOutputs(robust, again, "-workers 1 vs -workers 8")

	// Repeat run against the shared store: zero backend evaluations at
	// either fidelity, identical result.
	rerun, screenCalls, finalCalls := run(8, true)
	if screenCalls != 0 || finalCalls != 0 {
		t.Fatalf("repeat robust run hit the backends: %d screen + %d final calls, want 0",
			screenCalls, finalCalls)
	}
	if n := rerun.Trace.ScreenEvaluations() + rerun.Trace.FinalEvaluations(); n != 0 {
		t.Fatalf("repeat robust run trace reports %d evaluations, want 0", n)
	}
	sameOutputs(robust, rerun, "store-served repeat run")
}

// TestRobustSearchWorkerInvarianceFullResult pins the stronger contract on
// fresh engines (no store): the ENTIRE robust Result, trace included, is
// identical at any worker count.
func TestRobustSearchWorkerInvarianceFullResult(t *testing.T) {
	conds := robustConditions(t)
	run := func(workers int) *search.Result {
		res, err := search.Run(context.Background(), search.Options{
			Space:      robustSpace(),
			Screen:     engine.New(&pvtBackend{name: "screen"}, workers),
			Final:      engine.New(&pvtBackend{name: "golden"}, workers),
			Conditions: conds,
			Rungs:      2,
			Eta:        2,
			Refine:     true,
			Seed:       42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Fatal("robust search result differs between -workers 1 and -workers 8")
	}
}

// TestRobustSearchPromotesAllConditions: the final-fidelity pass evaluates
// every finalist at every condition of the set, and the per-rung trace
// records the condition dimension.
func TestRobustSearchPromotesAllConditions(t *testing.T) {
	conds := robustConditions(t)
	finalBack := &pvtBackend{name: "golden"}
	res, err := search.Run(context.Background(), search.Options{
		Space:      robustSpace(),
		Screen:     engine.New(&pvtBackend{name: "screen"}, 4),
		Final:      engine.New(finalBack, 4),
		Conditions: conds,
		Rungs:      2,
		Eta:        2,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantFinal := int64(len(res.Finalists) * conds.Len())
	if got := finalBack.calls.Load(); got != wantFinal {
		t.Fatalf("final fidelity ran %d evaluations, want %d (finalists × conditions)", got, wantFinal)
	}
	for _, r := range res.Trace.Rungs {
		if r.Conditions != conds.Len() {
			t.Fatalf("rung %d records %d conditions, want %d", r.Rung, r.Conditions, conds.Len())
		}
	}
}
