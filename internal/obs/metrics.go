package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultDurationBuckets are the histogram bounds (seconds) used for
// queue-wait and eval-duration histograms: decades from 1µs to 100s,
// spanning a table-driven behavioral multiply up to a worst-case golden
// SPICE corner.
var DefaultDurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100,
}

// Registry holds a run's metric families and renders them in Prometheus
// text exposition format. Registration is idempotent per (name, label set)
// so layers can be re-wired (a test reopening a store, EngineFor building
// a second engine) without double counting; a GaugeFunc re-registered for
// an existing series replaces the previous function (last owner wins).
// All methods are nil-safe: a nil *Registry registers nothing and returns
// nil instruments whose methods are in turn no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, kind string // kind: counter | gauge | histogram
	series           map[string]*series
}

type series struct {
	labels string // rendered {k="v",...} or ""

	// exactly one of these is active, per the family kind
	val   atomic.Uint64 // float64 bits: Counter and Gauge
	fn    func() float64
	hist  *Histogram
	isFns bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

// labelKey renders alternating key,value pairs as a deterministic
// Prometheus label block, sorted by key. Odd trailing keys are dropped.
func labelKey(kv []string) string {
	if len(kv) < 2 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// seriesFor returns the series for (name, labels), creating family and
// series as needed. A name reused with a different kind panics: that is a
// programming error, not a runtime condition.
func (r *Registry) seriesFor(name, help, kind string, labels []string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	lk := labelKey(labels)
	s := f.series[lk]
	if s == nil {
		s = &series{labels: lk}
		f.series[lk] = s
	}
	return s
}

// Counter is a monotonically increasing float64. Methods on a nil Counter
// are no-ops.
type Counter struct{ s *series }

// Counter registers (or finds) a counter series. labels are alternating
// key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{s: r.seriesFor(name, help, "counter", labels)}
}

// Add increments the counter by delta (negative deltas are ignored —
// counters only go up).
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	addFloat(&c.s.val, delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current value (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.s.val.Load())
}

// Gauge is a float64 that can go up and down. Methods on a nil Gauge are
// no-ops.
type Gauge struct{ s *series }

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{s: r.seriesFor(name, help, "gauge", labels)}
}

// Set sets the gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.val.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloat(&g.s.val, delta)
}

// Value returns the gauge's current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.s.val.Load())
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time — for values a subsystem already tracks (hub subscriber
// counts, store segment bytes) where mirroring into a Gauge would race
// the truth. fn must be safe to call from any goroutine; it is invoked
// with no registry lock held, so it may take the owning subsystem's lock.
// Re-registering an existing series replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.seriesFor(name, help, "gauge", labels)
	r.mu.Lock()
	s.fn = fn
	s.isFns = true
	r.mu.Unlock()
}

// Histogram is a fixed-bucket distribution with cumulative bucket counts,
// a sum, and a count, rendered Prometheus-style. Methods on a nil
// Histogram are no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last = +Inf
	sum    atomic.Uint64   // float64 bits
	total  atomic.Uint64
}

// Histogram registers (or finds) a histogram series. buckets must be
// sorted ascending; nil means DefaultDurationBuckets. Bounds are fixed at
// first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.seriesFor(name, help, "histogram", labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		if buckets == nil {
			buckets = DefaultDurationBuckets
		}
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		s.hist = &Histogram{
			bounds: bounds,
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	return s.hist
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	addFloat(&h.sum, v)
}

// Count returns the number of samples observed (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed samples (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// addFloat adds delta to a float64 stored as uint64 bits, lock-free.
func addFloat(u *atomic.Uint64, delta float64) {
	for {
		old := u.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if u.CompareAndSwap(old, next) {
			return
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// snapshotSeries is one renderable series captured under the registry
// lock; values are read after release so GaugeFuncs may take their owning
// subsystem's locks.
type snapshotSeries struct {
	labels string
	s      *series
}

type snapshotFamily struct {
	name, help, kind string
	series           []snapshotSeries
}

func (r *Registry) snapshot() []snapshotFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]snapshotFamily, 0, len(r.families))
	for _, f := range r.families {
		sf := snapshotFamily{name: f.name, help: f.help, kind: f.kind}
		for _, s := range f.series {
			sf.series = append(sf.series, snapshotSeries{labels: s.labels, s: s})
		}
		sort.Slice(sf.series, func(i, j int) bool {
			return sf.series[i].labels < sf.series[j].labels
		})
		fams = append(fams, sf)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by
// rendered labels, one HELP and TYPE line per family. Nil-safe (writes
// nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, f.help, f.name, f.kind); err != nil {
			return fmt.Errorf("obs: write exposition: %w", err)
		}
		for _, ss := range f.series {
			if err := writeSeries(w, f, ss); err != nil {
				return fmt.Errorf("obs: write exposition: %w", err)
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f snapshotFamily, ss snapshotSeries) error {
	switch {
	case f.kind == "histogram" && ss.s.hist != nil:
		h := ss.s.hist
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s%s %d\n",
				f.name+"_bucket", mergeLabels(ss.labels, "le", formatFloat(b)), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s%s %d\n",
			f.name+"_bucket", mergeLabels(ss.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ss.labels, formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ss.labels, cum)
		return err
	case ss.s.isFns:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ss.labels, formatFloat(ss.s.fn()))
		return err
	default:
		v := math.Float64frombits(ss.s.val.Load())
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ss.labels, formatFloat(v))
		return err
	}
}

// mergeLabels inserts one extra label into an already-rendered block —
// the histogram's le bound.
func mergeLabels(rendered, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// Sample is one named value for the CLIs' end-of-run telemetry table.
type Sample struct {
	Name  string
	Value float64
}

// Samples flattens the registry into (name, value) rows sorted by name:
// counters and gauges as-is, histograms as _count and _sum. Rows with a
// zero value are omitted — the CLI table shows what happened, not the
// whole schema. Nil-safe (returns nil).
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	for _, f := range r.snapshot() {
		for _, ss := range f.series {
			switch {
			case f.kind == "histogram" && ss.s.hist != nil:
				h := ss.s.hist
				if c := h.Count(); c > 0 {
					out = append(out, Sample{f.name + "_count" + ss.labels, float64(c)})
					out = append(out, Sample{f.name + "_sum" + ss.labels, h.Sum()})
				}
			case ss.s.isFns:
				if v := ss.s.fn(); v != 0 {
					out = append(out, Sample{f.name + ss.labels, v})
				}
			default:
				if v := math.Float64frombits(ss.s.val.Load()); v != 0 {
					out = append(out, Sample{f.name + ss.labels, v})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
