// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation, each returning report artifacts (tables and
// charts) plus the measured values needed for paper-vs-measured
// comparisons. The cmd tools, the root-level benchmarks, and the
// experiment tests all call into this package so every reproduction number
// has exactly one source of truth.
package exp

import (
	"fmt"
	"sync"

	"optima/internal/core"
	"optima/internal/device"
	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/spice"
)

// Context carries the calibrated OPTIMA model and the shared settings of
// an experiment session. All corner/condition evaluations of a session run
// through one evaluation engine, so figures, tables and the DSE never
// re-compute a corner another experiment already scored.
type Context struct {
	Model *core.Model
	Tech  device.Tech
	Spice spice.Config
	// Workers bounds the evaluation worker pool (0 = GOMAXPROCS). Set it
	// before the first evaluation.
	Workers int
	// Backend selects the evaluation backend by name —
	// engine.BackendBehavioral (default) or engine.BackendGolden. Set it
	// before the first evaluation.
	Backend string

	engOnce      sync.Once
	eng          *engine.Engine
	selection    *dse.Selection
	sweepMetrics []dse.Metrics
}

// NewContext calibrates a model with the given recipe and returns a ready
// experiment context.
func NewContext(calib core.CalibrationConfig) (*Context, error) {
	model, err := core.Calibrate(calib)
	if err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	return &Context{
		Model: model,
		Tech:  calib.Tech,
		Spice: calib.Spice,
	}, nil
}

// NewContextWithModel wraps a pre-calibrated model (e.g. loaded from JSON).
func NewContextWithModel(model *core.Model, tech device.Tech) *Context {
	return &Context{Model: model, Tech: tech, Spice: spice.DefaultConfig()}
}

// Engine returns the session's shared evaluation engine, building it from
// the Backend/Workers settings on first use (concurrency-safe). Backend
// names taken from user input must be checked with
// engine.ValidateBackendName before they reach a Context; an invalid name
// here is a programming error and panics.
func (c *Context) Engine() *engine.Engine {
	c.engOnce.Do(func() {
		backend, err := engine.ByName(c.Backend, c.Model, c.Tech, c.Spice)
		if err != nil {
			panic(fmt.Sprintf("exp: %v", err))
		}
		c.eng = engine.New(backend, c.Workers)
	})
	return c.eng
}

// Sweep returns the cached 48-corner DSE sweep, running it on first use.
func (c *Context) Sweep() ([]dse.Metrics, error) {
	if c.sweepMetrics == nil {
		mets, err := dse.SweepWith(c.Engine(), dse.DefaultGrid(), device.Nominal())
		if err != nil {
			return nil, err
		}
		c.sweepMetrics = mets
	}
	return c.sweepMetrics, nil
}

// Selection returns the cached corner selection (fom/power/variation).
func (c *Context) Selection() (dse.Selection, error) {
	if c.selection == nil {
		mets, err := c.Sweep()
		if err != nil {
			return dse.Selection{}, err
		}
		sel, err := dse.Select(mets)
		if err != nil {
			return dse.Selection{}, err
		}
		c.selection = &sel
	}
	return *c.selection, nil
}
