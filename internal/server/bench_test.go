package server

import (
	"net/http/httptest"
	"testing"
)

// BenchmarkServerSubmitSweep measures the full job round trip on a warm
// store: POST the job, follow its WebSocket stream to the terminal event,
// GET the result. After the first iteration every cell is a memory-tier
// hit, so this tracks the server's own overhead (routing, session
// bookkeeping, hub fan-out, JSON) rather than backend time.
func BenchmarkServerSubmitSweep(b *testing.B) {
	srv := New(testExp(b))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sid := createSession(b, ts.URL)
	req := map[string]any{
		"kind":   "sweep",
		"tau0":   "0.16:0.28:8",
		"vdac0":  "0.3,0.4,0.5",
		"vdacfs": "0.8,1.0",
	} // 48 cells

	// Warm the cache so iterations measure server overhead.
	jid := submitJob(b, ts.URL, sid, req)
	watchToTerminal(b, ts.URL, sid, jid)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jid := submitJob(b, ts.URL, sid, req)
		events := watchToTerminal(b, ts.URL, sid, jid)
		if last := events[len(events)-1]; last.Type != EventDone {
			b.Fatalf("job ended %q (%s)", last.Type, last.Error)
		}
		st := jobStatus(b, ts.URL, sid, jid)
		if len(st.Result) == 0 {
			b.Fatal("done job has no result")
		}
	}
}
