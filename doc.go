// Package optima is a design-space exploration framework for discharge-based
// (current-domain) in-SRAM computing, reproducing "OPTIMA: Design-Space
// Exploration of Discharge-Based In-SRAM Computing: Quantifying
// Energy-Accuracy Trade-Offs" (DAC 2024).
//
// The repository is organized as a set of substrates under internal/ (golden
// transistor-level simulation, polynomial fitting, discrete-event kernel,
// DNN inference and quantization) with the paper's behavioral models in
// internal/core and the 4-bit in-SRAM multiplier case study in internal/mult.
// All corner/condition evaluations route through the concurrent memoizing
// evaluation service in internal/engine, which the exploration layers
// (internal/dse, internal/search, internal/exp) submit jobs to — singly,
// via the batched submission path, or as a cross-condition matrix. The
// engine's cache is tiered: in-memory, then the persistent
// content-addressed result store in internal/store (an append-only segment
// log keyed on (backend, config, condition) plus a calibration
// fingerprint; enabled with -cache-dir, bounded with Options.MaxBytes /
// MaxAge retention), then the backend.
//
// The operating condition is a first-class evaluation dimension: an
// engine.ConditionSet (ordered, validated, canonical
// "TT@1V@27C,SS@0.9V@60C" spec form — the CLIs' -conditions flag) spans
// the cross-condition axis, and engine.EvaluateMatrix scores configs ×
// conditions as one batch with every cell an independent cache key.
// dse.RobustSweep reduces the matrix to per-config worst-case / mean /
// spread summaries with arg-worst conditions (dse.RobustMetrics), and the
// search's robust mode ranks survivors by worst-case PVT excursion instead
// of nominal showing — the Fig. 8 insight made a search criterion.
//
// Two exploration layers sit on the engine. internal/dse is the paper's
// exhaustive layer: the 48-corner grid, corner selection, Pareto fronts,
// PVT robustness. internal/search is the adaptive multi-fidelity layer for
// spaces orders of magnitude larger: a validated Space (per-axis ranges
// with linear/log refinement, generalizing dse.Grid) is screened rung by
// rung on the behavioral backend with successive halving — survivors kept
// by (eps_mul, E_mul) Pareto rank and crowding distance, worst-case over
// the condition set in robust mode — and only the finalists are
// re-evaluated on the golden transient backend, at every condition of the
// set (the optima search subcommand; see examples/adaptive-search and
// examples/pvt-robustness).
// Concurrency is two-level under one total worker budget: jobs fan out
// across the engine's pool, and the golden backend additionally fans each
// corner's ~500 transients out across its granted intra-job share — with
// Metrics byte-identical at any worker split (fixed result slots, serial
// input-order reduction), so caching stays sound.
// Command-line tools under cmd/ and the benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation.
//
// internal/server exposes the exploration stack as a long-lived service
// (the optima-server command): sessions own at most one active operation,
// submit sweep / search / condition-matrix jobs over a JSON HTTP API, and
// stream ordered progress, rung, and terminal events over a hand-rolled
// RFC 6455 WebSocket layer (stdlib only). Every session shares the one
// exp.Context engine and store, so overlapping jobs from different
// clients dedupe per cell, cancellation (DELETE, teardown, or shutdown
// drain) abandons only unstarted work without memoizing it, and results
// reuse the search package's JSON report shapes — byte-identical to the
// optima search CLI at any worker count.
//
// internal/remote distributes the evaluation plane across processes and
// hosts (stdlib only): a coordinator embedded in the engine's backend
// seam ships batches of (backend, config, condition) cells over a
// CRC-framed binary TCP protocol to a fleet of optima-worker processes,
// sharded by the store's host-stable key hash so a worker keeps seeing
// the same key ranges. The coordinator implements engine.BatchBackend,
// so EvaluateBatch, EvaluateMatrix, the search, the CLIs, and
// optima-server gain distribution behind a -remote flag with zero
// changes above the engine; a calibration-fingerprint handshake refuses
// mismatched workers, dead workers' cells are reassigned exactly once,
// idle workers steal from busy ones, and an empty fleet degrades to
// local evaluation — with results byte-identical at any worker count,
// including zero.
//
// internal/obs is the cross-cutting telemetry layer (stdlib only): a
// lock-cheap ring-buffer span recorder with an injected monotonic clock
// and a metrics registry of counters, gauges, and histograms. Every layer
// instruments against one obs.Recorder — engine batches and backend
// evaluations, golden trim calibrations and their per-code transients,
// store opens/migrations/compactions and hot-path hits, search rungs, and
// server job lifecycles. The spans export as Chrome trace-format JSON
// (the CLIs' -trace-out flag, the server's per-job trace endpoint; opens
// in Perfetto), the metrics as Prometheus text on the server's GET
// /metrics and as the CLIs' end-of-run summary. A nil recorder disables
// everything at near-zero cost, timing never feeds results (artifacts
// stay byte-identical with telemetry on or off), and the deterministic
// packages never read the wall clock — the recorder owns the clock.
package optima
