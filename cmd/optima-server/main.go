// Command optima-server is the exploration-as-a-service frontend: a
// long-lived HTTP server over the evaluation stack. Clients create
// sessions, submit sweep / adaptive-search / condition-matrix jobs as
// JSON, and follow live progress over WebSocket; all sessions share one
// evaluation engine and persistent store, so overlapping submissions
// from different users dedupe instead of re-evaluating.
//
// Usage:
//
//	optima-server [-addr :8080] [-model in.json] [-quick] [-workers N]
//	              [-backend B] [-conditions set]
//	              [-cache-dir dir] [-cache-max-bytes N] [-cache-max-age D]
//	optima-server -smoke
//
// The flags mirror the optima CLI: -backend selects the default
// evaluation backend, -conditions the server-wide operating-condition
// set (per-job overrides are accepted in the job request), -cache-dir
// roots the persistent result store shared by every session. SIGINT and
// SIGTERM drain gracefully: submissions are refused, running jobs get 30
// seconds to finish before cancellation, and the store is flushed.
//
// -smoke runs a self-check instead of serving: an ephemeral server on
// 127.0.0.1, one session, one small behavioral sweep job, the WebSocket
// stream followed to its terminal "done" event, then a clean shutdown.
// CI runs it to gate the serving path end to end.
//
// See the README's "optima-server" section for the endpoint table, the
// session semantics and the WebSocket event schema.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"

	"optima/internal/core"
	"optima/internal/engine"
	"optima/internal/exp"
	"optima/internal/obs"
	"optima/internal/remote"
	"optima/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "optima-server:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("optima-server", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modelPath := fs.String("model", "", "load a calibrated model instead of recalibrating")
	quick := fs.Bool("quick", false, "use the reduced calibration grids")
	workers := fs.Int("workers", 0, "total evaluation worker budget (0 = all CPUs)")
	backend := fs.String("backend", engine.BackendBehavioral,
		"default evaluation backend: behavioral or golden (jobs may override)")
	conditions := fs.String("conditions", "",
		"server-wide operating condition set: comma-separated CORNER@<vdd>V@<temp>C entries (empty = nominal only)")
	cacheDir := fs.String("cache-dir", "",
		"persist evaluation results in this directory (shared by all sessions and across restarts)")
	cacheMax := fs.Int64("cache-max-bytes", 0,
		"evict least-recently-written cache segments beyond this size at startup (0 = unlimited)")
	cacheAge := fs.Duration("cache-max-age", 0,
		"evict cache segments older than this at startup (e.g. 720h; 0 = unlimited)")
	logLevel := fs.String("log-level", "info",
		"structured log level: debug, info, warn or error")
	slowEval := fs.Duration("slow-eval", 0,
		"log a warning for any single backend evaluation slower than this (e.g. 2s; 0 = off)")
	smoke := fs.Bool("smoke", false,
		"run the serving-path self-check (ephemeral port, one sweep job, WebSocket to done, /metrics scrape) and exit")
	smokeWorkers := fs.Int("smoke-workers", 0,
		"with -smoke: spawn this many optima-worker processes and run a matrix job through the remote fleet (requires -worker-bin)")
	workerBin := fs.String("worker-bin", "",
		"with -smoke-workers: path to the optima-worker binary to spawn")
	remoteAddr := fs.String("remote", "",
		"listen on this address (e.g. :9777) for optima-worker processes and distribute evaluations across them; with no connected workers evaluation stays local")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))

	if *smoke {
		// The smoke check pins its own fast settings; the flags above
		// configure the serving mode only (except -smoke-workers/-worker-bin,
		// which select the distributed variant).
		return runSmoke(*smokeWorkers, *workerBin)
	}

	ctx, err := makeContext(*modelPath, *quick, *workers, *backend, *conditions,
		*cacheDir, *cacheMax, *cacheAge)
	if err != nil {
		return err
	}
	// The server adopts this recorder: -slow-eval and the structured
	// logger only reach the evaluation layers through it.
	ctx.Recorder = obs.NewRecorder(obs.RecorderOptions{
		SlowEval: *slowEval,
		Logger:   slog.Default(),
	})
	if *remoteAddr != "" {
		fleet, err := remote.Listen(*remoteAddr, remote.Options{
			Fingerprint: ctx.Fingerprint(),
			Recorder:    ctx.Recorder,
			Logger:      slog.Default(),
		})
		if err != nil {
			return fmt.Errorf("-remote: %w", err)
		}
		ctx.Fleet = fleet
		slog.Info("remote fleet listening", "addr", fleet.Addr())
	}
	srv := server.New(ctx)
	// Build the engine (and open the store) before accepting traffic, so
	// a bad cache directory is reported at startup, not on the first job.
	ctx.Engine()
	if err := ctx.StoreError(); err != nil {
		slog.Warn("persistent store degraded", "err", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	slog.Info("serving", "addr", ln.Addr().String(),
		"backend", ctx.Engine().Backend().Name(), "workers", ctx.Engine().Workers())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		slog.Info("draining: running jobs get 30s", "signal", s.String())
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		slog.Error("http shutdown", "err", err)
	}
	return srv.Shutdown(shutCtx)
}

// makeContext mirrors the optima CLI's context construction.
func makeContext(modelPath string, quick bool, workers int, backend, conditions, cacheDir string, cacheMax int64, cacheAge time.Duration) (*exp.Context, error) {
	if err := engine.ValidateBackendName(backend); err != nil {
		return nil, err
	}
	var conds engine.ConditionSet
	if conditions != "" {
		var err error
		if conds, err = engine.ParseConditionSet(conditions); err != nil {
			return nil, err
		}
	}
	calib := core.DefaultCalibration()
	if quick {
		calib = core.QuickCalibration()
	}
	var ctx *exp.Context
	if modelPath != "" {
		if m, err := core.LoadModel(modelPath); err == nil {
			slog.Info("loaded model", "path", modelPath)
			ctx = exp.NewContextWithModel(m, calib.Tech)
		} else {
			slog.Warn("model not found; calibrating", "path", modelPath)
		}
	}
	if ctx == nil {
		start := time.Now()
		var err error
		ctx, err = exp.NewContext(calib)
		if err != nil {
			return nil, err
		}
		slog.Info("calibrated", "duration", time.Since(start), "report", ctx.Model.Report.String())
	}
	ctx.Backend = backend
	ctx.Conditions = conds
	ctx.Workers = workers
	ctx.CacheDir = cacheDir
	ctx.CacheMaxBytes = cacheMax
	ctx.CacheMaxAge = cacheAge
	return ctx, nil
}

// runSmoke gates the serving path end to end: ephemeral listener, one
// session, one small behavioral job, WebSocket followed to the terminal
// event, graceful shutdown. Any deviation is a non-zero exit.
//
// With workersN > 0 it gates the distributed path instead: a remote fleet
// on an ephemeral port, workersN spawned optima-worker processes, and a
// cross-condition matrix job whose cells must flow through the fleet.
func runSmoke(workersN int, workerBin string) error {
	ctx, err := exp.NewContext(core.QuickCalibration())
	if err != nil {
		return err
	}
	srv := server.New(ctx)

	var fleet *remote.Fleet
	if workersN > 0 {
		if workerBin == "" {
			return fmt.Errorf("-smoke-workers requires -worker-bin")
		}
		// server.New installed the recorder; the fleet's counters land in
		// the same registry /metrics serves.
		fleet, err = remote.Listen("127.0.0.1:0", remote.Options{
			Fingerprint: ctx.Fingerprint(),
			Recorder:    ctx.Recorder,
			Logger:      slog.Default(),
		})
		if err != nil {
			return err
		}
		ctx.Fleet = fleet
		var cmds []*exec.Cmd
		defer func() {
			for _, c := range cmds {
				c.Process.Kill()
				c.Wait()
			}
		}()
		for i := 0; i < workersN; i++ {
			cmd := exec.Command(workerBin, "-connect", fleet.Addr(), "-quick", "-workers", "2")
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return fmt.Errorf("start worker %d: %w", i, err)
			}
			cmds = append(cmds, cmd)
		}
		// Workers calibrate (quick grids) before dialing; wait for the full
		// fleet so the matrix job genuinely exercises distribution.
		joinDeadline := time.Now().Add(2 * time.Minute)
		for fleet.WorkerCount() < workersN {
			if time.Now().After(joinDeadline) {
				return fmt.Errorf("only %d/%d workers joined within 2m", fleet.WorkerCount(), workersN)
			}
			time.Sleep(100 * time.Millisecond)
		}
		fmt.Printf("optima-server: %d workers joined the fleet on %s\n", workersN, fleet.Addr())
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("optima-server: smoke on %s\n", base)

	// Session.
	var sess struct {
		ID string `json:"id"`
	}
	if err := postJSON(base+"/api/sessions", nil, &sess); err != nil {
		return fmt.Errorf("create session: %w", err)
	}

	// A small behavioral sweep: 4 × 2 × 2 corners at the nominal condition.
	// The distributed variant runs the same grid as a two-condition matrix,
	// so the cells fan out across the worker fleet.
	req := map[string]any{
		"kind":   "sweep",
		"tau0":   "0.16:0.28:4",
		"vdac0":  "0.3,0.4",
		"vdacfs": "0.8,1.0",
	}
	if fleet != nil {
		req["kind"] = "matrix"
		req["conditions"] = "TT@1.0V@27C,SS@0.90V@60C"
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := postJSON(base+"/api/sessions/"+sess.ID+"/jobs", req, &job); err != nil {
		return fmt.Errorf("submit %s: %w", req["kind"], err)
	}

	// Follow the stream to the terminal event.
	ws, err := server.DialWS(base + "/api/sessions/" + sess.ID + "/jobs/" + job.ID + "/ws")
	if err != nil {
		return fmt.Errorf("dial ws: %w", err)
	}
	defer ws.Close()
	deadline := time.After(60 * time.Second)
	terminal := ""
	for terminal == "" {
		select {
		case <-deadline:
			return fmt.Errorf("no terminal event within 60s")
		default:
		}
		msg, err := ws.ReadMessage()
		if err != nil {
			return fmt.Errorf("ws read: %w", err)
		}
		var ev server.Event
		if err := json.Unmarshal(msg, &ev); err != nil {
			return fmt.Errorf("ws event: %w", err)
		}
		fmt.Printf("optima-server: event %s\n", msg)
		switch ev.Type {
		case server.EventDone, server.EventFailed, server.EventCanceled:
			terminal = ev.Type
		}
	}
	if terminal != server.EventDone {
		return fmt.Errorf("job ended %s, want done", terminal)
	}

	// The job record must agree and carry the result.
	var st server.JobStatus
	if err := getJSON(base+"/api/sessions/"+sess.ID+"/jobs/"+job.ID, &st); err != nil {
		return err
	}
	if st.State != server.JobDone || len(st.Result) == 0 {
		return fmt.Errorf("job state %s with %d result bytes, want done with a result", st.State, len(st.Result))
	}
	resultCount := 0
	if fleet != nil {
		var res server.MatrixResult
		if err := json.Unmarshal(st.Result, &res); err != nil {
			return err
		}
		if resultCount = len(res.Robust); resultCount == 0 {
			return fmt.Errorf("matrix returned no robust summaries")
		}
		// The point of the variant: the cells must have crossed the wire.
		fs := fleet.Stats()
		if fs.CellsShipped == 0 || fs.Results == 0 {
			return fmt.Errorf("fleet shipped %d cells and accepted %d results, want > 0 (stats: %v)",
				fs.CellsShipped, fs.Results, fs)
		}
		fmt.Printf("optima-server: fleet %v\n", fs)
	} else {
		var res server.SweepResult
		if err := json.Unmarshal(st.Result, &res); err != nil {
			return err
		}
		if resultCount = len(res.Points); resultCount == 0 {
			return fmt.Errorf("sweep returned no points")
		}
	}

	// The telemetry surface: /metrics must serve well-formed Prometheus
	// text with live evaluation counters, and the job's trace endpoint
	// must serve a non-empty Chrome trace.
	if err := checkMetrics(base + "/metrics"); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if err := checkTrace(base + "/api/sessions/" + sess.ID + "/jobs/" + job.ID + "/trace"); err != nil {
		return fmt.Errorf("trace: %w", err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	fmt.Printf("optima-server: smoke ok (%d %s results)\n", resultCount, req["kind"])
	return nil
}

// expositionLine matches one well-formed Prometheus text line: a comment
// (HELP/TYPE) or a `name{labels} value` sample.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$`)

// checkMetrics scrapes url and fails on malformed exposition text or a
// zero behavioral-evaluation counter — a smoke run just evaluated a sweep,
// so a zero counter means the instruments are not wired.
func checkMetrics(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("content type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	evals := -1.0
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			return fmt.Errorf("malformed exposition line %q", line)
		}
		if name, val, ok := strings.Cut(line, " "); ok && name == `optima_evals_total{backend="behavioral"}` {
			if evals, err = strconv.ParseFloat(val, 64); err != nil {
				return fmt.Errorf("bad counter value %q: %w", val, err)
			}
		}
	}
	if evals <= 0 {
		return fmt.Errorf("optima_evals_total{backend=\"behavioral\"} is %v after a sweep, want > 0", evals)
	}
	fmt.Printf("optima-server: metrics ok (%d bytes, %g behavioral evals)\n", len(body), evals)
	return nil
}

// checkTrace fetches a finished job's trace and fails unless it is valid
// Chrome trace-format JSON with at least one event (the job span).
func checkTrace(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		return fmt.Errorf("invalid trace JSON: %w", err)
	}
	if len(parsed.TraceEvents) == 0 {
		return fmt.Errorf("trace has no events; the job span never reached the recorder")
	}
	fmt.Printf("optima-server: trace ok (%d events)\n", len(parsed.TraceEvents))
	return nil
}

func postJSON(url string, body any, out any) error {
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
