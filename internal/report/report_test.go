package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", "x")
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "alpha") || !strings.Contains(s, "1.5") {
		t.Fatalf("render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`hello, "world"`, 2)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"hello, \"\"world\"\"\",2\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestChartASCII(t *testing.T) {
	var c Chart
	c.Title = "t"
	c.XLabel = "x"
	c.YLabel = "y"
	if err := c.AddSeries("s1", []float64{0, 1, 2}, []float64{0, 1, 4}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.RenderASCII(&sb, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "s1") {
		t.Fatalf("ascii chart missing content:\n%s", out)
	}
}

func TestChartSeriesValidation(t *testing.T) {
	var c Chart
	if err := c.AddSeries("bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestChartEmptyASCII(t *testing.T) {
	var c Chart
	var sb strings.Builder
	if err := c.RenderASCII(&sb, 30, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty chart not flagged")
	}
}

func TestChartSVGWellFormed(t *testing.T) {
	var c Chart
	c.Title = "Energy & <Error>"
	if err := c.AddSeries("series \"A\"", []float64{0, 1}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.RenderSVG(&sb, 400, 300); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Contains(svg, "<Error>") {
		t.Fatal("unescaped XML in title")
	}
	if !strings.Contains(svg, "polyline") {
		t.Fatal("missing polyline")
	}
}

func TestChartFlatSeriesDoesNotDivideByZero(t *testing.T) {
	var c Chart
	if err := c.AddSeries("flat", []float64{1, 1}, []float64{2, 2}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.RenderSVG(&sb, 300, 200); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestOutputWritesArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	o, err := NewOutput(dir)
	if err != nil {
		t.Fatal(err)
	}
	o.Quiet = true
	tb := NewTable("T", "a")
	tb.AddRow(1)
	if err := o.WriteTable("table1", tb); err != nil {
		t.Fatal(err)
	}
	var c Chart
	if err := c.AddSeries("s", []float64{0, 1}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteChart("chart1", &c); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.txt", "table1.csv", "chart1.svg"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("artifact %s missing: %v", name, err)
		}
	}
}
