package core

import (
	"fmt"
	"runtime"
	"sync"

	"optima/internal/device"
	"optima/internal/linalg"
	"optima/internal/poly"
	"optima/internal/spice"
	"optima/internal/sram"
	"optima/internal/stats"
)

// CalibrationConfig controls the golden-simulation sweeps and the
// polynomial degrees of the fits. DefaultCalibration returns the settings
// used for all reported experiments.
type CalibrationConfig struct {
	Tech device.Tech
	// Time window and sampling for discharge sweeps.
	TMax  float64 // [s]
	TStep float64 // [s]
	// Word-line voltage grid.
	VWLMin, VWLMax, VWLStep float64
	// Supply grid for Eq. 4 / Eq. 7 / Eq. 8.
	VDDs []float64
	// Temperature grid [°C] for Eq. 5 / Eq. 7 / Eq. 8.
	Temps []float64
	// Monte-Carlo settings for the mismatch model (Eq. 6).
	MCSamples int
	MCVWLs    []float64
	Seed      uint64
	// Polynomial degrees, following the paper's p-notation.
	DegVod, DegTime              int // Eq. 3: p4(Vod), p2(t)
	DegVDD                       int // Eq. 4: p2(ΔVDD)
	DegTempVWL                   int // Eq. 5: p3(V_WL)
	DegSigmaT, DegSigmaVWL       int // Eq. 6: p3(t), p3(V_WL)
	DegWriteVDD, DegWriteT       int // Eq. 7: p2(VDD), p1(T)
	DegEdcVDD, DegEdcDV, DegEdcT int // Eq. 8: p1, p3, p1
	// Spice solver settings.
	Spice spice.Config
	// Workers bounds the calibration worker pool (0 = GOMAXPROCS).
	Workers int
}

// DefaultCalibration returns the standard calibration recipe: a 17-point
// word-line grid spanning sub-threshold (0.25 V) to full rail (1.05 V),
// 2.4 ns discharge window (covering 8·τ0 at the largest explored τ0),
// 5-point supply and temperature grids, and 120 Monte-Carlo samples per
// mismatch point.
func DefaultCalibration() CalibrationConfig {
	return CalibrationConfig{
		Tech:      device.Generic65(),
		TMax:      2.25e-9,
		TStep:     0.06e-9,
		VWLMin:    0.30,
		VWLMax:    1.00,
		VWLStep:   0.05,
		VDDs:      []float64{0.90, 0.95, 1.00, 1.05, 1.10},
		Temps:     []float64{0, 20, 40, 60, 80},
		MCSamples: 120,
		MCVWLs:    []float64{0.30, 0.45, 0.60, 0.75, 0.90, 1.00},
		Seed:      0x0071a_2024,
		DegVod:    4, DegTime: 2,
		DegVDD:     2,
		DegTempVWL: 3,
		DegSigmaT:  3, DegSigmaVWL: 3,
		DegWriteVDD: 2, DegWriteT: 1,
		DegEdcVDD: 1, DegEdcDV: 3, DegEdcT: 1,
		Spice: spice.DefaultConfig(),
	}
}

// QuickCalibration returns a reduced recipe for tests: coarser grids and
// fewer Monte-Carlo samples, roughly 6× faster than the default.
func QuickCalibration() CalibrationConfig {
	cfg := DefaultCalibration()
	cfg.TStep = 0.12e-9
	cfg.VWLStep = 0.10
	cfg.VDDs = []float64{0.90, 1.00, 1.10}
	cfg.Temps = []float64{0, 40, 80}
	cfg.MCSamples = 60
	cfg.MCVWLs = []float64{0.35, 0.60, 0.80, 1.00}
	return cfg
}

func (c CalibrationConfig) vwlGrid() []float64 {
	var grid []float64
	for v := c.VWLMin; v <= c.VWLMax+1e-12; v += c.VWLStep {
		grid = append(grid, v)
	}
	return grid
}

func (c CalibrationConfig) tGrid() []float64 {
	var grid []float64
	for t := c.TStep; t <= c.TMax+1e-21; t += c.TStep {
		grid = append(grid, t)
	}
	return grid
}

// goldenCurve is one golden discharge transient sampled on the t-grid.
type goldenCurve struct {
	vwl, vdd, tempC float64
	vbl             []float64 // V_BL at each t-grid point
}

// Calibrate runs the golden sweeps and least-squares fits and returns the
// calibrated OPTIMA model together with its fit report.
func Calibrate(cfg CalibrationConfig) (*Model, error) {
	tGrid := cfg.tGrid()
	vwlGrid := cfg.vwlGrid()
	transients := 0

	// --- Golden sweep 1: (VWL × t) at nominal, plus VDD and T variants. ---
	type job struct{ vwl, vdd, tempC float64 }
	var jobs []job
	for _, vwl := range vwlGrid {
		jobs = append(jobs, job{vwl, device.NominalVDD, device.NominalTempC})
		for _, vdd := range cfg.VDDs {
			if vdd != device.NominalVDD {
				jobs = append(jobs, job{vwl, vdd, device.NominalTempC})
			}
		}
		for _, tc := range cfg.Temps {
			if tc != device.NominalTempC {
				jobs = append(jobs, job{vwl, device.NominalVDD, tc})
			}
		}
	}
	curves := make([]goldenCurve, len(jobs))
	if err := parallelFor(cfg.Workers, len(jobs), func(i int) error {
		j := jobs[i]
		cond := device.PVT{Corner: device.CornerTT, VDD: j.vdd, TempC: j.tempC}
		dp := spice.NewDischargePath(cfg.Tech, SupplyScaledVWL(j.vwl, j.vdd), cond)
		res, err := dp.Discharge(cfg.TMax, cfg.Spice, cfg.TStep/2)
		if err != nil {
			return fmt.Errorf("core: golden sweep vwl=%.2f vdd=%.2f T=%.0f: %w", j.vwl, j.vdd, j.tempC, err)
		}
		vbl := make([]float64, len(tGrid))
		for k, t := range tGrid {
			vbl[k] = res.Waveform.NodeAt(0, t)
		}
		curves[i] = goldenCurve{vwl: j.vwl, vdd: j.vdd, tempC: j.tempC, vbl: vbl}
		return nil
	}); err != nil {
		return nil, err
	}
	transients += len(jobs)

	nominal := make([]goldenCurve, 0, len(vwlGrid))
	vddVar := make([]goldenCurve, 0)
	tempVar := make([]goldenCurve, 0)
	for _, c := range curves {
		switch {
		case c.vdd == device.NominalVDD && c.tempC == device.NominalTempC:
			nominal = append(nominal, c)
		case c.tempC == device.NominalTempC:
			vddVar = append(vddVar, c)
		default:
			tempVar = append(tempVar, c)
		}
	}

	m := &Model{Version: ModelVersion, Technology: "generic-65nm"}
	m.Discharge.VthRef = cfg.Tech.Vth0
	m.Discharge.VDDNom = device.NominalVDD
	m.Discharge.TnomC = device.NominalTempC

	// --- Eq. 3: rank-1 separable fit of VBL − VDD over (Vod, t). ---
	var baseSamples []poly.Sample
	for _, c := range nominal {
		for k, t := range tGrid {
			baseSamples = append(baseSamples, poly.Sample{
				X: c.vwl - m.Discharge.VthRef,
				Y: t * timeScale,
				Z: c.vbl[k] - device.NominalVDD,
			})
		}
	}
	base, baseRMS, err := poly.FitSeparable(baseSamples, cfg.DegVod, cfg.DegTime, 80, 1e-13)
	if err != nil {
		return nil, fmt.Errorf("core: base discharge fit: %w", err)
	}
	m.Discharge.Base = base
	m.Report.BaseRMSVolts = baseRMS

	// --- Eq. 4: p2(ΔVDD) multiplying the base model. ---
	// Linear least squares over the supply-sweep curves (the nominal curves
	// participate with ΔVDD = 0 to pin the factor near 1).
	{
		var rows [][]float64
		var rhs []float64
		add := func(c goldenCurve) {
			dv := c.vdd - device.NominalVDD
			for k, t := range tGrid {
				vb := m.Discharge.VBLBase(t, c.vwl)
				row := make([]float64, cfg.DegVDD+1)
				p := vb
				for d := 0; d <= cfg.DegVDD; d++ {
					row[d] = p
					p *= dv
				}
				rows = append(rows, row)
				rhs = append(rhs, c.vbl[k])
			}
		}
		for _, c := range nominal {
			add(c)
		}
		for _, c := range vddVar {
			add(c)
		}
		a, err := linalg.NewMatrixFromRows(rows)
		if err != nil {
			return nil, fmt.Errorf("core: VDD design matrix: %w", err)
		}
		coeffs, _, err := linalg.LeastSquares(a, rhs)
		if err != nil {
			return nil, fmt.Errorf("core: VDD fit: %w", err)
		}
		m.Discharge.VDDFactor = poly.Polynomial{Coeffs: coeffs}
		// Report RMS on the supply-variation curves only (as the paper does).
		var resid []float64
		for _, c := range vddVar {
			for k, t := range tGrid {
				resid = append(resid, m.Discharge.VBL(t, c.vwl, c.vdd, c.tempC)-c.vbl[k])
			}
		}
		m.Report.VDDRMSVolts = stats.RMS(resid)
	}

	// --- Eq. 5: additive temperature term t·ΔT·p3(V_WL). ---
	{
		var rows [][]float64
		var rhs []float64
		for _, c := range tempVar {
			dt := c.tempC - device.NominalTempC
			for k, t := range tGrid {
				pred := m.Discharge.VBLBase(t, c.vwl) * m.Discharge.VDDFactor.Eval(0)
				row := make([]float64, cfg.DegTempVWL+1)
				p := t * timeScale * dt
				for d := 0; d <= cfg.DegTempVWL; d++ {
					row[d] = p
					p *= c.vwl
				}
				rows = append(rows, row)
				rhs = append(rhs, c.vbl[k]-pred)
			}
		}
		a, err := linalg.NewMatrixFromRows(rows)
		if err != nil {
			return nil, fmt.Errorf("core: temperature design matrix: %w", err)
		}
		coeffs, _, err := linalg.LeastSquares(a, rhs)
		if err != nil {
			return nil, fmt.Errorf("core: temperature fit: %w", err)
		}
		m.Discharge.TempSlope = poly.Polynomial{Coeffs: coeffs}
		var resid []float64
		for _, c := range tempVar {
			for k, t := range tGrid {
				resid = append(resid, m.Discharge.VBL(t, c.vwl, c.vdd, c.tempC)-c.vbl[k])
			}
		}
		m.Report.TempRMSVolts = stats.RMS(resid)
	}

	// --- Eq. 6: mismatch σ(t, V_WL) from Monte Carlo. ---
	{
		type mcResult struct {
			vwl   float64
			sigma []float64 // per t-grid point
		}
		results := make([]mcResult, len(cfg.MCVWLs))
		rngs := make([]*stats.RNG, len(cfg.MCVWLs))
		master := stats.NewRNG(cfg.Seed)
		for i := range rngs {
			rngs[i] = master.Split()
		}
		if err := parallelFor(cfg.Workers, len(cfg.MCVWLs), func(i int) error {
			vwl := cfg.MCVWLs[i]
			rng := rngs[i]
			accs := make([]stats.Accumulator, len(tGrid))
			cond := device.Nominal()
			for s := 0; s < cfg.MCSamples; s++ {
				dp := spice.NewDischargePath(cfg.Tech, vwl, cond)
				dp.SampleMismatch(rng)
				res, err := dp.Discharge(cfg.TMax, cfg.Spice, cfg.TStep/2)
				if err != nil {
					return fmt.Errorf("core: mismatch MC vwl=%.2f sample %d: %w", vwl, s, err)
				}
				for k, t := range tGrid {
					accs[k].Add(res.Waveform.NodeAt(0, t))
				}
			}
			sig := make([]float64, len(tGrid))
			for k := range accs {
				sig[k] = accs[k].StdDev()
			}
			results[i] = mcResult{vwl: vwl, sigma: sig}
			return nil
		}); err != nil {
			return nil, err
		}
		transients += len(cfg.MCVWLs) * cfg.MCSamples

		var sigSamples []poly.Sample
		for _, r := range results {
			for k, t := range tGrid {
				sigSamples = append(sigSamples, poly.Sample{X: t * timeScale, Y: r.vwl, Z: r.sigma[k]})
			}
		}
		sigModel, sigRMS, err := poly.FitSeparable(sigSamples, cfg.DegSigmaT, cfg.DegSigmaVWL, 80, 1e-13)
		if err != nil {
			return nil, fmt.Errorf("core: mismatch sigma fit: %w", err)
		}
		m.Discharge.Sigma = sigModel
		m.Report.SigmaRMSVolts = sigRMS
	}

	// --- Eq. 7: write energy over (VDD × T). ---
	{
		var samples []poly.Sample
		for _, vdd := range cfg.VDDs {
			for _, tc := range cfg.Temps {
				cond := device.PVT{Corner: device.CornerTT, VDD: vdd, TempC: tc}
				e, err := sram.WriteEnergy(cfg.Tech, spice.DefaultCBL, cond, cfg.Spice)
				if err != nil {
					return nil, fmt.Errorf("core: write energy at %v: %w", cond, err)
				}
				samples = append(samples, poly.Sample{X: vdd, Y: tc, Z: e})
				transients++
			}
		}
		wr, wrRMS, err := poly.FitSeparable(samples, cfg.DegWriteVDD, cfg.DegWriteT, 80, 1e-14)
		if err != nil {
			return nil, fmt.Errorf("core: write energy fit: %w", err)
		}
		m.Energy.Write = wr
		m.Report.WriteRMSJoules = wrRMS
	}

	// --- Eq. 8: discharge (recharge) energy over (VDD, ΔV, T). ---
	{
		var samples []poly.SampleN
		add := func(c goldenCurve) {
			for k := range tGrid {
				dv := c.vdd - c.vbl[k]
				if dv < 0 {
					dv = 0
				}
				e := spice.DefaultCBL * c.vdd * dv
				samples = append(samples, poly.SampleN{Xs: []float64{c.vdd, dv, c.tempC}, Z: e})
			}
		}
		for _, c := range nominal {
			add(c)
		}
		for _, c := range vddVar {
			add(c)
		}
		for _, c := range tempVar {
			add(c)
		}
		edc, edcRMS, err := poly.FitProduct(samples, []int{cfg.DegEdcVDD, cfg.DegEdcDV, cfg.DegEdcT}, 60, 1e-14)
		if err != nil {
			return nil, fmt.Errorf("core: discharge energy fit: %w", err)
		}
		m.Energy.Discharge = edc
		m.Report.DischRMSJoules = edcRMS
	}

	m.Report.GoldenTransients = transients
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// parallelFor runs fn(i) for i in [0, n) on a bounded worker pool and
// returns the first error encountered.
func parallelFor(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		next  int
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if first != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
