package dnn

import (
	"optima/internal/stats"
)

// Residual is a two-convolution residual block:
//
//	out = ReLU( BN2(Conv2(ReLU(BN1(Conv1(x))))) + proj(x) )
//
// where proj is an optional 1×1 convolution used when the channel count
// changes (the classic ResNet basic block).
type Residual struct {
	name  string
	Conv1 *Conv2D
	BN1   *BatchNorm2D
	Relu1 *ReLU
	Conv2 *Conv2D
	BN2   *BatchNorm2D
	Proj  *Conv2D // nil when input channels == output channels
	relu2 *ReLU

	lastSum *Tensor
}

// NewResidual builds a basic residual block mapping inC → outC channels.
func NewResidual(name string, inC, outC int, rng *stats.RNG) *Residual {
	r := &Residual{
		name:  name,
		Conv1: NewConv2D(name+".conv1", inC, outC, 3, rng),
		BN1:   NewBatchNorm2D(name+".bn1", outC),
		Relu1: NewReLU(name + ".relu1"),
		Conv2: NewConv2D(name+".conv2", outC, outC, 3, rng),
		BN2:   NewBatchNorm2D(name+".bn2", outC),
		relu2: NewReLU(name + ".relu2"),
	}
	if inC != outC {
		r.Proj = NewConv2D(name+".proj", inC, outC, 1, rng)
	}
	return r
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := append(r.Conv1.Params(), r.BN1.Params()...)
	ps = append(ps, r.Conv2.Params()...)
	ps = append(ps, r.BN2.Params()...)
	if r.Proj != nil {
		ps = append(ps, r.Proj.Params()...)
	}
	return ps
}

// MACs implements MACCounter (sums the block's convolutions).
func (r *Residual) MACs(c, h, w int) (int64, int, int, int) {
	m1, oc, oh, ow := r.Conv1.MACs(c, h, w)
	m2, _, _, _ := r.Conv2.MACs(oc, oh, ow)
	total := m1 + m2
	if r.Proj != nil {
		mp, _, _, _ := r.Proj.MACs(c, h, w)
		total += mp
	}
	return total, oc, oh, ow
}

// Forward implements Layer.
func (r *Residual) Forward(x *Tensor, train bool) *Tensor {
	main := r.Conv1.Forward(x, train)
	main = r.BN1.Forward(main, train)
	main = r.Relu1.Forward(main, train)
	main = r.Conv2.Forward(main, train)
	main = r.BN2.Forward(main, train)
	skip := x
	if r.Proj != nil {
		skip = r.Proj.Forward(x, train)
	}
	sum := main.Clone()
	for i := range sum.Data {
		sum.Data[i] += skip.Data[i]
	}
	r.lastSum = sum
	return r.relu2.Forward(sum, train)
}

// Backward implements Layer.
func (r *Residual) Backward(grad *Tensor) *Tensor {
	g := r.relu2.Backward(grad)
	// Branch gradients: the sum node passes g to both paths.
	gMain := r.BN2.Backward(g)
	gMain = r.Conv2.Backward(gMain)
	gMain = r.Relu1.Backward(gMain)
	gMain = r.BN1.Backward(gMain)
	din := r.Conv1.Backward(gMain)
	if r.Proj != nil {
		gSkip := r.Proj.Backward(g)
		for i := range din.Data {
			din.Data[i] += gSkip.Data[i]
		}
	} else {
		for i := range din.Data {
			din.Data[i] += g.Data[i]
		}
	}
	return din
}

// ConvLayers returns the block's convolutions paired with the batch-norms
// to fold into them (projection has no batch-norm).
func (r *Residual) ConvLayers() (convs []*Conv2D, bns []*BatchNorm2D) {
	convs = []*Conv2D{r.Conv1, r.Conv2}
	bns = []*BatchNorm2D{r.BN1, r.BN2}
	if r.Proj != nil {
		convs = append(convs, r.Proj)
		bns = append(bns, nil)
	}
	return convs, bns
}
