// Package engine is the unified concurrent evaluation service of the
// reproduction: every corner/condition evaluation — the paper's 48-corner
// design-space sweep, the PVT robustness sweeps, and the figure/table
// regenerations that revisit the same configurations — is submitted here
// instead of rolling its own concurrency.
//
// The engine separates *evaluation* from *exploration* (the compiler-style
// split of OpenACM): exploration layers (internal/dse, internal/exp) decide
// which (config, condition) jobs to run; the engine decides how — a bounded
// worker pool with deterministic result ordering, a tiered content-addressed
// result cache keyed on (backend, config, condition), and a pluggable
// Backend so the same sweep can run against the fast behavioral models or
// the golden transient solver (or both, for comparison mode).
//
// The cache has up to three tiers: the in-memory map (always on), an
// optional persistent Store (internal/store — survives the process, shared
// across runs and CI jobs), and the backend itself. Lookups fall through
// memory → store → backend; results computed by the backend are written
// back to the store, in groups on the batched submission path.
//
// # Two-level concurrency
//
// The engine's worker bound is a total budget spent on two levels. The
// job level fans distinct (config, condition) jobs out across a bounded
// pool; the intra-job level lets a backend that implements IntraBackend
// parallelize inside one evaluation (the golden backend fans each corner's
// ~500 transients — trim calibration, the 16×16 input space, and the
// Monte-Carlo sigma samples — across its granted share). For a batch of n
// runnable jobs the engine grants each job total/min(total, n) intra
// workers, so job-level × intra-job concurrency never oversubscribes the
// budget: a 48-corner sweep spends everything on job fan-out, while a
// single golden corner spends everything inside the corner.
//
// Determinism is preserved at both levels: results come back in job order
// regardless of worker counts, and intra-job workers fill fixed
// per-transient slots that reduce serially in input order — Metrics are
// byte-identical at any budget, which is what makes the content-addressed
// cache (and the persistent store) sound.
//
// # Condition plane
//
// The operating condition is a first-class evaluation dimension, not a
// per-call scalar: a ConditionSet (named, ordered, duplicate-free, with a
// canonical "TT@1V@27C,SS@0.9V@60C" spec form) spans the cross-condition
// axis, and EvaluateMatrix(configs × conditions) submits the whole plane as
// one batch, returning a Matrix indexed [config][condition]. The set never
// changes keying — each (config, condition) cell remains an independent
// cache/store key — so every cache tier serves partial overlaps between
// matrices, sweeps and single evaluations unchanged. The exploration
// layers' robust analyses (dse.RobustSweep, the search's robust mode) are
// reductions over this plane.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"optima/internal/device"
	"optima/internal/mult"
	"optima/internal/obs"
	"optima/internal/sched"
)

// MetricsSchema versions the semantic content of Metrics. It participates
// in the persistent store's fingerprint, so bumping it invalidates every
// previously persisted result. Bump it whenever the meaning or computation
// of any Metrics field changes.
//
// Schema 2: the golden backend's Monte-Carlo σ estimate switched from one
// sequential RNG stream across samples to one deterministic stream per
// sample (required for schedule-independent intra-job parallelism), which
// changes golden SigmaMax values.
const MetricsSchema = 2

// Job is one unit of evaluation work: score a multiplier configuration at
// an operating condition over the full input space.
type Job struct {
	Config mult.Config
	Cond   device.PVT
}

// Key content-addresses one evaluation result: the backend identity plus
// the job. Config and PVT are flat value structs, so Key is comparable and
// two jobs collide exactly when they would produce the same result.
type Key struct {
	Backend string
	Job
}

// CacheEntry pairs a key with its metrics — the unit a Store persists.
type CacheEntry struct {
	Key Key
	Met Metrics
}

// Store is the optional persistent tier of the result cache. Implementations
// must be safe for concurrent use. Get misses are cheap (in-memory index);
// PutBatch appends a group of freshly computed results durably. The
// canonical implementation is internal/store; the interface stays here so a
// future key-range-sharded or remote store drops in without touching the
// exploration layers.
type Store interface {
	Get(Key) (Metrics, bool)
	PutBatch([]CacheEntry) error
}

// Stats reports the engine's cache accounting. The JSON tags make a
// snapshot (or a Sub delta) directly reportable over an API — per-job
// evaluated / cache-hit / store-hit counts without string-parsing String.
type Stats struct {
	// Hits counts evaluations served from the in-memory tier (including
	// waits on an in-flight computation of the same key).
	Hits uint64 `json:"cache_hits"`
	// DiskHits counts evaluations served from the persistent store tier.
	DiskHits uint64 `json:"store_hits"`
	// Misses counts evaluations that ran the backend.
	Misses uint64 `json:"evaluated"`
	// StoreErrors counts failed persistence attempts (the result is still
	// returned and cached in memory; the store write is best-effort).
	StoreErrors uint64 `json:"store_errors"`
	// Entries is the number of distinct results held in memory.
	Entries int `json:"entries"`
}

// String renders the accounting for log lines. The store clauses appear
// independently: store errors without disk hits report only the errors, not
// a spurious "0 store hits".
func (s Stats) String() string {
	out := fmt.Sprintf("%d evaluated, %d cache hits, %d entries", s.Misses, s.Hits, s.Entries)
	if s.DiskHits > 0 {
		out += fmt.Sprintf(", %d store hits", s.DiskHits)
	}
	if s.StoreErrors > 0 {
		out += fmt.Sprintf(", %d store errors", s.StoreErrors)
	}
	return out
}

// Sub returns the counter deltas s − prev (Entries carries over from s).
// Exploration layers use it to attribute engine activity to one phase — the
// adaptive search records a Stats delta per rung, which is how its Trace
// separates fresh backend evaluations from cache and store hits.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:        s.Hits - prev.Hits,
		DiskHits:    s.DiskHits - prev.DiskHits,
		Misses:      s.Misses - prev.Misses,
		StoreErrors: s.StoreErrors - prev.StoreErrors,
		Entries:     s.Entries,
	}
}

// entry is one cache slot. done is closed when met/err are valid, so
// concurrent submitters of the same key wait instead of recomputing.
type entry struct {
	done chan struct{}
	met  Metrics
	err  error
}

// engineMetrics holds the engine's instrument handles. The zero value —
// no recorder attached — is fully inert: every handle is nil, and every
// obs method no-ops on a nil receiver, so the instrumented paths never
// branch on "is telemetry on".
type engineMetrics struct {
	hitsMem   *obs.Counter
	hitsStore *obs.Counter
	evals     *obs.Counter
	storeErrs *obs.Counter
	evalDur   *obs.Histogram
	queueWait *obs.Histogram
	busy      *obs.Gauge
}

func newEngineMetrics(rec *obs.Recorder, backend string) engineMetrics {
	if rec == nil {
		return engineMetrics{}
	}
	reg := rec.Metrics()
	return engineMetrics{
		hitsMem:   reg.Counter("optima_cache_hits_total", "evaluations served from a cache tier", "tier", "memory"),
		hitsStore: reg.Counter("optima_cache_hits_total", "evaluations served from a cache tier", "tier", "store"),
		evals:     reg.Counter("optima_evals_total", "backend evaluations run", "backend", backend),
		storeErrs: reg.Counter("optima_store_errors_total", "failed best-effort store writes"),
		evalDur:   reg.Histogram("optima_eval_duration_seconds", "backend evaluation wall time", nil, "backend", backend),
		queueWait: reg.Histogram("optima_queue_wait_seconds", "delay between batch submission and a cell starting on the backend", nil),
		busy:      reg.Gauge("optima_workers_busy", "evaluations currently running on the backend"),
	}
}

// Engine is a memoizing concurrent evaluation service over one backend.
// All methods are safe for concurrent use.
type Engine struct {
	backend Backend
	workers int
	store   Store // nil = memory-only cache

	mu        sync.Mutex
	cache     map[Key]*entry
	hits      uint64
	diskHits  uint64
	misses    uint64
	storeErrs uint64
	rec       *obs.Recorder
	em        engineMetrics
}

// New returns an engine over the given backend. workers bounds the worker
// pool of EvaluateAll; workers <= 0 uses GOMAXPROCS.
func New(backend Backend, workers int) *Engine {
	return &Engine{backend: backend, workers: workers, cache: map[Key]*entry{}}
}

// WithStore attaches a persistent store tier and returns the engine (for
// chaining). Call before the first evaluation; results computed earlier are
// not back-filled.
func (e *Engine) WithStore(s Store) *Engine {
	e.mu.Lock()
	e.store = s
	e.mu.Unlock()
	return e
}

// WithRecorder attaches a telemetry recorder and returns the engine (for
// chaining, like WithStore): spans for every backend evaluation and batch,
// cache-tier / eval-duration / queue-wait metrics into the recorder's
// registry. Timing data never flows into results — Metrics (and therefore
// everything cached or persisted) are byte-identical with or without a
// recorder, at any worker count. A per-submission BatchOptions.Recorder
// overrides this one.
func (e *Engine) WithRecorder(rec *obs.Recorder) *Engine {
	e.mu.Lock()
	e.rec = rec
	e.em = newEngineMetrics(rec, e.backend.Name())
	e.mu.Unlock()
	if g, ok := e.backend.(*Golden); ok {
		g.setRecorder(rec)
	}
	return e
}

// obsFor resolves one submission's telemetry: an explicit per-batch
// recorder wins over the engine's own; instrument handles are rebuilt only
// for a foreign recorder (registration is idempotent, so handles resolve
// to the same series either way).
func (e *Engine) obsFor(rec *obs.Recorder) (*obs.Recorder, engineMetrics) {
	e.mu.Lock()
	own, em := e.rec, e.em
	e.mu.Unlock()
	if rec == nil || rec == own {
		return own, em
	}
	return rec, newEngineMetrics(rec, e.backend.Name())
}

// Backend returns the engine's backend.
func (e *Engine) Backend() Backend { return e.backend }

// Workers returns the engine's total worker budget: the bound on job-level
// × intra-job concurrency across one submission.
func (e *Engine) Workers() int {
	if e.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.workers
}

// splitBudget divides the total worker budget across n runnable jobs:
// up to n jobs run concurrently, each granted intra workers of internal
// parallelism (for backends that implement IntraBackend), with the first
// extra jobs granted one more so a budget that doesn't divide evenly is
// not stranded. The sum of grants over any jobWorkers concurrent jobs
// never exceeds the budget (when n <= total every job may be in flight
// and the grants sum to exactly total; otherwise intra is 1). A single
// job gets the whole budget — the case that makes a lone golden corner
// ~Nx faster.
func (e *Engine) splitBudget(n int) (jobWorkers, intra, extra int) {
	total := e.Workers()
	jobWorkers = total
	if jobWorkers > n {
		jobWorkers = n
	}
	if jobWorkers < 1 {
		jobWorkers = 1
	}
	intra = total / jobWorkers
	if intra < 1 {
		intra = 1
	}
	if n <= total {
		extra = total % jobWorkers
	}
	return jobWorkers, intra, extra
}

// evalBackend runs one job on the backend, granting the intra-job budget
// when the backend can use it. With a recorder, the golden backend takes
// its observed path so the intra-worker fan-out (trim transients,
// input-space and Monte-Carlo phases) shows up under the eval's span.
func (e *Engine) evalBackend(key Key, intra int, rec *obs.Recorder, parent obs.SpanID) (Metrics, error) {
	if g, ok := e.backend.(*Golden); ok && rec != nil {
		return g.evaluateObserved(key.Config, key.Cond, intra, rec, parent)
	}
	if ib, ok := e.backend.(IntraBackend); ok && intra != 1 {
		return ib.EvaluateBudget(key.Config, key.Cond, intra)
	}
	return e.backend.Evaluate(key.Config, key.Cond)
}

// runClaimed resolves a claimed cache entry against the backend. The done
// channel closes on every path: a panicking backend is recovered into the
// entry's error, so concurrent submitters of the key never block forever
// on a dead claim. The eval span and its metrics resolve in the same
// deferred step — panics are timed and counted like any other evaluation.
func (e *Engine) runClaimed(ent *entry, key Key, intra int, rec *obs.Recorder, parent obs.SpanID, em engineMetrics) {
	var arg string
	if rec != nil {
		arg = fmt.Sprintf("%v @ %v", key.Config, key.Cond)
	}
	span := rec.StartSpan(parent, obs.CatEval, key.Backend, arg)
	em.busy.Add(1)
	defer func() {
		if r := recover(); r != nil {
			ent.err = fmt.Errorf("engine: %s backend panicked on corner %v at %v: %v", key.Backend, key.Config, key.Cond, r)
		}
		em.busy.Add(-1)
		em.evals.Inc()
		em.evalDur.Observe(span.End().Seconds())
		close(ent.done)
	}()
	ent.met, ent.err = e.evalBackend(key, intra, rec, span.ID())
}

// Stats returns a snapshot of the cache accounting.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Hits: e.hits, DiskHits: e.diskHits, Misses: e.misses,
		StoreErrors: e.storeErrs, Entries: len(e.cache),
	}
}

// Evaluate scores one job, serving repeats from the memory tier, then the
// persistent store, then the backend. Concurrent submissions of the same
// key share a single lookup/evaluation. Errors are cached in memory (not
// persisted): backends are deterministic, so a failing corner fails the
// same way every time within a process.
//
// Each Evaluate call is its own submission and is granted the full worker
// budget for intra-job parallelism — callers fanning distinct jobs out
// across their own goroutines would multiply that grant and oversubscribe
// the budget; submit such groups through EvaluateBatch, which negotiates
// the job-level/intra-job split.
func (e *Engine) Evaluate(cfg mult.Config, cond device.PVT) (Metrics, error) {
	key := Key{Backend: e.backend.Name(), Job: Job{Config: cfg, Cond: cond}}
	e.mu.Lock()
	if ent, ok := e.cache[key]; ok {
		e.hits++
		em := e.em
		e.mu.Unlock()
		em.hitsMem.Inc()
		<-ent.done
		return ent.met, ent.err
	}
	ent := &entry{done: make(chan struct{})}
	e.cache[key] = ent
	store := e.store
	rec, em := e.rec, e.em
	e.mu.Unlock()

	if store != nil {
		if e.storeResolve(store, key, ent) {
			if ent.err == nil {
				e.mu.Lock()
				e.diskHits++
				e.mu.Unlock()
				em.hitsStore.Inc()
			}
			return ent.met, ent.err
		}
	}

	e.mu.Lock()
	e.misses++
	e.mu.Unlock()
	// A single submission is the whole fan-out, so it gets the full budget.
	e.runClaimed(ent, key, e.Workers(), rec, 0, em)
	if store != nil && ent.err == nil {
		e.persist([]CacheEntry{{Key: key, Met: ent.met}}, em)
	}
	return ent.met, ent.err
}

// storeResolve consults the persistent tier for a claimed key and, on a
// hit, resolves the entry with the stored metrics. It reports whether the
// entry was resolved — including the case where the Store implementation
// panicked, which resolves the claim with an error instead of stranding it:
// a Store is arbitrary code, and a panic between taking a claim and closing
// its done channel would leave every concurrent waiter blocked forever (the
// PR 3 stuck-waiter class, now machine-checked by optimalint/claimsafety).
func (e *Engine) storeResolve(store Store, key Key, ent *entry) (resolved bool) {
	defer func() {
		if r := recover(); r != nil {
			ent.err = fmt.Errorf("engine: store lookup panicked for corner %v at %v: %v", key.Config, key.Cond, r)
			close(ent.done)
			resolved = true
		}
	}()
	met, ok := store.Get(key)
	if !ok {
		return false
	}
	ent.met = met
	close(ent.done)
	return true
}

// persist writes freshly computed results to the store tier, best-effort:
// a failing store never fails an evaluation, it only loses cache warmth.
func (e *Engine) persist(batch []CacheEntry, em engineMetrics) {
	if len(batch) == 0 {
		return
	}
	if err := e.store.PutBatch(batch); err != nil {
		e.mu.Lock()
		e.storeErrs++
		e.mu.Unlock()
		em.storeErrs.Inc()
	}
}

// BatchOptions configures one batched submission beyond its job list. The
// zero value reproduces plain EvaluateBatch: background context, no
// progress reporting.
type BatchOptions struct {
	// Ctx, when non-nil, cancels the submission: jobs that have not started
	// when the context is done are abandoned — their claims are released
	// from the cache (a cancellation is never memoized) — and the batch
	// returns the context's error. Evaluations already running on the
	// backend complete normally and their results are cached and persisted,
	// so a canceled sweep's finished work stays warm for a rerun.
	Ctx context.Context
	// OnProgress, when non-nil, is called as the batch's cells resolve, with
	// the resolved count so far and the batch size. Cells this batch does
	// not compute itself (memory or store tier, duplicates, keys claimed by
	// a concurrent submission) are reported resolved up front; each backend
	// completion then advances the count by one. Calls are serialized and
	// done is monotone, but they arrive from worker goroutines — keep the
	// callback fast and do not submit engine work from it.
	OnProgress func(done, total int)
	// Recorder, when non-nil, receives this submission's telemetry — the
	// batch/store-lookup/per-cell eval spans and the cache-tier, eval and
	// queue-wait metrics — overriding any engine-level recorder
	// (WithRecorder). Timing never feeds back into results: returned
	// Metrics are byte-identical with or without a recorder, at any
	// worker count.
	Recorder *obs.Recorder
	// ParentSpan parents the submission's batch span (0 = root) — a
	// server job span, a search rung span.
	ParentSpan obs.SpanID
}

// ctx returns the submission's context, defaulting to Background.
func (o BatchOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// EvaluateBatch is the batched submission path: it claims every distinct
// missing key of the batch in one pass (amortizing per-job lock traffic),
// consults the store tier once per key, fans the remaining evaluations out
// on the shared scheduler (internal/sched), and persists the newly computed
// results in a single group write. Results come back in job order —
// independent of the worker count — and duplicate jobs within the batch
// share one evaluation. The first failing job (by index) determines the
// returned error; unlike a plain loop over Evaluate, the batch runs to
// completion so every claimed key ends up resolved.
func (e *Engine) EvaluateBatch(jobs []Job) ([]Metrics, error) {
	return e.EvaluateBatchOpts(jobs, BatchOptions{})
}

// abandon resolves a claimed entry without evaluating it — the submission
// was canceled before the job started. The claim is released from the
// cache so the cancellation is not memoized: a later submission of the key
// claims it afresh and evaluates normally. Waiters already holding the
// entry observe the cancellation error.
func (e *Engine) abandon(key Key, ent *entry, cause error) {
	e.mu.Lock()
	if e.cache[key] == ent {
		delete(e.cache, key)
	}
	e.mu.Unlock()
	ent.err = cause
	close(ent.done)
}

// runBatchBackend resolves a batch's claimed miss set through a
// batch-aware backend. Every claim resolves on every path: a cancellation
// error from the backend abandons the claim (never memoized, exactly like
// the local fan-out's ctx check), any other result closes it, and the
// deferred sweep catches a backend that panicked or violated the
// exactly-once contract — unresolved claims are abandoned with an error
// instead of stranding concurrent waiters (the PR 3 stuck-waiter class).
func (e *Engine) runBatchBackend(ctx context.Context, bb BatchBackend, toRun []Key, owned map[Key]*entry, ran *atomic.Uint64, em engineMetrics, advance func(int)) {
	jobs := make([]Job, len(toRun))
	for i, key := range toRun {
		jobs[i] = key.Job
	}
	// resolved guards the exactly-once contract on this side of the
	// interface: a duplicate onDone for an index is dropped, and the
	// deferred sweep claims any index the backend never reported.
	resolved := make([]atomic.Bool, len(toRun))
	defer func() {
		r := recover()
		for i, key := range toRun {
			if !resolved[i].CompareAndSwap(false, true) {
				continue
			}
			cause := fmt.Errorf("engine: batch backend %s never resolved corner %v at %v", bb.Name(), key.Config, key.Cond)
			if r != nil {
				cause = fmt.Errorf("engine: batch backend %s panicked: %v", bb.Name(), r)
			}
			e.abandon(key, owned[key], cause)
			advance(1)
		}
	}()
	bb.EvaluateJobs(ctx, jobs, e.Workers(), func(i int, met Metrics, err error) {
		if i < 0 || i >= len(toRun) || !resolved[i].CompareAndSwap(false, true) {
			return
		}
		key := toRun[i]
		ent := owned[key]
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			e.abandon(key, ent, err)
		} else {
			ran.Add(1)
			em.evals.Inc()
			ent.met, ent.err = met, err
			close(ent.done)
		}
		advance(1)
	})
}

// EvaluateBatchOpts is EvaluateBatch with a cancellation context and a
// per-cell progress callback (BatchOptions). It is the submission path of
// the exploration layers that must stay interruptible and observable — the
// adaptive search's rungs and the optima-server's jobs.
func (e *Engine) EvaluateBatchOpts(jobs []Job, opts BatchOptions) ([]Metrics, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	ctx := opts.ctx()
	if err := ctx.Err(); err != nil {
		return nil, err // canceled before anything was claimed
	}
	rec, em := e.obsFor(opts.Recorder)
	var batchArg string
	if rec != nil {
		batchArg = fmt.Sprintf("%d jobs", len(jobs))
	}
	bspan := rec.StartSpan(opts.ParentSpan, obs.CatBatch, "evaluate-batch", batchArg)
	defer bspan.End()
	batchStart := rec.Now()
	var progMu sync.Mutex
	resolved := 0
	advance := func(n int) {
		if opts.OnProgress == nil || n == 0 {
			return
		}
		progMu.Lock()
		resolved += n
		opts.OnProgress(resolved, len(jobs))
		progMu.Unlock()
	}
	bname := e.backend.Name()

	// Phase 1: one locked pass claims every key this batch will compute and
	// resolves the rest against the memory tier.
	ents := make([]*entry, len(jobs))
	owned := make(map[Key]*entry)
	var ownedKeys []Key
	var memHits uint64
	e.mu.Lock()
	store := e.store
	for i, j := range jobs {
		key := Key{Backend: bname, Job: j}
		if ent, ok := e.cache[key]; ok {
			// Cached, in flight elsewhere, or a duplicate earlier in this
			// batch — all share the entry.
			e.hits++
			memHits++
			ents[i] = ent
			continue
		}
		ent := &entry{done: make(chan struct{})}
		e.cache[key] = ent
		owned[key] = ent
		ownedKeys = append(ownedKeys, key)
		ents[i] = ent
	}
	e.mu.Unlock()
	em.hitsMem.Add(float64(memHits))

	// Phase 2: store tier. The index lookup is memory-speed, so this stays
	// serial; only true misses proceed to the backend. A cancellation here
	// stops the lookups — the remaining keys fall through to phase 3, which
	// abandons them.
	toRun := ownedKeys
	if store != nil && len(ownedKeys) > 0 {
		var lookupArg string
		if rec != nil {
			lookupArg = fmt.Sprintf("%d keys", len(ownedKeys))
		}
		lookup := rec.StartSpan(bspan.ID(), obs.CatStore, "lookup", lookupArg)
		toRun = toRun[:0]
		var fromDisk uint64
		for n, key := range ownedKeys {
			if ctx.Err() != nil {
				toRun = append(toRun, ownedKeys[n:]...)
				break
			}
			if ent := owned[key]; e.storeResolve(store, key, ent) {
				if ent.err == nil {
					fromDisk++
				}
				continue
			}
			toRun = append(toRun, key)
		}
		lookup.End()
		if fromDisk > 0 {
			e.mu.Lock()
			e.diskHits += fromDisk
			e.mu.Unlock()
			em.hitsStore.Add(float64(fromDisk))
		}
	}
	// Everything the batch does not compute itself — memory and store hits,
	// duplicates, keys in flight under a concurrent submission — is resolved
	// from this batch's point of view.
	advance(len(jobs) - len(toRun))

	// Phase 3: backend fan-out over the remaining keys. Every entry is
	// resolved (results and errors both — panics and cancellations
	// included), so concurrent waiters never hang. The worker budget is
	// split between job-level fan-out and the per-job intra budget of
	// IntraBackend backends.
	if len(toRun) > 0 {
		var ran atomic.Uint64
		if bb, ok := e.backend.(BatchBackend); ok {
			// A batch-aware backend (the remote coordinator) takes the whole
			// miss set in one call and resolves each claim through onDone —
			// distribution happens behind the Backend interface, so the
			// exploration layers above this method are untouched.
			e.runBatchBackend(ctx, bb, toRun, owned, &ran, em, advance)
		} else {
			jobWorkers, intra, extra := e.splitBudget(len(toRun))
			_, _ = sched.Map(jobWorkers, toRun, func(i int, key Key) (struct{}, error) {
				if err := ctx.Err(); err != nil {
					e.abandon(key, owned[key], err)
				} else {
					ran.Add(1)
					grant := intra
					if i < extra {
						grant++
					}
					em.queueWait.Observe((rec.Now() - batchStart).Seconds())
					e.runClaimed(owned[key], key, grant, rec, bspan.ID(), em)
				}
				advance(1)
				return struct{}{}, nil
			})
		}
		// Only jobs that reached the backend are misses — abandoned jobs
		// were neither served nor evaluated.
		if n := ran.Load(); n > 0 {
			e.mu.Lock()
			e.misses += n
			e.mu.Unlock()
		}
		// Phase 4: persist the new results in one group. Abandoned entries
		// carry the cancellation error and are skipped, so a canceled batch
		// persists exactly the work it finished.
		if store != nil && ran.Load() > 0 {
			batch := make([]CacheEntry, 0, len(toRun))
			for _, key := range toRun {
				if ent := owned[key]; ent.err == nil {
					batch = append(batch, CacheEntry{Key: key, Met: ent.met})
				}
			}
			e.persist(batch, em)
		}
	}

	// Assemble in job order; first error (by index) wins.
	results := make([]Metrics, len(jobs))
	for i, ent := range ents {
		<-ent.done
		if ent.err != nil {
			// The condition is part of the failure's identity: a PVT sweep
			// fails at one excursion point, and the caller needs to know which.
			return nil, fmt.Errorf("engine: %s corner %v at %v: %w", bname, jobs[i].Config, jobs[i].Cond, ent.err)
		}
		results[i] = ent.met
	}
	return results, nil
}

// EvaluateAll scores every job and returns the metrics in job order — the
// result is independent of the worker count. It delegates to the batched
// submission path, so per-job scheduling is amortized and results persist
// in groups when a store is attached.
func (e *Engine) EvaluateAll(jobs []Job) ([]Metrics, error) {
	return e.EvaluateBatch(jobs)
}

// Jobs expands a configuration list at one condition.
func Jobs(cfgs []mult.Config, cond device.PVT) []Job {
	jobs := make([]Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = Job{Config: cfg, Cond: cond}
	}
	return jobs
}
