// Command optimalint runs OPTIMA's repo-invariant static-analysis suite —
// the project-specific correctness properties that go vet cannot know
// about, each grounded in a bug this repo has actually shipped:
//
//	determinism   deterministic packages must not derive output from map
//	              iteration order, wall-clock reads, or unseeded randomness
//	claimsafety   a taken cache claim's done channel must close on every
//	              path (no panic window between claim and close)
//	errwrap       fmt.Errorf over an error value must use %w so
//	              errors.Is/As keep working across package boundaries
//	lockedcall    no evaluation, network call, or blocking channel send
//	              while holding a receiver's mutex
//
// Usage:
//
//	optimalint [-list] [packages]
//
// Packages default to ./... (which, per the go tool's rules, excludes
// testdata trees — run `optimalint ./internal/lint/testdata/src/...` to see
// the expected-diagnostic corpus light up). Exit status is 0 when clean, 1
// when there are diagnostics, 2 when the package loader itself cannot run.
//
// Findings are suppressed line-by-line with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the flagged line or the line above it. The reason is mandatory: a
// reasonless suppression is itself a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"

	"optima/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, loadDiags, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimalint:", err)
		os.Exit(2)
	}
	diags := append(loadDiags, lint.Run(pkgs, analyzers)...)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "optimalint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Printf("optimalint: %d package(s) clean\n", len(pkgs))
}
