package server

// job.go defines the job lifecycle: the JSON request schema shared by the
// three job kinds, the state machine (queued → running → done | failed |
// canceled), and the planners that turn a validated request into a
// cancellable closure over the shared evaluation engines. Validation
// errors surface synchronously as 400s at submission; everything after
// submission is reported through the job record and its event topic.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"optima/internal/dse"
	"optima/internal/engine"
	"optima/internal/obs"
	"optima/internal/search"
)

// Job kinds.
const (
	// KindSweep evaluates every corner of the space at one condition and
	// returns all points — the exhaustive grid, served from the cache
	// tiers where warm.
	KindSweep = "sweep"
	// KindSearch runs the adaptive multi-fidelity explorer
	// (internal/search): behavioral screening rungs with successive
	// halving, optional golden promotion of the finalists.
	KindSearch = "search"
	// KindMatrix evaluates every corner at EVERY condition of the set and
	// returns the cross-condition robust summaries (worst-case excursions
	// with arg-worst conditions).
	KindMatrix = "matrix"
)

// Job states.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// Default axis specs — the same defaults as the `optima search` flags, so
// an empty request body explores the same space the CLI does.
const (
	defaultTau0Spec   = "0.16:0.28:100"
	defaultVDAC0Spec  = "0.3:0.5:3"
	defaultVDACFSSpec = "0.7:1.0:4"
)

// JobRequest is the body of POST /api/sessions/{sid}/jobs. Axis specs use
// the `optima search` syntax ("min:max:steps[:log]" or a comma list; τ0 in
// ns, voltages in V) and default to the CLI's search space. Conditions is
// a CORNER@<vdd>V@<temp>C list, defaulting to the server's -conditions
// set (nominal when unset).
type JobRequest struct {
	Kind    string `json:"kind"`
	Tau0    string `json:"tau0,omitempty"`
	VDAC0   string `json:"vdac0,omitempty"`
	VDACFS  string `json:"vdacfs,omitempty"`
	Backend string `json:"backend,omitempty"`
	// Conditions overrides the server's condition set for this job. A
	// sweep needs exactly one condition; matrix and search span the set.
	Conditions string `json:"conditions,omitempty"`

	// Search-only knobs (search.Options; zero values mean the defaults).
	Budget    int     `json:"budget,omitempty"`
	Rungs     int     `json:"rungs,omitempty"`
	Eta       float64 `json:"eta,omitempty"`
	Finalists int     `json:"finalists,omitempty"`
	Refine    bool    `json:"refine,omitempty"`
	// Promote re-evaluates the finalists on the golden transient backend.
	// Unlike the CLI (promote defaults on), the server defaults OFF:
	// golden time on a shared service is opt-in.
	Promote bool   `json:"promote,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
}

// SweepResult is a sweep job's result payload.
type SweepResult struct {
	Condition string              `json:"condition"`
	Points    []search.FrontPoint `json:"points"`
}

// MatrixResult is a matrix job's result payload: one cross-condition
// robust summary per corner, in grid order.
type MatrixResult struct {
	Conditions string               `json:"conditions"`
	Robust     []search.RobustPoint `json:"robust"`
}

// job is one submitted operation's record.
type job struct {
	id   string
	sid  string
	kind string

	mu       sync.Mutex
	state    string
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	stats    engine.Stats
	result   json.RawMessage
	span     obs.SpanID // root of the job's trace subtree; 0 until running
}

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID      string `json:"id"`
	Session string `json:"session"`
	Kind    string `json:"kind"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	// Stats is the engine accounting attributed to this job (the engines'
	// counter delta over its run). With concurrent jobs from other
	// sessions the delta includes their overlap — read it as "work the
	// shared engines did while this job ran".
	Stats *engine.Stats `json:"stats,omitempty"`
	// Result is the kind-specific payload (SweepResult, MatrixResult, or
	// search.JSONReport), present once the job is done.
	Result json.RawMessage `json:"result,omitempty"`
}

func newJob(id, sid, kind string) *job {
	return &job{id: id, sid: sid, kind: kind, state: JobQueued, created: time.Now()}
}

func (j *job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = JobRunning
	j.started = time.Now()
}

func (j *job) finish(state string, result json.RawMessage, stats engine.Stats, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.finished = time.Now()
	j.result = result
	j.stats = stats
	if err != nil {
		j.errMsg = err.Error()
	}
}

func (j *job) currentState() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *job) setSpan(id obs.SpanID) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.span = id
}

// rootSpan returns the job's trace root (0 before the job started —
// obs.Subtree maps that to an empty trace).
func (j *job) rootSpan() obs.SpanID {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.span
}

func (j *job) status(withResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.id,
		Session: j.sid,
		Kind:    j.kind,
		State:   j.state,
		Error:   j.errMsg,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
		stats := j.stats
		st.Stats = &stats
	}
	if withResult {
		st.Result = j.result
	}
	return st
}

// plan is a validated, ready-to-run job: a cancellable closure plus the
// engine accounting it should be attributed. run receives the job span
// so the engine batches (and search rungs) it triggers nest under the
// job in the trace.
type plan struct {
	run   func(ctx context.Context, parent obs.SpanID) (any, error)
	stats func() engine.Stats
}

// buildPlan validates a request and compiles it into a plan. Every error
// is a client error (HTTP 400).
func (s *Server) buildPlan(req JobRequest, jobID string) (plan, error) {
	orDefault := func(v, def string) string {
		if v == "" {
			return def
		}
		return v
	}
	space, err := search.ParseSpaceSpec(
		orDefault(req.Tau0, defaultTau0Spec),
		orDefault(req.VDAC0, defaultVDAC0Spec),
		orDefault(req.VDACFS, defaultVDACFSSpec))
	if err != nil {
		return plan{}, err
	}
	conds := s.exp.ConditionSet()
	if req.Conditions != "" {
		if conds, err = engine.ParseConditionSet(req.Conditions); err != nil {
			return plan{}, err
		}
	}
	backend := req.Backend
	if backend == "" {
		backend = engine.BackendBehavioral
	}
	if err := engine.ValidateBackendName(backend); err != nil {
		return plan{}, err
	}
	eng, err := s.engineFor(backend)
	if err != nil {
		return plan{}, err
	}
	progress := s.progressFunc(jobID)

	switch req.Kind {
	case KindSweep:
		if conds.Len() != 1 {
			return plan{}, fmt.Errorf("sweep evaluates one condition, got %d (%s); use kind=matrix for the cross-condition plane", conds.Len(), conds)
		}
		cfgs, err := space.Configs()
		if err != nil {
			return plan{}, err
		}
		if len(cfgs) == 0 {
			return plan{}, fmt.Errorf("the space has no valid corners")
		}
		return plan{
			run: func(ctx context.Context, parent obs.SpanID) (any, error) {
				mat, err := eng.EvaluateMatrixOpts(cfgs, conds, engine.BatchOptions{
					Ctx:        ctx,
					OnProgress: func(done, total int) { progress(0, done, total) },
					Recorder:   s.rec,
					ParentSpan: parent,
				})
				if err != nil {
					return nil, err
				}
				return SweepResult{Condition: conds.String(), Points: search.FrontPoints(mat.Col(0))}, nil
			},
			stats: eng.Stats,
		}, nil

	case KindMatrix:
		cfgs, err := space.Configs()
		if err != nil {
			return plan{}, err
		}
		if len(cfgs) == 0 {
			return plan{}, fmt.Errorf("the space has no valid corners")
		}
		return plan{
			run: func(ctx context.Context, parent obs.SpanID) (any, error) {
				mat, err := eng.EvaluateMatrixOpts(cfgs, conds, engine.BatchOptions{
					Ctx:        ctx,
					OnProgress: func(done, total int) { progress(0, done, total) },
					Recorder:   s.rec,
					ParentSpan: parent,
				})
				if err != nil {
					return nil, err
				}
				return MatrixResult{Conditions: conds.String(), Robust: search.RobustPoints(dse.RobustFromMatrix(mat))}, nil
			},
			stats: eng.Stats,
		}, nil

	case KindSearch:
		opts := search.Options{
			Space:      space,
			Screen:     eng,
			Conditions: conds,
			Budget:     req.Budget,
			Rungs:      req.Rungs,
			Eta:        req.Eta,
			Finalists:  req.Finalists,
			Refine:     req.Refine,
			Seed:       req.Seed,
			OnProgress: progress,
		}
		if req.Promote {
			if opts.Final, err = s.engineFor(engine.BackendGolden); err != nil {
				return plan{}, err
			}
		}
		if err := opts.Validate(); err != nil {
			return plan{}, err
		}
		opts.OnRung = func(rs search.RungStats) {
			s.hub.Publish(jobID, Event{Type: EventRung, Rung: &rs})
		}
		statsFn := eng.Stats
		if opts.Final != nil && opts.Final != eng {
			final := opts.Final
			statsFn = func() engine.Stats { return addStats(eng.Stats(), final.Stats()) }
		}
		return plan{
			run: func(ctx context.Context, parent obs.SpanID) (any, error) {
				opts.Recorder = s.rec
				opts.Span = parent
				res, err := search.Run(ctx, opts)
				if err != nil {
					return nil, err
				}
				return search.NewJSONReport(res), nil
			},
			stats: statsFn,
		}, nil

	default:
		return plan{}, fmt.Errorf("unknown job kind %q (want %s, %s or %s)", req.Kind, KindSweep, KindSearch, KindMatrix)
	}
}

// progressFunc returns the per-cell progress callback for a job, throttled
// to ~100 events per batch (plus rung transitions and the final cell) so
// a 100k-cell sweep does not push 100k WebSocket frames — and so topic
// histories stay bounded. Calls are serialized by the engine per batch and
// rungs run sequentially, so the closure needs no lock.
func (s *Server) progressFunc(jobID string) func(rung, done, total int) {
	lastRung, lastDone := -1, -1
	return func(rung, done, total int) {
		step := total / 100
		if step < 1 {
			step = 1
		}
		if rung == lastRung && done != total && done-lastDone < step {
			return
		}
		lastRung, lastDone = rung, done
		s.hub.Publish(jobID, Event{Type: EventProgress, RungIndex: rung, Done: done, Total: total})
	}
}

// runJob executes a planned job to its terminal state. It owns the job's
// lifecycle events and always releases the session's operation slot.
func (s *Server) runJob(sess *session, j *job, p plan, ctx context.Context, cancel context.CancelFunc) {
	defer s.jobWG.Done()
	defer cancel()

	j.setRunning()
	s.hub.Publish(j.id, Event{Type: EventState, State: JobRunning})
	slog.Info("job running", "session", sess.id, "job", j.id, "kind", j.kind)
	span := s.rec.StartSpan(0, obs.CatJob, j.kind, j.id)
	j.setSpan(span.ID())
	s.sm.jobsActive.Add(1)
	pre := p.stats()
	result, err := p.run(ctx, span.ID())
	delta := p.stats().Sub(pre)
	dur := span.End()
	s.sm.jobsActive.Add(-1)
	sess.end(j.id)

	switch {
	case err == nil:
		data, merr := json.Marshal(result)
		if merr != nil {
			s.finishJob(j, JobFailed, nil, delta, merr, dur)
			return
		}
		s.finishJob(j, JobDone, data, delta, nil, dur)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.finishJob(j, JobCanceled, nil, delta, err, dur)
	default:
		s.finishJob(j, JobFailed, nil, delta, err, dur)
	}
}

// finishJob records a job's terminal state everywhere it surfaces: the
// job record, the event topic, the jobs_total counters, and the log.
func (s *Server) finishJob(j *job, state string, result json.RawMessage, delta engine.Stats, err error, dur time.Duration) {
	j.finish(state, result, delta, err)
	ev := Event{Type: EventDone}
	ctr := s.sm.jobsDone
	switch state {
	case JobFailed:
		ev = Event{Type: EventFailed, Error: err.Error()}
		ctr = s.sm.jobsFailed
	case JobCanceled:
		ev = Event{Type: EventCanceled, Error: err.Error()}
		ctr = s.sm.jobsCancel
	}
	s.hub.Publish(j.id, ev)
	ctr.Inc()
	if err != nil {
		slog.Warn("job finished", "session", j.sid, "job", j.id, "kind", j.kind,
			"state", state, "duration", dur, "err", err)
		return
	}
	slog.Info("job finished", "session", j.sid, "job", j.id, "kind", j.kind,
		"state", state, "duration", dur)
}

// addStats sums two engines' accounting (a search job screening on one
// engine and promoting on another).
func addStats(a, b engine.Stats) engine.Stats {
	return engine.Stats{
		Hits:        a.Hits + b.Hits,
		DiskHits:    a.DiskHits + b.DiskHits,
		Misses:      a.Misses + b.Misses,
		StoreErrors: a.StoreErrors + b.StoreErrors,
		Entries:     a.Entries + b.Entries,
	}
}
