package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m×n matrix with m ≥ n.
// The factorization is stored compactly: the upper triangle of qr holds R
// and the lower trapezoid holds the Householder vectors.
type QR struct {
	qr   *Matrix
	tau  []float64 // Householder scalar factors
	perm []int     // reserved for future column pivoting; identity today
}

// FactorQR computes the Householder QR factorization of a. The input is not
// modified. It returns ErrShape for under-determined systems (rows < cols).
func FactorQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR of %d×%d (rows < cols): %w", m, n, ErrShape)
	}
	f := &QR{qr: a.Clone(), tau: make([]float64, n), perm: make([]int, n)}
	for j := range f.perm {
		f.perm[j] = j
	}
	for k := 0; k < n; k++ {
		// Norm of the k-th column below the diagonal.
		col := make([]float64, m-k)
		for i := k; i < m; i++ {
			col[i-k] = f.qr.At(i, k)
		}
		alpha := Norm2(col)
		if alpha == 0 {
			f.tau[k] = 0
			continue
		}
		if f.qr.At(k, k) > 0 {
			alpha = -alpha
		}
		// Householder vector v = x − alpha·e1, normalized so v[0] = 1.
		v0 := f.qr.At(k, k) - alpha
		f.qr.Set(k, k, alpha)
		for i := k + 1; i < m; i++ {
			f.qr.Set(i, k, f.qr.At(i, k)/v0)
		}
		f.tau[k] = -v0 / alpha
		// Apply the reflector to the trailing columns.
		for j := k + 1; j < n; j++ {
			s := f.qr.At(k, j)
			for i := k + 1; i < m; i++ {
				s += f.qr.At(i, k) * f.qr.At(i, j)
			}
			s *= f.tau[k]
			f.qr.Set(k, j, f.qr.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				f.qr.Set(i, j, f.qr.At(i, j)-s*f.qr.At(i, k))
			}
		}
	}
	return f, nil
}

// applyQT overwrites b (length m) with Qᵀ·b.
func (f *QR) applyQT(b []float64) {
	m, n := f.qr.Rows(), f.qr.Cols()
	for k := 0; k < n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		s := b[k]
		for i := k + 1; i < m; i++ {
			s += f.qr.At(i, k) * b[i]
		}
		s *= f.tau[k]
		b[k] -= s
		for i := k + 1; i < m; i++ {
			b[i] -= s * f.qr.At(i, k)
		}
	}
}

// Solve returns the least-squares solution x minimizing ‖a·x − b‖₂ using the
// factorization. len(b) must equal the number of rows of the factored matrix.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR solve rhs length %d, want %d: %w", len(b), m, ErrShape)
	}
	work := make([]float64, m)
	copy(work, b)
	f.applyQT(work)
	x := make([]float64, n)
	copy(x, work[:n])
	// Rank check: a pivot far below the largest diagonal entry means the
	// columns are linearly dependent to working precision.
	var maxDiag float64
	for i := 0; i < n; i++ {
		if d := math.Abs(f.qr.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	tol := 1e-12 * maxDiag
	// Back substitution with R.
	for i := n - 1; i >= 0; i-- {
		d := f.qr.At(i, i)
		if math.Abs(d) <= tol {
			return nil, fmt.Errorf("linalg: negligible pivot at column %d: %w", i, ErrSingular)
		}
		for j := i + 1; j < n; j++ {
			x[i] -= f.qr.At(i, j) * x[j]
		}
		x[i] /= d
	}
	return x, nil
}

// R returns the upper-triangular factor as a dense n×n matrix.
func (f *QR) R() *Matrix {
	n := f.qr.Cols()
	r := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// ConditionEstimate returns a cheap lower bound on the 1-norm condition
// number of R (and hence of the factored matrix): max|r_ii| / min|r_ii|.
func (f *QR) ConditionEstimate() float64 {
	n := f.qr.Cols()
	minD, maxD := math.Inf(1), 0.0
	for i := 0; i < n; i++ {
		d := math.Abs(f.qr.At(i, i))
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD == 0 {
		return math.Inf(1)
	}
	return maxD / minD
}

// LeastSquares solves min ‖a·x − b‖₂ via Householder QR, returning the
// coefficient vector and the residual 2-norm.
func LeastSquares(a *Matrix, b []float64) (x []float64, residual float64, err error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, 0, err
	}
	x, err = f.Solve(b)
	if err != nil {
		return nil, 0, err
	}
	ax, err := a.MulVec(x)
	if err != nil {
		return nil, 0, err
	}
	var ss float64
	for i, v := range ax {
		d := v - b[i]
		ss += d * d
	}
	return x, math.Sqrt(ss), nil
}
