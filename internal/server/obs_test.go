package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

var smallSweep = map[string]any{
	"kind":   "sweep",
	"tau0":   "0.16:0.28:4",
	"vdac0":  "0.3,0.4",
	"vdacfs": "0.8,1.0",
}

// expositionLine matches one well-formed Prometheus text line.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$`)

// TestServerMetricsEndpoint: after one finished sweep, GET /metrics serves
// well-formed Prometheus text exposition carrying the evaluation, cache
// and job-lifecycle series the run just drove.
func TestServerMetricsEndpoint(t *testing.T) {
	srv := New(testExp(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sid := createSession(t, ts.URL)
	jid := submitJob(t, ts.URL, sid, smallSweep)
	watchToTerminal(t, ts.URL, sid, jid)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
		if !strings.HasPrefix(line, "#") {
			if name, val, ok := strings.Cut(line, " "); ok {
				samples[name] = val
			}
		}
	}
	for name, want := range map[string]string{
		`optima_evals_total{backend="behavioral"}`:                 "16",
		`optima_jobs_total{state="done"}`:                          "1",
		"optima_sessions_active":                                   "1",
		"optima_jobs_active":                                       "0",
		`optima_eval_duration_seconds_count{backend="behavioral"}`: "16",
	} {
		if got, ok := samples[name]; !ok || got != want {
			t.Errorf("%s = %q (present %v), want %q", name, got, ok, want)
		}
	}
}

// TestServerJobTraceEndpoint: a finished job's trace endpoint serves its
// span subtree as Chrome trace-format JSON — the job span plus the engine
// batch and eval spans that ran under it.
func TestServerJobTraceEndpoint(t *testing.T) {
	srv := New(testExp(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sid := createSession(t, ts.URL)
	jid := submitJob(t, ts.URL, sid, smallSweep)
	watchToTerminal(t, ts.URL, sid, jid)

	resp, err := http.Get(ts.URL + "/api/sessions/" + sid + "/jobs/" + jid + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d", resp.StatusCode)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tf); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	// 1 job span + 1 batch span + 16 evals.
	if len(tf.TraceEvents) < 18 {
		t.Fatalf("trace has %d events, want >= 18", len(tf.TraceEvents))
	}
	byCat := map[string]int{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		byCat[ev.Cat]++
	}
	if byCat["job"] != 1 || byCat["batch"] == 0 || byCat["eval"] != 16 {
		t.Errorf("trace categories %v, want one job, >=1 batch, 16 evals", byCat)
	}

	// Unknown jobs 404 like every other job route.
	resp2, err := http.Get(ts.URL + "/api/sessions/" + sid + "/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown job: %d, want 404", resp2.StatusCode)
	}
}

// TestServerStatusSessionAndHubCounts: GET /api/status breaks job counts
// down per session (creation order) and reports the hub's fan-out state.
func TestServerStatusSessionAndHubCounts(t *testing.T) {
	srv := New(testExp(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sidA := createSession(t, ts.URL)
	sidB := createSession(t, ts.URL)
	jid := submitJob(t, ts.URL, sidA, smallSweep)
	watchToTerminal(t, ts.URL, sidA, jid)

	var st StatusResponse
	if code := getJSON(t, ts.URL+"/api/status", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if st.Sessions != 2 {
		t.Errorf("sessions = %d, want 2", st.Sessions)
	}
	want := []SessionJobCounts{
		{ID: sidA, Active: 0, Total: 1},
		{ID: sidB, Active: 0, Total: 0},
	}
	if len(st.SessionJobs) != 2 || st.SessionJobs[0] != want[0] || st.SessionJobs[1] != want[1] {
		t.Errorf("session job counts %+v, want %+v", st.SessionJobs, want)
	}
	// The finished job's topic is retained for late subscribers; nobody is
	// attached anymore.
	if st.Hub.Topics != 1 || st.Hub.Subscribers != 0 {
		t.Errorf("hub = %+v, want 1 topic and 0 subscribers", st.Hub)
	}
}
