package quant

import (
	"fmt"

	"optima/internal/dnn"
)

// QNetwork is the quantized execution of a trained float network: every
// convolution and dense layer runs with uint4 activation codes × int4
// weight codes through the pluggable Multiplier; the glue operations
// (ReLU, pooling, residual adds) run in the dequantized domain, as TFLite
// does for non-matmul operators.
type QNetwork struct {
	Name   string
	stages []qStage
	// Mult is the scalar multiplier used by all quantized layers.
	Mult Multiplier
	// Workers bounds the evaluation fan-out of TopKAccuracy
	// (0 = GOMAXPROCS). Ignored when the graph or multiplier forces
	// serial evaluation.
	Workers int
	// serialOnly marks a graph with a stage that has no stateless forward;
	// evaluation then stays on one worker.
	serialOnly bool
}

// qStage is one executable stage of the quantized graph.
type qStage interface {
	forward(x *dnn.Tensor, m Multiplier) *dnn.Tensor
}

// floatStage wraps a shape-only float layer (ReLU, pools).
type floatStage struct{ layer dnn.Layer }

func (s floatStage) forward(x *dnn.Tensor, _ Multiplier) *dnn.Tensor {
	return inferForward(s.layer, x)
}

// inferForward runs a float glue layer statelessly so concurrent batches
// don't race on training state, falling back to the training Forward for
// uncovered layer types (those graphs evaluate serially).
func inferForward(l dnn.Layer, x *dnn.Tensor) *dnn.Tensor {
	if out, ok := dnn.InferenceForward(l, x); ok {
		return out
	}
	return l.Forward(x, false)
}

// qConv executes a quantized convolution.
type qConv struct {
	inC, outC, k int
	act          ActQuant
	w            WeightQuant
	bias         []float64
}

func (s *qConv) forward(x *dnn.Tensor, m Multiplier) *dnn.Tensor {
	out := dnn.NewTensor(x.N, s.outC, x.H, x.W)
	pad := s.k / 2
	// Quantize the input tensor once.
	codes := make([]uint8, x.Len())
	for i, v := range x.Data {
		codes[i] = s.act.Quantize(v)
	}
	za := s.act.Zero
	outScale := s.act.Scale * s.w.Scale
	for n := 0; n < x.N; n++ {
		for oc := 0; oc < s.outC; oc++ {
			for oh := 0; oh < x.H; oh++ {
				for ow := 0; ow < x.W; ow++ {
					var acc, wSum int32
					for ic := 0; ic < s.inC; ic++ {
						for kh := 0; kh < s.k; kh++ {
							ih := oh + kh - pad
							if ih < 0 || ih >= x.H {
								continue
							}
							rowBase := x.Idx(n, ic, ih, 0)
							wBase := (oc*s.inC+ic)*s.k*s.k + kh*s.k
							for kw := 0; kw < s.k; kw++ {
								iw := ow + kw - pad
								if iw < 0 || iw >= x.W {
									continue
								}
								wc := s.w.Codes[wBase+kw]
								if wc == 0 {
									continue // stored zero word: no discharge
								}
								acc += m.Mul(codes[rowBase+iw], wc)
								wSum += int32(wc)
							}
						}
					}
					// Zero-point correction: Σ(a−za)·w = Σ a·w − za·Σw.
					acc -= za * wSum
					out.Data[out.Idx(n, oc, oh, ow)] = float64(acc)*outScale + s.bias[oc]
				}
			}
		}
	}
	return out
}

// qDense executes a quantized dense layer.
type qDense struct {
	in, out int
	act     ActQuant
	w       WeightQuant
	bias    []float64
}

func (s *qDense) forward(x *dnn.Tensor, m Multiplier) *dnn.Tensor {
	out := dnn.NewTensor(x.N, s.out, 1, 1)
	codes := make([]uint8, x.Len())
	for i, v := range x.Data {
		codes[i] = s.act.Quantize(v)
	}
	za := s.act.Zero
	outScale := s.act.Scale * s.w.Scale
	for n := 0; n < x.N; n++ {
		xoff := n * s.in
		for o := 0; o < s.out; o++ {
			var acc, wSum int32
			woff := o * s.in
			for i := 0; i < s.in; i++ {
				wc := s.w.Codes[woff+i]
				if wc == 0 {
					continue
				}
				acc += m.Mul(codes[xoff+i], wc)
				wSum += int32(wc)
			}
			acc -= za * wSum
			out.Data[n*s.out+o] = float64(acc)*outScale + s.bias[o]
		}
	}
	return out
}

// qResidual executes a residual block with quantized convolutions and a
// float skip-add (batch-norms must already be folded).
type qResidual struct {
	conv1, conv2 *qConv
	proj         *qConv // nil when identity skip
	relu1        dnn.Layer
	relu2        dnn.Layer
}

func (s *qResidual) forward(x *dnn.Tensor, m Multiplier) *dnn.Tensor {
	main := s.conv1.forward(x, m)
	main = inferForward(s.relu1, main)
	main = s.conv2.forward(main, m)
	skip := x
	if s.proj != nil {
		skip = s.proj.forward(x, m)
	}
	sum := main.Clone()
	for i := range sum.Data {
		sum.Data[i] += skip.Data[i]
	}
	return inferForward(s.relu2, sum)
}

// Forward runs the quantized network on a float input tensor and returns
// float logits. It is safe for concurrent use when every stage has a
// stateless forward and the multiplier is deterministic — the conditions
// evalWorkers checks before fanning batches out.
func (q *QNetwork) Forward(x *dnn.Tensor) *dnn.Tensor {
	for _, s := range q.stages {
		x = s.forward(x, q.Mult)
	}
	return x
}

// TopKAccuracy evaluates the quantized network, fanning batches out across
// the engine scheduler when the graph and multiplier allow it.
func (q *QNetwork) TopKAccuracy(x *dnn.Tensor, labels []int, k int) (top1, topk float64) {
	return dnn.EvalTopKWorkers(q.Forward, x, labels, k, 32, q.evalWorkers())
}

// evalWorkers returns the evaluation fan-out width: the configured bound
// when concurrent forwards cannot race, one worker otherwise.
func (q *QNetwork) evalWorkers() int {
	if q.serialOnly || !multSafe(q.Mult) {
		return 1
	}
	return q.Workers
}

// multSafe reports whether the multiplier tolerates concurrent Mul calls.
// Unknown implementations are conservatively treated as serial.
func multSafe(m Multiplier) bool {
	switch t := m.(type) {
	case Exact:
		return true
	case *InMemory:
		return t.Deterministic()
	}
	return false
}

// Quantize converts a trained float network to INT4 quantized execution.
// Batch-norms are folded first; activation ranges are calibrated by running
// the float network on calib (a representative batch). The initial
// multiplier is Exact (the INT4 baseline); swap q.Mult to inject a corner.
func Quantize(net *dnn.Network, calib *dnn.Tensor) (*QNetwork, error) {
	if err := net.FoldAllBatchNorms(); err != nil {
		return nil, err
	}
	// Calibration pass: record the input range of every conv/dense layer
	// (and residual-internal convolutions) by monkey-patching via forward
	// replay. We walk layers manually to observe intermediate tensors.
	q := &QNetwork{Name: net.Name + "-int4", Mult: Exact{}}
	x := calib
	for _, l := range net.Layers {
		switch t := l.(type) {
		case *dnn.Conv2D:
			q.stages = append(q.stages, convStageFrom(t, x))
			x = t.Forward(x, false)
		case *dnn.Dense:
			q.stages = append(q.stages, denseStageFrom(t, x))
			x = t.Forward(x, false)
		case *dnn.Residual:
			stage, out := residualStageFrom(t, x)
			q.stages = append(q.stages, stage)
			x = out
		case *dnn.BatchNorm2D:
			// Folded: identity at inference; keep for shape fidelity.
			x = t.Forward(x, false)
		default:
			if !dnn.StatelessCapable(l) {
				q.serialOnly = true
			}
			q.stages = append(q.stages, floatStage{layer: l})
			x = l.Forward(x, false)
		}
	}
	return q, nil
}

func tensorRange(x *dnn.Tensor) (min, max float64) {
	min, max = x.Data[0], x.Data[0]
	for _, v := range x.Data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return
}

func convStageFrom(c *dnn.Conv2D, input *dnn.Tensor) *qConv {
	min, max := tensorRange(input)
	return &qConv{
		inC: c.InC, outC: c.OutC, k: c.K,
		act:  calibrate(min, max),
		w:    QuantizeWeights(c.Weight.W),
		bias: append([]float64(nil), c.Bias.W...),
	}
}

func denseStageFrom(d *dnn.Dense, input *dnn.Tensor) *qDense {
	min, max := tensorRange(input)
	return &qDense{
		in: d.In, out: d.Out,
		act:  calibrate(min, max),
		w:    QuantizeWeights(d.Weight.W),
		bias: append([]float64(nil), d.Bias.W...),
	}
}

func residualStageFrom(r *dnn.Residual, input *dnn.Tensor) (qStage, *dnn.Tensor) {
	// Calibrate conv1 on the block input, conv2 on the post-ReLU main path.
	s := &qResidual{relu1: r.Relu1, relu2: reluOf(r)}
	s.conv1 = convStageFrom(r.Conv1, input)
	main := r.Conv1.Forward(input, false)
	main = r.BN1.Forward(main, false)
	main = r.Relu1.Forward(main, false)
	s.conv2 = convStageFrom(r.Conv2, main)
	if r.Proj != nil {
		s.proj = convStageFrom(r.Proj, input)
	}
	out := r.Forward(input, false)
	return s, out
}

// reluOf returns the block's output activation.
func reluOf(r *dnn.Residual) dnn.Layer {
	return dnn.NewReLU(r.Name() + ".qrelu2")
}

// CountQuantMACs returns the multiplications a quantized forward pass
// performs per sample, skipping zero weights (which cause no discharge and
// no multiplier operation). Used to cross-check the Table II counts.
func (q *QNetwork) CountQuantMACs(sample *dnn.Tensor) (int64, error) {
	if sample.N != 1 {
		return 0, fmt.Errorf("quant: MAC counting expects a single sample, got %s", sample.Shape())
	}
	counter := &countingMultiplier{}
	saved := q.Mult
	q.Mult = counter
	q.Forward(sample)
	q.Mult = saved
	return counter.ops, nil
}

type countingMultiplier struct{ ops int64 }

func (c *countingMultiplier) Mul(a uint8, w int8) int32 {
	c.ops++
	return int32(a) * int32(w)
}
