package search

import (
	"optima/internal/dse"
	"optima/internal/engine"
)

// JSONReport is the machine-readable report of a search run — the exact
// shape `optima search` writes to search.json and the optima-server
// returns as a search job's result, so the two surfaces stay
// byte-identical for identical options.
type JSONReport struct {
	Front     []FrontPoint  `json:"front"`
	Finalists int           `json:"finalists"`
	Robust    []RobustPoint `json:"robust,omitempty"`
	Trace     Trace         `json:"trace"`
}

// NewJSONReport builds the report from a search result.
func NewJSONReport(res *Result) JSONReport {
	return JSONReport{
		Front:     FrontPoints(res.Front),
		Finalists: len(res.Finalists),
		Robust:    RobustPoints(res.Robust),
		Trace:     res.Trace,
	}
}

// FrontPoint is the machine-readable view of one Pareto-front member, in
// the paper's reporting units (ns, V, LSB, fJ) — the JSON/CSV schema of the
// `optima search` report.
type FrontPoint struct {
	Tau0NS   float64 `json:"tau0_ns"`
	VDAC0V   float64 `json:"vdac0_v"`
	VDACFSV  float64 `json:"vdacfs_v"`
	EpsMul   float64 `json:"eps_mul_lsb"`
	EMulFJ   float64 `json:"e_mul_fj"`
	FOM      float64 `json:"fom"`
	SigmaLSB float64 `json:"sigma_max_lsb"`
}

// FrontPoints converts front metrics into report points, preserving order.
// In robust mode the metrics are worst-case composites, so EpsMul/EMulFJ
// report the worst case over the condition set.
func FrontPoints(front []dse.Metrics) []FrontPoint {
	out := make([]FrontPoint, len(front))
	for i, m := range front {
		out[i] = FrontPoint{
			Tau0NS:   m.Config.Tau0 * 1e9,
			VDAC0V:   m.Config.VDAC0,
			VDACFSV:  m.Config.VDACFS,
			EpsMul:   m.EpsMul,
			EMulFJ:   m.EMul * 1e15,
			FOM:      m.FOM(),
			SigmaLSB: m.SigmaMaxLSB,
		}
	}
	return out
}

// RobustPoint is the machine-readable view of one finalist's cross-
// condition summary — the robust-mode extension of the search.json schema.
type RobustPoint struct {
	Tau0NS        float64 `json:"tau0_ns"`
	VDAC0V        float64 `json:"vdac0_v"`
	VDACFSV       float64 `json:"vdacfs_v"`
	WorstEps      float64 `json:"worst_eps_mul_lsb"`
	WorstEpsCond  string  `json:"worst_eps_cond"`
	WorstEMulFJ   float64 `json:"worst_e_mul_fj"`
	WorstEMulCond string  `json:"worst_e_mul_cond"`
	MeanEps       float64 `json:"mean_eps_mul_lsb"`
	SpreadEps     float64 `json:"spread_eps_mul_lsb"`
	WorstFOM      float64 `json:"worst_fom"`
}

// RobustPoints converts cross-condition summaries into report points,
// preserving order.
func RobustPoints(rms []dse.RobustMetrics) []RobustPoint {
	out := make([]RobustPoint, len(rms))
	for i, r := range rms {
		out[i] = RobustPoint{
			Tau0NS:        r.Config.Tau0 * 1e9,
			VDAC0V:        r.Config.VDAC0,
			VDACFSV:       r.Config.VDACFS,
			WorstEps:      r.WorstEps,
			WorstEpsCond:  engine.FormatCondition(r.WorstEpsCond),
			WorstEMulFJ:   r.WorstEMul * 1e15,
			WorstEMulCond: engine.FormatCondition(r.WorstEMulCond),
			MeanEps:       r.MeanEps,
			SpreadEps:     r.SpreadEps,
			WorstFOM:      r.WorstFOM(),
		}
	}
	return out
}
