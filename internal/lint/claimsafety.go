// claimsafety.go checks the cache-claim protocol of the evaluation engine
// and the persistent store: once a computation claims a key (an entry with
// a `done` channel is published where concurrent submitters can wait on
// it), every path — including a panic in the code run under the claim —
// must resolve it. PR 3's stuck-waiter bug was exactly this: a backend
// panic skipped the close and every waiter on that corner hung forever.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// claimPkgs are the packages that implement claim/resolve protocols.
var claimPkgs = []string{
	"internal/engine",
	"internal/store",
}

// ClaimSafetyAnalyzer flags, in the claim-implementing packages, a plain
// (non-deferred) close of a claim's `done` channel when a call that can
// panic — an interface-method call such as Store.Get or Backend.Evaluate,
// or any *Evaluate* call — sits between taking the claim and closing it.
// On that shape a panic unwinds past the close and the claim is stranded:
// concurrent waiters block forever. Close via defer (recovering into the
// entry's error), or move the risky call out of the claim window.
func ClaimSafetyAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "claimsafety",
		Doc:     "a taken claim's done channel must close on every path; no panic window between claim and close",
		InScope: inScope(claimPkgs...),
		Run:     runClaimSafety,
	}
}

func runClaimSafety(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkClaimWindow(pass, fn.Body)
		}
	}
}

// checkClaimWindow scans one function: claim sites, risky calls, and plain
// closes of done channels, in source order.
func checkClaimWindow(pass *Pass, body *ast.BlockStmt) {
	claimPos := token.NoPos
	type risky struct {
		pos  token.Pos
		what string
	}
	var risks []risky

	// deferred tracks the DeferStmt subtrees so closes inside them (directly
	// or via a deferred func literal) are recognized as panic-safe.
	var deferSpans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferSpans = append(deferSpans, [2]token.Pos{d.Pos(), d.End()})
		}
		return true
	})
	inDefer := func(pos token.Pos) bool {
		for _, s := range deferSpans {
			if pos >= s[0] && pos < s[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && isDoneName(key.Name) && isMakeChan(pass, kv.Value) {
						if claimPos == token.NoPos || n.Pos() < claimPos {
							claimPos = n.Pos()
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || !isDoneName(sel.Sel.Name) || i >= len(n.Rhs) {
					continue
				}
				if isMakeChan(pass, n.Rhs[i]) && (claimPos == token.NoPos || n.Pos() < claimPos) {
					claimPos = n.Pos()
				}
			}
		case *ast.CallExpr:
			if name, ok := closedChanName(n); ok {
				if !inDefer(n.Pos()) && claimPos != token.NoPos && n.Pos() > claimPos {
					for _, r := range risks {
						if r.pos > claimPos && r.pos < n.Pos() && !inDefer(r.pos) {
							pass.Reportf(n.Pos(), "close(%s) is reached only if %s returns: a panic there strands the claim taken at line %d and its waiters block forever; close via defer or make the resolution panic-safe",
								name, r.what, pass.Fset.Position(claimPos).Line)
							break
						}
					}
				}
				return true
			}
			if what, ok := riskyCall(pass, n); ok {
				risks = append(risks, risky{pos: n.Pos(), what: what})
			}
		}
		return true
	})
}

func isDoneName(name string) bool {
	return name == "done" || (len(name) > 4 && name[len(name)-4:] == "Done")
}

// isMakeChan matches make(chan T[, n]) expressions.
func isMakeChan(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	t := pass.Info.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// closedChanName matches close(x.done)/close(done) and returns the textual
// channel name.
func closedChanName(call *ast.CallExpr) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return "", false
	}
	switch arg := call.Args[0].(type) {
	case *ast.Ident:
		if isDoneName(arg.Name) {
			return arg.Name, true
		}
	case *ast.SelectorExpr:
		if isDoneName(arg.Sel.Name) {
			if base, ok := arg.X.(*ast.Ident); ok {
				return base.Name + "." + arg.Sel.Name, true
			}
			return arg.Sel.Name, true
		}
	}
	return "", false
}

// riskyCall reports whether the call can panic in foreign code: an
// interface-method call (a Store or Backend implementation is arbitrary
// code) or anything named like an evaluator.
func riskyCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		recv := s.Recv()
		if _, isIface := recv.Underlying().(*types.Interface); isIface {
			return "the " + recv.String() + " method " + name, true
		}
	}
	if strings.Contains(name, "Evaluate") {
		return name, true
	}
	return "", false
}
