package server

// hub.go is the live-progress fan-out: one topic per job, each event
// marshaled exactly once and broadcast as raw bytes to every subscriber.
// Topics keep their full event history, so a subscriber attaching after a
// job finished still replays every event up to and including the terminal
// one — the CI smoke's "wait for done over WebSocket" never races job
// completion.

import (
	"encoding/json"
	"sync"

	"optima/internal/obs"
	"optima/internal/search"
)

// Event is one progress message of a job's WebSocket stream. Seq numbers
// are per job, contiguous from 1, so a consumer can detect a gap (there is
// none over a single connection — slow consumers are disconnected, not
// skipped ahead).
type Event struct {
	Seq uint64 `json:"seq"`
	Job string `json:"job"`
	// Type discriminates the event: "state" (State carries
	// queued/running), "progress" (Done/Total cells of the current batch,
	// Rung set for search jobs), "rung" (RungStats of a completed search
	// rung), and the terminal "done", "failed" (Error set) or "canceled".
	Type  string            `json:"type"`
	State string            `json:"state,omitempty"`
	Rung  *search.RungStats `json:"rung,omitempty"`
	// RungIndex is the rung a progress event belongs to (search jobs;
	// omitted — i.e. 0 — for sweep/matrix and for rung 0 itself).
	RungIndex int    `json:"rung_index,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Event types. The last three are terminal: they close the topic.
const (
	EventState    = "state"
	EventProgress = "progress"
	EventRung     = "rung"
	EventDone     = "done"
	EventFailed   = "failed"
	EventCanceled = "canceled"
)

// Terminal reports whether the event ends its topic's stream.
func (e Event) Terminal() bool {
	return e.Type == EventDone || e.Type == EventFailed || e.Type == EventCanceled
}

// subBuffer is a subscriber channel's depth. Publishers never block: a
// subscriber that falls this many events behind is dropped (its channel
// closed) rather than allowed to stall the job's progress callbacks.
const subBuffer = 64

// Hub routes job events to WebSocket subscribers, one topic per job ID.
type Hub struct {
	// dropped counts slow subscribers disconnected by Publish
	// (optima_hub_dropped_total); nil until instrument — a nil counter
	// no-ops, so the hub works unregistered (tests construct it bare).
	dropped *obs.Counter

	mu     sync.Mutex
	topics map[string]*topic
}

type topic struct {
	seq     uint64
	history [][]byte
	subs    map[chan []byte]bool
	done    bool
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{topics: make(map[string]*topic)}
}

func (h *Hub) topic(id string) *topic {
	t := h.topics[id]
	if t == nil {
		t = &topic{subs: make(map[chan []byte]bool)}
		h.topics[id] = t
	}
	return t
}

// Publish stamps the event's sequence number, marshals it once, and fans
// the bytes out. A terminal event closes the topic: subscriber channels
// are closed after delivery and later publishes are ignored.
func (h *Hub) Publish(job string, ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topic(job)
	if t.done {
		return
	}
	t.seq++
	ev.Seq = t.seq
	ev.Job = job
	data, err := json.Marshal(ev)
	if err != nil {
		// Event is a plain value struct; marshaling cannot fail.
		panic("server: " + err.Error())
	}
	t.history = append(t.history, data)
	for ch := range t.subs {
		select {
		case ch <- data:
		default:
			delete(t.subs, ch)
			close(ch)
			h.dropped.Inc()
		}
	}
	if ev.Terminal() {
		t.done = true
		for ch := range t.subs {
			delete(t.subs, ch)
			close(ch)
		}
	}
}

// Subscribe atomically snapshots the topic's history and registers a live
// channel, so no event is missed or duplicated across the boundary. On a
// finished topic the returned channel is already closed — the history ends
// with the terminal event.
func (h *Hub) Subscribe(job string) ([][]byte, chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topic(job)
	history := append([][]byte(nil), t.history...)
	ch := make(chan []byte, subBuffer)
	if t.done {
		close(ch)
		return history, ch
	}
	t.subs[ch] = true
	return history, ch
}

// Unsubscribe detaches a subscriber channel (e.g. the client hung up).
// Idempotent, and safe to race with a terminal publish: the channel is
// closed exactly once, by whichever side removes it from the topic.
func (h *Hub) Unsubscribe(job string, ch chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topics[job]
	if t == nil || !t.subs[ch] {
		return
	}
	delete(t.subs, ch)
	close(ch)
}

// instrument registers the hub's telemetry on a recorder: live topic and
// subscriber gauges plus the dropped-slow-subscriber counter.
func (h *Hub) instrument(rec *obs.Recorder) {
	reg := rec.Metrics()
	h.dropped = reg.Counter("optima_hub_dropped_total",
		"WebSocket subscribers disconnected for falling behind the event stream.")
	reg.GaugeFunc("optima_hub_topics",
		"Live progress topics (one per job not yet dropped).",
		func() float64 { t, _ := h.Counts(); return float64(t) })
	reg.GaugeFunc("optima_hub_subscribers",
		"Attached WebSocket subscribers across all topics.",
		func() float64 { _, s := h.Counts(); return float64(s) })
}

// Counts reports the hub's live topic and subscriber totals.
func (h *Hub) Counts() (topics, subscribers int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range h.topics {
		subscribers += len(t.subs)
	}
	return len(h.topics), subscribers
}

// Drop discards a topic and disconnects its subscribers — used when a
// session is deleted so finished jobs' histories do not accumulate forever.
func (h *Hub) Drop(job string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topics[job]
	if t == nil {
		return
	}
	for ch := range t.subs {
		delete(t.subs, ch)
		close(ch)
	}
	delete(h.topics, job)
}
