// Package dataset generates the procedural synthetic image classification
// datasets that substitute for ImageNet and CIFAR-10 (neither can ship with
// an offline reproduction; see DESIGN.md §2).
//
// Each class is defined by a randomly drawn prototype — a parametric
// composition of an oriented sinusoidal texture, a colored blob and a color
// gradient — and samples are drawn by jittering the prototype's parameters,
// translating it, and adding pixel noise. The two dataset flavours mirror
// the paper's experimental contrast:
//
//   - SynthImageNet: more classes (20), the "pretraining" task.
//   - SynthCIFAR: 10 classes drawn from an independent prototype family,
//     used for the transfer-learning experiment (Table III).
//
// Generation is fully deterministic given the seed.
package dataset

import (
	"fmt"
	"math"

	"optima/internal/dnn"
	"optima/internal/stats"
)

// Image dimensions shared by both datasets (transfer learning requires
// matching input shapes, as in the paper's ImageNet→CIFAR protocol).
const (
	Channels = 3
	Height   = 12
	Width    = 12
)

// Dataset is a labeled image set split into train and test halves.
type Dataset struct {
	Name    string
	Classes int
	Train   *dnn.Tensor
	TrainY  []int
	Test    *dnn.Tensor
	TestY   []int
}

// prototype holds the generative parameters of one class.
type prototype struct {
	// Oriented sinusoidal texture.
	angle, freq, phase float64
	texAmp             [Channels]float64
	// Gaussian blob.
	blobX, blobY, blobR float64
	blobColor           [Channels]float64
	// Linear color gradient.
	gradAngle float64
	gradAmp   [Channels]float64
	base      [Channels]float64
}

func drawPrototype(rng *stats.RNG) prototype {
	var p prototype
	p.angle = rng.Uniform(0, math.Pi)
	p.freq = rng.Uniform(1.5, 4.5)
	p.phase = rng.Uniform(0, 2*math.Pi)
	p.blobX = rng.Uniform(0.2, 0.8)
	p.blobY = rng.Uniform(0.2, 0.8)
	p.blobR = rng.Uniform(0.12, 0.3)
	p.gradAngle = rng.Uniform(0, 2*math.Pi)
	for c := 0; c < Channels; c++ {
		p.texAmp[c] = rng.Uniform(0.05, 0.35)
		p.blobColor[c] = rng.Uniform(-0.5, 0.5)
		p.gradAmp[c] = rng.Uniform(-0.3, 0.3)
		p.base[c] = rng.Uniform(0.3, 0.7)
	}
	return p
}

// render draws one jittered sample of the prototype into dst (length
// Channels·Height·Width, CHW layout).
func (p prototype) render(dst []float64, rng *stats.RNG, noise float64) {
	// Per-sample jitter, deliberately close to the inter-class deltas of
	// deriveVariant so sibling classes overlap (fine-grained difficulty).
	angle := p.angle + rng.Gaussian(0, 0.18)
	freq := p.freq * (1 + rng.Gaussian(0, 0.08))
	phase := p.phase + rng.Uniform(-0.9, 0.9)
	bx := p.blobX + rng.Gaussian(0, 0.08)
	by := p.blobY + rng.Gaussian(0, 0.08)
	br := p.blobR * (1 + rng.Gaussian(0, 0.12))
	dx, dy := rng.Gaussian(0, 0.07), rng.Gaussian(0, 0.07)
	cosA, sinA := math.Cos(angle), math.Sin(angle)
	cosG, sinG := math.Cos(p.gradAngle), math.Sin(p.gradAngle)
	for h := 0; h < Height; h++ {
		for w := 0; w < Width; w++ {
			x := float64(w)/float64(Width-1) + dx
			y := float64(h)/float64(Height-1) + dy
			tex := math.Sin(2*math.Pi*freq*(x*cosA+y*sinA) + phase)
			d2 := (x-bx)*(x-bx) + (y-by)*(y-by)
			blob := math.Exp(-d2 / (2 * br * br))
			grad := (x-0.5)*cosG + (y-0.5)*sinG
			for c := 0; c < Channels; c++ {
				v := p.base[c] + p.texAmp[c]*tex + p.blobColor[c]*blob + p.gradAmp[c]*grad
				v += rng.Gaussian(0, noise)
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				dst[(c*Height+h)*Width+w] = v
			}
		}
	}
}

// deriveVariant perturbs a base prototype into a sibling class: the
// texture orientation, blob placement and colors move by small amounts, so
// siblings are only separable through fine features.
func deriveVariant(base prototype, rng *stats.RNG) prototype {
	v := base
	v.angle += rng.Gaussian(0, 0.24)
	v.freq *= 1 + rng.Gaussian(0, 0.09)
	v.phase += rng.Uniform(-0.9, 0.9)
	v.blobX += rng.Gaussian(0, 0.09)
	v.blobY += rng.Gaussian(0, 0.09)
	v.blobR *= 1 + rng.Gaussian(0, 0.13)
	for c := 0; c < Channels; c++ {
		v.texAmp[c] *= 1 + rng.Gaussian(0, 0.14)
		v.blobColor[c] += rng.Gaussian(0, 0.075)
		v.gradAmp[c] += rng.Gaussian(0, 0.05)
		v.base[c] += rng.Gaussian(0, 0.025)
	}
	return v
}

// Config controls dataset generation.
type Config struct {
	Name        string
	Classes     int
	TrainPerCls int
	TestPerCls  int
	Noise       float64
	Seed        uint64
	// Families groups classes into confusable families: classes within a
	// family share a base prototype and differ only by small parameter
	// deltas, making the task fine-grained (0 or 1 = independent classes).
	Families int
}

// SynthImageNetConfig returns the default "ImageNet-substitute" recipe:
// 20 fine-grained classes in 5 confusable families.
func SynthImageNetConfig() Config {
	return Config{Name: "SynthImageNet", Classes: 20, TrainPerCls: 100, TestPerCls: 25,
		Noise: 0.27, Seed: 0x1147e7, Families: 2}
}

// SynthCIFARConfig returns the default "CIFAR-10-substitute" recipe:
// 10 classes in 5 families from an independent prototype draw.
func SynthCIFARConfig() Config {
	return Config{Name: "SynthCIFAR", Classes: 10, TrainPerCls: 120, TestPerCls: 40,
		Noise: 0.24, Seed: 0xc1fa12, Families: 2}
}

// Generate builds the dataset deterministically from the config.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Classes <= 1 || cfg.TrainPerCls <= 0 || cfg.TestPerCls <= 0 {
		return nil, fmt.Errorf("dataset: invalid config %+v", cfg)
	}
	rng := stats.NewRNG(cfg.Seed)
	protos := make([]prototype, cfg.Classes)
	if cfg.Families > 1 {
		bases := make([]prototype, cfg.Families)
		for i := range bases {
			bases[i] = drawPrototype(rng)
		}
		for i := range protos {
			protos[i] = deriveVariant(bases[i%cfg.Families], rng)
		}
	} else {
		for i := range protos {
			protos[i] = drawPrototype(rng)
		}
	}
	ds := &Dataset{Name: cfg.Name, Classes: cfg.Classes}
	nTrain := cfg.Classes * cfg.TrainPerCls
	nTest := cfg.Classes * cfg.TestPerCls
	ds.Train = dnn.NewTensor(nTrain, Channels, Height, Width)
	ds.Test = dnn.NewTensor(nTest, Channels, Height, Width)
	ds.TrainY = make([]int, nTrain)
	ds.TestY = make([]int, nTest)
	feat := Channels * Height * Width
	// Interleave classes so mini-batches are balanced even without
	// shuffling.
	idx := 0
	for s := 0; s < cfg.TrainPerCls; s++ {
		for cls := 0; cls < cfg.Classes; cls++ {
			protos[cls].render(ds.Train.Data[idx*feat:(idx+1)*feat], rng, cfg.Noise)
			ds.TrainY[idx] = cls
			idx++
		}
	}
	idx = 0
	for s := 0; s < cfg.TestPerCls; s++ {
		for cls := 0; cls < cfg.Classes; cls++ {
			protos[cls].render(ds.Test.Data[idx*feat:(idx+1)*feat], rng, cfg.Noise)
			ds.TestY[idx] = cls
			idx++
		}
	}
	return ds, nil
}
