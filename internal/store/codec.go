package store

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"optima/internal/device"
	"optima/internal/engine"
)

// Format v2 wire codec: one segment is a sequence of length-prefixed binary
// records, each integrity-checked by its own CRC32. Compared to the v1
// JSONL lines the codec replaces, a record costs no encoding/json round
// trip on either side and roughly a third of the bytes (the numeric fields
// are fixed-width float bits instead of decimal text, and the config/
// condition values are stored once, in the key, instead of twice).
//
// Record layout (all integers little-endian):
//
//	u32  body length (bytes after the 8-byte header)
//	u32  CRC32 (IEEE) of the body
//	body:
//	  u16 fingerprint length, fingerprint bytes
//	  u16 backend-name length, backend-name bytes
//	  6 × u64  key fields:    Tau0, VDAC0, VDACFS, Corner, VDD, TempC
//	  7 × u64  metric fields: EpsMul, EpsLarge, EpsSmall, EMul,
//	           SigmaMaxLSB, SigmaMaxVolt, LSBVolt
//
// Floats travel as math.Float64bits, so every value — including -0 and
// denormals — round-trips exactly. Metrics.Config and Metrics.Cond are not
// serialized: they duplicate the key by construction (the engine fills
// them from the job), so decode reconstructs them from the key fields.
//
// The length prefix frames the log (a torn append is detected as a short
// or absurd length), and the CRC catches bit rot inside a fully framed
// record. Either failure ends the readable prefix: everything behind a bad
// record is unreliable, so the loader keeps the prefix and compacts — the
// same torn-tail durability model as v1, without v1's reliance on newline
// framing surviving corruption.

// recordHeaderLen is the fixed per-record header: body length + CRC32.
const recordHeaderLen = 8

// recordBodyFixedLen is the fixed-width portion of a record body: the two
// string-length prefixes plus the 13 numeric fields.
const recordBodyFixedLen = 2 + 2 + 8*(6+7)

// maxRecordLen bounds a single record's body. Fingerprints are 32-byte hex
// strings and backend names are short identifiers, so a length prefix
// beyond this bound is framing damage, not a large record.
const maxRecordLen = 1 << 16

var crcTable = crc32.IEEETable

// appendRecord appends the v2 wire form of one record to buf and returns
// the extended slice (append-style, so batched writers encode a whole
// group into one buffer with at most one grow).
func appendRecord(buf []byte, rec record) []byte {
	bodyLen := recordBodyFixedLen + len(rec.FP) + len(rec.Key.Backend)
	start := len(buf)
	buf = append(buf, make([]byte, recordHeaderLen+bodyLen)...)
	binary.LittleEndian.PutUint32(buf[start:], uint32(bodyLen))
	body := buf[start+recordHeaderLen:]

	off := 0
	binary.LittleEndian.PutUint16(body[off:], uint16(len(rec.FP)))
	off += 2
	off += copy(body[off:], rec.FP)
	binary.LittleEndian.PutUint16(body[off:], uint16(len(rec.Key.Backend)))
	off += 2
	off += copy(body[off:], rec.Key.Backend)
	for _, v := range [...]uint64{
		math.Float64bits(rec.Key.Config.Tau0),
		math.Float64bits(rec.Key.Config.VDAC0),
		math.Float64bits(rec.Key.Config.VDACFS),
		uint64(rec.Key.Cond.Corner),
		math.Float64bits(rec.Key.Cond.VDD),
		math.Float64bits(rec.Key.Cond.TempC),
		math.Float64bits(rec.Met.EpsMul),
		math.Float64bits(rec.Met.EpsLarge),
		math.Float64bits(rec.Met.EpsSmall),
		math.Float64bits(rec.Met.EMul),
		math.Float64bits(rec.Met.SigmaMaxLSB),
		math.Float64bits(rec.Met.SigmaMaxVolt),
		math.Float64bits(rec.Met.LSBVolt),
	} {
		binary.LittleEndian.PutUint64(body[off:], v)
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(body, crcTable))
	return buf
}

// decodeRecord decodes the record at the head of data. It returns the
// record, the bytes consumed, and whether the head held a complete, intact
// record. ok == false means the readable prefix of the segment ends here —
// a torn append, a truncated file, or CRC-detected corruption — and is
// never fatal to the caller: the loader repairs by compaction.
func decodeRecord(data []byte) (rec record, n int, ok bool) {
	if len(data) < recordHeaderLen {
		return record{}, 0, false
	}
	bodyLen := int(binary.LittleEndian.Uint32(data))
	if bodyLen < recordBodyFixedLen || bodyLen > maxRecordLen || recordHeaderLen+bodyLen > len(data) {
		return record{}, 0, false
	}
	body := data[recordHeaderLen : recordHeaderLen+bodyLen]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(data[4:]) {
		return record{}, 0, false
	}

	fpLen := int(binary.LittleEndian.Uint16(body))
	if 2+fpLen+2 > len(body) {
		return record{}, 0, false
	}
	rec.FP = string(body[2 : 2+fpLen])
	off := 2 + fpLen
	backendLen := int(binary.LittleEndian.Uint16(body[off:]))
	off += 2
	if off+backendLen+8*13 != len(body) {
		return record{}, 0, false
	}
	rec.Key.Backend = string(body[off : off+backendLen])
	off += backendLen

	var vals [13]uint64
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(body[off:])
		off += 8
	}
	rec.Key.Config.Tau0 = math.Float64frombits(vals[0])
	rec.Key.Config.VDAC0 = math.Float64frombits(vals[1])
	rec.Key.Config.VDACFS = math.Float64frombits(vals[2])
	rec.Key.Cond.Corner = device.ProcessCorner(vals[3])
	rec.Key.Cond.VDD = math.Float64frombits(vals[4])
	rec.Key.Cond.TempC = math.Float64frombits(vals[5])
	rec.Met = engine.Metrics{
		Config:       rec.Key.Config,
		Cond:         rec.Key.Cond,
		EpsMul:       math.Float64frombits(vals[6]),
		EpsLarge:     math.Float64frombits(vals[7]),
		EpsSmall:     math.Float64frombits(vals[8]),
		EMul:         math.Float64frombits(vals[9]),
		SigmaMaxLSB:  math.Float64frombits(vals[10]),
		SigmaMaxVolt: math.Float64frombits(vals[11]),
		LSBVolt:      math.Float64frombits(vals[12]),
	}
	if !validMetrics(rec.Met) {
		return record{}, 0, false
	}
	return rec, recordHeaderLen + bodyLen, true
}
